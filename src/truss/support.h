#ifndef TOPL_TRUSS_SUPPORT_H_
#define TOPL_TRUSS_SUPPORT_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "graph/graph.h"
#include "graph/local_subgraph.h"

namespace topl {

/// \brief Support sup(e) of every undirected edge of `g`: the number of
/// triangles containing e, i.e. |N(u) ∩ N(v)| for e = {u, v}.
///
/// These global supports are the paper's offline upper bounds ub_sup(e)
/// (§IV-B: the support of an edge in any subgraph is at most its support in
/// the data graph). The per-edge intersections are independent, so the
/// computation is parallelized over edges when a pool is supplied.
std::vector<std::uint32_t> ComputeGlobalEdgeSupports(const Graph& g,
                                                     ThreadPool* pool = nullptr);

/// \brief Support of every *alive* local edge of `lg`, counting only
/// triangles whose three edges are alive. Dead edges get support 0.
///
/// `edge_alive` has one flag per local edge. Per-edge sorted-list
/// intersection, O(Σ_e (deg u + deg v)): this is the from-scratch reference
/// the triangle substrate (truss/local_truss.h) is checked against; the hot
/// paths run the substrate's oriented enumeration instead.
std::vector<std::uint32_t> ComputeLocalEdgeSupports(
    const LocalGraph& lg, const std::vector<char>& edge_alive);

/// Out-parameter overload: fills `*support` (resized to lg.NumEdges()) so
/// repeated callers reuse one buffer instead of allocating per candidate.
void ComputeLocalEdgeSupports(const LocalGraph& lg,
                              const std::vector<char>& edge_alive,
                              std::vector<std::uint32_t>* support);

/// \brief In-place k-truss peeling on a LocalGraph (queue-based).
///
/// Starting from `edge_alive` / `support` (as produced by
/// ComputeLocalEdgeSupports), repeatedly deletes alive edges with support
/// < k-2, decrementing the support of the other two edges of each destroyed
/// triangle. On return `edge_alive` marks the maximal subgraph in which every
/// edge closes ≥ k-2 alive triangles, and `support` holds the supports within
/// that subgraph.
void PeelToKTruss(const LocalGraph& lg, std::uint32_t k,
                  std::vector<char>* edge_alive,
                  std::vector<std::uint32_t>* support);

}  // namespace topl

#endif  // TOPL_TRUSS_SUPPORT_H_

#ifndef TOPL_TRUSS_TRUSS_DECOMPOSITION_H_
#define TOPL_TRUSS_TRUSS_DECOMPOSITION_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "graph/graph.h"
#include "graph/local_subgraph.h"
#include "truss/local_truss.h"

namespace topl {

/// \brief Trussness τ(e) of every edge: the largest k such that e belongs to
/// the maximal k-truss of g. Every edge has τ(e) ≥ 2.
///
/// Classic peeling algorithm (Wang & Cheng): process edges in non-decreasing
/// support order with bucket bookkeeping; when an edge is peeled at support
/// s, its trussness is s+2 and the supports of the other two edges of each
/// of its triangles drop by one. O(Σ_e min(deg(u), deg(v))) after support
/// computation.
///
/// This is the offline half of the ATindex baseline (§VIII-A): the state of
/// the art (k,d)-truss search indexes trussness on edges/vertices and uses
/// it to filter candidate centers online.
std::vector<std::uint32_t> TrussDecomposition(const Graph& g,
                                              ThreadPool* pool = nullptr);

/// \brief Vertex trussness: max τ(e) over edges incident to v (0 for
/// isolated vertices). A vertex can belong to a k-truss community only if
/// its trussness is ≥ k.
std::vector<std::uint32_t> VertexTrussness(
    const Graph& g, const std::vector<std::uint32_t>& edge_trussness);

/// \brief Trussness of every edge of a LocalGraph (same peeling algorithm as
/// TrussDecomposition, over the materialized hop subgraph).
///
/// The offline phase (Algorithm 2) runs this per r_max-ball: the initial
/// supports are the paper's ub_sup(e) "w.r.t. hop(v_i, r_max)" (§V-A), and
/// the trussness of the ball's center bounds the largest k any seed
/// community centered there can reach (DESIGN.md §3).
///
/// If `initial_supports` is non-null it receives sup(e) within the ball
/// before peeling.
///
/// Convenience wrapper over LocalTrussDecomposer (fresh scratch per call);
/// repeated callers — the offline phase runs this once per vertex — should
/// hold a decomposer instead.
std::vector<std::uint32_t> LocalTrussDecomposition(
    const LocalGraph& lg, std::vector<std::uint32_t>* initial_supports = nullptr);

/// \brief Per-ball truss decomposition with reusable scratch.
///
/// Same peeling algorithm and byte-identical output as the free function,
/// but initial supports come from the triangle substrate's oriented
/// enumeration (O(Σ min-deg) instead of per-edge intersections) and every
/// working array — substrate, support buckets, liveness flags — persists
/// across Decompose calls, so a precompute worker sweeping thousands of
/// balls allocates nothing after warm-up. One instance per thread.
class LocalTrussDecomposer {
 public:
  /// Fills `*trussness` with τ(e) for every edge of `lg` (≥ 2 always). If
  /// `initial_supports` is non-null it receives sup(e) before peeling.
  void Decompose(const LocalGraph& lg, std::vector<std::uint32_t>* trussness,
                 std::vector<std::uint32_t>* initial_supports = nullptr);

  /// Alive triangles enumerated across all Decompose calls so far.
  std::uint64_t triangles_inspected() const {
    return substrate_.triangles_inspected();
  }

 private:
  TriangleSubstrate substrate_;
  // Bucket-queue peel state, reused across calls.
  std::vector<std::uint32_t> sup_;
  std::vector<std::uint32_t> bin_start_;
  std::vector<std::uint32_t> sorted_;
  std::vector<std::uint32_t> pos_of_;
  std::vector<std::uint32_t> cursor_;
  std::vector<char> alive_;
};

/// \brief Trussness of the ball's center (local vertex 0): the max trussness
/// over its incident edges, or 2 if it has none.
std::uint32_t LocalCenterTrussness(const LocalGraph& lg,
                                   const std::vector<std::uint32_t>& edge_trussness);

}  // namespace topl

#endif  // TOPL_TRUSS_TRUSS_DECOMPOSITION_H_

#include "truss/kcore.h"

#include <algorithm>

#include "common/check.h"

namespace topl {

std::vector<std::uint32_t> CoreDecomposition(const Graph& g) {
  const std::size_t n = g.NumVertices();
  std::vector<std::uint32_t> core(n, 0);
  if (n == 0) return core;

  std::vector<std::uint32_t> degree(n);
  std::uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = static_cast<std::uint32_t>(g.Degree(v));
    max_degree = std::max(max_degree, degree[v]);
  }

  // Bucket sort vertices by degree.
  std::vector<std::uint32_t> bin_start(max_degree + 2, 0);
  for (std::uint32_t d : degree) ++bin_start[d + 1];
  for (std::uint32_t d = 1; d < bin_start.size(); ++d) bin_start[d] += bin_start[d - 1];
  std::vector<VertexId> sorted(n);
  std::vector<std::uint32_t> pos_of(n);
  {
    std::vector<std::uint32_t> cursor(bin_start.begin(), bin_start.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      pos_of[v] = cursor[degree[v]];
      sorted[pos_of[v]] = v;
      ++cursor[degree[v]];
    }
  }

  for (std::uint32_t i = 0; i < n; ++i) {
    const VertexId v = sorted[i];
    core[v] = degree[v];
    for (const Graph::Arc& arc : g.Neighbors(v)) {
      const VertexId w = arc.to;
      if (degree[w] > degree[v]) {
        // Move w one degree bucket down.
        const std::uint32_t dw = degree[w];
        const std::uint32_t boundary = bin_start[dw];
        const VertexId at_boundary = sorted[boundary];
        if (at_boundary != w) {
          const std::uint32_t pw = pos_of[w];
          std::swap(sorted[boundary], sorted[pw]);
          pos_of[at_boundary] = pw;
          pos_of[w] = boundary;
        }
        ++bin_start[dw];
        --degree[w];
      }
    }
  }
  return core;
}

std::vector<VertexId> KCoreCommunity(const Graph& g, VertexId center,
                                     std::uint32_t k, std::uint32_t radius) {
  TOPL_CHECK(center < g.NumVertices(), "KCoreCommunity: center out of range");
  HopExtractor extractor(g);
  LocalGraph lg;
  extractor.Extract(center, radius, /*keyword_filter=*/{}, &lg);

  const std::size_t nv = lg.NumVertices();
  std::vector<std::uint32_t> degree(nv, 0);
  std::vector<char> vertex_alive(nv, 1);
  for (std::uint32_t l = 0; l < nv; ++l) {
    degree[l] = static_cast<std::uint32_t>(lg.Neighbors(l).size());
  }
  // Queue-based peel of vertices with degree < k.
  std::vector<std::uint32_t> queue;
  for (std::uint32_t l = 0; l < nv; ++l) {
    if (degree[l] < k) queue.push_back(l);
  }
  while (!queue.empty()) {
    const std::uint32_t l = queue.back();
    queue.pop_back();
    if (!vertex_alive[l]) continue;
    vertex_alive[l] = 0;
    for (const LocalGraph::LocalArc& arc : lg.Neighbors(l)) {
      if (!vertex_alive[arc.to]) continue;
      if (degree[arc.to]-- == k) queue.push_back(arc.to);
    }
  }
  if (!vertex_alive[0]) return {};  // local id 0 is the center

  // Connected component of the center over alive vertices.
  std::vector<char> in_component(nv, 0);
  std::vector<std::uint32_t> stack = {0};
  in_component[0] = 1;
  while (!stack.empty()) {
    const std::uint32_t l = stack.back();
    stack.pop_back();
    for (const LocalGraph::LocalArc& arc : lg.Neighbors(l)) {
      if (vertex_alive[arc.to] && !in_component[arc.to]) {
        in_component[arc.to] = 1;
        stack.push_back(arc.to);
      }
    }
  }
  std::vector<VertexId> out;
  for (std::uint32_t l = 0; l < nv; ++l) {
    if (in_component[l]) out.push_back(lg.global_ids[l]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace topl

#include "truss/truss_decomposition.h"

#include <algorithm>

#include "common/check.h"
#include "truss/support.h"

namespace topl {

std::vector<std::uint32_t> TrussDecomposition(const Graph& g, ThreadPool* pool) {
  const std::size_t m = g.NumEdges();
  std::vector<std::uint32_t> sup = ComputeGlobalEdgeSupports(g, pool);
  std::vector<std::uint32_t> trussness(m, 2);
  if (m == 0) return trussness;

  // Bucket sort edges by support.
  const std::uint32_t max_sup = *std::max_element(sup.begin(), sup.end());
  std::vector<std::uint32_t> bin_start(max_sup + 2, 0);
  for (std::uint32_t s : sup) ++bin_start[s + 1];
  for (std::uint32_t s = 1; s < bin_start.size(); ++s) {
    bin_start[s] += bin_start[s - 1];
  }
  std::vector<std::uint32_t> sorted(m);   // edges in support order
  std::vector<std::uint32_t> pos_of(m);   // inverse permutation
  {
    std::vector<std::uint32_t> cursor(bin_start.begin(), bin_start.end() - 1);
    for (EdgeId e = 0; e < m; ++e) {
      pos_of[e] = cursor[sup[e]];
      sorted[pos_of[e]] = e;
      ++cursor[sup[e]];
    }
  }

  // Moves edge f one support bucket down (f must currently have sup[f] > 0):
  // swap it to the front of its bucket and shrink the bucket from the left.
  auto decrement = [&](EdgeId f) {
    const std::uint32_t s = sup[f];
    const std::uint32_t boundary = bin_start[s];
    const EdgeId at_boundary = sorted[boundary];
    if (at_boundary != f) {
      const std::uint32_t pf = pos_of[f];
      std::swap(sorted[boundary], sorted[pf]);
      pos_of[at_boundary] = pf;
      pos_of[f] = boundary;
    }
    ++bin_start[s];
    --sup[f];
  };

  std::vector<char> alive(m, 1);
  for (std::uint32_t i = 0; i < m; ++i) {
    const EdgeId e = sorted[i];
    const std::uint32_t level = sup[e];
    trussness[e] = level + 2;
    const VertexId u = g.EdgeSource(e);
    const VertexId v = g.EdgeTarget(e);
    // Enumerate alive triangles through e and lower the two side edges,
    // but never below the current peel level (they will be peeled at this
    // level themselves).
    const auto nu = g.Neighbors(u);
    const auto nv = g.Neighbors(v);
    std::size_t a = 0;
    std::size_t b = 0;
    while (a < nu.size() && b < nv.size()) {
      if (nu[a].to == nv[b].to) {
        const EdgeId f1 = nu[a].edge;
        const EdgeId f2 = nv[b].edge;
        if (alive[f1] && alive[f2]) {
          if (sup[f1] > level) decrement(f1);
          if (sup[f2] > level) decrement(f2);
        }
        ++a;
        ++b;
      } else if (nu[a].to < nv[b].to) {
        ++a;
      } else {
        ++b;
      }
    }
    alive[e] = 0;
  }
  return trussness;
}

std::vector<std::uint32_t> LocalTrussDecomposition(
    const LocalGraph& lg, std::vector<std::uint32_t>* initial_supports) {
  LocalTrussDecomposer decomposer;
  std::vector<std::uint32_t> trussness;
  decomposer.Decompose(lg, &trussness, initial_supports);
  return trussness;
}

void LocalTrussDecomposer::Decompose(const LocalGraph& lg,
                                     std::vector<std::uint32_t>* trussness,
                                     std::vector<std::uint32_t>* initial_supports) {
  const std::size_t m = lg.NumEdges();
  trussness->assign(m, 2);
  substrate_.Bind(lg);
  substrate_.ComputeAllSupports(&sup_);
  if (initial_supports != nullptr) *initial_supports = sup_;
  if (m == 0) return;

  const std::uint32_t max_sup = *std::max_element(sup_.begin(), sup_.end());
  bin_start_.assign(max_sup + 2, 0);
  for (std::uint32_t s : sup_) ++bin_start_[s + 1];
  for (std::uint32_t s = 1; s < bin_start_.size(); ++s) {
    bin_start_[s] += bin_start_[s - 1];
  }
  sorted_.resize(m);
  pos_of_.resize(m);
  cursor_.assign(bin_start_.begin(), bin_start_.end() - 1);
  for (std::uint32_t e = 0; e < m; ++e) {
    pos_of_[e] = cursor_[sup_[e]];
    sorted_[pos_of_[e]] = e;
    ++cursor_[sup_[e]];
  }
  auto decrement = [&](std::uint32_t f) {
    const std::uint32_t s = sup_[f];
    const std::uint32_t boundary = bin_start_[s];
    const std::uint32_t at_boundary = sorted_[boundary];
    if (at_boundary != f) {
      const std::uint32_t pf = pos_of_[f];
      std::swap(sorted_[boundary], sorted_[pf]);
      pos_of_[at_boundary] = pf;
      pos_of_[f] = boundary;
    }
    ++bin_start_[s];
    --sup_[f];
  };

  alive_.assign(m, 1);
  for (std::uint32_t i = 0; i < m; ++i) {
    const std::uint32_t e = sorted_[i];
    const std::uint32_t level = sup_[e];
    (*trussness)[e] = level + 2;
    substrate_.ForEachAliveTriangle(
        e, alive_,
        [&](std::uint32_t /*c*/, std::uint32_t f1, std::uint32_t f2) {
          // Never lower a side edge below the current peel level: it will be
          // peeled at this level itself.
          if (sup_[f1] > level) decrement(f1);
          if (sup_[f2] > level) decrement(f2);
        });
    alive_[e] = 0;
  }
}

std::uint32_t LocalCenterTrussness(const LocalGraph& lg,
                                   const std::vector<std::uint32_t>& edge_trussness) {
  TOPL_CHECK(edge_trussness.size() == lg.NumEdges(),
             "edge_trussness size mismatch in LocalCenterTrussness");
  std::uint32_t best = 2;
  if (lg.NumVertices() == 0) return best;
  for (const LocalGraph::LocalArc& arc : lg.Neighbors(0)) {
    best = std::max(best, edge_trussness[arc.local_edge]);
  }
  return best;
}

std::vector<std::uint32_t> VertexTrussness(
    const Graph& g, const std::vector<std::uint32_t>& edge_trussness) {
  TOPL_CHECK(edge_trussness.size() == g.NumEdges(),
             "edge_trussness size mismatch in VertexTrussness");
  std::vector<std::uint32_t> out(g.NumVertices(), 0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const std::uint32_t t = edge_trussness[e];
    out[g.EdgeSource(e)] = std::max(out[g.EdgeSource(e)], t);
    out[g.EdgeTarget(e)] = std::max(out[g.EdgeTarget(e)], t);
  }
  return out;
}

}  // namespace topl

#ifndef TOPL_TRUSS_LOCAL_TRUSS_H_
#define TOPL_TRUSS_LOCAL_TRUSS_H_

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/check.h"
#include "graph/local_subgraph.h"

namespace topl {

/// \brief Allocation-free triangle/truss verification substrate over one
/// LocalGraph at a time.
///
/// Every exact candidate verification — the seed-community fixpoint
/// (core/seed_community.h), the per-ball truss decomposition of the offline
/// phase (LocalTrussDecomposer), and the incremental index updater that
/// reruns it — reduces to the same three primitives over a materialized hop
/// subgraph:
///
///  1. *Full triangle enumeration* for initial edge supports. The substrate
///     keeps a degree-ordered **oriented** adjacency view (each undirected
///     edge stored once, at its lower-(degree, id) endpoint) and enumerates
///     each triangle exactly once from its minimum-order corner, identifying
///     the closing edge through epoch-stamped neighbor marks. Cost is
///     O(Σ_e min(deg u, deg v)) — the classic forward algorithm — instead of
///     the O(Σ_e (deg u + deg v)) of per-edge sorted-list intersection.
///  2. *Incremental support maintenance*: killing an edge enumerates only the
///     alive triangles it closes and decrements the two surviving side edges,
///     so a fixpoint loop that bulk-kills vertices pays O(triangles touched)
///     instead of recomputing every local support from scratch per round.
///  3. *A persistent peel queue*: edges whose support drops below k-2 are
///     enqueued at decrement time, whether the decrement came from peeling or
///     from a bulk kill. Peel() therefore never rescans the edge set after
///     the initial seeding — the queue state survives across fixpoint rounds.
///
/// All scratch (oriented CSR, marks, queue flags) lives in the substrate and
/// is reused across Bind() calls: after warm-up, binding and running a
/// verification performs no heap allocation. One substrate per thread;
/// SeedCommunityExtractor and VertexPrecomputer each own one.
///
/// Exactness: supports maintained incrementally always equal a from-scratch
/// recount over the currently-alive edges (each destroyed triangle is
/// observed exactly once, when its first edge dies), and the k-truss peel
/// fixpoint is order-independent, so every consumer produces byte-identical
/// results to the from-scratch reference path. tests/truss_substrate_test.cc
/// and bench_seed_extraction enforce this.
class TriangleSubstrate {
 public:
  /// Points the substrate at `lg` and (re)builds the oriented adjacency
  /// view. O(V + E); resets the peel queue; `lg` must outlive the binding.
  void Bind(const LocalGraph& lg);

  /// Supports of every alive edge via oriented triangle enumeration; dead
  /// edges get support 0. Equivalent to ComputeLocalEdgeSupports.
  void ComputeSupports(const std::vector<char>& edge_alive,
                       std::vector<std::uint32_t>* support);

  /// ComputeSupports with every edge alive (the offline decomposition
  /// path) — same counts, no per-edge liveness branches.
  void ComputeAllSupports(std::vector<std::uint32_t>* support);

  /// Seeds the persistent peel queue with every alive edge whose support is
  /// below k-2. Call once after ComputeSupports; later deficits are enqueued
  /// automatically by Peel/KillEdge decrements.
  void SeedPeelQueue(std::uint32_t k, const std::vector<char>& edge_alive,
                     const std::vector<std::uint32_t>& support);

  /// Drains the peel queue: deletes queued deficient edges, decrementing the
  /// two surviving edges of each destroyed triangle and enqueueing newly
  /// deficient ones. Identical fixpoint to PeelToKTruss; on return every
  /// alive edge closes ≥ k-2 alive triangles. Returns the number of edges
  /// deleted (callers track the alive count for cost decisions).
  std::size_t Peel(std::uint32_t k, std::vector<char>* edge_alive,
                   std::vector<std::uint32_t>* support);

  /// Kills one alive edge incrementally: destroys its alive triangles
  /// (decrementing the two side edges and enqueueing new deficits for the
  /// next Peel), then marks it dead with support 0. Returns false (no-op) on
  /// dead edges.
  bool KillEdge(std::uint32_t e, std::uint32_t k, std::vector<char>* edge_alive,
                std::vector<std::uint32_t>* support);

  /// KillEdge over a batch (order-independent end state); returns the number
  /// of edges actually killed.
  std::size_t KillEdges(std::span<const std::uint32_t> doomed, std::uint32_t k,
                        std::vector<char>* edge_alive,
                        std::vector<std::uint32_t>* support);

  /// Invokes fn(c, edge_ac, edge_bc) for every alive triangle closed by the
  /// alive edge `e` = {a, b}. Sorted-list merge over the (by-`to`-sorted)
  /// adjacency lists: liveness is only probed on common neighbors, which
  /// beats mark-stamping both lists for the one-edge-at-a-time cadence of
  /// the peel loop. Shared with LocalTrussDecomposer's peel loop.
  template <typename Fn>
  void ForEachAliveTriangle(std::uint32_t e, const std::vector<char>& edge_alive,
                            Fn&& fn) {
    ForEachAliveTriangleLimited(e, edge_alive,
                                std::numeric_limits<std::uint32_t>::max(),
                                static_cast<Fn&&>(fn));
  }

  /// ForEachAliveTriangle that stops after `limit` triangles. Peel/KillEdge
  /// pass the edge's current support: the fixpoint's supports are *exact*
  /// alive-triangle counts (every destroyed triangle decrements exactly
  /// once), so the merge can end the moment the known count is exhausted —
  /// and skip entirely for support 0, the common case deep in a cascade.
  /// NOT valid for the decomposition peel, whose level-clamped supports are
  /// lower bounds, not counts.
  template <typename Fn>
  void ForEachAliveTriangleLimited(std::uint32_t e,
                                   const std::vector<char>& edge_alive,
                                   std::uint32_t limit, Fn&& fn) {
    if (limit == 0) return;
    const auto [a, b] = lg_->edge_endpoints[e];
    const auto na = lg_->Neighbors(a);
    const auto nb = lg_->Neighbors(b);
    std::size_t i = 0;
    std::size_t j = 0;
    std::uint32_t seen = 0;
    while (i < na.size() && j < nb.size()) {
      if (na[i].to == nb[j].to) {
        if (edge_alive[na[i].local_edge] && edge_alive[nb[j].local_edge]) {
          ++triangles_inspected_;
          fn(na[i].to, na[i].local_edge, nb[j].local_edge);
          if (++seen == limit) return;
        }
        ++i;
        ++j;
      } else if (na[i].to < nb[j].to) {
        ++i;
      } else {
        ++j;
      }
    }
  }

  /// Alive triangles enumerated since the last ResetTriangleCounter (one
  /// count per triangle in full enumeration, one per callback in per-edge
  /// enumeration). Feeds QueryStats::triangles_inspected.
  std::uint64_t triangles_inspected() const { return triangles_inspected_; }
  void ResetTriangleCounter() { triangles_inspected_ = 0; }

 private:
  std::span<const LocalGraph::LocalArc> OutNeighbors(std::uint32_t v) const {
    return {out_arcs_.data() + out_offsets_[v],
            out_arcs_.data() + out_offsets_[v + 1]};
  }

  /// Advances the mark epoch, clearing stamps on the (once per 2^32 uses)
  /// wraparound so stale marks can never alias a fresh epoch.
  std::uint32_t NextEpoch() {
    if (++epoch_ == 0) {
      std::fill(mark_stamp_.begin(), mark_stamp_.end(), 0);
      epoch_ = 1;
    }
    return epoch_;
  }

  template <bool kFiltered>
  void EnumerateSupports(const std::vector<char>& edge_alive,
                         std::vector<std::uint32_t>* support);

  void Enqueue(std::uint32_t e) {
    if (!queued_[e]) {
      queued_[e] = 1;
      queue_.push_back(e);
    }
  }

  const LocalGraph* lg_ = nullptr;

  // Oriented CSR: every local edge appears exactly once, at its
  // degree-order-minimal endpoint.
  std::vector<std::uint32_t> out_offsets_;
  std::vector<LocalGraph::LocalArc> out_arcs_;
  std::vector<std::uint32_t> cursor_;
  std::vector<std::uint32_t> degree_;
  std::vector<char> src_is_b_;

  // Epoch-stamped neighbor marks (per local vertex).
  std::vector<std::uint32_t> mark_stamp_;
  std::vector<std::uint32_t> mark_edge_;
  std::uint32_t epoch_ = 0;

  // Persistent peel queue; queued_[e] stays set once e has ever been
  // enqueued (a queued edge always dies — supports never increase).
  std::vector<std::uint32_t> queue_;
  std::vector<char> queued_;

  std::uint64_t triangles_inspected_ = 0;
};

}  // namespace topl

#endif  // TOPL_TRUSS_LOCAL_TRUSS_H_

#include "truss/support.h"

#include <algorithm>

#include "common/check.h"

namespace topl {

std::vector<std::uint32_t> ComputeGlobalEdgeSupports(const Graph& g,
                                                     ThreadPool* pool) {
  std::vector<std::uint32_t> support(g.NumEdges(), 0);
  auto count_edge = [&](std::size_t e) {
    VertexId u = g.EdgeSource(static_cast<EdgeId>(e));
    VertexId v = g.EdgeTarget(static_cast<EdgeId>(e));
    if (g.Degree(u) > g.Degree(v)) std::swap(u, v);
    const auto nu = g.Neighbors(u);
    const auto nv = g.Neighbors(v);
    // Sorted-list intersection.
    std::size_t i = 0;
    std::size_t j = 0;
    std::uint32_t common = 0;
    while (i < nu.size() && j < nv.size()) {
      if (nu[i].to == nv[j].to) {
        ++common;
        ++i;
        ++j;
      } else if (nu[i].to < nv[j].to) {
        ++i;
      } else {
        ++j;
      }
    }
    support[e] = common;
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(0, g.NumEdges(), count_edge, /*grain=*/512);
  } else {
    for (std::size_t e = 0; e < g.NumEdges(); ++e) count_edge(e);
  }
  return support;
}

namespace {

// Intersects the alive adjacency lists of local vertices a and b, invoking
// fn(c, edge_ac, edge_bc) for every common alive neighbor c.
template <typename Fn>
void ForEachAliveTriangle(const LocalGraph& lg, const std::vector<char>& edge_alive,
                          std::uint32_t a, std::uint32_t b, Fn&& fn) {
  const auto na = lg.Neighbors(a);
  const auto nb = lg.Neighbors(b);
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < na.size() && j < nb.size()) {
    if (na[i].to == nb[j].to) {
      if (edge_alive[na[i].local_edge] && edge_alive[nb[j].local_edge]) {
        fn(na[i].to, na[i].local_edge, nb[j].local_edge);
      }
      ++i;
      ++j;
    } else if (na[i].to < nb[j].to) {
      ++i;
    } else {
      ++j;
    }
  }
}

}  // namespace

std::vector<std::uint32_t> ComputeLocalEdgeSupports(
    const LocalGraph& lg, const std::vector<char>& edge_alive) {
  std::vector<std::uint32_t> support;
  ComputeLocalEdgeSupports(lg, edge_alive, &support);
  return support;
}

void ComputeLocalEdgeSupports(const LocalGraph& lg,
                              const std::vector<char>& edge_alive,
                              std::vector<std::uint32_t>* support) {
  TOPL_DCHECK(edge_alive.size() == lg.NumEdges(),
              "edge_alive size mismatch in ComputeLocalEdgeSupports");
  support->assign(lg.NumEdges(), 0);
  for (std::uint32_t e = 0; e < lg.NumEdges(); ++e) {
    if (!edge_alive[e]) continue;
    const auto [a, b] = lg.edge_endpoints[e];
    std::uint32_t count = 0;
    ForEachAliveTriangle(lg, edge_alive, a, b,
                         [&count](std::uint32_t, std::uint32_t, std::uint32_t) {
                           ++count;
                         });
    (*support)[e] = count;
  }
}

void PeelToKTruss(const LocalGraph& lg, std::uint32_t k,
                  std::vector<char>* edge_alive,
                  std::vector<std::uint32_t>* support) {
  TOPL_DCHECK(edge_alive->size() == lg.NumEdges(),
              "edge_alive size mismatch in PeelToKTruss");
  TOPL_DCHECK(support->size() == lg.NumEdges(),
              "support size mismatch in PeelToKTruss");
  const std::uint32_t required = k >= 2 ? k - 2 : 0;
  if (required == 0) return;  // Every subgraph is a 2-truss.

  std::vector<std::uint32_t> queue;
  std::vector<char> queued(lg.NumEdges(), 0);
  for (std::uint32_t e = 0; e < lg.NumEdges(); ++e) {
    if ((*edge_alive)[e] && (*support)[e] < required) {
      queue.push_back(e);
      queued[e] = 1;
    }
  }
  while (!queue.empty()) {
    const std::uint32_t e = queue.back();
    queue.pop_back();
    if (!(*edge_alive)[e]) continue;
    // Destroy e's triangles first (while e still counts as alive for the
    // intersection), then kill e.
    const auto [a, b] = lg.edge_endpoints[e];
    ForEachAliveTriangle(
        lg, *edge_alive, a, b,
        [&](std::uint32_t /*c*/, std::uint32_t edge_ac, std::uint32_t edge_bc) {
          for (std::uint32_t side : {edge_ac, edge_bc}) {
            if ((*support)[side] > 0) --(*support)[side];
            if ((*edge_alive)[side] && !queued[side] && (*support)[side] < required) {
              queue.push_back(side);
              queued[side] = 1;
            }
          }
        });
    (*edge_alive)[e] = 0;
    (*support)[e] = 0;
  }
}

}  // namespace topl

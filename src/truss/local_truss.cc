#include "truss/local_truss.h"

#include <algorithm>

namespace topl {

void TriangleSubstrate::Bind(const LocalGraph& lg) {
  lg_ = &lg;
  const std::size_t nv = lg.NumVertices();
  const std::size_t ne = lg.NumEdges();

  // Oriented CSR straight from the edge list: count, prefix-sum, fill. Each
  // edge lands once, at its degree-order-minimal endpoint, so the total
  // out-degree is ne and the per-vertex out-degree is O(sqrt(ne)). The
  // orientation predicate is evaluated once per edge (cached in src_is_b_)
  // over a dense degree array rather than re-deriving both degrees from CSR
  // offsets on every pass.
  degree_.resize(nv);
  for (std::size_t v = 0; v < nv; ++v) {
    degree_[v] = static_cast<std::uint32_t>(lg.offsets[v + 1] - lg.offsets[v]);
  }
  src_is_b_.resize(ne);
  out_offsets_.assign(nv + 1, 0);
  for (std::size_t e = 0; e < ne; ++e) {
    const auto [a, b] = lg.edge_endpoints[e];
    const bool from_b =
        degree_[b] != degree_[a] ? degree_[b] < degree_[a] : b < a;
    src_is_b_[e] = from_b;
    ++out_offsets_[(from_b ? b : a) + 1];
  }
  for (std::size_t v = 0; v < nv; ++v) out_offsets_[v + 1] += out_offsets_[v];
  out_arcs_.resize(ne);
  cursor_.assign(out_offsets_.begin(), out_offsets_.end() - 1);
  for (std::uint32_t e = 0; e < ne; ++e) {
    const auto [a, b] = lg.edge_endpoints[e];
    if (src_is_b_[e]) {
      out_arcs_[cursor_[b]++] = {a, e};
    } else {
      out_arcs_[cursor_[a]++] = {b, e};
    }
  }

  if (mark_stamp_.size() < nv) {
    // Fresh slots carry stamp 0 < any live epoch, so no epoch reset needed.
    mark_stamp_.resize(nv, 0);
    mark_edge_.resize(nv);
  }

  queue_.clear();
  queued_.assign(ne, 0);
}

template <bool kFiltered>
void TriangleSubstrate::EnumerateSupports(const std::vector<char>& edge_alive,
                                          std::vector<std::uint32_t>* support) {
  TOPL_DCHECK(lg_ != nullptr, "TriangleSubstrate used before Bind");
  const std::size_t nv = lg_->NumVertices();
  support->assign(lg_->NumEdges(), 0);
  std::uint32_t* sup = support->data();
  for (std::uint32_t u = 0; u < nv; ++u) {
    const auto out_u = OutNeighbors(u);
    if (out_u.size() < 2) continue;  // no wedge can open at u
    const std::uint32_t epoch = NextEpoch();
    for (const LocalGraph::LocalArc& arc : out_u) {
      if (kFiltered && !edge_alive[arc.local_edge]) continue;
      mark_stamp_[arc.to] = epoch;
      mark_edge_[arc.to] = arc.local_edge;
    }
    for (const LocalGraph::LocalArc& arc : out_u) {
      if (kFiltered && !edge_alive[arc.local_edge]) continue;
      // Triangles u < v < w in degree order: u holds edges u-v and u-w, so
      // scanning v's out-list against u's marks finds each exactly once.
      std::uint32_t closed = 0;  // triangles through u-v, flushed once
      for (const LocalGraph::LocalArc& arc2 : OutNeighbors(arc.to)) {
        if (kFiltered && !edge_alive[arc2.local_edge]) continue;
        if (mark_stamp_[arc2.to] != epoch) continue;
        ++closed;
        ++sup[arc2.local_edge];
        ++sup[mark_edge_[arc2.to]];
      }
      triangles_inspected_ += closed;
      sup[arc.local_edge] += closed;
    }
  }
}

void TriangleSubstrate::ComputeSupports(const std::vector<char>& edge_alive,
                                        std::vector<std::uint32_t>* support) {
  TOPL_DCHECK(edge_alive.size() == lg_->NumEdges(),
              "edge_alive size mismatch in TriangleSubstrate::ComputeSupports");
  EnumerateSupports<true>(edge_alive, support);
}

void TriangleSubstrate::ComputeAllSupports(std::vector<std::uint32_t>* support) {
  static const std::vector<char> kNoFilter;
  EnumerateSupports<false>(kNoFilter, support);
}

void TriangleSubstrate::SeedPeelQueue(std::uint32_t k,
                                      const std::vector<char>& edge_alive,
                                      const std::vector<std::uint32_t>& support) {
  const std::uint32_t required = k >= 2 ? k - 2 : 0;
  if (required == 0) return;  // every subgraph is a 2-truss
  for (std::uint32_t e = 0; e < edge_alive.size(); ++e) {
    if (edge_alive[e] && support[e] < required) Enqueue(e);
  }
}

std::size_t TriangleSubstrate::Peel(std::uint32_t k,
                                    std::vector<char>* edge_alive,
                                    std::vector<std::uint32_t>* support) {
  const std::uint32_t required = k >= 2 ? k - 2 : 0;
  std::size_t killed = 0;
  while (!queue_.empty()) {
    const std::uint32_t e = queue_.back();
    queue_.pop_back();
    // A queued edge is deficient forever (supports only decrease), so it is
    // either already dead or about to die here — never requeued.
    if (!(*edge_alive)[e]) continue;
    ForEachAliveTriangleLimited(
        e, *edge_alive, (*support)[e],
        [&](std::uint32_t /*c*/, std::uint32_t edge_ac, std::uint32_t edge_bc) {
          for (const std::uint32_t side : {edge_ac, edge_bc}) {
            if ((*support)[side] > 0) --(*support)[side];
            if ((*support)[side] < required) Enqueue(side);
          }
        });
    (*edge_alive)[e] = 0;
    (*support)[e] = 0;
    ++killed;
  }
  return killed;
}

bool TriangleSubstrate::KillEdge(std::uint32_t e, std::uint32_t k,
                                 std::vector<char>* edge_alive,
                                 std::vector<std::uint32_t>* support) {
  if (!(*edge_alive)[e]) return false;
  const std::uint32_t required = k >= 2 ? k - 2 : 0;
  // Destroy e's triangles while e still counts as alive, exactly like the
  // peel step; newly deficient side edges wait in the queue for the next
  // Peel, so a bulk kill replaces a from-scratch support recompute.
  ForEachAliveTriangleLimited(
      e, *edge_alive, (*support)[e],
      [&](std::uint32_t /*c*/, std::uint32_t edge_ac, std::uint32_t edge_bc) {
        for (const std::uint32_t side : {edge_ac, edge_bc}) {
          if ((*support)[side] > 0) --(*support)[side];
          if ((*support)[side] < required) Enqueue(side);
        }
      });
  (*edge_alive)[e] = 0;
  (*support)[e] = 0;
  return true;
}

std::size_t TriangleSubstrate::KillEdges(std::span<const std::uint32_t> doomed,
                                         std::uint32_t k,
                                         std::vector<char>* edge_alive,
                                         std::vector<std::uint32_t>* support) {
  std::size_t killed = 0;
  for (const std::uint32_t e : doomed) {
    killed += KillEdge(e, k, edge_alive, support) ? 1 : 0;
  }
  return killed;
}

}  // namespace topl

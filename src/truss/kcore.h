#ifndef TOPL_TRUSS_KCORE_H_
#define TOPL_TRUSS_KCORE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/local_subgraph.h"
#include "graph/types.h"

namespace topl {

/// \brief Core number of every vertex: the largest k such that the vertex
/// belongs to the maximal k-core (subgraph with all degrees ≥ k).
/// Linear-time bucket peeling (Batagelj–Zaveršnik).
std::vector<std::uint32_t> CoreDecomposition(const Graph& g);

/// \brief The k-core community of `center`: peel hop(center, radius) down to
/// minimum degree ≥ k and return the surviving connected component containing
/// the center (sorted global ids; empty if the center is peeled away).
///
/// This is the comparator used by the paper's case study (Fig. 5), which
/// contrasts the influence of a TopL-ICDE (k,r)-truss community with a
/// k-core community around the same center vertex.
std::vector<VertexId> KCoreCommunity(const Graph& g, VertexId center,
                                     std::uint32_t k, std::uint32_t radius);

}  // namespace topl

#endif  // TOPL_TRUSS_KCORE_H_

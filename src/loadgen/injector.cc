#include "loadgen/injector.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "graph/graph_delta.h"

namespace topl {
namespace loadgen {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace

LoadInjector::LoadInjector(Engine* engine, const WorkloadGenerator& generator,
                           const InjectorOptions& options)
    : owned_target_(std::make_unique<EngineTarget>(engine)),
      target_(owned_target_.get()),
      generator_(generator),
      options_(options) {}

LoadInjector::LoadInjector(ServingTarget* target,
                           const WorkloadGenerator& generator,
                           const InjectorOptions& options)
    : target_(target), generator_(generator), options_(options) {}

Result<LoadReport> LoadInjector::Run() {
  if (options_.num_workers == 0) {
    return Status::InvalidArgument("injector needs >= 1 worker");
  }
  if (options_.duration_seconds <= 0.0 && options_.max_ops == 0) {
    return Status::InvalidArgument(
        "injector needs a positive duration or an op cap");
  }
  const bool open_loop = options_.target_qps > 0.0;

  std::vector<LoadRecorder> recorders(options_.num_workers);
  std::atomic<std::uint64_t> next_index{0};
  // Serializes harness-side update generation+apply so every delta is drawn
  // against exactly the graph version it lands on (deltas state transitions,
  // not end states, so a delta raced by another update could become
  // invalid). Queries never touch this mutex.
  std::mutex update_mu;

  // Cache counters are cumulative over the engine's lifetime; diffing
  // before/after isolates this run's activity (warmup runs use a separate
  // injector, so their fills don't masquerade as measured hits).
  const EngineStats stats_before = target_->Stats();
  const std::vector<std::uint64_t> shard_ops_before = target_->ShardOps();

  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      options_.duration_seconds > 0.0
          ? start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(options_.duration_seconds))
          : Clock::time_point::max();

  ProgressiveOptions progressive;
  progressive.parallel = options_.progressive_parallel;
  progressive.deadline_seconds = options_.progressive_deadline_ms / 1e3;

  auto worker = [&](LoadRecorder* recorder) {
    for (;;) {
      const std::uint64_t i =
          next_index.fetch_add(1, std::memory_order_relaxed);
      if (options_.max_ops != 0 && i >= options_.max_ops) break;

      Clock::time_point intended;
      if (open_loop) {
        // Arrival i is scheduled at start + i/qps; execute every arrival
        // scheduled before the deadline, even when running behind.
        intended = start + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   static_cast<double>(i) /
                                   options_.target_qps));
        if (intended >= deadline) break;
        std::this_thread::sleep_until(intended);  // no-op when behind
      } else {
        const Clock::time_point now = Clock::now();
        if (now >= deadline) break;
        intended = now;
      }

      const Operation op = generator_.At(i);
      const Clock::time_point begin = Clock::now();
      bool ok = true;
      bool truncated = false;
      switch (op.kind) {
        case OpKind::kTopL: {
          Result<TopLResult> r = target_->Search(op.query);
          ok = r.ok();
          truncated = ok && r->truncated;
          break;
        }
        case OpKind::kDTopL: {
          Result<DTopLResult> r =
              target_->SearchDiversified(op.query, DTopLOptions());
          ok = r.ok();
          truncated = ok && r->truncated;
          break;
        }
        case OpKind::kProgressive: {
          Result<TopLResult> r =
              target_->SearchProgressive(op.query, progressive);
          ok = r.ok();
          truncated = ok && r->truncated;
          break;
        }
        case OpKind::kUpdate: {
          std::lock_guard<std::mutex> lock(update_mu);
          const std::shared_ptr<const EngineSnapshot> snap =
              target_->snapshot();
          Rng rng(op.delta_seed);
          const GraphDelta delta =
              MakeRandomDelta(*snap->graph, rng, generator_.spec().delta);
          if (delta.empty()) break;  // no valid target found; count as ok
          Result<RebuildScope> r = target_->ApplyUpdate(delta);
          ok = r.ok();
          break;
        }
      }
      const Clock::time_point done = Clock::now();
      recorder->Record(op.kind, Seconds(done - intended),
                       Seconds(done - begin), ok, truncated);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(options_.num_workers);
  for (std::size_t w = 0; w < options_.num_workers; ++w) {
    threads.emplace_back(worker, &recorders[w]);
  }
  for (std::thread& thread : threads) thread.join();
  const double wall = Seconds(Clock::now() - start);

  LoadReport report =
      BuildReport(recorders, generator_.spec().name, open_loop,
                  options_.target_qps, wall);
  const EngineStats stats = target_->Stats();
  report.updates_applied = stats.updates_applied;
  report.snapshot_epoch = stats.snapshot_epoch;
  report.cache_hits = stats.cache_hits - stats_before.cache_hits;
  report.cache_misses = stats.cache_misses - stats_before.cache_misses;
  report.cache_coalesced =
      stats.cache_coalesced - stats_before.cache_coalesced;
  const std::uint64_t lookups =
      report.cache_hits + report.cache_misses + report.cache_coalesced;
  if (lookups > 0) {
    report.hit_rate =
        static_cast<double>(report.cache_hits) / static_cast<double>(lookups);
  }

  report.num_shards = target_->NumShards();
  const std::vector<std::uint64_t> shard_ops_after = target_->ShardOps();
  if (shard_ops_after.size() == shard_ops_before.size()) {
    report.shard_ops.resize(shard_ops_after.size());
    for (std::size_t s = 0; s < shard_ops_after.size(); ++s) {
      report.shard_ops[s] = shard_ops_after[s] - shard_ops_before[s];
    }
  }
  if (report.shard_ops.size() >= 2) {
    std::uint64_t total_routed = 0;
    std::uint64_t max_routed = 0;
    for (std::uint64_t ops : report.shard_ops) {
      total_routed += ops;
      max_routed = std::max(max_routed, ops);
    }
    if (total_routed > 0) {
      const double mean = static_cast<double>(total_routed) /
                          static_cast<double>(report.shard_ops.size());
      report.shard_imbalance = static_cast<double>(max_routed) / mean;
    }
  }
  return report;
}

}  // namespace loadgen
}  // namespace topl

#include "loadgen/injector.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "graph/graph_delta.h"

namespace topl {
namespace loadgen {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

/// Retry policy for shed (Status::Unavailable) responses: the engine's
/// admission gate explicitly invites a retry with backoff, and a loadgen
/// that gives up on the first rejection under-reports the achievable
/// goodput. Bounded attempts keep a saturated engine from turning the
/// injector into an unbounded retry storm.
constexpr int kMaxAttempts = 3;
constexpr double kBackoffBaseSeconds = 200e-6;

/// Runs `call` with up to kMaxAttempts tries, sleeping an exponentially
/// growing, jittered backoff between shed responses. Counts every
/// Unavailable response in `*shed` and every re-issued attempt in
/// `*retried`; non-Unavailable failures are terminal.
template <typename Call, typename Outcome>
void RunWithRetry(Call&& call, Rng* rng, std::uint64_t* shed,
                  std::uint64_t* retried, Outcome&& outcome) {
  for (int attempt = 0;; ++attempt) {
    auto r = call();
    if (r.ok()) {
      outcome(/*ok=*/true, r->truncated, r->degraded);
      return;
    }
    if (r.status().IsUnavailable()) ++*shed;
    if (!r.status().IsUnavailable() || attempt + 1 >= kMaxAttempts) {
      outcome(/*ok=*/false, false, false);
      return;
    }
    ++*retried;
    // Full jitter in [0.5, 1.5)x so synchronized workers don't re-collide on
    // the admission gate at the same instant.
    const double backoff = kBackoffBaseSeconds * static_cast<double>(1 << attempt) *
                           (0.5 + rng->NextDouble());
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
  }
}

}  // namespace

LoadInjector::LoadInjector(Engine* engine, const WorkloadGenerator& generator,
                           const InjectorOptions& options)
    : owned_target_(std::make_unique<EngineTarget>(engine)),
      target_(owned_target_.get()),
      generator_(generator),
      options_(options) {}

LoadInjector::LoadInjector(ServingTarget* target,
                           const WorkloadGenerator& generator,
                           const InjectorOptions& options)
    : target_(target), generator_(generator), options_(options) {}

Result<LoadReport> LoadInjector::Run() {
  if (options_.num_workers == 0) {
    return Status::InvalidArgument("injector needs >= 1 worker");
  }
  if (options_.duration_seconds <= 0.0 && options_.max_ops == 0) {
    return Status::InvalidArgument(
        "injector needs a positive duration or an op cap");
  }
  const bool open_loop = options_.target_qps > 0.0;

  std::vector<LoadRecorder> recorders(options_.num_workers);
  std::atomic<std::uint64_t> next_index{0};
  // Serializes harness-side update generation+apply so every delta is drawn
  // against exactly the graph version it lands on (deltas state transitions,
  // not end states, so a delta raced by another update could become
  // invalid). Queries never touch this mutex.
  std::mutex update_mu;

  // Cache counters are cumulative over the engine's lifetime; diffing
  // before/after isolates this run's activity (warmup runs use a separate
  // injector, so their fills don't masquerade as measured hits).
  const EngineStats stats_before = target_->Stats();
  const std::vector<std::uint64_t> shard_ops_before = target_->ShardOps();

  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      options_.duration_seconds > 0.0
          ? start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(options_.duration_seconds))
          : Clock::time_point::max();

  ProgressiveOptions progressive;
  progressive.parallel = options_.progressive_parallel;
  progressive.deadline_seconds = options_.progressive_deadline_ms / 1e3;

  auto worker = [&](LoadRecorder* recorder, std::size_t worker_index) {
    // Per-worker deterministic jitter source for retry backoff.
    Rng backoff_rng(0x9E3779B97F4A7C15ull ^ worker_index);
    for (;;) {
      const std::uint64_t i =
          next_index.fetch_add(1, std::memory_order_relaxed);
      if (options_.max_ops != 0 && i >= options_.max_ops) break;

      Clock::time_point intended;
      if (open_loop) {
        // Arrival i is scheduled at start + i/qps; execute every arrival
        // scheduled before the deadline, even when running behind.
        intended = start + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   static_cast<double>(i) /
                                   options_.target_qps));
        if (intended >= deadline) break;
        std::this_thread::sleep_until(intended);  // no-op when behind
      } else {
        const Clock::time_point now = Clock::now();
        if (now >= deadline) break;
        intended = now;
      }

      const Operation op = generator_.At(i);
      const Clock::time_point begin = Clock::now();
      bool ok = true;
      bool truncated = false;
      bool degraded = false;
      std::uint64_t shed = 0;
      std::uint64_t retried = 0;
      auto outcome = [&](bool call_ok, bool call_truncated, bool call_degraded) {
        ok = call_ok;
        truncated = call_truncated;
        degraded = call_degraded;
      };
      switch (op.kind) {
        case OpKind::kTopL:
          RunWithRetry([&] { return target_->Search(op.query); }, &backoff_rng,
                       &shed, &retried, outcome);
          break;
        case OpKind::kDTopL:
          RunWithRetry(
              [&] { return target_->SearchDiversified(op.query, DTopLOptions()); },
              &backoff_rng, &shed, &retried, outcome);
          break;
        case OpKind::kProgressive:
          // A deadline-bearing progressive query is degraded (not shed) by an
          // overloaded engine, so retries only fire in the no-deadline case.
          RunWithRetry(
              [&] { return target_->SearchProgressive(op.query, progressive); },
              &backoff_rng, &shed, &retried, outcome);
          break;
        case OpKind::kUpdate: {
          // Updates are not retried: they serialize on update_mu anyway, and
          // the admission gate covers queries, not maintenance.
          std::lock_guard<std::mutex> lock(update_mu);
          const std::shared_ptr<const EngineSnapshot> snap =
              target_->snapshot();
          Rng rng(op.delta_seed);
          const GraphDelta delta =
              MakeRandomDelta(*snap->graph, rng, generator_.spec().delta);
          if (delta.empty()) break;  // no valid target found; count as ok
          Result<RebuildScope> r = target_->ApplyUpdate(delta);
          ok = r.ok();
          break;
        }
      }
      const Clock::time_point done = Clock::now();
      recorder->Record(op.kind, Seconds(done - intended),
                       Seconds(done - begin), ok, truncated, degraded, shed,
                       retried);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(options_.num_workers);
  for (std::size_t w = 0; w < options_.num_workers; ++w) {
    threads.emplace_back(worker, &recorders[w], w);
  }
  for (std::thread& thread : threads) thread.join();
  const double wall = Seconds(Clock::now() - start);

  LoadReport report =
      BuildReport(recorders, generator_.spec().name, open_loop,
                  options_.target_qps, wall);
  const EngineStats stats = target_->Stats();
  report.updates_applied = stats.updates_applied;
  report.snapshot_epoch = stats.snapshot_epoch;
  report.cache_hits = stats.cache_hits - stats_before.cache_hits;
  report.cache_misses = stats.cache_misses - stats_before.cache_misses;
  report.cache_coalesced =
      stats.cache_coalesced - stats_before.cache_coalesced;
  const std::uint64_t lookups =
      report.cache_hits + report.cache_misses + report.cache_coalesced;
  if (lookups > 0) {
    report.hit_rate =
        static_cast<double>(report.cache_hits) / static_cast<double>(lookups);
  }

  report.num_shards = target_->NumShards();
  const std::vector<std::uint64_t> shard_ops_after = target_->ShardOps();
  if (shard_ops_after.size() == shard_ops_before.size()) {
    report.shard_ops.resize(shard_ops_after.size());
    for (std::size_t s = 0; s < shard_ops_after.size(); ++s) {
      report.shard_ops[s] = shard_ops_after[s] - shard_ops_before[s];
    }
  }
  if (report.shard_ops.size() >= 2) {
    std::uint64_t total_routed = 0;
    std::uint64_t max_routed = 0;
    for (std::uint64_t ops : report.shard_ops) {
      total_routed += ops;
      max_routed = std::max(max_routed, ops);
    }
    if (total_routed > 0) {
      const double mean = static_cast<double>(total_routed) /
                          static_cast<double>(report.shard_ops.size());
      report.shard_imbalance = static_cast<double>(max_routed) / mean;
    }
  }
  return report;
}

}  // namespace loadgen
}  // namespace topl

#include "loadgen/report.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace topl {
namespace loadgen {

namespace {

OpKindSummary Summarize(const LoadRecorder::Slot& slot) {
  OpKindSummary out;
  out.count = slot.latency.count;
  out.failed = slot.failed;
  out.truncated = slot.truncated;
  out.p50_ms = slot.latency.PercentileSeconds(0.50) * 1e3;
  out.p99_ms = slot.latency.PercentileSeconds(0.99) * 1e3;
  out.p999_ms = slot.latency.PercentileSeconds(0.999) * 1e3;
  out.max_ms = slot.latency.MaxSeconds() * 1e3;
  out.mean_ms = slot.latency.MeanSeconds() * 1e3;
  out.mean_service_ms = slot.service.MeanSeconds() * 1e3;
  return out;
}

void AppendF(std::string* out, const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  *out += buffer;
}

void AppendKindJson(std::string* out, const char* name,
                    const OpKindSummary& s, const char* suffix) {
  AppendF(out,
          "  \"%s\": {\"count\": %" PRIu64 ", \"failed\": %" PRIu64
          ", \"truncated\": %" PRIu64
          ", \"p50_ms\": %.4f, \"p99_ms\": %.4f, \"p999_ms\": %.4f, "
          "\"max_ms\": %.4f, \"mean_ms\": %.4f, \"mean_service_ms\": %.4f}%s\n",
          name, s.count, s.failed, s.truncated, s.p50_ms, s.p99_ms, s.p999_ms,
          s.max_ms, s.mean_ms, s.mean_service_ms, suffix);
}

}  // namespace

LoadReport BuildReport(std::span<const LoadRecorder> recorders,
                       const std::string& mix, bool open_loop,
                       double target_qps, double wall_seconds) {
  LoadRecorder merged;
  for (const LoadRecorder& recorder : recorders) merged.Merge(recorder);

  LoadReport report;
  report.mix = mix;
  report.open_loop = open_loop;
  report.target_qps = target_qps;
  report.wall_seconds = wall_seconds;

  LoadRecorder::Slot all;
  for (std::size_t k = 0; k < kNumOpKinds; ++k) {
    const LoadRecorder::Slot& slot = merged.per_kind[k];
    report.per_kind[k] = Summarize(slot);
    report.ops_total += slot.latency.count;
    report.failed += slot.failed;
    report.truncated += slot.truncated;
    report.shed += slot.shed;
    report.degraded += slot.degraded;
    report.retried += slot.retried;
    all.latency.Merge(slot.latency);
    all.service.Merge(slot.service);
    all.failed += slot.failed;
    all.truncated += slot.truncated;
  }
  report.overall = Summarize(all);
  if (wall_seconds > 0.0) {
    report.achieved_qps =
        static_cast<double>(report.ops_total) / wall_seconds;
  }
  report.ops_per_s = report.achieved_qps;
  return report;
}

std::vector<std::string> LoadReport::CheckSlo(const SloThresholds& slo) const {
  std::vector<std::string> violations;
  std::string msg;
  if (failed > slo.max_failed) {
    msg.clear();
    AppendF(&msg, "failed operations: %" PRIu64 " > allowed %" PRIu64, failed,
            slo.max_failed);
    violations.push_back(msg);
  }
  if (slo.min_ops_per_s > 0.0 && ops_per_s < slo.min_ops_per_s) {
    msg.clear();
    AppendF(&msg, "sustained throughput: %.1f ops/s < SLO %.1f", ops_per_s,
            slo.min_ops_per_s);
    violations.push_back(msg);
  }
  if (slo.max_p99_ms > 0.0 && overall.p99_ms > slo.max_p99_ms) {
    msg.clear();
    AppendF(&msg, "p99 latency: %.2fms > SLO %.2fms", overall.p99_ms,
            slo.max_p99_ms);
    violations.push_back(msg);
  }
  if (slo.max_p999_ms > 0.0 && overall.p999_ms > slo.max_p999_ms) {
    msg.clear();
    AppendF(&msg, "p999 latency: %.2fms > SLO %.2fms", overall.p999_ms,
            slo.max_p999_ms);
    violations.push_back(msg);
  }
  return violations;
}

std::string LoadReport::ToString() const {
  std::string out;
  AppendF(&out,
          "mix=%s loop=%s target=%.0f qps achieved=%.1f ops/s "
          "(%.2fs wall, %" PRIu64 " ops, %" PRIu64 " failed, %" PRIu64
          " truncated, %" PRIu64 " updates, epoch %" PRIu64 ")\n",
          mix.c_str(), open_loop ? "open" : "closed", target_qps, achieved_qps,
          wall_seconds, ops_total, failed, truncated, updates_applied,
          snapshot_epoch);
  if (shed + degraded + retried > 0) {
    AppendF(&out,
            "overload: %" PRIu64 " shed, %" PRIu64 " degraded, %" PRIu64
            " retried\n",
            shed, degraded, retried);
  }
  if (cache_hits + cache_misses + cache_coalesced > 0) {
    AppendF(&out,
            "cache: %.1f%% hit rate (%" PRIu64 " hits, %" PRIu64
            " misses, %" PRIu64 " coalesced)\n",
            100.0 * hit_rate, cache_hits, cache_misses, cache_coalesced);
  }
  if (num_shards > 1) {
    AppendF(&out, "shards: %u, imbalance %.3f (max/mean), routed ops [",
            num_shards, shard_imbalance);
    for (std::size_t s = 0; s < shard_ops.size(); ++s) {
      AppendF(&out, "%s%" PRIu64, s == 0 ? "" : ", ", shard_ops[s]);
    }
    out += "]\n";
  }
  AppendF(&out, "%-12s %9s %9s %9s %9s %9s %9s %9s\n", "kind", "count",
          "p50(ms)", "p99(ms)", "p999(ms)", "max(ms)", "mean(ms)", "svc(ms)");
  for (std::size_t k = 0; k < kNumOpKinds; ++k) {
    const OpKindSummary& s = per_kind[k];
    if (s.count == 0) continue;
    AppendF(&out, "%-12s %9" PRIu64 " %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f\n",
            OpKindName(static_cast<OpKind>(k)), s.count, s.p50_ms, s.p99_ms,
            s.p999_ms, s.max_ms, s.mean_ms, s.mean_service_ms);
  }
  const OpKindSummary& s = overall;
  AppendF(&out, "%-12s %9" PRIu64 " %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f\n",
          "overall", s.count, s.p50_ms, s.p99_ms, s.p999_ms, s.max_ms,
          s.mean_ms, s.mean_service_ms);
  return out;
}

std::string LoadReport::ToJson() const {
  std::string out = "{\n";
  AppendF(&out, "  \"benchmark\": \"serve\",\n");
  AppendF(&out, "  \"mix\": \"%s\",\n", mix.c_str());
  AppendF(&out, "  \"loop\": \"%s\",\n", open_loop ? "open" : "closed");
  AppendF(&out, "  \"target_qps\": %.3f,\n", target_qps);
  AppendF(&out, "  \"achieved_qps\": %.3f,\n", achieved_qps);
  AppendF(&out, "  \"ops_per_s\": %.3f,\n", ops_per_s);
  AppendF(&out, "  \"wall_seconds\": %.4f,\n", wall_seconds);
  AppendF(&out, "  \"ops_total\": %" PRIu64 ",\n", ops_total);
  AppendF(&out, "  \"failed\": %" PRIu64 ",\n", failed);
  AppendF(&out, "  \"truncated\": %" PRIu64 ",\n", truncated);
  AppendF(&out, "  \"shed\": %" PRIu64 ",\n", shed);
  AppendF(&out, "  \"degraded\": %" PRIu64 ",\n", degraded);
  AppendF(&out, "  \"retried\": %" PRIu64 ",\n", retried);
  AppendF(&out, "  \"updates_applied\": %" PRIu64 ",\n", updates_applied);
  AppendF(&out, "  \"snapshot_epoch\": %" PRIu64 ",\n", snapshot_epoch);
  AppendF(&out, "  \"stream_digest\": \"%016" PRIx64 "\",\n", stream_digest);
  AppendF(&out, "  \"cache_hits\": %" PRIu64 ",\n", cache_hits);
  AppendF(&out, "  \"cache_misses\": %" PRIu64 ",\n", cache_misses);
  AppendF(&out, "  \"cache_coalesced\": %" PRIu64 ",\n", cache_coalesced);
  AppendF(&out, "  \"hit_rate\": %.4f,\n", hit_rate);
  AppendF(&out, "  \"num_shards\": %u,\n", num_shards);
  out += "  \"shard_ops\": [";
  for (std::size_t s = 0; s < shard_ops.size(); ++s) {
    AppendF(&out, "%s%" PRIu64, s == 0 ? "" : ", ", shard_ops[s]);
  }
  out += "],\n";
  AppendF(&out, "  \"shard_imbalance\": %.4f,\n", shard_imbalance);
  for (std::size_t k = 0; k < kNumOpKinds; ++k) {
    AppendKindJson(&out, OpKindName(static_cast<OpKind>(k)), per_kind[k], ",");
  }
  AppendKindJson(&out, "overall", overall, "");
  out += "}\n";
  return out;
}

}  // namespace loadgen
}  // namespace topl

#ifndef TOPL_LOADGEN_RECORDER_H_
#define TOPL_LOADGEN_RECORDER_H_

#include <array>
#include <cstdint>

#include "common/latency_histogram.h"
#include "loadgen/workload.h"

namespace topl {
namespace loadgen {

/// \brief One injector thread's latency recorder.
///
/// Each worker owns exactly one recorder and writes it without any
/// synchronization (plain integers, no atomics — cheaper than the engine's
/// stats shards, which must tolerate concurrent readers); the injector
/// merges all recorders after the workers join. Two distributions are kept
/// per operation kind:
///
///  - `latency`: the *reported* latency. In open-loop mode this is measured
///    from the operation's intended arrival time, so queueing delay behind a
///    stalled engine is charged to the operation instead of silently
///    vanishing (the coordinated-omission trap closed-loop harnesses fall
///    into).
///  - `service`: time inside the engine call only — the two diverge exactly
///    when the engine cannot keep up with the offered load.
struct LoadRecorder {
  struct Slot {
    LatencyHistogram latency;
    LatencyHistogram service;
    std::uint64_t failed = 0;
    std::uint64_t truncated = 0;
    /// Unavailable responses the engine's admission gate returned for this
    /// kind (each rejected attempt counts, whether or not a retry landed).
    std::uint64_t shed = 0;
    /// Operations answered as degraded anytime results under overload.
    std::uint64_t degraded = 0;
    /// Re-issued attempts after a shed response (jittered backoff).
    std::uint64_t retried = 0;
  };

  std::array<Slot, kNumOpKinds> per_kind{};

  void Record(OpKind kind, double reported_seconds, double service_seconds,
              bool ok, bool truncated, bool degraded = false,
              std::uint64_t shed = 0, std::uint64_t retried = 0) {
    Slot& slot = per_kind[static_cast<std::size_t>(kind)];
    slot.latency.AddSeconds(reported_seconds);
    slot.service.AddSeconds(service_seconds);
    if (!ok) ++slot.failed;
    if (truncated) ++slot.truncated;
    if (degraded) ++slot.degraded;
    slot.shed += shed;
    slot.retried += retried;
  }

  void Merge(const LoadRecorder& other) {
    for (std::size_t k = 0; k < kNumOpKinds; ++k) {
      per_kind[k].latency.Merge(other.per_kind[k].latency);
      per_kind[k].service.Merge(other.per_kind[k].service);
      per_kind[k].failed += other.per_kind[k].failed;
      per_kind[k].truncated += other.per_kind[k].truncated;
      per_kind[k].shed += other.per_kind[k].shed;
      per_kind[k].degraded += other.per_kind[k].degraded;
      per_kind[k].retried += other.per_kind[k].retried;
    }
  }

  const Slot& slot(OpKind kind) const {
    return per_kind[static_cast<std::size_t>(kind)];
  }

  std::uint64_t TotalCount() const {
    std::uint64_t total = 0;
    for (const Slot& slot : per_kind) total += slot.latency.count;
    return total;
  }
};

}  // namespace loadgen
}  // namespace topl

#endif  // TOPL_LOADGEN_RECORDER_H_

#include "loadgen/workload.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/rng.h"

namespace topl {
namespace loadgen {

namespace {

/// Decorrelates the per-operation seed from the master seed. The Rng
/// constructor splitmixes its input, but neighboring indices must still not
/// share state, so spread them over the 64-bit space first.
std::uint64_t OpSeed(std::uint64_t master, std::uint64_t index) {
  std::uint64_t x = master ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t Fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (byte * 8)) & 0xff;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

Result<WorkloadSpec> WorkloadSpec::Named(const std::string& name) {
  WorkloadSpec spec;
  spec.name = name;
  if (name == "read_heavy") {
    spec.mix = {0.80, 0.10, 0.08, 0.02};
  } else if (name == "update_heavy") {
    spec.mix = {0.45, 0.05, 0.00, 0.50};
  } else if (name == "progressive_scan") {
    spec.mix = {0.05, 0.00, 0.90, 0.05};
  } else if (name == "mixed") {
    spec.mix = {0.50, 0.15, 0.25, 0.10};
  } else if (name == "repeat_heavy") {
    // Interactive-exploration traffic: the same few queries re-issued over
    // and over. High zipf skew over a narrow signature pool, parameters
    // pinned to single values so keys actually repeat, and no updates —
    // the mix that makes a result cache's win measurable on its own.
    spec.mix = {0.90, 0.10, 0.00, 0.00};
    spec.zipf_skew = 1.2;
    spec.num_signatures = 16;
    spec.params.k_values = {4};
    spec.params.radius_values = {2};
    spec.params.theta_values = {0.2};
    spec.params.top_l_values = {5};
  } else {
    return Status::InvalidArgument(
        "unknown workload mix: " + name +
        " (expected read_heavy, update_heavy, progressive_scan, "
        "repeat_heavy, or mixed)");
  }
  return spec;
}

Status WorkloadSpec::Validate() const {
  double sum = 0.0;
  for (double fraction : mix) {
    if (fraction < 0.0) {
      return Status::InvalidArgument("mix fractions must be non-negative");
    }
    sum += fraction;
  }
  if (std::abs(sum - 1.0) > 1e-9) {
    return Status::InvalidArgument("mix fractions must sum to 1");
  }
  if (num_signatures == 0) {
    return Status::InvalidArgument("need at least one query signature");
  }
  if (keywords_per_query == 0) {
    return Status::InvalidArgument("need at least one keyword per query");
  }
  if (zipf_skew <= 0.0) {
    return Status::InvalidArgument("zipf skew must be > 0");
  }
  if (params.k_values.empty() || params.radius_values.empty() ||
      params.theta_values.empty() || params.top_l_values.empty()) {
    return Status::InvalidArgument("every parameter band needs >= 1 value");
  }
  return Status::OK();
}

WorkloadGenerator::WorkloadGenerator(
    WorkloadSpec spec, std::vector<std::vector<KeywordId>> signatures)
    : spec_(std::move(spec)), signatures_(std::move(signatures)) {
  double sum = 0.0;
  for (std::size_t k = 0; k < kNumOpKinds; ++k) {
    sum += spec_.mix[k];
    cumulative_[k] = sum;
  }
  cumulative_[kNumOpKinds - 1] = 1.0;  // absorb rounding in the last kind
}

Result<WorkloadGenerator> WorkloadGenerator::Create(WorkloadSpec spec,
                                                    const Graph& graph) {
  TOPL_RETURN_IF_ERROR(spec.Validate());
  if (graph.NumVertices() == 0) {
    return Status::InvalidArgument("workload needs a non-empty graph");
  }

  // Population-weighted signature pool: pick a vertex, then one of its
  // keywords — uniform draws over the domain mostly select keywords nobody
  // holds under skewed assignment models (mirrors bench_common.h).
  std::vector<std::vector<KeywordId>> signatures;
  signatures.reserve(spec.num_signatures);
  for (std::uint32_t s = 0; s < spec.num_signatures; ++s) {
    Rng rng(OpSeed(spec.seed * 0x9e3779b9ULL + 1, s));
    std::vector<KeywordId> keywords;
    for (int guard = 0;
         keywords.size() < spec.keywords_per_query && guard < 100000; ++guard) {
      const VertexId v =
          static_cast<VertexId>(rng.NextBounded(graph.NumVertices()));
      const auto kws = graph.Keywords(v);
      if (kws.empty()) continue;
      const KeywordId w = kws[rng.NextBounded(kws.size())];
      if (std::find(keywords.begin(), keywords.end(), w) == keywords.end()) {
        keywords.push_back(w);
      }
    }
    if (keywords.empty()) {
      return Status::InvalidArgument(
          "cannot build query signatures: graph has no keywords");
    }
    std::sort(keywords.begin(), keywords.end());
    signatures.push_back(std::move(keywords));
  }
  return WorkloadGenerator(std::move(spec), std::move(signatures));
}

Operation WorkloadGenerator::At(std::uint64_t index) const {
  Rng rng(OpSeed(spec_.seed, index));
  Operation op;
  op.index = index;

  const double u = rng.NextDouble();
  std::size_t kind = kNumOpKinds - 1;
  for (std::size_t k = 0; k < kNumOpKinds; ++k) {
    if (u < cumulative_[k]) {
      kind = k;
      break;
    }
  }
  op.kind = static_cast<OpKind>(kind);

  if (op.kind == OpKind::kUpdate) {
    op.delta_seed = rng.NextUint64();
    return op;
  }

  op.signature = static_cast<std::uint32_t>(
      spec_.popularity == Popularity::kZipfian
          ? rng.NextZipf(signatures_.size(), spec_.zipf_skew)
          : rng.NextBounded(signatures_.size()));
  op.query.keywords = signatures_[op.signature];
  const ParamBands& bands = spec_.params;
  op.query.k = bands.k_values[rng.NextBounded(bands.k_values.size())];
  op.query.radius =
      bands.radius_values[rng.NextBounded(bands.radius_values.size())];
  op.query.theta = bands.theta_values[rng.NextBounded(bands.theta_values.size())];
  op.query.top_l = bands.top_l_values[rng.NextBounded(bands.top_l_values.size())];
  return op;
}

std::uint64_t WorkloadGenerator::StreamDigest(std::uint64_t num_ops) const {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (std::uint64_t i = 0; i < num_ops; ++i) {
    const Operation op = At(i);
    hash = Fnv1a(hash, static_cast<std::uint64_t>(op.kind));
    if (op.kind == OpKind::kUpdate) {
      hash = Fnv1a(hash, op.delta_seed);
      continue;
    }
    hash = Fnv1a(hash, op.signature);
    hash = Fnv1a(hash, op.query.k);
    hash = Fnv1a(hash, op.query.radius);
    std::uint64_t theta_bits;
    static_assert(sizeof(theta_bits) == sizeof(op.query.theta));
    std::memcpy(&theta_bits, &op.query.theta, sizeof(theta_bits));
    hash = Fnv1a(hash, theta_bits);
    hash = Fnv1a(hash, op.query.top_l);
    for (KeywordId w : op.query.keywords) hash = Fnv1a(hash, w);
  }
  return hash;
}

}  // namespace loadgen
}  // namespace topl

#ifndef TOPL_LOADGEN_INJECTOR_H_
#define TOPL_LOADGEN_INJECTOR_H_

#include <cstdint>
#include <memory>

#include "common/result.h"
#include "engine/engine.h"
#include "loadgen/report.h"
#include "loadgen/serving_target.h"
#include "loadgen/workload.h"

namespace topl {
namespace loadgen {

/// Traffic-injection knobs, independent of the workload's *content*
/// (WorkloadSpec) — the same spec can be replayed closed-loop to find the
/// capacity ceiling and open-loop to measure tail latency at a fixed offered
/// load.
struct InjectorOptions {
  /// Injector threads. Closed loop: the concurrency (each worker fires its
  /// next operation the moment the previous one completes). Open loop: the
  /// executor pool draining the arrival schedule.
  std::size_t num_workers = 8;

  /// > 0 switches to open-loop mode: operation i's *intended* arrival time
  /// is start + i/target_qps on the monotonic clock, and its reported
  /// latency runs from that intended arrival to completion — so when the
  /// engine falls behind, queueing delay lands in the histogram instead of
  /// being silently absorbed by a slowed-down injector (coordinated
  /// omission). 0 = closed loop.
  double target_qps = 0.0;

  /// Run length. Closed loop stops issuing once the clock passes it; open
  /// loop executes exactly the arrivals scheduled before it (and runs past
  /// the nominal end if a backlog remains, which the achieved-vs-target gap
  /// then exposes).
  double duration_seconds = 5.0;

  /// Optional cap on total operations (0 = none); with a cap the run ends at
  /// whichever limit hits first. Lets smoke tests bound work exactly.
  std::uint64_t max_ops = 0;

  /// Deadline handed to progressive operations (0 = none): the anytime
  /// contract under load — expired queries return best-so-far, truncated.
  double progressive_deadline_ms = 0.0;

  /// Let progressive operations fan their scoring out over the engine's
  /// pool. Off by default: the injector already saturates the engine with
  /// inter-query concurrency, and nested fan-out mostly adds contention.
  bool progressive_parallel = false;
};

/// \brief Drives a live serving target with a WorkloadGenerator stream.
///
/// Workers claim operation indices from one shared atomic counter, so the
/// executed stream is a prefix of the generator's deterministic sequence
/// regardless of worker count. Query kinds run fully concurrently; update
/// operations serialize among themselves (one mutex around
/// snapshot -> MakeRandomDelta -> ApplyUpdate, so each delta is drawn
/// against the graph it is applied to) but never block queries — that is
/// the engine's MVCC contract, and this harness is its sustained test.
/// The target can be a single Engine or a ShardedEngine (ServingTarget
/// adapters); sharded targets additionally get per-shard routed-op counts
/// and the load-imbalance ratio in the report.
class LoadInjector {
 public:
  LoadInjector(Engine* engine, const WorkloadGenerator& generator,
               const InjectorOptions& options);
  /// `target` must outlive the injector; not owned.
  LoadInjector(ServingTarget* target, const WorkloadGenerator& generator,
               const InjectorOptions& options);

  /// Runs the load and returns the merged report. Individual operation
  /// failures do not abort the run; they are counted per kind and surfaced
  /// through LoadReport::failed (drivers exit non-zero on any).
  Result<LoadReport> Run();

 private:
  std::unique_ptr<EngineTarget> owned_target_;  // Engine* convenience ctor
  ServingTarget* target_;
  const WorkloadGenerator& generator_;
  InjectorOptions options_;
};

}  // namespace loadgen
}  // namespace topl

#endif  // TOPL_LOADGEN_INJECTOR_H_

#ifndef TOPL_LOADGEN_WORKLOAD_H_
#define TOPL_LOADGEN_WORKLOAD_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/query.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"

namespace topl {
namespace loadgen {

/// Operation kinds a workload mixes. Query kinds map 1:1 onto Engine entry
/// points; kUpdate drives Engine::ApplyUpdate concurrently with the queries,
/// which makes the harness the first sustained exerciser of the MVCC
/// snapshot-swap path.
enum class OpKind : std::uint8_t {
  kTopL = 0,         ///< Engine::Search
  kDTopL = 1,        ///< Engine::SearchDiversified
  kProgressive = 2,  ///< Engine::SearchProgressive (anytime scan)
  kUpdate = 3,       ///< Engine::ApplyUpdate of a random GraphDelta
};

inline constexpr std::size_t kNumOpKinds = 4;

inline const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kTopL:
      return "topl";
    case OpKind::kDTopL:
      return "dtopl";
    case OpKind::kProgressive:
      return "progressive";
    case OpKind::kUpdate:
      return "update";
  }
  return "?";
}

/// How query popularity is distributed over the signature pool.
enum class Popularity : std::uint8_t {
  kUniform = 0,
  kZipfian = 1,
};

/// Discrete bands the per-operation query parameters are drawn from
/// (uniformly, one independent draw per field). Mirrors the paper's §VIII
/// parameter sweeps; drivers clamp radius to the index's r_max and take the
/// theta band from the precompute's threshold set.
struct ParamBands {
  std::vector<std::uint32_t> k_values = {3, 4, 5};
  std::vector<std::uint32_t> radius_values = {1, 2};
  std::vector<double> theta_values = {0.1, 0.2, 0.3};
  std::vector<std::uint32_t> top_l_values = {3, 5, 10};
};

/// \brief Full description of a synthetic serving workload. A spec plus a
/// graph determines the operation stream bit-for-bit (see
/// WorkloadGenerator); everything a run needs to be reproduced is in here.
struct WorkloadSpec {
  /// Mix label carried into reports ("read_heavy", "mixed", ...).
  std::string name = "mixed";

  /// Fraction of operations per OpKind (indexed by OpKind, sums to 1).
  std::array<double, kNumOpKinds> mix = {0.50, 0.15, 0.25, 0.10};

  /// Popularity of the query-signature pool: kZipfian concentrates traffic
  /// on a few hot signatures (rank-frequency exponent `zipf_skew`, YCSB's
  /// default 0.99), kUniform spreads it evenly.
  Popularity popularity = Popularity::kZipfian;
  double zipf_skew = 0.99;

  /// Distinct query signatures (keyword set templates). Signature s is the
  /// rank-s most popular under kZipfian.
  std::uint32_t num_signatures = 64;

  /// Keywords per signature, drawn population-weighted from the graph so
  /// skewed keyword assignments still produce non-empty answers.
  std::uint32_t keywords_per_query = 3;

  ParamBands params;

  /// Shape of the random GraphDelta drawn per kUpdate operation.
  RandomDeltaOptions delta;

  /// Master seed: same seed + same graph => byte-identical operation stream,
  /// independent of thread count or interleaving.
  std::uint64_t seed = 42;

  /// The named mixes: read_heavy (80/10/8/2), update_heavy (45/5/0/50),
  /// progressive_scan (5/0/90/5), mixed (50/15/25/10), repeat_heavy
  /// (90/10/0/0 with zipf 1.2 over 16 signatures and single-value parameter
  /// bands — the result-cache workload) — fractions over
  /// topl/dtopl/progressive/update.
  static Result<WorkloadSpec> Named(const std::string& name);

  Status Validate() const;
};

/// One generated operation. Query kinds carry a fully-formed Query; updates
/// carry the seed from which the executor draws a MakeRandomDelta against
/// the engine's *current* snapshot (delta validity depends on graph state,
/// so materialization is deferred to apply time; the stream itself — kinds,
/// seeds, queries — stays deterministic).
struct Operation {
  std::uint64_t index = 0;
  OpKind kind = OpKind::kTopL;
  std::uint32_t signature = 0;
  Query query;
  std::uint64_t delta_seed = 0;
};

/// \brief Deterministic, thread-safe workload stream.
///
/// Operation i is a pure function of (spec, signature pool, i): At(i) seeds
/// a private Rng from the master seed and the index, so any number of
/// injector threads can claim indices in any order and the stream they
/// jointly execute is byte-identical to a single-threaded run — the
/// reproducibility contract the determinism tests pin down.
class WorkloadGenerator {
 public:
  /// Builds the signature pool from `graph` (population-weighted keyword
  /// draws, deterministic per spec.seed). Fails when the spec is invalid or
  /// the graph has no keywords to sample.
  static Result<WorkloadGenerator> Create(WorkloadSpec spec, const Graph& graph);

  /// The i-th operation of the stream. Thread-safe, O(|Q|) per call.
  Operation At(std::uint64_t index) const;

  /// FNV-1a digest over the first `num_ops` operations (kind, parameters,
  /// keywords, delta seeds). Two runs with the same spec and graph agree on
  /// this value; it is emitted into BENCH_serve.json as the determinism
  /// witness.
  std::uint64_t StreamDigest(std::uint64_t num_ops) const;

  const WorkloadSpec& spec() const { return spec_; }
  const std::vector<KeywordId>& signature(std::uint32_t s) const {
    return signatures_[s];
  }

 private:
  WorkloadGenerator(WorkloadSpec spec,
                    std::vector<std::vector<KeywordId>> signatures);

  WorkloadSpec spec_;
  /// Cumulative mix fractions, for O(kinds) kind selection.
  std::array<double, kNumOpKinds> cumulative_{};
  std::vector<std::vector<KeywordId>> signatures_;
};

}  // namespace loadgen
}  // namespace topl

#endif  // TOPL_LOADGEN_WORKLOAD_H_

#ifndef TOPL_LOADGEN_SERVING_TARGET_H_
#define TOPL_LOADGEN_SERVING_TARGET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "engine/engine.h"
#include "shard/sharded_engine.h"

namespace topl {
namespace loadgen {

/// \brief What the load injector drives: the serving surface an Engine and a
/// ShardedEngine have in common.
///
/// The injector is deliberately agnostic about what is behind the interface —
/// the same deterministic operation stream replays against a single engine
/// and against a sharded deployment, which is exactly how bench_sharded
/// compares the two. Shard-aware accounting (NumShards / ShardOps) defaults
/// to the single-shard trivial answers so the adapters stay thin.
class ServingTarget {
 public:
  virtual ~ServingTarget() = default;

  virtual Result<TopLResult> Search(const Query& query) = 0;
  virtual Result<DTopLResult> SearchDiversified(const Query& query,
                                                const DTopLOptions& options) = 0;
  virtual Result<TopLResult> SearchProgressive(
      const Query& query, const ProgressiveOptions& options) = 0;
  virtual Result<RebuildScope> ApplyUpdate(const GraphDelta& delta) = 0;

  /// The current graph view the injector draws update deltas against.
  virtual std::shared_ptr<const EngineSnapshot> snapshot() const = 0;
  virtual EngineStats Stats() const = 0;

  virtual std::uint32_t NumShards() const { return 1; }
  /// Cumulative per-shard routed-operation counters (empty when the target
  /// has no routing layer — a single engine serves every operation).
  virtual std::vector<std::uint64_t> ShardOps() const { return {}; }
};

/// Serves straight off one Engine.
class EngineTarget final : public ServingTarget {
 public:
  explicit EngineTarget(Engine* engine) : engine_(engine) {}

  Result<TopLResult> Search(const Query& query) override {
    return engine_->Search(query);
  }
  Result<DTopLResult> SearchDiversified(const Query& query,
                                        const DTopLOptions& options) override {
    return engine_->SearchDiversified(query, options);
  }
  Result<TopLResult> SearchProgressive(
      const Query& query, const ProgressiveOptions& options) override {
    return engine_->SearchProgressive(query, options);
  }
  Result<RebuildScope> ApplyUpdate(const GraphDelta& delta) override {
    return engine_->ApplyUpdate(delta);
  }
  std::shared_ptr<const EngineSnapshot> snapshot() const override {
    return engine_->snapshot();
  }
  EngineStats Stats() const override { return engine_->Stats(); }

 private:
  Engine* engine_;
};

/// Serves through a ShardedEngine's route → search → merge coordinator.
class ShardedTarget final : public ServingTarget {
 public:
  explicit ShardedTarget(ShardedEngine* engine) : engine_(engine) {}

  Result<TopLResult> Search(const Query& query) override {
    return engine_->Search(query);
  }
  Result<DTopLResult> SearchDiversified(const Query& query,
                                        const DTopLOptions& options) override {
    return engine_->SearchDiversified(query, options);
  }
  Result<TopLResult> SearchProgressive(
      const Query& query, const ProgressiveOptions& options) override {
    return engine_->SearchProgressive(query, options);
  }
  Result<RebuildScope> ApplyUpdate(const GraphDelta& delta) override {
    return engine_->ApplyUpdate(delta);
  }
  std::shared_ptr<const EngineSnapshot> snapshot() const override {
    return engine_->snapshot();
  }
  EngineStats Stats() const override { return engine_->Stats(); }
  std::uint32_t NumShards() const override { return engine_->num_shards(); }
  std::vector<std::uint64_t> ShardOps() const override {
    return engine_->ShardOps();
  }

 private:
  ShardedEngine* engine_;
};

}  // namespace loadgen
}  // namespace topl

#endif  // TOPL_LOADGEN_SERVING_TARGET_H_

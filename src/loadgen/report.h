#ifndef TOPL_LOADGEN_REPORT_H_
#define TOPL_LOADGEN_REPORT_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "loadgen/recorder.h"
#include "loadgen/workload.h"

namespace topl {
namespace loadgen {

/// Latency/outcome summary of one operation kind (milliseconds; percentiles
/// histogram-estimated at the geometric bucket midpoint, max exact).
struct OpKindSummary {
  std::uint64_t count = 0;
  std::uint64_t failed = 0;
  std::uint64_t truncated = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
  double mean_ms = 0.0;
  /// Mean time inside the engine call; diverges from mean_ms when the run
  /// builds a queue (open loop behind on its arrival schedule).
  double mean_service_ms = 0.0;
};

/// Service-level objectives a run is checked against. 0 disables a check;
/// failed operations always count against max_failed.
struct SloThresholds {
  double min_ops_per_s = 0.0;
  double max_p99_ms = 0.0;
  double max_p999_ms = 0.0;
  std::uint64_t max_failed = 0;
};

/// \brief Aggregated result of one load run, as written to BENCH_serve.json.
struct LoadReport {
  std::string mix;
  bool open_loop = false;
  double target_qps = 0.0;    // 0 in closed-loop mode
  double achieved_qps = 0.0;  // completed ops / wall seconds
  double ops_per_s = 0.0;     // same value; kept as the gated-metric name
  double wall_seconds = 0.0;
  std::uint64_t ops_total = 0;
  std::uint64_t failed = 0;
  std::uint64_t truncated = 0;
  /// Overload accounting (engine admission gate + injector retry policy):
  /// Unavailable responses observed, operations served as degraded anytime
  /// answers, and re-issued attempts after a shed response.
  std::uint64_t shed = 0;
  std::uint64_t degraded = 0;
  std::uint64_t retried = 0;
  std::uint64_t updates_applied = 0;
  std::uint64_t snapshot_epoch = 0;
  std::uint64_t stream_digest = 0;

  /// Result-cache activity *during the measured run* (deltas over the
  /// engine's cumulative counters, so warmup fills don't count as measured
  /// hits). All zero when the engine runs cache-disabled.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_coalesced = 0;
  /// hits / (hits + misses + coalesced); 0 when the cache saw no lookups.
  double hit_rate = 0.0;

  /// Sharded targets: shard count, operations *routed* to each shard during
  /// the run (query fan-out only — a query touching three shards counts
  /// three; updates touch every shard and are excluded), and the routing
  /// balance as max/mean of shard_ops. 1.0 = perfectly even; 0 when the
  /// target has fewer than two shards or routed nothing.
  std::uint32_t num_shards = 1;
  std::vector<std::uint64_t> shard_ops;
  double shard_imbalance = 0.0;

  std::array<OpKindSummary, kNumOpKinds> per_kind{};
  /// All kinds folded into one distribution (what the headline SLOs gate).
  OpKindSummary overall;

  /// Human-readable violation descriptions; empty = all SLOs met.
  std::vector<std::string> CheckSlo(const SloThresholds& slo) const;

  /// Pretty-printed run table for stdout.
  std::string ToString() const;

  /// The BENCH_serve.json payload (self-contained object, trailing newline).
  std::string ToJson() const;
};

/// Folds per-worker recorders into a report. `wall_seconds` is the measured
/// run duration (last completion minus start), `target_qps` 0 for closed
/// loop.
LoadReport BuildReport(std::span<const LoadRecorder> recorders,
                       const std::string& mix, bool open_loop,
                       double target_qps, double wall_seconds);

}  // namespace loadgen
}  // namespace topl

#endif  // TOPL_LOADGEN_REPORT_H_

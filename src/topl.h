#ifndef TOPL_TOPL_H_
#define TOPL_TOPL_H_

/// \file
/// Umbrella header for the topl library: Top-L Most Influential Community
/// Detection over social networks (TopL-ICDE, ICDE 2024) and its diversified
/// variant (DTopL-ICDE).
///
/// Typical pipeline — an Engine owns the offline phase (loading or building
/// the index as needed) and serves TopL/DTopL queries from any thread:
/// \code
///   auto engine = topl::Engine::Open({.graph_path = "graph.bin",
///                                     .index_path = "index.bin"});
///   auto answer = (*engine)->Search({.keywords = {1, 8, 21}});
/// \endcode
///
/// See engine/engine.h for batched (SearchBatch) and async (Submit) serving,
/// and the individual headers below for the pipeline's building blocks
/// (GraphBuilder / generators -> PrecomputedData -> TreeIndex -> detectors).

#include "baselines/atindex.h"
#include "baselines/im_greedy.h"
#include "common/fault_injection.h"
#include "common/latency_histogram.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/brute_force.h"
#include "core/community_result.h"
#include "core/dtopl_detector.h"
#include "core/query.h"
#include "core/search_control.h"
#include "core/seed_community.h"
#include "core/topl_detector.h"
#include "engine/engine.h"
#include "engine/engine_options.h"
#include "engine/engine_stats.h"
#include "graph/bfs.h"
#include "graph/binary_io.h"
#include "graph/connectivity.h"
#include "graph/delta_io.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/graph_delta.h"
#include "graph/local_subgraph.h"
#include "graph/reorder.h"
#include "graph/types.h"
#include "index/index_io.h"
#include "index/index_update.h"
#include "index/precompute.h"
#include "index/tree_index.h"
#include "influence/diversity.h"
#include "influence/ic_simulator.h"
#include "influence/influence_calculator.h"
#include "influence/propagation.h"
#include "keywords/bit_vector.h"
#include "keywords/keyword_dictionary.h"
#include "loadgen/injector.h"
#include "loadgen/recorder.h"
#include "loadgen/report.h"
#include "loadgen/serving_target.h"
#include "loadgen/workload.h"
#include "shard/shard_partition.h"
#include "shard/shard_update.h"
#include "shard/sharded_engine.h"
#include "storage/artifact.h"
#include "storage/atomic_file.h"
#include "storage/checksum.h"
#include "storage/mapped_file.h"
#include "storage/update_journal.h"
#include "storage/varint.h"
#include "truss/kcore.h"
#include "truss/local_truss.h"
#include "truss/support.h"
#include "truss/truss_decomposition.h"

#endif  // TOPL_TOPL_H_

#include "keywords/bit_vector.h"

#include "common/check.h"

namespace topl {

namespace {

// splitmix64 finalizer: cheap, well-mixed, and stable across platforms — the
// signature layout is part of the serialized index format.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

BitVector::BitVector(std::uint32_t bits)
    : bits_(bits), words_((bits + 63) / 64, 0) {}

std::uint32_t BitVector::HashPosition(KeywordId w, std::uint32_t bits) {
  TOPL_DCHECK(bits > 0, "BitVector::HashPosition on zero-width signature");
  return static_cast<std::uint32_t>(Mix(w) % bits);
}

void BitVector::AddKeyword(KeywordId w) { SetBit(HashPosition(w, bits_)); }

void BitVector::SetBit(std::uint32_t pos) {
  TOPL_DCHECK(pos < bits_, "BitVector::SetBit out of range");
  words_[pos >> 6] |= (1ULL << (pos & 63));
}

bool BitVector::TestBit(std::uint32_t pos) const {
  TOPL_DCHECK(pos < bits_, "BitVector::TestBit out of range");
  return (words_[pos >> 6] >> (pos & 63)) & 1ULL;
}

void BitVector::OrWith(const BitVector& other) {
  TOPL_DCHECK(bits_ == other.bits_, "BitVector width mismatch in OrWith");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

bool BitVector::IntersectsAny(const BitVector& other) const {
  TOPL_DCHECK(bits_ == other.bits_, "BitVector width mismatch in IntersectsAny");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

bool BitVector::AllZero() const {
  for (std::uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

void BitVector::Clear() {
  for (std::uint64_t& w : words_) w = 0;
}

BitVector BitVector::FromKeywords(std::span<const KeywordId> keywords,
                                  std::uint32_t bits) {
  BitVector bv(bits);
  for (KeywordId w : keywords) bv.AddKeyword(w);
  return bv;
}

}  // namespace topl

#ifndef TOPL_KEYWORDS_KEYWORD_DICTIONARY_H_
#define TOPL_KEYWORDS_KEYWORD_DICTIONARY_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/types.h"

namespace topl {

/// \brief Bidirectional mapping between human-readable keyword strings
/// ("Movies", "Books", ...) and the dense KeywordIds stored on Graph
/// vertices. Algorithms operate on ids; the dictionary exists at the API rim
/// (loaders, examples, result rendering).
class KeywordDictionary {
 public:
  KeywordDictionary() = default;

  /// Returns the id for `keyword`, interning it if new.
  KeywordId Intern(std::string_view keyword);

  /// Returns the id of an existing keyword, or nullopt.
  std::optional<KeywordId> Find(std::string_view keyword) const;

  /// The string for an id; ids come from Intern, so out-of-range is a
  /// programmer error (checked).
  const std::string& Name(KeywordId id) const;

  std::size_t size() const { return names_.size(); }

  /// Interns every string and returns the sorted, deduplicated id list —
  /// the shape Query::keywords expects.
  std::vector<KeywordId> InternAll(const std::vector<std::string>& keywords);

 private:
  std::unordered_map<std::string, KeywordId> ids_;
  std::vector<std::string> names_;
};

}  // namespace topl

#endif  // TOPL_KEYWORDS_KEYWORD_DICTIONARY_H_

#ifndef TOPL_KEYWORDS_BIT_VECTOR_H_
#define TOPL_KEYWORDS_BIT_VECTOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace topl {

/// \brief Fixed-width hashed keyword signature (the paper's `BV`).
///
/// Keywords hash into one of B bit positions via f(w) (§V-A); signatures of
/// vertex sets are the bit-OR of member signatures. Signatures admit false
/// positives (two keywords may share a bit) but never false negatives, which
/// is exactly what Lemmas 1 and 5 need: an empty AND with the query signature
/// proves the absence of every query keyword.
class BitVector {
 public:
  /// Creates an all-zero signature of `bits` bits (rounded up to 64).
  explicit BitVector(std::uint32_t bits = 0);

  BitVector(const BitVector&) = default;
  BitVector& operator=(const BitVector&) = default;
  BitVector(BitVector&&) = default;
  BitVector& operator=(BitVector&&) = default;

  /// Deterministic keyword-to-position hash f(w) ∈ [0, bits).
  static std::uint32_t HashPosition(KeywordId w, std::uint32_t bits);

  std::uint32_t bits() const { return bits_; }
  std::size_t num_words() const { return words_.size(); }

  /// Sets the bit for keyword w.
  void AddKeyword(KeywordId w);

  /// Sets raw bit position `pos`.
  void SetBit(std::uint32_t pos);
  bool TestBit(std::uint32_t pos) const;

  /// this |= other (other must have the same width).
  void OrWith(const BitVector& other);

  /// True iff (this AND other) has any set bit — i.e., the signature cannot
  /// rule out a shared keyword.
  bool IntersectsAny(const BitVector& other) const;

  bool AllZero() const;
  void Clear();

  /// Raw 64-bit words (little-endian bit order), for serialization.
  std::span<const std::uint64_t> words() const { return words_; }
  std::span<std::uint64_t> mutable_words() { return words_; }

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.bits_ == b.bits_ && a.words_ == b.words_;
  }

  /// Builds the query signature Q.BV from a keyword list.
  static BitVector FromKeywords(std::span<const KeywordId> keywords,
                                std::uint32_t bits);

 private:
  std::uint32_t bits_;
  std::vector<std::uint64_t> words_;
};

}  // namespace topl

#endif  // TOPL_KEYWORDS_BIT_VECTOR_H_

#include "keywords/keyword_dictionary.h"

#include <algorithm>

#include "common/check.h"

namespace topl {

KeywordId KeywordDictionary::Intern(std::string_view keyword) {
  auto it = ids_.find(std::string(keyword));
  if (it != ids_.end()) return it->second;
  const KeywordId id = static_cast<KeywordId>(names_.size());
  names_.emplace_back(keyword);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<KeywordId> KeywordDictionary::Find(std::string_view keyword) const {
  auto it = ids_.find(std::string(keyword));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& KeywordDictionary::Name(KeywordId id) const {
  TOPL_CHECK(id < names_.size(), "KeywordDictionary::Name: unknown id");
  return names_[id];
}

std::vector<KeywordId> KeywordDictionary::InternAll(
    const std::vector<std::string>& keywords) {
  std::vector<KeywordId> ids;
  ids.reserve(keywords.size());
  for (const std::string& kw : keywords) ids.push_back(Intern(kw));
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace topl

#ifndef TOPL_COMMON_FAULT_INJECTION_H_
#define TOPL_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace topl {
namespace fault {

/// \brief Named failure points for crash/IO-fault testing of the storage
/// layer.
///
/// Every durability-critical syscall site (artifact rewrite, journal append,
/// recovery replay, mmap open) names a fault point and asks this registry
/// what to do before performing the real operation. In normal operation the
/// check is a single relaxed atomic load of a global counter (zero when no
/// point is armed); when `TOPL_ENABLE_FAULT_INJECTION` is not defined the
/// hooks compile to nothing and `Enabled()` is `false`, so release builds
/// carry no fault-injection surface at all.
///
/// The point names are a closed, centrally registered set (`AllPoints()`),
/// not ad-hoc strings: the crash-torture test iterates the registry, arms
/// each point in crash mode, forks a child that runs the update/journal/
/// rewrite path, and asserts the parent can recover with no divergence. A
/// debug-only hit log (`HitPoints()`) lets tests assert the registry and the
/// call sites have not drifted apart.
///
/// Arming is process-local state inherited across fork(), which is exactly
/// what the torture test needs: the parent arms, forks, and the child dies
/// at the armed point while the parent's on-disk state is what a real crash
/// would leave behind.

/// What an armed fault point does when it fires.
enum class Action : std::uint8_t {
  kNone = 0,    // not armed / armed for a different point
  kIOError,     // site returns an injected Status::IOError
  kShortWrite,  // site persists a prefix of the payload, then fails
  kCrash,       // process exits immediately (simulated SIGKILL, no flush)
};

/// Compile-time switch; false in builds without TOPL_ENABLE_FAULT_INJECTION.
constexpr bool Enabled() {
#if defined(TOPL_ENABLE_FAULT_INJECTION)
  return true;
#else
  return false;
#endif
}

#if defined(TOPL_ENABLE_FAULT_INJECTION)

/// Arms `point` to perform `action` on its `fire_on_hit`-th execution
/// (1 = first). Only one point is armed at a time; re-arming replaces the
/// previous arming. Thread-safe.
void Arm(const std::string& point, Action action, std::uint64_t fire_on_hit = 1);

/// Disarms whatever is armed and clears the hit log.
void Disarm();

/// The closed set of registered fault-point names. A name used by a call
/// site but absent here (or vice versa) is a bug; see
/// crash_torture_test.cc's coverage assertion.
std::vector<std::string> AllPoints();

/// Every distinct point name executed since the last Disarm(), in first-hit
/// order. Lets tests assert a code path actually crossed the points the
/// sweep relies on.
std::vector<std::string> HitPoints();

/// Called by instrumented sites: records the hit and returns the action to
/// take (kCrash never returns — the process exits with code 137).
Action Check(const char* point);

/// Convenience for kIOError sites.
inline Status InjectedError(const char* point) {
  return Status::IOError(std::string("injected fault at ") + point);
}

#else

inline void Arm(const std::string&, Action, std::uint64_t = 1) {}
inline void Disarm() {}
inline std::vector<std::string> AllPoints() { return {}; }
inline std::vector<std::string> HitPoints() { return {}; }
inline Action Check(const char*) { return Action::kNone; }
inline Status InjectedError(const char*) { return Status::OK(); }

#endif  // TOPL_ENABLE_FAULT_INJECTION

}  // namespace fault

/// Hook macro for Status- or Result-returning functions: evaluates the named
/// point and early-returns an injected IOError when armed so. kCrash exits
/// inside Check(); kShortWrite must be handled explicitly by sites that can
/// express a torn write (see atomic_file.cc / update_journal.cc).
#if defined(TOPL_ENABLE_FAULT_INJECTION)
#define TOPL_FAULT_POINT(name)                                        \
  do {                                                                \
    if (::topl::fault::Check(name) == ::topl::fault::Action::kIOError) \
      return ::topl::fault::InjectedError(name);                      \
  } while (false)
#else
#define TOPL_FAULT_POINT(name) \
  do {                         \
  } while (false)
#endif

}  // namespace topl

#endif  // TOPL_COMMON_FAULT_INJECTION_H_

#include "common/fault_injection.h"

#if defined(TOPL_ENABLE_FAULT_INJECTION)

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <mutex>

namespace topl {
namespace fault {

namespace {

// The closed registry. Grouped by subsystem; crash_torture_test sweeps the
// subset reachable from the update/journal/rewrite path and asserts every
// one of these names is actually hit by an uninterrupted run, so adding a
// call site without a registry entry (or the reverse) fails loudly.
constexpr const char* kAllPoints[] = {
    // atomic_file.cc — the write-temp → fsync → rename → fsync-dir ladder.
    "atomic.open",
    "atomic.write",
    "atomic.fsync",
    "atomic.rename",
    "atomic.fsync_dir",
    // update_journal.cc — append and open/replay.
    "journal.open",
    "journal.append",
    "journal.fsync",
    "journal.replay",
    // artifact.cc / mapped_file.cc — artifact rewrite and open.
    "artifact.write",
    "mapped_file.open",
};

// Fast path: sites load this and bail when nothing is armed.
std::atomic<bool> g_armed{false};

std::mutex g_mu;
std::string g_point;          // guarded by g_mu
Action g_action = Action::kNone;  // guarded by g_mu
std::uint64_t g_fire_on_hit = 1;  // guarded by g_mu
std::uint64_t g_hits = 0;         // hits of the armed point, guarded by g_mu
std::vector<std::string> g_hit_log;  // guarded by g_mu

void LogHit(const char* point) {
  if (std::find(g_hit_log.begin(), g_hit_log.end(), point) == g_hit_log.end()) {
    g_hit_log.emplace_back(point);
  }
}

}  // namespace

void Arm(const std::string& point, Action action, std::uint64_t fire_on_hit) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_point = point;
  g_action = action;
  g_fire_on_hit = fire_on_hit == 0 ? 1 : fire_on_hit;
  g_hits = 0;
  g_armed.store(true, std::memory_order_release);
}

void Disarm() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_point.clear();
  g_action = Action::kNone;
  g_hits = 0;
  g_hit_log.clear();
  g_armed.store(false, std::memory_order_release);
}

std::vector<std::string> AllPoints() {
  return {std::begin(kAllPoints), std::end(kAllPoints)};
}

std::vector<std::string> HitPoints() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_hit_log;
}

Action Check(const char* point) {
  if (!g_armed.load(std::memory_order_acquire)) return Action::kNone;
  std::lock_guard<std::mutex> lock(g_mu);
  LogHit(point);
  if (g_action == Action::kNone || g_point != point) return Action::kNone;
  if (++g_hits != g_fire_on_hit) return Action::kNone;
  if (g_action == Action::kCrash) {
    // Simulated SIGKILL: no stream flush, no atexit, no destructors — the
    // on-disk state is exactly what the kernel had at this instant.
    ::_exit(137);
  }
  return g_action;
}

}  // namespace fault
}  // namespace topl

#endif  // TOPL_ENABLE_FAULT_INJECTION

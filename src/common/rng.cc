#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace topl {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  TOPL_DCHECK(bound > 0, "NextBounded requires bound > 0");
  // Lemire's multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  // Box–Muller; guard against log(0).
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

std::uint64_t Rng::NextZipf(std::uint64_t n, double s) {
  TOPL_DCHECK(n > 0, "NextZipf requires n > 0");
  // Rejection-inversion sampling (W. Hörmann & G. Derflinger, 1996) over the
  // rank domain [1, n]; returns a 0-based rank.
  if (n == 1) return 0;
  const double v = static_cast<double>(n);
  auto h = [s](double x) {
    // Integral of x^-s.
    if (s == 1.0) return std::log(x);
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h_inv = [s](double y) {
    if (s == 1.0) return std::exp(y);
    return std::pow(1.0 + y * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double h_x0 = h(0.5) - std::pow(1.0, -s);  // h(1/2) - 1^-s
  const double h_v = h(v + 0.5);
  for (;;) {
    const double u = h_x0 + NextDouble() * (h_v - h_x0);
    const double x = h_inv(u);
    const std::uint64_t k =
        static_cast<std::uint64_t>(std::max(1.0, std::min(v, std::floor(x + 0.5))));
    const double kd = static_cast<double>(k);
    if (u >= h(kd + 0.5) - std::pow(kd, -s)) {
      return k - 1;
    }
  }
}

}  // namespace topl

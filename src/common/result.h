#ifndef TOPL_COMMON_RESULT_H_
#define TOPL_COMMON_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace topl {

/// \brief A value-or-Status pair, the return type of fallible constructors.
///
/// Minimal `absl::StatusOr`-alike: holds either an OK status plus a value, or
/// a non-OK status. Accessing the value of a failed Result aborts (see
/// TOPL_CHECK), so callers must test `ok()` first.
template <typename T>
class Result {
 public:
  /// Implicit construction from a failure status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    TOPL_CHECK(!status_.ok(), "Result constructed from OK status without a value");
  }

  /// Implicit construction from a value (status becomes OK).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    TOPL_CHECK(ok(), "Result::value() on failed Result");
    return *value_;
  }
  T& value() & {
    TOPL_CHECK(ok(), "Result::value() on failed Result");
    return *value_;
  }
  T&& value() && {
    TOPL_CHECK(ok(), "Result::value() on failed Result");
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace topl

#endif  // TOPL_COMMON_RESULT_H_

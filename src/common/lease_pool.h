#ifndef TOPL_COMMON_LEASE_POOL_H_
#define TOPL_COMMON_LEASE_POOL_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace topl {

/// \brief Lazily-growing free-list pool of per-worker objects handed out
/// under an RAII lease.
///
/// For state that is expensive to build (O(n) scratch arrays) and
/// deliberately single-threaded: the pool creates instances on demand up to
/// peak concurrency and recycles them across leases, so steady-state use
/// allocates nothing. Acquire/Release are a short mutex hold (free-list
/// push/pop) per lease; construction runs outside the lock so concurrent
/// growth does not serialize. Instances are destroyed with the pool, which
/// must outlive its leases.
template <typename T>
class LeasePool {
 public:
  explicit LeasePool(std::function<std::unique_ptr<T>()> factory)
      : factory_(std::move(factory)) {}

  LeasePool(const LeasePool&) = delete;
  LeasePool& operator=(const LeasePool&) = delete;

  /// RAII lease; the instance returns to the free list on destruction (also
  /// on exception unwind).
  class Lease {
   public:
    explicit Lease(LeasePool* pool) : pool_(pool), object_(pool->Acquire()) {}
    ~Lease() { pool_->Release(object_); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    T& operator*() const { return *object_; }
    T* operator->() const { return object_; }

   private:
    LeasePool* pool_;
    T* object_;
  };

  /// Instances created so far (== peak concurrent leases).
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return all_.size();
  }

 private:
  T* Acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        T* object = free_.back();
        free_.pop_back();
        return object;
      }
    }
    std::unique_ptr<T> created = factory_();
    T* object = created.get();
    std::lock_guard<std::mutex> lock(mu_);
    all_.push_back(std::move(created));
    return object;
  }

  void Release(T* object) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(object);
  }

  std::function<std::unique_ptr<T>()> factory_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<T>> all_;  // all ever created
  std::vector<T*> free_;
};

}  // namespace topl

#endif  // TOPL_COMMON_LEASE_POOL_H_

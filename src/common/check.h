#ifndef TOPL_COMMON_CHECK_H_
#define TOPL_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace topl {

/// Internal invariant checks. These guard programmer errors (broken
/// preconditions inside the library), not user input — user input is
/// validated with Status returns. Enabled in all build types: the checked
/// conditions are O(1) and sit outside inner loops.
#define TOPL_CHECK(cond, msg)                                               \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "TOPL_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, (msg));                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

/// Debug-only variant for checks inside hot loops.
#ifndef NDEBUG
#define TOPL_DCHECK(cond, msg) TOPL_CHECK(cond, msg)
#else
#define TOPL_DCHECK(cond, msg) \
  do {                         \
  } while (false)
#endif

}  // namespace topl

#endif  // TOPL_COMMON_CHECK_H_

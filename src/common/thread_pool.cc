#include "common/thread_pool.h"

#include <algorithm>

namespace topl {

ThreadPool::ThreadPool(std::size_t num_threads) : num_threads_(num_threads) {
  if (num_threads_ == 0) {
    num_threads_ = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& body,
                             std::size_t grain) {
  ParallelForWithWorker(
      begin, end, [&body](std::size_t, std::size_t i) { body(i); }, grain);
}

void ThreadPool::ParallelForWithWorker(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body, std::size_t grain) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  if (num_threads_ == 1 || total <= grain) {
    for (std::size_t i = begin; i < end; ++i) body(0, i);
    return;
  }
  std::atomic<std::size_t> next{begin};
  auto worker = [&](std::size_t worker_id) {
    for (;;) {
      const std::size_t chunk_begin = next.fetch_add(grain);
      if (chunk_begin >= end) return;
      const std::size_t chunk_end = std::min(end, chunk_begin + grain);
      for (std::size_t i = chunk_begin; i < chunk_end; ++i) body(worker_id, i);
    }
  };
  const std::size_t spawn = std::min(num_threads_ - 1, (total + grain - 1) / grain);
  std::vector<std::thread> threads;
  threads.reserve(spawn);
  for (std::size_t t = 0; t < spawn; ++t) {
    threads.emplace_back(worker, t + 1);
  }
  worker(0);  // The calling thread participates as worker 0.
  for (auto& t : threads) t.join();
}

}  // namespace topl

#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace topl {

ThreadPool::ThreadPool(std::size_t num_threads) : num_threads_(num_threads) {
  if (num_threads_ == 0) {
    num_threads_ = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (auto& worker : queue_workers_) worker.join();
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& body,
                             std::size_t grain) {
  ParallelForWithWorker(
      begin, end, [&body](std::size_t, std::size_t i) { body(i); }, grain);
}

void ThreadPool::ParallelForWithWorker(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body, std::size_t grain) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  if (num_threads_ == 1 || total <= grain) {
    for (std::size_t i = begin; i < end; ++i) body(0, i);
    return;
  }
  std::atomic<std::size_t> next{begin};
  auto worker = [&](std::size_t worker_id) {
    for (;;) {
      const std::size_t chunk_begin = next.fetch_add(grain);
      if (chunk_begin >= end) return;
      const std::size_t chunk_end = std::min(end, chunk_begin + grain);
      for (std::size_t i = chunk_begin; i < chunk_end; ++i) body(worker_id, i);
    }
  };
  const std::size_t spawn = std::min(num_threads_ - 1, (total + grain - 1) / grain);
  std::vector<std::thread> threads;
  threads.reserve(spawn);
  for (std::size_t t = 0; t < spawn; ++t) {
    threads.emplace_back(worker, t + 1);
  }
  worker(0);  // The calling thread participates as worker 0.
  for (auto& t : threads) t.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_workers_.empty()) {
      queue_workers_.reserve(num_threads_);
      for (std::size_t t = 0; t < num_threads_; ++t) {
        queue_workers_.emplace_back([this] { QueueWorkerLoop(); });
      }
    }
    queue_.push_back(std::move(task));
    in_flight_.fetch_add(1, std::memory_order_relaxed);
  }
  queue_cv_.notify_one();
}

void ThreadPool::QueueWorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::size_t ThreadPool::PendingTasks() const {
  return in_flight_.load(std::memory_order_relaxed);
}

}  // namespace topl

#include "common/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/check.h"

namespace topl {

ThreadPool::ThreadPool(std::size_t num_threads) : num_threads_(num_threads) {
  if (num_threads_ == 0) {
    num_threads_ = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
    workers.swap(queue_workers_);  // empty on a second call: idempotent
  }
  queue_cv_.notify_all();
  for (auto& worker : workers) worker.join();
}

bool ThreadPool::is_shutdown() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return stopping_;
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& body,
                             std::size_t grain) {
  ParallelForWithWorker(
      begin, end, [&body](std::size_t, std::size_t i) { body(i); }, grain);
}

void ThreadPool::ParallelForWithWorker(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body, std::size_t grain) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  if (num_threads_ == 1 || total <= grain) {
    for (std::size_t i = begin; i < end; ++i) body(0, i);
    return;
  }
  std::atomic<std::size_t> next{begin};
  auto worker = [&](std::size_t worker_id) {
    for (;;) {
      const std::size_t chunk_begin = next.fetch_add(grain);
      if (chunk_begin >= end) return;
      const std::size_t chunk_end = std::min(end, chunk_begin + grain);
      for (std::size_t i = chunk_begin; i < chunk_end; ++i) body(worker_id, i);
    }
  };
  const std::size_t spawn = std::min(num_threads_ - 1, (total + grain - 1) / grain);
  std::vector<std::thread> threads;
  threads.reserve(spawn);
  for (std::size_t t = 0; t < spawn; ++t) {
    threads.emplace_back(worker, t + 1);
  }
  worker(0);  // The calling thread participates as worker 0.
  for (auto& t : threads) t.join();
}

bool ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    // A task queued after shutdown began would never be claimed (workers are
    // gone or draining) and respawning workers here would race the joins —
    // reject it instead; Submit turns the rejection into a typed error.
    if (stopping_) return false;
    if (queue_workers_.empty()) {
      queue_workers_.reserve(num_threads_);
      for (std::size_t t = 0; t < num_threads_; ++t) {
        queue_workers_.emplace_back([this] { QueueWorkerLoop(); });
      }
    }
    queue_.push_back(std::move(task));
    in_flight_.fetch_add(1, std::memory_order_relaxed);
  }
  queue_cv_.notify_one();
  return true;
}

void ThreadPool::QueueWorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::size_t ThreadPool::PendingTasks() const {
  return in_flight_.load(std::memory_order_relaxed);
}

// Shared between the group handle and the claim tokens it enqueues. The
// tokens only hold the State (not the TaskGroup), so a token drained by a
// queue worker after the group's Wait() already ran everything is harmless.
struct ThreadPool::TaskGroup::State {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::function<void()>> pending;  // spawned, not yet claimed
  std::size_t running = 0;                    // claimed, not yet finished
  std::exception_ptr error;

  // Pops one pending subtask (nullptr when none) and marks it running.
  std::function<void()> Claim() {
    std::lock_guard<std::mutex> lock(mu);
    if (pending.empty()) return nullptr;
    std::function<void()> fn = std::move(pending.front());
    pending.pop_front();
    ++running;
    return fn;
  }

  void Finish(std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(mu);
    if (e && !error) error = std::move(e);
    if (--running == 0 && pending.empty()) cv.notify_all();
  }

  void Run(std::function<void()> fn) {
    std::exception_ptr e;
    try {
      fn();
    } catch (...) {
      e = std::current_exception();
    }
    Finish(std::move(e));
  }
};

ThreadPool::TaskGroup::TaskGroup(ThreadPool* pool)
    : pool_(pool), state_(std::make_shared<State>()) {}

ThreadPool::TaskGroup::~TaskGroup() {
  std::lock_guard<std::mutex> lock(state_->mu);
  TOPL_CHECK(state_->pending.empty() && state_->running == 0,
             "TaskGroup destroyed with outstanding subtasks; call Wait()");
}

void ThreadPool::TaskGroup::Spawn(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->pending.push_back(std::move(fn));
  }
  // Offer the unit of work to the queue workers via a claim token. A
  // single-threaded pool skips the offer: Wait() will run everything inline,
  // and not spinning up a queue worker keeps the pool truly one thread.
  if (pool_->num_threads_ > 1) {
    pool_->Enqueue([state = state_] {
      if (std::function<void()> fn = state->Claim()) state->Run(std::move(fn));
    });
  }
}

void ThreadPool::TaskGroup::Wait() {
  // Help-first: drain our own pending subtasks on this thread. Queue workers
  // racing us just find an empty pending list.
  while (std::function<void()> fn = state_->Claim()) state_->Run(std::move(fn));
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] {
      return state_->running == 0 && state_->pending.empty();
    });
    error = std::exchange(state_->error, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace topl

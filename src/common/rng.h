#ifndef TOPL_COMMON_RNG_H_
#define TOPL_COMMON_RNG_H_

#include <cstdint>

namespace topl {

/// \brief Deterministic pseudo-random number generator (xoshiro256**).
///
/// All randomized components of the library (synthetic generators, keyword
/// assignment, test sweeps) draw from this generator so that a fixed seed
/// reproduces a workload bit-for-bit across platforms — std::mt19937's
/// distributions are not portable across standard libraries, xoshiro plus our
/// own distribution code is.
class Rng {
 public:
  /// Seeds the state via splitmix64 so that any 64-bit seed (including 0)
  /// yields a well-mixed state.
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t NextUint64();

  /// Uniform integer in [0, bound) using Lemire's unbiased rejection method.
  /// bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box–Muller (no state caching; two uniforms/call).
  double NextGaussian();

  /// Zipf-distributed integer in [0, n) with exponent s > 0, drawn by
  /// inverting the cumulative weights (exact, O(log n) per draw after O(n)
  /// one-time setup is avoided — uses rejection-inversion for O(1) amortized).
  std::uint64_t NextZipf(std::uint64_t n, double s);

 private:
  std::uint64_t state_[4];
};

}  // namespace topl

#endif  // TOPL_COMMON_RNG_H_

#ifndef TOPL_COMMON_THREAD_POOL_H_
#define TOPL_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace topl {

/// \brief Fixed-size worker pool for data-parallel offline work.
///
/// The offline precomputation phase (Algorithm 2 of the paper) is
/// embarrassingly parallel across vertices; ParallelFor splits an index range
/// into dynamically scheduled chunks. The pool is intentionally minimal: no
/// futures, no task queue — offline precompute is the only consumer and it
/// only needs a blocking parallel-for.
class ThreadPool {
 public:
  /// \param num_threads worker count; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return num_threads_; }

  /// Runs body(i) for every i in [begin, end), distributing chunks of
  /// `grain` consecutive indices over the workers. Blocks until all
  /// iterations complete. body must be safe to invoke concurrently for
  /// distinct i. With num_threads() == 1 the loop runs inline.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& body,
                   std::size_t grain = 64);

  /// Like ParallelFor, but the body also receives the worker id in
  /// [0, num_threads()), so callers can maintain per-worker scratch state
  /// (e.g., one PropagationEngine per worker in the precompute phase).
  void ParallelForWithWorker(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t worker, std::size_t i)>& body,
      std::size_t grain = 64);

 private:
  std::size_t num_threads_;
};

}  // namespace topl

#endif  // TOPL_COMMON_THREAD_POOL_H_

#ifndef TOPL_COMMON_THREAD_POOL_H_
#define TOPL_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace topl {

/// \brief Fixed-size worker pool for data-parallel work and async tasks.
///
/// Two independent execution modes share one thread budget:
///
///  - ParallelFor / ParallelForWithWorker: blocking data-parallel loops over
///    an index range, used by the offline precomputation phase (Algorithm 2)
///    and by Engine::SearchBatch. Workers are spawned per call and the
///    calling thread participates, so nested use cannot deadlock.
///
///  - Submit: enqueues one task on persistent queue workers (started lazily
///    on first use, joined by the destructor) and returns a std::future for
///    its result. This backs Engine::Submit's async query serving. Tasks run
///    FIFO and never on the calling thread; a task must not block on another
///    task submitted to the same pool, or all queue workers can end up
///    waiting on queued work.
///
///  - TaskGroup: structured nested fan-out. Unlike Submit, a TaskGroup may
///    be used *from inside* a pool task (or ParallelFor body): Wait() never
///    parks the caller while group work is runnable — it executes unclaimed
///    subtasks itself — so fanning out sub-tasks from a worker cannot
///    deadlock even when every queue worker is busy. This is what gives one
///    query intra-query parallelism while the same pool serves other queries.
class ThreadPool {
 public:
  /// \param num_threads worker count; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains nothing: queued tasks not yet started are still executed, then
  /// the queue workers are joined (equivalent to Shutdown()).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return num_threads_; }

  /// Stops accepting Submit tasks, runs everything already queued, and joins
  /// the queue workers. Idempotent; safe to race with concurrent Submit
  /// calls (they either make it into the queue and run, or their future
  /// fails with the typed shutdown error). Must not be called from a pool
  /// task. After Shutdown, Submit never deadlocks and never leaves a broken
  /// promise: the returned future throws std::runtime_error on get().
  void Shutdown();

  /// True once Shutdown() (or the destructor) has begun. Advisory — a false
  /// return can be stale by the time the caller acts on it; Submit itself is
  /// always safe either way.
  bool is_shutdown() const;

  /// Runs body(i) for every i in [begin, end), distributing chunks of
  /// `grain` consecutive indices over the workers. Blocks until all
  /// iterations complete. body must be safe to invoke concurrently for
  /// distinct i. With num_threads() == 1 the loop runs inline.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& body,
                   std::size_t grain = 64);

  /// Like ParallelFor, but the body also receives the worker id in
  /// [0, num_threads()), so callers can maintain per-worker scratch state
  /// (e.g., one PropagationEngine per worker in the precompute phase).
  void ParallelForWithWorker(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t worker, std::size_t i)>& body,
      std::size_t grain = 64);

  /// Runs fn() on a persistent queue worker and returns a future for its
  /// result. Exceptions propagate through the future. After Shutdown() the
  /// task is rejected: it never runs, and the future throws
  /// std::runtime_error("ThreadPool is shut down") from get() — a defined,
  /// typed failure instead of UB or a deadlock.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto promise = std::make_shared<std::promise<R>>();
    std::future<R> future = promise->get_future();
    // fn lives in a shared_ptr so the enqueued closure stays copyable
    // (std::function) even for move-only callables.
    auto body = std::make_shared<std::decay_t<F>>(std::forward<F>(fn));
    const bool accepted = Enqueue([promise, body]() {
      try {
        if constexpr (std::is_void_v<R>) {
          (*body)();
          promise->set_value();
        } else {
          promise->set_value((*body)());
        }
      } catch (...) {
        promise->set_exception(std::current_exception());
      }
    });
    if (!accepted) {
      promise->set_exception(std::make_exception_ptr(
          std::runtime_error("ThreadPool is shut down")));
    }
    return future;
  }

  /// Number of Submit tasks enqueued but not yet finished (approximate;
  /// intended for tests and monitoring).
  std::size_t PendingTasks() const;

  /// \brief A set of subtasks whose completion the spawning thread joins.
  ///
  /// Spawned subtasks are offered to the pool's queue workers, but ownership
  /// of each unit of work stays with the group: Wait() keeps popping
  /// unclaimed subtasks and running them on the calling thread, then blocks
  /// only for subtasks already *running* elsewhere. Safe to use from any
  /// thread, including pool workers (nested fan-out) — the help-first join
  /// means progress never depends on a free worker.
  ///
  /// Not reusable across Wait() rounds concurrently: one thread spawns and
  /// waits; after Wait() returns the group may spawn again.
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool* pool);
    ~TaskGroup();  // aborts if outstanding subtasks were never waited for
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Adds one subtask. With a single-threaded pool the subtask simply runs
    /// during Wait() on the calling thread.
    void Spawn(std::function<void()> fn);

    /// Runs/joins every spawned subtask; on return all have finished.
    /// Exceptions thrown by subtasks are rethrown here (first one wins).
    void Wait();

   private:
    struct State;
    ThreadPool* pool_;
    std::shared_ptr<State> state_;
  };

 private:
  friend class TaskGroup;

  /// False when the pool is shut down (the task was not queued).
  bool Enqueue(std::function<void()> task);
  void QueueWorkerLoop();

  std::size_t num_threads_;

  // Submit machinery; all fields below are guarded by queue_mu_ except
  // in_flight_, which queue workers decrement after finishing a task.
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> queue_workers_;
  std::atomic<std::size_t> in_flight_{0};
  bool stopping_ = false;
};

}  // namespace topl

#endif  // TOPL_COMMON_THREAD_POOL_H_

#ifndef TOPL_COMMON_STATUS_H_
#define TOPL_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace topl {

/// \brief Outcome of a fallible operation (RocksDB-style).
///
/// Algorithmic hot paths in this library are infallible by construction and
/// return values directly; `Status` is reserved for operations that touch the
/// outside world (file I/O, parsing, deserialization) or that validate
/// user-supplied parameters at API boundaries.
class Status {
 public:
  /// Machine-readable category of a failure.
  enum class Code : unsigned char {
    kOk = 0,
    kInvalidArgument = 1,
    kNotFound = 2,
    kCorruption = 3,
    kIOError = 4,
    kOutOfRange = 5,
    kUnimplemented = 6,
    kInternal = 7,
    /// Transient inability to serve: admission control shed the request or
    /// the component is shut down. Unlike the other codes this one invites a
    /// retry (with backoff) — see loadgen::LoadInjector.
    kUnavailable = 8,
  };

  /// Default-constructed Status is OK.
  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per failure category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) { return Status(Code::kNotFound, msg); }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status IOError(std::string_view msg) { return Status(Code::kIOError, msg); }
  static Status OutOfRange(std::string_view msg) {
    return Status(Code::kOutOfRange, msg);
  }
  static Status Unimplemented(std::string_view msg) {
    return Status(Code::kUnimplemented, msg);
  }
  static Status Internal(std::string_view msg) { return Status(Code::kInternal, msg); }
  static Status Unavailable(std::string_view msg) {
    return Status(Code::kUnavailable, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsUnimplemented() const { return code_ == Code::kUnimplemented; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }

  Code code() const { return code_; }

  /// Human-readable message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<category>: <message>" for logging.
  std::string ToString() const;

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_;
  std::string message_;
};

/// Propagates a non-OK Status to the caller. Mirrors the RocksDB macro of the
/// same shape; usable only in functions returning Status.
#define TOPL_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::topl::Status _topl_status = (expr);         \
    if (!_topl_status.ok()) return _topl_status;  \
  } while (false)

}  // namespace topl

#endif  // TOPL_COMMON_STATUS_H_

#ifndef TOPL_COMMON_TIMER_H_
#define TOPL_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace topl {

/// \brief Monotonic wall-clock stopwatch used by the benchmark harness and
/// the per-query statistics.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time since construction / last Reset, in microseconds.
  std::int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace topl

#endif  // TOPL_COMMON_TIMER_H_

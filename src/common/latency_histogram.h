#ifndef TOPL_COMMON_LATENCY_HISTOGRAM_H_
#define TOPL_COMMON_LATENCY_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>

namespace topl {

/// Power-of-two latency histogram layout shared by the engine's per-context
/// stats shards (engine/engine_stats.h) and the load-harness recorder
/// (loadgen/recorder.h): bucket 0 counts sub-microsecond samples, bucket
/// i >= 1 counts samples in [2^(i-1), 2^i) microseconds.
inline constexpr std::size_t kLatencyHistogramBuckets = 44;  // 2^43 us ≈ 101 days

using LatencyBuckets = std::array<std::uint64_t, kLatencyHistogramBuckets>;

inline std::size_t LatencyBucketIndex(std::uint64_t micros) {
  const std::size_t width = static_cast<std::size_t>(std::bit_width(micros));
  return width < kLatencyHistogramBuckets ? width : kLatencyHistogramBuckets - 1;
}

/// Representative latency (seconds) of bucket i: the *geometric* midpoint
/// sqrt(2^(i-1) * 2^i) of its microsecond range — the unbiased point estimate
/// for a log-spaced bucket, so percentile estimates are within a factor
/// sqrt(2) of the true sample in the worst case. (The arithmetic midpoint
/// used before systematically overestimated by up to ~1.5x: latencies pile
/// up at the low end of a power-of-two bucket.)
inline double LatencyBucketSeconds(std::size_t i) {
  if (i == 0) return 0.0;
  constexpr double kSqrt2 = 1.4142135623730951;
  return kSqrt2 * static_cast<double>(std::uint64_t{1} << (i - 1)) / 1e6;
}

/// Histogram-estimated q-quantile (q in [0, 1]) of `count` samples spread
/// over `buckets`. Callers that track the exact maximum should cap the
/// returned estimate with it (the top bucket's midpoint can overshoot).
inline double LatencyPercentileSeconds(const LatencyBuckets& buckets,
                                       std::uint64_t count, double q) {
  if (count == 0) return 0.0;
  const std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen > rank) return LatencyBucketSeconds(i);
  }
  return LatencyBucketSeconds(buckets.size() - 1);
}

/// \brief One thread's plain (non-atomic) latency distribution: the
/// power-of-two buckets plus exact count/sum/max. Writers own their
/// histogram exclusively while recording (one instance per worker thread)
/// and merge after the fact, so recording is a handful of integer ops with
/// no synchronization at all — cheaper even than the engine shard's relaxed
/// atomics, which must tolerate concurrent readers.
struct LatencyHistogram {
  LatencyBuckets buckets{};
  std::uint64_t count = 0;
  std::uint64_t total_micros = 0;
  std::uint64_t max_micros = 0;

  void AddMicros(std::uint64_t micros) {
    buckets[LatencyBucketIndex(micros)] += 1;
    count += 1;
    total_micros += micros;
    max_micros = std::max(max_micros, micros);
  }

  void AddSeconds(double seconds) {
    AddMicros(seconds <= 0.0 ? 0 : static_cast<std::uint64_t>(seconds * 1e6));
  }

  void Merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      buckets[i] += other.buckets[i];
    }
    count += other.count;
    total_micros += other.total_micros;
    max_micros = std::max(max_micros, other.max_micros);
  }

  /// Estimated q-quantile in seconds, capped by the exact maximum.
  double PercentileSeconds(double q) const {
    return std::min(LatencyPercentileSeconds(buckets, count, q), MaxSeconds());
  }

  double MaxSeconds() const { return static_cast<double>(max_micros) / 1e6; }

  double MeanSeconds() const {
    return count == 0
               ? 0.0
               : static_cast<double>(total_micros) / 1e6 /
                     static_cast<double>(count);
  }
};

}  // namespace topl

#endif  // TOPL_COMMON_LATENCY_HISTOGRAM_H_

#ifndef TOPL_INFLUENCE_IC_SIMULATOR_H_
#define TOPL_INFLUENCE_IC_SIMULATOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "influence/propagation.h"

namespace topl {

/// \brief Monte-Carlo simulator for the Independent Cascade (IC) model.
///
/// The paper's influence machinery uses the MIA model, which scores a target
/// by its single best activation path — a tractable lower bound on the IC
/// model (§II-B), where activation succeeds if *any* incoming attempt from an
/// active neighbor fires and exact spread computation is #P-hard. This
/// simulator estimates IC activation probabilities by repeated randomized
/// cascades, giving the library a ground-truth oracle to quantify how tight
/// the MIA approximation is on a given workload (bench_mia_vs_ic).
class IcSimulator {
 public:
  struct Options {
    /// Monte-Carlo rounds; the standard error of each activation probability
    /// is at most 0.5 / sqrt(num_rounds).
    std::uint32_t num_rounds = 1000;
    std::uint64_t seed = 42;
  };

  explicit IcSimulator(const Graph& g);

  /// Estimates activation probabilities from `seeds` (deduplicated ids).
  /// Returns every vertex whose estimated probability is ≥ min_probability,
  /// with `score` = estimated expected spread Σ p̂(v) over those vertices
  /// (seeds included at probability 1).
  InfluencedCommunity EstimateSpread(std::span<const VertexId> seeds,
                                     const Options& options,
                                     double min_probability = 0.0);

  /// Expected cascade size E[|active|] over all vertices (no threshold).
  double EstimateExpectedSpread(std::span<const VertexId> seeds,
                                const Options& options);

 private:
  // Runs the cascades and returns per-touched-vertex activation counts.
  void RunCascades(std::span<const VertexId> seeds, const Options& options);

  const Graph* graph_;
  // Epoch-stamped per-vertex activation counters (allocation-free reuse).
  std::vector<std::uint32_t> count_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
  std::vector<VertexId> touched_;
  // Per-cascade "active this round" stamps; the tag is monotone across all
  // cascades of the simulator's lifetime.
  std::vector<std::uint64_t> active_round_;
  std::uint64_t cascade_tag_ = 0;
  std::vector<VertexId> frontier_;
  std::vector<VertexId> next_;
};

}  // namespace topl

#endif  // TOPL_INFLUENCE_IC_SIMULATOR_H_

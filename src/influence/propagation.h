#ifndef TOPL_INFLUENCE_PROPAGATION_H_
#define TOPL_INFLUENCE_PROPAGATION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/lease_pool.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace topl {

/// \brief The influenced community gInf of a seed set plus its influential
/// score (Definitions 3 and Eq. (5)).
///
/// `vertices[i]` has community-to-user propagation probability `cpp[i]`;
/// seeds are included with cpp = 1 (Eq. (4)). `score` = Σ cpp[i].
struct InfluencedCommunity {
  std::vector<VertexId> vertices;
  std::vector<double> cpp;
  double score = 0.0;

  std::size_t size() const { return vertices.size(); }
};

/// \brief MIA-model propagation engine.
///
/// Under the maximum influence arborescence model, upp(u, v) is the largest
/// product of arc probabilities over any u→v path (Eqs. (1)–(3)), and
/// cpp(g, v) = max_{u∈g} upp(u, v). Both reduce to a single multi-source
/// max-product Dijkstra: probabilities lie in (0, 1], so path products only
/// shrink as paths grow and the greedy settle order is correct — this is the
/// paper's calculate_influence(g, θ) (§VI-B).
///
/// The engine owns epoch-stamped scratch arrays sized to the graph, so a
/// query workload can run thousands of propagations with no allocation
/// beyond the result vectors. One engine per thread — the serving layer
/// (topl::Engine) upholds this by never leasing a worker context to more
/// than one query at a time.
class PropagationEngine {
 public:
  explicit PropagationEngine(const Graph& g);

  /// Computes gInf and σ for seed set `seeds` (deduplicated global ids) with
  /// influence threshold theta ∈ [0, 1): every vertex v with cpp(g, v) ≥
  /// theta is reported. theta = 0 explores everything reachable.
  InfluencedCommunity Compute(std::span<const VertexId> seeds, double theta);

  /// Single-source user-to-user propagation probabilities (Eq. (3)):
  /// upp(source, v) for all v with upp ≥ theta. upp(source, source) = 1.
  InfluencedCommunity ComputeFromSource(VertexId source, double theta);

 private:
  struct HeapEntry {
    double prob;
    VertexId vertex;
    bool operator<(const HeapEntry& other) const { return prob < other.prob; }
  };

  const Graph* graph_;
  std::vector<double> best_;         // tentative cpp per vertex (epoch-guarded)
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
  std::vector<HeapEntry> heap_;
};

/// \brief Lease pool of PropagationEngines: reentrant, chunkable influence
/// evaluation over one graph.
///
/// A PropagationEngine is deliberately single-threaded (epoch-stamped O(n)
/// scratch), so work that scores candidate chunks concurrently — the
/// detectors' parallel refinement stage — leases one engine per in-flight
/// scoring worker. Engines are created lazily up to peak concurrency and
/// recycled across waves and queries (see common/lease_pool.h).
///
/// The computed scores depend only on (graph, seeds, theta) — never on which
/// pooled engine ran the propagation — so chunked evaluation is bit-identical
/// to sequential evaluation.
class PropagationEnginePool : public LeasePool<PropagationEngine> {
 public:
  explicit PropagationEnginePool(const Graph& g)
      : LeasePool<PropagationEngine>(
            [graph = &g] { return std::make_unique<PropagationEngine>(*graph); }) {}
};

}  // namespace topl

#endif  // TOPL_INFLUENCE_PROPAGATION_H_

#include "influence/ic_simulator.h"

#include <algorithm>

#include "common/check.h"

namespace topl {

IcSimulator::IcSimulator(const Graph& g)
    : graph_(&g),
      count_(g.NumVertices(), 0),
      stamp_(g.NumVertices(), 0),
      active_round_(g.NumVertices(), 0) {}

void IcSimulator::RunCascades(std::span<const VertexId> seeds,
                              const Options& options) {
  TOPL_CHECK(options.num_rounds > 0, "IcSimulator requires num_rounds > 0");
  ++epoch_;
  touched_.clear();
  Rng rng(options.seed);

  auto touch = [this](VertexId v) {
    if (stamp_[v] != epoch_) {
      stamp_[v] = epoch_;
      count_[v] = 0;
      touched_.push_back(v);
    }
  };

  // `active_round_[v] == cascade_tag_` marks v active in the current
  // cascade; the tag advances per cascade (and across calls) so no clearing
  // is ever needed. 64-bit: overflow is out of scope.
  for (std::uint32_t round = 0; round < options.num_rounds; ++round) {
    ++cascade_tag_;
    frontier_.clear();
    for (VertexId s : seeds) {
      TOPL_DCHECK(s < graph_->NumVertices(), "seed out of range");
      if (active_round_[s] == cascade_tag_) continue;  // duplicate seed
      active_round_[s] = cascade_tag_;
      touch(s);
      ++count_[s];
      frontier_.push_back(s);
    }
    while (!frontier_.empty()) {
      next_.clear();
      for (VertexId u : frontier_) {
        for (const Graph::Arc& arc : graph_->Neighbors(u)) {
          if (active_round_[arc.to] == cascade_tag_) continue;
          // One independent activation attempt per (newly active u, arc).
          if (rng.NextDouble() < static_cast<double>(arc.prob)) {
            active_round_[arc.to] = cascade_tag_;
            touch(arc.to);
            ++count_[arc.to];
            next_.push_back(arc.to);
          }
        }
      }
      frontier_.swap(next_);
    }
  }
}

InfluencedCommunity IcSimulator::EstimateSpread(std::span<const VertexId> seeds,
                                                const Options& options,
                                                double min_probability) {
  RunCascades(seeds, options);
  InfluencedCommunity out;
  const double rounds = static_cast<double>(options.num_rounds);
  for (VertexId v : touched_) {
    const double p = count_[v] / rounds;
    if (p >= min_probability && p > 0.0) {
      out.vertices.push_back(v);
      out.cpp.push_back(p);
      out.score += p;
    }
  }
  return out;
}

double IcSimulator::EstimateExpectedSpread(std::span<const VertexId> seeds,
                                           const Options& options) {
  RunCascades(seeds, options);
  double total = 0.0;
  const double rounds = static_cast<double>(options.num_rounds);
  for (VertexId v : touched_) total += count_[v] / rounds;
  return total;
}

}  // namespace topl

#include "influence/influence_calculator.h"

namespace topl {

std::vector<double> ScoresAtThresholds(const InfluencedCommunity& community,
                                       std::span<const double> thetas) {
  std::vector<double> scores(thetas.size(), 0.0);
  for (std::size_t i = 0; i < community.cpp.size(); ++i) {
    const double p = community.cpp[i];
    for (std::size_t z = 0; z < thetas.size(); ++z) {
      if (p >= thetas[z]) {
        scores[z] += p;
      } else {
        break;  // thetas ascending: p fails every larger threshold too
      }
    }
  }
  return scores;
}

InfluencedCommunity RestrictToThreshold(const InfluencedCommunity& community,
                                        double theta) {
  InfluencedCommunity out;
  out.vertices.reserve(community.size());
  out.cpp.reserve(community.size());
  for (std::size_t i = 0; i < community.size(); ++i) {
    if (community.cpp[i] >= theta) {
      out.vertices.push_back(community.vertices[i]);
      out.cpp.push_back(community.cpp[i]);
      out.score += community.cpp[i];
    }
  }
  return out;
}

}  // namespace topl

#include "influence/diversity.h"

namespace topl {

double DiversityOracle::MarginalGain(const InfluencedCommunity& g) const {
  double gain = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    const auto it = best_cpp_.find(g.vertices[i]);
    const double current = it == best_cpp_.end() ? 0.0 : it->second;
    if (g.cpp[i] > current) gain += g.cpp[i] - current;
  }
  return gain;
}

double DiversityOracle::Add(const InfluencedCommunity& g) {
  double gain = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    double& slot = best_cpp_[g.vertices[i]];
    if (g.cpp[i] > slot) {
      gain += g.cpp[i] - slot;
      slot = g.cpp[i];
    }
  }
  total_ += gain;
  return gain;
}

void DiversityOracle::Reset() {
  best_cpp_.clear();
  total_ = 0.0;
}

double DiversityScore(std::span<const InfluencedCommunity* const> selection) {
  std::unordered_map<VertexId, double> best;
  for (const InfluencedCommunity* g : selection) {
    for (std::size_t i = 0; i < g->size(); ++i) {
      double& slot = best[g->vertices[i]];
      if (g->cpp[i] > slot) slot = g->cpp[i];
    }
  }
  double total = 0.0;
  for (const auto& entry : best) total += entry.second;
  return total;
}

}  // namespace topl

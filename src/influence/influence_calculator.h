#ifndef TOPL_INFLUENCE_INFLUENCE_CALCULATOR_H_
#define TOPL_INFLUENCE_INFLUENCE_CALCULATOR_H_

#include <span>
#include <vector>

#include "influence/propagation.h"

namespace topl {

/// \brief Influential scores σ_z at several thresholds from a single
/// propagation.
///
/// σ_θ(g) = Σ {cpp(g, v) : cpp(g, v) ≥ θ} is non-increasing in θ, so the
/// propagation run once at the smallest threshold contains every term needed
/// for all larger thresholds. The offline phase (Algorithm 2) uses this to
/// fill the m (σ_z, θ_z) pairs per r-hop subgraph with one Dijkstra instead
/// of m.
///
/// `thetas` must be sorted ascending; `community` must come from a
/// propagation with threshold ≤ thetas.front(). Returns one score per theta.
std::vector<double> ScoresAtThresholds(const InfluencedCommunity& community,
                                       std::span<const double> thetas);

/// \brief Restricts `community` to the vertices with cpp ≥ theta — converts
/// a propagation computed at a smaller threshold into the exact influenced
/// community for `theta`, without re-running Dijkstra.
InfluencedCommunity RestrictToThreshold(const InfluencedCommunity& community,
                                        double theta);

}  // namespace topl

#endif  // TOPL_INFLUENCE_INFLUENCE_CALCULATOR_H_

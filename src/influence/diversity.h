#ifndef TOPL_INFLUENCE_DIVERSITY_H_
#define TOPL_INFLUENCE_DIVERSITY_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "influence/propagation.h"
#include "graph/types.h"

namespace topl {

/// \brief Incremental evaluator of the diversity score D(S) (Eq. (6)).
///
/// D(S) = Σ_v max_{g∈S} cpp(g, v). The oracle tracks, for every vertex
/// covered by the current selection S, the best cpp seen so far, so a
/// marginal gain ΔD_g(S) = D(S ∪ {g}) − D(S) is a single pass over g's
/// influenced community — no rescan of S. This is the workhorse of both
/// DTopL greedy variants and of the Optimal enumerator.
class DiversityOracle {
 public:
  DiversityOracle() = default;

  /// ΔD_g(S) for the current selection (does not modify state).
  double MarginalGain(const InfluencedCommunity& g) const;

  /// Adds g to the selection and returns its (just-realized) marginal gain.
  double Add(const InfluencedCommunity& g);

  /// D(S) of everything added so far.
  double TotalScore() const { return total_; }

  std::size_t CoveredVertices() const { return best_cpp_.size(); }

  void Reset();

 private:
  std::unordered_map<VertexId, double> best_cpp_;
  double total_ = 0.0;
};

/// \brief D(S) computed from scratch over a candidate set — the reference
/// implementation used by tests and by the Optimal enumerator's inner loop.
double DiversityScore(std::span<const InfluencedCommunity* const> selection);

}  // namespace topl

#endif  // TOPL_INFLUENCE_DIVERSITY_H_

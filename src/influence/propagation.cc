#include "influence/propagation.h"

#include <algorithm>

#include "common/check.h"

namespace topl {

PropagationEngine::PropagationEngine(const Graph& g)
    : graph_(&g), best_(g.NumVertices(), 0.0), stamp_(g.NumVertices(), 0) {}

InfluencedCommunity PropagationEngine::Compute(std::span<const VertexId> seeds,
                                               double theta) {
  TOPL_DCHECK(theta >= 0.0 && theta < 1.0, "influence threshold must be in [0, 1)");
  InfluencedCommunity out;
  ++epoch_;
  heap_.clear();

  for (VertexId s : seeds) {
    TOPL_DCHECK(s < graph_->NumVertices(), "seed out of range");
    if (stamp_[s] == epoch_) continue;  // duplicate seed
    stamp_[s] = epoch_;
    best_[s] = 1.0;
    heap_.push_back({1.0, s});
  }
  std::make_heap(heap_.begin(), heap_.end());

  // Max-product Dijkstra with lazy deletion: an entry is stale if its prob
  // no longer matches best_[v].
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end());
    const HeapEntry top = heap_.back();
    heap_.pop_back();
    if (top.prob < best_[top.vertex]) continue;  // stale
    // Settle: top.prob == best_[top.vertex] and no larger path can appear.
    out.vertices.push_back(top.vertex);
    out.cpp.push_back(top.prob);
    out.score += top.prob;
    best_[top.vertex] = 2.0;  // sentinel: settled, reject future relaxations
    for (const Graph::Arc& arc : graph_->Neighbors(top.vertex)) {
      const double candidate = top.prob * static_cast<double>(arc.prob);
      if (candidate < theta || candidate == 0.0) continue;
      if (stamp_[arc.to] != epoch_) {
        stamp_[arc.to] = epoch_;
        best_[arc.to] = candidate;
        heap_.push_back({candidate, arc.to});
        std::push_heap(heap_.begin(), heap_.end());
      } else if (candidate > best_[arc.to]) {
        best_[arc.to] = candidate;
        heap_.push_back({candidate, arc.to});
        std::push_heap(heap_.begin(), heap_.end());
      }
    }
  }
  return out;
}

InfluencedCommunity PropagationEngine::ComputeFromSource(VertexId source,
                                                         double theta) {
  const VertexId seeds[1] = {source};
  return Compute(seeds, theta);
}

}  // namespace topl

#ifndef TOPL_STORAGE_VARINT_H_
#define TOPL_STORAGE_VARINT_H_

#include <cstdint>
#include <limits>
#include <span>
#include <type_traits>
#include <vector>

namespace topl {

/// \brief LEB128 varint + zigzag primitives and the delta/varint stream
/// codecs used by compressed TOPLIDX2 sections (storage/artifact.h).
///
/// Encoded streams are self-delimiting: every stream starts with a uvarint
/// element count, so a decoder never trusts byte lengths alone. All decoders
/// are fully bounds-checked and fail (return false) on truncation, overlong
/// varints, value overflow, or trailing garbage — a corrupt artifact section
/// must surface as Status::Corruption, never as an out-of-bounds read.

/// Appends `value` to `out` as an unsigned LEB128 varint (1–10 bytes).
inline void PutUvarint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

/// Decodes one unsigned LEB128 varint from `in` starting at `*pos`;
/// advances `*pos` past it. False on truncation or a varint longer than
/// 10 bytes (the maximum for 64 bits).
inline bool GetUvarint(std::span<const std::uint8_t> in, std::size_t* pos,
                       std::uint64_t* value) {
  std::uint64_t result = 0;
  for (unsigned shift = 0; shift < 70; shift += 7) {
    if (*pos >= in.size()) return false;
    const std::uint8_t byte = in[(*pos)++];
    if (shift == 63 && byte > 1) return false;  // would overflow 64 bits
    result |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
  }
  return false;
}

/// Maps signed deltas onto small unsigned varints: 0, -1, 1, -2, ... →
/// 0, 1, 2, 3, ... Exact for every int64 value.
inline std::uint64_t ZigZagEncode64(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t ZigZagDecode64(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

// ---------------------------------------------------------------------------
// Stream codecs. Layout: uvarint(count) + count encoded elements.
// ---------------------------------------------------------------------------

/// Delta codec for 64-bit sequences (CSR offset arrays): each element is the
/// zigzag varint of its difference from the previous one (implicit previous
/// of 0). Differences are taken modulo 2^64, so the round trip is exact for
/// arbitrary — not just monotone — sequences.
inline std::vector<std::uint8_t> EncodeDeltaU64(
    std::span<const std::uint64_t> values) {
  std::vector<std::uint8_t> out;
  out.reserve(values.size() + 8);
  PutUvarint(out, values.size());
  std::uint64_t prev = 0;
  for (std::uint64_t v : values) {
    PutUvarint(out, ZigZagEncode64(static_cast<std::int64_t>(v - prev)));
    prev = v;
  }
  return out;
}

inline bool DecodeDeltaU64(std::span<const std::uint8_t> in,
                           std::vector<std::uint64_t>* out) {
  std::size_t pos = 0;
  std::uint64_t count = 0;
  if (!GetUvarint(in, &pos, &count)) return false;
  if (count > in.size()) return false;  // every element is ≥ 1 byte
  out->clear();
  out->reserve(count);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t delta = 0;
    if (!GetUvarint(in, &pos, &delta)) return false;
    prev += static_cast<std::uint64_t>(ZigZagDecode64(delta));
    out->push_back(prev);
  }
  return pos == in.size();
}

/// Delta codec for 32-bit sequences (keyword arrays, sorted-vertex arrays):
/// zigzag varint of consecutive differences. T must be a 32-bit integral
/// (VertexId, KeywordId, std::uint32_t).
template <typename T>
inline std::vector<std::uint8_t> EncodeDeltaU32(std::span<const T> values) {
  static_assert(std::is_integral_v<T> && sizeof(T) == 4);
  std::vector<std::uint8_t> out;
  out.reserve(values.size() + 8);
  PutUvarint(out, values.size());
  std::int64_t prev = 0;
  for (T v : values) {
    PutUvarint(out, ZigZagEncode64(static_cast<std::int64_t>(v) - prev));
    prev = static_cast<std::int64_t>(v);
  }
  return out;
}

template <typename T>
inline bool DecodeDeltaU32(std::span<const std::uint8_t> in,
                           std::vector<T>* out) {
  static_assert(std::is_integral_v<T> && sizeof(T) == 4);
  std::size_t pos = 0;
  std::uint64_t count = 0;
  if (!GetUvarint(in, &pos, &count)) return false;
  if (count > in.size()) return false;
  out->clear();
  out->reserve(count);
  std::int64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t delta = 0;
    if (!GetUvarint(in, &pos, &delta)) return false;
    prev += ZigZagDecode64(delta);
    if (prev < 0 || prev > std::numeric_limits<std::uint32_t>::max()) {
      return false;
    }
    out->push_back(static_cast<T>(prev));
  }
  return pos == in.size();
}

/// Plain varint codec for small-valued 32-bit sequences (support and truss
/// bound arrays, whose values are tiny but not sorted).
template <typename T>
inline std::vector<std::uint8_t> EncodeVarintU32(std::span<const T> values) {
  static_assert(std::is_integral_v<T> && sizeof(T) == 4);
  std::vector<std::uint8_t> out;
  out.reserve(values.size() + 8);
  PutUvarint(out, values.size());
  for (T v : values) PutUvarint(out, static_cast<std::uint64_t>(v));
  return out;
}

template <typename T>
inline bool DecodeVarintU32(std::span<const std::uint8_t> in,
                            std::vector<T>* out) {
  static_assert(std::is_integral_v<T> && sizeof(T) == 4);
  std::size_t pos = 0;
  std::uint64_t count = 0;
  if (!GetUvarint(in, &pos, &count)) return false;
  if (count > in.size()) return false;
  out->clear();
  out->reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t v = 0;
    if (!GetUvarint(in, &pos, &v)) return false;
    if (v > std::numeric_limits<std::uint32_t>::max()) return false;
    out->push_back(static_cast<T>(v));
  }
  return pos == in.size();
}

}  // namespace topl

#endif  // TOPL_STORAGE_VARINT_H_

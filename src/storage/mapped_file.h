#ifndef TOPL_STORAGE_MAPPED_FILE_H_
#define TOPL_STORAGE_MAPPED_FILE_H_

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace topl {

/// \brief A read-only memory mapping of a whole file (RAII).
///
/// The backing of every mmap-loaded structure in the library: Graph,
/// PrecomputedData and TreeIndex keep a shared_ptr to the MappedFile their
/// spans point into, so the mapping lives exactly as long as any view of it.
/// The mapping is PROT_READ, so writing through a view is a segfault, not
/// silent corruption.
///
/// A read-only MAP_PRIVATE mapping still shares the page cache, so in-place
/// writes to the file ARE visible through it (a mix of old faulted and new
/// pages) and truncation raises SIGBUS in a serving process. Consistency
/// under concurrent updates therefore relies on the writer side:
/// ArtifactWriter only ever replaces artifacts via write-temp-then-rename,
/// which leaves existing mappings on the old inode untouched. Never add an
/// in-place file-update path.
/// Paging behavior for a MappedFile. Both knobs trade open latency / memory
/// for serving-time page-fault cost and are safe no-ops where the kernel
/// lacks support.
struct MapOptions {
  /// MAP_POPULATE: fault the whole file in at open (read-ahead at disk
  /// bandwidth) instead of on first touch. Turns cold-start page faults
  /// into one sequential prefetch — the right default for benchmark
  /// serving runs, wasteful for `index inspect`-style partial reads.
  bool populate = false;
  /// MADV_HUGEPAGE: ask khugepaged to back the mapping with transparent
  /// huge pages, cutting TLB pressure on multi-GB artifacts. Advisory
  /// only; errors (e.g. THP disabled) are ignored.
  bool huge_pages = false;
};

class MappedFile {
 public:
  using MapOptions = topl::MapOptions;

  /// Maps `path` read-only. Fails with IOError when the file cannot be
  /// opened, stat'ed or mapped. Empty files map to a null, zero-length view.
  static Result<std::shared_ptr<MappedFile>> Open(const std::string& path,
                                                  const MapOptions& options = {});

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// Re-stats the backing path and reports Corruption when the file on disk
  /// is now smaller than the mapping taken at open time. A mapping over a
  /// truncated file raises SIGBUS on first touch of a lost page; callers
  /// that are about to walk the mapping (or that just caught an inexplicable
  /// serving error) can use this to turn the hazard into a clean Status.
  /// Rename-replaced artifacts (the only sanctioned replacement path) keep
  /// the old inode intact, so this only fires on out-of-band truncation.
  Status Revalidate() const;

  /// Typed view of `count` elements of T starting at byte `offset`. The
  /// caller must have validated that [offset, offset + count * sizeof(T))
  /// lies within the file and that `offset` is aligned for T.
  template <typename T>
  std::span<const T> ViewAt(std::size_t offset, std::size_t count) const {
    return {reinterpret_cast<const T*>(data_ + offset), count};
  }

 private:
  MappedFile(std::string path, const std::byte* data, std::size_t size)
      : path_(std::move(path)), data_(data), size_(size) {}

  std::string path_;
  const std::byte* data_;
  std::size_t size_;
};

}  // namespace topl

#endif  // TOPL_STORAGE_MAPPED_FILE_H_

#ifndef TOPL_STORAGE_CHECKSUM_H_
#define TOPL_STORAGE_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace topl {

/// \brief XXH64 — the 64-bit xxHash checksum (Yann Collet's public-domain
/// algorithm), implemented from the specification.
///
/// Chosen for the TOPLIDX2 artifact because it runs at memory-bandwidth
/// speed: verifying every section of a mapped index costs about as much as
/// one sequential read of the file, which keeps checksummed opens far
/// cheaper than the parse-and-copy path they replace.
std::uint64_t XXH64(const void* data, std::size_t len, std::uint64_t seed = 0);

}  // namespace topl

#endif  // TOPL_STORAGE_CHECKSUM_H_

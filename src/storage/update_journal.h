#ifndef TOPL_STORAGE_UPDATE_JOURNAL_H_
#define TOPL_STORAGE_UPDATE_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "graph/graph_delta.h"

namespace topl {

/// \brief Write-ahead delta journal: the durability side of ApplyUpdate.
///
/// An engine snapshot swap is an in-memory operation; without a journal, a
/// crash between two artifact rewrites silently discards every update since
/// the last rewrite. The journal closes that window: each GraphDelta is
/// appended — length-prefixed, XXH64-checksummed, fsync'd — *before* the
/// new snapshot is installed, so `Engine::Recover(artifact, journal)`
/// replays exactly the deltas that live serving acknowledged.
///
/// File layout (little-endian, fixed width):
///
///   header   "TOPLJRN1" (8 bytes) + u32 version (1) + u32 reserved
///   record*  u32 record magic 0x544A5243 ("TJRC")
///            u32 payload length in bytes
///            u64 XXH64 of the payload
///            payload: the serialized GraphDelta —
///              u32 counts [deletes, inserts, kw_adds, kw_removes], then the
///              packed arrays (EdgeRef = 2×u32, EdgeInsert = 2×u32 + 2×f32,
///              KeywordChange = 2×u32)
///
/// Torn-tail semantics: Open() scans the record chain; the first record with
/// a bad magic, an out-of-bounds length, a checksum mismatch, or a payload
/// that does not fill its declared length marks the *commit point* — the
/// file is truncated there (a crash mid-append can only tear the last
/// record) and every earlier record is kept. Replay() applies the same rule
/// read-only.
class UpdateJournal {
 public:
  /// What Open() found on disk.
  struct OpenInfo {
    std::uint64_t records = 0;            // valid records retained
    std::uint64_t torn_bytes_discarded = 0;  // trailing bytes truncated away
    bool created = false;                 // file did not exist before
  };

  /// Opens `path` for appending, creating it (with a header) when missing,
  /// validating the record chain and truncating a torn tail. The journal
  /// holds an O_APPEND fd until destroyed.
  static Result<std::unique_ptr<UpdateJournal>> Open(const std::string& path,
                                                     OpenInfo* info = nullptr);

  ~UpdateJournal();
  UpdateJournal(const UpdateJournal&) = delete;
  UpdateJournal& operator=(const UpdateJournal&) = delete;

  /// Serializes and appends one delta, then fsyncs. On OK the record is
  /// durable; on error the journal is unusable for further appends (the
  /// caller must reject the update — a torn tail will be healed by the next
  /// Open).
  Status Append(const GraphDelta& delta);

  /// Durable records in the journal (valid-at-open + appended-since).
  std::uint64_t num_records() const { return num_records_; }

  const std::string& path() const { return path_; }

  /// Drops every record (after the deltas were folded into a rewritten
  /// artifact): truncates back to the bare header and fsyncs.
  Status Truncate();

  /// Reads every valid record of `path` without opening for append,
  /// ignoring (not truncating) a torn tail. A missing file is an empty
  /// journal. `torn_bytes` (optional) reports the ignored tail length.
  static Result<std::vector<GraphDelta>> Replay(
      const std::string& path, std::uint64_t* torn_bytes = nullptr);

  /// Serialization used for journal payloads, exposed for fuzzing: decode
  /// rejects truncated buffers, overflowing counts and trailing garbage with
  /// a typed Status (never reads out of bounds).
  static std::vector<std::uint8_t> EncodeDelta(const GraphDelta& delta);
  static Result<GraphDelta> DecodeDelta(const std::uint8_t* data,
                                        std::size_t size);

 private:
  UpdateJournal(std::string path, int fd, std::uint64_t num_records)
      : path_(std::move(path)), fd_(fd), num_records_(num_records) {}

  std::string path_;
  int fd_ = -1;
  std::uint64_t num_records_ = 0;
};

}  // namespace topl

#endif  // TOPL_STORAGE_UPDATE_JOURNAL_H_

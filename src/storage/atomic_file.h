#ifndef TOPL_STORAGE_ATOMIC_FILE_H_
#define TOPL_STORAGE_ATOMIC_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace topl {

/// \brief Crash-atomic whole-file replacement: write-temp → fsync → rename →
/// fsync-dir.
///
/// The one way this library replaces a file on disk. Appends stream into
/// `<path>.tmp.<pid>`; Commit() fsyncs the temp file, renames it over `path`
/// and fsyncs the containing directory, so after a crash the destination is
/// always either the complete old file or the complete new file — never a
/// prefix of either. This is also what keeps live mmap readers safe: the
/// rename retires the old inode without touching its pages (see the
/// MappedFile header comment; never add an in-place update path).
///
/// An AtomicFile that is destroyed without a successful Commit() unlinks its
/// temp file, so failed writers leave nothing behind.
class AtomicFile {
 public:
  /// Opens `<path>.tmp.<pid>` for writing (O_TRUNC).
  static Result<AtomicFile> Create(const std::string& path);

  AtomicFile(AtomicFile&& other) noexcept;
  AtomicFile& operator=(AtomicFile&&) = delete;
  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;
  ~AtomicFile();

  /// Appends `size` bytes; short writes are retried until complete or failed.
  Status Append(const void* data, std::size_t size);

  std::uint64_t bytes_written() const { return bytes_written_; }

  /// fsync + rename over the destination + fsync of its directory. After OK
  /// the new content is durable under power loss. The AtomicFile is spent
  /// either way (a failed Commit removes the temp file).
  Status Commit();

 private:
  AtomicFile(std::string path, std::string tmp_path, int fd)
      : path_(std::move(path)), tmp_path_(std::move(tmp_path)), fd_(fd) {}

  void Discard();

  std::string path_;
  std::string tmp_path_;
  int fd_ = -1;
  std::uint64_t bytes_written_ = 0;
};

/// Fsyncs the directory containing `path` so a just-created or just-renamed
/// directory entry survives power loss. Best effort on filesystems that
/// reject directory fsync (returns OK there).
Status FsyncParentDir(const std::string& path);

}  // namespace topl

#endif  // TOPL_STORAGE_ATOMIC_FILE_H_

#include "storage/artifact.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>

#include "common/fault_injection.h"
#include "storage/atomic_file.h"
#include "storage/checksum.h"
#include "storage/mapped_file.h"
#include "storage/varint.h"

namespace topl {

namespace {

constexpr char kMagic[8] = {'T', 'O', 'P', 'L', 'I', 'D', 'X', '2'};
constexpr std::uint32_t kVersionRaw = 1;         // 17 sections, all raw
constexpr std::uint32_t kVersionEncoded = 2;     // + g.extids, per-section codec
constexpr std::uint32_t kVersionSharded = 3;     // + shard.map manifest
constexpr std::uint64_t kSectionAlignment = 64;

// ---------------------------------------------------------------------------
// On-disk structures. All little-endian, fixed width, no implicit padding.
// ---------------------------------------------------------------------------

struct DiskHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t section_count;
  std::uint64_t file_size;
  std::uint64_t table_checksum;  // XXH64 over the section table
  char reserved[32];
};
static_assert(sizeof(DiskHeader) == 64, "TOPLIDX2 header is 64 bytes");

struct DiskSection {
  char name[16];  // NUL-padded
  std::uint64_t offset;
  std::uint64_t size;       // stored payload bytes (post-encoding)
  std::uint32_t elem_size;  // bytes per element (1 for encoded sections)
  std::uint32_t encoding;   // SectionEncoding; always 0 in version-1 files
  std::uint64_t checksum;   // XXH64 over the stored payload
};
static_assert(sizeof(DiskSection) == 48, "TOPLIDX2 section entry is 48 bytes");

// Scalar state of all three structures, packed into the "meta" section.
struct MetaBlock {
  std::uint64_t num_vertices;
  std::uint64_t num_edges;
  std::uint64_t total_keywords;
  std::uint32_t keyword_domain_bound;
  std::uint32_t r_max;
  std::uint32_t signature_bits;
  std::uint32_t num_thetas;
  std::uint64_t words_per_signature;
  std::uint32_t tree_root;
  std::uint32_t tree_height;
  std::uint64_t tree_num_nodes;
};
static_assert(sizeof(MetaBlock) == 64, "TOPLIDX2 meta block is 64 bytes");

// Canonical section order; the reader requires exactly this table. Version-1
// files carry the first kNumSectionsV1 sections; version-2 files additionally
// carry g.extids; version-3 files additionally carry shard.map.
enum SectionId : std::size_t {
  kMeta = 0,
  kGraphOffsets,
  kGraphArcs,
  kGraphEndpoints,
  kGraphKwOffsets,
  kGraphKeywords,
  kPreThetas,
  kPreSignatures,
  kPreSupports,
  kPreTruss,
  kPreScores,
  kTreeNodes,
  kTreeSorted,
  kTreeSignatures,
  kTreeSupports,
  kTreeTruss,
  kTreeScores,
  kNumSectionsV1,
  kGraphExtIds = kNumSectionsV1,
  kNumSectionsV2,
  kShardMap = kNumSectionsV2,
  kNumSectionsV3,
};

constexpr const char* kSectionNames[kNumSectionsV3] = {
    "meta",         "g.offsets",    "g.arcs",     "g.endpoints",
    "g.kw_offsets", "g.keywords",   "p.thetas",   "p.signatures",
    "p.supports",   "p.truss",      "p.scores",   "t.nodes",
    "t.sorted",     "t.signatures", "t.supports", "t.truss",
    "t.scores",     "g.extids",     "shard.map"};

// Leading fixed words of the shard.map payload before the owned-id list.
constexpr std::size_t kShardMapHeaderWords = 4;

constexpr std::uint32_t kSectionElemSizes[kNumSectionsV3] = {
    sizeof(MetaBlock),
    sizeof(std::uint64_t),           // g.offsets
    sizeof(Graph::Arc),              // g.arcs
    sizeof(Graph::EdgeEndpoints),    // g.endpoints
    sizeof(std::uint64_t),           // g.kw_offsets
    sizeof(KeywordId),               // g.keywords
    sizeof(double),                  // p.thetas
    sizeof(std::uint64_t),           // p.signatures
    sizeof(std::uint32_t),           // p.supports
    sizeof(std::uint32_t),           // p.truss
    sizeof(double),                  // p.scores
    sizeof(TreeIndex::Node),         // t.nodes
    sizeof(VertexId),                // t.sorted
    sizeof(std::uint64_t),           // t.signatures
    sizeof(std::uint32_t),           // t.supports
    sizeof(std::uint32_t),           // t.truss
    sizeof(double),                  // t.scores
    sizeof(VertexId),                // g.extids
    sizeof(std::uint32_t),           // shard.map
};

// Sections that have a delta+varint codec. Doubles, signatures and the
// permutation stay raw: score/theta payloads are incompressible entropy and
// the signature words are dense bitsets.
constexpr bool kSectionEncodable[kNumSectionsV3] = {
    false,  // meta
    true,   // g.offsets     (monotone u64 deltas)
    true,   // g.arcs        (SoA: to/edge zigzag deltas + raw probs)
    true,   // g.endpoints   (SoA: u zigzag deltas + uvarint v - u - 1)
    true,   // g.kw_offsets
    true,   // g.keywords    (sorted-per-vertex zigzag deltas)
    false,  // p.thetas
    false,  // p.signatures
    true,   // p.supports    (small values, plain varint)
    true,   // p.truss
    false,  // p.scores
    true,   // t.nodes       (SoA columns, see EncodeTreeNodes)
    true,   // t.sorted      (zigzag deltas)
    false,  // t.signatures
    true,   // t.supports
    true,   // t.truss
    false,  // t.scores
    false,  // g.extids
    false,  // shard.map
};

// ---------------------------------------------------------------------------
// Composite section codecs (the simple ones live in storage/varint.h).
// ---------------------------------------------------------------------------

// g.arcs: structure-of-arrays framing — uvarint count, zigzag deltas of the
// target ids, zigzag deltas of the edge ids, then the float probabilities
// verbatim. After locality reordering the target deltas hug zero, so the
// 12 B/arc raw layout shrinks to ~6 B/arc.
std::vector<std::uint8_t> EncodeArcs(std::span<const Graph::Arc> arcs) {
  std::vector<std::uint8_t> out;
  out.reserve(arcs.size() * 7 + 8);
  PutUvarint(out, arcs.size());
  std::int64_t prev = 0;
  for (const Graph::Arc& a : arcs) {
    PutUvarint(out, ZigZagEncode64(static_cast<std::int64_t>(a.to) - prev));
    prev = static_cast<std::int64_t>(a.to);
  }
  prev = 0;
  for (const Graph::Arc& a : arcs) {
    PutUvarint(out, ZigZagEncode64(static_cast<std::int64_t>(a.edge) - prev));
    prev = static_cast<std::int64_t>(a.edge);
  }
  for (const Graph::Arc& a : arcs) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&a.prob);
    out.insert(out.end(), p, p + sizeof(float));
  }
  return out;
}

bool DecodeArcs(std::span<const std::uint8_t> in,
                std::vector<Graph::Arc>* out) {
  std::size_t pos = 0;
  std::uint64_t count = 0;
  if (!GetUvarint(in, &pos, &count)) return false;
  if (count > in.size()) return false;  // ≥ 1 byte per element per stream
  out->assign(count, Graph::Arc{});
  std::int64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t delta = 0;
    if (!GetUvarint(in, &pos, &delta)) return false;
    prev += ZigZagDecode64(delta);
    if (prev < 0 || prev > std::numeric_limits<std::uint32_t>::max()) {
      return false;
    }
    (*out)[i].to = static_cast<VertexId>(prev);
  }
  prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t delta = 0;
    if (!GetUvarint(in, &pos, &delta)) return false;
    prev += ZigZagDecode64(delta);
    if (prev < 0 || prev > std::numeric_limits<std::uint32_t>::max()) {
      return false;
    }
    (*out)[i].edge = static_cast<EdgeId>(prev);
  }
  if (in.size() - pos != count * sizeof(float)) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::memcpy(&(*out)[i].prob, in.data() + pos + i * sizeof(float),
                sizeof(float));
  }
  return true;
}

// g.endpoints: u is near-sorted (edge ids are assigned in endpoint order), v
// is always > u — encode u as zigzag deltas and v as uvarint(v - u - 1).
std::vector<std::uint8_t> EncodeEndpoints(
    std::span<const Graph::EdgeEndpoints> endpoints) {
  std::vector<std::uint8_t> out;
  out.reserve(endpoints.size() * 4 + 8);
  PutUvarint(out, endpoints.size());
  std::int64_t prev = 0;
  for (const Graph::EdgeEndpoints& e : endpoints) {
    PutUvarint(out, ZigZagEncode64(static_cast<std::int64_t>(e.u) - prev));
    prev = static_cast<std::int64_t>(e.u);
  }
  for (const Graph::EdgeEndpoints& e : endpoints) {
    PutUvarint(out, static_cast<std::uint64_t>(e.v) - e.u - 1);
  }
  return out;
}

bool DecodeEndpoints(std::span<const std::uint8_t> in,
                     std::vector<Graph::EdgeEndpoints>* out) {
  std::size_t pos = 0;
  std::uint64_t count = 0;
  if (!GetUvarint(in, &pos, &count)) return false;
  if (count > in.size()) return false;
  out->assign(count, Graph::EdgeEndpoints{});
  std::int64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t delta = 0;
    if (!GetUvarint(in, &pos, &delta)) return false;
    prev += ZigZagDecode64(delta);
    if (prev < 0 || prev > std::numeric_limits<std::uint32_t>::max()) {
      return false;
    }
    (*out)[i].u = static_cast<VertexId>(prev);
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t gap = 0;
    if (!GetUvarint(in, &pos, &gap)) return false;
    const std::uint64_t v = static_cast<std::uint64_t>((*out)[i].u) + 1 + gap;
    if (v > std::numeric_limits<std::uint32_t>::max()) return false;
    (*out)[i].v = static_cast<VertexId>(v);
  }
  return pos == in.size();
}

// t.nodes: one varint column per field. first_child / begin / end grow
// near-monotonically across the arena, so zigzag deltas stay short.
std::vector<std::uint8_t> EncodeTreeNodes(
    std::span<const TreeIndex::Node> nodes) {
  std::vector<std::uint8_t> out;
  out.reserve(nodes.size() * 8 + 8);
  PutUvarint(out, nodes.size());
  for (const TreeIndex::Node& n : nodes) PutUvarint(out, n.is_leaf);
  std::int64_t prev = 0;
  for (const TreeIndex::Node& n : nodes) {
    PutUvarint(out, ZigZagEncode64(static_cast<std::int64_t>(n.first_child) - prev));
    prev = static_cast<std::int64_t>(n.first_child);
  }
  for (const TreeIndex::Node& n : nodes) PutUvarint(out, n.num_children);
  prev = 0;
  for (const TreeIndex::Node& n : nodes) {
    PutUvarint(out, ZigZagEncode64(static_cast<std::int64_t>(n.begin) - prev));
    prev = static_cast<std::int64_t>(n.begin);
  }
  prev = 0;
  for (const TreeIndex::Node& n : nodes) {
    PutUvarint(out, ZigZagEncode64(static_cast<std::int64_t>(n.end) - prev));
    prev = static_cast<std::int64_t>(n.end);
  }
  for (const TreeIndex::Node& n : nodes) PutUvarint(out, n.num_vertices);
  return out;
}

bool DecodeTreeNodes(std::span<const std::uint8_t> in,
                     std::vector<TreeIndex::Node>* out) {
  std::size_t pos = 0;
  std::uint64_t count = 0;
  if (!GetUvarint(in, &pos, &count)) return false;
  if (count > in.size()) return false;
  out->assign(count, TreeIndex::Node{});
  const auto u32_column = [&](auto assign) -> bool {
    for (std::uint64_t i = 0; i < count; ++i) {
      std::uint64_t v = 0;
      if (!GetUvarint(in, &pos, &v)) return false;
      if (v > std::numeric_limits<std::uint32_t>::max()) return false;
      assign((*out)[i], static_cast<std::uint32_t>(v));
    }
    return true;
  };
  const auto delta_column = [&](auto assign) -> bool {
    std::int64_t prev = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      std::uint64_t delta = 0;
      if (!GetUvarint(in, &pos, &delta)) return false;
      prev += ZigZagDecode64(delta);
      if (prev < 0 || prev > std::numeric_limits<std::uint32_t>::max()) {
        return false;
      }
      assign((*out)[i], static_cast<std::uint32_t>(prev));
    }
    return true;
  };
  if (!u32_column([](TreeIndex::Node& n, std::uint32_t v) { n.is_leaf = v; }) ||
      !delta_column([](TreeIndex::Node& n, std::uint32_t v) { n.first_child = v; }) ||
      !u32_column([](TreeIndex::Node& n, std::uint32_t v) { n.num_children = v; }) ||
      !delta_column([](TreeIndex::Node& n, std::uint32_t v) { n.begin = v; }) ||
      !delta_column([](TreeIndex::Node& n, std::uint32_t v) { n.end = v; }) ||
      !u32_column([](TreeIndex::Node& n, std::uint32_t v) { n.num_vertices = v; })) {
    return false;
  }
  return pos == in.size();
}

std::uint64_t AlignUp(std::uint64_t value, std::uint64_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}

std::uint64_t ChecksumBytes(const void* data, std::uint64_t size) {
  // Guard the data pointer: empty spans may carry nullptr.
  static const char kEmpty = 0;
  return XXH64(size == 0 ? &kEmpty : data, size);
}

// ---------------------------------------------------------------------------
// Shared read-side parsing/validation.
// ---------------------------------------------------------------------------

struct ParsedArtifact {
  DiskHeader header;
  DiskSection table[kNumSectionsV3];  // trailing entries zeroed for older versions
  MetaBlock meta;
  bool checksums_ok = true;

  std::size_t num_sections() const { return header.section_count; }
  bool has(SectionId id) const { return id < num_sections(); }
  SectionEncoding encoding(SectionId id) const {
    return static_cast<SectionEncoding>(table[id].encoding);
  }
};

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::Corruption(path + ": " + what);
}

/// Validates header, table geometry and the meta block. When
/// `verify_checksums` is set, also hashes every section payload; a mismatch
/// is recorded in `checksums_ok` (Open turns it into a Status, Inspect
/// reports it).
Result<ParsedArtifact> ParseTable(const MappedFile& f, bool verify_checksums) {
  const std::string& path = f.path();
  if (f.size() < sizeof(DiskHeader)) {
    return Corrupt(path, "file too small for a TOPLIDX2 header");
  }
  ParsedArtifact parsed;
  std::memcpy(&parsed.header, f.data(), sizeof(DiskHeader));
  const DiskHeader& header = parsed.header;
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt(path, "bad magic (not a TOPLIDX2 artifact)");
  }
  if (header.version != kVersionRaw && header.version != kVersionEncoded &&
      header.version != kVersionSharded) {
    return Corrupt(path, "unsupported artifact version " +
                             std::to_string(header.version));
  }
  const std::size_t num_sections = header.version == kVersionRaw
                                       ? kNumSectionsV1
                                       : header.version == kVersionEncoded
                                             ? kNumSectionsV2
                                             : kNumSectionsV3;
  if (header.section_count != num_sections) {
    return Corrupt(path, "unexpected section count " +
                             std::to_string(header.section_count));
  }
  if (header.file_size != f.size()) {
    return Corrupt(path, "file size mismatch (header advertises " +
                             std::to_string(header.file_size) +
                             " bytes, file has " + std::to_string(f.size()) +
                             ")");
  }
  const std::uint64_t table_bytes = num_sections * sizeof(DiskSection);
  const std::uint64_t payload_start = sizeof(DiskHeader) + table_bytes;
  if (f.size() < payload_start) {
    return Corrupt(path, "file too small for the section table");
  }
  std::memcpy(parsed.table, f.data() + sizeof(DiskHeader), table_bytes);
  if (XXH64(parsed.table, table_bytes) != header.table_checksum) {
    return Corrupt(path, "section table checksum mismatch");
  }

  std::uint64_t prev_end = payload_start;
  for (std::size_t i = 0; i < num_sections; ++i) {
    const DiskSection& s = parsed.table[i];
    char expected[16] = {};
    std::strncpy(expected, kSectionNames[i], sizeof(expected) - 1);
    if (std::memcmp(s.name, expected, sizeof(expected)) != 0) {
      return Corrupt(path, "section " + std::to_string(i) + " is not \"" +
                               kSectionNames[i] + "\"");
    }
    const bool encoded =
        s.encoding == static_cast<std::uint32_t>(SectionEncoding::kDeltaVarint);
    if (s.encoding != 0 &&
        (header.version == kVersionRaw || !encoded || !kSectionEncodable[i])) {
      return Corrupt(path, std::string("section ") + kSectionNames[i] +
                               " has an unsupported encoding");
    }
    // Encoded payloads are byte streams (elem_size 1); raw payloads keep the
    // canonical element size so the whole-element check below stays exact.
    if (s.elem_size != (encoded ? 1 : kSectionElemSizes[i])) {
      return Corrupt(path, std::string("section ") + kSectionNames[i] +
                               " has wrong element size");
    }
    if (s.offset % kSectionAlignment != 0) {
      return Corrupt(path, std::string("section ") + kSectionNames[i] +
                               " is misaligned");
    }
    if (s.offset < prev_end || s.size > f.size() ||
        s.offset > f.size() - s.size) {
      return Corrupt(path, std::string("section ") + kSectionNames[i] +
                               " lies outside the file or overlaps");
    }
    if (s.size % s.elem_size != 0) {
      return Corrupt(path, std::string("section ") + kSectionNames[i] +
                               " has a partial trailing element");
    }
    prev_end = s.offset + s.size;
    if (verify_checksums &&
        ChecksumBytes(f.data() + s.offset, s.size) != s.checksum) {
      parsed.checksums_ok = false;
    }
  }

  const DiskSection& meta_section = parsed.table[kMeta];
  if (meta_section.size != sizeof(MetaBlock)) {
    return Corrupt(path, "meta section has wrong size");
  }
  std::memcpy(&parsed.meta, f.data() + meta_section.offset, sizeof(MetaBlock));
  return parsed;
}

template <typename T>
std::span<const T> SectionView(const MappedFile& f, const ParsedArtifact& parsed,
                               SectionId id) {
  return f.ViewAt<T>(parsed.table[id].offset,
                     parsed.table[id].size / parsed.table[id].elem_size);
}

/// All sections as typed views, plus owned storage for the ones that were
/// stored encoded. Raw sections stay zero-copy views of the mapping; encoded
/// sections are decoded here exactly once. The vectors are later moved into
/// the owned backing of Graph / PrecomputedData / TreeIndex, so the decoded
/// data is never copied twice.
struct LoadedSections {
  // Owned storage (empty for raw sections).
  std::vector<std::uint64_t> g_offsets_v, g_kw_offsets_v;
  std::vector<Graph::Arc> g_arcs_v;
  std::vector<Graph::EdgeEndpoints> g_endpoints_v;
  std::vector<KeywordId> g_keywords_v;
  std::vector<std::uint32_t> p_supports_v, p_truss_v, t_supports_v, t_truss_v;
  std::vector<TreeIndex::Node> t_nodes_v;
  std::vector<VertexId> t_sorted_v;

  // Views over the mapping or the vectors above.
  std::span<const std::uint64_t> offsets, kw_offsets;
  std::span<const Graph::Arc> arcs;
  std::span<const Graph::EdgeEndpoints> endpoints;
  std::span<const KeywordId> keywords;
  std::span<const double> thetas, p_scores, t_scores;
  std::span<const std::uint64_t> p_signatures, t_signatures;
  std::span<const std::uint32_t> p_supports, p_truss, t_supports, t_truss;
  std::span<const TreeIndex::Node> nodes;
  std::span<const VertexId> sorted, extids;
  std::span<const std::uint32_t> shard_map;
};

Result<LoadedSections> LoadSections(const MappedFile& f,
                                    const ParsedArtifact& parsed) {
  LoadedSections s;
  const auto encoded = [&](SectionId id) {
    return parsed.encoding(id) == SectionEncoding::kDeltaVarint;
  };
  const auto stored = [&](SectionId id) {
    return std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(f.data()) +
            parsed.table[id].offset,
        parsed.table[id].size);
  };
  const auto bad = [&](SectionId id) {
    return Corrupt(f.path(), std::string("section ") + kSectionNames[id] +
                                 " failed to decode");
  };

  // Graph.
  if (encoded(kGraphOffsets)) {
    if (!DecodeDeltaU64(stored(kGraphOffsets), &s.g_offsets_v)) {
      return bad(kGraphOffsets);
    }
    s.offsets = s.g_offsets_v;
  } else {
    s.offsets = SectionView<std::uint64_t>(f, parsed, kGraphOffsets);
  }
  if (encoded(kGraphArcs)) {
    if (!DecodeArcs(stored(kGraphArcs), &s.g_arcs_v)) return bad(kGraphArcs);
    s.arcs = s.g_arcs_v;
  } else {
    s.arcs = SectionView<Graph::Arc>(f, parsed, kGraphArcs);
  }
  if (encoded(kGraphEndpoints)) {
    if (!DecodeEndpoints(stored(kGraphEndpoints), &s.g_endpoints_v)) {
      return bad(kGraphEndpoints);
    }
    s.endpoints = s.g_endpoints_v;
  } else {
    s.endpoints = SectionView<Graph::EdgeEndpoints>(f, parsed, kGraphEndpoints);
  }
  if (encoded(kGraphKwOffsets)) {
    if (!DecodeDeltaU64(stored(kGraphKwOffsets), &s.g_kw_offsets_v)) {
      return bad(kGraphKwOffsets);
    }
    s.kw_offsets = s.g_kw_offsets_v;
  } else {
    s.kw_offsets = SectionView<std::uint64_t>(f, parsed, kGraphKwOffsets);
  }
  if (encoded(kGraphKeywords)) {
    if (!DecodeDeltaU32(stored(kGraphKeywords), &s.g_keywords_v)) {
      return bad(kGraphKeywords);
    }
    s.keywords = s.g_keywords_v;
  } else {
    s.keywords = SectionView<KeywordId>(f, parsed, kGraphKeywords);
  }

  // Precompute. Doubles and signatures are always raw.
  s.thetas = SectionView<double>(f, parsed, kPreThetas);
  s.p_signatures = SectionView<std::uint64_t>(f, parsed, kPreSignatures);
  s.p_scores = SectionView<double>(f, parsed, kPreScores);
  if (encoded(kPreSupports)) {
    if (!DecodeVarintU32(stored(kPreSupports), &s.p_supports_v)) {
      return bad(kPreSupports);
    }
    s.p_supports = s.p_supports_v;
  } else {
    s.p_supports = SectionView<std::uint32_t>(f, parsed, kPreSupports);
  }
  if (encoded(kPreTruss)) {
    if (!DecodeVarintU32(stored(kPreTruss), &s.p_truss_v)) {
      return bad(kPreTruss);
    }
    s.p_truss = s.p_truss_v;
  } else {
    s.p_truss = SectionView<std::uint32_t>(f, parsed, kPreTruss);
  }

  // Tree.
  if (encoded(kTreeNodes)) {
    if (!DecodeTreeNodes(stored(kTreeNodes), &s.t_nodes_v)) {
      return bad(kTreeNodes);
    }
    s.nodes = s.t_nodes_v;
  } else {
    s.nodes = SectionView<TreeIndex::Node>(f, parsed, kTreeNodes);
  }
  if (encoded(kTreeSorted)) {
    if (!DecodeDeltaU32(stored(kTreeSorted), &s.t_sorted_v)) {
      return bad(kTreeSorted);
    }
    s.sorted = s.t_sorted_v;
  } else {
    s.sorted = SectionView<VertexId>(f, parsed, kTreeSorted);
  }
  s.t_signatures = SectionView<std::uint64_t>(f, parsed, kTreeSignatures);
  s.t_scores = SectionView<double>(f, parsed, kTreeScores);
  if (encoded(kTreeSupports)) {
    if (!DecodeVarintU32(stored(kTreeSupports), &s.t_supports_v)) {
      return bad(kTreeSupports);
    }
    s.t_supports = s.t_supports_v;
  } else {
    s.t_supports = SectionView<std::uint32_t>(f, parsed, kTreeSupports);
  }
  if (encoded(kTreeTruss)) {
    if (!DecodeVarintU32(stored(kTreeTruss), &s.t_truss_v)) {
      return bad(kTreeTruss);
    }
    s.t_truss = s.t_truss_v;
  } else {
    s.t_truss = SectionView<std::uint32_t>(f, parsed, kTreeTruss);
  }

  // External ids (version 2, always raw).
  if (parsed.has(kGraphExtIds)) {
    s.extids = SectionView<VertexId>(f, parsed, kGraphExtIds);
  }
  // Shard manifest (version 3, always raw).
  if (parsed.has(kShardMap)) {
    s.shard_map = SectionView<std::uint32_t>(f, parsed, kShardMap);
  }
  return s;
}

/// Everything beyond table geometry: the meta block's cross-structure size
/// equations and the structural invariants the detectors index by. Operates
/// on the loaded views, so encoded and raw sections pass through identical
/// checks. Linear in the data but allocation- and copy-free.
Status ValidateStructure(const std::string& path, const ParsedArtifact& parsed,
                         const LoadedSections& s) {
  const MetaBlock& meta = parsed.meta;
  const std::uint64_t n = meta.num_vertices;
  const std::uint64_t m = meta.num_edges;
  const std::uint64_t r_max = meta.r_max;
  const std::uint64_t words = meta.words_per_signature;
  const std::uint64_t z = meta.num_thetas;
  const std::uint64_t nodes = meta.tree_num_nodes;

  if (n == 0 || n > (1ULL << 32) || m > (1ULL << 32)) {
    return Corrupt(path, "implausible graph size in meta block");
  }
  if (r_max == 0 || z == 0 || words == 0 ||
      words != (meta.signature_bits + 63) / 64) {
    return Corrupt(path, "inconsistent precompute parameters in meta block");
  }
  if (nodes == 0 || meta.tree_root >= nodes) {
    return Corrupt(path, "inconsistent tree shape in meta block");
  }

  // A version-3 shard manifest narrows the tree's vertex universe: graph and
  // precompute sections still describe the full replica, but t.sorted holds
  // only the shard's owned candidate subset.
  if (parsed.has(kShardMap) && s.shard_map.size() <= kShardMapHeaderWords) {
    return Corrupt(path, "shard manifest too small");
  }
  std::uint64_t sorted_len = n;
  if (!s.shard_map.empty()) {
    const std::uint32_t num_shards = s.shard_map[0];
    const std::uint32_t shard_index = s.shard_map[1];
    if (num_shards == 0 || shard_index >= num_shards) {
      return Corrupt(path, "shard manifest indices out of range");
    }
    const std::span<const std::uint32_t> owned =
        s.shard_map.subspan(kShardMapHeaderWords);
    for (std::size_t i = 0; i < owned.size(); ++i) {
      if (owned[i] >= n || (i > 0 && owned[i] <= owned[i - 1])) {
        return Corrupt(path, "shard owned set not strictly ascending in [0, n)");
      }
    }
    sorted_len = owned.size();
  }

  const bool sizes_ok =
      s.offsets.size() == n + 1 &&
      s.arcs.size() == 2 * m &&
      s.endpoints.size() == m &&
      s.kw_offsets.size() == n + 1 &&
      s.keywords.size() == meta.total_keywords &&
      s.thetas.size() == z &&
      s.p_signatures.size() == n * r_max * words &&
      s.p_supports.size() == n * r_max &&
      s.p_truss.size() == n &&
      s.p_scores.size() == n * r_max * z &&
      s.nodes.size() == nodes &&
      s.sorted.size() == sorted_len &&
      s.t_signatures.size() == nodes * r_max * words &&
      s.t_supports.size() == nodes * r_max &&
      s.t_truss.size() == nodes &&
      s.t_scores.size() == nodes * r_max * z;
  if (!sizes_ok) {
    return Corrupt(path, "section sizes disagree with the meta block");
  }
  // The external-id section is either absent/empty (identity) or a full
  // permutation of [0, n): anything else would silently mislabel every
  // query answer, so it is rejected as corruption like any other section.
  if (!s.extids.empty()) {
    if (s.extids.size() != n) {
      return Corrupt(path, "external-id permutation has wrong length");
    }
    std::vector<bool> seen(n, false);
    for (VertexId ext : s.extids) {
      if (ext >= n || seen[ext]) {
        return Corrupt(path, "external-id section is not a permutation");
      }
      seen[ext] = true;
    }
  }

  // Graph CSR invariants, including the per-vertex orderings the binary
  // searches in Graph::HasEdge/FindEdge/HasKeyword depend on — a corrupt
  // file must fail the open even when the checksum pass is disabled.
  // Validate each offsets array completely before dereferencing through it:
  // monotone with the final entry equal to the array length bounds every
  // intermediate offset, so the element loops below cannot leave their
  // sections.
  const auto& offsets = s.offsets;
  if (offsets[0] != 0 || offsets[n] != 2 * m) {
    return Corrupt(path, "arc offsets do not cover the arc array");
  }
  for (std::uint64_t v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      return Corrupt(path, "non-monotonic arc offsets");
    }
  }
  const auto& arcs = s.arcs;
  for (std::uint64_t v = 0; v < n; ++v) {
    for (std::uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const Graph::Arc& arc = arcs[i];
      if (arc.to >= n || arc.edge >= m) {
        return Corrupt(path, "arc target or edge id out of range");
      }
      if (arc.to == v) return Corrupt(path, "self-loop arc");
      // NaN probabilities fail this comparison too.
      if (!(arc.prob > 0.0f && arc.prob <= 1.0f)) {
        return Corrupt(path, "arc probability outside (0, 1]");
      }
      if (i > offsets[v] && arcs[i - 1].to >= arc.to) {
        return Corrupt(path, "neighbor list not sorted");
      }
    }
  }
  for (const Graph::EdgeEndpoints& e : s.endpoints) {
    if (e.v >= n || e.u >= e.v) {
      return Corrupt(path, "edge endpoints out of range or unordered");
    }
  }
  const auto& kw_offsets = s.kw_offsets;
  if (kw_offsets[0] != 0 || kw_offsets[n] != meta.total_keywords) {
    return Corrupt(path, "keyword offsets do not cover the keyword array");
  }
  for (std::uint64_t v = 0; v < n; ++v) {
    if (kw_offsets[v] > kw_offsets[v + 1]) {
      return Corrupt(path, "non-monotonic keyword offsets");
    }
  }
  const auto& keywords = s.keywords;
  for (std::uint64_t v = 0; v < n; ++v) {
    for (std::uint64_t i = kw_offsets[v] + 1; i < kw_offsets[v + 1]; ++i) {
      if (keywords[i - 1] >= keywords[i]) {
        return Corrupt(path, "keyword set not sorted");
      }
    }
  }

  // Precompute invariants.
  const auto& thetas = s.thetas;
  for (std::size_t i = 0; i < thetas.size(); ++i) {
    if (!(thetas[i] >= 0.0 && thetas[i] < 1.0) ||
        (i > 0 && thetas[i] <= thetas[i - 1])) {
      return Corrupt(path, "thresholds not strictly ascending in [0, 1)");
    }
  }

  // Tree invariants (same checks as the legacy codec).
  for (const TreeIndex::Node& node : s.nodes) {
    if (node.is_leaf > 1) return Corrupt(path, "node leaf flag out of range");
    if (node.is_leaf == 0 && (node.first_child >= nodes ||
                              node.num_children > nodes - node.first_child)) {
      return Corrupt(path, "node child range out of bounds");
    }
    if (node.is_leaf == 1 &&
        (node.begin > node.end || node.end > s.sorted.size())) {
      return Corrupt(path, "leaf vertex range out of bounds");
    }
  }
  for (VertexId v : s.sorted) {
    if (v >= n) return Corrupt(path, "sorted vertex out of range");
  }
  // The pruning contract of a sharded artifact is that the tree covers the
  // owned set exactly — a missing owned vertex would silently drop answers,
  // an extra one would double-count it across shards.
  if (!s.shard_map.empty()) {
    const std::span<const std::uint32_t> owned =
        s.shard_map.subspan(kShardMapHeaderWords);
    std::vector<bool> seen(owned.size(), false);
    for (VertexId v : s.sorted) {
      const auto it = std::lower_bound(owned.begin(), owned.end(), v);
      if (it == owned.end() || *it != v) {
        return Corrupt(path, "sorted vertex outside the shard's owned set");
      }
      const std::size_t slot = static_cast<std::size_t>(it - owned.begin());
      if (seen[slot]) {
        return Corrupt(path, "sorted vertex repeated within the shard");
      }
      seen[slot] = true;
    }
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

Status ArtifactWriter::Write(const Graph& g, const PrecomputedData& pre,
                             const TreeIndex& tree, const std::string& path,
                             const ArtifactWriteOptions& options) {
  if (pre.n_ != g.NumVertices()) {
    return Status::InvalidArgument(
        "precomputed data was built over a different graph (vertex count "
        "mismatch)");
  }
  if (tree.pre_ != &pre || tree.nodes_.empty()) {
    return Status::InvalidArgument(
        "tree index is empty or references different precomputed data");
  }
  const std::size_t n = g.NumVertices();
  if (!options.external_ids.empty()) {
    if (options.external_ids.size() != n) {
      return Status::InvalidArgument(
          "external-id permutation length does not match the graph");
    }
    std::vector<bool> seen(n, false);
    for (VertexId ext : options.external_ids) {
      if (ext >= n || seen[ext]) {
        return Status::InvalidArgument(
            "external ids are not a permutation of [0, n)");
      }
      seen[ext] = true;
    }
  }
  if (!options.shard_manifest.empty()) {
    if (options.shard_manifest.size() <= kShardMapHeaderWords) {
      return Status::InvalidArgument("shard manifest too small");
    }
    const std::span<const std::uint32_t> owned =
        options.shard_manifest.subspan(kShardMapHeaderWords);
    if (owned.size() != tree.sorted_vertices_.size()) {
      return Status::InvalidArgument(
          "shard manifest owned count disagrees with the tree's candidate "
          "subset");
    }
    if (options.shard_manifest[0] == 0 ||
        options.shard_manifest[1] >= options.shard_manifest[0]) {
      return Status::InvalidArgument("shard manifest indices out of range");
    }
    for (std::size_t i = 0; i < owned.size(); ++i) {
      if (owned[i] >= n || (i > 0 && owned[i] <= owned[i - 1])) {
        return Status::InvalidArgument(
            "shard owned set not strictly ascending in [0, n)");
      }
    }
  }
  // Lowest version whose feature set covers the request, so default-written
  // artifacts remain byte-compatible with older readers.
  const bool v2 = options.compress || !options.external_ids.empty();
  const bool v3 = !options.shard_manifest.empty();
  const std::size_t num_sections =
      v3 ? kNumSectionsV3 : v2 ? kNumSectionsV2 : kNumSectionsV1;

  MetaBlock meta{};
  meta.num_vertices = g.NumVertices();
  meta.num_edges = g.NumEdges();
  meta.total_keywords = g.keywords_.size();
  meta.keyword_domain_bound = g.keyword_domain_bound_;
  meta.r_max = pre.r_max_;
  meta.signature_bits = pre.signature_bits_;
  meta.num_thetas = static_cast<std::uint32_t>(pre.thetas_.size());
  meta.words_per_signature = pre.words_;
  meta.tree_root = tree.root_;
  meta.tree_height = tree.height_;
  meta.tree_num_nodes = tree.nodes_.size();

  struct Payload {
    const void* data;
    std::uint64_t size;
    std::uint32_t elem_size;
    std::uint32_t encoding;
  };
  auto bytes_of = [](const auto& span, SectionId id) {
    return Payload{span.data(), span.size_bytes(), kSectionElemSizes[id],
                   static_cast<std::uint32_t>(SectionEncoding::kRaw)};
  };
  Payload payloads[kNumSectionsV3] = {
      {&meta, sizeof(meta), sizeof(meta),
       static_cast<std::uint32_t>(SectionEncoding::kRaw)},
      bytes_of(g.offsets_, kGraphOffsets),
      bytes_of(g.arcs_, kGraphArcs),
      bytes_of(g.edge_endpoints_, kGraphEndpoints),
      bytes_of(g.keyword_offsets_, kGraphKwOffsets),
      bytes_of(g.keywords_, kGraphKeywords),
      bytes_of(pre.thetas_, kPreThetas),
      bytes_of(pre.signatures_, kPreSignatures),
      bytes_of(pre.support_bounds_, kPreSupports),
      bytes_of(pre.center_truss_, kPreTruss),
      bytes_of(pre.score_bounds_, kPreScores),
      bytes_of(tree.nodes_, kTreeNodes),
      bytes_of(tree.sorted_vertices_, kTreeSorted),
      bytes_of(tree.signatures_, kTreeSignatures),
      bytes_of(tree.support_bounds_, kTreeSupports),
      bytes_of(tree.center_truss_bounds_, kTreeTruss),
      bytes_of(tree.score_bounds_, kTreeScores),
      bytes_of(options.external_ids, kGraphExtIds),
      bytes_of(options.shard_manifest, kShardMap),
  };

  // Encoded payloads live in these buffers until the file is flushed.
  std::vector<std::uint8_t> encoded[kNumSectionsV3];
  if (options.compress) {
    encoded[kGraphOffsets] = EncodeDeltaU64(g.offsets_);
    encoded[kGraphArcs] = EncodeArcs(g.arcs_);
    encoded[kGraphEndpoints] = EncodeEndpoints(g.edge_endpoints_);
    encoded[kGraphKwOffsets] = EncodeDeltaU64(g.keyword_offsets_);
    encoded[kGraphKeywords] = EncodeDeltaU32(g.keywords_);
    encoded[kPreSupports] = EncodeVarintU32(pre.support_bounds_);
    encoded[kPreTruss] = EncodeVarintU32(pre.center_truss_);
    encoded[kTreeNodes] = EncodeTreeNodes(tree.nodes_);
    encoded[kTreeSorted] = EncodeDeltaU32(tree.sorted_vertices_);
    encoded[kTreeSupports] = EncodeVarintU32(tree.support_bounds_);
    encoded[kTreeTruss] = EncodeVarintU32(tree.center_truss_bounds_);
    for (std::size_t i = 0; i < num_sections; ++i) {
      if (!kSectionEncodable[i]) continue;
      payloads[i] = {encoded[i].data(), encoded[i].size(), 1,
                     static_cast<std::uint32_t>(SectionEncoding::kDeltaVarint)};
    }
  }

  DiskSection table[kNumSectionsV3] = {};
  const std::uint64_t table_bytes = num_sections * sizeof(DiskSection);
  std::uint64_t cursor = sizeof(DiskHeader) + table_bytes;
  for (std::size_t i = 0; i < num_sections; ++i) {
    DiskSection& s = table[i];
    std::strncpy(s.name, kSectionNames[i], sizeof(s.name) - 1);
    s.offset = AlignUp(cursor, kSectionAlignment);
    s.size = payloads[i].size;
    s.elem_size = payloads[i].elem_size;
    s.encoding = payloads[i].encoding;
    s.checksum = ChecksumBytes(payloads[i].data, payloads[i].size);
    cursor = s.offset + s.size;
  }

  DiskHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = v3 ? kVersionSharded : v2 ? kVersionEncoded : kVersionRaw;
  header.section_count = static_cast<std::uint32_t>(num_sections);
  header.file_size = cursor;
  header.table_checksum = XXH64(table, table_bytes);

  // Crash-atomic replacement (storage/atomic_file.h): `path` may be the very
  // artifact the payload spans are mapped from (in-place migrate), and a
  // mid-write failure or crash (ENOSPC, SIGKILL, power loss) must never
  // leave anything but the complete old or the complete new artifact behind.
  TOPL_FAULT_POINT("artifact.write");
  Result<AtomicFile> out = AtomicFile::Create(path);
  if (!out.ok()) return out.status();
  TOPL_RETURN_IF_ERROR(out->Append(&header, sizeof(header)));
  TOPL_RETURN_IF_ERROR(out->Append(table, table_bytes));
  std::uint64_t written = sizeof(header) + table_bytes;
  static constexpr char kZeros[kSectionAlignment] = {};
  for (std::size_t i = 0; i < num_sections; ++i) {
    TOPL_RETURN_IF_ERROR(out->Append(kZeros, table[i].offset - written));
    if (payloads[i].size > 0) {
      TOPL_RETURN_IF_ERROR(out->Append(payloads[i].data, payloads[i].size));
    }
    written = table[i].offset + table[i].size;
  }
  return out->Commit();
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

bool ArtifactReader::IsArtifact(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  return in && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

Result<MappedIndex> ArtifactReader::Open(const std::string& path,
                                         const ArtifactReadOptions& options) {
  MappedFile::MapOptions map_options;
  map_options.populate = options.populate;
  map_options.huge_pages = options.huge_pages;
  Result<std::shared_ptr<MappedFile>> mapped_r =
      MappedFile::Open(path, map_options);
  if (!mapped_r.ok()) return mapped_r.status();
  std::shared_ptr<MappedFile> mapped = std::move(mapped_r).value();
  const MappedFile& f = *mapped;

  Result<ParsedArtifact> parsed_r = ParseTable(f, options.verify_checksums);
  if (!parsed_r.ok()) return parsed_r.status();
  const ParsedArtifact& parsed = *parsed_r;
  if (!parsed.checksums_ok) {
    return Corrupt(path, "section checksum mismatch");
  }
  Result<LoadedSections> loaded_r = LoadSections(f, parsed);
  if (!loaded_r.ok()) return loaded_r.status();
  LoadedSections& s = *loaded_r;
  TOPL_RETURN_IF_ERROR(ValidateStructure(path, parsed, s));
  const MetaBlock& meta = parsed.meta;
  const auto encoded = [&parsed](SectionId id) {
    return parsed.encoding(id) == SectionEncoding::kDeltaVarint;
  };

  // Hybrid backing: raw sections stay zero-copy views of the mapping;
  // decoded vectors move into the structures' owned storage (spans into a
  // vector stay valid across the move of the enclosing object). Each
  // structure keeps the mapping alive for whichever sections stayed raw.
  MappedIndex out;

  Graph& g = out.graph;
  if (encoded(kGraphOffsets)) {
    g.owned_offsets_ = std::move(s.g_offsets_v);
    g.offsets_ = g.owned_offsets_;
  } else {
    g.offsets_ = SectionView<std::uint64_t>(f, parsed, kGraphOffsets);
  }
  if (encoded(kGraphArcs)) {
    g.owned_arcs_ = std::move(s.g_arcs_v);
    g.arcs_ = g.owned_arcs_;
  } else {
    g.arcs_ = SectionView<Graph::Arc>(f, parsed, kGraphArcs);
  }
  if (encoded(kGraphEndpoints)) {
    g.owned_edge_endpoints_ = std::move(s.g_endpoints_v);
    g.edge_endpoints_ = g.owned_edge_endpoints_;
  } else {
    g.edge_endpoints_ =
        SectionView<Graph::EdgeEndpoints>(f, parsed, kGraphEndpoints);
  }
  if (encoded(kGraphKwOffsets)) {
    g.owned_keyword_offsets_ = std::move(s.g_kw_offsets_v);
    g.keyword_offsets_ = g.owned_keyword_offsets_;
  } else {
    g.keyword_offsets_ = SectionView<std::uint64_t>(f, parsed, kGraphKwOffsets);
  }
  if (encoded(kGraphKeywords)) {
    g.owned_keywords_ = std::move(s.g_keywords_v);
    g.keywords_ = g.owned_keywords_;
  } else {
    g.keywords_ = SectionView<KeywordId>(f, parsed, kGraphKeywords);
  }
  g.keyword_domain_bound_ = meta.keyword_domain_bound;
  g.backing_ = mapped;

  out.pre = std::unique_ptr<PrecomputedData>(new PrecomputedData());
  PrecomputedData& pre = *out.pre;
  pre.r_max_ = meta.r_max;
  pre.signature_bits_ = meta.signature_bits;
  pre.words_ = meta.words_per_signature;
  pre.n_ = meta.num_vertices;
  pre.thetas_ = SectionView<double>(f, parsed, kPreThetas);
  pre.signatures_ = SectionView<std::uint64_t>(f, parsed, kPreSignatures);
  if (encoded(kPreSupports)) {
    pre.owned_support_bounds_ = std::move(s.p_supports_v);
    pre.support_bounds_ = pre.owned_support_bounds_;
  } else {
    pre.support_bounds_ = SectionView<std::uint32_t>(f, parsed, kPreSupports);
  }
  if (encoded(kPreTruss)) {
    pre.owned_center_truss_ = std::move(s.p_truss_v);
    pre.center_truss_ = pre.owned_center_truss_;
  } else {
    pre.center_truss_ = SectionView<std::uint32_t>(f, parsed, kPreTruss);
  }
  pre.score_bounds_ = SectionView<double>(f, parsed, kPreScores);
  pre.backing_ = mapped;

  TreeIndex& tree = out.tree;
  tree.pre_ = out.pre.get();
  tree.r_max_ = meta.r_max;
  tree.num_thetas_ = meta.num_thetas;
  tree.words_ = meta.words_per_signature;
  tree.root_ = meta.tree_root;
  tree.height_ = meta.tree_height;
  if (encoded(kTreeNodes)) {
    tree.owned_nodes_ = std::move(s.t_nodes_v);
    tree.nodes_ = tree.owned_nodes_;
  } else {
    tree.nodes_ = SectionView<TreeIndex::Node>(f, parsed, kTreeNodes);
  }
  if (encoded(kTreeSorted)) {
    tree.owned_sorted_vertices_ = std::move(s.t_sorted_v);
    tree.sorted_vertices_ = tree.owned_sorted_vertices_;
  } else {
    tree.sorted_vertices_ = SectionView<VertexId>(f, parsed, kTreeSorted);
  }
  tree.signatures_ = SectionView<std::uint64_t>(f, parsed, kTreeSignatures);
  if (encoded(kTreeSupports)) {
    tree.owned_support_bounds_ = std::move(s.t_supports_v);
    tree.support_bounds_ = tree.owned_support_bounds_;
  } else {
    tree.support_bounds_ = SectionView<std::uint32_t>(f, parsed, kTreeSupports);
  }
  if (encoded(kTreeTruss)) {
    tree.owned_center_truss_bounds_ = std::move(s.t_truss_v);
    tree.center_truss_bounds_ = tree.owned_center_truss_bounds_;
  } else {
    tree.center_truss_bounds_ =
        SectionView<std::uint32_t>(f, parsed, kTreeTruss);
  }
  tree.score_bounds_ = SectionView<double>(f, parsed, kTreeScores);
  tree.backing_ = mapped;

  out.external_ids.assign(s.extids.begin(), s.extids.end());
  out.shard_manifest.assign(s.shard_map.begin(), s.shard_map.end());
  for (std::size_t i = 0; i < parsed.num_sections(); ++i) {
    if (parsed.table[i].encoding != 0) out.compressed = true;
  }
  out.backing = std::move(mapped);
  return out;
}

Result<ArtifactInfo> ArtifactReader::Inspect(const std::string& path) {
  Result<std::shared_ptr<MappedFile>> mapped_r = MappedFile::Open(path);
  if (!mapped_r.ok()) return mapped_r.status();
  const MappedFile& f = **mapped_r;

  Result<ParsedArtifact> parsed_r = ParseTable(f, /*verify_checksums=*/true);
  if (!parsed_r.ok()) return parsed_r.status();
  const ParsedArtifact& parsed = *parsed_r;

  ArtifactInfo info;
  info.version = parsed.header.version;
  info.file_size = parsed.header.file_size;
  info.num_vertices = parsed.meta.num_vertices;
  info.num_edges = parsed.meta.num_edges;
  info.total_keywords = parsed.meta.total_keywords;
  info.r_max = parsed.meta.r_max;
  info.signature_bits = parsed.meta.signature_bits;
  info.num_thetas = parsed.meta.num_thetas;
  info.tree_height = parsed.meta.tree_height;
  info.tree_num_nodes = parsed.meta.tree_num_nodes;
  info.has_external_ids =
      parsed.has(kGraphExtIds) && parsed.table[kGraphExtIds].size > 0;
  if (parsed.has(kShardMap) &&
      parsed.table[kShardMap].size >= 2 * sizeof(std::uint32_t)) {
    info.has_shard_map = true;
    const std::uint32_t* words = reinterpret_cast<const std::uint32_t*>(
        f.data() + parsed.table[kShardMap].offset);
    info.num_shards = words[0];
    info.shard_index = words[1];
  }
  info.checksums_ok = parsed.checksums_ok;
  info.sections.reserve(parsed.num_sections());
  for (std::size_t i = 0; i < parsed.num_sections(); ++i) {
    const DiskSection& s = parsed.table[i];
    info.sections.push_back({kSectionNames[i], s.offset, s.size, s.elem_size,
                             s.encoding, s.checksum});
  }
  return info;
}

}  // namespace topl

#include "storage/artifact.h"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "storage/checksum.h"
#include "storage/mapped_file.h"

namespace topl {

namespace {

constexpr char kMagic[8] = {'T', 'O', 'P', 'L', 'I', 'D', 'X', '2'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kSectionAlignment = 64;

// ---------------------------------------------------------------------------
// On-disk structures. All little-endian, fixed width, no implicit padding.
// ---------------------------------------------------------------------------

struct DiskHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t section_count;
  std::uint64_t file_size;
  std::uint64_t table_checksum;  // XXH64 over the section table
  char reserved[32];
};
static_assert(sizeof(DiskHeader) == 64, "TOPLIDX2 header is 64 bytes");

struct DiskSection {
  char name[16];  // NUL-padded
  std::uint64_t offset;
  std::uint64_t size;       // payload bytes
  std::uint32_t elem_size;  // bytes per element
  std::uint32_t reserved;
  std::uint64_t checksum;  // XXH64 over the payload
};
static_assert(sizeof(DiskSection) == 48, "TOPLIDX2 section entry is 48 bytes");

// Scalar state of all three structures, packed into the "meta" section.
struct MetaBlock {
  std::uint64_t num_vertices;
  std::uint64_t num_edges;
  std::uint64_t total_keywords;
  std::uint32_t keyword_domain_bound;
  std::uint32_t r_max;
  std::uint32_t signature_bits;
  std::uint32_t num_thetas;
  std::uint64_t words_per_signature;
  std::uint32_t tree_root;
  std::uint32_t tree_height;
  std::uint64_t tree_num_nodes;
};
static_assert(sizeof(MetaBlock) == 64, "TOPLIDX2 meta block is 64 bytes");

// Canonical section order; the reader requires exactly this table.
enum SectionId : std::size_t {
  kMeta = 0,
  kGraphOffsets,
  kGraphArcs,
  kGraphEndpoints,
  kGraphKwOffsets,
  kGraphKeywords,
  kPreThetas,
  kPreSignatures,
  kPreSupports,
  kPreTruss,
  kPreScores,
  kTreeNodes,
  kTreeSorted,
  kTreeSignatures,
  kTreeSupports,
  kTreeTruss,
  kTreeScores,
  kNumSections,
};

constexpr const char* kSectionNames[kNumSections] = {
    "meta",         "g.offsets",    "g.arcs",     "g.endpoints",
    "g.kw_offsets", "g.keywords",   "p.thetas",   "p.signatures",
    "p.supports",   "p.truss",      "p.scores",   "t.nodes",
    "t.sorted",     "t.signatures", "t.supports", "t.truss",
    "t.scores"};

constexpr std::uint32_t kSectionElemSizes[kNumSections] = {
    sizeof(MetaBlock),
    sizeof(std::uint64_t),           // g.offsets
    sizeof(Graph::Arc),              // g.arcs
    sizeof(Graph::EdgeEndpoints),    // g.endpoints
    sizeof(std::uint64_t),           // g.kw_offsets
    sizeof(KeywordId),               // g.keywords
    sizeof(double),                  // p.thetas
    sizeof(std::uint64_t),           // p.signatures
    sizeof(std::uint32_t),           // p.supports
    sizeof(std::uint32_t),           // p.truss
    sizeof(double),                  // p.scores
    sizeof(TreeIndex::Node),         // t.nodes
    sizeof(VertexId),                // t.sorted
    sizeof(std::uint64_t),           // t.signatures
    sizeof(std::uint32_t),           // t.supports
    sizeof(std::uint32_t),           // t.truss
    sizeof(double),                  // t.scores
};

std::uint64_t AlignUp(std::uint64_t value, std::uint64_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}

std::uint64_t ChecksumBytes(const void* data, std::uint64_t size) {
  // Guard the data pointer: empty spans may carry nullptr.
  static const char kEmpty = 0;
  return XXH64(size == 0 ? &kEmpty : data, size);
}

// ---------------------------------------------------------------------------
// Shared read-side parsing/validation.
// ---------------------------------------------------------------------------

struct ParsedArtifact {
  DiskHeader header;
  DiskSection table[kNumSections];
  MetaBlock meta;
  bool checksums_ok = true;
};

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::Corruption(path + ": " + what);
}

/// Validates header, table geometry and the meta block. When
/// `verify_checksums` is set, also hashes every section payload; a mismatch
/// is recorded in `checksums_ok` (Open turns it into a Status, Inspect
/// reports it).
Result<ParsedArtifact> ParseTable(const MappedFile& f, bool verify_checksums) {
  const std::string& path = f.path();
  if (f.size() < sizeof(DiskHeader)) {
    return Corrupt(path, "file too small for a TOPLIDX2 header");
  }
  ParsedArtifact parsed;
  std::memcpy(&parsed.header, f.data(), sizeof(DiskHeader));
  const DiskHeader& header = parsed.header;
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt(path, "bad magic (not a TOPLIDX2 artifact)");
  }
  if (header.version != kVersion) {
    return Corrupt(path, "unsupported artifact version " +
                             std::to_string(header.version));
  }
  if (header.section_count != kNumSections) {
    return Corrupt(path, "unexpected section count " +
                             std::to_string(header.section_count));
  }
  if (header.file_size != f.size()) {
    return Corrupt(path, "file size mismatch (header advertises " +
                             std::to_string(header.file_size) +
                             " bytes, file has " + std::to_string(f.size()) +
                             ")");
  }
  const std::uint64_t table_bytes = kNumSections * sizeof(DiskSection);
  const std::uint64_t payload_start = sizeof(DiskHeader) + table_bytes;
  if (f.size() < payload_start) {
    return Corrupt(path, "file too small for the section table");
  }
  std::memcpy(parsed.table, f.data() + sizeof(DiskHeader), table_bytes);
  if (XXH64(parsed.table, table_bytes) != header.table_checksum) {
    return Corrupt(path, "section table checksum mismatch");
  }

  std::uint64_t prev_end = payload_start;
  for (std::size_t i = 0; i < kNumSections; ++i) {
    const DiskSection& s = parsed.table[i];
    char expected[16] = {};
    std::strncpy(expected, kSectionNames[i], sizeof(expected) - 1);
    if (std::memcmp(s.name, expected, sizeof(expected)) != 0) {
      return Corrupt(path, "section " + std::to_string(i) + " is not \"" +
                               kSectionNames[i] + "\"");
    }
    if (s.elem_size != kSectionElemSizes[i]) {
      return Corrupt(path, std::string("section ") + kSectionNames[i] +
                               " has wrong element size");
    }
    if (s.offset % kSectionAlignment != 0) {
      return Corrupt(path, std::string("section ") + kSectionNames[i] +
                               " is misaligned");
    }
    if (s.offset < prev_end || s.size > f.size() ||
        s.offset > f.size() - s.size) {
      return Corrupt(path, std::string("section ") + kSectionNames[i] +
                               " lies outside the file or overlaps");
    }
    if (s.size % s.elem_size != 0) {
      return Corrupt(path, std::string("section ") + kSectionNames[i] +
                               " has a partial trailing element");
    }
    prev_end = s.offset + s.size;
    if (verify_checksums &&
        ChecksumBytes(f.data() + s.offset, s.size) != s.checksum) {
      parsed.checksums_ok = false;
    }
  }

  const DiskSection& meta_section = parsed.table[kMeta];
  if (meta_section.size != sizeof(MetaBlock)) {
    return Corrupt(path, "meta section has wrong size");
  }
  std::memcpy(&parsed.meta, f.data() + meta_section.offset, sizeof(MetaBlock));
  return parsed;
}

std::uint64_t SectionCount(const ParsedArtifact& parsed, SectionId id) {
  return parsed.table[id].size / parsed.table[id].elem_size;
}

template <typename T>
std::span<const T> SectionView(const MappedFile& f, const ParsedArtifact& parsed,
                               SectionId id) {
  return f.ViewAt<T>(parsed.table[id].offset, SectionCount(parsed, id));
}

/// Everything beyond table geometry: the meta block's cross-structure size
/// equations and the structural invariants the detectors index by. Linear in
/// the file but allocation- and copy-free.
Status ValidateStructure(const MappedFile& f, const ParsedArtifact& parsed) {
  const std::string& path = f.path();
  const MetaBlock& meta = parsed.meta;
  const std::uint64_t n = meta.num_vertices;
  const std::uint64_t m = meta.num_edges;
  const std::uint64_t r_max = meta.r_max;
  const std::uint64_t words = meta.words_per_signature;
  const std::uint64_t z = meta.num_thetas;
  const std::uint64_t nodes = meta.tree_num_nodes;

  if (n == 0 || n > (1ULL << 32) || m > (1ULL << 32)) {
    return Corrupt(path, "implausible graph size in meta block");
  }
  if (r_max == 0 || z == 0 || words == 0 ||
      words != (meta.signature_bits + 63) / 64) {
    return Corrupt(path, "inconsistent precompute parameters in meta block");
  }
  if (nodes == 0 || meta.tree_root >= nodes) {
    return Corrupt(path, "inconsistent tree shape in meta block");
  }

  const bool sizes_ok =
      SectionCount(parsed, kGraphOffsets) == n + 1 &&
      SectionCount(parsed, kGraphArcs) == 2 * m &&
      SectionCount(parsed, kGraphEndpoints) == m &&
      SectionCount(parsed, kGraphKwOffsets) == n + 1 &&
      SectionCount(parsed, kGraphKeywords) == meta.total_keywords &&
      SectionCount(parsed, kPreThetas) == z &&
      SectionCount(parsed, kPreSignatures) == n * r_max * words &&
      SectionCount(parsed, kPreSupports) == n * r_max &&
      SectionCount(parsed, kPreTruss) == n &&
      SectionCount(parsed, kPreScores) == n * r_max * z &&
      SectionCount(parsed, kTreeNodes) == nodes &&
      SectionCount(parsed, kTreeSorted) == n &&
      SectionCount(parsed, kTreeSignatures) == nodes * r_max * words &&
      SectionCount(parsed, kTreeSupports) == nodes * r_max &&
      SectionCount(parsed, kTreeTruss) == nodes &&
      SectionCount(parsed, kTreeScores) == nodes * r_max * z;
  if (!sizes_ok) {
    return Corrupt(path, "section sizes disagree with the meta block");
  }

  // Graph CSR invariants, including the per-vertex orderings the binary
  // searches in Graph::HasEdge/FindEdge/HasKeyword depend on — a corrupt
  // file must fail the open even when the checksum pass is disabled.
  // Validate each offsets array completely before dereferencing through it:
  // monotone with the final entry equal to the array length bounds every
  // intermediate offset, so the element loops below cannot leave their
  // sections.
  const auto offsets = SectionView<std::uint64_t>(f, parsed, kGraphOffsets);
  if (offsets[0] != 0 || offsets[n] != 2 * m) {
    return Corrupt(path, "arc offsets do not cover the arc array");
  }
  for (std::uint64_t v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      return Corrupt(path, "non-monotonic arc offsets");
    }
  }
  const auto arcs = SectionView<Graph::Arc>(f, parsed, kGraphArcs);
  for (std::uint64_t v = 0; v < n; ++v) {
    for (std::uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const Graph::Arc& arc = arcs[i];
      if (arc.to >= n || arc.edge >= m) {
        return Corrupt(path, "arc target or edge id out of range");
      }
      if (arc.to == v) return Corrupt(path, "self-loop arc");
      // NaN probabilities fail this comparison too.
      if (!(arc.prob > 0.0f && arc.prob <= 1.0f)) {
        return Corrupt(path, "arc probability outside (0, 1]");
      }
      if (i > offsets[v] && arcs[i - 1].to >= arc.to) {
        return Corrupt(path, "neighbor list not sorted");
      }
    }
  }
  const auto endpoints =
      SectionView<Graph::EdgeEndpoints>(f, parsed, kGraphEndpoints);
  for (const Graph::EdgeEndpoints& e : endpoints) {
    if (e.v >= n || e.u >= e.v) {
      return Corrupt(path, "edge endpoints out of range or unordered");
    }
  }
  const auto kw_offsets = SectionView<std::uint64_t>(f, parsed, kGraphKwOffsets);
  if (kw_offsets[0] != 0 || kw_offsets[n] != meta.total_keywords) {
    return Corrupt(path, "keyword offsets do not cover the keyword array");
  }
  for (std::uint64_t v = 0; v < n; ++v) {
    if (kw_offsets[v] > kw_offsets[v + 1]) {
      return Corrupt(path, "non-monotonic keyword offsets");
    }
  }
  const auto keywords = SectionView<KeywordId>(f, parsed, kGraphKeywords);
  for (std::uint64_t v = 0; v < n; ++v) {
    for (std::uint64_t i = kw_offsets[v] + 1; i < kw_offsets[v + 1]; ++i) {
      if (keywords[i - 1] >= keywords[i]) {
        return Corrupt(path, "keyword set not sorted");
      }
    }
  }

  // Precompute invariants.
  const auto thetas = SectionView<double>(f, parsed, kPreThetas);
  for (std::size_t i = 0; i < thetas.size(); ++i) {
    if (!(thetas[i] >= 0.0 && thetas[i] < 1.0) ||
        (i > 0 && thetas[i] <= thetas[i - 1])) {
      return Corrupt(path, "thresholds not strictly ascending in [0, 1)");
    }
  }

  // Tree invariants (same checks as the legacy codec).
  const auto tree_nodes = SectionView<TreeIndex::Node>(f, parsed, kTreeNodes);
  for (const TreeIndex::Node& node : tree_nodes) {
    if (node.is_leaf > 1) return Corrupt(path, "node leaf flag out of range");
    if (node.is_leaf == 0 && (node.first_child >= nodes ||
                              node.num_children > nodes - node.first_child)) {
      return Corrupt(path, "node child range out of bounds");
    }
    if (node.is_leaf == 1 && (node.begin > node.end || node.end > n)) {
      return Corrupt(path, "leaf vertex range out of bounds");
    }
  }
  const auto sorted = SectionView<VertexId>(f, parsed, kTreeSorted);
  for (VertexId v : sorted) {
    if (v >= n) return Corrupt(path, "sorted vertex out of range");
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

Status ArtifactWriter::Write(const Graph& g, const PrecomputedData& pre,
                             const TreeIndex& tree, const std::string& path) {
  if (pre.n_ != g.NumVertices()) {
    return Status::InvalidArgument(
        "precomputed data was built over a different graph (vertex count "
        "mismatch)");
  }
  if (tree.pre_ != &pre || tree.nodes_.empty()) {
    return Status::InvalidArgument(
        "tree index is empty or references different precomputed data");
  }

  MetaBlock meta{};
  meta.num_vertices = g.NumVertices();
  meta.num_edges = g.NumEdges();
  meta.total_keywords = g.keywords_.size();
  meta.keyword_domain_bound = g.keyword_domain_bound_;
  meta.r_max = pre.r_max_;
  meta.signature_bits = pre.signature_bits_;
  meta.num_thetas = static_cast<std::uint32_t>(pre.thetas_.size());
  meta.words_per_signature = pre.words_;
  meta.tree_root = tree.root_;
  meta.tree_height = tree.height_;
  meta.tree_num_nodes = tree.nodes_.size();

  struct Payload {
    const void* data;
    std::uint64_t size;
  };
  auto bytes_of = [](const auto& span) {
    return Payload{span.data(), span.size_bytes()};
  };
  const Payload payloads[kNumSections] = {
      {&meta, sizeof(meta)},
      bytes_of(g.offsets_),
      bytes_of(g.arcs_),
      bytes_of(g.edge_endpoints_),
      bytes_of(g.keyword_offsets_),
      bytes_of(g.keywords_),
      bytes_of(pre.thetas_),
      bytes_of(pre.signatures_),
      bytes_of(pre.support_bounds_),
      bytes_of(pre.center_truss_),
      bytes_of(pre.score_bounds_),
      bytes_of(tree.nodes_),
      bytes_of(tree.sorted_vertices_),
      bytes_of(tree.signatures_),
      bytes_of(tree.support_bounds_),
      bytes_of(tree.center_truss_bounds_),
      bytes_of(tree.score_bounds_),
  };

  DiskSection table[kNumSections] = {};
  std::uint64_t cursor = sizeof(DiskHeader) + sizeof(table);
  for (std::size_t i = 0; i < kNumSections; ++i) {
    DiskSection& s = table[i];
    std::strncpy(s.name, kSectionNames[i], sizeof(s.name) - 1);
    s.offset = AlignUp(cursor, kSectionAlignment);
    s.size = payloads[i].size;
    s.elem_size = kSectionElemSizes[i];
    s.checksum = ChecksumBytes(payloads[i].data, payloads[i].size);
    cursor = s.offset + s.size;
  }

  DiskHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.section_count = kNumSections;
  header.file_size = cursor;
  header.table_checksum = XXH64(table, sizeof(table));

  // Write to a temp file and rename: `path` may be the very artifact the
  // payload spans are mapped from (in-place migrate), and a mid-write
  // failure (e.g. ENOSPC) must never leave a previously valid artifact
  // truncated.
  const std::string tmp_path =
      path + ".tmp." + std::to_string(::getpid());
  auto fail = [&tmp_path](const std::string& message) {
    std::error_code ignored;
    std::filesystem::remove(tmp_path, ignored);
    return Status::IOError(message);
  };
  std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + tmp_path);
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(reinterpret_cast<const char*>(table), sizeof(table));
  std::uint64_t written = sizeof(header) + sizeof(table);
  static constexpr char kZeros[kSectionAlignment] = {};
  for (std::size_t i = 0; i < kNumSections; ++i) {
    out.write(kZeros, static_cast<std::streamsize>(table[i].offset - written));
    if (payloads[i].size > 0) {
      out.write(static_cast<const char*>(payloads[i].data),
                static_cast<std::streamsize>(payloads[i].size));
    }
    written = table[i].offset + table[i].size;
  }
  out.flush();
  if (!out) return fail("write error on " + tmp_path);
  out.close();
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    return fail("cannot rename " + tmp_path + " to " + path + ": " +
                ec.message());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

bool ArtifactReader::IsArtifact(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  return in && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

Result<MappedIndex> ArtifactReader::Open(const std::string& path,
                                         const ArtifactReadOptions& options) {
  Result<std::shared_ptr<MappedFile>> mapped_r = MappedFile::Open(path);
  if (!mapped_r.ok()) return mapped_r.status();
  std::shared_ptr<MappedFile> mapped = std::move(mapped_r).value();
  const MappedFile& f = *mapped;

  Result<ParsedArtifact> parsed_r = ParseTable(f, options.verify_checksums);
  if (!parsed_r.ok()) return parsed_r.status();
  const ParsedArtifact& parsed = *parsed_r;
  if (!parsed.checksums_ok) {
    return Corrupt(path, "section checksum mismatch");
  }
  TOPL_RETURN_IF_ERROR(ValidateStructure(f, parsed));
  const MetaBlock& meta = parsed.meta;

  MappedIndex out;

  Graph& g = out.graph;
  g.offsets_ = SectionView<std::uint64_t>(f, parsed, kGraphOffsets);
  g.arcs_ = SectionView<Graph::Arc>(f, parsed, kGraphArcs);
  g.edge_endpoints_ = SectionView<Graph::EdgeEndpoints>(f, parsed, kGraphEndpoints);
  g.keyword_offsets_ = SectionView<std::uint64_t>(f, parsed, kGraphKwOffsets);
  g.keywords_ = SectionView<KeywordId>(f, parsed, kGraphKeywords);
  g.keyword_domain_bound_ = meta.keyword_domain_bound;
  g.backing_ = mapped;

  out.pre = std::unique_ptr<PrecomputedData>(new PrecomputedData());
  PrecomputedData& pre = *out.pre;
  pre.r_max_ = meta.r_max;
  pre.signature_bits_ = meta.signature_bits;
  pre.words_ = meta.words_per_signature;
  pre.n_ = meta.num_vertices;
  pre.thetas_ = SectionView<double>(f, parsed, kPreThetas);
  pre.signatures_ = SectionView<std::uint64_t>(f, parsed, kPreSignatures);
  pre.support_bounds_ = SectionView<std::uint32_t>(f, parsed, kPreSupports);
  pre.center_truss_ = SectionView<std::uint32_t>(f, parsed, kPreTruss);
  pre.score_bounds_ = SectionView<double>(f, parsed, kPreScores);
  pre.backing_ = mapped;

  TreeIndex& tree = out.tree;
  tree.pre_ = out.pre.get();
  tree.r_max_ = meta.r_max;
  tree.num_thetas_ = meta.num_thetas;
  tree.words_ = meta.words_per_signature;
  tree.root_ = meta.tree_root;
  tree.height_ = meta.tree_height;
  tree.nodes_ = SectionView<TreeIndex::Node>(f, parsed, kTreeNodes);
  tree.sorted_vertices_ = SectionView<VertexId>(f, parsed, kTreeSorted);
  tree.signatures_ = SectionView<std::uint64_t>(f, parsed, kTreeSignatures);
  tree.support_bounds_ = SectionView<std::uint32_t>(f, parsed, kTreeSupports);
  tree.center_truss_bounds_ = SectionView<std::uint32_t>(f, parsed, kTreeTruss);
  tree.score_bounds_ = SectionView<double>(f, parsed, kTreeScores);
  tree.backing_ = mapped;

  return out;
}

Result<ArtifactInfo> ArtifactReader::Inspect(const std::string& path) {
  Result<std::shared_ptr<MappedFile>> mapped_r = MappedFile::Open(path);
  if (!mapped_r.ok()) return mapped_r.status();
  const MappedFile& f = **mapped_r;

  Result<ParsedArtifact> parsed_r = ParseTable(f, /*verify_checksums=*/true);
  if (!parsed_r.ok()) return parsed_r.status();
  const ParsedArtifact& parsed = *parsed_r;

  ArtifactInfo info;
  info.version = parsed.header.version;
  info.file_size = parsed.header.file_size;
  info.num_vertices = parsed.meta.num_vertices;
  info.num_edges = parsed.meta.num_edges;
  info.total_keywords = parsed.meta.total_keywords;
  info.r_max = parsed.meta.r_max;
  info.signature_bits = parsed.meta.signature_bits;
  info.num_thetas = parsed.meta.num_thetas;
  info.tree_height = parsed.meta.tree_height;
  info.tree_num_nodes = parsed.meta.tree_num_nodes;
  info.checksums_ok = parsed.checksums_ok;
  info.sections.reserve(kNumSections);
  for (std::size_t i = 0; i < kNumSections; ++i) {
    const DiskSection& s = parsed.table[i];
    info.sections.push_back({kSectionNames[i], s.offset, s.size, s.elem_size,
                             s.checksum});
  }
  return info;
}

}  // namespace topl

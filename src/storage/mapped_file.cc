#include "storage/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace topl {

Result<std::shared_ptr<MappedFile>> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(cppcoreguidelines-pro-type-vararg)
  if (fd < 0) {
    return Status::IOError("cannot open: " + path + ": " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("cannot stat: " + path + ": " + err);
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  const std::byte* data = nullptr;
  if (size > 0) {
    void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped == MAP_FAILED) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IOError("cannot mmap: " + path + ": " + err);
    }
    data = static_cast<const std::byte*>(mapped);
  }
  // The mapping holds its own reference to the file; the descriptor is no
  // longer needed.
  ::close(fd);
  return std::shared_ptr<MappedFile>(new MappedFile(path, data, size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
}

}  // namespace topl

#include "storage/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault_injection.h"

namespace topl {

Result<std::shared_ptr<MappedFile>> MappedFile::Open(const std::string& path,
                                                     const MapOptions& options) {
  TOPL_FAULT_POINT("mapped_file.open");
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(cppcoreguidelines-pro-type-vararg)
  if (fd < 0) {
    return Status::IOError("cannot open: " + path + ": " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("cannot stat: " + path + ": " + err);
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  const std::byte* data = nullptr;
  if (size > 0) {
    int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
    if (options.populate) flags |= MAP_POPULATE;
#endif
    void* mapped = ::mmap(nullptr, size, PROT_READ, flags, fd, 0);
#ifdef MAP_POPULATE
    if (mapped == MAP_FAILED && (flags & MAP_POPULATE) != 0) {
      // Some filesystems reject MAP_POPULATE outright; retry without it
      // rather than failing the open over a prefetch hint.
      mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    }
#endif
    if (mapped == MAP_FAILED) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IOError("cannot mmap: " + path + ": " + err);
    }
#ifdef MADV_HUGEPAGE
    if (options.huge_pages) {
      // Advisory: ignore failures (THP may be disabled system-wide).
      (void)::madvise(mapped, size, MADV_HUGEPAGE);
    }
#endif
    data = static_cast<const std::byte*>(mapped);
  }
  // The mapping holds its own reference to the file; the descriptor is no
  // longer needed.
  ::close(fd);
  return std::shared_ptr<MappedFile>(new MappedFile(path, data, size));
}

Status MappedFile::Revalidate() const {
  struct stat st {};
  if (::stat(path_.c_str(), &st) != 0) {
    return Status::IOError("cannot stat: " + path_ + ": " +
                           std::strerror(errno));
  }
  if (static_cast<std::size_t>(st.st_size) < size_) {
    return Status::Corruption(
        path_ + ": file truncated after open (" + std::to_string(st.st_size) +
        " bytes on disk, " + std::to_string(size_) +
        " mapped); touching the lost pages would SIGBUS");
  }
  return Status::OK();
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
}

}  // namespace topl

#ifndef TOPL_STORAGE_ARTIFACT_H_
#define TOPL_STORAGE_ARTIFACT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "graph/graph.h"
#include "index/precompute.h"
#include "index/tree_index.h"

namespace topl {

/// \brief The TOPLIDX2 index artifact: one self-contained, mmap-able file
/// holding the graph, the Algorithm-2 precomputed data and the §V-B tree
/// index together.
///
/// Layout (all integers little-endian, fixed width):
///
///   ArtifactHeader   (64 bytes)  magic "TOPLIDX2", version, section count,
///                                file size, XXH64 of the section table
///   SectionEntry[k]  (48 B each) name, byte offset, byte size, element
///                                size, encoding, XXH64 of the payload
///   payload sections              each starting on a 64-byte boundary,
///                                 zero-padded in between
///
/// Two artifact versions are written and read:
///
///   version 1 — 17 sections, all raw: every flat array of the three
///     structures stored exactly as it lives in memory. Opening is a single
///     mmap plus O(1) header/table validation, linear-scan structural
///     checks, and (by default) one checksum pass — no allocation, no
///     deserialization, no copy.
///   version 2 — the same sections plus a "g.extids" section holding the
///     locality permutation (graph/reorder.h; empty = identity), and a
///     per-section encoding tag: 0 = raw, 1 = the section's delta+varint
///     codec (storage/varint.h). Encoded sections (CSR offsets, arcs, edge
///     endpoints, keyword arrays, support/truss bounds, tree nodes) are
///     decoded into owned heap memory at open; raw sections (doubles,
///     signatures) stay zero-copy views of the mapping. A graph whose
///     neighbor ids cluster (after reordering) compresses its arc array to
///     a fraction of the raw 12 B/arc.
///   version 3 — the version-2 sections plus a "shard.map" manifest, written
///     for the members of a sharded index family (shard/sharded_engine.h).
///     The graph and precompute sections still describe the full replica;
///     the tree sections cover only the shard's owned candidate subset, and
///     the manifest records [num_shards, shard_index, partition digest,
///     owned vertex ids…] so the reader can verify that t.sorted is exactly
///     a permutation of the owned set and that sibling artifacts belong to
///     the same partition.
///
/// ArtifactWriter emits version 1 unless compression or an external-id
/// permutation is requested (version 2) or a shard manifest is given
/// (version 3), so default-written files are byte-compatible with older
/// readers. `topl_cli index migrate` upgrades either the legacy TOPLIDX1
/// format (index/index_io.h) or a version-1 artifact in place.

/// Per-section payload encodings (the DiskSection `encoding` field).
enum class SectionEncoding : std::uint32_t {
  kRaw = 0,          // memory layout verbatim
  kDeltaVarint = 1,  // section-specific delta+varint codec (varint.h)
};

/// One row of the section table, decoded (see ArtifactReader::Inspect).
struct ArtifactSectionInfo {
  std::string name;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;       // payload bytes as stored (post-encoding)
  std::uint32_t elem_size = 0;  // bytes per element (1 for encoded sections)
  std::uint32_t encoding = 0;   // SectionEncoding
  std::uint64_t checksum = 0;   // XXH64 of the stored payload
};

/// Decoded header + meta block of an artifact (see ArtifactReader::Inspect).
struct ArtifactInfo {
  std::uint32_t version = 0;
  std::uint64_t file_size = 0;
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t total_keywords = 0;
  std::uint32_t r_max = 0;
  std::uint32_t signature_bits = 0;
  std::uint32_t num_thetas = 0;
  std::uint32_t tree_height = 0;
  std::uint64_t tree_num_nodes = 0;
  bool has_external_ids = false;
  /// Version-3 shard manifest, when present (0 / false otherwise).
  bool has_shard_map = false;
  std::uint32_t num_shards = 0;
  std::uint32_t shard_index = 0;
  bool checksums_ok = false;
  std::vector<ArtifactSectionInfo> sections;
};

struct ArtifactWriteOptions {
  /// Store the delta+varint-friendly sections encoded (artifact version 2).
  /// Decoding happens once at open; the structural validation and all query
  /// answers are identical to a raw artifact.
  bool compress = false;
  /// The locality permutation (new internal id → original external id) from
  /// graph/reorder.h. Must be empty (identity) or a permutation of [0, n).
  /// Non-empty forces artifact version 2.
  std::span<const VertexId> external_ids = {};
  /// Shard manifest words, [num_shards, shard_index, digest_lo, digest_hi,
  /// owned vertex ids… (strictly ascending)] — see shard/shard_partition.h
  /// for the encoding helpers. Non-empty forces artifact version 3 and
  /// requires `tree` to have been built over exactly the owned subset.
  std::span<const std::uint32_t> shard_manifest = {};
};

/// Writes a TOPLIDX2 artifact from an in-memory graph + offline phase.
class ArtifactWriter {
 public:
  /// `tree` must have been built over `pre`, and `pre` over `g`.
  static Status Write(const Graph& g, const PrecomputedData& pre,
                      const TreeIndex& tree, const std::string& path,
                      const ArtifactWriteOptions& options = {});
};

struct ArtifactReadOptions {
  /// Verify the XXH64 of every section payload on open. Costs one sequential
  /// scan of the file (memory-bandwidth speed); disable only for trusted
  /// local artifacts where open latency matters more than corruption
  /// detection. Header, section table and structural invariants are always
  /// validated regardless.
  bool verify_checksums = true;
  /// MAP_POPULATE / MADV_HUGEPAGE on the mapping (see MappedFile::MapOptions).
  bool populate = false;
  bool huge_pages = false;
};

/// The three structures served straight out of one mapping. Each keeps the
/// mapping alive independently, so the pieces may outlive the MappedIndex
/// itself — but `tree` holds a raw pointer to `*pre` (see
/// TreeIndex::precomputed()), so `pre` must outlive `tree`, exactly as with
/// an in-process-built index.
struct MappedIndex {
  Graph graph;
  std::unique_ptr<PrecomputedData> pre;
  TreeIndex tree;
  /// Internal → external vertex-id permutation from the "g.extids" section;
  /// empty when the artifact was built without reordering (identity map).
  std::vector<VertexId> external_ids;
  /// True when the artifact stored encoded sections (version 2 compressed);
  /// preserved so rewrites (`topl_cli update`) keep the representation.
  bool compressed = false;
  /// Version-3 shard manifest words ([num_shards, shard_index, digest_lo,
  /// digest_hi, owned…]); empty for unsharded artifacts.
  std::vector<std::uint32_t> shard_manifest;
  /// The mapping all raw-section views point into. Every section was
  /// bounds-checked against this mapping's size at open time;
  /// `backing->Revalidate()` detects out-of-band truncation after open (the
  /// SIGBUS hazard) as a clean Corruption status.
  std::shared_ptr<const class MappedFile> backing;
};

class ArtifactReader {
 public:
  /// True when the file starts with the TOPLIDX2 magic (cheap 8-byte sniff;
  /// false for unreadable files).
  static bool IsArtifact(const std::string& path);

  /// Maps and validates an artifact. All section geometry, the meta block's
  /// cross-structure size equations, and the structural invariants the
  /// detectors rely on (CSR monotonicity, arc targets / edge ids /
  /// probabilities in range, per-vertex neighbor and keyword sortedness,
  /// tree child/leaf ranges) are checked before any structure is returned, so
  /// a corrupt file yields Status::Corruption — never out-of-bounds serving
  /// or silently wrong binary-search answers, even with checksums disabled.
  static Result<MappedIndex> Open(const std::string& path,
                                  const ArtifactReadOptions& options = {});

  /// Decodes the header, section table and meta block without constructing
  /// the structures (used by `topl_cli index inspect`). Verifies checksums
  /// and reports the outcome in ArtifactInfo::checksums_ok.
  static Result<ArtifactInfo> Inspect(const std::string& path);
};

}  // namespace topl

#endif  // TOPL_STORAGE_ARTIFACT_H_

#include "storage/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/fault_injection.h"

namespace topl {

namespace {

std::string Errno(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

// EINTR-safe full write of [data, data+size).
Status WriteFully(int fd, const void* data, std::size_t size,
                  const std::string& path) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ::ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("write error on", path));
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status FsyncParentDir(const std::string& path) {
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) parent = ".";
  const int dir_fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) return Status::IOError(Errno("cannot open dir", parent));
  const int rc = ::fsync(dir_fd);
  ::close(dir_fd);
  // Some filesystems refuse fsync on directories (EINVAL); treat that as the
  // strongest guarantee they offer rather than failing the rename.
  if (rc != 0 && errno != EINVAL) {
    return Status::IOError(Errno("fsync dir", parent));
  }
  return Status::OK();
}

Result<AtomicFile> AtomicFile::Create(const std::string& path) {
  TOPL_FAULT_POINT("atomic.open");
  std::string tmp_path = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError(Errno("cannot open for writing", tmp_path));
  }
  return AtomicFile(path, std::move(tmp_path), fd);
}

AtomicFile::AtomicFile(AtomicFile&& other) noexcept
    : path_(std::move(other.path_)),
      tmp_path_(std::move(other.tmp_path_)),
      fd_(other.fd_),
      bytes_written_(other.bytes_written_) {
  other.fd_ = -1;
}

AtomicFile::~AtomicFile() { Discard(); }

void AtomicFile::Discard() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
  std::error_code ignored;
  std::filesystem::remove(tmp_path_, ignored);
}

Status AtomicFile::Append(const void* data, std::size_t size) {
  if (fd_ < 0) return Status::Internal("AtomicFile already committed");
  switch (fault::Check("atomic.write")) {
    case fault::Action::kIOError:
      Discard();
      return fault::InjectedError("atomic.write");
    case fault::Action::kShortWrite:
      // Persist a torn prefix, then fail — what a crash mid-write leaves.
      if (size > 1) {
        (void)WriteFully(fd_, data, size / 2, tmp_path_);
      }
      Discard();
      return fault::InjectedError("atomic.write");
    default:
      break;
  }
  const Status status = WriteFully(fd_, data, size, tmp_path_);
  if (!status.ok()) {
    Discard();
    return status;
  }
  bytes_written_ += size;
  return Status::OK();
}

Status AtomicFile::Commit() {
  if (fd_ < 0) return Status::Internal("AtomicFile already committed");
  // Injected failures must leave the same state a real one would: a failed
  // Commit removes the temp file (the class contract "spent either way").
  if (fault::Check("atomic.fsync") == fault::Action::kIOError) {
    Discard();
    return fault::InjectedError("atomic.fsync");
  }
  if (::fsync(fd_) != 0) {
    const Status status = Status::IOError(Errno("fsync", tmp_path_));
    Discard();
    return status;
  }
  ::close(fd_);
  fd_ = -1;
  if (fault::Check("atomic.rename") == fault::Action::kIOError) {
    std::error_code ignored;
    std::filesystem::remove(tmp_path_, ignored);
    return fault::InjectedError("atomic.rename");
  }
  if (::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    const Status status =
        Status::IOError(Errno("cannot rename", tmp_path_ + " to " + path_));
    std::error_code ignored;
    std::filesystem::remove(tmp_path_, ignored);
    return status;
  }
  TOPL_FAULT_POINT("atomic.fsync_dir");
  return FsyncParentDir(path_);
}

}  // namespace topl

#include "storage/checksum.h"

#include <cstring>

namespace topl {

namespace {

constexpr std::uint64_t kPrime1 = 11400714785074694791ULL;
constexpr std::uint64_t kPrime2 = 14029467366897019727ULL;
constexpr std::uint64_t kPrime3 = 1609587929392839161ULL;
constexpr std::uint64_t kPrime4 = 9650029242287828579ULL;
constexpr std::uint64_t kPrime5 = 2870177450012600261ULL;

inline std::uint64_t RotL(std::uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

// Unaligned little-endian loads (the library targets little-endian hosts;
// see the byte-order note in graph/binary_io.cc).
inline std::uint64_t Read64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint32_t Read32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint64_t Round(std::uint64_t acc, std::uint64_t input) {
  acc += input * kPrime2;
  acc = RotL(acc, 31);
  return acc * kPrime1;
}

inline std::uint64_t MergeRound(std::uint64_t h, std::uint64_t v) {
  h ^= Round(0, v);
  return h * kPrime1 + kPrime4;
}

}  // namespace

std::uint64_t XXH64(const void* data, std::size_t len, std::uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  const unsigned char* const end = p + len;
  std::uint64_t h;

  if (len >= 32) {
    std::uint64_t v1 = seed + kPrime1 + kPrime2;
    std::uint64_t v2 = seed + kPrime2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kPrime1;
    const unsigned char* const limit = end - 32;
    do {
      v1 = Round(v1, Read64(p));
      v2 = Round(v2, Read64(p + 8));
      v3 = Round(v3, Read64(p + 16));
      v4 = Round(v4, Read64(p + 24));
      p += 32;
    } while (p <= limit);
    h = RotL(v1, 1) + RotL(v2, 7) + RotL(v3, 12) + RotL(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<std::uint64_t>(len);

  while (p + 8 <= end) {
    h ^= Round(0, Read64(p));
    h = RotL(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<std::uint64_t>(Read32(p)) * kPrime1;
    h = RotL(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<std::uint64_t>(*p) * kPrime5;
    h = RotL(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace topl

#include "storage/update_journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>

#include "common/fault_injection.h"
#include "storage/atomic_file.h"
#include "storage/checksum.h"

namespace topl {

namespace {

constexpr char kJournalMagic[8] = {'T', 'O', 'P', 'L', 'J', 'R', 'N', '1'};
constexpr std::uint32_t kJournalVersion = 1;
constexpr std::uint32_t kRecordMagic = 0x544A5243;  // "TJRC"
constexpr std::size_t kHeaderBytes = 16;            // magic + version + reserved
constexpr std::size_t kRecordHeaderBytes = 16;      // magic + length + checksum

// A single delta can never legitimately approach this; anything larger is a
// corrupt length field, and trusting it would make Replay allocate garbage.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 30;

std::string Errno(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

Status WriteFully(int fd, const void* data, std::size_t size,
                  const std::string& path) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ::ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("write error on", path));
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return Status::OK();
}

void PutU32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(v));
}

void PutF32(std::vector<std::uint8_t>* out, float v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(v));
}

// Bounds-checked little-endian cursor over an untrusted payload.
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool ReadU32(std::uint32_t* out) {
    if (size_ - pos_ < sizeof(*out)) return false;
    std::memcpy(out, data_ + pos_, sizeof(*out));
    pos_ += sizeof(*out);
    return true;
  }

  bool ReadF32(float* out) {
    if (size_ - pos_ < sizeof(*out)) return false;
    std::memcpy(out, data_ + pos_, sizeof(*out));
    pos_ += sizeof(*out);
    return true;
  }

  std::size_t remaining() const { return size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

struct RecordScan {
  std::uint64_t records = 0;
  std::uint64_t valid_bytes = 0;  // header + every intact record
};

// Walks the record chain of `bytes` (a whole journal file) and returns how
// far it stays intact. Decode errors are not scanned for here — framing and
// checksum are what a torn append can break; payload semantics are the
// replayer's concern.
Result<RecordScan> ScanRecords(const std::vector<std::uint8_t>& bytes,
                               const std::string& path) {
  if (bytes.size() < kHeaderBytes) {
    return Status::Corruption(path + ": journal shorter than its header");
  }
  if (std::memcmp(bytes.data(), kJournalMagic, sizeof(kJournalMagic)) != 0) {
    return Status::Corruption(path + ": bad journal magic");
  }
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + sizeof(kJournalMagic), sizeof(version));
  if (version != kJournalVersion) {
    return Status::Corruption(path + ": unsupported journal version " +
                              std::to_string(version));
  }
  RecordScan scan;
  scan.valid_bytes = kHeaderBytes;
  std::size_t pos = kHeaderBytes;
  while (pos + kRecordHeaderBytes <= bytes.size()) {
    std::uint32_t magic = 0;
    std::uint32_t length = 0;
    std::uint64_t checksum = 0;
    std::memcpy(&magic, bytes.data() + pos, sizeof(magic));
    std::memcpy(&length, bytes.data() + pos + 4, sizeof(length));
    std::memcpy(&checksum, bytes.data() + pos + 8, sizeof(checksum));
    if (magic != kRecordMagic || length > kMaxPayloadBytes) break;
    if (bytes.size() - pos - kRecordHeaderBytes < length) break;  // torn tail
    const std::uint8_t* payload = bytes.data() + pos + kRecordHeaderBytes;
    if (XXH64(payload, length) != checksum) break;
    pos += kRecordHeaderBytes + length;
    scan.records += 1;
    scan.valid_bytes = pos;
  }
  return scan;
}

Result<std::vector<std::uint8_t>> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0 && !in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return Status::IOError("read error on " + path);
  }
  return bytes;
}

}  // namespace

std::vector<std::uint8_t> UpdateJournal::EncodeDelta(const GraphDelta& delta) {
  std::vector<std::uint8_t> out;
  out.reserve(16 + delta.NumOps() * 16);
  PutU32(&out, static_cast<std::uint32_t>(delta.edge_deletes.size()));
  PutU32(&out, static_cast<std::uint32_t>(delta.edge_inserts.size()));
  PutU32(&out, static_cast<std::uint32_t>(delta.keyword_adds.size()));
  PutU32(&out, static_cast<std::uint32_t>(delta.keyword_removes.size()));
  for (const GraphDelta::EdgeRef& e : delta.edge_deletes) {
    PutU32(&out, e.u);
    PutU32(&out, e.v);
  }
  for (const GraphDelta::EdgeInsert& e : delta.edge_inserts) {
    PutU32(&out, e.u);
    PutU32(&out, e.v);
    PutF32(&out, e.prob_uv);
    PutF32(&out, e.prob_vu);
  }
  for (const GraphDelta::KeywordChange& c : delta.keyword_adds) {
    PutU32(&out, c.v);
    PutU32(&out, c.w);
  }
  for (const GraphDelta::KeywordChange& c : delta.keyword_removes) {
    PutU32(&out, c.v);
    PutU32(&out, c.w);
  }
  return out;
}

Result<GraphDelta> UpdateJournal::DecodeDelta(const std::uint8_t* data,
                                              std::size_t size) {
  Cursor cursor(data, size);
  std::uint32_t counts[4] = {};
  for (std::uint32_t& c : counts) {
    if (!cursor.ReadU32(&c)) {
      return Status::Corruption("journal record truncated in count header");
    }
  }
  // Reject overflowing counts before any allocation: the four arrays must
  // fit exactly in the remaining payload.
  const std::uint64_t need = 8ull * counts[0] + 16ull * counts[1] +
                             8ull * counts[2] + 8ull * counts[3];
  if (need != cursor.remaining()) {
    return Status::Corruption(
        "journal record payload does not match its op counts");
  }
  GraphDelta delta;
  delta.edge_deletes.resize(counts[0]);
  delta.edge_inserts.resize(counts[1]);
  delta.keyword_adds.resize(counts[2]);
  delta.keyword_removes.resize(counts[3]);
  for (GraphDelta::EdgeRef& e : delta.edge_deletes) {
    if (!cursor.ReadU32(&e.u) || !cursor.ReadU32(&e.v)) {
      return Status::Corruption("journal record truncated in edge deletes");
    }
  }
  for (GraphDelta::EdgeInsert& e : delta.edge_inserts) {
    if (!cursor.ReadU32(&e.u) || !cursor.ReadU32(&e.v) ||
        !cursor.ReadF32(&e.prob_uv) || !cursor.ReadF32(&e.prob_vu)) {
      return Status::Corruption("journal record truncated in edge inserts");
    }
  }
  for (GraphDelta::KeywordChange& c : delta.keyword_adds) {
    if (!cursor.ReadU32(&c.v) || !cursor.ReadU32(&c.w)) {
      return Status::Corruption("journal record truncated in keyword adds");
    }
  }
  for (GraphDelta::KeywordChange& c : delta.keyword_removes) {
    if (!cursor.ReadU32(&c.v) || !cursor.ReadU32(&c.w)) {
      return Status::Corruption("journal record truncated in keyword removes");
    }
  }
  return delta;
}

Result<std::unique_ptr<UpdateJournal>> UpdateJournal::Open(
    const std::string& path, OpenInfo* info) {
  TOPL_FAULT_POINT("journal.open");
  OpenInfo local;
  if (!std::filesystem::exists(path)) {
    // Fresh journal: header written through the atomic writer so a crash
    // during creation leaves no half-written header behind.
    Result<AtomicFile> file = AtomicFile::Create(path);
    if (!file.ok()) return file.status();
    std::uint8_t header[kHeaderBytes] = {};
    std::memcpy(header, kJournalMagic, sizeof(kJournalMagic));
    std::memcpy(header + sizeof(kJournalMagic), &kJournalVersion,
                sizeof(kJournalVersion));
    TOPL_RETURN_IF_ERROR(file->Append(header, sizeof(header)));
    TOPL_RETURN_IF_ERROR(file->Commit());
    local.created = true;
  }
  Result<std::vector<std::uint8_t>> bytes = ReadWholeFile(path);
  if (!bytes.ok()) return bytes.status();
  Result<RecordScan> scan = ScanRecords(*bytes, path);
  if (!scan.ok()) return scan.status();
  local.records = scan->records;
  local.torn_bytes_discarded = bytes->size() - scan->valid_bytes;

  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    return Status::IOError(Errno("cannot open journal for append", path));
  }
  if (local.torn_bytes_discarded > 0) {
    // Heal the torn tail before appending: new records must start at the
    // commit point, not after garbage.
    if (::ftruncate(fd, static_cast<::off_t>(scan->valid_bytes)) != 0) {
      const Status status = Status::IOError(Errno("cannot truncate", path));
      ::close(fd);
      return status;
    }
    if (::fsync(fd) != 0) {
      const Status status = Status::IOError(Errno("fsync", path));
      ::close(fd);
      return status;
    }
  }
  if (::lseek(fd, static_cast<::off_t>(scan->valid_bytes), SEEK_SET) < 0) {
    const Status status = Status::IOError(Errno("cannot seek", path));
    ::close(fd);
    return status;
  }
  if (info != nullptr) *info = local;
  return std::unique_ptr<UpdateJournal>(
      new UpdateJournal(path, fd, scan->records));
}

UpdateJournal::~UpdateJournal() {
  if (fd_ >= 0) ::close(fd_);
}

Status UpdateJournal::Append(const GraphDelta& delta) {
  if (fd_ < 0) return Status::Internal("journal is closed");
  const std::vector<std::uint8_t> payload = EncodeDelta(delta);
  std::uint8_t header[kRecordHeaderBytes];
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  const std::uint64_t checksum = XXH64(payload.data(), payload.size());
  std::memcpy(header, &kRecordMagic, sizeof(kRecordMagic));
  std::memcpy(header + 4, &length, sizeof(length));
  std::memcpy(header + 8, &checksum, sizeof(checksum));

  switch (fault::Check("journal.append")) {
    case fault::Action::kIOError:
      return fault::InjectedError("journal.append");
    case fault::Action::kShortWrite: {
      // Persist a torn record — header plus half the payload — then fail.
      // The next Open() must truncate exactly this tail away.
      (void)WriteFully(fd_, header, sizeof(header), path_);
      (void)WriteFully(fd_, payload.data(), payload.size() / 2, path_);
      (void)::fsync(fd_);
      return fault::InjectedError("journal.append");
    }
    default:
      break;
  }

  TOPL_RETURN_IF_ERROR(WriteFully(fd_, header, sizeof(header), path_));
  TOPL_RETURN_IF_ERROR(WriteFully(fd_, payload.data(), payload.size(), path_));
  TOPL_FAULT_POINT("journal.fsync");
  if (::fsync(fd_) != 0) {
    return Status::IOError(Errno("fsync", path_));
  }
  num_records_ += 1;
  return Status::OK();
}

Status UpdateJournal::Truncate() {
  if (fd_ < 0) return Status::Internal("journal is closed");
  if (::ftruncate(fd_, static_cast<::off_t>(kHeaderBytes)) != 0) {
    return Status::IOError(Errno("cannot truncate", path_));
  }
  if (::lseek(fd_, static_cast<::off_t>(kHeaderBytes), SEEK_SET) < 0) {
    return Status::IOError(Errno("cannot seek", path_));
  }
  if (::fsync(fd_) != 0) {
    return Status::IOError(Errno("fsync", path_));
  }
  num_records_ = 0;
  return Status::OK();
}

Result<std::vector<GraphDelta>> UpdateJournal::Replay(
    const std::string& path, std::uint64_t* torn_bytes) {
  TOPL_FAULT_POINT("journal.replay");
  if (torn_bytes != nullptr) *torn_bytes = 0;
  if (!std::filesystem::exists(path)) return std::vector<GraphDelta>{};
  Result<std::vector<std::uint8_t>> bytes = ReadWholeFile(path);
  if (!bytes.ok()) return bytes.status();
  Result<RecordScan> scan = ScanRecords(*bytes, path);
  if (!scan.ok()) return scan.status();
  if (torn_bytes != nullptr) {
    *torn_bytes = bytes->size() - scan->valid_bytes;
  }
  std::vector<GraphDelta> deltas;
  deltas.reserve(scan->records);
  std::size_t pos = kHeaderBytes;
  for (std::uint64_t i = 0; i < scan->records; ++i) {
    std::uint32_t length = 0;
    std::memcpy(&length, bytes->data() + pos + 4, sizeof(length));
    Result<GraphDelta> delta =
        DecodeDelta(bytes->data() + pos + kRecordHeaderBytes, length);
    if (!delta.ok()) {
      // Framing + checksum passed but the payload is semantically malformed:
      // that is corruption of a committed record, not a torn tail — refuse
      // to replay past it silently.
      return Status::Corruption(path + ": record " + std::to_string(i) + ": " +
                                delta.status().message());
    }
    deltas.push_back(std::move(*delta));
    pos += kRecordHeaderBytes + length;
  }
  return deltas;
}

}  // namespace topl

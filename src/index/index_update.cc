#include "index/index_update.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "common/check.h"

namespace topl {

namespace {

/// A reverse-influence source: endpoint `vertex` of a modified arc, seeded
/// with that arc's own probability `arc_prob` = p(vertex → other endpoint).
struct InfluenceSource {
  VertexId vertex;
  double arc_prob;
};

/// Marks every vertex s whose propagation can cross a modified arc with
/// total probability ≥ theta_min: upp(s, a) · p(a→b) ≥ theta_min for some
/// modified arc a→b (a = source.vertex). OR-s into `reached` (size n).
///
/// One multi-source max-product Dijkstra over reverse arcs: relaxing x → y
/// uses p(y→x), so the settled product at y is
/// max_src max-path-product(y → src) · p(src→other) — the largest total
/// probability any changed path starting at y can carry up to and across the
/// modified arc (the suffix beyond it only shrinks the product). Seeding
/// with the arc probability instead of 1.0 buys roughly one hop of
/// tightness. Mirrors PropagationEngine::Compute (including its θ cut) so
/// the two sides of the dirtiness argument use the same arithmetic.
void MarkReverseInfluence(const Graph& g,
                          const std::vector<InfluenceSource>& sources,
                          double theta_min, const std::vector<float>& prob_uv,
                          const std::vector<float>& prob_vu,
                          std::vector<char>* reached) {
  struct HeapEntry {
    double prob;
    VertexId vertex;
    bool operator<(const HeapEntry& other) const { return prob < other.prob; }
  };
  std::vector<double> best(g.NumVertices(), 0.0);
  std::vector<HeapEntry> heap;
  for (const InfluenceSource& s : sources) {
    if (s.arc_prob < theta_min || s.arc_prob == 0.0) continue;
    if (s.arc_prob <= best[s.vertex]) continue;  // weaker duplicate source
    best[s.vertex] = s.arc_prob;
    heap.push_back({s.arc_prob, s.vertex});
  }
  std::make_heap(heap.begin(), heap.end());
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end());
    const HeapEntry top = heap.back();
    heap.pop_back();
    if (top.prob < best[top.vertex]) continue;  // stale
    (*reached)[top.vertex] = 1;
    best[top.vertex] = 2.0;  // settled
    for (const Graph::Arc& arc : g.Neighbors(top.vertex)) {
      // Traversing x → y backwards: the forward arc is y → x, whose
      // probability sits in the directional slot picked by the canonical
      // (u < v) endpoint order of the shared undirected edge.
      const double p_reverse = arc.to < top.vertex
                                   ? static_cast<double>(prob_uv[arc.edge])
                                   : static_cast<double>(prob_vu[arc.edge]);
      const double candidate = top.prob * p_reverse;
      if (candidate < theta_min || candidate == 0.0) continue;
      if (candidate > best[arc.to]) {
        best[arc.to] = candidate;
        heap.push_back({candidate, arc.to});
        std::push_heap(heap.begin(), heap.end());
      }
    }
  }
}

/// Marks every vertex within `depth` structural hops of a seed (seeds come
/// pre-marked in `seed_mask`), OR-ing into `dirty`.
void MarkWithinHops(const Graph& g, const std::vector<char>& seed_mask,
                    std::uint32_t depth, std::vector<char>* dirty) {
  std::vector<std::uint32_t> dist(g.NumVertices(), kUnreachedDistance);
  std::deque<VertexId> queue;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (seed_mask[v]) {
      dist[v] = 0;
      (*dirty)[v] = 1;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    if (dist[u] == depth) continue;
    for (const Graph::Arc& arc : g.Neighbors(u)) {
      if (dist[arc.to] != kUnreachedDistance) continue;
      dist[arc.to] = dist[u] + 1;
      (*dirty)[arc.to] = 1;
      queue.push_back(arc.to);
    }
  }
}

}  // namespace

void IndexUpdater::RecomputeNodeAggregates(TreeIndex* t, std::uint32_t id) {
  const TreeIndex::Node& node = t->owned_nodes_[id];
  const std::uint32_t r_max = t->r_max_;
  const std::uint32_t num_thetas = t->num_thetas_;
  const std::size_t words = t->words_;
  const PrecomputedData& pre = *t->pre_;

  t->owned_center_truss_bounds_[id] = 0;
  for (std::uint32_t r = 1; r <= r_max; ++r) {
    std::uint64_t* sig = t->owned_signatures_.data() + t->SigOffset(id, r);
    std::fill(sig, sig + words, 0);
    t->owned_support_bounds_[t->Index2(id, r)] = 0;
    for (std::uint32_t z = 0; z < num_thetas; ++z) {
      t->owned_score_bounds_[t->Index3(id, r, z)] = 0.0;
    }
  }

  if (node.is_leaf != 0) {
    for (std::uint32_t i = node.begin; i < node.end; ++i) {
      const VertexId v = t->owned_sorted_vertices_[i];
      t->owned_center_truss_bounds_[id] =
          std::max(t->owned_center_truss_bounds_[id], pre.CenterTrussBound(v));
      for (std::uint32_t r = 1; r <= r_max; ++r) {
        std::uint64_t* sig = t->owned_signatures_.data() + t->SigOffset(id, r);
        const auto vsig = pre.SignatureWords(v, r);
        for (std::size_t w = 0; w < words; ++w) sig[w] |= vsig[w];
        std::uint32_t& sup = t->owned_support_bounds_[t->Index2(id, r)];
        sup = std::max(sup, pre.SupportBound(v, r));
        for (std::uint32_t z = 0; z < num_thetas; ++z) {
          double& score = t->owned_score_bounds_[t->Index3(id, r, z)];
          score = std::max(score, pre.ScoreBound(v, r, z));
        }
      }
    }
    return;
  }

  for (std::uint32_t c = 0; c < node.num_children; ++c) {
    const std::uint32_t child = node.first_child + c;
    TOPL_DCHECK(child < id, "tree arena is not bottom-up");
    t->owned_center_truss_bounds_[id] =
        std::max(t->owned_center_truss_bounds_[id],
                 t->owned_center_truss_bounds_[child]);
    for (std::uint32_t r = 1; r <= r_max; ++r) {
      std::uint64_t* sig = t->owned_signatures_.data() + t->SigOffset(id, r);
      const std::uint64_t* csig =
          t->owned_signatures_.data() + t->SigOffset(child, r);
      for (std::size_t w = 0; w < words; ++w) sig[w] |= csig[w];
      std::uint32_t& sup = t->owned_support_bounds_[t->Index2(id, r)];
      sup = std::max(sup, t->owned_support_bounds_[t->Index2(child, r)]);
      for (std::uint32_t z = 0; z < num_thetas; ++z) {
        double& score = t->owned_score_bounds_[t->Index3(id, r, z)];
        score = std::max(score, t->owned_score_bounds_[t->Index3(child, r, z)]);
      }
    }
  }
}

std::string RebuildScope::ToString() const {
  return "touched=" + std::to_string(touched_vertices) +
         " influence_frontier=" + std::to_string(influence_frontier) +
         " dirty_centers=" + std::to_string(dirty_centers) + "/" +
         std::to_string(num_vertices) +
         " (avoided " + std::to_string(precompute_avoided() * 100.0) + "%)" +
         " tree_patched=" + std::to_string(tree_nodes_patched) + "/" +
         std::to_string(tree_nodes_total);
}

std::vector<VertexId> IndexUpdater::DirtyCenters(
    const Graph& base, const Graph& updated, const GraphDelta& delta,
    std::uint32_t r_max, double theta_min, std::size_t* influence_frontier) {
  const std::size_t n = base.NumVertices();
  TOPL_CHECK(updated.NumVertices() == n,
             "IndexUpdater: delta must preserve the vertex set");

  // Reverse-influence frontier: a destroyed optimal path lived in the old
  // graph and crossed a deleted arc; a created one lives in the new graph
  // and crosses an inserted arc. Each pass is seeded with the modified arcs
  // of its own graph, carrying their own probabilities.
  std::vector<char> seed_mask(n, 0);
  if (!delta.edge_deletes.empty()) {
    std::vector<float> prob_uv;
    std::vector<float> prob_vu;
    CollectEdgeProbabilities(base, &prob_uv, &prob_vu);
    std::vector<InfluenceSource> sources;
    for (const GraphDelta::EdgeRef& e : delta.edge_deletes) {
      const EdgeId id = base.FindEdge(e.u, e.v);
      TOPL_CHECK(id != kInvalidEdge, "validated delete vanished from base");
      // Canonical endpoints: prob_uv is p(min→max), prob_vu is p(max→min).
      const VertexId lo = std::min(e.u, e.v);
      const VertexId hi = std::max(e.u, e.v);
      sources.push_back({lo, static_cast<double>(prob_uv[id])});
      sources.push_back({hi, static_cast<double>(prob_vu[id])});
    }
    MarkReverseInfluence(base, sources, theta_min, prob_uv, prob_vu, &seed_mask);
  }
  if (!delta.edge_inserts.empty()) {
    std::vector<float> prob_uv;
    std::vector<float> prob_vu;
    CollectEdgeProbabilities(updated, &prob_uv, &prob_vu);
    std::vector<InfluenceSource> sources;
    for (const GraphDelta::EdgeInsert& e : delta.edge_inserts) {
      sources.push_back({e.u, static_cast<double>(e.prob_uv)});
      sources.push_back({e.v, static_cast<double>(e.prob_vu)});
    }
    MarkReverseInfluence(updated, sources, theta_min, prob_uv, prob_vu,
                         &seed_mask);
  }
  if (influence_frontier != nullptr) {
    *influence_frontier = static_cast<std::size_t>(
        std::count(seed_mask.begin(), seed_mask.end(), char{1}));
  }

  // Structural epicenters: supports, trussness, and ball membership change
  // only within r_max hops of a modified edge's endpoints (in either graph),
  // independent of propagation probabilities.
  for (const GraphDelta::EdgeRef& e : delta.edge_deletes) {
    seed_mask[e.u] = 1;
    seed_mask[e.v] = 1;
  }
  for (const GraphDelta::EdgeInsert& e : delta.edge_inserts) {
    seed_mask[e.u] = 1;
    seed_mask[e.v] = 1;
  }

  // Keyword-only epicenters join the structural expansion (signatures are
  // ball-local; they never alter score bounds).
  for (const GraphDelta::KeywordChange& c : delta.keyword_adds) seed_mask[c.v] = 1;
  for (const GraphDelta::KeywordChange& c : delta.keyword_removes) {
    seed_mask[c.v] = 1;
  }

  // Every center whose r_max-ball can contain a seed — in the old or the new
  // structure — gets its rows recomputed.
  std::vector<char> dirty(n, 0);
  MarkWithinHops(base, seed_mask, r_max, &dirty);
  MarkWithinHops(updated, seed_mask, r_max, &dirty);

  std::vector<VertexId> out;
  for (VertexId v = 0; v < n; ++v) {
    if (dirty[v]) out.push_back(v);
  }
  return out;
}

Result<UpdatedIndex> IndexUpdater::Apply(const Graph& base,
                                         const PrecomputedData& pre,
                                         const TreeIndex& tree,
                                         const GraphDelta& delta,
                                         ThreadPool* pool) {
  if (pre.num_vertices() != base.NumVertices()) {
    return Status::InvalidArgument(
        "IndexUpdater::Apply: precomputed data was built over a different "
        "graph (vertex count mismatch)");
  }
  if (&tree.precomputed() != &pre) {
    return Status::InvalidArgument(
        "IndexUpdater::Apply: tree index references different precomputed "
        "data");
  }
  if (tree.NumNodes() == 0) {
    return Status::InvalidArgument("IndexUpdater::Apply: tree index is empty");
  }

  UpdatedIndex out;
  Result<Graph> updated = ApplyDelta(base, delta);
  if (!updated.ok()) return updated.status();
  out.graph = std::move(updated).value();

  out.scope.num_vertices = base.NumVertices();
  out.scope.touched_vertices = delta.TouchedVertices().size();
  out.scope.tree_nodes_total = tree.NumNodes();

  out.dirty_center_ids =
      DirtyCenters(base, out.graph, delta, pre.r_max(), pre.thetas().front(),
                   &out.scope.influence_frontier);
  const std::vector<VertexId>& dirty = out.dirty_center_ids;
  out.scope.dirty_centers = dirty.size();

  // Deep copy (materializes a mapped base into owned memory), then redo
  // exactly the dirty rows over the new graph.
  out.pre = std::make_unique<PrecomputedData>(pre);
  if (pool != nullptr && pool->num_threads() > 1 && dirty.size() > 1) {
    // Per-worker scratch is created lazily on first chunk: with small dirty
    // sets most workers never run, and eagerly paying O(n) scratch per pool
    // thread would dwarf the work avoided. Each slot is only touched by its
    // own worker id, so the lazy construction is race-free. Each worker's
    // precomputer carries its own triangle substrate (truss/local_truss.h),
    // so the per-ball truss work inside Recompute is allocation-free and
    // oriented-enumeration fast here exactly as in the full Build.
    std::vector<std::unique_ptr<VertexPrecomputer>> workers(pool->num_threads());
    pool->ParallelForWithWorker(
        0, dirty.size(),
        [&](std::size_t worker_id, std::size_t i) {
          std::unique_ptr<VertexPrecomputer>& worker = workers[worker_id];
          if (worker == nullptr) {
            worker = std::make_unique<VertexPrecomputer>(out.graph);
          }
          worker->Recompute(dirty[i], out.pre.get());
        },
        /*grain=*/8);
  } else {
    VertexPrecomputer precomputer(out.graph);
    for (VertexId v : dirty) precomputer.Recompute(v, out.pre.get());
  }

  std::vector<char> dirty_vertex(base.NumVertices(), 0);
  for (VertexId v : dirty) dirty_vertex[v] = 1;
  out.scope.tree_nodes_patched =
      PatchTree(tree, out.pre.get(), dirty_vertex, &out.tree);

  return out;
}

std::size_t IndexUpdater::PatchTree(const TreeIndex& tree,
                                    const PrecomputedData* pre,
                                    const std::vector<char>& dirty_vertex,
                                    TreeIndex* out) {
  TreeIndex& t = *out;
  t.pre_ = pre;
  t.r_max_ = tree.r_max_;
  t.num_thetas_ = tree.num_thetas_;
  t.words_ = tree.words_;
  t.root_ = tree.root_;
  t.height_ = tree.height_;
  t.owned_nodes_.assign(tree.nodes_.begin(), tree.nodes_.end());
  t.owned_sorted_vertices_.assign(tree.sorted_vertices_.begin(),
                                  tree.sorted_vertices_.end());
  t.owned_signatures_.assign(tree.signatures_.begin(), tree.signatures_.end());
  t.owned_support_bounds_.assign(tree.support_bounds_.begin(),
                                 tree.support_bounds_.end());
  t.owned_center_truss_bounds_.assign(tree.center_truss_bounds_.begin(),
                                      tree.center_truss_bounds_.end());
  t.owned_score_bounds_.assign(tree.score_bounds_.begin(),
                               tree.score_bounds_.end());

  std::size_t patched = 0;
  std::vector<char> dirty_node(t.owned_nodes_.size(), 0);
  for (std::uint32_t id = 0; id < t.owned_nodes_.size(); ++id) {
    const TreeIndex::Node& node = t.owned_nodes_[id];
    if (node.is_leaf != 0) {
      for (std::uint32_t i = node.begin; i < node.end && !dirty_node[id]; ++i) {
        if (dirty_vertex[t.owned_sorted_vertices_[i]]) dirty_node[id] = 1;
      }
    } else {
      for (std::uint32_t c = 0; c < node.num_children && !dirty_node[id]; ++c) {
        if (dirty_node[node.first_child + c]) dirty_node[id] = 1;
      }
    }
    if (dirty_node[id]) {
      RecomputeNodeAggregates(&t, id);
      ++patched;
    }
  }
  t.BindOwned();
  return patched;
}

}  // namespace topl

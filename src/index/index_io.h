#ifndef TOPL_INDEX_INDEX_IO_H_
#define TOPL_INDEX_INDEX_IO_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "graph/graph.h"
#include "index/precompute.h"
#include "index/tree_index.h"

namespace topl {

/// \brief Binary persistence for the offline phase's output, so a graph's
/// index is built once and reloaded across sessions.
///
/// Write produces the legacy TOPLIDX1 stream (magic "TOPLIDX1";
/// little-endian, fixed-width fields; everything re-validated on load) and
/// is kept for compatibility and migration tests. New artifacts should be
/// written as TOPLIDX2 via ArtifactWriter (storage/artifact.h), which packs
/// graph + precompute + tree into one mmap-able file; `topl_cli index
/// migrate` converts old files.
///
/// Read accepts both formats: TOPLIDX1 is parsed field-by-field into owned
/// memory, TOPLIDX2 is delegated to ArtifactReader and comes back as
/// zero-copy views of the mapping.
class IndexCodec {
 public:
  /// A deserialized index. PrecomputedData sits behind a unique_ptr so its
  /// address is stable: `tree` holds a pointer to it, and LoadedIndex stays
  /// movable without re-wiring.
  struct LoadedIndex {
    std::unique_ptr<PrecomputedData> data;
    TreeIndex tree;
  };

  /// Writes `pre` and the `tree` built over it (legacy TOPLIDX1 format).
  static Status Write(const PrecomputedData& pre, const TreeIndex& tree,
                      const std::string& path);

  /// Reads an index previously written for `g` (vertex count is verified;
  /// for TOPLIDX2 artifacts the edge count as well).
  static Result<LoadedIndex> Read(const std::string& path, const Graph& g);
};

}  // namespace topl

#endif  // TOPL_INDEX_INDEX_IO_H_

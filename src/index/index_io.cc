#include "index/index_io.h"

#include <cstring>
#include <fstream>
#include <span>

#include "storage/artifact.h"

namespace topl {

namespace {

constexpr char kMagic[8] = {'T', 'O', 'P', 'L', 'I', 'D', 'X', '1'};

template <typename T>
void PutRaw(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool GetRaw(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
void PutSpan(std::ofstream& out, std::span<const T> v) {
  PutRaw<std::uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size_bytes()));
}

template <typename T>
bool GetVector(std::ifstream& in, std::vector<T>* v, std::uint64_t max_elems) {
  std::uint64_t size = 0;
  if (!GetRaw(in, &size)) return false;
  if (size > max_elems) return false;
  v->resize(size);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(size * sizeof(T)));
  return static_cast<bool>(in);
}

}  // namespace

Status IndexCodec::Write(const PrecomputedData& pre, const TreeIndex& tree,
                         const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);

  out.write(kMagic, sizeof(kMagic));
  // Precomputed data.
  PutRaw<std::uint32_t>(out, pre.r_max_);
  PutRaw<std::uint32_t>(out, pre.signature_bits_);
  PutRaw<std::uint64_t>(out, pre.words_);
  PutRaw<std::uint64_t>(out, pre.n_);
  PutSpan(out, pre.thetas_);
  PutSpan(out, pre.signatures_);
  PutSpan(out, pre.support_bounds_);
  PutSpan(out, pre.center_truss_);
  PutSpan(out, pre.score_bounds_);
  // Tree.
  PutRaw<std::uint32_t>(out, tree.root_);
  PutRaw<std::uint32_t>(out, tree.height_);
  PutRaw<std::uint64_t>(out, tree.nodes_.size());
  for (const TreeIndex::Node& n : tree.nodes_) {
    PutRaw<std::uint8_t>(out, n.is_leaf != 0 ? 1 : 0);
    PutRaw<std::uint32_t>(out, n.first_child);
    PutRaw<std::uint32_t>(out, n.num_children);
    PutRaw<std::uint32_t>(out, n.begin);
    PutRaw<std::uint32_t>(out, n.end);
    PutRaw<std::uint32_t>(out, n.num_vertices);
  }
  PutSpan(out, tree.sorted_vertices_);
  PutSpan(out, tree.signatures_);
  PutSpan(out, tree.support_bounds_);
  PutSpan(out, tree.center_truss_bounds_);
  PutSpan(out, tree.score_bounds_);

  out.flush();
  if (!out) return Status::IOError("write error on " + path);
  return Status::OK();
}

Result<IndexCodec::LoadedIndex> IndexCodec::Read(const std::string& path,
                                                 const Graph& g) {
  // Newer artifacts come back through the zero-copy path so callers of the
  // legacy API transparently benefit from the mmap-able format.
  if (ArtifactReader::IsArtifact(path)) {
    Result<MappedIndex> mapped = ArtifactReader::Open(path);
    if (!mapped.ok()) return mapped.status();
    if (mapped->graph.NumVertices() != g.NumVertices()) {
      return Status::InvalidArgument(
          path + ": index was built for a graph with " +
          std::to_string(mapped->graph.NumVertices()) + " vertices");
    }
    if (mapped->graph.NumEdges() != g.NumEdges()) {
      return Status::InvalidArgument(
          path + ": index was built for a graph with " +
          std::to_string(mapped->graph.NumEdges()) + " edges");
    }
    LoadedIndex loaded;
    loaded.data = std::move(mapped->pre);
    loaded.tree = std::move(mapped->tree);
    return loaded;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  in.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  // No serialized vector can hold more elements than the file has bytes for;
  // capping by these before resize keeps corrupted headers from triggering
  // huge allocations.
  const std::uint64_t cap64 = file_size / 8;
  const std::uint64_t cap32 = file_size / 4;

  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption(path + ": bad magic");
  }

  LoadedIndex loaded;
  loaded.data = std::unique_ptr<PrecomputedData>(new PrecomputedData());
  PrecomputedData& pre = *loaded.data;
  if (!GetRaw(in, &pre.r_max_) || !GetRaw(in, &pre.signature_bits_) ||
      !GetRaw(in, &pre.words_) || !GetRaw(in, &pre.n_)) {
    return Status::Corruption(path + ": truncated precompute header");
  }
  if (pre.n_ != g.NumVertices()) {
    return Status::InvalidArgument(path + ": index was built for a graph with " +
                                   std::to_string(pre.n_) + " vertices");
  }
  if (pre.r_max_ == 0 || pre.words_ == 0 ||
      pre.words_ != (pre.signature_bits_ + 63) / 64) {
    return Status::Corruption(path + ": inconsistent precompute header");
  }
  if (!GetVector(in, &pre.owned_thetas_, cap64) ||
      !GetVector(in, &pre.owned_signatures_, cap64) ||
      !GetVector(in, &pre.owned_support_bounds_, cap32) ||
      !GetVector(in, &pre.owned_center_truss_, cap32) ||
      !GetVector(in, &pre.owned_score_bounds_, cap64)) {
    return Status::Corruption(path + ": truncated precompute arrays");
  }
  pre.BindOwned();
  const std::size_t m = pre.thetas_.size();
  if (m == 0 || pre.signatures_.size() != pre.n_ * pre.r_max_ * pre.words_ ||
      pre.support_bounds_.size() != pre.n_ * pre.r_max_ ||
      pre.center_truss_.size() != pre.n_ ||
      pre.score_bounds_.size() != pre.n_ * pre.r_max_ * m) {
    return Status::Corruption(path + ": precompute array size mismatch");
  }

  TreeIndex& tree = loaded.tree;
  tree.pre_ = loaded.data.get();
  tree.r_max_ = pre.r_max_;
  tree.num_thetas_ = static_cast<std::uint32_t>(m);
  tree.words_ = pre.words_;
  std::uint64_t num_nodes = 0;
  if (!GetRaw(in, &tree.root_) || !GetRaw(in, &tree.height_) ||
      !GetRaw(in, &num_nodes)) {
    return Status::Corruption(path + ": truncated tree header");
  }
  if (num_nodes == 0 || num_nodes > file_size / 21) {
    // 21 bytes per serialized node.
    return Status::Corruption(path + ": bad node count");
  }
  tree.owned_nodes_.resize(num_nodes);
  for (TreeIndex::Node& n : tree.owned_nodes_) {
    std::uint8_t is_leaf = 0;
    if (!GetRaw(in, &is_leaf) || !GetRaw(in, &n.first_child) ||
        !GetRaw(in, &n.num_children) || !GetRaw(in, &n.begin) ||
        !GetRaw(in, &n.end) || !GetRaw(in, &n.num_vertices)) {
      return Status::Corruption(path + ": truncated node section");
    }
    n.is_leaf = is_leaf != 0 ? 1 : 0;
    if (n.is_leaf == 0 &&
        (n.first_child >= num_nodes ||
         n.num_children > num_nodes - n.first_child)) {
      return Status::Corruption(path + ": node child range out of bounds");
    }
    if (n.is_leaf == 1 && (n.begin > n.end || n.end > pre.n_)) {
      return Status::Corruption(path + ": leaf vertex range out of bounds");
    }
  }
  if (tree.root_ >= num_nodes) {
    return Status::Corruption(path + ": root out of bounds");
  }
  if (!GetVector(in, &tree.owned_sorted_vertices_, cap32) ||
      !GetVector(in, &tree.owned_signatures_, cap64) ||
      !GetVector(in, &tree.owned_support_bounds_, cap32) ||
      !GetVector(in, &tree.owned_center_truss_bounds_, cap32) ||
      !GetVector(in, &tree.owned_score_bounds_, cap64)) {
    return Status::Corruption(path + ": truncated tree arrays");
  }
  tree.BindOwned();
  if (tree.sorted_vertices_.size() != pre.n_ ||
      tree.signatures_.size() != num_nodes * tree.r_max_ * tree.words_ ||
      tree.support_bounds_.size() != num_nodes * tree.r_max_ ||
      tree.center_truss_bounds_.size() != num_nodes ||
      tree.score_bounds_.size() != num_nodes * tree.r_max_ * m) {
    return Status::Corruption(path + ": tree array size mismatch");
  }
  for (VertexId v : tree.sorted_vertices_) {
    if (v >= pre.n_) return Status::Corruption(path + ": sorted vertex out of range");
  }
  // A well-formed stream ends exactly here; trailing bytes mean the fields
  // above were not what the writer produced.
  if (in.peek() != std::ifstream::traits_type::eof()) {
    return Status::Corruption(path + ": trailing garbage after index data");
  }
  return loaded;
}

}  // namespace topl

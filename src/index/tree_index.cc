#include "index/tree_index.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace topl {

bool TreeIndex::SignatureIntersects(std::uint32_t node_id, std::uint32_t r,
                                    const BitVector& query_bv) const {
  const std::uint64_t* words = signatures_.data() + SigOffset(node_id, r);
  const auto qwords = query_bv.words();
  TOPL_DCHECK(qwords.size() == words_, "signature width mismatch");
  for (std::size_t i = 0; i < words_; ++i) {
    if ((words[i] & qwords[i]) != 0) return true;
  }
  return false;
}

Result<TreeIndex> TreeIndex::Build(const Graph& g, const PrecomputedData& pre,
                                   const TreeIndexOptions& options) {
  if (options.fanout < 2) return Status::InvalidArgument("fanout must be >= 2");
  if (options.leaf_capacity < 1) {
    return Status::InvalidArgument("leaf_capacity must be >= 1");
  }
  if (pre.num_vertices() != g.NumVertices()) {
    return Status::InvalidArgument("precomputed data does not match graph size");
  }
  if (g.NumVertices() == 0) {
    return Status::InvalidArgument("cannot index an empty graph");
  }

  TreeIndex index;
  index.pre_ = &pre;
  index.r_max_ = pre.r_max();
  index.num_thetas_ = pre.num_thetas();
  index.words_ = pre.words_per_signature();

  // Construction writes through the owned vectors; the view spans are bound
  // once the arena and aggregate arrays have reached their final size.
  auto& nodes = index.owned_nodes_;
  auto& sorted = index.owned_sorted_vertices_;
  auto& signatures = index.owned_signatures_;
  auto& support_bounds = index.owned_support_bounds_;
  auto& center_truss_bounds = index.owned_center_truss_bounds_;
  auto& score_bounds = index.owned_score_bounds_;

  // Sort vertices by the average of their pre-computed bounds, descending,
  // so that the best-first traversal reaches strong candidates early and the
  // per-node score bounds are tight.
  const std::size_t n = g.NumVertices();
  if (options.candidates.empty()) {
    sorted.resize(n);
    std::iota(sorted.begin(), sorted.end(), 0);
  } else {
    // Strictly-ascending input keeps the stable sort's tie order identical
    // to the full build's (ascending vertex id among equal keys).
    for (std::size_t i = 0; i < options.candidates.size(); ++i) {
      if (options.candidates[i] >= n ||
          (i > 0 && options.candidates[i] <= options.candidates[i - 1])) {
        return Status::InvalidArgument(
            "TreeIndexOptions::candidates must be strictly ascending vertex "
            "ids within the graph");
      }
    }
    sorted = options.candidates;
  }
  const std::size_t n_cand = sorted.size();
  std::vector<double> key(n, 0.0);
  for (VertexId v : sorted) key[v] = pre.SortKey(v);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [&key](VertexId a, VertexId b) { return key[a] > key[b]; });

  // Leaf level.
  std::vector<std::uint32_t> level;  // node ids of the level under construction
  auto alloc_aggregates = [&](std::uint32_t node_id) {
    // Aggregate arrays grow in lock-step with the arena.
    const std::size_t want_nodes = node_id + 1;
    signatures.resize(want_nodes * index.r_max_ * index.words_, 0);
    support_bounds.resize(want_nodes * index.r_max_, 0);
    center_truss_bounds.resize(want_nodes, 0);
    score_bounds.resize(want_nodes * index.r_max_ * index.num_thetas_, 0.0);
  };

  for (std::uint32_t begin = 0; begin < n_cand; begin += options.leaf_capacity) {
    const std::uint32_t end =
        std::min<std::uint32_t>(static_cast<std::uint32_t>(n_cand),
                                begin + options.leaf_capacity);
    const std::uint32_t id = static_cast<std::uint32_t>(nodes.size());
    Node leaf;
    leaf.is_leaf = 1;
    leaf.begin = begin;
    leaf.end = end;
    leaf.num_vertices = end - begin;
    nodes.push_back(leaf);
    alloc_aggregates(id);
    for (std::uint32_t i = begin; i < end; ++i) {
      center_truss_bounds[id] =
          std::max(center_truss_bounds[id],
                   pre.CenterTrussBound(sorted[i]));
    }
    for (std::uint32_t r = 1; r <= index.r_max_; ++r) {
      std::uint64_t* sig = signatures.data() + index.SigOffset(id, r);
      std::uint32_t& sup = support_bounds[index.Index2(id, r)];
      for (std::uint32_t i = begin; i < end; ++i) {
        const VertexId v = sorted[i];
        const auto vsig = pre.SignatureWords(v, r);
        for (std::size_t w = 0; w < index.words_; ++w) sig[w] |= vsig[w];
        sup = std::max(sup, pre.SupportBound(v, r));
        for (std::uint32_t z = 0; z < index.num_thetas_; ++z) {
          double& score = score_bounds[index.Index3(id, r, z)];
          score = std::max(score, pre.ScoreBound(v, r, z));
        }
      }
    }
    level.push_back(id);
  }

  // Internal levels: group `fanout` children until one node remains.
  index.height_ = 1;
  while (level.size() > 1) {
    std::vector<std::uint32_t> parents;
    for (std::size_t i = 0; i < level.size(); i += options.fanout) {
      const std::size_t child_end = std::min(level.size(), i + options.fanout);
      const std::uint32_t id = static_cast<std::uint32_t>(nodes.size());
      Node parent;
      parent.is_leaf = 0;
      parent.first_child = level[i];
      parent.num_children = static_cast<std::uint32_t>(child_end - i);
      parent.num_vertices = 0;
      nodes.push_back(parent);
      alloc_aggregates(id);
      for (std::size_t c = i; c < child_end; ++c) {
        const std::uint32_t child = level[c];
        nodes[id].num_vertices += nodes[child].num_vertices;
        center_truss_bounds[id] = std::max(
            center_truss_bounds[id], center_truss_bounds[child]);
        for (std::uint32_t r = 1; r <= index.r_max_; ++r) {
          std::uint64_t* sig = signatures.data() + index.SigOffset(id, r);
          const std::uint64_t* csig =
              signatures.data() + index.SigOffset(child, r);
          for (std::size_t w = 0; w < index.words_; ++w) sig[w] |= csig[w];
          support_bounds[index.Index2(id, r)] =
              std::max(support_bounds[index.Index2(id, r)],
                       support_bounds[index.Index2(child, r)]);
          for (std::uint32_t z = 0; z < index.num_thetas_; ++z) {
            double& score = score_bounds[index.Index3(id, r, z)];
            score = std::max(score, score_bounds[index.Index3(child, r, z)]);
          }
        }
      }
      parents.push_back(id);
    }
    level.swap(parents);
    ++index.height_;
  }
  index.root_ = level.front();
  index.BindOwned();
  return index;
}

}  // namespace topl

#include "index/tree_index.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace topl {

bool TreeIndex::SignatureIntersects(std::uint32_t node_id, std::uint32_t r,
                                    const BitVector& query_bv) const {
  const std::uint64_t* words = signatures_.data() + SigOffset(node_id, r);
  const auto qwords = query_bv.words();
  TOPL_DCHECK(qwords.size() == words_, "signature width mismatch");
  for (std::size_t i = 0; i < words_; ++i) {
    if ((words[i] & qwords[i]) != 0) return true;
  }
  return false;
}

Result<TreeIndex> TreeIndex::Build(const Graph& g, const PrecomputedData& pre,
                                   const TreeIndexOptions& options) {
  if (options.fanout < 2) return Status::InvalidArgument("fanout must be >= 2");
  if (options.leaf_capacity < 1) {
    return Status::InvalidArgument("leaf_capacity must be >= 1");
  }
  if (pre.num_vertices() != g.NumVertices()) {
    return Status::InvalidArgument("precomputed data does not match graph size");
  }
  if (g.NumVertices() == 0) {
    return Status::InvalidArgument("cannot index an empty graph");
  }

  TreeIndex index;
  index.pre_ = &pre;
  index.r_max_ = pre.r_max();
  index.num_thetas_ = pre.num_thetas();
  index.words_ = pre.words_per_signature();

  // Sort vertices by the average of their pre-computed bounds, descending,
  // so that the best-first traversal reaches strong candidates early and the
  // per-node score bounds are tight.
  const std::size_t n = g.NumVertices();
  index.sorted_vertices_.resize(n);
  std::iota(index.sorted_vertices_.begin(), index.sorted_vertices_.end(), 0);
  std::vector<double> key(n);
  for (VertexId v = 0; v < n; ++v) key[v] = pre.SortKey(v);
  std::stable_sort(index.sorted_vertices_.begin(), index.sorted_vertices_.end(),
                   [&key](VertexId a, VertexId b) { return key[a] > key[b]; });

  // Leaf level.
  std::vector<std::uint32_t> level;  // node ids of the level under construction
  auto alloc_aggregates = [&index](std::uint32_t node_id) {
    // Aggregate arrays grow in lock-step with the arena.
    const std::size_t want_nodes = node_id + 1;
    index.signatures_.resize(want_nodes * index.r_max_ * index.words_, 0);
    index.support_bounds_.resize(want_nodes * index.r_max_, 0);
    index.center_truss_bounds_.resize(want_nodes, 0);
    index.score_bounds_.resize(want_nodes * index.r_max_ * index.num_thetas_, 0.0);
  };

  for (std::uint32_t begin = 0; begin < n; begin += options.leaf_capacity) {
    const std::uint32_t end =
        std::min<std::uint32_t>(static_cast<std::uint32_t>(n),
                                begin + options.leaf_capacity);
    const std::uint32_t id = static_cast<std::uint32_t>(index.nodes_.size());
    Node leaf;
    leaf.is_leaf = true;
    leaf.begin = begin;
    leaf.end = end;
    leaf.num_vertices = end - begin;
    index.nodes_.push_back(leaf);
    alloc_aggregates(id);
    for (std::uint32_t i = begin; i < end; ++i) {
      index.center_truss_bounds_[id] =
          std::max(index.center_truss_bounds_[id],
                   pre.CenterTrussBound(index.sorted_vertices_[i]));
    }
    for (std::uint32_t r = 1; r <= index.r_max_; ++r) {
      std::uint64_t* sig = index.signatures_.data() + index.SigOffset(id, r);
      std::uint32_t& sup = index.support_bounds_[index.Index2(id, r)];
      for (std::uint32_t i = begin; i < end; ++i) {
        const VertexId v = index.sorted_vertices_[i];
        const auto vsig = pre.SignatureWords(v, r);
        for (std::size_t w = 0; w < index.words_; ++w) sig[w] |= vsig[w];
        sup = std::max(sup, pre.SupportBound(v, r));
        for (std::uint32_t z = 0; z < index.num_thetas_; ++z) {
          double& score = index.score_bounds_[index.Index3(id, r, z)];
          score = std::max(score, pre.ScoreBound(v, r, z));
        }
      }
    }
    level.push_back(id);
  }

  // Internal levels: group `fanout` children until one node remains.
  index.height_ = 1;
  while (level.size() > 1) {
    std::vector<std::uint32_t> parents;
    for (std::size_t i = 0; i < level.size(); i += options.fanout) {
      const std::size_t child_end = std::min(level.size(), i + options.fanout);
      const std::uint32_t id = static_cast<std::uint32_t>(index.nodes_.size());
      Node parent;
      parent.is_leaf = false;
      parent.first_child = level[i];
      parent.num_children = static_cast<std::uint32_t>(child_end - i);
      parent.num_vertices = 0;
      index.nodes_.push_back(parent);
      alloc_aggregates(id);
      for (std::size_t c = i; c < child_end; ++c) {
        const std::uint32_t child = level[c];
        index.nodes_[id].num_vertices += index.nodes_[child].num_vertices;
        index.center_truss_bounds_[id] = std::max(
            index.center_truss_bounds_[id], index.center_truss_bounds_[child]);
        for (std::uint32_t r = 1; r <= index.r_max_; ++r) {
          std::uint64_t* sig = index.signatures_.data() + index.SigOffset(id, r);
          const std::uint64_t* csig =
              index.signatures_.data() + index.SigOffset(child, r);
          for (std::size_t w = 0; w < index.words_; ++w) sig[w] |= csig[w];
          index.support_bounds_[index.Index2(id, r)] =
              std::max(index.support_bounds_[index.Index2(id, r)],
                       index.support_bounds_[index.Index2(child, r)]);
          for (std::uint32_t z = 0; z < index.num_thetas_; ++z) {
            double& score = index.score_bounds_[index.Index3(id, r, z)];
            score = std::max(score, index.score_bounds_[index.Index3(child, r, z)]);
          }
        }
      }
      parents.push_back(id);
    }
    level.swap(parents);
    ++index.height_;
  }
  index.root_ = level.front();
  return index;
}

}  // namespace topl

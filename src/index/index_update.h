#ifndef TOPL_INDEX_INDEX_UPDATE_H_
#define TOPL_INDEX_INDEX_UPDATE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"
#include "index/precompute.h"
#include "index/tree_index.h"

namespace topl {

/// \brief How much offline-phase work an incremental update performed — and,
/// more importantly, how much it proved it could skip.
struct RebuildScope {
  std::size_t num_vertices = 0;       ///< n of the (unchanged-size) vertex set
  std::size_t touched_vertices = 0;   ///< vertices named by the delta
  /// Vertices whose optimal propagation path to a touched edge carries
  /// probability ≥ θ_min in the old or new graph — the reverse-influence
  /// frontier that seeds the structural dirty expansion.
  std::size_t influence_frontier = 0;
  std::size_t dirty_centers = 0;      ///< precompute rows recomputed
  std::size_t tree_nodes_patched = 0; ///< tree nodes whose aggregates were redone
  std::size_t tree_nodes_total = 0;

  /// Fraction of per-vertex Algorithm-2 work the update avoided, in [0, 1].
  double precompute_avoided() const {
    return num_vertices == 0
               ? 0.0
               : 1.0 - static_cast<double>(dirty_centers) /
                           static_cast<double>(num_vertices);
  }

  std::string ToString() const;
};

/// The output of one incremental maintenance pass: a fully owned serving
/// state (never views into the base, so a mmap'd base artifact is untouched)
/// plus the work report. `tree` references `*pre`; keep them together.
struct UpdatedIndex {
  Graph graph;
  std::unique_ptr<PrecomputedData> pre;
  TreeIndex tree;
  RebuildScope scope;
  /// The exact dirty-center set (sorted ascending) the pass recomputed —
  /// `scope.dirty_centers` is its size. Every center *not* in this list
  /// keeps byte-identical precompute rows, seed community, and influenced
  /// community for every query at θ ≥ θ_min; result caches invalidate
  /// against exactly this set.
  std::vector<VertexId> dirty_center_ids;
};

/// \brief Incremental maintenance of the offline phase under a GraphDelta.
///
/// The paper's index is deliberately local: every vertex's precomputed rows
/// derive from its own r_max-ball (signatures, ball supports, center
/// trussness) plus one bounded propagation per radius (score bounds at
/// θ ≥ θ_min). An edge or keyword update therefore invalidates only a
/// bounded region:
///
///  - keyword change at w: centers within r_max structural hops of w
///    (w enters their ball signature);
///  - edge change {a, b}: centers within r_max hops of a or b in the old
///    *or* new graph (ball membership / ball supports / center trussness),
///    plus centers whose ball reaches a or b with propagation probability
///    ≥ θ_min in the old or new graph (score bounds). The latter set is
///    computed exactly by a reverse max-product Dijkstra from {a, b}: any
///    optimal-score path that an update creates or destroys has a prefix
///    reaching the updated edge with probability ≥ θ_min, so every center
///    outside the expanded region keeps byte-identical rows.
///
/// Apply recomputes exactly the dirty rows with the same VertexPrecomputer
/// code Build uses, then patches the tree index in place: dirty leaves and
/// their ancestors get fresh aggregates, every other node is untouched. The
/// vertex order inside the tree is kept (sort keys of dirty vertices may
/// drift from a from-scratch ordering, which affects traversal order but
/// never answers — all pruning bounds stay exact, and the PR-3 total-order
/// collector makes answers traversal-order independent). TopL/DTopL answers
/// over the patched index are byte-identical to answers over a full rebuild
/// of the mutated graph; tests/dynamic_update_test.cc sweeps that contract.
class IndexUpdater {
 public:
  /// Applies `delta` to (base, pre, tree). `pool` parallelizes the dirty-row
  /// recompute when given (nullptr = sequential). The inputs are only read;
  /// mapped instances are materialized into owned memory.
  static Result<UpdatedIndex> Apply(const Graph& base, const PrecomputedData& pre,
                                    const TreeIndex& tree, const GraphDelta& delta,
                                    ThreadPool* pool = nullptr);

  /// The dirty-center set (sorted) for `delta` between `base` and `updated`,
  /// with the reverse-influence frontier size reported through
  /// `influence_frontier` when non-null. Exposed for tests and for the
  /// RebuildScope report; Apply uses exactly this set.
  static std::vector<VertexId> DirtyCenters(const Graph& base,
                                            const Graph& updated,
                                            const GraphDelta& delta,
                                            std::uint32_t r_max, double theta_min,
                                            std::size_t* influence_frontier = nullptr);

  /// Materializes `tree` into `*out` (vertex order and node structure kept),
  /// re-points it at `pre`, and recomputes aggregates along every
  /// root-to-dirty-leaf path — the arena is bottom-up, so one ascending pass
  /// settles all dirty nodes. `dirty_vertex` is an n-sized mask of the
  /// vertices whose rows in `pre` differ from the rows `tree`'s aggregates
  /// were folded over. Returns the number of nodes patched. Shared by Apply
  /// and the sharded coordinator, whose per-shard trees cover only an owned
  /// subset of the vertex set (the mask stays indexed by global vertex id).
  static std::size_t PatchTree(const TreeIndex& tree, const PrecomputedData* pre,
                               const std::vector<char>& dirty_vertex,
                               TreeIndex* out);

 private:
  /// Zeroes and refills node `id`'s aggregates from its leaf vertices or its
  /// children — the same folds TreeIndex::Build performs.
  static void RecomputeNodeAggregates(TreeIndex* t, std::uint32_t id);
};

}  // namespace topl

#endif  // TOPL_INDEX_INDEX_UPDATE_H_

#include "index/precompute.h"

#include <algorithm>
#include <memory>

#include "common/check.h"
#include "common/thread_pool.h"
#include "influence/influence_calculator.h"
#include "truss/truss_decomposition.h"

namespace topl {

bool PrecomputedData::SignatureIntersects(VertexId v, std::uint32_t r,
                                          const BitVector& query_bv) const {
  const auto words = SignatureWords(v, r);
  const auto qwords = query_bv.words();
  TOPL_DCHECK(words.size() == qwords.size(), "signature width mismatch");
  for (std::size_t i = 0; i < words.size(); ++i) {
    if ((words[i] & qwords[i]) != 0) return true;
  }
  return false;
}

int PrecomputedData::ThresholdIndex(double theta) const {
  int z = -1;
  for (std::size_t i = 0; i < thetas_.size(); ++i) {
    if (thetas_[i] <= theta) z = static_cast<int>(i);
  }
  return z;
}

double PrecomputedData::SortKey(VertexId v) const {
  double sum = 0.0;
  for (std::uint32_t r = 1; r <= r_max_; ++r) {
    sum += SupportBound(v, r);
    for (std::uint32_t z = 0; z < num_thetas(); ++z) sum += ScoreBound(v, r, z);
  }
  return sum / (r_max_ * (1.0 + thetas_.size()));
}

VertexPrecomputer::VertexPrecomputer(const Graph& g)
    : graph_(&g), hop_(g), engine_(g) {}

void VertexPrecomputer::Recompute(VertexId v, PrecomputedData* out) {
  TOPL_CHECK(!out->IsMapped(),
             "VertexPrecomputer::Recompute needs a heap-backed "
             "PrecomputedData (copy a mapped instance first)");
  TOPL_CHECK(v < out->n_ && out->n_ == graph_->NumVertices(),
             "VertexPrecomputer::Recompute: vertex/graph shape mismatch");
  const Graph& g = *graph_;
  const std::uint32_t r_max = out->r_max_;
  const std::size_t m_thetas = out->owned_thetas_.size();
  const double theta_min = out->owned_thetas_.front();

  // One unfiltered r_max-hop extraction; every smaller radius is a BFS-order
  // prefix of it.
  hop_.Extract(v, r_max, /*keyword_filter=*/{}, &lg_);
  const LocalGraph& lg = lg_;

  // Members per radius (prefix lengths of the BFS order).
  members_at_radius_.assign(r_max + 1, 0);
  {
    std::size_t idx = 0;
    for (std::uint32_t r = 0; r <= r_max; ++r) {
      while (idx < lg.NumVertices() && lg.dist[idx] <= r) ++idx;
      members_at_radius_[r] = idx;
    }
  }

  // Signatures: incremental OR over BFS layers.
  BitVector acc(out->signature_bits_);
  {
    std::size_t idx = 0;
    for (std::uint32_t r = 1; r <= r_max; ++r) {
      // Layer r-1's prefix is already folded in; fold the new layer.
      // (For r = 1 this folds layers 0 and 1.)
      const std::size_t upto = members_at_radius_[r];
      while (idx < upto) {
        for (KeywordId w : g.Keywords(lg.global_ids[idx])) acc.AddKeyword(w);
        ++idx;
      }
      std::copy(acc.words().begin(), acc.words().end(),
                out->owned_signatures_.begin() +
                    static_cast<std::ptrdiff_t>(out->SigOffset(v, r)));
    }
  }

  // Support bounds "w.r.t. hop(v_i, r_max)" (Algorithm 2 lines 4-5):
  // edge supports within the ball, plus — from the same peeling — the
  // trussness of the center, the sharp structural bound.
  decomposer_.Decompose(lg, &ball_trussness_, &ball_support_);
  out->owned_center_truss_[v] = LocalCenterTrussness(lg, ball_trussness_);
  // Max ball-support among edges appearing at each radius, then prefix-max
  // across radii.
  max_sup_by_radius_.assign(r_max + 1, 0);
  for (std::size_t e = 0; e < lg.NumEdges(); ++e) {
    const std::uint32_t er = lg.edge_radius[e];
    max_sup_by_radius_[er] = std::max(max_sup_by_radius_[er], ball_support_[e]);
  }
  // edge_radius is max(dist of endpoints) ≥ 1, so bucket 0 stays empty.
  std::uint32_t running = 0;
  for (std::uint32_t r = 1; r <= r_max; ++r) {
    running = std::max(running, max_sup_by_radius_[r]);
    out->owned_support_bounds_[out->Index2(v, r)] = running;
  }

  // Influential-score bounds: one propagation per radius at θ_min, then all
  // σ_z read off the same cpp list.
  for (std::uint32_t r = 1; r <= r_max; ++r) {
    const std::size_t count = members_at_radius_[r];
    const std::span<const VertexId> seeds(lg.global_ids.data(), count);
    const InfluencedCommunity inf = engine_.Compute(seeds, theta_min);
    const std::vector<double> scores = ScoresAtThresholds(inf, out->owned_thetas_);
    for (std::uint32_t z = 0; z < m_thetas; ++z) {
      out->owned_score_bounds_[out->Index3(v, r, z)] = scores[z];
    }
  }
}

Result<PrecomputedData> PrecomputedData::Build(const Graph& g,
                                               const PrecomputeOptions& options) {
  if (options.r_max < 1) {
    return Status::InvalidArgument("r_max must be >= 1");
  }
  if (options.thetas.empty()) {
    return Status::InvalidArgument("at least one pre-selected theta is required");
  }
  for (std::size_t i = 0; i < options.thetas.size(); ++i) {
    const double t = options.thetas[i];
    if (!(t >= 0.0 && t < 1.0)) {
      return Status::InvalidArgument("pre-selected thetas must be in [0, 1)");
    }
    if (i > 0 && t <= options.thetas[i - 1]) {
      return Status::InvalidArgument("pre-selected thetas must be strictly ascending");
    }
  }
  if (options.signature_bits < 8) {
    return Status::InvalidArgument("signature_bits must be >= 8");
  }

  PrecomputedData data;
  data.r_max_ = options.r_max;
  data.owned_thetas_ = options.thetas;
  data.signature_bits_ = options.signature_bits;
  data.words_ = (options.signature_bits + 63) / 64;
  data.n_ = g.NumVertices();
  const std::uint32_t r_max = data.r_max_;
  const std::size_t m_thetas = data.owned_thetas_.size();
  data.owned_signatures_.assign(data.n_ * r_max * data.words_, 0);
  data.owned_support_bounds_.assign(data.n_ * r_max, 0);
  data.owned_center_truss_.assign(data.n_, 2);
  data.owned_score_bounds_.assign(data.n_ * r_max * m_thetas, 0.0);
  // All arrays are fully sized: bind the views now, and let the parallel
  // build below write through the owned vectors.
  data.BindOwned();

  ThreadPool pool(options.num_threads);

  // One extraction + propagation scratch set per worker.
  std::vector<std::unique_ptr<VertexPrecomputer>> workers;
  workers.reserve(pool.num_threads());
  for (std::size_t t = 0; t < pool.num_threads(); ++t) {
    workers.push_back(std::make_unique<VertexPrecomputer>(g));
  }

  pool.ParallelForWithWorker(
      0, data.n_,
      [&](std::size_t worker_id, std::size_t vi) {
        workers[worker_id]->Recompute(static_cast<VertexId>(vi), &data);
      },
      /*grain=*/32);

  return data;
}

}  // namespace topl

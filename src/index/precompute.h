#ifndef TOPL_INDEX_PRECOMPUTE_H_
#define TOPL_INDEX_PRECOMPUTE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/local_subgraph.h"
#include "influence/propagation.h"
#include "keywords/bit_vector.h"
#include "truss/truss_decomposition.h"

namespace topl {

/// Controls the offline pre-computation phase (Algorithm 2).
struct PrecomputeOptions {
  /// Largest radius r_max pre-computed; online queries must use r ≤ r_max.
  /// Paper sweeps r ∈ {1, 2, 3}.
  std::uint32_t r_max = 3;
  /// Pre-selected influence thresholds θ_1 < θ_2 < ... < θ_m (§IV-D). The
  /// online bound for θ is σ_z with the largest θ_z ≤ θ.
  std::vector<double> thetas = {0.1, 0.2, 0.3};
  /// Width B of the hashed keyword signatures.
  std::uint32_t signature_bits = 128;
  /// Worker threads for the per-vertex loop (0 = hardware concurrency).
  std::size_t num_threads = 0;
};

/// \brief Per-vertex pre-computed pruning data (the paper's v_i.R lists).
///
/// For every vertex v and radius r ∈ [1, r_max] this stores, over the r-hop
/// subgraph hop(v, r):
///  - BV_r: the OR of the hashed keyword signatures of all members,
///  - ub_sup_r: the largest edge support among hop(v, r)'s edges, measured
///    within the r_max-ball hop(v, r_max) (Algorithm 2 lines 4–5: supports
///    are computed "w.r.t. hop(v_i, r_max)" — valid because every seed
///    community centered at v is a subgraph of that ball),
///  - σ_z(hop(v, r)) for each θ_z: the influential score of the whole r-hop
///    subgraph treated as a seed set — an upper bound on σ(g) for every seed
///    community g ⊆ hop(v, r) and every online θ ≥ θ_z (§IV-D).
///
/// Additionally, per vertex (radius-independent):
///  - center_truss: the trussness of v within hop(v, r_max) — the largest k
///    for which *any* k-truss containing v exists inside the ball. Any seed
///    community centered at v is such a truss, so `center_truss < k` prunes
///    v exactly like Lemma 2 but far more sharply (DESIGN.md §3 documents
///    this strengthening; the paper's max-support form is kept alongside).
///
/// Layout is flat (vertex-major) for cache-friendly index construction and
/// trivial serialization. Like Graph, every flat array is accessed through a
/// std::span view whose backing is either owned heap memory (Build, the
/// legacy codec) or a read-only mmap of a TOPLIDX2 artifact. Copying
/// materializes the views into fresh owned memory, so a copy of a mapped
/// instance is an ordinary heap-backed one.
class PrecomputedData {
 public:
  /// Runs Algorithm 2 over the graph. Vertices are processed independently
  /// in parallel: each worker owns a HopExtractor and a PropagationEngine.
  static Result<PrecomputedData> Build(const Graph& g,
                                       const PrecomputeOptions& options);

  PrecomputedData(const PrecomputedData& other) { CopyFrom(other); }
  PrecomputedData& operator=(const PrecomputedData& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  // Owned vectors keep their heap buffers across moves, so the spans stay
  // valid under the default member-wise move.
  PrecomputedData(PrecomputedData&&) = default;
  PrecomputedData& operator=(PrecomputedData&&) = default;

  std::uint32_t r_max() const { return r_max_; }
  std::span<const double> thetas() const { return thetas_; }
  std::uint32_t num_thetas() const { return static_cast<std::uint32_t>(thetas_.size()); }
  std::uint32_t signature_bits() const { return signature_bits_; }
  std::size_t words_per_signature() const { return words_; }
  std::size_t num_vertices() const { return n_; }

  /// Raw signature words of BV_r for (v, r); r is 1-based, r ≤ r_max.
  std::span<const std::uint64_t> SignatureWords(VertexId v, std::uint32_t r) const {
    return {signatures_.data() + SigOffset(v, r), words_};
  }

  /// True iff BV_r(v) ∧ query_bv ≠ 0 (Lemma 5 test at vertex granularity).
  bool SignatureIntersects(VertexId v, std::uint32_t r,
                           const BitVector& query_bv) const;

  /// ub_sup_r(v): 0 when hop(v, r) has no edges.
  std::uint32_t SupportBound(VertexId v, std::uint32_t r) const {
    return support_bounds_[Index2(v, r)];
  }

  /// Largest k such that a k-truss containing v exists within hop(v, r_max);
  /// ≥ 2 always (every edge is a 2-truss).
  std::uint32_t CenterTrussBound(VertexId v) const { return center_truss_[v]; }

  /// σ_z(hop(v, r)) for threshold index z ∈ [0, num_thetas()).
  double ScoreBound(VertexId v, std::uint32_t r, std::uint32_t z) const {
    return score_bounds_[Index3(v, r, z)];
  }

  /// Largest z with θ_z ≤ theta, or -1 when theta < θ_1 (score pruning must
  /// then be disabled — no precomputed bound is valid).
  int ThresholdIndex(double theta) const;

  /// The tree-index sort key: the average of all stored bounds of v
  /// (ub_sup_r and σ_z over every r, z), per the paper's index construction.
  double SortKey(VertexId v) const;

  /// True when the data is a zero-copy view of a mapped artifact.
  bool IsMapped() const { return backing_ != nullptr; }

 private:
  friend class IndexCodec;       // legacy TOPLIDX1 serialization
  friend class ArtifactWriter;   // TOPLIDX2 (storage/artifact.h)
  friend class ArtifactReader;
  friend class VertexPrecomputer;  // per-vertex rebuild (Build + incremental)
  friend class IndexUpdater;       // incremental maintenance (index_update.h)

  PrecomputedData() = default;

  /// Points the view spans at the owned vectors (build / legacy-read path).
  void BindOwned() {
    thetas_ = owned_thetas_;
    signatures_ = owned_signatures_;
    support_bounds_ = owned_support_bounds_;
    center_truss_ = owned_center_truss_;
    score_bounds_ = owned_score_bounds_;
  }

  /// Deep copy: materializes `other`'s views into this object's owned
  /// vectors (used by the copy operations above).
  void CopyFrom(const PrecomputedData& other) {
    r_max_ = other.r_max_;
    signature_bits_ = other.signature_bits_;
    words_ = other.words_;
    n_ = other.n_;
    owned_thetas_.assign(other.thetas_.begin(), other.thetas_.end());
    owned_signatures_.assign(other.signatures_.begin(), other.signatures_.end());
    owned_support_bounds_.assign(other.support_bounds_.begin(),
                                 other.support_bounds_.end());
    owned_center_truss_.assign(other.center_truss_.begin(),
                               other.center_truss_.end());
    owned_score_bounds_.assign(other.score_bounds_.begin(),
                               other.score_bounds_.end());
    backing_.reset();
    BindOwned();
  }

  std::size_t SigOffset(VertexId v, std::uint32_t r) const {
    return ((static_cast<std::size_t>(v) * r_max_) + (r - 1)) * words_;
  }
  std::size_t Index2(VertexId v, std::uint32_t r) const {
    return static_cast<std::size_t>(v) * r_max_ + (r - 1);
  }
  std::size_t Index3(VertexId v, std::uint32_t r, std::uint32_t z) const {
    return (static_cast<std::size_t>(v) * r_max_ + (r - 1)) * thetas_.size() + z;
  }

  std::uint32_t r_max_ = 0;
  std::uint32_t signature_bits_ = 0;
  std::size_t words_ = 0;
  std::size_t n_ = 0;

  // Views over the active backing.
  std::span<const double> thetas_;
  std::span<const std::uint64_t> signatures_;      // n * r_max * words_
  std::span<const std::uint32_t> support_bounds_;  // n * r_max
  std::span<const std::uint32_t> center_truss_;    // n
  std::span<const double> score_bounds_;           // n * r_max * m

  // Owned backing; empty when the data is a view over `backing_`.
  std::vector<double> owned_thetas_;
  std::vector<std::uint64_t> owned_signatures_;
  std::vector<std::uint32_t> owned_support_bounds_;
  std::vector<std::uint32_t> owned_center_truss_;
  std::vector<double> owned_score_bounds_;

  // Keeps the mmap alive for artifact-backed instances.
  std::shared_ptr<const MappedFile> backing_;
};

/// \brief The Algorithm-2 inner loop for one vertex, with reusable scratch.
///
/// Vertices are independent in the offline phase: each vertex's rows
/// (signatures, support bounds, center trussness, score bounds) derive from
/// its own r_max-ball plus one global propagation per radius. Build runs one
/// VertexPrecomputer per pool worker over all vertices; incremental
/// maintenance (IndexUpdater) runs the same code over the dirty set only, so
/// the two paths cannot drift apart.
///
/// Thread-compatibility: one instance per thread; Recompute only reads `g`
/// and writes the target vertex's own rows, so concurrent Recompute calls on
/// distinct vertices against one PrecomputedData are race-free.
class VertexPrecomputer {
 public:
  /// Scratch sized to `g`; `g` must outlive the precomputer and be the graph
  /// the rows are recomputed over.
  explicit VertexPrecomputer(const Graph& g);

  /// Recomputes every row of vertex v in `out` over the constructor's graph.
  /// `out` must be heap-backed (not a mapped artifact view) with fully
  /// allocated arrays, and its r_max/thetas/signature shape is taken as-is.
  void Recompute(VertexId v, PrecomputedData* out);

 private:
  const Graph* graph_;
  HopExtractor hop_;
  PropagationEngine engine_;
  LocalGraph lg_;
  // Per-ball truss decomposition on the triangle substrate; its scratch (and
  // the vectors below) persist across the thousands of Recompute calls one
  // worker performs, so the per-vertex loop allocates nothing after warm-up.
  LocalTrussDecomposer decomposer_;
  std::vector<std::uint32_t> ball_trussness_;
  std::vector<std::size_t> members_at_radius_;
  std::vector<std::uint32_t> max_sup_by_radius_;
  std::vector<std::uint32_t> ball_support_;
};

}  // namespace topl

#endif  // TOPL_INDEX_PRECOMPUTE_H_

#ifndef TOPL_INDEX_TREE_INDEX_H_
#define TOPL_INDEX_TREE_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "index/precompute.h"
#include "keywords/bit_vector.h"

namespace topl {

/// Shape parameters of the hierarchical index (§V-B).
struct TreeIndexOptions {
  /// Children per non-leaf node (γ in the paper's complexity analysis).
  std::uint32_t fanout = 8;
  /// Vertices per leaf node.
  std::uint32_t leaf_capacity = 16;
  /// Candidate centers to index; empty = every vertex of the graph. When
  /// set, the ids must be strictly ascending and in range — the tree then
  /// only plans over (and its aggregates only cover) this subset, which is
  /// how a shard indexes exactly its owned centers while its precompute and
  /// graph replica stay full-width. Queries through such a tree return the
  /// candidate-restricted answer.
  std::vector<VertexId> candidates;
};

/// \brief The hierarchical tree index I over the pre-computed data (§V-B).
///
/// Vertices are sorted by the average of their pre-computed bounds (so
/// high-influence vertices cluster under the same subtrees) and packed into
/// leaves of `leaf_capacity`; non-leaf levels group `fanout` children until a
/// single root remains. Every node carries, per radius r:
///  - the OR of the BV_r signatures underneath (index-level Lemma 5),
///  - the max ub_sup_r underneath (index-level Lemma 6),
///  - the max σ_z underneath for every θ_z (index-level Lemma 7 and the
///    best-first traversal key of Algorithm 3).
///
/// Nodes live in one arena; children of a node are contiguous, so a node
/// stores only (first_child, num_children). The index references the
/// PrecomputedData it was built from but does not own it.
///
/// Like Graph and PrecomputedData, the node arena and every aggregate array
/// are std::span views whose backing is either owned heap memory (Build, the
/// legacy codec) or a read-only mmap of a TOPLIDX2 artifact.
class TreeIndex {
 public:
  /// All-uint32 POD so the node arena is mapped verbatim off disk (a bool
  /// field would leave padding bytes and trap representations in the
  /// artifact).
  struct Node {
    std::uint32_t is_leaf = 0;       // 0 or 1
    std::uint32_t first_child = 0;   // arena index (non-leaf)
    std::uint32_t num_children = 0;  // non-leaf
    std::uint32_t begin = 0;         // range in sorted_vertices() (leaf)
    std::uint32_t end = 0;           // leaf
    std::uint32_t num_vertices = 0;  // total vertices underneath
  };

  /// Creates an empty index; assign from Build before use.
  TreeIndex() = default;

  TreeIndex(const TreeIndex&) = delete;
  TreeIndex& operator=(const TreeIndex&) = delete;
  // Owned vectors keep their heap buffers across moves, so the spans stay
  // valid under the default member-wise move.
  TreeIndex(TreeIndex&&) = default;
  TreeIndex& operator=(TreeIndex&&) = default;

  /// Builds the index. `pre` must outlive the returned TreeIndex.
  static Result<TreeIndex> Build(const Graph& g, const PrecomputedData& pre,
                                 const TreeIndexOptions& options = {});

  std::uint32_t root() const { return root_; }
  std::size_t NumNodes() const { return nodes_.size(); }
  const Node& node(std::uint32_t id) const { return nodes_[id]; }
  std::uint32_t height() const { return height_; }

  /// Vertices of a leaf node, in index order.
  std::span<const VertexId> LeafVertices(const Node& n) const {
    return sorted_vertices_.subspan(n.begin, n.end - n.begin);
  }

  std::span<const VertexId> sorted_vertices() const { return sorted_vertices_; }

  /// Aggregated BV_r of node ∧ query ≠ 0?
  bool SignatureIntersects(std::uint32_t node_id, std::uint32_t r,
                           const BitVector& query_bv) const;

  /// Aggregated max ub_sup_r of node.
  std::uint32_t SupportBound(std::uint32_t node_id, std::uint32_t r) const {
    return support_bounds_[Index2(node_id, r)];
  }

  /// Aggregated max center-trussness bound of node (radius-independent).
  std::uint32_t CenterTrussBound(std::uint32_t node_id) const {
    return center_truss_bounds_[node_id];
  }

  /// Aggregated max σ_z of node.
  double ScoreBound(std::uint32_t node_id, std::uint32_t r, std::uint32_t z) const {
    return score_bounds_[Index3(node_id, r, z)];
  }

  const PrecomputedData& precomputed() const { return *pre_; }

  /// True when the index is a zero-copy view of a mapped artifact.
  bool IsMapped() const { return backing_ != nullptr; }

 private:
  friend class IndexCodec;      // legacy TOPLIDX1 serialization
  friend class ArtifactWriter;  // TOPLIDX2 (storage/artifact.h)
  friend class ArtifactReader;
  friend class IndexUpdater;    // incremental maintenance (index_update.h)

  /// Points the view spans at the owned vectors (build / legacy-read path).
  void BindOwned() {
    nodes_ = owned_nodes_;
    sorted_vertices_ = owned_sorted_vertices_;
    signatures_ = owned_signatures_;
    support_bounds_ = owned_support_bounds_;
    center_truss_bounds_ = owned_center_truss_bounds_;
    score_bounds_ = owned_score_bounds_;
  }

  std::size_t SigOffset(std::uint32_t node_id, std::uint32_t r) const {
    return ((static_cast<std::size_t>(node_id) * r_max_) + (r - 1)) * words_;
  }
  std::size_t Index2(std::uint32_t node_id, std::uint32_t r) const {
    return static_cast<std::size_t>(node_id) * r_max_ + (r - 1);
  }
  std::size_t Index3(std::uint32_t node_id, std::uint32_t r, std::uint32_t z) const {
    return (static_cast<std::size_t>(node_id) * r_max_ + (r - 1)) * num_thetas_ + z;
  }

  const PrecomputedData* pre_ = nullptr;
  std::uint32_t r_max_ = 0;
  std::uint32_t num_thetas_ = 0;
  std::size_t words_ = 0;
  std::uint32_t root_ = 0;
  std::uint32_t height_ = 0;

  // Views over the active backing.
  std::span<const Node> nodes_;
  std::span<const VertexId> sorted_vertices_;
  std::span<const std::uint64_t> signatures_;           // per node × r
  std::span<const std::uint32_t> support_bounds_;       // per node × r
  std::span<const std::uint32_t> center_truss_bounds_;  // per node
  std::span<const double> score_bounds_;                // per node × r × z

  // Owned backing; empty when the index is a view over `backing_`.
  std::vector<Node> owned_nodes_;
  std::vector<VertexId> owned_sorted_vertices_;
  std::vector<std::uint64_t> owned_signatures_;
  std::vector<std::uint32_t> owned_support_bounds_;
  std::vector<std::uint32_t> owned_center_truss_bounds_;
  std::vector<double> owned_score_bounds_;

  // Keeps the mmap alive for artifact-backed instances.
  std::shared_ptr<const MappedFile> backing_;
};

// The node arena is stored verbatim in the TOPLIDX2 artifact.
static_assert(std::is_trivially_copyable_v<TreeIndex::Node> &&
                  sizeof(TreeIndex::Node) == 24,
              "TreeIndex::Node is part of the on-disk artifact format");

}  // namespace topl

#endif  // TOPL_INDEX_TREE_INDEX_H_

#include "baselines/atindex.h"

#include <algorithm>

#include "common/rng.h"
#include "common/timer.h"
#include "core/seed_community.h"
#include "graph/local_subgraph.h"
#include "influence/propagation.h"
#include "truss/truss_decomposition.h"

namespace topl {

ATIndex ATIndex::Build(const Graph& g, ThreadPool* pool) {
  ATIndex index;
  index.graph_ = &g;
  index.edge_trussness_ = TrussDecomposition(g, pool);
  index.vertex_trussness_ = VertexTrussness(g, index.edge_trussness_);
  return index;
}

Result<TopLResult> ATIndex::Search(const Query& query) const {
  return Search(query, SearchOptions());
}

Result<TopLResult> ATIndex::Search(const Query& query,
                                   const SearchOptions& options) const {
  TOPL_RETURN_IF_ERROR(query.Validate());
  if (!(options.center_sample_rate > 0.0 && options.center_sample_rate <= 1.0)) {
    return Status::InvalidArgument("center_sample_rate must be in (0, 1]");
  }

  Timer timer;
  TopLResult result;
  QueryStats& stats = result.stats;

  const Graph& g = *graph_;
  SeedCommunityExtractor extractor(g);
  PropagationEngine engine(g);
  Rng rng(options.sample_seed);
  const bool sampling = options.center_sample_rate < 1.0;

  std::vector<CommunityResult> found;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    // Trussness filter: v cannot sit in a k-truss otherwise.
    if (vertex_trussness_[v] < query.k) {
      ++stats.pruned_support;
      continue;
    }
    // Keyword filter on the center.
    if (!HopExtractor::HasAnyKeyword(g, v, query.keywords)) {
      ++stats.pruned_keyword;
      continue;
    }
    if (sampling && rng.NextDouble() >= options.center_sample_rate) continue;

    ++stats.candidates_refined;
    CommunityResult candidate;
    if (!extractor.Extract(v, query, &candidate.community)) continue;
    ++stats.communities_found;
    candidate.influence = engine.Compute(candidate.community.vertices, query.theta);
    found.push_back(std::move(candidate));
  }

  SortCommunityResults(&found);
  if (found.size() > query.top_l) found.resize(query.top_l);
  result.communities = std::move(found);
  stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace topl

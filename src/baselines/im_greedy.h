#ifndef TOPL_BASELINES_IM_GREEDY_H_
#define TOPL_BASELINES_IM_GREEDY_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "influence/propagation.h"

namespace topl {

/// \brief Classic influence maximization (IM) over *individual* seed users —
/// the related-work comparator of §IX.
///
/// IM picks a budget of k arbitrary (possibly scattered) users maximizing
/// spread, with no community structure, no keyword constraint, and no
/// cohesiveness. TopL-ICDE argues that marketing needs *communities* (group
/// buying, mutual reinforcement); this baseline quantifies what raw spread
/// costs to give up for that structure (example_community_vs_im).
///
/// Greedy with the CELF lazy-evaluation optimization under the MIA spread
/// oracle: spread(S) = Σ_v max_{u∈S} upp(u, v) over vertices with value ≥
/// theta — i.e., the same σ the rest of the library uses, so comparisons are
/// apples-to-apples. Monotone + submodular, hence the usual (1 − 1/e)
/// guarantee relative to the optimal seed set under this oracle.
struct ImGreedyOptions {
  /// Number of seed users to select.
  std::uint32_t budget = 5;
  /// Influence threshold θ applied by the MIA spread oracle.
  double theta = 0.2;
  /// Restrict candidate seeds to this list (empty = every vertex).
  std::vector<VertexId> candidates;
};

struct ImGreedyResult {
  std::vector<VertexId> seeds;  // in selection order
  double spread = 0.0;          // MIA spread of the final seed set
  std::uint64_t spread_evaluations = 0;
};

/// Runs CELF greedy IM. Fails on invalid options (budget 0, bad theta).
Result<ImGreedyResult> GreedyInfluenceMaximization(const Graph& g,
                                                   const ImGreedyOptions& options);

}  // namespace topl

#endif  // TOPL_BASELINES_IM_GREEDY_H_

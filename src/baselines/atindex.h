#ifndef TOPL_BASELINES_ATINDEX_H_
#define TOPL_BASELINES_ATINDEX_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/community_result.h"
#include "core/query.h"
#include "graph/graph.h"

namespace topl {

/// \brief The paper's Fig. 2 comparator: a (k,d)-truss-style community
/// search baseline built on a trussness index (§VIII-A, "ATindex").
///
/// Offline it runs a full truss decomposition and stores the trussness of
/// every edge and vertex. Online it (1) filters out centers whose vertex
/// trussness is below k or that lack query keywords, (2) extracts the
/// keyword-constrained r-hop subgraph around each surviving center and its
/// maximal k-truss, (3) computes exact influential scores and keeps the top
/// L. Crucially it has no influence-score bounds, so — unlike Algorithm 3 —
/// it must refine every structurally plausible center.
class ATIndex {
 public:
  struct SearchOptions {
    /// Fraction of candidate centers actually refined. The paper samples
    /// 0.5% of centers on DBLP because the baseline is too slow, then
    /// estimates total time as t_s / rate; benchmarks replicate that.
    double center_sample_rate = 1.0;
    std::uint64_t sample_seed = 42;
  };

  /// Offline phase: truss decomposition over g (parallel support counting
  /// when a pool is given). The graph must outlive the index.
  static ATIndex Build(const Graph& g, ThreadPool* pool = nullptr);

  /// Online phase. With sampling enabled the returned stats contain the
  /// *measured* time over the sample; callers scale it by 1/rate.
  Result<TopLResult> Search(const Query& query,
                            const SearchOptions& options) const;

  /// Online phase with default options (no sampling).
  Result<TopLResult> Search(const Query& query) const;

  const std::vector<std::uint32_t>& edge_trussness() const {
    return edge_trussness_;
  }
  const std::vector<std::uint32_t>& vertex_trussness() const {
    return vertex_trussness_;
  }

 private:
  ATIndex() = default;

  const Graph* graph_ = nullptr;
  std::vector<std::uint32_t> edge_trussness_;
  std::vector<std::uint32_t> vertex_trussness_;
};

}  // namespace topl

#endif  // TOPL_BASELINES_ATINDEX_H_

#include "baselines/im_greedy.h"

#include <queue>

#include "influence/diversity.h"

namespace topl {

Result<ImGreedyResult> GreedyInfluenceMaximization(const Graph& g,
                                                   const ImGreedyOptions& options) {
  if (options.budget == 0) {
    return Status::InvalidArgument("IM budget must be >= 1");
  }
  if (!(options.theta >= 0.0 && options.theta < 1.0)) {
    return Status::InvalidArgument("theta must be in [0, 1)");
  }
  for (VertexId v : options.candidates) {
    if (v >= g.NumVertices()) {
      return Status::InvalidArgument("IM candidate out of range");
    }
  }

  PropagationEngine engine(g);
  ImGreedyResult result;

  // Seed-set spread is exactly the diversity score of single-vertex
  // influenced communities, so the marginal-gain oracle is reused.
  DiversityOracle oracle;
  auto single_spread = [&](VertexId v) {
    return engine.ComputeFromSource(v, options.theta);
  };

  struct Entry {
    double key;
    VertexId vertex;
    std::uint32_t round;
    bool operator<(const Entry& other) const { return key < other.key; }
  };
  std::priority_queue<Entry> heap;
  if (options.candidates.empty()) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      const InfluencedCommunity spread = single_spread(v);
      ++result.spread_evaluations;
      heap.push({spread.score, v, 0});
    }
  } else {
    for (VertexId v : options.candidates) {
      const InfluencedCommunity spread = single_spread(v);
      ++result.spread_evaluations;
      heap.push({spread.score, v, 0});
    }
  }

  std::uint32_t round = 0;
  while (result.seeds.size() < options.budget && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    const InfluencedCommunity spread = single_spread(top.vertex);
    if (top.round == round) {
      // CELF: a current-stamp key is the exact argmax by submodularity.
      oracle.Add(spread);
      result.seeds.push_back(top.vertex);
      ++round;
    } else {
      top.key = oracle.MarginalGain(spread);
      ++result.spread_evaluations;
      top.round = round;
      heap.push(top);
    }
  }
  result.spread = oracle.TotalScore();
  return result;
}

}  // namespace topl

#include "core/dtopl_detector.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/check.h"
#include "common/timer.h"
#include "influence/diversity.h"

namespace topl {

namespace {

// Number of L-subsets of nc candidates, saturating at `cap`.
std::uint64_t BinomialCapped(std::uint64_t nc, std::uint64_t l, std::uint64_t cap) {
  if (l > nc) return 0;
  l = std::min(l, nc - l);
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= l; ++i) {
    // result *= (nc - l + i) / i, with overflow saturation.
    const std::uint64_t numer = nc - l + i;
    if (result > cap * i / numer + 1) return cap + 1;
    result = result * numer / i;
    if (result > cap) return cap + 1;
  }
  return result;
}

}  // namespace

double DiversityOfSelection(std::span<const CommunityResult> candidates,
                            std::span<const std::size_t> selection) {
  DiversityOracle oracle;
  for (std::size_t idx : selection) {
    TOPL_DCHECK(idx < candidates.size(), "selection index out of range");
    oracle.Add(candidates[idx].influence);
  }
  return oracle.TotalScore();
}

std::vector<std::size_t> SelectDiversifiedGreedyWP(
    std::span<const CommunityResult> candidates, std::uint32_t top_l,
    std::uint64_t* gain_evaluations) {
  std::vector<std::size_t> selection;
  if (candidates.empty() || top_l == 0) return selection;

  // Heap entries carry the round at which their key was computed. By
  // submodularity a key computed at an earlier (smaller) selection is an
  // upper bound on the current gain (Lemma 9), so when the top entry's stamp
  // is current it is the exact argmax and every other candidate is pruned
  // without evaluation.
  struct Entry {
    double key;
    std::size_t candidate;
    std::uint32_t round;
    bool operator<(const Entry& other) const { return key < other.key; }
  };
  std::priority_queue<Entry> heap;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    // ΔD(∅) = σ(g): the influential score, already computed.
    heap.push({candidates[i].score(), i, 0});
  }

  DiversityOracle oracle;
  std::uint32_t round = 0;
  std::uint64_t evaluations = 0;
  while (selection.size() < top_l && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    if (top.round == round) {
      oracle.Add(candidates[top.candidate].influence);
      selection.push_back(top.candidate);
      ++round;
    } else {
      top.key = oracle.MarginalGain(candidates[top.candidate].influence);
      ++evaluations;
      top.round = round;
      heap.push(top);
    }
  }
  if (gain_evaluations != nullptr) *gain_evaluations = evaluations;
  return selection;
}

std::vector<std::size_t> SelectDiversifiedGreedyWoP(
    std::span<const CommunityResult> candidates, std::uint32_t top_l,
    std::uint64_t* gain_evaluations) {
  std::vector<std::size_t> selection;
  std::vector<char> used(candidates.size(), 0);
  DiversityOracle oracle;
  std::uint64_t evaluations = 0;
  while (selection.size() < top_l) {
    double best_gain = -1.0;
    std::size_t best_idx = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      const double gain = oracle.MarginalGain(candidates[i].influence);
      ++evaluations;
      if (gain > best_gain) {
        best_gain = gain;
        best_idx = i;
      }
    }
    if (best_idx == candidates.size()) break;  // pool exhausted
    used[best_idx] = 1;
    oracle.Add(candidates[best_idx].influence);
    selection.push_back(best_idx);
  }
  if (gain_evaluations != nullptr) *gain_evaluations = evaluations;
  return selection;
}

Result<std::vector<std::size_t>> SelectDiversifiedOptimal(
    std::span<const CommunityResult> candidates, std::uint32_t top_l,
    std::uint64_t max_subsets) {
  const std::size_t nc = candidates.size();
  const std::uint32_t l = static_cast<std::uint32_t>(
      std::min<std::size_t>(top_l, nc));
  if (l == 0) return std::vector<std::size_t>{};
  if (BinomialCapped(nc, l, max_subsets) > max_subsets) {
    return Status::InvalidArgument(
        "optimal DTopL enumeration would exceed max_subsets; reduce the "
        "candidate pool or L");
  }

  // Plain lexicographic combination walk.
  std::vector<std::size_t> combo(l);
  for (std::uint32_t i = 0; i < l; ++i) combo[i] = i;
  std::vector<std::size_t> best = combo;
  double best_score = DiversityOfSelection(candidates, combo);
  for (;;) {
    // Advance to the next combination.
    int pos = static_cast<int>(l) - 1;
    while (pos >= 0 && combo[pos] == nc - l + pos) --pos;
    if (pos < 0) break;
    ++combo[pos];
    for (std::size_t j = pos + 1; j < l; ++j) combo[j] = combo[j - 1] + 1;

    const double score = DiversityOfSelection(candidates, combo);
    if (score > best_score) {
      best_score = score;
      best = combo;
    }
  }
  return best;
}

DTopLDetector::DTopLDetector(const Graph& g, const PrecomputedData& pre,
                             const TreeIndex& tree)
    : topl_(g, pre, tree) {}

Result<DTopLResult> DTopLDetector::Search(const Query& query,
                                          const DTopLOptions& options) {
  return Search(query, options, SearchControl{});
}

Result<DTopLResult> DTopLDetector::Search(const Query& query,
                                          const DTopLOptions& options,
                                          const SearchControl& control) {
  if (options.n_factor < 1) {
    return Status::InvalidArgument("n_factor must be >= 1");
  }

  // Phase 1: top-(nL) most influential candidates via Algorithm 3, run
  // under the caller's controls (parallel scoring, deadline, cancellation).
  Timer candidate_timer;
  Query pool_query = query;
  pool_query.top_l = query.top_l * options.n_factor;

  SearchControl phase1 = control;
  if (control.on_progress) {
    // Progressive DTopL: after every candidate wave, re-run the (cheap)
    // greedy selection over the pool so far, so the caller watches the
    // *diversified* answer converge, not the raw candidate pool. The
    // selection is L out of ≤ nL communities via the configured greedy
    // variant — negligible next to the wave's extraction + propagation
    // cost. For kOptimal the stream is a Greedy_WP *preview* (exhaustive
    // enumeration per wave would dwarf the search itself); only the final
    // returned answer is the optimal selection.
    phase1.on_progress = [&query, &options,
                          &control](const ProgressiveUpdate& update) {
      std::vector<std::size_t> selection =
          options.algorithm == DTopLAlgorithm::kGreedyWithoutPruning
              ? SelectDiversifiedGreedyWoP(update.communities, query.top_l,
                                           nullptr)
              : SelectDiversifiedGreedyWP(update.communities, query.top_l,
                                          nullptr);
      std::vector<CommunityResult> selected;
      selected.reserve(selection.size());
      for (std::size_t idx : selection) {
        selected.push_back(update.communities[idx]);
      }
      SortCommunityResults(&selected);
      ProgressiveUpdate diversified = update;
      diversified.communities = selected;
      return control.on_progress(diversified);
    };
  }

  Result<TopLResult> pool = topl_.Search(pool_query, options.topl_options, phase1);
  if (!pool.ok()) return pool.status();

  DTopLResult result;
  result.truncated = pool.value().truncated;
  result.score_upper_bound = pool.value().score_upper_bound;
  result.candidate_stats = pool.value().stats;
  result.candidate_seconds = candidate_timer.ElapsedSeconds();
  result.pool_centers.reserve(pool.value().communities.size());
  for (const CommunityResult& c : pool.value().communities) {
    result.pool_centers.push_back(c.community.center);
  }
  if (!pool.value().communities.empty()) {
    result.pool_floor = pool.value().communities.back().score();
  }
  result.pool_full = pool.value().communities.size() >= pool_query.top_l;

  // Phase 2: refinement.
  Timer refine_timer;
  const std::vector<CommunityResult>& candidates = pool.value().communities;
  std::vector<std::size_t> selection;
  switch (options.algorithm) {
    case DTopLAlgorithm::kGreedyWithPruning:
      selection = SelectDiversifiedGreedyWP(candidates, query.top_l,
                                            &result.gain_evaluations);
      break;
    case DTopLAlgorithm::kGreedyWithoutPruning:
      selection = SelectDiversifiedGreedyWoP(candidates, query.top_l,
                                             &result.gain_evaluations);
      break;
    case DTopLAlgorithm::kOptimal: {
      Result<std::vector<std::size_t>> optimal = SelectDiversifiedOptimal(
          candidates, query.top_l, options.max_optimal_subsets);
      if (!optimal.ok()) return optimal.status();
      selection = std::move(optimal).value();
      break;
    }
  }
  result.diversity_score = DiversityOfSelection(candidates, selection);
  result.communities.reserve(selection.size());
  for (std::size_t idx : selection) {
    result.communities.push_back(candidates[idx]);
  }
  result.refine_seconds = refine_timer.ElapsedSeconds();
  return result;
}

}  // namespace topl

#include "core/seed_community.h"

#include <algorithm>

#include "common/check.h"
#include "truss/support.h"

namespace topl {

SeedCommunityExtractor::SeedCommunityExtractor(const Graph& g)
    : graph_(&g), hop_(g) {}

bool SeedCommunityExtractor::Extract(VertexId center, const Query& query,
                                     SeedCommunity* out) {
  out->center = center;
  out->vertices.clear();
  out->edges.clear();
  last_subgraph_edges_ = 0;

  // Step 1: keyword-filtered r-hop BFS. Vertices beyond r hops in the
  // keyword-satisfying subgraph can only be further away in any community
  // (a subgraph), so dropping them is exact, not heuristic.
  if (!hop_.Extract(center, query.radius, query.keywords, &lg_)) {
    return false;
  }
  const std::size_t nv = lg_.NumVertices();
  const std::size_t ne = lg_.NumEdges();
  last_subgraph_edges_ = ne;
  if (ne == 0) return false;

  edge_alive_.assign(ne, 1);
  vertex_alive_.assign(nv, 1);

  // Step 2/3 loop: peel to k-truss, then enforce connectivity + in-subgraph
  // radius from the center; repeat until stable.
  support_ = ComputeLocalEdgeSupports(lg_, edge_alive_);
  for (;;) {
    PeelToKTruss(lg_, query.k, &edge_alive_, &support_);

    // BFS from the center over alive edges, recording in-subgraph distances.
    local_dist_.assign(nv, kUnreachedDistance);
    bfs_queue_.clear();
    local_dist_[0] = 0;  // local id 0 is the center
    bfs_queue_.push_back(0);
    std::size_t head = 0;
    while (head < bfs_queue_.size()) {
      const std::uint32_t u = bfs_queue_[head++];
      const std::uint32_t du = local_dist_[u];
      if (du == query.radius) continue;
      for (const LocalGraph::LocalArc& arc : lg_.Neighbors(u)) {
        if (!edge_alive_[arc.local_edge]) continue;
        if (local_dist_[arc.to] != kUnreachedDistance) continue;
        local_dist_[arc.to] = du + 1;
        bfs_queue_.push_back(arc.to);
      }
    }

    // Kill vertices that are unreachable within r (this covers both
    // disconnection and radius violations); kill their incident edges.
    bool changed = false;
    for (std::uint32_t l = 0; l < nv; ++l) {
      if (!vertex_alive_[l]) continue;
      if (local_dist_[l] != kUnreachedDistance) continue;
      vertex_alive_[l] = 0;
      for (const LocalGraph::LocalArc& arc : lg_.Neighbors(l)) {
        if (edge_alive_[arc.local_edge]) {
          edge_alive_[arc.local_edge] = 0;
          changed = true;
        }
      }
    }
    if (!changed) break;
    // Supports must be recomputed against the reduced edge set before the
    // next peel: decrements for bulk-killed edges were not propagated.
    support_ = ComputeLocalEdgeSupports(lg_, edge_alive_);
  }

  // Collect the surviving community. The center must have an alive edge:
  // a k-truss community is a set of edges, so an isolated center means "no
  // community for this center".
  bool center_has_edge = false;
  for (const LocalGraph::LocalArc& arc : lg_.Neighbors(0)) {
    if (edge_alive_[arc.local_edge]) {
      center_has_edge = true;
      break;
    }
  }
  if (!center_has_edge) return false;

  for (std::uint32_t l = 0; l < nv; ++l) {
    if (!vertex_alive_[l] || local_dist_[l] == kUnreachedDistance) continue;
    // Drop vertices that lost all their edges to peeling: they are no longer
    // part of the k-truss edge structure.
    bool has_edge = false;
    for (const LocalGraph::LocalArc& arc : lg_.Neighbors(l)) {
      if (edge_alive_[arc.local_edge]) {
        has_edge = true;
        break;
      }
    }
    if (has_edge) out->vertices.push_back(lg_.global_ids[l]);
  }
  for (std::uint32_t e = 0; e < ne; ++e) {
    if (edge_alive_[e]) out->edges.push_back(lg_.global_edge_ids[e]);
  }
  std::sort(out->vertices.begin(), out->vertices.end());
  TOPL_DCHECK(std::binary_search(out->vertices.begin(), out->vertices.end(), center),
              "extractor lost the center vertex");
  return true;
}

}  // namespace topl

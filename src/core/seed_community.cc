#include "core/seed_community.h"

#include <algorithm>

#include "common/check.h"
#include "truss/support.h"

namespace topl {

namespace {

// A radius/connectivity round whose doomed-edge count reaches this fraction
// of the surviving edges is cheaper to absorb with one oriented from-scratch
// recompute than with per-edge triangle decrements: killing an edge costs
// O(deg a + deg b) while a full recompute costs O(Σ alive min-deg), so the
// crossover sits near a quarter of the alive set. Radius enforcement often
// severs whole fringes of a ball at once, which is exactly the regime where
// naive incremental deletion would be slower than the reference path.
constexpr std::size_t kBulkRecomputeDivisor = 4;

}  // namespace

SeedCommunityExtractor::SeedCommunityExtractor(const Graph& g)
    : graph_(&g), hop_(g) {}

bool SeedCommunityExtractor::CollectOutOfRadius(const LocalGraph& ball,
                                                std::uint32_t radius) {
  const std::size_t nv = ball.NumVertices();

  // BFS from the center over alive edges, recording in-subgraph distances.
  local_dist_.assign(nv, kUnreachedDistance);
  bfs_queue_.clear();
  local_dist_[0] = 0;  // local id 0 is the center
  bfs_queue_.push_back(0);
  std::size_t head = 0;
  while (head < bfs_queue_.size()) {
    const std::uint32_t u = bfs_queue_[head++];
    const std::uint32_t du = local_dist_[u];
    if (du == radius) continue;
    for (const LocalGraph::LocalArc& arc : ball.Neighbors(u)) {
      if (!edge_alive_[arc.local_edge]) continue;
      if (local_dist_[arc.to] != kUnreachedDistance) continue;
      local_dist_[arc.to] = du + 1;
      bfs_queue_.push_back(arc.to);
    }
  }

  // Kill vertices that are unreachable within r (this covers both
  // disconnection and radius violations); collect their incident alive
  // edges. Each doomed edge is collected exactly once: when both endpoints
  // die this round, the second one sees the other already marked dead.
  doomed_.clear();
  for (std::uint32_t l = 0; l < nv; ++l) {
    if (!vertex_alive_[l]) continue;
    if (local_dist_[l] != kUnreachedDistance) continue;
    vertex_alive_[l] = 0;
    for (const LocalGraph::LocalArc& arc : ball.Neighbors(l)) {
      if (edge_alive_[arc.local_edge] && vertex_alive_[arc.to]) {
        doomed_.push_back(arc.local_edge);
      }
    }
  }
  return !doomed_.empty();
}

bool SeedCommunityExtractor::Extract(VertexId center, const Query& query,
                                     Mode mode, SeedCommunity* out) {
  out->center = center;
  out->vertices.clear();
  out->edges.clear();
  last_subgraph_edges_ = 0;
  last_triangles_inspected_ = 0;
  last_support_recomputes_avoided_ = 0;

  // Step 1: keyword-filtered r-hop BFS. Vertices beyond r hops in the
  // keyword-satisfying subgraph can only be further away in any community
  // (a subgraph), so dropping them is exact, not heuristic.
  if (!hop_.Extract(center, query.radius, query.keywords, &lg_)) {
    return false;
  }
  return Verify(lg_, query, mode, out);
}

bool SeedCommunityExtractor::Verify(const LocalGraph& ball, const Query& query,
                                    Mode mode, SeedCommunity* out) {
  out->center = ball.center;
  out->vertices.clear();
  out->edges.clear();
  last_triangles_inspected_ = 0;
  last_support_recomputes_avoided_ = 0;

  const std::size_t nv = ball.NumVertices();
  const std::size_t ne = ball.NumEdges();
  last_subgraph_edges_ = ne;
  if (ne == 0) return false;

  edge_alive_.assign(ne, 1);
  vertex_alive_.assign(nv, 1);

  // Step 2/3 loop: peel to k-truss, then enforce connectivity + in-subgraph
  // radius from the center; repeat until stable.
  if (mode == Mode::kIncremental) {
    substrate_.Bind(ball);
    substrate_.ResetTriangleCounter();
    // Everything is alive on entry, so the unfiltered enumeration applies;
    // the filtered one only runs after bulk kills below.
    substrate_.ComputeAllSupports(&support_);
    substrate_.SeedPeelQueue(query.k, edge_alive_, support_);
    std::size_t alive_edges = ne;
    alive_edges -= substrate_.Peel(query.k, &edge_alive_, &support_);
    if (alive_edges == ne) {
      // The whole ball is already a k-truss. Its BFS construction puts every
      // vertex within r of the center over surviving (= all) edges, so the
      // radius/connectivity fixpoint holds by construction — no BFS needed.
      local_dist_.assign(nv, 0);
    } else {
      for (;;) {
        if (!CollectOutOfRadius(ball, query.radius)) break;
        if (doomed_.size() * kBulkRecomputeDivisor >= alive_edges) {
          // Most of the subgraph died; one oriented recompute over the
          // survivors beats per-edge triangle decrements.
          for (const std::uint32_t e : doomed_) edge_alive_[e] = 0;
          substrate_.ComputeSupports(edge_alive_, &support_);
          substrate_.SeedPeelQueue(query.k, edge_alive_, support_);
        } else {
          // The common trickle: decrement exactly the triangles the doomed
          // edges close; new deficits re-enter the persistent peel queue, and
          // the reference path's from-scratch recompute is skipped entirely.
          substrate_.KillEdges(doomed_, query.k, &edge_alive_, &support_);
          ++last_support_recomputes_avoided_;
        }
        alive_edges -= doomed_.size();
        alive_edges -= substrate_.Peel(query.k, &edge_alive_, &support_);
      }
    }
    last_triangles_inspected_ = substrate_.triangles_inspected();
  } else {
    ComputeLocalEdgeSupports(ball, edge_alive_, &support_);
    for (;;) {
      PeelToKTruss(ball, query.k, &edge_alive_, &support_);
      if (!CollectOutOfRadius(ball, query.radius)) break;
      for (const std::uint32_t e : doomed_) edge_alive_[e] = 0;
      // Supports must be recomputed against the reduced edge set before the
      // next peel: decrements for bulk-killed edges were not propagated.
      ComputeLocalEdgeSupports(ball, edge_alive_, &support_);
    }
  }

  // Collect the surviving community. The center must have an alive edge:
  // a k-truss community is a set of edges, so an isolated center means "no
  // community for this center".
  bool center_has_edge = false;
  for (const LocalGraph::LocalArc& arc : ball.Neighbors(0)) {
    if (edge_alive_[arc.local_edge]) {
      center_has_edge = true;
      break;
    }
  }
  if (!center_has_edge) return false;

  for (std::uint32_t l = 0; l < nv; ++l) {
    if (!vertex_alive_[l] || local_dist_[l] == kUnreachedDistance) continue;
    // Drop vertices that lost all their edges to peeling: they are no longer
    // part of the k-truss edge structure.
    bool has_edge = false;
    for (const LocalGraph::LocalArc& arc : ball.Neighbors(l)) {
      if (edge_alive_[arc.local_edge]) {
        has_edge = true;
        break;
      }
    }
    if (has_edge) out->vertices.push_back(ball.global_ids[l]);
  }
  for (std::uint32_t e = 0; e < ne; ++e) {
    if (edge_alive_[e]) out->edges.push_back(ball.global_edge_ids[e]);
  }
  std::sort(out->vertices.begin(), out->vertices.end());
  TOPL_DCHECK(
      std::binary_search(out->vertices.begin(), out->vertices.end(), out->center),
      "extractor lost the center vertex");
  return true;
}

}  // namespace topl

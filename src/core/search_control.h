#ifndef TOPL_CORE_SEARCH_CONTROL_H_
#define TOPL_CORE_SEARCH_CONTROL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>

#include "common/thread_pool.h"

namespace topl {

struct CommunityResult;

/// \brief Shared cooperative-cancellation flag for in-flight queries.
///
/// Copyable handle over one atomic flag: the submitter keeps a copy, hands
/// another to the query, and may Cancel() from any thread at any time. A
/// default-constructed token is empty (never cancelled) and costs nothing to
/// check, so the non-cancellable fast path stays branch-only.
class CancelToken {
 public:
  /// Creates a token that can actually be cancelled.
  static CancelToken Create() {
    CancelToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  /// Requests cancellation; the query stops at its next checkpoint (wave
  /// boundary) and returns its best-so-far answer with truncated=true.
  void Cancel() const {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

  /// False for default-constructed tokens (nothing will ever cancel them).
  bool cancellable() const { return flag_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// \brief One intermediate answer of a progressive search.
///
/// `communities` is the current best-L set in canonical order (σ desc,
/// center asc); `upper_bound` is the largest influential score any community
/// *not yet refined* could still have, so the caller can stop as soon as the
/// gap between communities[L-1].score() and `upper_bound` is small enough.
/// −∞ once the search space is exhausted.
struct ProgressiveUpdate {
  std::span<const CommunityResult> communities;
  double upper_bound = 0.0;
  /// Wave number (1-based) that produced this update.
  std::uint64_t wave = 0;
  /// Candidate refinements performed so far.
  std::uint64_t candidates_refined = 0;
};

/// Invoked after every completed wave of a progressive search. Return false
/// to stop the search early (the query then returns best-so-far with
/// truncated=true). The spans inside the update are only valid during the
/// call. Invoked from the query's driving thread, never concurrently.
using ProgressiveCallback = std::function<bool(const ProgressiveUpdate&)>;

/// \brief Runtime execution controls of one TopL/DTopL search: intra-query
/// parallelism, deadline/budget, cooperative cancellation, and progressive
/// result streaming. Distinct from QueryOptions, which selects *algorithmic*
/// toggles (pruning rules) — a SearchControl never changes final answers,
/// only how (and whether to completion) they are computed.
struct SearchControl {
  /// Worker pool for intra-query parallelism. nullptr = fully sequential.
  /// Candidate refinement (seed-community extraction + influence
  /// propagation, the dominant cost) is fanned out over the pool in chunks;
  /// planning and merging stay on the calling thread. Final results are
  /// byte-identical to the sequential path.
  ThreadPool* pool = nullptr;

  /// Candidates per scoring chunk when `pool` is set. Small chunks
  /// load-balance better; large chunks amortize task overhead.
  std::uint32_t chunk_size = 8;

  /// Per-query wall-clock budget in seconds; 0 = unlimited. When the budget
  /// expires mid-search the query returns its best-so-far communities with
  /// truncated=true instead of failing.
  double deadline_seconds = 0.0;

  /// Cooperative cancellation; checked at every wave boundary.
  CancelToken cancel;

  /// Progressive streaming (may be empty). See ProgressiveCallback.
  ProgressiveCallback on_progress;

  /// True when any control is active that requires wave-boundary checks.
  bool NeedsCheckpoints() const {
    return deadline_seconds > 0.0 || cancel.cancellable() ||
           static_cast<bool>(on_progress);
  }
};

/// \brief Deadline tracker: captures the start time at construction so every
/// stage measures against the same clock.
class DeadlineClock {
 public:
  explicit DeadlineClock(double budget_seconds)
      : start_(std::chrono::steady_clock::now()), budget_(budget_seconds) {}

  bool Expired() const {
    if (budget_ <= 0.0) return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start_;
    return elapsed.count() >= budget_;
  }

 private:
  std::chrono::steady_clock::time_point start_;
  double budget_;
};

}  // namespace topl

#endif  // TOPL_CORE_SEARCH_CONTROL_H_

#ifndef TOPL_CORE_SEED_COMMUNITY_H_
#define TOPL_CORE_SEED_COMMUNITY_H_

#include <cstdint>
#include <vector>

#include "core/query.h"
#include "graph/graph.h"
#include "graph/local_subgraph.h"
#include "graph/types.h"
#include "truss/local_truss.h"

namespace topl {

/// \brief A seed community g (Definition 2): the maximal connected k-truss
/// around `center` within radius r whose vertices all carry a query keyword.
struct SeedCommunity {
  VertexId center = kInvalidVertex;
  /// Member vertices, sorted ascending; includes `center`.
  std::vector<VertexId> vertices;
  /// Member edges as global EdgeIds (the k-truss structure), unordered.
  std::vector<EdgeId> edges;

  std::size_t size() const { return vertices.size(); }
  bool empty() const { return vertices.empty(); }
};

/// \brief Extracts the canonical seed community of a center vertex.
///
/// For a center v_q and query (Q, k, r) the satisfying subgraphs of
/// Definition 2 are closed under union (support grows and distances shrink
/// under union), so a unique *maximal* seed community exists. It is the
/// greatest fixpoint of alternating
///
///   1. keyword-filtered r-hop BFS from v_q (bullet 4 + a radius cap),
///   2. k-truss peeling (bullet 3),
///   3. re-check of BFS distance from v_q *inside the surviving subgraph*
///      and of connectivity to v_q (bullets 1–2),
///
/// where step 3 kills violating vertices and loops back to 2 until nothing
/// changes. Deleting a violator is safe because it violates Definition 2 in
/// every subgraph of the current candidate, so the fixpoint is exactly the
/// maximal community (DESIGN.md §3).
///
/// The default (kIncremental) execution runs on the triangle substrate
/// (truss/local_truss.h): edge supports are computed once by oriented
/// triangle enumeration, every radius/connectivity kill decrements only the
/// triangles it destroys, and the peel queue survives across fixpoint
/// rounds — O(triangles touched) instead of O(rounds × full enumeration),
/// with zero heap allocation after warm-up. kReference preserves the
/// from-scratch recompute-per-round path; both produce byte-identical
/// communities (enforced by tests/truss_substrate_test.cc and
/// bench_seed_extraction).
///
/// Holds per-instance scratch; create one per thread and reuse across
/// queries.
class SeedCommunityExtractor {
 public:
  /// Which verification pipeline Extract runs. Answers never differ; the
  /// reference path exists as the A/B anchor for the substrate.
  enum class Mode {
    kIncremental,  ///< triangle substrate, incremental support maintenance
    kReference,    ///< from-scratch support recompute after every kill round
  };

  explicit SeedCommunityExtractor(const Graph& g);

  /// Computes the seed community centered at `center` for `query`.
  /// Returns false (and clears *out) when no non-empty community exists —
  /// the center lacks query keywords, or peeling eliminates it. Communities
  /// contain at least one edge (an isolated center is not a community).
  bool Extract(VertexId center, const Query& query, SeedCommunity* out) {
    return Extract(center, query, Mode::kIncremental, out);
  }

  /// Extract with an explicit pipeline choice (benchmarks, equivalence
  /// sweeps, and QueryOptions::use_reference_extraction).
  bool Extract(VertexId center, const Query& query, Mode mode,
               SeedCommunity* out);

  /// Verification only: runs the k-truss + connectivity + radius fixpoint
  /// over a caller-materialized ball (hop(center, query.radius) extracted
  /// under the query's keyword filter, as HopExtractor produces). Extract is
  /// exactly materialize-then-Verify; the split lets callers that already
  /// hold the ball — bench_seed_extraction's A/B timing, future ball-sharing
  /// batch paths — pay for verification alone. `ball` is only read and must
  /// stay alive for the duration of the call.
  bool Verify(const LocalGraph& ball, const Query& query, Mode mode,
              SeedCommunity* out);

  /// The number of local-subgraph edges inspected by the last Extract call
  /// (cost introspection for benchmarks).
  std::size_t last_subgraph_edges() const { return last_subgraph_edges_; }

  /// Alive triangles the substrate enumerated during the last Extract call
  /// (0 on the reference path, which does not meter its intersections).
  std::uint64_t last_triangles_inspected() const {
    return last_triangles_inspected_;
  }

  /// Fixpoint rounds of the last Extract call whose bulk kills were absorbed
  /// by incremental support decrements — each one a full from-scratch
  /// ComputeLocalEdgeSupports pass the reference path would have run.
  std::uint64_t last_support_recomputes_avoided() const {
    return last_support_recomputes_avoided_;
  }

 private:
  /// Finds vertices unreachable within r in the peeled subgraph (BFS over
  /// alive edges from the center into local_dist_), kills them, and collects
  /// their still-alive incident edges into doomed_ — each dying edge exactly
  /// once. Returns true when any edge is doomed. The caller decides how the
  /// doomed edges leave `support_` (incremental decrements vs recompute).
  bool CollectOutOfRadius(const LocalGraph& ball, std::uint32_t radius);

  const Graph* graph_;
  HopExtractor hop_;
  LocalGraph lg_;
  TriangleSubstrate substrate_;
  // Scratch reused across calls.
  std::vector<char> edge_alive_;
  std::vector<char> vertex_alive_;
  std::vector<std::uint32_t> support_;
  std::vector<std::uint32_t> local_dist_;
  std::vector<std::uint32_t> bfs_queue_;
  std::vector<std::uint32_t> doomed_;
  std::size_t last_subgraph_edges_ = 0;
  std::uint64_t last_triangles_inspected_ = 0;
  std::uint64_t last_support_recomputes_avoided_ = 0;
};

}  // namespace topl

#endif  // TOPL_CORE_SEED_COMMUNITY_H_

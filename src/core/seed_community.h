#ifndef TOPL_CORE_SEED_COMMUNITY_H_
#define TOPL_CORE_SEED_COMMUNITY_H_

#include <cstdint>
#include <vector>

#include "core/query.h"
#include "graph/graph.h"
#include "graph/local_subgraph.h"
#include "graph/types.h"

namespace topl {

/// \brief A seed community g (Definition 2): the maximal connected k-truss
/// around `center` within radius r whose vertices all carry a query keyword.
struct SeedCommunity {
  VertexId center = kInvalidVertex;
  /// Member vertices, sorted ascending; includes `center`.
  std::vector<VertexId> vertices;
  /// Member edges as global EdgeIds (the k-truss structure), unordered.
  std::vector<EdgeId> edges;

  std::size_t size() const { return vertices.size(); }
  bool empty() const { return vertices.empty(); }
};

/// \brief Extracts the canonical seed community of a center vertex.
///
/// For a center v_q and query (Q, k, r) the satisfying subgraphs of
/// Definition 2 are closed under union (support grows and distances shrink
/// under union), so a unique *maximal* seed community exists. It is the
/// greatest fixpoint of alternating
///
///   1. keyword-filtered r-hop BFS from v_q (bullet 4 + a radius cap),
///   2. k-truss peeling (bullet 3),
///   3. re-check of BFS distance from v_q *inside the surviving subgraph*
///      and of connectivity to v_q (bullets 1–2),
///
/// where step 3 kills violating vertices and loops back to 2 until nothing
/// changes. Deleting a violator is safe because it violates Definition 2 in
/// every subgraph of the current candidate, so the fixpoint is exactly the
/// maximal community (DESIGN.md §3).
///
/// Holds per-instance scratch; create one per thread and reuse across
/// queries.
class SeedCommunityExtractor {
 public:
  explicit SeedCommunityExtractor(const Graph& g);

  /// Computes the seed community centered at `center` for `query`.
  /// Returns false (and clears *out) when no non-empty community exists —
  /// the center lacks query keywords, or peeling eliminates it. Communities
  /// contain at least one edge (an isolated center is not a community).
  bool Extract(VertexId center, const Query& query, SeedCommunity* out);

  /// The number of local-subgraph edges inspected by the last Extract call
  /// (cost introspection for benchmarks).
  std::size_t last_subgraph_edges() const { return last_subgraph_edges_; }

 private:
  const Graph* graph_;
  HopExtractor hop_;
  LocalGraph lg_;
  // Scratch reused across calls.
  std::vector<char> edge_alive_;
  std::vector<char> vertex_alive_;
  std::vector<std::uint32_t> support_;
  std::vector<std::uint32_t> local_dist_;
  std::vector<std::uint32_t> bfs_queue_;
  std::size_t last_subgraph_edges_ = 0;
};

}  // namespace topl

#endif  // TOPL_CORE_SEED_COMMUNITY_H_

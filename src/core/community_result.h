#ifndef TOPL_CORE_COMMUNITY_RESULT_H_
#define TOPL_CORE_COMMUNITY_RESULT_H_

#include <algorithm>
#include <limits>
#include <vector>

#include "core/query.h"
#include "core/seed_community.h"
#include "influence/propagation.h"

namespace topl {

/// \brief One answer community: the seed community g, its influenced
/// community gInf (vertices + cpp values), and σ(g).
struct CommunityResult {
  SeedCommunity community;
  InfluencedCommunity influence;

  double score() const { return influence.score; }
};

/// Canonical strict ordering of answer communities: σ desc, center asc.
/// Centers are unique per candidate, so this is a *total* order — which is
/// what makes the parallel scoring path deterministic: the top-L of any
/// candidate set under a total order is one specific set of communities, no
/// matter in which order the candidates were refined and merged.
inline bool BetterCommunity(const CommunityResult& a, const CommunityResult& b) {
  if (a.score() != b.score()) return a.score() > b.score();
  return a.community.center < b.community.center;
}

/// \brief A TopL-ICDE answer: up to L communities sorted by σ descending
/// (ties broken by center id for determinism), plus execution counters.
struct TopLResult {
  std::vector<CommunityResult> communities;
  QueryStats stats;

  /// True when the search stopped before exhausting the candidate space —
  /// deadline expiry, cancellation, or a progressive callback returning
  /// false. `communities` then holds the best answers found so far.
  bool truncated = false;

  /// Largest influential score any community *not* in `communities` could
  /// still have. −∞ once the candidate space is exhausted (the answer is
  /// exact); for truncated answers this bounds how much better a missed
  /// community could be — the anytime quality gap.
  double score_upper_bound = -std::numeric_limits<double>::infinity();

  /// True when admission control shed the full-work path and served this
  /// answer as a best-effort anytime result instead (engine/engine.h
  /// overload handling). Implies `truncated` semantics: `communities` is a
  /// valid prefix of the exact answer and `score_upper_bound` still bounds
  /// what was missed.
  bool degraded = false;
};

/// Sorts `communities` into canonical answer order (see BetterCommunity).
inline void SortCommunityResults(std::vector<CommunityResult>* communities) {
  std::sort(communities->begin(), communities->end(), BetterCommunity);
}

}  // namespace topl

#endif  // TOPL_CORE_COMMUNITY_RESULT_H_

#ifndef TOPL_CORE_COMMUNITY_RESULT_H_
#define TOPL_CORE_COMMUNITY_RESULT_H_

#include <algorithm>
#include <vector>

#include "core/query.h"
#include "core/seed_community.h"
#include "influence/propagation.h"

namespace topl {

/// \brief One answer community: the seed community g, its influenced
/// community gInf (vertices + cpp values), and σ(g).
struct CommunityResult {
  SeedCommunity community;
  InfluencedCommunity influence;

  double score() const { return influence.score; }
};

/// \brief A TopL-ICDE answer: up to L communities sorted by σ descending
/// (ties broken by center id for determinism), plus execution counters.
struct TopLResult {
  std::vector<CommunityResult> communities;
  QueryStats stats;
};

/// Sorts `communities` into canonical answer order (σ desc, center asc).
inline void SortCommunityResults(std::vector<CommunityResult>* communities) {
  std::sort(communities->begin(), communities->end(),
            [](const CommunityResult& a, const CommunityResult& b) {
              if (a.score() != b.score()) return a.score() > b.score();
              return a.community.center < b.community.center;
            });
}

}  // namespace topl

#endif  // TOPL_CORE_COMMUNITY_RESULT_H_

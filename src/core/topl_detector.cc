#include "core/topl_detector.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <queue>
#include <span>
#include <utility>

#include "common/timer.h"
#include "graph/local_subgraph.h"
#include "keywords/bit_vector.h"

namespace topl {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Merge stage: keeps the best L communities seen so far under the canonical
// total order (σ desc, center asc) and the running threshold σ_L (−∞ until L
// communities are collected). L is small (paper sweeps 2–10), so linear
// eviction is cheaper than heap bookkeeping.
//
// The total order (rather than score alone) is what makes merging
// commutative: the top-L of any refined candidate set is one specific set of
// communities, so sequential refinement, chunked parallel refinement, and
// any interleaving of the two converge to identical contents.
class TopLCollector {
 public:
  explicit TopLCollector(std::uint32_t capacity) : capacity_(capacity) {}

  bool Full() const { return entries_.size() >= capacity_; }

  double threshold() const { return Full() ? entries_[worst_].score() : kNegInf; }

  /// Returns true when the offer changed the collector's contents.
  bool Offer(CommunityResult&& result) {
    if (!Full()) {
      entries_.push_back(std::move(result));
      if (Full()) RecomputeWorst();
      return true;
    }
    if (!BetterCommunity(result, entries_[worst_])) return false;
    entries_[worst_] = std::move(result);
    RecomputeWorst();
    return true;
  }

  /// Current contents, unordered (snapshot callers sort a copy).
  const std::vector<CommunityResult>& entries() const { return entries_; }

  std::vector<CommunityResult> Take() { return std::move(entries_); }

 private:
  void RecomputeWorst() {
    worst_ = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (BetterCommunity(entries_[worst_], entries_[i])) worst_ = i;
    }
  }

  std::uint32_t capacity_;
  std::vector<CommunityResult> entries_;
  std::size_t worst_ = 0;
};

// Plan stage: best-first cursor over the tree index. Gather() pops heap
// entries, applies the index-level pruning rules to children and the
// candidate-level rules to leaf vertices, and appends surviving centers to
// the wave. With no usable score bound (θ < θ_1) every key is +∞ and the
// traversal degrades to an exhaustive filtered scan, which is still correct.
//
// Every threshold comparison is *strict* (< rather than ≤): a candidate
// whose upper bound ties the current σ_L could still displace the collector's
// worst entry through the center-id tie-break, so it must be refined. This
// keeps the answer canonical — identical for sequential, parallel, and
// brute-force evaluation — at the cost of refining the (measure-zero) exact
// ties that the ≤ rule would have skipped.
class PlanCursor {
 public:
  PlanCursor(const Graph& g, const PrecomputedData& pre, const TreeIndex& tree,
             const Query& query, const QueryOptions& options, int z,
             const BitVector& query_bv)
      : graph_(&g),
        pre_(&pre),
        tree_(&tree),
        query_(&query),
        options_(&options),
        z_(z),
        score_pruning_(options.use_score_pruning && z >= 0),
        required_support_(query.k >= 2 ? query.k - 2 : 0),
        query_bv_(&query_bv) {
    heap_.emplace(NodeKey(tree.root()), tree.root());
  }

  bool Done() const { return heap_.empty(); }

  /// Upper bound on the influential score of every candidate not yet
  /// gathered. +∞ when score bounds are unusable, −∞ once exhausted.
  double FrontierBound() const {
    return heap_.empty() ? kNegInf : heap_.top().first;
  }

  /// Appends surviving candidate centers to *out until at least
  /// `min_candidates` have been gathered this call (the final leaf may
  /// overshoot) or the traversal finishes. `threshold` is the collector's
  /// current σ_L (only meaningful when `threshold_valid`); popping an entry
  /// strictly below it terminates the whole search (Algorithm 3, lines 7–8:
  /// every remaining entry's key is ≤ the popped key).
  void Gather(bool threshold_valid, double threshold, std::size_t min_candidates,
              std::vector<VertexId>* out, QueryStats* stats) {
    const std::uint32_t r = query_->radius;
    std::size_t gathered = 0;
    while (!heap_.empty() && gathered < min_candidates) {
      const auto [key, node_id] = heap_.top();
      heap_.pop();
      ++stats->heap_pops;

      if (score_pruning_ && threshold_valid && key < threshold) {
        stats->pruned_termination += tree_->node(node_id).num_vertices;
        while (!heap_.empty()) {
          stats->pruned_termination += tree_->node(heap_.top().second).num_vertices;
          heap_.pop();
        }
        return;
      }

      const TreeIndex::Node& node = tree_->node(node_id);
      ++stats->index_nodes_visited;

      if (node.is_leaf) {
        for (VertexId v : tree_->LeafVertices(node)) {
          // Candidate-level pruning (Lemmas 1, 2, 4) on hop(v, r).
          if (options_->use_keyword_pruning &&
              (!pre_->SignatureIntersects(v, r, *query_bv_) ||
               !HopExtractor::HasAnyKeyword(*graph_, v, query_->keywords))) {
            // Either no vertex of hop(v, r) can hold a query keyword, or the
            // center itself does not (and the center is in every g).
            ++stats->pruned_keyword;
            continue;
          }
          if (options_->use_support_pruning &&
              (pre_->SupportBound(v, r) < required_support_ ||
               (options_->use_center_truss_bound &&
                pre_->CenterTrussBound(v) < query_->k))) {
            // Lemma 2 on the ball's max edge support, plus the sharper
            // center-trussness form (no k-truss through v exists in the ball).
            ++stats->pruned_support;
            continue;
          }
          if (score_pruning_ && threshold_valid &&
              pre_->ScoreBound(v, r, static_cast<std::uint32_t>(z_)) < threshold) {
            ++stats->pruned_score;
            continue;
          }
          out->push_back(v);
          ++gathered;
        }
      } else {
        for (std::uint32_t c = 0; c < node.num_children; ++c) {
          const std::uint32_t child = node.first_child + c;
          // Index-level pruning (Lemmas 5–7).
          if (options_->use_keyword_pruning &&
              !tree_->SignatureIntersects(child, r, *query_bv_)) {
            stats->pruned_keyword += tree_->node(child).num_vertices;
            continue;
          }
          if (options_->use_support_pruning &&
              (tree_->SupportBound(child, r) < required_support_ ||
               (options_->use_center_truss_bound &&
                tree_->CenterTrussBound(child) < query_->k))) {
            stats->pruned_support += tree_->node(child).num_vertices;
            continue;
          }
          const double child_key = NodeKey(child);
          if (score_pruning_ && threshold_valid && child_key < threshold) {
            stats->pruned_score += tree_->node(child).num_vertices;
            continue;
          }
          heap_.emplace(child_key, child);
        }
      }
    }
  }

 private:
  double NodeKey(std::uint32_t id) const {
    return z_ >= 0
               ? tree_->ScoreBound(id, query_->radius, static_cast<std::uint32_t>(z_))
               : std::numeric_limits<double>::infinity();
  }

  const Graph* graph_;
  const PrecomputedData* pre_;
  const TreeIndex* tree_;
  const Query* query_;
  const QueryOptions* options_;
  const int z_;
  const bool score_pruning_;
  const std::uint32_t required_support_;
  const BitVector* query_bv_;

  // Max-heap over index entries, keyed by the aggregated score bound.
  using HeapEntry = std::pair<double, std::uint32_t>;  // (key, node id)
  std::priority_queue<HeapEntry> heap_;
};

// Score stage: refines one chunk of candidate centers with the given
// share-nothing scratch. Results and counters land in chunk-local state, so
// concurrent chunks never touch shared memory.
struct ChunkOutput {
  std::vector<CommunityResult> found;
  std::uint64_t refined = 0;
  std::uint64_t skipped = 0;  // deadline/cancel hit before these candidates
  std::uint64_t triangles_inspected = 0;
  std::uint64_t support_recomputes_avoided = 0;
};

void RefineChunk(std::span<const VertexId> candidates, const Query& query,
                 SeedCommunityExtractor::Mode mode,
                 SeedCommunityExtractor& extractor, PropagationEngine& engine,
                 const CancelToken& cancel, const DeadlineClock& deadline,
                 ChunkOutput* out) {
  if (cancel.cancelled() || deadline.Expired()) {
    out->skipped += candidates.size();
    return;
  }
  for (VertexId v : candidates) {
    ++out->refined;
    CommunityResult candidate;
    const bool found = extractor.Extract(v, query, mode, &candidate.community);
    out->triangles_inspected += extractor.last_triangles_inspected();
    out->support_recomputes_avoided += extractor.last_support_recomputes_avoided();
    if (!found) continue;
    candidate.influence = engine.Compute(candidate.community.vertices, query.theta);
    out->found.push_back(std::move(candidate));
  }
}

}  // namespace

TopLDetector::TopLDetector(const Graph& g, const PrecomputedData& pre,
                           const TreeIndex& tree)
    : graph_(&g),
      pre_(&pre),
      tree_(&tree),
      extractor_(g),
      engine_(g),
      extractor_pool_([graph = &g] {
        return std::make_unique<SeedCommunityExtractor>(*graph);
      }),
      engine_pool_(g) {}

Result<TopLResult> TopLDetector::Search(const Query& query,
                                        const QueryOptions& options) {
  return Search(query, options, SearchControl{});
}

Result<TopLResult> TopLDetector::Search(const Query& query,
                                        const QueryOptions& options,
                                        const SearchControl& control) {
  TOPL_RETURN_IF_ERROR(query.Validate());
  if (query.radius > pre_->r_max()) {
    return Status::InvalidArgument(
        "query radius exceeds the index's r_max; rebuild the index with a "
        "larger PrecomputeOptions::r_max");
  }

  Timer timer;
  TopLResult result;
  QueryStats& stats = result.stats;

  // Score bounds are valid only for the largest pre-selected θ_z ≤ θ.
  const int z = pre_->ThresholdIndex(query.theta);
  const BitVector query_bv =
      BitVector::FromKeywords(query.keywords, pre_->signature_bits());

  TopLCollector collector(query.top_l);
  PlanCursor plan(*graph_, *pre_, *tree_, query, options, z, query_bv);
  const SeedCommunityExtractor::Mode extraction_mode =
      options.use_reference_extraction ? SeedCommunityExtractor::Mode::kReference
                                       : SeedCommunityExtractor::Mode::kIncremental;
  const DeadlineClock deadline(control.deadline_seconds);
  const bool checkpoints = control.NeedsCheckpoints();

  const bool parallel =
      control.pool != nullptr && control.pool->num_threads() > 1;
  const std::size_t chunk_size = std::max<std::size_t>(1, control.chunk_size);
  // Wave sizing. Sequential waves are a single candidate, reproducing the
  // classic loop's refine-then-reprune cadence (maximal pruning). Parallel
  // waves start just large enough to seed the σ_L threshold from the
  // highest-upper-bound candidates, then grow geometrically so the
  // per-wave fan-out/join cost amortizes while the stale-threshold window
  // (candidates a sequential run would have pruned) stays a bounded
  // fraction of total work — best-first order makes the first waves the
  // likely winners, so the threshold is near-final almost immediately.
  std::size_t max_wave =
      parallel ? std::max<std::size_t>(chunk_size * control.pool->num_threads() * 8,
                                       512)
               : 1;
  // Streaming callers trade a little join overhead for update granularity.
  if (parallel && control.on_progress) {
    max_wave = std::min<std::size_t>(max_wave, 128);
  }
  std::size_t wave_target =
      parallel ? std::max<std::size_t>(query.top_l, chunk_size) : 1;

  std::vector<VertexId> wave;
  std::vector<CommunityResult> progressive_snapshot;
  bool stopped = false;

  // External floor seeding (cross-shard merges): the caller vouches for L
  // communities at or above this score existing outside this search, so the
  // threshold is valid before the local collector fills. All comparisons
  // stay strict (<), preserving the canonical tie handling.
  const bool seeded = options.initial_threshold > kNegInf;
  const auto threshold_valid = [&] { return collector.Full() || seeded; };
  const auto threshold = [&] {
    return std::max(collector.threshold(), options.initial_threshold);
  };

  while (!plan.Done() && !stopped) {
    // Checkpoint: deadline / cancellation, before planning the next wave.
    if (checkpoints && (control.cancel.cancelled() || deadline.Expired())) {
      result.truncated = true;
      result.score_upper_bound = plan.FrontierBound();
      break;
    }

    // Bounds every candidate this wave will gather (child keys never exceed
    // their parent's): the anytime gap if the wave is cut short mid-scoring.
    const double wave_bound = plan.FrontierBound();
    wave.clear();
    plan.Gather(threshold_valid(), threshold(), wave_target, &wave, &stats);
    if (wave.empty()) continue;  // everything pruned; heap may be done now
    ++stats.waves;

    bool merged_any = false;
    std::uint64_t skipped = 0;
    if (!parallel || wave.size() <= chunk_size) {
      // Score + merge inline on the calling thread, one candidate at a time
      // with the *live* threshold: merging each refined community before
      // looking at the next candidate lets σ_L improvements earned inside
      // this very wave (e.g. within one gathered leaf) prune its remaining
      // candidates — the classic loop's refine-then-reprune cadence.
      const bool live_pruning = options.use_score_pruning && z >= 0;
      for (std::size_t i = 0; i < wave.size(); ++i) {
        if (control.cancel.cancelled() || deadline.Expired()) {
          skipped = wave.size() - i;
          break;
        }
        const VertexId v = wave[i];
        if (live_pruning && threshold_valid() &&
            pre_->ScoreBound(v, query.radius, static_cast<std::uint32_t>(z)) <
                threshold()) {
          ++stats.pruned_score;
          continue;
        }
        ++stats.candidates_refined;
        CommunityResult candidate;
        const bool found =
            extractor_.Extract(v, query, extraction_mode, &candidate.community);
        stats.triangles_inspected += extractor_.last_triangles_inspected();
        stats.support_recomputes_avoided +=
            extractor_.last_support_recomputes_avoided();
        if (!found) continue;
        ++stats.communities_found;
        candidate.influence =
            engine_.Compute(candidate.community.vertices, query.theta);
        merged_any |= collector.Offer(std::move(candidate));
      }
    } else {
      // Score: fan the wave out over the pool. Chunks are claimed from a
      // shared atomic cursor (fine-grained load balancing at one fetch_add
      // per chunk) by at most one task per pool worker, so task-spawn cost
      // and scratch leasing are per worker per wave, not per chunk — the
      // chunks themselves are only microseconds of work. Each worker owns
      // share-nothing scratch; results land in per-chunk slots and merge
      // afterwards in wave order. TaskGroup's help-first join keeps this
      // legal even when the calling thread is itself a pool worker.
      const std::size_t num_chunks = (wave.size() + chunk_size - 1) / chunk_size;
      std::vector<ChunkOutput> outputs(num_chunks);
      std::atomic<std::size_t> next_chunk{0};
      const std::span<const VertexId> wave_span(wave);
      auto score_worker = [&, this] {
        const LeasePool<SeedCommunityExtractor>::Lease extractor(&extractor_pool_);
        const PropagationEnginePool::Lease engine(&engine_pool_);
        for (;;) {
          const std::size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
          if (c >= num_chunks) break;
          const std::size_t begin = c * chunk_size;
          const std::size_t end = std::min(wave_span.size(), begin + chunk_size);
          RefineChunk(wave_span.subspan(begin, end - begin), query,
                      extraction_mode, *extractor, *engine, control.cancel,
                      deadline, &outputs[c]);
        }
      };
      const std::size_t num_workers =
          std::min(control.pool->num_threads(), num_chunks);
      ThreadPool::TaskGroup group(control.pool);
      for (std::size_t w = 0; w < num_workers; ++w) group.Spawn(score_worker);
      group.Wait();
      stats.parallel_chunks += num_chunks;
      for (ChunkOutput& out : outputs) {
        stats.candidates_refined += out.refined;
        stats.communities_found += out.found.size();
        stats.triangles_inspected += out.triangles_inspected;
        stats.support_recomputes_avoided += out.support_recomputes_avoided;
        skipped += out.skipped;
        for (CommunityResult& found : out.found) {
          merged_any |= collector.Offer(std::move(found));
        }
      }
    }

    if (skipped > 0) {
      // A chunk observed the deadline/cancel mid-wave and left candidates
      // unscored; those candidates are no longer on the heap, so the gap is
      // bounded by the wave's planning-time frontier, not the current one.
      result.truncated = true;
      result.score_upper_bound = wave_bound;
      stopped = true;
    }

    if (checkpoints && control.on_progress && merged_any && !stopped) {
      progressive_snapshot.assign(collector.entries().begin(),
                                  collector.entries().end());
      SortCommunityResults(&progressive_snapshot);
      ProgressiveUpdate update;
      update.communities = progressive_snapshot;
      update.upper_bound = plan.FrontierBound();
      update.wave = stats.waves;
      update.candidates_refined = stats.candidates_refined;
      if (!control.on_progress(update)) {
        // The caller is satisfied; the wave itself merged completely, so the
        // remaining frontier is the exact anytime gap (−∞ when exhausted).
        result.truncated = true;
        result.score_upper_bound = plan.FrontierBound();
        stopped = true;
      }
    }

    if (parallel) wave_target = std::min(max_wave, wave_target * 4);
  }

  result.communities = collector.Take();
  SortCommunityResults(&result.communities);
  stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace topl

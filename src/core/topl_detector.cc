#include "core/topl_detector.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

#include "common/timer.h"
#include "graph/local_subgraph.h"
#include "keywords/bit_vector.h"

namespace topl {

namespace {

// Result-set accumulator: keeps the best L communities seen so far and the
// running threshold σ_L (−∞ until L communities are collected). L is small
// (paper sweeps 2–10), so linear eviction is cheaper than heap bookkeeping.
class TopLCollector {
 public:
  explicit TopLCollector(std::uint32_t capacity) : capacity_(capacity) {}

  bool Full() const { return entries_.size() >= capacity_; }

  double threshold() const {
    return Full() ? min_score_ : -std::numeric_limits<double>::infinity();
  }

  void Offer(CommunityResult&& result) {
    if (!Full()) {
      entries_.push_back(std::move(result));
      if (Full()) RecomputeMin();
      return;
    }
    if (result.score() <= min_score_) return;
    std::size_t evict = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].score() < entries_[evict].score()) evict = i;
    }
    entries_[evict] = std::move(result);
    RecomputeMin();
  }

  std::vector<CommunityResult> Take() { return std::move(entries_); }

 private:
  void RecomputeMin() {
    min_score_ = std::numeric_limits<double>::infinity();
    for (const CommunityResult& r : entries_) {
      min_score_ = std::min(min_score_, r.score());
    }
  }

  std::uint32_t capacity_;
  std::vector<CommunityResult> entries_;
  double min_score_ = -std::numeric_limits<double>::infinity();
};

}  // namespace

TopLDetector::TopLDetector(const Graph& g, const PrecomputedData& pre,
                           const TreeIndex& tree)
    : graph_(&g), pre_(&pre), tree_(&tree), extractor_(g), engine_(g) {}

Result<TopLResult> TopLDetector::Search(const Query& query,
                                        const QueryOptions& options) {
  TOPL_RETURN_IF_ERROR(query.Validate());
  if (query.radius > pre_->r_max()) {
    return Status::InvalidArgument(
        "query radius exceeds the index's r_max; rebuild the index with a "
        "larger PrecomputeOptions::r_max");
  }

  Timer timer;
  TopLResult result;
  QueryStats& stats = result.stats;

  const std::uint32_t r = query.radius;
  // Required in-community edge support for a k-truss.
  const std::uint32_t required_support = query.k >= 2 ? query.k - 2 : 0;
  // Score bounds are valid only for the largest pre-selected θ_z ≤ θ.
  const int z = pre_->ThresholdIndex(query.theta);
  const bool score_pruning = options.use_score_pruning && z >= 0;
  const BitVector query_bv =
      BitVector::FromKeywords(query.keywords, pre_->signature_bits());

  TopLCollector collector(query.top_l);

  // Max-heap over index entries, keyed by the aggregated score bound. With
  // no usable bound (θ < θ_1) every key is +∞ and the traversal degrades to
  // an exhaustive filtered scan, which is still correct.
  using HeapEntry = std::pair<double, std::uint32_t>;  // (key, node id)
  std::priority_queue<HeapEntry> heap;
  auto node_key = [&](std::uint32_t id) {
    return z >= 0 ? tree_->ScoreBound(id, r, static_cast<std::uint32_t>(z))
                  : std::numeric_limits<double>::infinity();
  };
  heap.emplace(node_key(tree_->root()), tree_->root());

  while (!heap.empty()) {
    const auto [key, node_id] = heap.top();
    heap.pop();
    ++stats.heap_pops;

    // Early termination (Algorithm 3, lines 7–8): every remaining entry has
    // key ≤ this key.
    if (score_pruning && collector.Full() && key <= collector.threshold()) {
      stats.pruned_termination += tree_->node(node_id).num_vertices;
      while (!heap.empty()) {
        stats.pruned_termination += tree_->node(heap.top().second).num_vertices;
        heap.pop();
      }
      break;
    }

    const TreeIndex::Node& node = tree_->node(node_id);
    ++stats.index_nodes_visited;

    if (node.is_leaf) {
      for (VertexId v : tree_->LeafVertices(node)) {
        // Candidate-level pruning (Lemmas 1, 2, 4) on hop(v, r).
        if (options.use_keyword_pruning &&
            (!pre_->SignatureIntersects(v, r, query_bv) ||
             !HopExtractor::HasAnyKeyword(*graph_, v, query.keywords))) {
          // Either no vertex of hop(v, r) can hold a query keyword, or the
          // center itself does not (and the center is in every g).
          ++stats.pruned_keyword;
          continue;
        }
        if (options.use_support_pruning &&
            (pre_->SupportBound(v, r) < required_support ||
             (options.use_center_truss_bound &&
              pre_->CenterTrussBound(v) < query.k))) {
          // Lemma 2 on the ball's max edge support, plus the sharper
          // center-trussness form (no k-truss through v exists in the ball).
          ++stats.pruned_support;
          continue;
        }
        if (score_pruning && collector.Full() &&
            pre_->ScoreBound(v, r, static_cast<std::uint32_t>(z)) <=
                collector.threshold()) {
          ++stats.pruned_score;
          continue;
        }

        // Refinement: extract the maximal seed community and compute the
        // exact influential score.
        ++stats.candidates_refined;
        CommunityResult candidate;
        if (!extractor_.Extract(v, query, &candidate.community)) continue;
        ++stats.communities_found;
        candidate.influence =
            engine_.Compute(candidate.community.vertices, query.theta);
        collector.Offer(std::move(candidate));
      }
    } else {
      for (std::uint32_t c = 0; c < node.num_children; ++c) {
        const std::uint32_t child = node.first_child + c;
        // Index-level pruning (Lemmas 5–7).
        if (options.use_keyword_pruning &&
            !tree_->SignatureIntersects(child, r, query_bv)) {
          stats.pruned_keyword += tree_->node(child).num_vertices;
          continue;
        }
        if (options.use_support_pruning &&
            (tree_->SupportBound(child, r) < required_support ||
             (options.use_center_truss_bound &&
              tree_->CenterTrussBound(child) < query.k))) {
          stats.pruned_support += tree_->node(child).num_vertices;
          continue;
        }
        const double child_key = node_key(child);
        if (score_pruning && collector.Full() &&
            child_key <= collector.threshold()) {
          stats.pruned_score += tree_->node(child).num_vertices;
          continue;
        }
        heap.emplace(child_key, child);
      }
    }
  }

  result.communities = collector.Take();
  SortCommunityResults(&result.communities);
  stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace topl

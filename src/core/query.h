#ifndef TOPL_CORE_QUERY_H_
#define TOPL_CORE_QUERY_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/types.h"

namespace topl {

/// \brief One TopL-ICDE query (Definition 4): keywords Q, truss support k,
/// radius r, influence threshold θ, and result size L.
struct Query {
  /// Query keyword ids, sorted ascending and deduplicated.
  std::vector<KeywordId> keywords;
  /// Truss support parameter k (seed communities are k-trusses). Paper
  /// default 4.
  std::uint32_t k = 4;
  /// Maximum radius r of seed communities. Paper default 2.
  std::uint32_t radius = 2;
  /// Influence threshold θ ∈ [0, 1). Paper default 0.2.
  double theta = 0.2;
  /// Result size L. Paper default 5.
  std::uint32_t top_l = 5;

  /// Validates ranges and keyword ordering.
  Status Validate() const {
    if (keywords.empty()) {
      return Status::InvalidArgument("query needs at least one keyword");
    }
    for (std::size_t i = 1; i < keywords.size(); ++i) {
      if (keywords[i] <= keywords[i - 1]) {
        return Status::InvalidArgument(
            "query keywords must be sorted and deduplicated");
      }
    }
    if (k < 2) return Status::InvalidArgument("truss support parameter k must be >= 2");
    if (radius < 1) return Status::InvalidArgument("radius must be >= 1");
    if (!(theta >= 0.0 && theta < 1.0)) {
      return Status::InvalidArgument("influence threshold must be in [0, 1)");
    }
    if (top_l < 1) return Status::InvalidArgument("L must be >= 1");
    return Status::OK();
  }
};

/// \brief Per-query execution switches. The defaults run the full paper
/// algorithm; the ablation study (Fig. 4) toggles the three pruning rules.
struct QueryOptions {
  bool use_keyword_pruning = true;  // Lemmas 1 / 5
  bool use_support_pruning = true;  // Lemmas 2 / 6
  bool use_score_pruning = true;    // Lemmas 4 / 7 + heap early termination
  /// Within support pruning, also apply the strengthened center-trussness
  /// bound (DESIGN.md §3). Off = the paper's max-ball-support rule only;
  /// the ablation benchmark compares the two.
  bool use_center_truss_bound = true;
  /// Verify candidates on the pre-substrate reference path (from-scratch
  /// support recompute per fixpoint round) instead of the incremental
  /// triangle substrate. Answers are byte-identical either way; this switch
  /// exists for the equivalence sweep and the bench_seed_extraction A/B.
  bool use_reference_extraction = false;
  /// External score floor seeding the collector's σ_L threshold before any
  /// community is collected: candidates whose upper bound is strictly below
  /// it are pruned exactly as if L communities at this score were already
  /// held. The caller asserts that `top_l` communities with score ≥ this
  /// value exist elsewhere (a cross-shard merge holds them), so the pruned
  /// candidates provably cannot enter the *merged* top-L — the returned
  /// result then only lists communities that could. −∞ (the default)
  /// disables seeding. Only effective together with use_score_pruning and a
  /// query theta on the precompute grid, mirroring the internal threshold.
  double initial_threshold = -std::numeric_limits<double>::infinity();
};

/// \brief Counters filled during query processing.
///
/// "Candidates" are counted in units of center vertices: pruning an index
/// node with c vertices underneath prunes c candidates, matching Fig. 4(a)'s
/// "# of pruned communities".
struct QueryStats {
  std::uint64_t heap_pops = 0;
  std::uint64_t index_nodes_visited = 0;

  std::uint64_t pruned_keyword = 0;   // candidates removed by Lemma 1 / 5
  std::uint64_t pruned_support = 0;   // candidates removed by Lemma 2 / 6
  std::uint64_t pruned_score = 0;     // candidates removed by Lemma 4 / 7
  std::uint64_t pruned_termination = 0;  // candidates skipped by early stop

  std::uint64_t candidates_refined = 0;   // extractions attempted
  std::uint64_t communities_found = 0;    // non-empty seed communities

  /// Triangle-substrate counters (truss/local_truss.h): alive triangles
  /// enumerated while verifying candidates, and fixpoint kill rounds whose
  /// support updates were absorbed incrementally — each avoided round is one
  /// full from-scratch local support recompute the pre-substrate path paid.
  std::uint64_t triangles_inspected = 0;
  std::uint64_t support_recomputes_avoided = 0;

  /// Staged-pipeline counters: plan/score/merge waves executed, and scoring
  /// chunks that ran on a worker pool (0 for a fully sequential search).
  std::uint64_t waves = 0;
  std::uint64_t parallel_chunks = 0;

  double elapsed_seconds = 0.0;

  std::uint64_t TotalPruned() const {
    return pruned_keyword + pruned_support + pruned_score + pruned_termination;
  }

  /// Field-wise merge, so aggregation over many queries (Engine stats, the
  /// ablation benchmark) never falls out of sync with the counter set.
  QueryStats& operator+=(const QueryStats& other) {
    heap_pops += other.heap_pops;
    index_nodes_visited += other.index_nodes_visited;
    pruned_keyword += other.pruned_keyword;
    pruned_support += other.pruned_support;
    pruned_score += other.pruned_score;
    pruned_termination += other.pruned_termination;
    candidates_refined += other.candidates_refined;
    communities_found += other.communities_found;
    triangles_inspected += other.triangles_inspected;
    support_recomputes_avoided += other.support_recomputes_avoided;
    waves += other.waves;
    parallel_chunks += other.parallel_chunks;
    elapsed_seconds += other.elapsed_seconds;
    return *this;
  }

  std::string ToString() const {
    return "heap_pops=" + std::to_string(heap_pops) +
           " pruned_keyword=" + std::to_string(pruned_keyword) +
           " pruned_support=" + std::to_string(pruned_support) +
           " pruned_score=" + std::to_string(pruned_score) +
           " pruned_termination=" + std::to_string(pruned_termination) +
           " refined=" + std::to_string(candidates_refined) +
           " found=" + std::to_string(communities_found) +
           " triangles=" + std::to_string(triangles_inspected) +
           " recomputes_avoided=" + std::to_string(support_recomputes_avoided) +
           " waves=" + std::to_string(waves) +
           " parallel_chunks=" + std::to_string(parallel_chunks) +
           " elapsed=" + std::to_string(elapsed_seconds) + "s";
  }
};

}  // namespace topl

#endif  // TOPL_CORE_QUERY_H_

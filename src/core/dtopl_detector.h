#ifndef TOPL_CORE_DTOPL_DETECTOR_H_
#define TOPL_CORE_DTOPL_DETECTOR_H_

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/community_result.h"
#include "core/query.h"
#include "core/search_control.h"
#include "core/topl_detector.h"
#include "graph/graph.h"
#include "index/precompute.h"
#include "index/tree_index.h"

namespace topl {

/// Selection algorithm for the refinement step of DTopL-ICDE.
enum class DTopLAlgorithm {
  /// Algorithm 4: lazy greedy with the diversity-score pruning of Lemma 9 —
  /// stale marginal gains are valid upper bounds by submodularity, so a heap
  /// entry whose round stamp is current is the true argmax (CELF-style).
  kGreedyWithPruning,
  /// Greedy_WoP: recompute every candidate's marginal gain each round.
  kGreedyWithoutPruning,
  /// Exhaustive search over all C(|T|, L) subsets (small inputs only).
  kOptimal,
};

/// Parameters of a DTopL-ICDE query beyond the base Query.
struct DTopLOptions {
  /// Candidate-pool factor n (> 1): refinement selects L out of the top-(nL)
  /// most influential communities. Paper default 5.
  std::uint32_t n_factor = 5;
  DTopLAlgorithm algorithm = DTopLAlgorithm::kGreedyWithPruning;
  /// Guard for kOptimal: fail instead of enumerating more subsets than this.
  std::uint64_t max_optimal_subsets = 20'000'000;
  /// Pruning toggles forwarded to the candidate-generation TopL call.
  QueryOptions topl_options;
};

/// \brief A DTopL-ICDE answer: the selected set S plus D(S) and cost
/// counters for the two phases.
struct DTopLResult {
  std::vector<CommunityResult> communities;  // in selection order
  double diversity_score = 0.0;

  /// True when candidate generation stopped early (deadline, cancellation,
  /// progressive stop): the selection is then greedy over the best candidate
  /// pool found so far rather than the full top-(nL).
  bool truncated = false;
  /// Anytime gap inherited from the candidate phase: the largest influential
  /// score any unexplored candidate could still contribute to the pool. −∞
  /// when the pool is exact.
  double score_upper_bound = -std::numeric_limits<double>::infinity();

  /// True when admission control shed the full-work path and served this
  /// answer as a best-effort anytime result (engine/engine.h overload
  /// handling); the candidate pool is then whatever was explored in the
  /// degraded budget, with `score_upper_bound` still a valid gap bound.
  bool degraded = false;

  /// Centers of the full top-(nL) candidate pool the selection was refined
  /// from (selection order of the pool, i.e. σ desc / center asc). The
  /// diversified answer is a deterministic function of this pool, so result
  /// caches invalidate on the pool's dependence set, not the selected L's.
  std::vector<VertexId> pool_centers;
  /// σ of the weakest pool member; −∞ when the pool is empty.
  double pool_floor = -std::numeric_limits<double>::infinity();
  /// True when the pool reached the full n·L candidates — only then does
  /// `pool_floor` bound what a new community must score to enter the pool.
  bool pool_full = false;

  QueryStats candidate_stats;     // the embedded TopL call
  double candidate_seconds = 0.0;
  double refine_seconds = 0.0;
  /// Number of marginal-gain evaluations during refinement; the paper's
  /// diversity-score pruning shows up as this counter staying near L·log
  /// instead of n·L² (Greedy_WoP).
  std::uint64_t gain_evaluations = 0;
};

/// \brief Online DTopL-ICDE processing (§VII): top-(nL) candidates via
/// Algorithm 3, then greedy (or exhaustive) diversified selection.
class DTopLDetector {
 public:
  DTopLDetector(const Graph& g, const PrecomputedData& pre, const TreeIndex& tree);

  Result<DTopLResult> Search(const Query& query, const DTopLOptions& options = {});

  /// Controlled variant: the candidate phase (which dominates cost) runs
  /// under `control` — intra-query parallelism, deadline, cancellation. A
  /// progressive callback receives *diversified* updates: after each
  /// candidate wave, the greedy selection is re-run over the pool so far and
  /// streamed in canonical order, making DTopL anytime too. Returning false
  /// from the callback, expiry, or cancellation yields a truncated result
  /// selected from the best pool found so far.
  Result<DTopLResult> Search(const Query& query, const DTopLOptions& options,
                             const SearchControl& control);

 private:
  TopLDetector topl_;
};

/// Greedy_WP refinement over an explicit candidate pool; returns indices
/// into `candidates` in selection order. Exposed for tests and benchmarks.
std::vector<std::size_t> SelectDiversifiedGreedyWP(
    std::span<const CommunityResult> candidates, std::uint32_t top_l,
    std::uint64_t* gain_evaluations);

/// Greedy_WoP refinement (no pruning; recomputes all gains every round).
std::vector<std::size_t> SelectDiversifiedGreedyWoP(
    std::span<const CommunityResult> candidates, std::uint32_t top_l,
    std::uint64_t* gain_evaluations);

/// Optimal refinement by exhaustive subset enumeration. Fails with
/// InvalidArgument when C(|candidates|, top_l) exceeds `max_subsets`.
Result<std::vector<std::size_t>> SelectDiversifiedOptimal(
    std::span<const CommunityResult> candidates, std::uint32_t top_l,
    std::uint64_t max_subsets);

/// D(S) for a set of selected candidate indices.
double DiversityOfSelection(std::span<const CommunityResult> candidates,
                            std::span<const std::size_t> selection);

}  // namespace topl

#endif  // TOPL_CORE_DTOPL_DETECTOR_H_

#ifndef TOPL_CORE_BRUTE_FORCE_H_
#define TOPL_CORE_BRUTE_FORCE_H_

#include <vector>

#include "common/result.h"
#include "core/community_result.h"
#include "core/query.h"
#include "graph/graph.h"

namespace topl {

/// \brief Reference TopL-ICDE evaluation with no index and no pruning: every
/// vertex is tried as a center, its maximal seed community extracted, its
/// exact σ computed.
///
/// The candidate-per-center space is exactly what Algorithm 3 explores after
/// pruning, so this is both the correctness oracle for the tests (the index
/// path must return the same score multiset) and the "no pruning" anchor of
/// the ablation study. It is also the candidate generator for DTopL-ICDE's
/// Optimal baseline on small graphs.
///
/// Unlike the index path it supports any radius (no r_max constraint).
Result<TopLResult> BruteForceTopL(const Graph& g, const Query& query);

/// \brief Every non-empty seed community in the graph (one per center that
/// has one), in canonical order (σ desc, center asc). `query.top_l` is
/// ignored.
Result<std::vector<CommunityResult>> EnumerateAllCommunities(const Graph& g,
                                                             const Query& query);

}  // namespace topl

#endif  // TOPL_CORE_BRUTE_FORCE_H_

#ifndef TOPL_CORE_TOPL_DETECTOR_H_
#define TOPL_CORE_TOPL_DETECTOR_H_

#include <vector>

#include "common/lease_pool.h"
#include "common/result.h"
#include "core/community_result.h"
#include "core/query.h"
#include "core/search_control.h"
#include "core/seed_community.h"
#include "graph/graph.h"
#include "index/precompute.h"
#include "index/tree_index.h"
#include "influence/propagation.h"

namespace topl {

/// \brief Online TopL-ICDE processing (Algorithm 3) as a staged
/// plan → score → merge pipeline.
///
///  - Plan: best-first traversal of the tree index with a max-heap keyed by
///    the nodes' influential-score upper bounds, applying the index-level
///    pruning rules (Lemmas 5–7) at non-leaf entries and the candidate-level
///    rules (Lemmas 1, 2, 4) at leaf vertices. The traversal is exposed as a
///    cursor that yields *waves* of surviving candidate centers.
///  - Score: each wave's candidates are refined — maximal seed community
///    extraction plus exact MIA propagation — either inline (sequential) or
///    fanned out in chunks over a ThreadPool (SearchControl::pool), with
///    share-nothing per-chunk scratch.
///  - Merge: refined communities fold into a bounded top-L collector ordered
///    by the canonical total order (σ desc, center asc), whose L-th entry
///    drives the score pruning / early-termination threshold of later waves.
///
/// Because candidates are pruned only when their upper bound is *strictly*
/// below the threshold and the collector's order is total, the final answer
/// is one specific community set regardless of wave sizes, chunk boundaries,
/// or merge order: the parallel path returns byte-identical results to the
/// sequential path (which in turn equals brute force). Parallelism changes
/// wall-clock, never answers.
///
/// SearchControl additionally provides deadlines, cooperative cancellation,
/// and progressive streaming of intermediate answers (anytime search); see
/// core/search_control.h.
///
/// The detector reuses extraction/propagation scratch across calls; use one
/// detector per thread, or serve through topl::Engine (engine/engine.h),
/// which leases one pooled detector per in-flight query. (Intra-query chunk
/// scratch is pooled separately, so one Search may use a ThreadPool even
/// though the detector itself is leased to a single query.) The referenced
/// graph/index must outlive it.
class TopLDetector {
 public:
  TopLDetector(const Graph& g, const PrecomputedData& pre, const TreeIndex& tree);

  /// Answers one query sequentially to completion. Fails with
  /// InvalidArgument when the query is malformed or asks for a radius beyond
  /// the index's r_max.
  Result<TopLResult> Search(const Query& query, const QueryOptions& options = {});

  /// Answers one query under runtime controls: intra-query parallelism,
  /// deadline/budget, cancellation, progressive streaming. A truncated run
  /// (deadline, cancel, callback stop) still succeeds, returning best-so-far
  /// communities with TopLResult::truncated set and the remaining
  /// score_upper_bound as the anytime gap.
  Result<TopLResult> Search(const Query& query, const QueryOptions& options,
                            const SearchControl& control);

  /// Per-worker refinement scratch created so far (== peak scoring-worker
  /// concurrency of any single parallel query); exposed for tests.
  std::size_t pooled_scratch() const { return extractor_pool_.size(); }

 private:
  const Graph* graph_;
  const PrecomputedData* pre_;
  const TreeIndex* tree_;
  SeedCommunityExtractor extractor_;  // sequential-path scratch
  PropagationEngine engine_;

  // Per-worker scratch for the parallel scoring stage, grown lazily to the
  // peak number of concurrent scoring workers and reused across waves and
  // queries: share-nothing extraction scratch here, the propagation side
  // from the influence layer's own pool (reentrant chunkable evaluation).
  LeasePool<SeedCommunityExtractor> extractor_pool_;
  PropagationEnginePool engine_pool_;
};

}  // namespace topl

#endif  // TOPL_CORE_TOPL_DETECTOR_H_

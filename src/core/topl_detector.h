#ifndef TOPL_CORE_TOPL_DETECTOR_H_
#define TOPL_CORE_TOPL_DETECTOR_H_

#include <vector>

#include "common/result.h"
#include "core/community_result.h"
#include "core/query.h"
#include "core/seed_community.h"
#include "graph/graph.h"
#include "index/precompute.h"
#include "index/tree_index.h"
#include "influence/propagation.h"

namespace topl {

/// \brief Online TopL-ICDE processing (Algorithm 3).
///
/// Traverses the tree index best-first with a max-heap keyed by the nodes'
/// influential-score upper bounds, applying the index-level pruning rules
/// (Lemmas 5–7) at non-leaf entries and the candidate-level rules
/// (Lemmas 1, 2, 4) at leaf vertices; surviving candidates are refined by
/// extracting their maximal seed community and running the exact MIA
/// propagation. Terminates early once the best unexplored upper bound cannot
/// beat the current L-th score.
///
/// The detector reuses extraction/propagation scratch across calls; use one
/// detector per thread, or serve through topl::Engine (engine/engine.h),
/// which leases one pooled detector per in-flight query. The referenced
/// graph/index must outlive it.
class TopLDetector {
 public:
  TopLDetector(const Graph& g, const PrecomputedData& pre, const TreeIndex& tree);

  /// Answers one query. Fails with InvalidArgument when the query is
  /// malformed or asks for a radius beyond the index's r_max.
  Result<TopLResult> Search(const Query& query, const QueryOptions& options = {});

 private:
  const Graph* graph_;
  const PrecomputedData* pre_;
  const TreeIndex* tree_;
  SeedCommunityExtractor extractor_;
  PropagationEngine engine_;
};

}  // namespace topl

#endif  // TOPL_CORE_TOPL_DETECTOR_H_

#include "core/brute_force.h"

#include <algorithm>

#include "common/timer.h"
#include "core/seed_community.h"
#include "influence/propagation.h"

namespace topl {

Result<std::vector<CommunityResult>> EnumerateAllCommunities(const Graph& g,
                                                             const Query& query) {
  TOPL_RETURN_IF_ERROR(query.Validate());
  SeedCommunityExtractor extractor(g);
  PropagationEngine engine(g);
  std::vector<CommunityResult> out;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    CommunityResult candidate;
    // The brute-force path is the independent oracle the detectors are
    // checked against, so it deliberately runs the reference (pre-substrate)
    // verification pipeline — a substrate bug must not cancel out of
    // detector-vs-brute-force comparisons.
    if (!extractor.Extract(v, query, SeedCommunityExtractor::Mode::kReference,
                           &candidate.community)) {
      continue;
    }
    candidate.influence = engine.Compute(candidate.community.vertices, query.theta);
    out.push_back(std::move(candidate));
  }
  SortCommunityResults(&out);
  return out;
}

Result<TopLResult> BruteForceTopL(const Graph& g, const Query& query) {
  Timer timer;
  Result<std::vector<CommunityResult>> all = EnumerateAllCommunities(g, query);
  if (!all.ok()) return all.status();

  TopLResult result;
  result.stats.candidates_refined = g.NumVertices();
  result.stats.communities_found = all.value().size();
  result.communities = std::move(all).value();
  if (result.communities.size() > query.top_l) {
    result.communities.resize(query.top_l);
  }
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace topl

#include "shard/shard_partition.h"

#include <cstddef>
#include <string>
#include <utility>

#include "common/status.h"
#include "graph/reorder.h"

namespace topl {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void FnvMix32(std::uint64_t* h, std::uint32_t word) {
  for (int shift = 0; shift < 32; shift += 8) {
    *h ^= (word >> shift) & 0xffU;
    *h *= kFnvPrime;
  }
}

std::uint64_t PartitionDigest(std::uint32_t num_shards,
                              const std::vector<std::uint32_t>& owner) {
  std::uint64_t h = kFnvOffset;
  FnvMix32(&h, num_shards);
  for (std::uint32_t o : owner) FnvMix32(&h, o);
  return h;
}

constexpr std::size_t kManifestHeaderWords = 4;

}  // namespace

Result<ShardPartition> ShardPartition::Compute(const Graph& g,
                                               std::uint32_t num_shards) {
  const std::size_t n = g.NumVertices();
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be at least 1");
  }
  if (num_shards > n) {
    return Status::InvalidArgument(
        "num_shards (" + std::to_string(num_shards) +
        ") exceeds the vertex count (" + std::to_string(n) + ")");
  }
  // Equal-size contiguous cuts of the locality order: position i of the
  // order lands on shard i*S/n, so shard sizes differ by at most one and
  // each shard's centers are one BFS-clustered run.
  const std::vector<VertexId> order = ComputeLocalityOrder(g);
  std::vector<std::uint32_t> owner(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    owner[order[i]] = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(i) * num_shards / n);
  }
  return FromOwner(std::move(owner), num_shards);
}

Result<ShardPartition> ShardPartition::FromOwner(
    std::vector<std::uint32_t> owner, std::uint32_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be at least 1");
  }
  ShardPartition part;
  part.num_shards = num_shards;
  part.owned.resize(num_shards);
  for (std::size_t v = 0; v < owner.size(); ++v) {
    if (owner[v] >= num_shards) {
      return Status::InvalidArgument("vertex " + std::to_string(v) +
                                     " is owned by a non-existent shard");
    }
    part.owned[owner[v]].push_back(static_cast<VertexId>(v));
  }
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    if (part.owned[s].empty()) {
      return Status::InvalidArgument("shard " + std::to_string(s) +
                                     " owns no vertices");
    }
  }
  part.digest = PartitionDigest(num_shards, owner);
  part.owner = std::move(owner);
  return part;
}

std::vector<std::uint32_t> ShardPartition::EncodeManifest(
    std::uint32_t shard_index) const {
  std::vector<std::uint32_t> out;
  out.reserve(kManifestHeaderWords + owned[shard_index].size());
  out.push_back(num_shards);
  out.push_back(shard_index);
  out.push_back(static_cast<std::uint32_t>(digest));
  out.push_back(static_cast<std::uint32_t>(digest >> 32));
  for (VertexId v : owned[shard_index]) out.push_back(v);
  return out;
}

Result<ShardPartition> ShardPartition::DecodeManifests(
    const std::vector<std::vector<std::uint32_t>>& manifests) {
  if (manifests.empty()) {
    return Status::InvalidArgument("no shard manifests given");
  }
  const std::uint32_t num_shards = static_cast<std::uint32_t>(manifests.size());
  std::uint64_t digest = 0;
  std::size_t total_owned = 0;
  for (std::uint32_t k = 0; k < num_shards; ++k) {
    const std::vector<std::uint32_t>& m = manifests[k];
    if (m.size() <= kManifestHeaderWords) {
      return Status::InvalidArgument("shard manifest " + std::to_string(k) +
                                     " is too small");
    }
    if (m[0] != num_shards) {
      return Status::InvalidArgument(
          "shard manifest " + std::to_string(k) + " expects " +
          std::to_string(m[0]) + " shards, family has " +
          std::to_string(num_shards));
    }
    if (m[1] != k) {
      return Status::InvalidArgument(
          "shard manifest at position " + std::to_string(k) +
          " identifies as shard " + std::to_string(m[1]));
    }
    const std::uint64_t d =
        static_cast<std::uint64_t>(m[2]) |
        (static_cast<std::uint64_t>(m[3]) << 32);
    if (k == 0) {
      digest = d;
    } else if (d != digest) {
      return Status::InvalidArgument(
          "shard manifests carry different partition digests — the "
          "artifacts were not cut from the same partition");
    }
    total_owned += m.size() - kManifestHeaderWords;
  }
  std::vector<std::uint32_t> owner(total_owned, num_shards);
  for (std::uint32_t k = 0; k < num_shards; ++k) {
    const std::vector<std::uint32_t>& m = manifests[k];
    VertexId prev = 0;
    for (std::size_t i = kManifestHeaderWords; i < m.size(); ++i) {
      const VertexId v = m[i];
      if (i > kManifestHeaderWords && v <= prev) {
        return Status::InvalidArgument("shard manifest " + std::to_string(k) +
                                       " owned set is not strictly ascending");
      }
      prev = v;
      if (v >= owner.size() || owner[v] != num_shards) {
        return Status::InvalidArgument(
            "shard manifests do not partition the vertex set");
      }
      owner[v] = k;
    }
  }
  Result<ShardPartition> part = FromOwner(std::move(owner), num_shards);
  if (!part.ok()) return part.status();
  if (part->digest != digest) {
    return Status::InvalidArgument(
        "shard manifest digest disagrees with the decoded owner assignment");
  }
  return part;
}

}  // namespace topl

#ifndef TOPL_SHARD_SHARD_UPDATE_H_
#define TOPL_SHARD_SHARD_UPDATE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"
#include "graph/types.h"

namespace topl {

/// \brief The two dirty-center sets a sharded update splits work by.
///
/// `all` is IndexUpdater's exact dirty set between the base and the updated
/// graph: outside it every precompute row is byte-identical, so it drives
/// per-shard cache invalidation.
///
/// `recompute` ⊆ `all` is the subset whose rows a shard must actually redo
/// to keep serving sound. A row is an upper-bound bundle (signature
/// superset, support/truss/score upper bounds), and every bound is monotone
/// non-decreasing in edges and keywords. Deletions and keyword removals only
/// shrink the true row, so a stale stored row stays a valid upper bound and
/// pruning stays safe — candidates that a fresh bound would have pruned
/// refine exactly on the new graph and lose in the total-order collector.
/// Only the *growth* part of a delta (edge inserts, keyword adds) can push a
/// true row above its stored bound, so `recompute` is `all` intersected with
/// the dirty set of the grow-only sub-delta applied to the base. When the
/// grow sub-delta is not valid against the base on its own (delete+reinsert
/// probability replacement, remove+re-add of a keyword), the classification
/// falls back to `recompute = all`; `grow_exact` records which case ran.
struct ShardDirtyClasses {
  std::vector<VertexId> all;        ///< sorted ascending
  std::vector<VertexId> recompute;  ///< sorted ascending, subset of `all`
  bool grow_exact = true;
  std::size_t influence_frontier = 0;
};

/// Classifies `delta` between `base` and `updated` (which must equal
/// ApplyDelta(base, delta)). `r_max` / `theta_min` are the index parameters
/// the dirty expansion is exact for. Costs one extra ApplyDelta plus one
/// DirtyCenters pass over the grow sub-delta — independent of shard count.
Result<ShardDirtyClasses> ClassifyShardDirty(const Graph& base,
                                             const Graph& updated,
                                             const GraphDelta& delta,
                                             std::uint32_t r_max,
                                             double theta_min);

/// Ascending intersection of two sorted vertex lists (the per-shard
/// `∩ owned` step of the coordinator).
std::vector<VertexId> IntersectSorted(const std::vector<VertexId>& a,
                                      const std::vector<VertexId>& b);

}  // namespace topl

#endif  // TOPL_SHARD_SHARD_UPDATE_H_

#ifndef TOPL_SHARD_SHARDED_ENGINE_H_
#define TOPL_SHARD_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/dtopl_detector.h"
#include "core/search_control.h"
#include "core/topl_detector.h"
#include "engine/engine.h"
#include "engine/engine_options.h"
#include "engine/engine_stats.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"
#include "shard/shard_partition.h"

namespace topl {

struct ShardedEngineOptions {
  /// Number of shard engines. 1 degenerates to a single engine behind the
  /// coordinator's routing/merge layer (useful as a like-for-like scaling
  /// baseline).
  std::uint32_t num_shards = 1;
  /// Per-shard engine configuration, applied identically to every shard
  /// (thread-pool size, result cache, admission gate, precompute/tree
  /// parameters for FromGraph builds). Path fields — including
  /// EngineOptions::journal_path — are ignored: the coordinator does its own
  /// artifact I/O and owns the single fleet-wide journal below. Note
  /// num_threads is *per shard*: the default (0 = hardware concurrency)
  /// oversubscribes with many shards, so sharded serving normally wants a
  /// small explicit value.
  EngineOptions engine;

  /// Coordinator write-ahead journal (storage/update_journal.h). When
  /// non-empty, Open replays committed deltas on top of the artifact family
  /// before serving, and ApplyUpdate appends each delta — once, at the
  /// coordinator — before any shard installs it. One journal covers the whole
  /// fleet because updates are coordinator-serialized and deterministic: the
  /// same delta stream reproduces every shard's state. Ignored by FromGraph.
  std::string journal_path;
};

/// \brief Share-nothing sharded serving: one independent Engine per shard,
/// commutative cross-shard top-L merge.
///
/// Partitioning. The candidate-center universe is split by
/// ShardPartition::Compute (contiguous runs of the PR-8 locality order), and
/// every shard serves a *full replica* of the graph and precompute rows but
/// owns only its partition slice of candidate centers: its tree index is
/// built over exactly the owned subset (TreeIndexOptions::candidates), so a
/// shard can never answer with — or spend refinement on — a center it does
/// not own. The full replica is the halo taken to its closed form: a
/// community around an owned center may reach any vertex within radius r,
/// and its influence set any vertex reachable with propagation probability
/// ≥ θ, so the only residency invariant that survives every delta without
/// re-partitioning is "everything is resident"; what is partitioned is the
/// *work* (candidate search, row maintenance), which is what serialized a
/// single engine.
///
/// Query path. A query is routed to the shards whose tree-root aggregates
/// admit candidates — the same keyword/support/score tests the detector
/// applies to an index node, so a skipped shard is one the detector itself
/// would have answered empty. Admitted shards are visited in descending
/// root-score-bound order; after the merged pool holds L communities, later
/// shards inherit the merged σ_L floor through
/// QueryOptions::initial_threshold, so they prune exactly as if they shared
/// the earlier shards' collector. Per-shard answers merge through the
/// canonical total order (σ desc, center asc; strict-< pruning), which makes
/// the merge commutative and the final answer byte-identical to a single
/// engine over the whole graph — the equivalence sweep in
/// tests/sharded_engine_test.cc enforces this across shard counts and
/// interleaved update streams.
///
/// Update path. ApplyUpdate materializes the new graph once, classifies the
/// delta's dirty centers (shard/shard_update.h) once, then fans per-shard
/// maintenance out in parallel: each shard clones the new replica, copies
/// *its own* current precompute, recomputes only the rows it owns from the
/// grow-dirty set, patches its owned-subset tree, and installs the result
/// through Engine::InstallUpdate — its own epoch bump and its own result
/// cache invalidated with the shard-local dirty set (dirty ∩ owned). There
/// is no global epoch and no cross-shard lock on the query path; shards
/// advance independently, and queries racing an update may observe
/// different epochs on different shards (each shard is individually
/// consistent; quiescent answers are byte-identical to a single engine).
///
/// Thread-safety matches Engine: all search entry points are callable from
/// any thread; ApplyUpdate calls serialize on the coordinator's writer lock.
class ShardedEngine {
 public:
  /// Runs the offline phase once over `graph` (one global precompute), then
  /// builds the partition and the per-shard replicas/subset trees/engines.
  static Result<std::unique_ptr<ShardedEngine>> FromGraph(
      Graph graph, const ShardedEngineOptions& options);

  /// Opens the artifact family `<prefix>.s0 … <prefix>.s{N-1}` written by
  /// BuildArtifacts. Every member must carry a shard manifest agreeing on
  /// shard count and partition digest and identifying its own position —
  /// mixing members of different builds is rejected before serving.
  static Result<std::unique_ptr<ShardedEngine>> Open(
      const std::string& prefix, const ShardedEngineOptions& options);

  /// Open with a mandatory coordinator journal: identical to Open except
  /// that options.journal_path must be non-empty, and the replay report is
  /// copied into `*info` (when non-null). The recovered fleet is
  /// byte-identical to one that applied the same acknowledged deltas live.
  static Result<std::unique_ptr<ShardedEngine>> Recover(
      const std::string& prefix, const ShardedEngineOptions& options,
      RecoveryInfo* info = nullptr);

  /// Offline build: one precompute over `graph`, one owned-subset tree per
  /// shard, one TOPLIDX2 version-3 artifact per shard at `<prefix>.s<k>`.
  static Status BuildArtifacts(const Graph& graph,
                               const ShardedEngineOptions& options,
                               const std::string& prefix, bool compress);

  /// Per-shard artifact path of shard `k`.
  static std::string ShardArtifactPath(const std::string& prefix,
                                       std::uint32_t k);

  /// Answers one TopL query through route → per-shard search → merge.
  Result<TopLResult> Search(const Query& query, const QueryOptions& options = {});

  /// Answers one DTopL query: the top-(nL) candidate pool is merged across
  /// shards (with floor propagation at pool size), then the diversified
  /// selection runs once over the merged pool.
  Result<DTopLResult> SearchDiversified(const Query& query,
                                        const DTopLOptions& options = {});

  /// Anytime TopL across shards: shards are visited best-bound-first under
  /// the shared deadline/cancel budget; a deadline that expires mid-family
  /// truncates the remaining shards. `on_update` receives one final merged
  /// update (per-shard intermediate streams are not interleaved — they
  /// would expose non-merged prefixes).
  Result<TopLResult> SearchProgressive(const Query& query,
                                       const ProgressiveOptions& options = {},
                                       ProgressiveCallback on_update = nullptr);

  /// Applies one delta across every shard (see class comment). Returns the
  /// aggregated work report: dirty_centers / tree_nodes_* sum the per-shard
  /// passes, so precompute_avoided() reports the fleet-wide avoided work
  /// relative to n.
  Result<RebuildScope> ApplyUpdate(const GraphDelta& delta);

  /// Sums the per-shard engines' counters. snapshot_epoch reports the
  /// coordinator's update count (every shard's epoch equals it once an
  /// update completes); latency percentiles are merged per kind with the
  /// conservative max for max_seconds.
  EngineStats Stats() const;

  /// Operations routed to each shard since construction (search entry
  /// points only; updates touch every shard). The loadgen layer derives its
  /// load-imbalance metric from this.
  std::vector<std::uint64_t> ShardOps() const;

  /// Coordinator journal replay report from open time; all zeros when the
  /// fleet was opened without a journal.
  const RecoveryInfo& recovery_info() const { return recovery_info_; }

  std::uint32_t num_shards() const { return options_.num_shards; }
  const ShardPartition& partition() const { return partition_; }
  Engine& shard(std::uint32_t s) { return *engines_[s]; }
  const Engine& shard(std::uint32_t s) const { return *engines_[s]; }

  /// Shard 0's current snapshot — a full replica, so callers that need "the
  /// graph right now" (workload generation, delta synthesis) use this.
  /// Racing an in-flight ApplyUpdate, it may be one epoch behind another
  /// shard's view; it is itself immutable and internally consistent.
  std::shared_ptr<const EngineSnapshot> snapshot() const {
    return engines_[0]->snapshot();
  }

 private:
  ShardedEngine(ShardedEngineOptions options, ShardPartition partition,
                std::vector<std::unique_ptr<Engine>> engines);

  /// Mirrors the detector's index-node admission tests (keyword signature,
  /// support, center-trussness) against a shard's tree root; fills `*bound`
  /// with the root score bound (+∞ when θ is below the precompute grid).
  static bool RootAdmits(const EngineSnapshot& snap, const Query& query,
                         const QueryOptions& options, int z,
                         const BitVector& query_bv, double* bound);

  /// Shared route → per-shard TopL → canonical merge driver. `deadline`
  /// carries the progressive budget (0 = none).
  Result<TopLResult> SearchMerged(const Query& query,
                                  const QueryOptions& options,
                                  const ProgressiveOptions* progressive);

  /// Opens/creates the coordinator journal, replays its committed records
  /// through ApplyUpdate (journal_ is attached only afterwards, so replay
  /// never re-appends), and records the replay report.
  Status AttachJournal(const std::string& path);

  ShardedEngineOptions options_;
  ShardPartition partition_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> ops_routed_;

  /// Serializes coordinator updates (each shard additionally has its own
  /// writer lock, uncontended here because this one is held first).
  std::mutex update_mu_;
  /// Coordinator write-ahead journal; null when opened without one. Guarded
  /// by update_mu_ (appends happen only inside ApplyUpdate).
  std::unique_ptr<UpdateJournal> journal_;
  RecoveryInfo recovery_info_;
  /// Coordinator thread pool for the per-shard maintenance fan-out.
  ThreadPool update_pool_;
};

}  // namespace topl

#endif  // TOPL_SHARD_SHARDED_ENGINE_H_

#include "shard/shard_update.h"

#include <algorithm>
#include <iterator>

#include "index/index_update.h"

namespace topl {

Result<ShardDirtyClasses> ClassifyShardDirty(const Graph& base,
                                             const Graph& updated,
                                             const GraphDelta& delta,
                                             std::uint32_t r_max,
                                             double theta_min) {
  ShardDirtyClasses out;
  out.all = IndexUpdater::DirtyCenters(base, updated, delta, r_max, theta_min,
                                       &out.influence_frontier);
  if (delta.edge_inserts.empty() && delta.keyword_adds.empty()) {
    // Pure shrinkage: every stored row stays a valid upper bound, nothing
    // needs recomputing.
    out.recompute.clear();
    return out;
  }
  GraphDelta grow;
  grow.edge_inserts = delta.edge_inserts;
  grow.keyword_adds = delta.keyword_adds;
  Result<Graph> grown = ApplyDelta(base, grow);
  if (!grown.ok()) {
    // The grow ops depend on the delta's deletions (delete+reinsert or
    // remove+re-add), so the grow sub-delta cannot be replayed on the base
    // alone. Fall back to recomputing every dirty row.
    out.recompute = out.all;
    out.grow_exact = false;
    return out;
  }
  const std::vector<VertexId> grow_dirty =
      IndexUpdater::DirtyCenters(base, *grown, grow, r_max, theta_min);
  out.recompute = IntersectSorted(out.all, grow_dirty);
  return out;
}

std::vector<VertexId> IntersectSorted(const std::vector<VertexId>& a,
                                      const std::vector<VertexId>& b) {
  std::vector<VertexId> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace topl

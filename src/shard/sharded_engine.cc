#include "shard/sharded_engine.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <optional>
#include <span>
#include <thread>
#include <utility>

#include "common/status.h"
#include "common/timer.h"
#include "core/community_result.h"
#include "index/index_update.h"
#include "index/precompute.h"
#include "index/tree_index.h"
#include "shard/shard_update.h"
#include "storage/artifact.h"

namespace topl {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

std::size_t CoordinatorThreads(std::uint32_t num_shards) {
  const std::size_t hw = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  return std::min<std::size_t>(num_shards, hw);
}

}  // namespace

ShardedEngine::ShardedEngine(ShardedEngineOptions options,
                             ShardPartition partition,
                             std::vector<std::unique_ptr<Engine>> engines)
    : options_(std::move(options)),
      partition_(std::move(partition)),
      engines_(std::move(engines)),
      update_pool_(CoordinatorThreads(options_.num_shards)) {
  ops_routed_.reserve(engines_.size());
  for (std::size_t s = 0; s < engines_.size(); ++s) {
    ops_routed_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
}

std::string ShardedEngine::ShardArtifactPath(const std::string& prefix,
                                             std::uint32_t k) {
  return prefix + ".s" + std::to_string(k);
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::FromGraph(
    Graph graph, const ShardedEngineOptions& options) {
  Result<ShardPartition> part = ShardPartition::Compute(graph, options.num_shards);
  if (!part.ok()) return part.status();

  // One offline pass serves every shard: rows are per-vertex, so the same
  // PrecomputedData is correct on every shard regardless of ownership. Both
  // the graph and the precompute are installed *shared* — N shards cost one
  // graph plus one row table, not N replicas; only the (owned-subset) tree
  // is per-shard.
  Result<PrecomputedData> pre =
      PrecomputedData::Build(graph, options.engine.precompute);
  if (!pre.ok()) return pre.status();
  auto shared_graph = std::make_shared<const Graph>(std::move(graph));
  auto shared_pre =
      std::make_shared<const PrecomputedData>(std::move(pre).value());

  std::vector<std::unique_ptr<Engine>> engines(options.num_shards);
  for (std::uint32_t s = 0; s < options.num_shards; ++s) {
    TreeIndexOptions tree_options = options.engine.tree;
    tree_options.candidates = part->owned[s];
    Result<TreeIndex> tree =
        TreeIndex::Build(*shared_graph, *shared_pre, tree_options);
    if (!tree.ok()) return tree.status();
    Result<std::unique_ptr<Engine>> engine = Engine::Create(
        shared_graph, shared_pre,
        std::make_shared<const TreeIndex>(std::move(*tree)), options.engine);
    if (!engine.ok()) return engine.status();
    engines[s] = std::move(*engine);
  }
  return std::unique_ptr<ShardedEngine>(new ShardedEngine(
      options, std::move(*part), std::move(engines)));
}

Status ShardedEngine::BuildArtifacts(const Graph& graph,
                                     const ShardedEngineOptions& options,
                                     const std::string& prefix, bool compress) {
  Result<ShardPartition> part = ShardPartition::Compute(graph, options.num_shards);
  if (!part.ok()) return part.status();
  Result<PrecomputedData> pre =
      PrecomputedData::Build(graph, options.engine.precompute);
  if (!pre.ok()) return pre.status();
  for (std::uint32_t s = 0; s < options.num_shards; ++s) {
    TreeIndexOptions tree_options = options.engine.tree;
    tree_options.candidates = part->owned[s];
    Result<TreeIndex> tree = TreeIndex::Build(graph, *pre, tree_options);
    if (!tree.ok()) return tree.status();
    const std::vector<std::uint32_t> manifest = part->EncodeManifest(s);
    ArtifactWriteOptions write_options;
    write_options.compress = compress;
    write_options.shard_manifest = manifest;
    TOPL_RETURN_IF_ERROR(ArtifactWriter::Write(
        graph, *pre, *tree, ShardArtifactPath(prefix, s), write_options));
  }
  return Status::OK();
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Open(
    const std::string& prefix, const ShardedEngineOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be at least 1");
  }
  ArtifactReadOptions read_options;
  read_options.verify_checksums = options.engine.verify_artifact_checksums;
  read_options.populate = options.engine.mmap_populate;
  read_options.huge_pages = options.engine.mmap_huge_pages;

  std::vector<std::vector<std::uint32_t>> manifests(options.num_shards);
  std::vector<std::unique_ptr<Engine>> engines(options.num_shards);
  for (std::uint32_t s = 0; s < options.num_shards; ++s) {
    const std::string path = ShardArtifactPath(prefix, s);
    Result<MappedIndex> mapped = ArtifactReader::Open(path, read_options);
    if (!mapped.ok()) return mapped.status();
    if (mapped->shard_manifest.empty()) {
      return Status::InvalidArgument(
          path + " carries no shard manifest; rebuild with --shards");
    }
    if (!mapped->external_ids.empty()) {
      return Status::InvalidArgument(
          path + " was built with vertex reordering; sharded artifacts keep "
                 "identity external ids");
    }
    manifests[s] = std::move(mapped->shard_manifest);
    Result<std::unique_ptr<Engine>> engine =
        Engine::Create(std::move(mapped->graph), std::move(mapped->pre),
                       std::move(mapped->tree), options.engine);
    if (!engine.ok()) return engine.status();
    engines[s] = std::move(*engine);
  }

  Result<ShardPartition> part = ShardPartition::DecodeManifests(manifests);
  if (!part.ok()) return part.status();
  for (std::uint32_t s = 0; s < options.num_shards; ++s) {
    if (engines[s]->snapshot()->graph->NumVertices() != part->owner.size()) {
      return Status::InvalidArgument(
          ShardArtifactPath(prefix, s) +
          " replica size disagrees with the shard manifest's vertex count");
    }
  }
  auto sharded = std::unique_ptr<ShardedEngine>(new ShardedEngine(
      options, std::move(*part), std::move(engines)));
  if (!options.journal_path.empty()) {
    Status attached = sharded->AttachJournal(options.journal_path);
    if (!attached.ok()) return attached;
  }
  return sharded;
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Recover(
    const std::string& prefix, const ShardedEngineOptions& options,
    RecoveryInfo* info) {
  if (options.journal_path.empty()) {
    return Status::InvalidArgument(
        "ShardedEngine::Recover needs ShardedEngineOptions::journal_path");
  }
  Result<std::unique_ptr<ShardedEngine>> sharded = Open(prefix, options);
  if (sharded.ok() && info != nullptr) *info = (*sharded)->recovery_info();
  return sharded;
}

Status ShardedEngine::AttachJournal(const std::string& path) {
  UpdateJournal::OpenInfo info;
  Result<std::unique_ptr<UpdateJournal>> journal = UpdateJournal::Open(path, &info);
  if (!journal.ok()) return journal.status();
  Result<std::vector<GraphDelta>> deltas = UpdateJournal::Replay(path);
  if (!deltas.ok()) return deltas.status();
  // Replay through the regular coordinator update path; journal_ is still
  // null, so nothing is re-appended. A committed record that no longer
  // applies means the journal belongs to a different artifact family.
  for (std::size_t i = 0; i < deltas->size(); ++i) {
    Result<RebuildScope> applied = ApplyUpdate((*deltas)[i]);
    if (!applied.ok()) {
      return Status::Corruption(
          "journal replay failed at record " + std::to_string(i + 1) + "/" +
          std::to_string(deltas->size()) + ": " +
          applied.status().ToString() +
          " (journal " + path + " does not match this artifact family)");
    }
  }
  journal_ = std::move(*journal);
  recovery_info_.records_replayed = deltas->size();
  recovery_info_.torn_bytes_discarded = info.torn_bytes_discarded;
  recovery_info_.journal_created = info.created;
  return Status::OK();
}

bool ShardedEngine::RootAdmits(const EngineSnapshot& snap, const Query& query,
                               const QueryOptions& options, int z,
                               const BitVector& query_bv, double* bound) {
  const TreeIndex& tree = *snap.tree;
  const std::uint32_t root = tree.root();
  const std::uint32_t r = query.radius;
  // Root aggregates are exact folds (OR / max) over every owned descendant
  // row, so a root that fails a test has no descendant that passes it — the
  // detector itself would answer empty from this shard.
  if (options.use_keyword_pruning &&
      !tree.SignatureIntersects(root, r, query_bv)) {
    return false;
  }
  const std::uint32_t required_support = query.k >= 2 ? query.k - 2 : 0;
  if (options.use_support_pruning &&
      (tree.SupportBound(root, r) < required_support ||
       (options.use_center_truss_bound &&
        tree.CenterTrussBound(root) < query.k))) {
    return false;
  }
  *bound = z >= 0 ? tree.ScoreBound(root, r, static_cast<std::uint32_t>(z))
                  : std::numeric_limits<double>::infinity();
  return true;
}

Result<TopLResult> ShardedEngine::SearchMerged(
    const Query& query, const QueryOptions& options,
    const ProgressiveOptions* progressive) {
  TOPL_RETURN_IF_ERROR(query.Validate());
  Timer timer;

  // Pin every shard's snapshot up front so one query routes and searches
  // against a consistent per-shard view even while updates land.
  std::vector<std::shared_ptr<const EngineSnapshot>> snaps(engines_.size());
  for (std::size_t s = 0; s < engines_.size(); ++s) {
    snaps[s] = engines_[s]->snapshot();
  }
  const PrecomputedData& pre0 = *snaps[0]->pre;
  if (query.radius > pre0.r_max()) {
    return Status::InvalidArgument(
        "query radius exceeds the index's r_max; rebuild the index with a "
        "larger PrecomputeOptions::r_max");
  }
  const int z = pre0.ThresholdIndex(query.theta);
  const BitVector query_bv =
      BitVector::FromKeywords(query.keywords, pre0.signature_bits());
  const bool score_pruning = options.use_score_pruning && z >= 0;

  struct Route {
    std::uint32_t shard;
    double bound;
  };
  std::vector<Route> routes;
  routes.reserve(engines_.size());
  for (std::uint32_t s = 0; s < engines_.size(); ++s) {
    double bound = kNegInf;
    if (RootAdmits(*snaps[s], query, options, z, query_bv, &bound)) {
      routes.push_back({s, bound});
    }
  }
  // Best-bound-first: early shards are the likeliest to raise the σ_L floor
  // that routes the rest away. Stable so equal bounds keep shard order.
  std::stable_sort(routes.begin(), routes.end(),
                   [](const Route& a, const Route& b) { return a.bound > b.bound; });

  const bool seeded = options.initial_threshold > kNegInf;
  const DeadlineClock deadline(progressive ? progressive->deadline_seconds : 0.0);

  TopLResult merged;
  double upper = kNegInf;
  for (const Route& route : routes) {
    const bool pool_full = merged.communities.size() >= query.top_l;
    double floor = options.initial_threshold;
    if (pool_full) {
      floor = std::max(floor, merged.communities.back().score());
    }
    // Strict <, mirroring the detector's termination test: a shard whose
    // best possible score ties the floor can still win a center tiebreak.
    if (score_pruning && (pool_full || seeded) && route.bound < floor) {
      continue;
    }
    if (progressive &&
        (deadline.Expired() || progressive->cancel.cancelled())) {
      // Budget spent mid-family: the unvisited shards' root bounds are the
      // honest cap on what the truncated answer might be missing.
      merged.truncated = true;
      upper = std::max(upper, route.bound);
      continue;
    }

    Result<TopLResult> shard_result = TopLResult{};
    if (progressive) {
      ProgressiveOptions po = *progressive;
      po.query = options;
      if (pool_full || seeded) {
        po.query.initial_threshold = std::max(po.query.initial_threshold, floor);
      }
      if (progressive->deadline_seconds > 0.0) {
        po.deadline_seconds = std::max(
            1e-9, progressive->deadline_seconds - timer.ElapsedSeconds());
      }
      // Per-shard intermediate streams are suppressed: they would expose
      // non-merged prefixes. The wrapper emits one merged update at the end.
      shard_result =
          engines_[route.shard]->SearchProgressive(query, po, nullptr);
    } else {
      QueryOptions shard_options = options;
      if (pool_full || seeded) {
        shard_options.initial_threshold =
            std::max(shard_options.initial_threshold, floor);
      }
      shard_result = engines_[route.shard]->Search(query, shard_options);
    }
    if (!shard_result.ok()) return shard_result.status();
    ops_routed_[route.shard]->fetch_add(1, std::memory_order_relaxed);

    merged.stats += shard_result->stats;
    merged.truncated |= shard_result->truncated;
    upper = std::max(upper, shard_result->score_upper_bound);
    merged.communities.insert(merged.communities.end(),
                              shard_result->communities.begin(),
                              shard_result->communities.end());
    // Shards own disjoint centers, so the concatenation has no duplicates;
    // the canonical sort + truncation is the whole commutative merge.
    SortCommunityResults(&merged.communities);
    if (merged.communities.size() > query.top_l) {
      merged.communities.resize(query.top_l);
    }
  }
  if (merged.truncated) merged.score_upper_bound = upper;
  merged.stats.elapsed_seconds = timer.ElapsedSeconds();
  return merged;
}

Result<TopLResult> ShardedEngine::Search(const Query& query,
                                         const QueryOptions& options) {
  return SearchMerged(query, options, nullptr);
}

Result<TopLResult> ShardedEngine::SearchProgressive(
    const Query& query, const ProgressiveOptions& options,
    ProgressiveCallback on_update) {
  Result<TopLResult> result = SearchMerged(query, options.query, &options);
  if (result.ok() && on_update) {
    ProgressiveUpdate update;
    update.communities =
        std::span<const CommunityResult>(result->communities);
    update.upper_bound = result->score_upper_bound;
    update.wave = result->stats.waves;
    update.candidates_refined = result->stats.candidates_refined;
    on_update(update);
  }
  return result;
}

Result<DTopLResult> ShardedEngine::SearchDiversified(
    const Query& query, const DTopLOptions& options) {
  if (options.n_factor < 1) {
    return Status::InvalidArgument("n_factor must be >= 1");
  }

  // Phase 1: the top-(nL) candidate pool, merged across shards with floor
  // propagation at pool size nL.
  Timer candidate_timer;
  Query pool_query = query;
  pool_query.top_l = query.top_l * options.n_factor;
  Result<TopLResult> pool =
      SearchMerged(pool_query, options.topl_options, nullptr);
  if (!pool.ok()) return pool.status();

  DTopLResult result;
  result.truncated = pool->truncated;
  result.score_upper_bound = pool->score_upper_bound;
  result.candidate_stats = pool->stats;
  result.candidate_seconds = candidate_timer.ElapsedSeconds();
  result.pool_centers.reserve(pool->communities.size());
  for (const CommunityResult& c : pool->communities) {
    result.pool_centers.push_back(c.community.center);
  }
  if (!pool->communities.empty()) {
    result.pool_floor = pool->communities.back().score();
  }
  result.pool_full = pool->communities.size() >= pool_query.top_l;

  // Phase 2: the diversified selection runs once over the merged pool —
  // identical input to the single-engine detector, identical selection.
  Timer refine_timer;
  const std::vector<CommunityResult>& candidates = pool->communities;
  std::vector<std::size_t> selection;
  switch (options.algorithm) {
    case DTopLAlgorithm::kGreedyWithPruning:
      selection = SelectDiversifiedGreedyWP(candidates, query.top_l,
                                            &result.gain_evaluations);
      break;
    case DTopLAlgorithm::kGreedyWithoutPruning:
      selection = SelectDiversifiedGreedyWoP(candidates, query.top_l,
                                             &result.gain_evaluations);
      break;
    case DTopLAlgorithm::kOptimal: {
      Result<std::vector<std::size_t>> optimal = SelectDiversifiedOptimal(
          candidates, query.top_l, options.max_optimal_subsets);
      if (!optimal.ok()) return optimal.status();
      selection = std::move(optimal).value();
      break;
    }
  }
  result.diversity_score = DiversityOfSelection(candidates, selection);
  result.communities.reserve(selection.size());
  for (std::size_t idx : selection) {
    result.communities.push_back(candidates[idx]);
  }
  result.refine_seconds = refine_timer.ElapsedSeconds();
  return result;
}

Result<RebuildScope> ShardedEngine::ApplyUpdate(const GraphDelta& delta) {
  std::lock_guard<std::mutex> lock(update_mu_);

  const std::shared_ptr<const EngineSnapshot> base = engines_[0]->snapshot();
  Result<Graph> updated = ApplyDelta(*base->graph, delta);
  if (!updated.ok()) return updated.status();

  const PrecomputedData& pre0 = *base->pre;
  Result<ShardDirtyClasses> dirty = ClassifyShardDirty(
      *base->graph, *updated, delta, pre0.r_max(), pre0.thetas().front());
  if (!dirty.ok()) return dirty.status();

  const std::size_t n = base->graph->NumVertices();
  const std::size_t touched = delta.TouchedVertices().size();
  const std::uint32_t num_shards = options_.num_shards;
  // ONE shared post-delta graph serves every shard (exact refinement reads
  // it, so even untouched shards must swap it in). Cloning it per shard —
  // the pre-refactor design — made every update O(n·shards) no matter how
  // local the dirty region was.
  const auto new_graph = std::make_shared<const Graph>(std::move(*updated));

  // Plan phase: fork a copy-on-write precompute only for shards that own
  // grow-dirty rows. The delta's dirty ball is local (radius ≤ r_max) and
  // the partition is locality-major, so most updates touch one or two
  // shards; the rest re-install their existing pre/tree pointers untouched.
  struct ShardPlan {
    std::shared_ptr<const EngineSnapshot> snap;
    std::vector<VertexId> rows;       ///< owned grow-dirty rows to recompute
    std::vector<VertexId> dirty_ids;  ///< owned centers for cache invalidation
    std::shared_ptr<PrecomputedData> pre;  ///< forked iff rows is non-empty
  };
  std::vector<ShardPlan> plans(num_shards);
  std::vector<std::pair<std::uint32_t, VertexId>> jobs;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    ShardPlan& plan = plans[s];
    plan.snap = engines_[s]->snapshot();
    plan.rows = IntersectSorted(dirty->recompute, partition_.owned[s]);
    plan.dirty_ids = IntersectSorted(dirty->all, partition_.owned[s]);
    if (!plan.rows.empty()) {
      // Induct from the shard's *own* rows: its owned rows are exact (or
      // valid upper bounds) for its previous graph, so recomputing only the
      // owned grow-dirty rows re-establishes the invariant.
      plan.pre = std::make_shared<PrecomputedData>(*plan.snap->pre);
      for (VertexId v : plan.rows) jobs.emplace_back(s, v);
    }
  }

  // Row recompute, flattened across shards: owned sets are disjoint and
  // Recompute writes only the target vertex's rows, so every (shard, row)
  // job is independent. Parallelism scales with the number of dirty rows,
  // not with how few shards the delta happens to touch.
  if (!jobs.empty() && update_pool_.num_threads() > 1 && jobs.size() > 1) {
    std::vector<std::optional<VertexPrecomputer>> precomputers(
        update_pool_.num_threads() + 1);
    update_pool_.ParallelForWithWorker(
        0, jobs.size(),
        [&](std::size_t worker, std::size_t i) {
          std::optional<VertexPrecomputer>& precomputer = precomputers[worker];
          if (!precomputer.has_value()) precomputer.emplace(*new_graph);
          precomputer->Recompute(jobs[i].second, plans[jobs[i].first].pre.get());
        },
        /*grain=*/1);
  } else if (!jobs.empty()) {
    VertexPrecomputer precomputer(*new_graph);
    for (const auto& [s, v] : jobs) precomputer.Recompute(v, plans[s].pre.get());
  }

  // Durability before visibility: every per-shard computation above is
  // derived state, so committing the delta to the coordinator journal here —
  // after the compute succeeded, before any shard installs — means a crash
  // never leaves an acknowledged update unrecoverable, and a failed append
  // rejects the update with every shard still serving the old epoch.
  if (journal_ != nullptr) {
    TOPL_RETURN_IF_ERROR(journal_->Append(delta));
  }

  // Patch + install per shard. Untouched shards install {new graph, same
  // pre, same tree} — O(1), no recompute, rebase-only cache pass.
  std::vector<Status> statuses(num_shards, Status::OK());
  std::vector<RebuildScope> scopes(num_shards);
  auto finish_shard = [&](std::size_t s) {
    ShardPlan& plan = plans[s];
    SharedUpdate next;
    next.graph = new_graph;
    next.scope.num_vertices = n;
    next.scope.touched_vertices = touched;
    next.scope.influence_frontier = dirty->influence_frontier;
    next.scope.dirty_centers = plan.rows.size();
    next.scope.tree_nodes_total = plan.snap->tree->NumNodes();
    if (plan.pre != nullptr) {
      std::vector<char> dirty_mask(n, 0);
      for (VertexId v : plan.rows) dirty_mask[v] = 1;
      auto patched = std::make_shared<TreeIndex>();
      next.scope.tree_nodes_patched = IndexUpdater::PatchTree(
          *plan.snap->tree, plan.pre.get(), dirty_mask, patched.get());
      next.pre = plan.pre;
      next.tree = std::move(patched);
    } else {
      next.pre = plan.snap->pre;
      next.tree = plan.snap->tree;
    }
    next.dirty_center_ids = std::move(plan.dirty_ids);
    Result<RebuildScope> installed = engines_[s]->InstallUpdate(std::move(next));
    if (installed.ok()) {
      scopes[s] = *installed;
    } else {
      statuses[s] = installed.status();
    }
  };
  if (update_pool_.num_threads() > 1 && num_shards > 1) {
    update_pool_.ParallelFor(0, num_shards, finish_shard, /*grain=*/1);
  } else {
    for (std::uint32_t s = 0; s < num_shards; ++s) finish_shard(s);
  }
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    TOPL_RETURN_IF_ERROR(statuses[s]);
  }

  // The owned row sets partition dirty->recompute exactly, so the sums
  // report the fleet-wide maintenance work for this delta.
  RebuildScope total;
  total.num_vertices = n;
  total.touched_vertices = touched;
  total.influence_frontier = dirty->influence_frontier;
  for (const RebuildScope& scope : scopes) {
    total.dirty_centers += scope.dirty_centers;
    total.tree_nodes_patched += scope.tree_nodes_patched;
    total.tree_nodes_total += scope.tree_nodes_total;
  }
  return total;
}

EngineStats ShardedEngine::Stats() const {
  EngineStats total = engines_[0]->Stats();
  for (std::size_t s = 1; s < engines_.size(); ++s) {
    const EngineStats stats = engines_[s]->Stats();
    total.queries_total += stats.queries_total;
    total.topl_queries += stats.topl_queries;
    total.dtopl_queries += stats.dtopl_queries;
    total.failed_queries += stats.failed_queries;
    total.batches += stats.batches;
    total.progressive_queries += stats.progressive_queries;
    total.truncated_queries += stats.truncated_queries;
    total.queries_shed += stats.queries_shed;
    total.queries_degraded += stats.queries_degraded;
    // updates_applied is a coordinator count (every shard installs once per
    // ApplyUpdate) — shard 0's value already reports it; dirty centers sum.
    total.update_dirty_centers += stats.update_dirty_centers;
    total.snapshot_epoch = std::max(total.snapshot_epoch, stats.snapshot_epoch);
    total.live_snapshots += stats.live_snapshots;
    total.retired_contexts += stats.retired_contexts;
    total.cache_enabled |= stats.cache_enabled;
    total.cache_hits += stats.cache_hits;
    total.cache_misses += stats.cache_misses;
    total.cache_coalesced += stats.cache_coalesced;
    total.cache_invalidated += stats.cache_invalidated;
    total.cache_evicted += stats.cache_evicted;
    total.cache_entries += stats.cache_entries;
    total.cache_bytes += stats.cache_bytes;
    total.query_stats += stats.query_stats;
    for (std::size_t k = 0; k < total.latency.size(); ++k) {
      const LatencySummary& shard = stats.latency[k];
      LatencySummary& merged = total.latency[k];
      merged.count += shard.count;
      // Cross-shard percentiles are not recoverable from summaries; keep
      // the conservative max so the merged figures never under-report.
      merged.p50_seconds = std::max(merged.p50_seconds, shard.p50_seconds);
      merged.p99_seconds = std::max(merged.p99_seconds, shard.p99_seconds);
      merged.p999_seconds = std::max(merged.p999_seconds, shard.p999_seconds);
      merged.max_seconds = std::max(merged.max_seconds, shard.max_seconds);
    }
    total.p50_latency_seconds =
        std::max(total.p50_latency_seconds, stats.p50_latency_seconds);
    total.p99_latency_seconds =
        std::max(total.p99_latency_seconds, stats.p99_latency_seconds);
    total.p999_latency_seconds =
        std::max(total.p999_latency_seconds, stats.p999_latency_seconds);
    total.max_latency_seconds =
        std::max(total.max_latency_seconds, stats.max_latency_seconds);
  }
  return total;
}

std::vector<std::uint64_t> ShardedEngine::ShardOps() const {
  std::vector<std::uint64_t> ops(ops_routed_.size());
  for (std::size_t s = 0; s < ops_routed_.size(); ++s) {
    ops[s] = ops_routed_[s]->load(std::memory_order_relaxed);
  }
  return ops;
}

}  // namespace topl

#ifndef TOPL_SHARD_SHARD_PARTITION_H_
#define TOPL_SHARD_SHARD_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace topl {

/// \brief A deterministic assignment of every vertex to exactly one shard.
///
/// The partition decides *candidate ownership*, not data placement: every
/// shard of a ShardedEngine serves a full graph replica, and the partition
/// only splits the candidate-center universe so that each center is searched
/// (and its precompute row maintained) by exactly one shard. Compute derives
/// the assignment from the PR-8 locality order — contiguous runs of the
/// BFS-clustered order become shards, so a shard's owned centers share
/// neighborhoods and its subset tree keeps tight aggregate bounds.
///
/// `digest` is an FNV-1a hash over (num_shards, owner[]) used to verify that
/// the members of an on-disk artifact family were cut from the same
/// partition before they are served together.
struct ShardPartition {
  std::uint32_t num_shards = 1;
  /// owner[v] = shard that searches and maintains center v.
  std::vector<std::uint32_t> owner;
  /// Per-shard owned centers, strictly ascending; the concatenation is a
  /// permutation of [0, n) and owned[s] is never empty.
  std::vector<std::vector<VertexId>> owned;
  std::uint64_t digest = 0;

  /// Locality-order partition of `g` into `num_shards` non-empty contiguous
  /// runs. Deterministic for a given graph. Fails when num_shards is 0 or
  /// exceeds the vertex count.
  static Result<ShardPartition> Compute(const Graph& g,
                                        std::uint32_t num_shards);

  /// Rebuilds the derived fields (owned lists, digest) from an owner
  /// assignment, validating that every shard is non-empty.
  static Result<ShardPartition> FromOwner(std::vector<std::uint32_t> owner,
                                          std::uint32_t num_shards);

  /// The "shard.map" section payload for shard `shard_index`:
  /// [num_shards, shard_index, digest_lo, digest_hi, owned ids…].
  std::vector<std::uint32_t> EncodeManifest(std::uint32_t shard_index) const;

  /// Splits a manifest back into its fields; rejects malformed payloads.
  /// The digest is the *writer's* partition digest — callers compare it
  /// across an artifact family and against FromOwner's recomputed value.
  static Result<ShardPartition> DecodeManifests(
      const std::vector<std::vector<std::uint32_t>>& manifests);
};

}  // namespace topl

#endif  // TOPL_SHARD_SHARD_PARTITION_H_

#ifndef TOPL_ENGINE_ENGINE_STATS_H_
#define TOPL_ENGINE_ENGINE_STATS_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "common/latency_histogram.h"
#include "core/query.h"

namespace topl {

/// How a query entered the engine. Latency samples are tagged with their
/// kind so percentiles are reported per kind — batch fan-outs and
/// progressive (possibly deadline-truncated) queries have very different
/// latency profiles from interactive single queries, and mixing them into
/// one histogram made p50/p99 meaningless for all of them.
enum class QueryKind : std::uint8_t {
  kSearch = 0,       ///< Search / Submit: one synchronous or async query
  kBatch = 1,        ///< a SearchBatch slot
  kDiversified = 2,  ///< SearchDiversified / SubmitDiversified
  kProgressive = 3,  ///< SearchProgressive / SearchDiversifiedProgressive
};

inline constexpr std::size_t kNumQueryKinds = 4;

inline const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kSearch:
      return "search";
    case QueryKind::kBatch:
      return "batch";
    case QueryKind::kDiversified:
      return "dtopl";
    case QueryKind::kProgressive:
      return "progressive";
  }
  return "?";
}

/// Latency distribution of one query kind. Percentiles are estimated from
/// power-of-two histograms at the bucket's geometric midpoint, so they are
/// within a factor sqrt(2) of the true sample (common/latency_histogram.h);
/// max is exact.
struct LatencySummary {
  std::uint64_t count = 0;
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  double p999_seconds = 0.0;
  double max_seconds = 0.0;
};

/// \brief Snapshot of an Engine's cumulative service counters, aggregated
/// over every query answered since the engine was created.
struct EngineStats {
  std::uint64_t queries_total = 0;
  std::uint64_t topl_queries = 0;
  std::uint64_t dtopl_queries = 0;
  std::uint64_t failed_queries = 0;
  std::uint64_t batches = 0;
  /// Progressive entry points served (also counted in topl/dtopl_queries).
  std::uint64_t progressive_queries = 0;
  /// Queries that returned best-so-far after a deadline, cancellation, or
  /// progressive early stop.
  std::uint64_t truncated_queries = 0;

  /// Queries rejected by admission control with Status::Unavailable
  /// (engine_options.h max_in_flight_queries) — not counted in
  /// queries_total, which tracks executions.
  std::uint64_t queries_shed = 0;
  /// Queries the overloaded engine served as truncated anytime answers
  /// instead of shedding (the caller had a deadline). Also counted in
  /// queries_total and truncated_queries.
  std::uint64_t queries_degraded = 0;

  /// Graph deltas installed via Engine::ApplyUpdate.
  std::uint64_t updates_applied = 0;
  /// Cumulative dirty centers re-precomputed across all updates (the
  /// incremental-maintenance work actually done; compare against
  /// updates_applied * n for the avoided fraction).
  std::uint64_t update_dirty_centers = 0;
  /// Epoch of the snapshot currently serving new queries (0 until the first
  /// update).
  std::uint64_t snapshot_epoch = 0;
  /// Snapshots still referenced: the current one plus any older epochs kept
  /// alive by in-flight queries or not-yet-retired worker contexts.
  std::uint64_t live_snapshots = 0;
  /// Worker contexts destroyed because their snapshot was superseded (their
  /// counters live on in these stats).
  std::uint64_t retired_contexts = 0;

  /// Result-cache counters (engine_options.h enable_result_cache; all zero
  /// when the cache is off). queries_total counts *executions*: a cache hit
  /// or coalesced wait answers a query without executing it, so hits and
  /// coalesced are reported here instead of inflating the latency
  /// histograms with sub-microsecond samples.
  bool cache_enabled = false;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;      ///< lookups that led an execution
  std::uint64_t cache_coalesced = 0;   ///< lookups that joined an in-flight one
  std::uint64_t cache_invalidated = 0; ///< entries erased by dirty-region checks
  std::uint64_t cache_evicted = 0;     ///< entries erased by the LRU byte budget
  std::uint64_t cache_entries = 0;     ///< resident entries right now
  std::uint64_t cache_bytes = 0;       ///< resident bytes right now

  /// Per-query counters merged with QueryStats::operator+= (prune counters,
  /// heap pops, refinements; elapsed_seconds is the summed query time).
  QueryStats query_stats;

  /// Latency percentiles per query kind, indexed by QueryKind.
  std::array<LatencySummary, kNumQueryKinds> latency;

  /// Latency percentiles over *all* queries of every kind (legacy view;
  /// prefer the per-kind summaries for alerting).
  double p50_latency_seconds = 0.0;
  double p99_latency_seconds = 0.0;
  double p999_latency_seconds = 0.0;
  double max_latency_seconds = 0.0;

  const LatencySummary& ForKind(QueryKind kind) const {
    return latency[static_cast<std::size_t>(kind)];
  }

  std::string ToString() const {
    std::string out =
        "queries=" + std::to_string(queries_total) +
        " (topl=" + std::to_string(topl_queries) +
        " dtopl=" + std::to_string(dtopl_queries) +
        " failed=" + std::to_string(failed_queries) +
        " truncated=" + std::to_string(truncated_queries) +
        ") shed=" + std::to_string(queries_shed) +
        " degraded=" + std::to_string(queries_degraded) +
        " batches=" + std::to_string(batches) +
        " p50=" + std::to_string(p50_latency_seconds) + "s" +
        " p99=" + std::to_string(p99_latency_seconds) + "s" +
        " p999=" + std::to_string(p999_latency_seconds) + "s" +
        " max=" + std::to_string(max_latency_seconds) + "s";
    for (std::size_t k = 0; k < kNumQueryKinds; ++k) {
      if (latency[k].count == 0) continue;
      out += std::string(" ") + QueryKindName(static_cast<QueryKind>(k)) +
             "{n=" + std::to_string(latency[k].count) +
             " p50=" + std::to_string(latency[k].p50_seconds) + "s" +
             " p99=" + std::to_string(latency[k].p99_seconds) + "s" +
             " p999=" + std::to_string(latency[k].p999_seconds) + "s}";
    }
    out += " pruned=" + std::to_string(query_stats.TotalPruned()) +
           " refined=" + std::to_string(query_stats.candidates_refined);
    if (cache_enabled) {
      out += " cache{hits=" + std::to_string(cache_hits) +
             " misses=" + std::to_string(cache_misses) +
             " coalesced=" + std::to_string(cache_coalesced) +
             " invalidated=" + std::to_string(cache_invalidated) +
             " evicted=" + std::to_string(cache_evicted) +
             " entries=" + std::to_string(cache_entries) +
             " bytes=" + std::to_string(cache_bytes) + "}";
    }
    if (updates_applied > 0) {
      out += " updates=" + std::to_string(updates_applied) +
             " dirty_centers=" + std::to_string(update_dirty_centers) +
             " epoch=" + std::to_string(snapshot_epoch) +
             " live_snapshots=" + std::to_string(live_snapshots) +
             " retired_contexts=" + std::to_string(retired_contexts);
    }
    return out;
  }
};

/// \brief One worker context's mutex-free stats accumulator.
///
/// Exactly one query writes to a shard at a time (the Engine leases each
/// worker context to a single query), but Engine::Stats() reads shards
/// concurrently with writers, so every field is a relaxed atomic: snapshots
/// are cheap, race-free, and never block the query path. Latencies go into
/// one power-of-two histogram *per query kind* (the shared layout of
/// common/latency_histogram.h: bucket i holds queries taking
/// [2^(i-1), 2^i) microseconds) from which the snapshot derives per-kind and
/// overall p50/p99/p999.
class EngineStatsShard {
 public:
  static constexpr std::size_t kLatencyBuckets = kLatencyHistogramBuckets;

  using Histogram = LatencyBuckets;

  void Record(QueryKind kind, bool diversified, bool ok, bool truncated,
              double seconds, const QueryStats& qs) {
    constexpr auto relaxed = std::memory_order_relaxed;
    const std::size_t k = static_cast<std::size_t>(kind);
    (diversified ? dtopl_queries_ : topl_queries_).fetch_add(1, relaxed);
    if (!ok) failed_queries_.fetch_add(1, relaxed);
    if (truncated) truncated_queries_.fetch_add(1, relaxed);
    if (kind == QueryKind::kProgressive) {
      progressive_queries_.fetch_add(1, relaxed);
    }

    const std::uint64_t micros =
        seconds <= 0.0 ? 0 : static_cast<std::uint64_t>(seconds * 1e6);
    total_micros_.fetch_add(micros, relaxed);
    std::atomic<std::uint64_t>& max_micros = max_micros_[k];
    std::uint64_t prev_max = max_micros.load(relaxed);
    while (prev_max < micros &&
           !max_micros.compare_exchange_weak(prev_max, micros, relaxed)) {
    }
    latency_buckets_[k][LatencyBucket(micros)].fetch_add(1, relaxed);

    heap_pops_.fetch_add(qs.heap_pops, relaxed);
    index_nodes_visited_.fetch_add(qs.index_nodes_visited, relaxed);
    pruned_keyword_.fetch_add(qs.pruned_keyword, relaxed);
    pruned_support_.fetch_add(qs.pruned_support, relaxed);
    pruned_score_.fetch_add(qs.pruned_score, relaxed);
    pruned_termination_.fetch_add(qs.pruned_termination, relaxed);
    candidates_refined_.fetch_add(qs.candidates_refined, relaxed);
    communities_found_.fetch_add(qs.communities_found, relaxed);
    triangles_inspected_.fetch_add(qs.triangles_inspected, relaxed);
    support_recomputes_avoided_.fetch_add(qs.support_recomputes_avoided, relaxed);
    waves_.fetch_add(qs.waves, relaxed);
    parallel_chunks_.fetch_add(qs.parallel_chunks, relaxed);
  }

  /// Adds this shard's counters into `total` and its per-kind latency
  /// histograms into `buckets`. Percentiles are computed by the caller once
  /// all shards (and thus all buckets) are merged.
  void MergeInto(EngineStats* total,
                 std::array<Histogram, kNumQueryKinds>* buckets) const {
    constexpr auto relaxed = std::memory_order_relaxed;
    total->topl_queries += topl_queries_.load(relaxed);
    total->dtopl_queries += dtopl_queries_.load(relaxed);
    total->failed_queries += failed_queries_.load(relaxed);
    total->truncated_queries += truncated_queries_.load(relaxed);
    total->progressive_queries += progressive_queries_.load(relaxed);
    for (std::size_t k = 0; k < kNumQueryKinds; ++k) {
      total->latency[k].max_seconds =
          std::max(total->latency[k].max_seconds,
                   static_cast<double>(max_micros_[k].load(relaxed)) / 1e6);
    }

    QueryStats shard;
    shard.heap_pops = heap_pops_.load(relaxed);
    shard.index_nodes_visited = index_nodes_visited_.load(relaxed);
    shard.pruned_keyword = pruned_keyword_.load(relaxed);
    shard.pruned_support = pruned_support_.load(relaxed);
    shard.pruned_score = pruned_score_.load(relaxed);
    shard.pruned_termination = pruned_termination_.load(relaxed);
    shard.candidates_refined = candidates_refined_.load(relaxed);
    shard.communities_found = communities_found_.load(relaxed);
    shard.triangles_inspected = triangles_inspected_.load(relaxed);
    shard.support_recomputes_avoided = support_recomputes_avoided_.load(relaxed);
    shard.waves = waves_.load(relaxed);
    shard.parallel_chunks = parallel_chunks_.load(relaxed);
    shard.elapsed_seconds = static_cast<double>(total_micros_.load(relaxed)) / 1e6;
    total->query_stats += shard;

    for (std::size_t k = 0; k < kNumQueryKinds; ++k) {
      for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
        (*buckets)[k][i] += latency_buckets_[k][i].load(relaxed);
      }
    }
  }

  /// Representative latency (seconds) of bucket i: the geometric midpoint of
  /// its [2^(i-1), 2^i) microsecond range (common/latency_histogram.h).
  static double BucketSeconds(std::size_t i) { return LatencyBucketSeconds(i); }

  static std::size_t LatencyBucket(std::uint64_t micros) {
    return LatencyBucketIndex(micros);
  }

 private:
  std::atomic<std::uint64_t> topl_queries_{0};
  std::atomic<std::uint64_t> dtopl_queries_{0};
  std::atomic<std::uint64_t> failed_queries_{0};
  std::atomic<std::uint64_t> truncated_queries_{0};
  std::atomic<std::uint64_t> progressive_queries_{0};
  std::atomic<std::uint64_t> total_micros_{0};
  std::array<std::atomic<std::uint64_t>, kNumQueryKinds> max_micros_{};
  std::array<std::array<std::atomic<std::uint64_t>, kLatencyBuckets>,
             kNumQueryKinds>
      latency_buckets_{};

  std::atomic<std::uint64_t> heap_pops_{0};
  std::atomic<std::uint64_t> index_nodes_visited_{0};
  std::atomic<std::uint64_t> pruned_keyword_{0};
  std::atomic<std::uint64_t> pruned_support_{0};
  std::atomic<std::uint64_t> pruned_score_{0};
  std::atomic<std::uint64_t> pruned_termination_{0};
  std::atomic<std::uint64_t> candidates_refined_{0};
  std::atomic<std::uint64_t> communities_found_{0};
  std::atomic<std::uint64_t> triangles_inspected_{0};
  std::atomic<std::uint64_t> support_recomputes_avoided_{0};
  std::atomic<std::uint64_t> waves_{0};
  std::atomic<std::uint64_t> parallel_chunks_{0};
};

}  // namespace topl

#endif  // TOPL_ENGINE_ENGINE_STATS_H_

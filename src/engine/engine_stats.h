#ifndef TOPL_ENGINE_ENGINE_STATS_H_
#define TOPL_ENGINE_ENGINE_STATS_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>

#include "core/query.h"

namespace topl {

/// \brief Snapshot of an Engine's cumulative service counters, aggregated
/// over every query answered since the engine was created.
struct EngineStats {
  std::uint64_t queries_total = 0;
  std::uint64_t topl_queries = 0;
  std::uint64_t dtopl_queries = 0;
  std::uint64_t failed_queries = 0;
  std::uint64_t batches = 0;

  /// Per-query counters merged with QueryStats::operator+= (prune counters,
  /// heap pops, refinements; elapsed_seconds is the summed query time).
  QueryStats query_stats;

  /// Latency percentiles over all successful + failed queries, estimated
  /// from a power-of-two-bucket histogram (values accurate to within ~1.5x).
  double p50_latency_seconds = 0.0;
  double p99_latency_seconds = 0.0;
  double max_latency_seconds = 0.0;

  std::string ToString() const {
    return "queries=" + std::to_string(queries_total) +
           " (topl=" + std::to_string(topl_queries) +
           " dtopl=" + std::to_string(dtopl_queries) +
           " failed=" + std::to_string(failed_queries) +
           ") batches=" + std::to_string(batches) +
           " p50=" + std::to_string(p50_latency_seconds) + "s" +
           " p99=" + std::to_string(p99_latency_seconds) + "s" +
           " max=" + std::to_string(max_latency_seconds) + "s" +
           " pruned=" + std::to_string(query_stats.TotalPruned()) +
           " refined=" + std::to_string(query_stats.candidates_refined);
  }
};

/// \brief One worker context's mutex-free stats accumulator.
///
/// Exactly one query writes to a shard at a time (the Engine leases each
/// worker context to a single query), but Engine::Stats() reads shards
/// concurrently with writers, so every field is a relaxed atomic: snapshots
/// are cheap, race-free, and never block the query path. Latencies go into a
/// power-of-two histogram (bucket i holds queries taking [2^(i-1), 2^i)
/// microseconds) from which the snapshot derives p50/p99.
class EngineStatsShard {
 public:
  static constexpr std::size_t kLatencyBuckets = 44;  // 2^43 us ≈ 101 days

  void Record(bool diversified, bool ok, double seconds, const QueryStats& qs) {
    constexpr auto relaxed = std::memory_order_relaxed;
    (diversified ? dtopl_queries_ : topl_queries_).fetch_add(1, relaxed);
    if (!ok) failed_queries_.fetch_add(1, relaxed);

    const std::uint64_t micros =
        seconds <= 0.0 ? 0 : static_cast<std::uint64_t>(seconds * 1e6);
    total_micros_.fetch_add(micros, relaxed);
    std::uint64_t prev_max = max_micros_.load(relaxed);
    while (prev_max < micros &&
           !max_micros_.compare_exchange_weak(prev_max, micros, relaxed)) {
    }
    latency_buckets_[LatencyBucket(micros)].fetch_add(1, relaxed);

    heap_pops_.fetch_add(qs.heap_pops, relaxed);
    index_nodes_visited_.fetch_add(qs.index_nodes_visited, relaxed);
    pruned_keyword_.fetch_add(qs.pruned_keyword, relaxed);
    pruned_support_.fetch_add(qs.pruned_support, relaxed);
    pruned_score_.fetch_add(qs.pruned_score, relaxed);
    pruned_termination_.fetch_add(qs.pruned_termination, relaxed);
    candidates_refined_.fetch_add(qs.candidates_refined, relaxed);
    communities_found_.fetch_add(qs.communities_found, relaxed);
  }

  /// Adds this shard's counters into `total` and its latency histogram into
  /// `buckets`. Percentiles are computed by the caller once all shards (and
  /// thus all buckets) are merged.
  void MergeInto(EngineStats* total,
                 std::array<std::uint64_t, kLatencyBuckets>* buckets) const {
    constexpr auto relaxed = std::memory_order_relaxed;
    total->topl_queries += topl_queries_.load(relaxed);
    total->dtopl_queries += dtopl_queries_.load(relaxed);
    total->failed_queries += failed_queries_.load(relaxed);
    total->max_latency_seconds =
        std::max(total->max_latency_seconds,
                 static_cast<double>(max_micros_.load(relaxed)) / 1e6);

    QueryStats shard;
    shard.heap_pops = heap_pops_.load(relaxed);
    shard.index_nodes_visited = index_nodes_visited_.load(relaxed);
    shard.pruned_keyword = pruned_keyword_.load(relaxed);
    shard.pruned_support = pruned_support_.load(relaxed);
    shard.pruned_score = pruned_score_.load(relaxed);
    shard.pruned_termination = pruned_termination_.load(relaxed);
    shard.candidates_refined = candidates_refined_.load(relaxed);
    shard.communities_found = communities_found_.load(relaxed);
    shard.elapsed_seconds = static_cast<double>(total_micros_.load(relaxed)) / 1e6;
    total->query_stats += shard;

    for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
      (*buckets)[i] += latency_buckets_[i].load(relaxed);
    }
  }

  /// Representative latency (seconds) of bucket i: the arithmetic midpoint
  /// of its [2^(i-1), 2^i) microsecond range.
  static double BucketSeconds(std::size_t i) {
    if (i == 0) return 0.0;
    return 1.5 * static_cast<double>(std::uint64_t{1} << (i - 1)) / 1e6;
  }

  static std::size_t LatencyBucket(std::uint64_t micros) {
    const std::size_t width = static_cast<std::size_t>(std::bit_width(micros));
    return width < kLatencyBuckets ? width : kLatencyBuckets - 1;
  }

 private:
  std::atomic<std::uint64_t> topl_queries_{0};
  std::atomic<std::uint64_t> dtopl_queries_{0};
  std::atomic<std::uint64_t> failed_queries_{0};
  std::atomic<std::uint64_t> total_micros_{0};
  std::atomic<std::uint64_t> max_micros_{0};
  std::array<std::atomic<std::uint64_t>, kLatencyBuckets> latency_buckets_{};

  std::atomic<std::uint64_t> heap_pops_{0};
  std::atomic<std::uint64_t> index_nodes_visited_{0};
  std::atomic<std::uint64_t> pruned_keyword_{0};
  std::atomic<std::uint64_t> pruned_support_{0};
  std::atomic<std::uint64_t> pruned_score_{0};
  std::atomic<std::uint64_t> pruned_termination_{0};
  std::atomic<std::uint64_t> candidates_refined_{0};
  std::atomic<std::uint64_t> communities_found_{0};
};

}  // namespace topl

#endif  // TOPL_ENGINE_ENGINE_STATS_H_

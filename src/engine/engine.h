#ifndef TOPL_ENGINE_ENGINE_H_
#define TOPL_ENGINE_ENGINE_H_

#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cache/query_cache.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/dtopl_detector.h"
#include "core/topl_detector.h"
#include "engine/engine_options.h"
#include "engine/engine_stats.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"
#include "index/index_update.h"
#include "index/precompute.h"
#include "index/tree_index.h"
#include "storage/update_journal.h"

namespace topl {

/// Report of the write-ahead journal replay performed when an engine opens
/// with EngineOptions::journal_path set (see Engine::Recover).
struct RecoveryInfo {
  /// Committed journal records replayed on top of the artifact at open.
  std::uint64_t records_replayed = 0;
  /// Bytes of torn (partially written, never acknowledged) trailing record
  /// discarded while opening the journal.
  std::uint64_t torn_bytes_discarded = 0;
  /// True when the journal file did not exist and was created empty.
  bool journal_created = false;
};

/// \brief One immutable serving epoch: a graph plus the offline phase built
/// over it. Engines swap whole snapshots atomically (MVCC), so a snapshot is
/// never mutated after construction — queries pin one via shared_ptr and
/// read it lock-free for their entire lifetime, even while newer snapshots
/// are installed. `tree` holds a raw pointer to `*pre`, so the two must be
/// installed together.
///
/// The pieces are individually shared so distinct snapshots can alias them:
/// a sharded deployment keeps ONE graph and ONE precompute across all shard
/// engines, and an update that leaves a shard's owned rows untouched
/// installs a snapshot that shares the old pre/tree and only swaps in the
/// new graph — O(1) instead of O(n) per shard.
struct EngineSnapshot {
  std::shared_ptr<const Graph> graph;
  std::shared_ptr<const PrecomputedData> pre;
  std::shared_ptr<const TreeIndex> tree;
  /// Monotone update counter: 0 for the open-time snapshot, +1 per applied
  /// delta.
  std::uint64_t epoch = 0;
};

/// Shared-ownership maintenance result for Engine::InstallUpdate: the same
/// contract as UpdatedIndex, but the pieces may alias the engine's current
/// snapshot (or another engine's). The sharded coordinator uses this to hand
/// every shard one shared post-delta graph, and to re-install a shard's
/// existing pre/tree untouched when the delta dirtied none of its owned
/// centers.
struct SharedUpdate {
  std::shared_ptr<const Graph> graph;
  std::shared_ptr<const PrecomputedData> pre;
  std::shared_ptr<const TreeIndex> tree;
  RebuildScope scope;
  /// Sorted ids of every owned center whose serving state changed; drives
  /// exact cache invalidation (empty = rebase-only).
  std::vector<VertexId> dirty_center_ids;
};

/// \brief Thread-safe service facade over the TopL/DTopL online phase.
///
/// The detectors themselves are single-threaded by design (they reuse O(n)
/// extraction/propagation scratch across calls); an Engine owns the shared
/// read-only state — graph, precomputed data, tree index — plus a lazily
/// grown pool of per-worker detector contexts, and multiplexes any number of
/// concurrent callers over them:
///
///  - Search / SearchDiversified: synchronous, callable from any thread.
///  - SearchBatch: fans a whole batch out across the engine's ThreadPool.
///  - Submit / SubmitDiversified: async; the query runs on a pool worker and
///    the caller gets a std::future.
///  - SearchProgressive / SearchDiversifiedProgressive: anytime queries —
///    intra-query parallel scoring over the same pool, streamed
///    intermediate answers with an upper-bound gap, per-query deadlines,
///    and cooperative cancellation (core/search_control.h).
///
/// Every query's QueryStats and latency are folded into cumulative
/// EngineStats through mutex-free per-context accumulators, with latency
/// histograms tagged by query kind (single/batch/dtopl/progressive);
/// Stats() takes a snapshot at any time without blocking the query path.
///
/// The serving state lives in an immutable EngineSnapshot swapped atomically
/// by ApplyUpdate (epoch-based MVCC): each query pins the snapshot its
/// worker context was built over, so updates never block or invalidate
/// in-flight queries, and superseded snapshots are reclaimed when their last
/// pinned context retires.
///
/// Construction:
///  - Engine::Open(options): load graph + index from files (building and
///    optionally persisting the index when missing).
///  - Engine::Create(graph, pre, tree): adopt an already-built offline phase.
///  - Engine::FromGraph(graph): run the offline phase in-process.
class Engine {
 public:
  /// How the engine came to hold its offline-phase state.
  enum class IndexSource {
    kInMemory,        ///< built in-process or adopted via Create/FromGraph
    kLegacyCopy,      ///< parsed+copied from a TOPLIDX1 file
    kMappedArtifact,  ///< zero-copy views of a mmap-ed TOPLIDX2 artifact
  };

  /// Adopts in-memory offline-phase output. `tree` must have been built over
  /// `*pre` (validated), and `pre` over `graph`.
  static Result<std::unique_ptr<Engine>> Create(Graph graph,
                                                std::unique_ptr<PrecomputedData> pre,
                                                TreeIndex tree,
                                                const EngineOptions& options = {});

  /// Shared-ownership Create: the engine serves `graph`/`pre`/`tree` without
  /// taking sole ownership, so several engines can alias one graph and one
  /// precompute (each with its own tree). Same validation as Create.
  static Result<std::unique_ptr<Engine>> Create(
      std::shared_ptr<const Graph> graph,
      std::shared_ptr<const PrecomputedData> pre,
      std::shared_ptr<const TreeIndex> tree, const EngineOptions& options = {});

  /// Runs the offline phase (Algorithm 2 + index build) on `graph` with
  /// options.precompute / options.tree, then serves it.
  static Result<std::unique_ptr<Engine>> FromGraph(Graph graph,
                                                   const EngineOptions& options = {});

  /// Loads serving state from files. A TOPLIDX2 artifact at
  /// options.index_path is mmap-ed and served zero-copy (graph included;
  /// options.graph_path is then only cross-checked); a legacy TOPLIDX1 index
  /// is parsed alongside the graph file; a missing index file is built
  /// in-process (and persisted back as a TOPLIDX2 artifact when
  /// options.save_built_index).
  static Result<std::unique_ptr<Engine>> Open(const EngineOptions& options);

  /// Open with a mandatory write-ahead journal: identical to Open except that
  /// options.journal_path must be non-empty, and the replay report is copied
  /// into `*info` (when non-null). A recovered engine is byte-identical to
  /// one that applied the same acknowledged deltas live: the journal holds
  /// exactly the committed (checksummed, fsync-ed) records, and a torn tail —
  /// an update that was never acknowledged — is discarded.
  static Result<std::unique_ptr<Engine>> Recover(const EngineOptions& options,
                                                 RecoveryInfo* info = nullptr);

  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Stops serving: every entry point called after this returns (or resolves
  /// its future to) Status::Unavailable("engine is shut down"), queued async
  /// tasks still run to completion, and the pool workers are joined.
  /// Idempotent; must not be called from inside a query callback or pool
  /// task. The destructor implies Shutdown.
  void Shutdown();

  /// Answers one TopL-ICDE query. Thread-safe.
  Result<TopLResult> Search(const Query& query, const QueryOptions& options = {});

  /// Answers one DTopL-ICDE query. Thread-safe.
  Result<DTopLResult> SearchDiversified(const Query& query,
                                        const DTopLOptions& options = {});

  /// Anytime TopL: scores candidate waves in parallel over the engine's
  /// pool (when options.parallel), streams intermediate answers to
  /// `on_update` after every wave that improves the current top-L, and
  /// honors options.deadline_seconds / options.cancel. A truncated run still
  /// succeeds: best-so-far communities, truncated=true, and
  /// score_upper_bound as the remaining-quality gap. Thread-safe; `on_update`
  /// is invoked from the calling thread only.
  Result<TopLResult> SearchProgressive(const Query& query,
                                       const ProgressiveOptions& options = {},
                                       ProgressiveCallback on_update = nullptr);

  /// Anytime DTopL: like SearchProgressive, but each update streams the
  /// *diversified* greedy selection over the candidate pool so far. Pruning
  /// toggles are taken from dtopl_options.topl_options (as in
  /// SearchDiversified); options.query is ignored here.
  Result<DTopLResult> SearchDiversifiedProgressive(
      const Query& query, const DTopLOptions& dtopl_options,
      const ProgressiveOptions& options = {},
      ProgressiveCallback on_update = nullptr);

  /// Answers queries[i] into slot i of the returned vector, fanning out
  /// across the engine's ThreadPool (the calling thread participates).
  /// Per-query failures land in the corresponding slot; the batch itself
  /// never fails.
  std::vector<Result<TopLResult>> SearchBatch(std::span<const Query> queries,
                                              const QueryOptions& options = {});

  /// Enqueues the query on the engine's async workers.
  std::future<Result<TopLResult>> Submit(Query query, QueryOptions options = {});
  std::future<Result<DTopLResult>> SubmitDiversified(Query query,
                                                     DTopLOptions options = {});

  /// Applies a graph delta and installs the resulting serving state as a new
  /// snapshot. Maintenance is incremental (IndexUpdater: only the update's
  /// dirty region is re-precomputed, over the engine's own thread pool) and
  /// runs entirely off to the side: in-flight queries keep serving their
  /// pinned snapshot lock-free, new queries see the new snapshot atomically
  /// once it is installed, and answers after the swap are byte-identical to
  /// a from-scratch rebuild of the mutated graph. Concurrent ApplyUpdate
  /// calls serialize (single-writer); queries never block. On failure
  /// (invalid delta) the engine keeps serving the old snapshot untouched.
  /// Returns the RebuildScope work report.
  Result<RebuildScope> ApplyUpdate(const GraphDelta& delta);

  /// Installs an externally computed maintenance result as the next snapshot:
  /// the swap / context-retirement / cache-invalidation tail of ApplyUpdate
  /// without the IndexUpdater pass. `updated` must have been derived from
  /// this engine's *current* snapshot (the caller is the single writer, as
  /// with ApplyUpdate — concurrent calls serialize on the same lock), with
  /// `dirty_center_ids` covering every center whose serving state changed.
  /// The sharded coordinator uses this to apply one shared maintenance
  /// computation to each shard engine with per-shard epochs and caches.
  Result<RebuildScope> InstallUpdate(UpdatedIndex updated);

  /// InstallUpdate over shared pieces: `updated.graph`/`pre`/`tree` may alias
  /// the current snapshot's members. An untouched shard installs
  /// {new graph, same pre, same tree} in O(1) — no copy, no recompute, and
  /// (with `dirty_center_ids` empty) a rebase-only cache pass.
  Result<RebuildScope> InstallUpdate(SharedUpdate updated);

  /// Cumulative service counters (snapshot; never blocks queries).
  EngineStats Stats() const;

  /// Journal replay report from open time; all zeros when the engine was
  /// opened without a journal.
  const RecoveryInfo& recovery_info() const { return recovery_info_; }

  /// True once Shutdown() has begun (advisory).
  bool is_shutdown() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Pins the snapshot currently serving new queries. Hold the returned
  /// pointer to keep graph/precompute/tree alive across ApplyUpdate calls.
  std::shared_ptr<const EngineSnapshot> snapshot() const;

  /// Convenience views into the *current* snapshot. The references stay
  /// valid until the next ApplyUpdate retires that snapshot — callers that
  /// race updates must pin via snapshot() instead.
  const Graph& graph() const { return *snapshot()->graph; }
  const PrecomputedData& precomputed() const { return *snapshot()->pre; }
  const TreeIndex& tree() const { return *snapshot()->tree; }
  std::size_t num_threads() const { return pool_.num_threads(); }

  /// Which load path Open took (kInMemory for Create/FromGraph engines).
  IndexSource index_source() const { return index_source_; }

  /// Internal → external vertex-id mapping when the serving graph was
  /// locality-reordered (EngineOptions::reorder_vertices or an artifact with
  /// a g.extids section). Empty means identity. Query results carry internal
  /// ids; presentation layers unmap with ExternalId. The mapping is fixed for
  /// the engine's lifetime — updates permute nothing.
  const std::vector<VertexId>& ExternalIds() const { return external_ids_; }
  VertexId ExternalId(VertexId v) const {
    return external_ids_.empty() ? v : external_ids_[v];
  }

  /// True when the serving artifact stored encoded sections; rewrites should
  /// preserve the representation.
  bool artifact_compressed() const { return artifact_compressed_; }

  /// Detector contexts created so far (== peak number of concurrent
  /// queries); exposed for tests and capacity monitoring.
  std::size_t pooled_contexts() const;

 private:
  /// One worker's detectors + stats shard. Leased to exactly one query at a
  /// time, so the detectors' scratch reuse stays single-threaded. The
  /// DTopLDetector (which embeds a second TopLDetector's scratch) is only
  /// materialized once the context serves its first diversified query.
  ///
  /// A context is bound to one snapshot for life: the detectors hold
  /// references into it, and the shared_ptr pin keeps that epoch alive while
  /// the context exists. Contexts bound to a superseded snapshot are retired
  /// (stats folded into the engine's retired accumulators, then destroyed)
  /// instead of returning to the free list.
  struct WorkerContext {
    explicit WorkerContext(std::shared_ptr<const EngineSnapshot> snap)
        : snapshot(std::move(snap)),
          topl(*snapshot->graph, *snapshot->pre, *snapshot->tree) {}

    std::shared_ptr<const EngineSnapshot> snapshot;
    TopLDetector topl;
    std::optional<DTopLDetector> dtopl;
    EngineStatsShard stats;
  };

  /// RAII lease of a WorkerContext from the engine's free list.
  class ContextLease {
   public:
    explicit ContextLease(Engine* engine)
        : engine_(engine), context_(engine->AcquireContext()) {}
    ~ContextLease() { engine_->ReleaseContext(context_); }
    ContextLease(const ContextLease&) = delete;
    ContextLease& operator=(const ContextLease&) = delete;
    WorkerContext* get() const { return context_; }

   private:
    Engine* engine_;
    WorkerContext* context_;
  };

  Engine(std::shared_ptr<const Graph> graph,
         std::shared_ptr<const PrecomputedData> pre,
         std::shared_ptr<const TreeIndex> tree, const EngineOptions& options);

  WorkerContext* AcquireContext();
  void ReleaseContext(WorkerContext* context);

  /// Search/SearchDiversified bodies running on an already-leased context.
  /// `kind` tags the latency sample (per-kind percentiles).
  Result<TopLResult> SearchOnContext(WorkerContext* context, QueryKind kind,
                                     const Query& query,
                                     const QueryOptions& options,
                                     const SearchControl& control = {});
  Result<DTopLResult> SearchDiversifiedOnContext(
      WorkerContext* context, QueryKind kind, const Query& query,
      const DTopLOptions& options, const SearchControl& control = {});

  /// Cache-aware Search/SearchDiversified bodies: validate → lookup →
  /// single-flight → execute → fill (see cache/query_cache.h). `context` is
  /// an already-leased context (batch workers execute on theirs) or nullptr
  /// to lease one only if execution is actually needed. With the cache
  /// disabled these degenerate to the plain execution path.
  Result<TopLResult> CachedSearch(QueryKind kind, const Query& query,
                                  const QueryOptions& options,
                                  WorkerContext* context);
  Result<DTopLResult> CachedSearchDiversified(QueryKind kind,
                                              const Query& query,
                                              const DTopLOptions& options,
                                              WorkerContext* context);

  /// Translates engine-level progressive options into a detector control.
  SearchControl MakeControl(const ProgressiveOptions& options,
                            ProgressiveCallback on_update);

  /// Outcome of the overload admission gate (max_in_flight_queries).
  enum class Admission {
    kAdmitted,  ///< a slot was taken; the guard releases it
    kShed,      ///< gate full past the queue-wait budget — reject or degrade
    kShutdown,  ///< Shutdown() has begun
  };

  /// Takes one admission slot, waiting up to
  /// options_.admission_queue_wait_seconds when the gate is full. With
  /// max_in_flight_queries == 0 admission always succeeds (the slot count is
  /// still maintained so Shutdown stays uniform).
  Admission Admit();
  void ReleaseAdmission();
  Status ShedStatus() const;

  /// RAII admission slot: queries hold one for their whole execution.
  class AdmissionGuard {
   public:
    explicit AdmissionGuard(Engine* engine)
        : engine_(engine), result_(engine->Admit()) {}
    ~AdmissionGuard() {
      if (result_ == Admission::kAdmitted) engine_->ReleaseAdmission();
    }
    AdmissionGuard(const AdmissionGuard&) = delete;
    AdmissionGuard& operator=(const AdmissionGuard&) = delete;
    Admission result() const { return result_; }

   private:
    Engine* engine_;
    Admission result_;
  };

  /// Overloaded-but-deadline-bearing queries take this path instead of being
  /// shed: the search runs with an immediately-expiring deadline, so it
  /// returns a valid truncated anytime answer (correct communities prefix +
  /// score upper bound) at wave-boundary cost instead of full-query cost.
  Result<TopLResult> DegradedSearch(const Query& query,
                                    const ProgressiveOptions& options);
  Result<DTopLResult> DegradedSearchDiversified(
      const Query& query, const DTopLOptions& dtopl_options,
      const ProgressiveOptions& options);

  /// Opens/creates the journal, replays its committed records through the
  /// normal update path (no re-append: journal_ is attached only afterwards)
  /// and records the replay report. Called from Open before the engine is
  /// shared, so the replay is single-threaded.
  Status AttachJournal(const std::string& path);

  /// The file-loading paths of Open, minus the journal attach.
  static Result<std::unique_ptr<Engine>> OpenFiles(const EngineOptions& options);

  /// Shared tail of ApplyUpdate / InstallUpdate: snapshot swap, idle-context
  /// retirement, cache invalidation, counters. Caller holds update_mu_;
  /// `base` is the snapshot `updated` was computed from.
  Result<RebuildScope> InstallUpdateLocked(
      std::shared_ptr<const EngineSnapshot> base, SharedUpdate updated);

  /// Folds `context`'s stats into the retired accumulators and extracts it
  /// from contexts_, returning ownership. Caller holds contexts_mu_ and must
  /// destroy the returned context *after* releasing the lock — destruction
  /// frees O(n) detector scratch and possibly the last pin of an old
  /// snapshot, which must not stall concurrent Acquire/ReleaseContext.
  std::unique_ptr<WorkerContext> RetireContextLocked(WorkerContext* context);

  EngineOptions options_;
  IndexSource index_source_ = IndexSource::kInMemory;
  /// Internal → external id permutation (see ExternalIds()); immutable after
  /// construction, so reads are lock-free.
  std::vector<VertexId> external_ids_;
  bool artifact_compressed_ = false;

  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> updates_applied_{0};
  std::atomic<std::uint64_t> update_dirty_centers_{0};
  std::atomic<std::uint64_t> retired_contexts_{0};
  std::atomic<std::uint64_t> shed_queries_{0};
  std::atomic<std::uint64_t> degraded_queries_{0};

  /// Set by Shutdown(); checked by the admission gate and ApplyUpdate.
  std::atomic<bool> shutdown_{false};

  /// Admission gate state (see EngineOptions::max_in_flight_queries).
  std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  std::size_t in_flight_queries_ = 0;

  /// Serializes ApplyUpdate writers; never held while queries run.
  std::mutex update_mu_;

  /// Write-ahead delta journal; null when opened without one. Guarded by
  /// update_mu_ (appends happen only inside ApplyUpdate); attached before
  /// the engine is shared.
  std::unique_ptr<UpdateJournal> journal_;
  RecoveryInfo recovery_info_;

  mutable std::mutex contexts_mu_;
  /// Serving state for *new* queries; swapped wholesale by ApplyUpdate.
  /// Guarded by contexts_mu_ (reads copy the shared_ptr, so queries hold no
  /// lock while running).
  std::shared_ptr<const EngineSnapshot> snapshot_;
  std::vector<std::unique_ptr<WorkerContext>> contexts_;  // all live contexts
  std::vector<WorkerContext*> free_contexts_;
  /// Counters of retired contexts, so Stats() stays cumulative across
  /// snapshot swaps.
  EngineStats retired_stats_;
  std::array<EngineStatsShard::Histogram, kNumQueryKinds> retired_buckets_{};

  /// Snapshot-epoch result cache; null unless
  /// EngineOptions::enable_result_cache. Declared before pool_ so async
  /// workers (which may lead or follow flights) are joined before the cache
  /// is destroyed.
  std::unique_ptr<QueryCache> cache_;

  // Declared last so its destructor — which drains and joins the async
  // queue workers — runs before the contexts those workers may be using are
  // destroyed.
  ThreadPool pool_;
};

}  // namespace topl

#endif  // TOPL_ENGINE_ENGINE_H_

#ifndef TOPL_ENGINE_ENGINE_OPTIONS_H_
#define TOPL_ENGINE_ENGINE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/query.h"
#include "core/search_control.h"
#include "index/precompute.h"
#include "index/tree_index.h"

namespace topl {

/// \brief Per-query controls of Engine::SearchProgressive /
/// Engine::SearchDiversifiedProgressive: the anytime entry points.
///
/// Progressive queries stream intermediate top-L answers (with an
/// upper-bound quality gap) to the caller's callback, honor a wall-clock
/// deadline, and can be cancelled cooperatively. When `parallel` is set the
/// candidate-scoring stage additionally fans out in chunks over the
/// engine's ThreadPool — final (non-truncated) answers stay byte-identical
/// to the sequential path.
struct ProgressiveOptions {
  /// Algorithmic toggles forwarded to the detector (pruning rules).
  QueryOptions query;

  /// Per-query wall-clock budget in seconds; 0 = unlimited. On expiry the
  /// query returns best-so-far with TopLResult::truncated set.
  double deadline_seconds = 0.0;

  /// Cooperative cancellation (CancelToken::Create() to make one that can
  /// actually fire). Checked at wave boundaries.
  CancelToken cancel;

  /// Score candidate waves in parallel chunks over the engine's pool.
  bool parallel = true;

  /// Candidates per scoring chunk when `parallel`.
  std::uint32_t chunk_size = 8;
};

/// \brief Configuration of a topl::Engine (see engine/engine.h).
///
/// The path fields drive Engine::Open; Engine::Create / Engine::FromGraph
/// ignore them and use only the serving knobs.
struct EngineOptions {
  /// Binary graph file (graph/binary_io.h). Required by Engine::Open unless
  /// `index_path` names a TOPLIDX2 artifact, which embeds the graph; when
  /// both are given, the artifact's vertex/edge counts are cross-checked
  /// against the graph file's header.
  std::string graph_path;

  /// Index file. A TOPLIDX2 artifact (storage/artifact.h) is mmap-ed and
  /// served zero-copy; a legacy TOPLIDX1 file (index/index_io.h) is parsed
  /// into owned memory. When the file is missing (or the field is empty) the
  /// offline phase runs in-process, subject to `build_index_if_missing`.
  std::string index_path;

  /// Open: build PrecomputedData + TreeIndex when no index file is found.
  /// When false, a missing index file fails with NotFound instead.
  bool build_index_if_missing = true;

  /// Open: after building in-process, persist the index to `index_path` (if
  /// non-empty) as a TOPLIDX2 artifact so the next Open takes the mmap path.
  bool save_built_index = true;

  /// Open: verify the artifact's per-section XXH64 checksums before serving
  /// from it (one sequential scan of the file). Structural validation always
  /// happens; disabling this only skips the hash pass.
  bool verify_artifact_checksums = true;

  /// Open: MAP_POPULATE the artifact mapping (prefault the whole file at
  /// open instead of paying page faults on the query path) and/or advise
  /// MADV_HUGEPAGE on it (TLB relief for multi-GB artifacts). Both are safe
  /// no-ops where unsupported. Only affect the mmap load path.
  bool mmap_populate = false;
  bool mmap_huge_pages = false;

  /// Offline-phase parameters used when the index is built in-process.
  PrecomputeOptions precompute;
  TreeIndexOptions tree;

  /// Build path (Open-with-missing-index / FromGraph): permute vertices into
  /// the locality order (graph/reorder.h) before the offline phase. Query
  /// results then carry *internal* ids; Engine::ExternalId maps them back,
  /// and the permutation is persisted in the artifact (g.extids) so mmap
  /// reopens keep the mapping. Ignored when serving an existing index.
  bool reorder_vertices = false;

  /// Build path: store the delta+varint-encoded artifact sections when
  /// persisting (ArtifactWriteOptions::compress).
  bool compress_artifact = false;

  /// Worker threads for SearchBatch fan-out and Submit async serving;
  /// 0 = hardware concurrency. Independent of the number of pooled detector
  /// contexts, which grows with the peak number of concurrent queries.
  std::size_t num_threads = 0;

  /// Snapshot-epoch result cache (cache/query_cache.h): plain (non-progressive)
  /// Search/SearchDiversified answers are cached by canonicalized query key,
  /// identical in-flight queries coalesce onto one execution, and
  /// ApplyUpdate invalidates only entries the update's exact dirty-center
  /// set could have changed. Off by default — repeated-query workloads
  /// opt in.
  bool enable_result_cache = false;

  /// Byte budget of the result cache (LRU-evicted per shard); ignored unless
  /// `enable_result_cache`.
  std::size_t cache_max_bytes = 64ull << 20;

  /// Write-ahead update journal (storage/update_journal.h). When non-empty,
  /// Engine::Open replays any committed deltas found in the journal on top
  /// of the artifact (crash recovery), then ApplyUpdate appends each delta —
  /// checksummed and fsync-ed — *before* installing the new snapshot, so a
  /// crash at any point loses no acknowledged update. Empty = no journal
  /// (updates are durable only once the artifact is rewritten).
  std::string journal_path;

  /// Overload admission: maximum number of queries executing concurrently
  /// inside the engine; 0 = unbounded (no admission control). When the gate
  /// is full, a query waits up to `admission_queue_wait_seconds` for a slot;
  /// on timeout it is shed with Status::Unavailable — unless the caller
  /// supplied a deadline (progressive entry points), in which case the
  /// engine degrades it to a truncated anytime answer instead of failing.
  std::size_t max_in_flight_queries = 0;

  /// How long a query may wait for an admission slot before being shed;
  /// 0 = shed immediately when the gate is full. Ignored when
  /// `max_in_flight_queries` is 0.
  double admission_queue_wait_seconds = 0.0;
};

}  // namespace topl

#endif  // TOPL_ENGINE_ENGINE_OPTIONS_H_

#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <string>
#include <utility>

#include "common/timer.h"
#include "graph/binary_io.h"
#include "graph/reorder.h"
#include "index/index_io.h"
#include "storage/artifact.h"

namespace topl {

namespace {

/// Wraps a value-owned maintenance result into the shared-ownership install
/// form. The tree's internal pointer into `*pre` survives: the pointee
/// addresses are unchanged by the unique_ptr→shared_ptr / move conversions.
SharedUpdate ShareUpdatedIndex(UpdatedIndex updated) {
  SharedUpdate shared;
  shared.graph = std::make_shared<const Graph>(std::move(updated.graph));
  shared.pre = std::shared_ptr<const PrecomputedData>(std::move(updated.pre));
  shared.tree = std::make_shared<const TreeIndex>(std::move(updated.tree));
  shared.scope = updated.scope;
  shared.dirty_center_ids = std::move(updated.dirty_center_ids);
  return shared;
}

}  // namespace

Engine::Engine(std::shared_ptr<const Graph> graph,
               std::shared_ptr<const PrecomputedData> pre,
               std::shared_ptr<const TreeIndex> tree,
               const EngineOptions& options)
    : options_(options), pool_(options.num_threads) {
  auto snapshot = std::make_shared<EngineSnapshot>();
  snapshot->graph = std::move(graph);
  snapshot->pre = std::move(pre);
  snapshot->tree = std::move(tree);
  snapshot_ = std::move(snapshot);
  if (options.enable_result_cache) {
    QueryCache::Config config;
    config.max_bytes = options.cache_max_bytes;
    cache_ = std::make_unique<QueryCache>(config);
  }
}

Engine::~Engine() { Shutdown(); }

void Engine::Shutdown() {
  shutdown_.store(true, std::memory_order_release);
  // Wake queries parked on the admission gate so they fail fast with the
  // shutdown status instead of timing out as shed.
  admission_cv_.notify_all();
  pool_.Shutdown();
}

Engine::Admission Engine::Admit() {
  if (shutdown_.load(std::memory_order_acquire)) return Admission::kShutdown;
  const std::size_t max = options_.max_in_flight_queries;
  std::unique_lock<std::mutex> lock(admission_mu_);
  if (max == 0 || in_flight_queries_ < max) {
    ++in_flight_queries_;
    return Admission::kAdmitted;
  }
  if (options_.admission_queue_wait_seconds > 0.0) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options_.admission_queue_wait_seconds));
    while (in_flight_queries_ >= max &&
           !shutdown_.load(std::memory_order_acquire)) {
      if (admission_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        break;
      }
    }
    if (shutdown_.load(std::memory_order_acquire)) return Admission::kShutdown;
    if (in_flight_queries_ < max) {
      ++in_flight_queries_;
      return Admission::kAdmitted;
    }
  }
  return Admission::kShed;
}

void Engine::ReleaseAdmission() {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    --in_flight_queries_;
  }
  admission_cv_.notify_one();
}

std::shared_ptr<const EngineSnapshot> Engine::snapshot() const {
  std::lock_guard<std::mutex> lock(contexts_mu_);
  return snapshot_;
}

Result<std::unique_ptr<Engine>> Engine::Create(Graph graph,
                                               std::unique_ptr<PrecomputedData> pre,
                                               TreeIndex tree,
                                               const EngineOptions& options) {
  return Create(std::make_shared<const Graph>(std::move(graph)),
                std::shared_ptr<const PrecomputedData>(std::move(pre)),
                std::make_shared<const TreeIndex>(std::move(tree)), options);
}

Result<std::unique_ptr<Engine>> Engine::Create(
    std::shared_ptr<const Graph> graph, std::shared_ptr<const PrecomputedData> pre,
    std::shared_ptr<const TreeIndex> tree, const EngineOptions& options) {
  if (graph == nullptr) {
    return Status::InvalidArgument("Engine::Create needs a non-null Graph");
  }
  if (pre == nullptr) {
    return Status::InvalidArgument("Engine::Create needs non-null PrecomputedData");
  }
  if (pre->num_vertices() != graph->NumVertices()) {
    return Status::InvalidArgument(
        "PrecomputedData was built over a different graph (vertex count "
        "mismatch)");
  }
  if (tree == nullptr || tree->NumNodes() == 0) {
    return Status::InvalidArgument("Engine::Create needs a built TreeIndex");
  }
  if (&tree->precomputed() != pre.get()) {
    return Status::InvalidArgument(
        "TreeIndex references different PrecomputedData than the one handed "
        "to Engine::Create");
  }
  // No make_unique: the constructor is private.
  return std::unique_ptr<Engine>(
      new Engine(std::move(graph), std::move(pre), std::move(tree), options));
}

Result<std::unique_ptr<Engine>> Engine::FromGraph(Graph graph,
                                                  const EngineOptions& options) {
  std::vector<VertexId> external_ids;
  if (options.reorder_vertices) {
    Result<ReorderedGraph> reordered = ReorderForLocality(graph);
    if (!reordered.ok()) return reordered.status();
    graph = std::move(reordered->graph);
    external_ids = std::move(reordered->external_ids);
  }
  Result<PrecomputedData> pre = PrecomputedData::Build(graph, options.precompute);
  if (!pre.ok()) return pre.status();
  auto owned = std::make_unique<PrecomputedData>(std::move(pre).value());
  Result<TreeIndex> tree = TreeIndex::Build(graph, *owned, options.tree);
  if (!tree.ok()) return tree.status();
  Result<std::unique_ptr<Engine>> engine = Create(
      std::move(graph), std::move(owned), std::move(tree).value(), options);
  if (engine.ok()) (*engine)->external_ids_ = std::move(external_ids);
  return engine;
}

Result<std::unique_ptr<Engine>> Engine::Open(const EngineOptions& options) {
  Result<std::unique_ptr<Engine>> engine = OpenFiles(options);
  if (engine.ok() && !options.journal_path.empty()) {
    Status attached = (*engine)->AttachJournal(options.journal_path);
    if (!attached.ok()) return attached;
  }
  return engine;
}

Result<std::unique_ptr<Engine>> Engine::Recover(const EngineOptions& options,
                                                RecoveryInfo* info) {
  if (options.journal_path.empty()) {
    return Status::InvalidArgument(
        "Engine::Recover needs EngineOptions::journal_path");
  }
  Result<std::unique_ptr<Engine>> engine = Open(options);
  if (engine.ok() && info != nullptr) *info = (*engine)->recovery_info();
  return engine;
}

Status Engine::AttachJournal(const std::string& path) {
  UpdateJournal::OpenInfo info;
  Result<std::unique_ptr<UpdateJournal>> journal = UpdateJournal::Open(path, &info);
  if (!journal.ok()) return journal.status();
  Result<std::vector<GraphDelta>> deltas = UpdateJournal::Replay(path);
  if (!deltas.ok()) return deltas.status();
  // Replay through the regular update path; journal_ is still null, so the
  // replayed deltas are not appended a second time. A committed record that
  // no longer applies means the journal belongs to a different base image —
  // refuse to serve rather than diverge silently.
  for (std::size_t i = 0; i < deltas->size(); ++i) {
    Result<RebuildScope> applied = ApplyUpdate((*deltas)[i]);
    if (!applied.ok()) {
      return Status::Corruption(
          "journal replay failed at record " + std::to_string(i + 1) + "/" +
          std::to_string(deltas->size()) + ": " +
          applied.status().ToString() +
          " (journal " + path + " does not match this index)");
    }
  }
  journal_ = std::move(*journal);
  recovery_info_.records_replayed = deltas->size();
  recovery_info_.torn_bytes_discarded = info.torn_bytes_discarded;
  recovery_info_.journal_created = info.created;
  return Status::OK();
}

Result<std::unique_ptr<Engine>> Engine::OpenFiles(const EngineOptions& options) {
  const bool have_index_file =
      !options.index_path.empty() && std::filesystem::exists(options.index_path);

  // Fast path: a TOPLIDX2 artifact embeds graph + precompute + tree, so the
  // whole serving state is one mmap — no parse, no copy, cold start in a few
  // page faults (plus one checksum scan unless disabled).
  if (have_index_file && ArtifactReader::IsArtifact(options.index_path)) {
    ArtifactReadOptions read_options;
    read_options.verify_checksums = options.verify_artifact_checksums;
    read_options.populate = options.mmap_populate;
    read_options.huge_pages = options.mmap_huge_pages;
    Result<MappedIndex> mapped =
        ArtifactReader::Open(options.index_path, read_options);
    if (!mapped.ok()) return mapped.status();
    if (!options.graph_path.empty()) {
      // Cheap header cross-check: serving an index against the wrong graph
      // must fail loudly, not return silently wrong communities.
      Result<GraphBinaryHeader> header =
          ReadGraphBinaryHeader(options.graph_path);
      if (!header.ok()) return header.status();
      if (header->num_vertices != mapped->graph.NumVertices() ||
          header->num_edges != mapped->graph.NumEdges()) {
        return Status::InvalidArgument(
            "graph/artifact mismatch: " + options.index_path +
            " embeds a graph with " +
            std::to_string(mapped->graph.NumVertices()) + " vertices / " +
            std::to_string(mapped->graph.NumEdges()) + " edges, but " +
            options.graph_path + " has " +
            std::to_string(header->num_vertices) + " / " +
            std::to_string(header->num_edges));
      }
    }
    std::vector<VertexId> external_ids = std::move(mapped->external_ids);
    const bool compressed = mapped->compressed;
    Result<std::unique_ptr<Engine>> engine =
        Create(std::move(mapped->graph), std::move(mapped->pre),
               std::move(mapped->tree), options);
    if (engine.ok()) {
      (*engine)->index_source_ = IndexSource::kMappedArtifact;
      (*engine)->external_ids_ = std::move(external_ids);
      (*engine)->artifact_compressed_ = compressed;
    }
    return engine;
  }

  if (options.graph_path.empty()) {
    return Status::InvalidArgument(
        "EngineOptions::graph_path is required (only a TOPLIDX2 index "
        "artifact can supply the graph)");
  }
  Result<Graph> graph = ReadGraphBinary(options.graph_path);
  if (!graph.ok()) return graph.status();

  if (have_index_file) {
    Result<IndexCodec::LoadedIndex> loaded =
        IndexCodec::Read(options.index_path, *graph);
    if (!loaded.ok()) return loaded.status();
    Result<std::unique_ptr<Engine>> engine =
        Create(std::move(graph).value(), std::move(loaded->data),
               std::move(loaded->tree), options);
    if (engine.ok()) (*engine)->index_source_ = IndexSource::kLegacyCopy;
    return engine;
  }

  if (!options.build_index_if_missing) {
    return Status::NotFound("index file not found: " + options.index_path +
                            " (set build_index_if_missing to build in-process)");
  }
  std::vector<VertexId> external_ids;
  if (options.reorder_vertices) {
    Result<ReorderedGraph> reordered = ReorderForLocality(*graph);
    if (!reordered.ok()) return reordered.status();
    *graph = std::move(reordered->graph);
    external_ids = std::move(reordered->external_ids);
  }
  Result<PrecomputedData> pre = PrecomputedData::Build(*graph, options.precompute);
  if (!pre.ok()) return pre.status();
  auto owned = std::make_unique<PrecomputedData>(std::move(pre).value());
  Result<TreeIndex> tree = TreeIndex::Build(*graph, *owned, options.tree);
  if (!tree.ok()) return tree.status();
  if (options.save_built_index && !options.index_path.empty()) {
    ArtifactWriteOptions write_options;
    write_options.compress = options.compress_artifact;
    write_options.external_ids = external_ids;
    TOPL_RETURN_IF_ERROR(ArtifactWriter::Write(*graph, *owned, *tree,
                                               options.index_path,
                                               write_options));
  }
  Result<std::unique_ptr<Engine>> engine = Create(
      std::move(graph).value(), std::move(owned), std::move(tree).value(),
      options);
  if (engine.ok()) {
    (*engine)->external_ids_ = std::move(external_ids);
    (*engine)->artifact_compressed_ = options.compress_artifact;
  }
  return engine;
}

Engine::WorkerContext* Engine::AcquireContext() {
  std::shared_ptr<const EngineSnapshot> snapshot;
  {
    std::lock_guard<std::mutex> lock(contexts_mu_);
    // Free contexts are always bound to the current snapshot: ApplyUpdate
    // purges the free list at swap time and ReleaseContext retires stale
    // returns.
    if (!free_contexts_.empty()) {
      WorkerContext* context = free_contexts_.back();
      free_contexts_.pop_back();
      return context;
    }
    snapshot = snapshot_;
  }
  // Pool empty: grow by one context. Construction (O(n) scratch) happens
  // outside the lock so concurrent growth does not serialize. If an update
  // swaps snapshots mid-construction the context simply serves the epoch it
  // pinned and is retired on release.
  auto created = std::make_unique<WorkerContext>(std::move(snapshot));
  WorkerContext* context = created.get();
  std::lock_guard<std::mutex> lock(contexts_mu_);
  contexts_.push_back(std::move(created));
  return context;
}

std::unique_ptr<Engine::WorkerContext> Engine::RetireContextLocked(
    WorkerContext* context) {
  context->stats.MergeInto(&retired_stats_, &retired_buckets_);
  retired_contexts_.fetch_add(1, std::memory_order_relaxed);
  std::unique_ptr<WorkerContext> owned;
  for (auto it = contexts_.begin(); it != contexts_.end(); ++it) {
    if (it->get() == context) {
      owned = std::move(*it);
      contexts_.erase(it);
      break;
    }
  }
  return owned;
}

void Engine::ReleaseContext(WorkerContext* context) {
  // The context's epoch may have been superseded while it served this
  // query: fold its stats into the retained accumulators and drop it (and
  // with it, possibly the last pin of the old snapshot). Destruction happens
  // after the lock is released so freeing detector scratch / an old
  // snapshot never blocks other queries.
  std::unique_ptr<WorkerContext> retired;
  {
    std::lock_guard<std::mutex> lock(contexts_mu_);
    if (context->snapshot == snapshot_) {
      free_contexts_.push_back(context);
      return;
    }
    retired = RetireContextLocked(context);
  }
}

std::size_t Engine::pooled_contexts() const {
  std::lock_guard<std::mutex> lock(contexts_mu_);
  return contexts_.size();
}

Result<TopLResult> Engine::SearchOnContext(WorkerContext* context,
                                           QueryKind kind, const Query& query,
                                           const QueryOptions& options,
                                           const SearchControl& control) {
  Timer timer;
  Result<TopLResult> result = context->topl.Search(query, options, control);
  context->stats.Record(kind, /*diversified=*/false, result.ok(),
                        result.ok() && result->truncated,
                        timer.ElapsedSeconds(),
                        result.ok() ? result->stats : QueryStats{});
  return result;
}

Result<DTopLResult> Engine::SearchDiversifiedOnContext(
    WorkerContext* context, QueryKind kind, const Query& query,
    const DTopLOptions& options, const SearchControl& control) {
  if (!context->dtopl.has_value()) {
    const EngineSnapshot& snapshot = *context->snapshot;
    context->dtopl.emplace(*snapshot.graph, *snapshot.pre, *snapshot.tree);
  }
  Timer timer;
  Result<DTopLResult> result = context->dtopl->Search(query, options, control);
  context->stats.Record(kind, /*diversified=*/true, result.ok(),
                        result.ok() && result->truncated,
                        timer.ElapsedSeconds(),
                        result.ok() ? result->candidate_stats : QueryStats{});
  return result;
}

SearchControl Engine::MakeControl(const ProgressiveOptions& options,
                                  ProgressiveCallback on_update) {
  SearchControl control;
  // Intra-query parallelism rides the same pool as batch fan-out and async
  // serving; TaskGroup's help-first join keeps the combination deadlock-free.
  if (options.parallel && pool_.num_threads() > 1) control.pool = &pool_;
  control.chunk_size = options.chunk_size;
  control.deadline_seconds = options.deadline_seconds;
  control.cancel = options.cancel;
  control.on_progress = std::move(on_update);
  return control;
}

Result<TopLResult> Engine::CachedSearch(QueryKind kind, const Query& query,
                                        const QueryOptions& options,
                                        WorkerContext* context) {
  auto execute = [&](WorkerContext* ctx) {
    return SearchOnContext(ctx, kind, query, options);
  };
  auto run = [&](auto&& body) -> Result<TopLResult> {
    if (context != nullptr) return body(context);
    ContextLease lease(this);
    return body(lease.get());
  };
  // Invalid queries take the execution path so they fail with exactly the
  // detector's status (a canonicalized key would otherwise let a permuted
  // keyword list hit where a cache-disabled engine rejects it).
  if (cache_ == nullptr || !query.Validate().ok() ||
      !QueryCache::Cacheable(query, *snapshot()->pre)) {
    return run(execute);
  }
  const CacheKey key = CacheKey::ForTopL(query, options);
  const QueryCache::LookupResult lookup = cache_->Lookup(key);
  if (lookup.hit) return *lookup.answer.topl;
  if (!lookup.leader) {
    Result<QueryCache::CachedAnswer> shared = cache_->Await(lookup.flight);
    if (!shared.ok()) return shared.status();
    return *shared->topl;
  }
  std::uint64_t executed_epoch = 0;
  Result<TopLResult> result = run([&](WorkerContext* ctx) {
    executed_epoch = ctx->snapshot->epoch;
    return execute(ctx);
  });
  if (result.ok()) {
    cache_->FillTopL(key, lookup.flight, executed_epoch,
                     std::make_shared<const TopLResult>(*result));
  } else {
    cache_->Abandon(key, lookup.flight, result.status());
  }
  return result;
}

Result<DTopLResult> Engine::CachedSearchDiversified(QueryKind kind,
                                                    const Query& query,
                                                    const DTopLOptions& options,
                                                    WorkerContext* context) {
  auto execute = [&](WorkerContext* ctx) {
    return SearchDiversifiedOnContext(ctx, kind, query, options);
  };
  auto run = [&](auto&& body) -> Result<DTopLResult> {
    if (context != nullptr) return body(context);
    ContextLease lease(this);
    return body(lease.get());
  };
  if (cache_ == nullptr || !query.Validate().ok() ||
      !QueryCache::Cacheable(query, *snapshot()->pre)) {
    return run(execute);
  }
  const CacheKey key = CacheKey::ForDTopL(query, options);
  const QueryCache::LookupResult lookup = cache_->Lookup(key);
  if (lookup.hit) return *lookup.answer.dtopl;
  if (!lookup.leader) {
    Result<QueryCache::CachedAnswer> shared = cache_->Await(lookup.flight);
    if (!shared.ok()) return shared.status();
    return *shared->dtopl;
  }
  std::uint64_t executed_epoch = 0;
  Result<DTopLResult> result = run([&](WorkerContext* ctx) {
    executed_epoch = ctx->snapshot->epoch;
    return execute(ctx);
  });
  if (result.ok()) {
    cache_->FillDTopL(key, lookup.flight, executed_epoch,
                      std::make_shared<const DTopLResult>(*result));
  } else {
    cache_->Abandon(key, lookup.flight, result.status());
  }
  return result;
}

namespace {

Status ShutdownStatus() { return Status::Unavailable("engine is shut down"); }

}  // namespace

Status Engine::ShedStatus() const {
  return Status::Unavailable(
      "query shed: engine at max_in_flight_queries=" +
      std::to_string(options_.max_in_flight_queries) +
      " (retry with backoff)");
}

Result<TopLResult> Engine::Search(const Query& query, const QueryOptions& options) {
  AdmissionGuard admit(this);
  if (admit.result() == Admission::kShutdown) return ShutdownStatus();
  if (admit.result() == Admission::kShed) {
    shed_queries_.fetch_add(1, std::memory_order_relaxed);
    return ShedStatus();
  }
  return CachedSearch(QueryKind::kSearch, query, options, /*context=*/nullptr);
}

Result<DTopLResult> Engine::SearchDiversified(const Query& query,
                                              const DTopLOptions& options) {
  AdmissionGuard admit(this);
  if (admit.result() == Admission::kShutdown) return ShutdownStatus();
  if (admit.result() == Admission::kShed) {
    shed_queries_.fetch_add(1, std::memory_order_relaxed);
    return ShedStatus();
  }
  return CachedSearchDiversified(QueryKind::kDiversified, query, options,
                                 /*context=*/nullptr);
}

Result<TopLResult> Engine::DegradedSearch(const Query& query,
                                          const ProgressiveOptions& options) {
  // The caller brought a deadline, so it already accepts anytime answers:
  // run the progressive search with an immediately-expiring deadline and no
  // pool fan-out. The detector stops at the first wave boundary, returning a
  // valid truncated prefix plus the score upper bound — wave-boundary cost
  // instead of full-query cost, without taking an admission slot.
  ProgressiveOptions degraded = options;
  degraded.deadline_seconds = 1e-9;
  degraded.parallel = false;
  ContextLease lease(this);
  Result<TopLResult> result =
      SearchOnContext(lease.get(), QueryKind::kProgressive, query,
                      degraded.query, MakeControl(degraded, nullptr));
  degraded_queries_.fetch_add(1, std::memory_order_relaxed);
  if (result.ok()) result->degraded = true;
  return result;
}

Result<DTopLResult> Engine::DegradedSearchDiversified(
    const Query& query, const DTopLOptions& dtopl_options,
    const ProgressiveOptions& options) {
  ProgressiveOptions degraded = options;
  degraded.deadline_seconds = 1e-9;
  degraded.parallel = false;
  ContextLease lease(this);
  Result<DTopLResult> result = SearchDiversifiedOnContext(
      lease.get(), QueryKind::kProgressive, query, dtopl_options,
      MakeControl(degraded, nullptr));
  degraded_queries_.fetch_add(1, std::memory_order_relaxed);
  if (result.ok()) result->degraded = true;
  return result;
}

Result<TopLResult> Engine::SearchProgressive(const Query& query,
                                             const ProgressiveOptions& options,
                                             ProgressiveCallback on_update) {
  AdmissionGuard admit(this);
  if (admit.result() == Admission::kShutdown) return ShutdownStatus();
  if (admit.result() == Admission::kShed) {
    if (options.deadline_seconds > 0.0) return DegradedSearch(query, options);
    shed_queries_.fetch_add(1, std::memory_order_relaxed);
    return ShedStatus();
  }
  ContextLease lease(this);
  return SearchOnContext(lease.get(), QueryKind::kProgressive, query,
                         options.query, MakeControl(options, std::move(on_update)));
}

Result<DTopLResult> Engine::SearchDiversifiedProgressive(
    const Query& query, const DTopLOptions& dtopl_options,
    const ProgressiveOptions& options, ProgressiveCallback on_update) {
  AdmissionGuard admit(this);
  if (admit.result() == Admission::kShutdown) return ShutdownStatus();
  if (admit.result() == Admission::kShed) {
    if (options.deadline_seconds > 0.0) {
      return DegradedSearchDiversified(query, dtopl_options, options);
    }
    shed_queries_.fetch_add(1, std::memory_order_relaxed);
    return ShedStatus();
  }
  ContextLease lease(this);
  // Pruning toggles come from dtopl_options.topl_options, exactly as in
  // SearchDiversified — ProgressiveOptions::query applies to the TopL entry
  // point only, so the two DTopL paths can never diverge algorithmically.
  return SearchDiversifiedOnContext(lease.get(), QueryKind::kProgressive, query,
                                    dtopl_options,
                                    MakeControl(options, std::move(on_update)));
}

std::vector<Result<TopLResult>> Engine::SearchBatch(std::span<const Query> queries,
                                                    const QueryOptions& options) {
  // One admission slot covers the whole batch: the fan-out below already
  // bounds its own parallelism by the pool width, so per-query slots would
  // only let one batch starve every interactive query.
  AdmissionGuard admit(this);
  if (admit.result() != Admission::kAdmitted) {
    if (admit.result() == Admission::kShed) {
      shed_queries_.fetch_add(1, std::memory_order_relaxed);
    }
    const Status status =
        admit.result() == Admission::kShutdown ? ShutdownStatus() : ShedStatus();
    std::vector<Result<TopLResult>> rejected;
    rejected.reserve(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) rejected.emplace_back(status);
    return rejected;
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  std::vector<Result<TopLResult>> results;
  results.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    results.emplace_back(Status::Internal("query was not executed"));
  }
  if (queries.empty()) return results;

  // One context leased per participating pool worker for the whole batch, so
  // the per-query path is mutex-free. ParallelForWithWorker hands out ids in
  // [0, spawned + 1) with the calling thread as worker 0; with grain=1 it
  // spawns at most min(num_threads() - 1, |queries|) helpers. Each slot is
  // written by exactly one worker thread, and only workers that actually get
  // a chunk acquire a context (with more workers than chunks, some never run).
  const std::size_t max_workers =
      std::min(pool_.num_threads(), queries.size() + 1);
  std::vector<WorkerContext*> leased(max_workers, nullptr);
  // grain=1: each query is its own unit of work, so the batch load-balances
  // across workers even when per-query cost is highly skewed.
  pool_.ParallelForWithWorker(
      0, queries.size(),
      [&](std::size_t worker, std::size_t i) {
        WorkerContext*& context = leased[worker];
        if (context == nullptr) context = AcquireContext();
        results[i] =
            CachedSearch(QueryKind::kBatch, queries[i], options, context);
      },
      /*grain=*/1);
  for (WorkerContext* context : leased) {
    if (context != nullptr) ReleaseContext(context);
  }
  return results;
}

std::future<Result<TopLResult>> Engine::Submit(Query query, QueryOptions options) {
  // Post-shutdown submission resolves to the typed status instead of the
  // pool's std::runtime_error (the task body would return it anyway; this
  // skips the detour through an exception for the common case).
  if (shutdown_.load(std::memory_order_acquire)) {
    std::promise<Result<TopLResult>> promise;
    promise.set_value(ShutdownStatus());
    return promise.get_future();
  }
  return pool_.Submit([this, query = std::move(query), options]() {
    return Search(query, options);
  });
}

std::future<Result<DTopLResult>> Engine::SubmitDiversified(Query query,
                                                           DTopLOptions options) {
  if (shutdown_.load(std::memory_order_acquire)) {
    std::promise<Result<DTopLResult>> promise;
    promise.set_value(ShutdownStatus());
    return promise.get_future();
  }
  return pool_.Submit([this, query = std::move(query), options]() {
    return SearchDiversified(query, options);
  });
}

Result<RebuildScope> Engine::ApplyUpdate(const GraphDelta& delta) {
  if (shutdown_.load(std::memory_order_acquire)) return ShutdownStatus();
  // Single writer at a time; queries keep flowing against the current
  // snapshot for the whole (potentially long) maintenance pass.
  std::lock_guard<std::mutex> update_lock(update_mu_);
  std::shared_ptr<const EngineSnapshot> base = snapshot();
  Result<UpdatedIndex> updated =
      IndexUpdater::Apply(*base->graph, *base->pre, *base->tree, delta, &pool_);
  if (!updated.ok()) return updated.status();
  // Durability before visibility: commit the delta to the write-ahead
  // journal (checksummed + fsync-ed) before installing the snapshot. A crash
  // after the append replays the delta at recovery; a crash during it leaves
  // a torn record that recovery discards — matching the fact that no caller
  // was ever told the update succeeded. An append failure rejects the update
  // outright so memory never runs ahead of the durable state.
  if (journal_ != nullptr) {
    TOPL_RETURN_IF_ERROR(journal_->Append(delta));
  }
  return InstallUpdateLocked(std::move(base), ShareUpdatedIndex(std::move(*updated)));
}

Result<RebuildScope> Engine::InstallUpdate(UpdatedIndex updated) {
  return InstallUpdate(ShareUpdatedIndex(std::move(updated)));
}

Result<RebuildScope> Engine::InstallUpdate(SharedUpdate updated) {
  std::lock_guard<std::mutex> update_lock(update_mu_);
  return InstallUpdateLocked(snapshot(), std::move(updated));
}

Result<RebuildScope> Engine::InstallUpdateLocked(
    std::shared_ptr<const EngineSnapshot> base, SharedUpdate updated) {
  if (updated.graph == nullptr || updated.pre == nullptr ||
      updated.tree == nullptr) {
    return Status::InvalidArgument(
        "InstallUpdate needs a graph, precompute, and tree");
  }

  auto next = std::make_shared<EngineSnapshot>();
  next->graph = std::move(updated.graph);
  next->pre = std::move(updated.pre);
  next->tree = std::move(updated.tree);
  next->epoch = base->epoch + 1;
  const std::shared_ptr<const EngineSnapshot> installed = next;

  {
    // Retired contexts (and the superseded snapshot pin held by `base`) are
    // destroyed after the lock drops, so the swap itself is O(#contexts)
    // under contexts_mu_ and queries never wait on bulk deallocation.
    std::vector<std::unique_ptr<WorkerContext>> retired;
    std::lock_guard<std::mutex> lock(contexts_mu_);
    snapshot_ = std::move(next);
    // Idle contexts are bound to the superseded snapshot; retire them now so
    // the old epoch's memory is reclaimed as soon as in-flight queries
    // finish. Leased contexts retire themselves on release.
    retired.reserve(free_contexts_.size());
    for (WorkerContext* context : free_contexts_) {
      retired.push_back(RetireContextLocked(context));
    }
    free_contexts_.clear();
  }

  if (cache_ != nullptr) {
    // After the swap (so the cache epoch never runs ahead of serving) and
    // still under update_mu_ (so epochs reach the cache in order): erase
    // exactly the entries this delta's dirty-center set could have changed
    // and rebase the provably clean ones to the new epoch.
    cache_->OnUpdate(updated.dirty_center_ids, *base->graph, *installed->graph,
                     *installed->pre, installed->epoch);
  }

  updates_applied_.fetch_add(1, std::memory_order_relaxed);
  update_dirty_centers_.fetch_add(updated.scope.dirty_centers,
                                  std::memory_order_relaxed);
  return updated.scope;
}

EngineStats Engine::Stats() const {
  EngineStats total;
  std::array<EngineStatsShard::Histogram, kNumQueryKinds> buckets{};
  {
    std::lock_guard<std::mutex> lock(contexts_mu_);
    // Start from the counters of retired contexts, then fold the live ones.
    total = retired_stats_;
    buckets = retired_buckets_;
    for (const auto& context : contexts_) {
      context->stats.MergeInto(&total, &buckets);
    }
    total.snapshot_epoch = snapshot_->epoch;
    // Distinct epochs still pinned by a context, plus the current snapshot.
    std::vector<const EngineSnapshot*> pinned;
    pinned.push_back(snapshot_.get());
    for (const auto& context : contexts_) {
      pinned.push_back(context->snapshot.get());
    }
    std::sort(pinned.begin(), pinned.end());
    total.live_snapshots = static_cast<std::uint64_t>(
        std::unique(pinned.begin(), pinned.end()) - pinned.begin());
  }
  total.batches = batches_.load(std::memory_order_relaxed);
  total.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  total.update_dirty_centers =
      update_dirty_centers_.load(std::memory_order_relaxed);
  total.retired_contexts = retired_contexts_.load(std::memory_order_relaxed);
  total.queries_shed = shed_queries_.load(std::memory_order_relaxed);
  total.queries_degraded = degraded_queries_.load(std::memory_order_relaxed);
  total.queries_total = total.topl_queries + total.dtopl_queries;
  if (cache_ != nullptr) {
    total.cache_enabled = true;
    const QueryCache::Counters cache = cache_->counters();
    total.cache_hits = cache.hits;
    total.cache_misses = cache.misses;
    total.cache_coalesced = cache.coalesced;
    total.cache_invalidated = cache.invalidated;
    total.cache_evicted = cache.evicted;
    total.cache_entries = cache.entries;
    total.cache_bytes = cache.bytes;
  }

  // Per-kind percentiles, then the legacy all-kinds view from the merged
  // histogram. Bucket-midpoint estimates can overshoot the true extremum;
  // the exact max is tracked separately and caps them.
  EngineStatsShard::Histogram merged{};
  std::uint64_t merged_count = 0;
  for (std::size_t k = 0; k < kNumQueryKinds; ++k) {
    std::uint64_t count = 0;
    for (std::size_t i = 0; i < buckets[k].size(); ++i) {
      count += buckets[k][i];
      merged[i] += buckets[k][i];
    }
    merged_count += count;
    total.latency[k].count = count;
    if (count > 0) {
      const double cap = total.latency[k].max_seconds;
      total.latency[k].p50_seconds =
          std::min(LatencyPercentileSeconds(buckets[k], count, 0.50), cap);
      total.latency[k].p99_seconds =
          std::min(LatencyPercentileSeconds(buckets[k], count, 0.99), cap);
      total.latency[k].p999_seconds =
          std::min(LatencyPercentileSeconds(buckets[k], count, 0.999), cap);
    }
    total.max_latency_seconds =
        std::max(total.max_latency_seconds, total.latency[k].max_seconds);
  }
  if (merged_count > 0) {
    const double cap = total.max_latency_seconds;
    total.p50_latency_seconds =
        std::min(LatencyPercentileSeconds(merged, merged_count, 0.50), cap);
    total.p99_latency_seconds =
        std::min(LatencyPercentileSeconds(merged, merged_count, 0.99), cap);
    total.p999_latency_seconds =
        std::min(LatencyPercentileSeconds(merged, merged_count, 0.999), cap);
  }
  return total;
}

}  // namespace topl

#ifndef TOPL_GRAPH_GRAPH_DELTA_H_
#define TOPL_GRAPH_GRAPH_DELTA_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace topl {

/// \brief A batch of mutations against an immutable Graph.
///
/// Graph instances stay immutable (they may be zero-copy views of a mmap'd
/// TOPLIDX2 artifact shared across processes); mutation is expressed as a
/// delta overlay that ApplyDelta materializes into a fresh owned-heap Graph.
/// The vertex set is fixed — a delta edits edges and keyword sets of the
/// existing [0, n) id space, which is what the serving tier needs for
/// follow/unfollow and profile edits. Growing n is a re-ingest, not a delta.
///
/// Semantics (validated by ApplyDelta, first violation wins):
///  - edge_deletes are applied before edge_inserts, so replacing an edge's
///    activation probabilities is expressed as delete + insert of {u, v}.
///  - deleting an edge absent from the base graph is InvalidArgument.
///  - inserting an edge present in the base graph (and not deleted by this
///    delta) or inserted twice by this delta is InvalidArgument.
///  - keyword_adds of an already-present (v, w) pair and keyword_removes of
///    an absent pair are InvalidArgument — a delta states facts about the
///    transition, not the end state, so a no-op entry signals a stale client.
///  - endpoint/probability validation matches GraphBuilder (no self-loops,
///    probabilities in (0, 1]).
struct GraphDelta {
  /// Undirected edge insertion with the two directional activation
  /// probabilities (prob_uv = p(u→v), prob_vu = p(v→u)).
  struct EdgeInsert {
    VertexId u;
    VertexId v;
    float prob_uv;
    float prob_vu;
  };

  /// Undirected edge reference (deletion target).
  struct EdgeRef {
    VertexId u;
    VertexId v;
  };

  /// One keyword added to / removed from v.W.
  struct KeywordChange {
    VertexId v;
    KeywordId w;
  };

  std::vector<EdgeRef> edge_deletes;
  std::vector<EdgeInsert> edge_inserts;
  std::vector<KeywordChange> keyword_adds;
  std::vector<KeywordChange> keyword_removes;

  bool empty() const {
    return edge_deletes.empty() && edge_inserts.empty() &&
           keyword_adds.empty() && keyword_removes.empty();
  }

  std::size_t NumOps() const {
    return edge_deletes.size() + edge_inserts.size() + keyword_adds.size() +
           keyword_removes.size();
  }

  /// Convenience mutators (probabilities validated at ApplyDelta time).
  void DeleteEdge(VertexId u, VertexId v) { edge_deletes.push_back({u, v}); }
  void InsertEdge(VertexId u, VertexId v, double prob_uv, double prob_vu) {
    edge_inserts.push_back({u, v, static_cast<float>(prob_uv),
                            static_cast<float>(prob_vu)});
  }
  void InsertEdge(VertexId u, VertexId v, double prob) {
    InsertEdge(u, v, prob, prob);
  }
  void AddKeyword(VertexId v, KeywordId w) { keyword_adds.push_back({v, w}); }
  void RemoveKeyword(VertexId v, KeywordId w) {
    keyword_removes.push_back({v, w});
  }

  /// Every vertex named by any operation (deduplicated, sorted). These are
  /// the epicenters from which incremental index maintenance grows its dirty
  /// region.
  std::vector<VertexId> TouchedVertices() const;
};

/// Materializes base + delta as a new owned-heap Graph. The base is only
/// read (never written, even when heap-backed), so a mmap'd base stays
/// byte-identical on disk and snapshots serving it stay valid. The result is
/// bit-for-bit identical to building the mutated edge/keyword lists from
/// scratch with GraphBuilder, which is what keeps incremental index
/// maintenance comparable against full rebuilds. O(n + m + |delta| log m).
Result<Graph> ApplyDelta(const Graph& base, const GraphDelta& delta);

/// The directional activation probabilities of every undirected edge of g,
/// indexed by EdgeId: first = p(u→v), second = p(v→u) with u < v the
/// canonical endpoints. One O(n + m) arc scan; shared by ApplyDelta and the
/// reverse-influence pass of incremental maintenance.
void CollectEdgeProbabilities(const Graph& g, std::vector<float>* prob_uv,
                              std::vector<float>* prob_vu);

/// Shape of the synthetic update streams drawn by MakeRandomDelta.
struct RandomDeltaOptions {
  /// Operations per delta; each is a uniform pick among edge delete, edge
  /// insert, keyword add, keyword remove (skipped when no valid target is
  /// found, e.g. keyword removal on an attribute-less graph).
  int num_ops = 4;
  /// Keyword ids for adds are drawn from [0, keyword_domain).
  KeywordId keyword_domain = 50;
  /// Inserted-edge probabilities are drawn from [min_prob, max_prob) per
  /// direction (paper §VIII-A weight range).
  double min_prob = 0.5;
  double max_prob = 0.6;
};

/// Generates a random mixed delta, valid against `g` and internally
/// conflict-free (no operation targets the same edge or (vertex, keyword)
/// pair twice). Deterministic given the Rng state. This is the one update
/// distribution shared by the equivalence-sweep tests and bench_updates, so
/// the contract both enforce is measured over the same workload.
GraphDelta MakeRandomDelta(const Graph& g, Rng& rng,
                           const RandomDeltaOptions& options = {});

}  // namespace topl

#endif  // TOPL_GRAPH_GRAPH_DELTA_H_

#include "graph/graph.h"

#include <algorithm>

namespace topl {

namespace {

// Binary search in a sorted arc span for target `v`.
const Graph::Arc* FindArc(std::span<const Graph::Arc> arcs, VertexId v) {
  auto it = std::lower_bound(
      arcs.begin(), arcs.end(), v,
      [](const Graph::Arc& a, VertexId target) { return a.to < target; });
  if (it != arcs.end() && it->to == v) return &*it;
  return nullptr;
}

}  // namespace

bool Graph::HasEdge(VertexId u, VertexId v) const {
  // Search from the lower-degree endpoint.
  if (Degree(u) > Degree(v)) std::swap(u, v);
  return FindArc(Neighbors(u), v) != nullptr;
}

EdgeId Graph::FindEdge(VertexId u, VertexId v) const {
  if (Degree(u) > Degree(v)) std::swap(u, v);
  const Arc* arc = FindArc(Neighbors(u), v);
  return arc == nullptr ? kInvalidEdge : arc->edge;
}

bool Graph::HasKeyword(VertexId v, KeywordId w) const {
  const auto kw = Keywords(v);
  return std::binary_search(kw.begin(), kw.end(), w);
}

}  // namespace topl

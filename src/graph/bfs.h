#ifndef TOPL_GRAPH_BFS_H_
#define TOPL_GRAPH_BFS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace topl {

/// \brief Hop distances from `source` to every vertex of `g`, truncated at
/// `max_dist` hops (vertices further than max_dist get kUnreachedDistance).
///
/// Simple full-graph BFS used by tests and one-off checks; the query path
/// uses HopExtractor, which amortizes its scratch buffers across queries.
std::vector<std::uint32_t> BfsDistances(const Graph& g, VertexId source,
                                        std::uint32_t max_dist);

/// \brief Number of vertices within `radius` hops of `source` (inclusive of
/// source itself).
std::size_t CountWithinRadius(const Graph& g, VertexId source, std::uint32_t radius);

}  // namespace topl

#endif  // TOPL_GRAPH_BFS_H_

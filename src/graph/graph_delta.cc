#include "graph/graph_delta.h"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <utility>

#include "graph/graph_builder.h"

namespace topl {

namespace {

/// Canonical 64-bit key of an undirected vertex pair (order-insensitive).
std::uint64_t EdgeKey(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

/// Key of a (vertex, keyword) pair. Order-preserving — unlike edges, (3, 9)
/// and (9, 3) are different facts, and folding them together would make
/// keyword ops on one vertex corrupt another's set.
std::uint64_t VertexKeywordKey(VertexId v, KeywordId w) {
  return (static_cast<std::uint64_t>(v) << 32) | w;
}

std::string PairString(VertexId u, VertexId v) {
  return "{" + std::to_string(u) + ", " + std::to_string(v) + "}";
}

}  // namespace

std::vector<VertexId> GraphDelta::TouchedVertices() const {
  std::vector<VertexId> out;
  out.reserve(2 * (edge_deletes.size() + edge_inserts.size()) +
              keyword_adds.size() + keyword_removes.size());
  for (const EdgeRef& e : edge_deletes) {
    out.push_back(e.u);
    out.push_back(e.v);
  }
  for (const EdgeInsert& e : edge_inserts) {
    out.push_back(e.u);
    out.push_back(e.v);
  }
  for (const KeywordChange& c : keyword_adds) out.push_back(c.v);
  for (const KeywordChange& c : keyword_removes) out.push_back(c.v);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void CollectEdgeProbabilities(const Graph& g, std::vector<float>* prob_uv,
                              std::vector<float>* prob_vu) {
  prob_uv->assign(g.NumEdges(), 0.0f);
  prob_vu->assign(g.NumEdges(), 0.0f);
  for (VertexId x = 0; x < g.NumVertices(); ++x) {
    for (const Graph::Arc& arc : g.Neighbors(x)) {
      // Arc x→arc.to carries p(x→arc.to); the canonical endpoints of the
      // shared undirected edge decide which directional slot that is.
      if (x < arc.to) {
        (*prob_uv)[arc.edge] = arc.prob;
      } else {
        (*prob_vu)[arc.edge] = arc.prob;
      }
    }
  }
}

GraphDelta MakeRandomDelta(const Graph& g, Rng& rng,
                           const RandomDeltaOptions& options) {
  GraphDelta delta;
  std::unordered_set<std::uint64_t> used_edges;
  std::unordered_set<std::uint64_t> used_keywords;
  const std::size_t n = g.NumVertices();
  if (n == 0) return delta;
  for (int op = 0; op < options.num_ops; ++op) {
    const std::uint64_t kind = rng.NextBounded(4);
    for (int attempt = 0; attempt < 64; ++attempt) {
      if (kind == 0 && g.NumEdges() > 0) {  // delete a random edge
        const EdgeId e = static_cast<EdgeId>(rng.NextBounded(g.NumEdges()));
        const VertexId u = g.EdgeSource(e);
        const VertexId v = g.EdgeTarget(e);
        if (!used_edges.insert(EdgeKey(u, v)).second) continue;
        delta.DeleteEdge(u, v);
      } else if (kind == 1) {  // insert a random non-edge
        const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
        const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
        if (u == v || g.HasEdge(u, v)) continue;
        if (!used_edges.insert(EdgeKey(u, v)).second) continue;
        delta.InsertEdge(u, v, rng.NextDouble(options.min_prob, options.max_prob),
                         rng.NextDouble(options.min_prob, options.max_prob));
      } else if (kind == 2 && options.keyword_domain > 0) {  // add a keyword
        const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
        const KeywordId w =
            static_cast<KeywordId>(rng.NextBounded(options.keyword_domain));
        if (g.HasKeyword(v, w)) continue;
        if (!used_keywords.insert(VertexKeywordKey(v, w)).second) continue;
        delta.AddKeyword(v, w);
      } else if (kind == 3) {  // remove a keyword the vertex has
        const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
        const auto kws = g.Keywords(v);
        if (kws.empty()) continue;
        const KeywordId w = kws[rng.NextBounded(kws.size())];
        if (!used_keywords.insert(VertexKeywordKey(v, w)).second) continue;
        delta.RemoveKeyword(v, w);
      } else {
        continue;
      }
      break;
    }
  }
  return delta;
}

Result<Graph> ApplyDelta(const Graph& base, const GraphDelta& delta) {
  const std::size_t n = base.NumVertices();

  // --- Validate edge operations against the base edge set. ---
  std::unordered_set<std::uint64_t> deleted;
  deleted.reserve(delta.edge_deletes.size() * 2);
  for (const GraphDelta::EdgeRef& e : delta.edge_deletes) {
    if (e.u >= n || e.v >= n) {
      return Status::InvalidArgument("delta deletes edge with endpoint out of range: " +
                                     PairString(e.u, e.v));
    }
    if (!base.HasEdge(e.u, e.v)) {
      return Status::InvalidArgument("delta deletes non-existent edge " +
                                     PairString(e.u, e.v));
    }
    if (!deleted.insert(EdgeKey(e.u, e.v)).second) {
      return Status::InvalidArgument("delta deletes edge " + PairString(e.u, e.v) +
                                     " twice");
    }
  }
  std::unordered_set<std::uint64_t> inserted;
  inserted.reserve(delta.edge_inserts.size() * 2);
  for (const GraphDelta::EdgeInsert& e : delta.edge_inserts) {
    if (e.u >= n || e.v >= n) {
      return Status::InvalidArgument("delta inserts edge with endpoint out of range: " +
                                     PairString(e.u, e.v));
    }
    if (e.u == e.v) {
      return Status::InvalidArgument("delta inserts self-loop at vertex " +
                                     std::to_string(e.u));
    }
    const std::uint64_t key = EdgeKey(e.u, e.v);
    if (base.HasEdge(e.u, e.v) && deleted.count(key) == 0) {
      return Status::InvalidArgument("delta inserts edge " + PairString(e.u, e.v) +
                                     " that already exists (delete it first to "
                                     "change its probabilities)");
    }
    if (!inserted.insert(key).second) {
      return Status::InvalidArgument("delta inserts edge " + PairString(e.u, e.v) +
                                     " twice");
    }
    if (!(e.prob_uv > 0.0f && e.prob_uv <= 1.0f) ||
        !(e.prob_vu > 0.0f && e.prob_vu <= 1.0f)) {
      return Status::InvalidArgument(
          "delta inserts edge " + PairString(e.u, e.v) +
          " with activation probability outside (0, 1]");
    }
  }

  // --- Validate keyword operations against the base keyword sets. ---
  std::unordered_set<std::uint64_t> kw_removed;
  kw_removed.reserve(delta.keyword_removes.size() * 2);
  for (const GraphDelta::KeywordChange& c : delta.keyword_removes) {
    if (c.v >= n) {
      return Status::InvalidArgument("delta removes keyword from out-of-range vertex " +
                                     std::to_string(c.v));
    }
    if (!base.HasKeyword(c.v, c.w)) {
      return Status::InvalidArgument(
          "delta removes keyword " + std::to_string(c.w) + " absent from vertex " +
          std::to_string(c.v));
    }
    if (!kw_removed.insert(VertexKeywordKey(c.v, c.w)).second) {
      return Status::InvalidArgument(
          "delta removes keyword " + std::to_string(c.w) + " from vertex " +
          std::to_string(c.v) + " twice");
    }
  }
  std::unordered_set<std::uint64_t> kw_added;
  kw_added.reserve(delta.keyword_adds.size() * 2);
  for (const GraphDelta::KeywordChange& c : delta.keyword_adds) {
    if (c.v >= n) {
      return Status::InvalidArgument("delta adds keyword to out-of-range vertex " +
                                     std::to_string(c.v));
    }
    const std::uint64_t key = VertexKeywordKey(c.v, c.w);
    if (base.HasKeyword(c.v, c.w) && kw_removed.count(key) == 0) {
      return Status::InvalidArgument(
          "delta adds keyword " + std::to_string(c.w) + " already present on vertex " +
          std::to_string(c.v));
    }
    if (!kw_added.insert(key).second) {
      return Status::InvalidArgument(
          "delta adds keyword " + std::to_string(c.w) + " to vertex " +
          std::to_string(c.v) + " twice");
    }
  }

  // --- Materialize: surviving base edges, then inserts, then keywords. ---
  std::vector<float> prob_uv;
  std::vector<float> prob_vu;
  CollectEdgeProbabilities(base, &prob_uv, &prob_vu);

  GraphBuilder builder(n);
  for (EdgeId e = 0; e < base.NumEdges(); ++e) {
    const VertexId u = base.EdgeSource(e);
    const VertexId v = base.EdgeTarget(e);
    if (deleted.count(EdgeKey(u, v)) != 0) continue;
    builder.AddEdge(u, v, prob_uv[e], prob_vu[e]);
  }
  for (const GraphDelta::EdgeInsert& e : delta.edge_inserts) {
    builder.AddEdge(e.u, e.v, e.prob_uv, e.prob_vu);
  }
  for (VertexId v = 0; v < n; ++v) {
    for (KeywordId w : base.Keywords(v)) {
      if (kw_removed.count(VertexKeywordKey(v, w)) != 0) continue;
      builder.AddKeyword(v, w);
    }
  }
  for (const GraphDelta::KeywordChange& c : delta.keyword_adds) {
    builder.AddKeyword(c.v, c.w);
  }
  return std::move(builder).Build();
}

}  // namespace topl

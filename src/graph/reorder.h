#ifndef TOPL_GRAPH_REORDER_H_
#define TOPL_GRAPH_REORDER_H_

#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace topl {

/// \brief Locality-preserving vertex reordering (Gorder-lite) for the
/// million-vertex serving path.
///
/// The detectors' hot loops walk r-hop balls: hop(v, r) is explored arc by
/// arc, so query-time cache and TLB behavior is governed by how far apart
/// neighboring vertices' CSR rows land. Under generator or SNAP ids that
/// distance is essentially random; after a degree-descending, BFS-clustered
/// permutation, the members of a ball are overwhelmingly adjacent in id
/// space and therefore on the same few pages of the mapped artifact. The
/// permutation also shrinks the compressed artifact: delta+varint arc
/// encoding (storage/artifact.h) feeds on small |to - prev_to| gaps, which
/// is exactly what BFS clustering produces.
///
/// The order is deterministic for a given graph: hubs first (degree
/// descending, ids ascending as tie-break), each unvisited hub seeding a BFS
/// whose frontier expands neighbors in the same (degree desc, id asc) order.
/// This is the "Gorder-lite" compromise — the full Gorder sliding-window
/// maximization is O(m·w); the BFS clustering captures most of the locality
/// win at O(m log d).

/// Computes the locality order. `new_to_old[i]` is the original id of the
/// vertex that the reordered graph calls `i` — i.e. the permutation maps a
/// reordered (internal) id back to the original (external) id.
std::vector<VertexId> ComputeLocalityOrder(const Graph& g);

/// A reordered graph plus the permutation that produced it.
struct ReorderedGraph {
  Graph graph;
  /// new_to_old: external id of each internal vertex (see above). Stored in
  /// the TOPLIDX2 "g.extids" section so query results can be unmapped.
  std::vector<VertexId> external_ids;
};

/// Rebuilds `g` under an explicit permutation (`new_to_old` must be a
/// permutation of [0, n)). Edge ids are reassigned by the builder; arc
/// probabilities, keyword sets and the keyword domain bound carry over, so
/// the result is the same attributed network under new names.
Result<ReorderedGraph> ApplyVertexOrder(const Graph& g,
                                        std::vector<VertexId> new_to_old);

/// ComputeLocalityOrder + ApplyVertexOrder in one step.
Result<ReorderedGraph> ReorderForLocality(const Graph& g);

}  // namespace topl

#endif  // TOPL_GRAPH_REORDER_H_

#include "graph/local_subgraph.h"

#include <algorithm>

#include "common/check.h"

namespace topl {

void LocalGraph::Clear() {
  center = kInvalidVertex;
  global_ids.clear();
  dist.clear();
  offsets.clear();
  arcs.clear();
  edge_endpoints.clear();
  edge_radius.clear();
  global_edge_ids.clear();
}

HopExtractor::HopExtractor(const Graph& g)
    : graph_(&g),
      stamp_(g.NumVertices(), 0),
      local_of_(g.NumVertices(), 0) {}

bool HopExtractor::HasAnyKeyword(const Graph& g, VertexId v,
                                 std::span<const KeywordId> query) {
  // Merge-style intersection test over two sorted sequences; both sets are
  // tiny (|v.W| ≤ 5, |Q| ≤ 10 in the paper's grid) so linear merge wins over
  // repeated binary search.
  const auto kws = g.Keywords(v);
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < kws.size() && j < query.size()) {
    if (kws[i] == query[j]) return true;
    if (kws[i] < query[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

bool HopExtractor::Extract(VertexId center, std::uint32_t radius,
                           std::span<const KeywordId> keyword_filter,
                           LocalGraph* out) {
  TOPL_CHECK(center < graph_->NumVertices(), "HopExtractor: center out of range");
  out->Clear();
  const bool filtered = !keyword_filter.empty();
  if (filtered && !HasAnyKeyword(*graph_, center, keyword_filter)) {
    return false;
  }

  ++epoch_;
  out->center = center;

  // BFS, assigning local ids in discovery order.
  stamp_[center] = epoch_;
  local_of_[center] = 0;
  out->global_ids.push_back(center);
  out->dist.push_back(0);
  std::size_t head = 0;
  while (head < out->global_ids.size()) {
    const VertexId u = out->global_ids[head];
    const std::uint32_t du = out->dist[head];
    ++head;
    if (du == radius) continue;
    for (const Graph::Arc& arc : graph_->Neighbors(u)) {
      if (stamp_[arc.to] == epoch_) continue;
      if (filtered && !HasAnyKeyword(*graph_, arc.to, keyword_filter)) continue;
      stamp_[arc.to] = epoch_;
      local_of_[arc.to] = static_cast<std::uint32_t>(out->global_ids.size());
      out->global_ids.push_back(arc.to);
      out->dist.push_back(du + 1);
    }
  }

  // Enumerate induced edges once from the smaller-local-id endpoint,
  // assigning dense local edge ids.
  const std::size_t nv = out->global_ids.size();
  for (std::uint32_t l = 0; l < nv; ++l) {
    for (const Graph::Arc& arc : graph_->Neighbors(out->global_ids[l])) {
      if (stamp_[arc.to] != epoch_) continue;
      const std::uint32_t peer = local_of_[arc.to];
      if (l < peer) {
        out->edge_endpoints.emplace_back(l, peer);
        out->edge_radius.push_back(std::max(out->dist[l], out->dist[peer]));
        out->global_edge_ids.push_back(arc.edge);
      }
    }
  }

  // Local CSR straight from the edge list (degree count, prefix sum, fill),
  // then per-list sort by local target id.
  out->offsets.assign(nv + 1, 0);
  for (const auto& [a, b] : out->edge_endpoints) {
    ++out->offsets[a + 1];
    ++out->offsets[b + 1];
  }
  for (std::size_t l = 0; l < nv; ++l) out->offsets[l + 1] += out->offsets[l];
  out->arcs.resize(out->offsets[nv]);
  cursor_.assign(out->offsets.begin(), out->offsets.end() - 1);
  for (std::uint32_t e = 0; e < out->edge_endpoints.size(); ++e) {
    const auto [a, b] = out->edge_endpoints[e];
    out->arcs[cursor_[a]++] = {b, e};
    out->arcs[cursor_[b]++] = {a, e};
  }
  for (std::uint32_t l = 0; l < nv; ++l) {
    std::sort(out->arcs.begin() + static_cast<std::ptrdiff_t>(out->offsets[l]),
              out->arcs.begin() + static_cast<std::ptrdiff_t>(out->offsets[l + 1]),
              [](const LocalGraph::LocalArc& x, const LocalGraph::LocalArc& y) {
                return x.to < y.to;
              });
  }
  return true;
}

}  // namespace topl

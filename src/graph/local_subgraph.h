#ifndef TOPL_GRAPH_LOCAL_SUBGRAPH_H_
#define TOPL_GRAPH_LOCAL_SUBGRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace topl {

/// \brief An induced subgraph hop(center, r) materialized with dense local
/// vertex ids, local CSR adjacency, and dense local edge ids.
///
/// Local vertices are numbered in BFS order from the center, so `dist` is
/// non-decreasing and the vertex set of hop(center, r') for any r' ≤ r is a
/// prefix of `global_ids` — the precompute phase exploits this to process all
/// radii from one extraction.
struct LocalGraph {
  struct LocalArc {
    std::uint32_t to;          // local vertex id
    std::uint32_t local_edge;  // dense local edge id
  };

  VertexId center = kInvalidVertex;

  std::vector<VertexId> global_ids;   // local id -> global id (BFS order)
  std::vector<std::uint32_t> dist;    // hop distance from center, per local id

  std::vector<std::size_t> offsets;   // local CSR, size NumVertices()+1
  std::vector<LocalArc> arcs;         // sorted by `to` within each list

  // Per local edge: endpoints (a < b), the radius at which the edge first
  // appears (max of endpoint distances), and the global EdgeId.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_endpoints;
  std::vector<std::uint32_t> edge_radius;
  std::vector<EdgeId> global_edge_ids;

  std::size_t NumVertices() const { return global_ids.size(); }
  std::size_t NumEdges() const { return edge_endpoints.size(); }

  std::span<const LocalArc> Neighbors(std::uint32_t local) const {
    return {arcs.data() + offsets[local], arcs.data() + offsets[local + 1]};
  }

  void Clear();
};

/// \brief Extracts hop(center, r) subgraphs, reusing scratch buffers across
/// calls so that per-query extraction does no O(n) work.
///
/// Thread-compatibility: one HopExtractor per thread (the precompute pool
/// allocates one per worker); extraction only reads the shared Graph.
class HopExtractor {
 public:
  explicit HopExtractor(const Graph& g);

  /// Extracts the subgraph induced by the vertices within `radius` hops of
  /// `center`. If `keyword_filter` is non-empty, only vertices whose keyword
  /// set intersects it (a sorted KeywordId list) are traversed — this bakes
  /// the paper's keyword constraint (Definition 2, bullet 4) into the BFS.
  ///
  /// Returns false (and clears `out`) when the center itself fails the
  /// keyword filter; otherwise fills `out` and returns true.
  bool Extract(VertexId center, std::uint32_t radius,
               std::span<const KeywordId> keyword_filter, LocalGraph* out);

  /// True iff v.W intersects the sorted keyword list `query`.
  static bool HasAnyKeyword(const Graph& g, VertexId v,
                            std::span<const KeywordId> query);

 private:
  const Graph* graph_;
  // Epoch-stamped global->local map: O(1) membership without O(n) clearing.
  std::vector<std::uint32_t> stamp_;
  std::vector<std::uint32_t> local_of_;
  std::uint32_t epoch_ = 0;
  // CSR fill cursors, reused across calls (no per-extraction allocation).
  std::vector<std::size_t> cursor_;
};

}  // namespace topl

#endif  // TOPL_GRAPH_LOCAL_SUBGRAPH_H_

#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "graph/graph_builder.h"

namespace topl {

namespace {

// Packs an undirected edge into a dedup key (canonical min/max order).
std::uint64_t EdgeKey(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

// Assigns |v.W| *distinct* keywords to every vertex.
Status AssignKeywords(const KeywordModel& model, std::size_t num_vertices,
                      Rng& rng, GraphBuilder& builder) {
  if (model.domain_size == 0) {
    return Status::InvalidArgument("keyword domain must be non-empty");
  }
  if (model.keywords_per_vertex > model.domain_size) {
    return Status::InvalidArgument(
        "keywords_per_vertex exceeds keyword domain size");
  }
  std::vector<KeywordId> picked;
  for (VertexId v = 0; v < num_vertices; ++v) {
    picked.clear();
    while (picked.size() < model.keywords_per_vertex) {
      const KeywordId w = DrawKeywordFromModel(model, rng);
      if (std::find(picked.begin(), picked.end(), w) == picked.end()) {
        picked.push_back(w);
      }
    }
    for (KeywordId w : picked) builder.AddKeyword(v, w);
  }
  return Status::OK();
}

void AddWeightedEdge(const WeightModel& weights, VertexId u, VertexId v, Rng& rng,
                     GraphBuilder& builder) {
  const double p_uv = rng.NextDouble(weights.min_weight, weights.max_weight);
  const double p_vu =
      weights.symmetric ? p_uv : rng.NextDouble(weights.min_weight, weights.max_weight);
  builder.AddEdge(u, v, p_uv, p_vu);
}

Status ValidateWeightModel(const WeightModel& weights) {
  if (!(weights.min_weight > 0.0 && weights.max_weight <= 1.0 &&
        weights.min_weight <= weights.max_weight)) {
    return Status::InvalidArgument("weight range must satisfy 0 < min <= max <= 1");
  }
  return Status::OK();
}

}  // namespace

KeywordId DrawKeywordFromModel(const KeywordModel& model, Rng& rng) {
  const std::uint32_t domain = model.domain_size;
  switch (model.distribution) {
    case KeywordDistribution::kUniform:
      return static_cast<KeywordId>(rng.NextBounded(domain));
    case KeywordDistribution::kGaussian: {
      const double mean = domain / 2.0;
      const double stddev = domain / 6.0;
      const double draw = std::round(mean + stddev * rng.NextGaussian());
      const double clamped = std::clamp(draw, 0.0, static_cast<double>(domain - 1));
      return static_cast<KeywordId>(clamped);
    }
    case KeywordDistribution::kZipf:
      return static_cast<KeywordId>(rng.NextZipf(domain, model.zipf_exponent));
  }
  return 0;
}

Result<Graph> MakeSmallWorld(const SmallWorldOptions& options) {
  TOPL_RETURN_IF_ERROR(ValidateWeightModel(options.weights));
  const std::size_t n = options.num_vertices;
  const std::uint32_t half = options.ring_neighbors / 2;
  if (n < 3) return Status::InvalidArgument("small-world graph needs >= 3 vertices");
  if (half == 0) {
    return Status::InvalidArgument("ring_neighbors must be >= 2");
  }
  if (2ULL * half >= n) {
    return Status::InvalidArgument("ring_neighbors too large for vertex count");
  }
  if (!(options.shortcut_prob >= 0.0 && options.shortcut_prob <= 1.0)) {
    return Status::InvalidArgument("shortcut_prob must be in [0, 1]");
  }

  Rng rng(options.seed);
  GraphBuilder builder(n);
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::pair<VertexId, VertexId>> ring_edges;

  // Ring lattice: each vertex links to its `half` successors (covering the
  // `ring_neighbors` nearest neighbors overall).
  for (VertexId u = 0; u < n; ++u) {
    for (std::uint32_t d = 1; d <= half; ++d) {
      const VertexId v = static_cast<VertexId>((u + d) % n);
      if (seen.insert(EdgeKey(u, v)).second) {
        ring_edges.emplace_back(u, v);
        AddWeightedEdge(options.weights, u, v, rng, builder);
      }
    }
  }
  // Newman–Watts shortcuts: for each lattice edge (u, v), with probability μ
  // add an extra edge from u to a uniformly random vertex w (the NW variant
  // *adds* shortcuts instead of rewiring, keeping the graph connected).
  for (const auto& [u, v] : ring_edges) {
    if (rng.NextDouble() >= options.shortcut_prob) continue;
    // A handful of retries to find a fresh endpoint; skip if the neighborhood
    // is saturated (only plausible for tiny n).
    for (int attempt = 0; attempt < 16; ++attempt) {
      const VertexId w = static_cast<VertexId>(rng.NextBounded(n));
      if (w == u) continue;
      if (seen.insert(EdgeKey(u, w)).second) {
        AddWeightedEdge(options.weights, u, w, rng, builder);
        break;
      }
    }
  }

  TOPL_RETURN_IF_ERROR(AssignKeywords(options.keywords, n, rng, builder));
  return std::move(builder).Build();
}

Result<Graph> MakePowerlawCluster(const PowerlawClusterOptions& options) {
  TOPL_RETURN_IF_ERROR(ValidateWeightModel(options.weights));
  const std::size_t n = options.num_vertices;
  const std::uint32_t attach = options.edges_per_vertex;
  if (attach == 0) return Status::InvalidArgument("edges_per_vertex must be >= 1");
  if (n < attach + 1) {
    return Status::InvalidArgument("need num_vertices > edges_per_vertex");
  }
  if (!(options.triangle_prob >= 0.0 && options.triangle_prob <= 1.0)) {
    return Status::InvalidArgument("triangle_prob must be in [0, 1]");
  }

  Rng rng(options.seed);
  GraphBuilder builder(n);
  std::unordered_set<std::uint64_t> seen;
  // `targets` holds one entry per arc endpoint, so uniform draws from it are
  // degree-proportional (the classic BA repeated-endpoint trick).
  std::vector<VertexId> targets;
  std::vector<std::vector<VertexId>> adj(n);

  auto add_edge = [&](VertexId u, VertexId v) {
    if (u == v || !seen.insert(EdgeKey(u, v)).second) return false;
    AddWeightedEdge(options.weights, u, v, rng, builder);
    targets.push_back(u);
    targets.push_back(v);
    adj[u].push_back(v);
    adj[v].push_back(u);
    return true;
  };

  // Seed core: a path over the first attach+1 vertices (keeps the graph
  // connected and gives every early vertex nonzero degree).
  for (VertexId v = 0; v + 1 <= attach; ++v) add_edge(v, v + 1);

  for (VertexId v = attach + 1; v < n; ++v) {
    std::uint32_t added = 0;
    VertexId last_target = kInvalidVertex;
    int guard = 0;
    while (added < attach && guard < 1000) {
      ++guard;
      VertexId candidate;
      // Triad step: close a triangle through a neighbor of the previous
      // target with probability triangle_prob (Holme–Kim).
      if (last_target != kInvalidVertex && !adj[last_target].empty() &&
          rng.NextDouble() < options.triangle_prob) {
        candidate = adj[last_target][rng.NextBounded(adj[last_target].size())];
      } else {
        candidate = targets[rng.NextBounded(targets.size())];
      }
      if (add_edge(v, candidate)) {
        last_target = candidate;
        ++added;
      }
    }
  }

  TOPL_RETURN_IF_ERROR(AssignKeywords(options.keywords, n, rng, builder));
  return std::move(builder).Build();
}

Result<Graph> MakeErdosRenyi(const ErdosRenyiOptions& options) {
  TOPL_RETURN_IF_ERROR(ValidateWeightModel(options.weights));
  const std::size_t n = options.num_vertices;
  if (n < 2) return Status::InvalidArgument("Erdos-Renyi graph needs >= 2 vertices");
  if (!(options.edge_prob >= 0.0 && options.edge_prob <= 1.0)) {
    return Status::InvalidArgument("edge_prob must be in [0, 1]");
  }

  Rng rng(options.seed);
  GraphBuilder builder(n);
  std::unordered_set<std::uint64_t> seen;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.NextDouble() < options.edge_prob) {
        seen.insert(EdgeKey(u, v));
        AddWeightedEdge(options.weights, u, v, rng, builder);
      }
    }
  }
  if (options.add_spanning_ring) {
    for (VertexId u = 0; u < n; ++u) {
      const VertexId v = static_cast<VertexId>((u + 1) % n);
      if (seen.insert(EdgeKey(u, v)).second) {
        AddWeightedEdge(options.weights, u, v, rng, builder);
      }
    }
  }

  TOPL_RETURN_IF_ERROR(AssignKeywords(options.keywords, n, rng, builder));
  return std::move(builder).Build();
}

Result<Graph> MakeDblpLike(std::size_t num_vertices, std::uint64_t seed) {
  PowerlawClusterOptions options;
  options.num_vertices = num_vertices;
  options.edges_per_vertex = 3;  // com-DBLP average degree ≈ 6.6
  options.triangle_prob = 0.7;   // co-authorship graphs cluster strongly
  options.seed = seed;
  return MakePowerlawCluster(options);
}

Result<Graph> MakeAmazonLike(std::size_t num_vertices, std::uint64_t seed) {
  PowerlawClusterOptions options;
  options.num_vertices = num_vertices;
  options.edges_per_vertex = 3;  // com-Amazon average degree ≈ 5.5
  options.triangle_prob = 0.3;
  options.seed = seed;
  return MakePowerlawCluster(options);
}

}  // namespace topl

#ifndef TOPL_GRAPH_EDGE_LIST_IO_H_
#define TOPL_GRAPH_EDGE_LIST_IO_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace topl {

/// Options controlling SNAP edge-list ingestion.
struct EdgeListLoadOptions {
  /// SNAP community graphs (com-DBLP, com-Amazon) carry neither influence
  /// weights nor keywords; when true the loader attaches synthetic attributes
  /// using the paper's protocol (weights U[0.5, 0.6), keywords from the
  /// configured model) — this mirrors how the paper must prepare these
  /// datasets, since TopL-ICDE requires both attribute kinds.
  bool assign_attributes = true;
  KeywordModel keywords;
  WeightModel weights;
  std::uint64_t attribute_seed = 42;

  /// Definition 1 requires a connected network; when true the loader keeps
  /// only the largest connected component (and renumbers vertices densely).
  bool restrict_to_largest_component = false;

  /// Invoked with the running edge count after every `progress_interval`
  /// accepted edges — million-edge SNAP ingests are minutes of silence
  /// otherwise. Null disables reporting.
  std::function<void(std::size_t edges)> progress;
  std::size_t progress_interval = 1000000;
};

/// \brief Loads a SNAP-format undirected edge list.
///
/// Accepted syntax per line: `# comment`, blank, or `u <tab-or-space> v` with
/// arbitrary non-negative integer ids. Ids are remapped to dense [0, n) in
/// first-appearance order; duplicate edges (in either orientation) and
/// self-loops are dropped, matching how SNAP community files are consumed.
///
/// The file is streamed through a fixed-size chunk buffer (never slurped),
/// so peak memory is the deduplicated edge set plus O(1) of line buffer —
/// the line length, not the file length, bounds the carry.
Result<Graph> LoadSnapEdgeList(const std::string& path,
                               const EdgeListLoadOptions& options);

/// Writes `g` as a SNAP-compatible edge list (`u\tv` lines plus a comment
/// header). Attributes are not representable in this format; use the binary
/// codec (graph/binary_io.h) for lossless persistence.
Status WriteSnapEdgeList(const Graph& g, const std::string& path);

}  // namespace topl

#endif  // TOPL_GRAPH_EDGE_LIST_IO_H_

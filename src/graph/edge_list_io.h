#ifndef TOPL_GRAPH_EDGE_LIST_IO_H_
#define TOPL_GRAPH_EDGE_LIST_IO_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace topl {

/// Options controlling SNAP edge-list ingestion.
struct EdgeListLoadOptions {
  /// SNAP community graphs (com-DBLP, com-Amazon) carry neither influence
  /// weights nor keywords; when true the loader attaches synthetic attributes
  /// using the paper's protocol (weights U[0.5, 0.6), keywords from the
  /// configured model) — this mirrors how the paper must prepare these
  /// datasets, since TopL-ICDE requires both attribute kinds.
  bool assign_attributes = true;
  KeywordModel keywords;
  WeightModel weights;
  std::uint64_t attribute_seed = 42;

  /// Definition 1 requires a connected network; when true the loader keeps
  /// only the largest connected component (and renumbers vertices densely).
  bool restrict_to_largest_component = false;
};

/// \brief Loads a SNAP-format undirected edge list.
///
/// Accepted syntax per line: `# comment`, blank, or `u <tab-or-space> v` with
/// arbitrary non-negative integer ids. Ids are remapped to dense [0, n) in
/// first-appearance order; duplicate edges (in either orientation) and
/// self-loops are dropped, matching how SNAP community files are consumed.
Result<Graph> LoadSnapEdgeList(const std::string& path,
                               const EdgeListLoadOptions& options);

/// Writes `g` as a SNAP-compatible edge list (`u\tv` lines plus a comment
/// header). Attributes are not representable in this format; use the binary
/// codec (graph/binary_io.h) for lossless persistence.
Status WriteSnapEdgeList(const Graph& g, const std::string& path);

}  // namespace topl

#endif  // TOPL_GRAPH_EDGE_LIST_IO_H_

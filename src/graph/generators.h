#ifndef TOPL_GRAPH_GENERATORS_H_
#define TOPL_GRAPH_GENERATORS_H_

#include <cstdint>

#include "common/result.h"
#include "common/rng.h"
#include "graph/graph.h"

namespace topl {

/// Distribution used to draw keyword ids from the domain Σ (paper §VIII-A:
/// Uniform, Gaussian, or Zipf — giving the Uni / Gau / Zipf datasets).
enum class KeywordDistribution {
  kUniform,
  kGaussian,  // mean |Σ|/2, stddev |Σ|/6, clamped to [0, |Σ|)
  kZipf,      // rank-frequency exponent `zipf_exponent`
};

/// How vertex keyword sets are populated.
struct KeywordModel {
  std::uint32_t keywords_per_vertex = 3;  // |v.W| (paper default 3)
  std::uint32_t domain_size = 50;         // |Σ| (paper default 50)
  KeywordDistribution distribution = KeywordDistribution::kUniform;
  double zipf_exponent = 1.5;
};

/// How directional activation probabilities are drawn. The paper draws each
/// edge weight uniformly from [0.5, 0.6).
struct WeightModel {
  double min_weight = 0.5;
  double max_weight = 0.6;
  // When false (default) the two directions of an edge are drawn
  // independently; when true p(u→v) = p(v→u).
  bool symmetric = false;
};

/// Newman–Watts–Strogatz small-world graph (paper §VIII-A): an n-ring where
/// each vertex links to its `ring_neighbors` nearest ring neighbors, plus a
/// random shortcut per existing edge with probability `shortcut_prob`.
struct SmallWorldOptions {
  std::size_t num_vertices = 10000;
  std::uint32_t ring_neighbors = 6;  // paper: m = 6 (3 on each side)
  double shortcut_prob = 0.167;      // paper: μ = 0.167
  KeywordModel keywords;
  WeightModel weights;
  std::uint64_t seed = 42;
};

/// Holme–Kim powerlaw-cluster graph: Barabási–Albert preferential attachment
/// where each attachment is followed, with probability `triangle_prob`, by a
/// triad-closure step. Used as the stand-in for the SNAP datasets (DESIGN.md
/// §4): power-law degrees plus tunable clustering.
struct PowerlawClusterOptions {
  std::size_t num_vertices = 10000;
  std::uint32_t edges_per_vertex = 3;  // attachments per arriving vertex
  double triangle_prob = 0.5;
  KeywordModel keywords;
  WeightModel weights;
  std::uint64_t seed = 42;
};

/// Erdős–Rényi G(n, p) graph restricted to small n (test workloads). Not
/// guaranteed connected; add_spanning_ring stitches vertex i to i+1 so that
/// property tests get a connected graph without changing density much.
struct ErdosRenyiOptions {
  std::size_t num_vertices = 100;
  double edge_prob = 0.1;
  bool add_spanning_ring = true;
  KeywordModel keywords;
  WeightModel weights;
  std::uint64_t seed = 42;
};

/// Draws one keyword id from the model's distribution. Shared by the
/// generators and the SNAP loader (graph/edge_list_io.h).
KeywordId DrawKeywordFromModel(const KeywordModel& model, Rng& rng);

/// Generates the Uni / Gau / Zipf synthetic social networks of the paper.
Result<Graph> MakeSmallWorld(const SmallWorldOptions& options);

/// Generates a powerlaw-cluster graph (SNAP stand-in).
Result<Graph> MakePowerlawCluster(const PowerlawClusterOptions& options);

/// Generates an Erdős–Rényi graph (test workloads).
Result<Graph> MakeErdosRenyi(const ErdosRenyiOptions& options);

/// DBLP-like stand-in: powerlaw-cluster with the co-authorship network's
/// average degree (~6.6) and high triad closure (DESIGN.md §4).
Result<Graph> MakeDblpLike(std::size_t num_vertices, std::uint64_t seed);

/// Amazon-like stand-in: powerlaw-cluster with the co-purchase network's
/// average degree (~5.5) and moderate triad closure.
Result<Graph> MakeAmazonLike(std::size_t num_vertices, std::uint64_t seed);

}  // namespace topl

#endif  // TOPL_GRAPH_GENERATORS_H_

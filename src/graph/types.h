#ifndef TOPL_GRAPH_TYPES_H_
#define TOPL_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace topl {

/// Vertex identifier; vertices of a Graph are densely numbered [0, n).
using VertexId = std::uint32_t;

/// Undirected-edge identifier; edges are densely numbered [0, m).
using EdgeId = std::uint32_t;

/// Keyword identifier assigned by KeywordDictionary; dense in [0, |Σ|).
using KeywordId = std::uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();

/// Sentinel for "no edge".
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// Sentinel for "unreached" BFS distance.
inline constexpr std::uint32_t kUnreachedDistance =
    std::numeric_limits<std::uint32_t>::max();

}  // namespace topl

#endif  // TOPL_GRAPH_TYPES_H_

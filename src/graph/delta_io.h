#ifndef TOPL_GRAPH_DELTA_IO_H_
#define TOPL_GRAPH_DELTA_IO_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "graph/graph_delta.h"

namespace topl {

/// \brief Text serialization of GraphDelta: the `topl_cli update` input
/// format and the interchange format of the update pipeline.
///
/// One operation per line, '#' starts a comment, blank lines are ignored:
///
///   e- u v                delete undirected edge {u, v}
///   e+ u v p_uv [p_vu]    insert edge {u, v}; p_vu defaults to p_uv
///   w- v kw               remove keyword kw from v.W
///   w+ v kw               add keyword kw to v.W
///
/// Line order inside a kind is preserved, but ApplyDelta always applies
/// deletes before inserts, so "e- 3 7" followed by "e+ 3 7 0.9" (in either
/// line order) re-weights the edge.
Result<GraphDelta> ReadGraphDeltaText(const std::string& path);

/// Writes the delta in the format ReadGraphDeltaText parses.
Status WriteGraphDeltaText(const GraphDelta& delta, const std::string& path);

}  // namespace topl

#endif  // TOPL_GRAPH_DELTA_IO_H_

#ifndef TOPL_GRAPH_GRAPH_BUILDER_H_
#define TOPL_GRAPH_GRAPH_BUILDER_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace topl {

/// \brief Mutable accumulator that assembles an immutable CSR Graph.
///
/// Usage:
/// \code
///   GraphBuilder b(/*num_vertices=*/n);
///   b.AddEdge(u, v, p_uv, p_vu);
///   b.AddKeyword(u, w);
///   Result<Graph> g = std::move(b).Build();
/// \endcode
///
/// AddEdge records an undirected edge with the two directional activation
/// probabilities. Duplicate edges are rejected at Build time (Corruption);
/// self-loops are rejected immediately on insertion order-independently at
/// Build time as well, so bulk loaders can defer all validation to one place.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t num_vertices);

  /// Records undirected edge {u, v} with activation probabilities
  /// prob_uv = p(u→v) and prob_vu = p(v→u). Probabilities must lie in (0, 1].
  void AddEdge(VertexId u, VertexId v, double prob_uv, double prob_vu);

  /// Convenience: symmetric probability p(u→v) = p(v→u) = prob.
  void AddEdge(VertexId u, VertexId v, double prob) { AddEdge(u, v, prob, prob); }

  /// Adds keyword w to u.W. Duplicate (u, w) pairs are deduplicated at Build.
  void AddKeyword(VertexId u, KeywordId w);

  std::size_t num_vertices() const { return num_vertices_; }
  std::size_t num_pending_edges() const { return edges_.size(); }

  /// Validates and assembles the graph. Consumes the builder. Fails with
  /// InvalidArgument on out-of-range endpoints / probabilities, and
  /// Corruption on self-loops or duplicate edges.
  Result<Graph> Build() &&;

 private:
  struct PendingEdge {
    VertexId u;
    VertexId v;
    float prob_uv;
    float prob_vu;
  };

  std::size_t num_vertices_;
  std::vector<PendingEdge> edges_;
  std::vector<std::pair<VertexId, KeywordId>> keyword_pairs_;
  Status deferred_error_;
};

}  // namespace topl

#endif  // TOPL_GRAPH_GRAPH_BUILDER_H_

#include "graph/graph_builder.h"

#include <algorithm>
#include <string>
#include <tuple>
#include <utility>

namespace topl {

GraphBuilder::GraphBuilder(std::size_t num_vertices) : num_vertices_(num_vertices) {}

void GraphBuilder::AddEdge(VertexId u, VertexId v, double prob_uv, double prob_vu) {
  if (!deferred_error_.ok()) return;
  if (u >= num_vertices_ || v >= num_vertices_) {
    deferred_error_ = Status::InvalidArgument(
        "edge endpoint out of range: {" + std::to_string(u) + ", " +
        std::to_string(v) + "} with n=" + std::to_string(num_vertices_));
    return;
  }
  if (u == v) {
    deferred_error_ =
        Status::Corruption("self-loop at vertex " + std::to_string(u));
    return;
  }
  if (!(prob_uv > 0.0 && prob_uv <= 1.0) || !(prob_vu > 0.0 && prob_vu <= 1.0)) {
    deferred_error_ = Status::InvalidArgument(
        "activation probability outside (0, 1] on edge {" + std::to_string(u) +
        ", " + std::to_string(v) + "}");
    return;
  }
  // Normalize so that u < v; keep probabilities oriented with the endpoints.
  if (u > v) {
    std::swap(u, v);
    std::swap(prob_uv, prob_vu);
  }
  edges_.push_back({u, v, static_cast<float>(prob_uv), static_cast<float>(prob_vu)});
}

void GraphBuilder::AddKeyword(VertexId u, KeywordId w) {
  if (!deferred_error_.ok()) return;
  if (u >= num_vertices_) {
    deferred_error_ = Status::InvalidArgument(
        "keyword vertex out of range: " + std::to_string(u));
    return;
  }
  keyword_pairs_.emplace_back(u, w);
}

Result<Graph> GraphBuilder::Build() && {
  if (!deferred_error_.ok()) return deferred_error_;

  std::sort(edges_.begin(), edges_.end(),
            [](const PendingEdge& a, const PendingEdge& b) {
              return std::tie(a.u, a.v) < std::tie(b.u, b.v);
            });
  for (std::size_t i = 1; i < edges_.size(); ++i) {
    if (edges_[i].u == edges_[i - 1].u && edges_[i].v == edges_[i - 1].v) {
      // Distinct from every other builder diagnostic: the duplicate arcs may
      // carry different probabilities, and silently letting one win would
      // corrupt influence scores, so the pair is named explicitly.
      return Status::Corruption(
          "duplicate undirected edge {" + std::to_string(edges_[i].u) + ", " +
          std::to_string(edges_[i].v) +
          "}: AddEdge was called more than once for this vertex pair (in "
          "either endpoint order), probabilities would be ambiguous");
    }
  }

  Graph g;
  const std::size_t n = num_vertices_;
  const std::size_t m = edges_.size();
  g.owned_edge_endpoints_.reserve(m);

  // Degree counting pass.
  std::vector<std::size_t> degree(n, 0);
  for (const PendingEdge& e : edges_) {
    ++degree[e.u];
    ++degree[e.v];
  }
  auto& offsets = g.owned_offsets_;
  auto& arcs = g.owned_arcs_;
  offsets.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + degree[v];
  arcs.resize(2 * m);

  // Fill pass: edges are sorted by (u, v) so per-vertex arc lists come out
  // sorted by construction (u's arcs get ascending v; v's arcs get ascending
  // u because edges are grouped by u ascending).
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (EdgeId e = 0; e < m; ++e) {
    const PendingEdge& pe = edges_[e];
    g.owned_edge_endpoints_.push_back({pe.u, pe.v});
    arcs[cursor[pe.u]++] = {pe.v, pe.prob_uv, e};
    arcs[cursor[pe.v]++] = {pe.u, pe.prob_vu, e};
  }
  // The v-side lists receive arcs in ascending u order, but interleaved with
  // the u-side fills they can end up locally unsorted; sort each list once.
  for (std::size_t v = 0; v < n; ++v) {
    std::sort(arcs.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              arcs.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]),
              [](const Graph::Arc& a, const Graph::Arc& b) { return a.to < b.to; });
  }

  // Keyword CSR.
  std::sort(keyword_pairs_.begin(), keyword_pairs_.end());
  keyword_pairs_.erase(std::unique(keyword_pairs_.begin(), keyword_pairs_.end()),
                       keyword_pairs_.end());
  auto& keyword_offsets = g.owned_keyword_offsets_;
  keyword_offsets.assign(n + 1, 0);
  for (const auto& [v, w] : keyword_pairs_) {
    ++keyword_offsets[v + 1];
    g.keyword_domain_bound_ = std::max(g.keyword_domain_bound_, w + 1);
  }
  for (std::size_t v = 0; v < n; ++v) {
    keyword_offsets[v + 1] += keyword_offsets[v];
  }
  g.owned_keywords_.reserve(keyword_pairs_.size());
  for (const auto& [v, w] : keyword_pairs_) g.owned_keywords_.push_back(w);

  g.BindOwned();
  return g;
}

}  // namespace topl

#include "graph/edge_list_io.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "graph/connectivity.h"
#include "graph/graph_builder.h"

namespace topl {

namespace {

std::uint64_t EdgeKey(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

// Parses "<int><ws><int>" from a line; returns false on malformed input.
bool ParseEdgeLine(std::string_view line, std::uint64_t* a, std::uint64_t* b) {
  const char* ptr = line.data();
  const char* end = line.data() + line.size();
  while (ptr != end && (*ptr == ' ' || *ptr == '\t')) ++ptr;
  auto first = std::from_chars(ptr, end, *a);
  if (first.ec != std::errc()) return false;
  ptr = first.ptr;
  while (ptr != end && (*ptr == ' ' || *ptr == '\t')) ++ptr;
  auto second = std::from_chars(ptr, end, *b);
  if (second.ec != std::errc()) return false;
  ptr = second.ptr;
  while (ptr != end && (*ptr == ' ' || *ptr == '\t' || *ptr == '\r')) ++ptr;
  return ptr == end;
}

}  // namespace

Result<Graph> LoadSnapEdgeList(const std::string& path,
                               const EdgeListLoadOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open edge list: " + path);

  std::unordered_map<std::uint64_t, VertexId> remap;
  std::vector<std::pair<VertexId, VertexId>> edges;
  std::unordered_set<std::uint64_t> seen;
  auto intern = [&remap](std::uint64_t raw) {
    return remap.emplace(raw, static_cast<VertexId>(remap.size())).first->second;
  };

  // Chunked streaming read: fixed 1 MiB buffer, lines split manually, with a
  // carry string for the line straddling each chunk boundary. Keeps memory
  // proportional to the edge set (not the file) and beats per-line getline
  // on the 100M-edge inputs `convert` exists for.
  std::vector<char> buffer(1 << 20);
  std::string carry;
  std::size_t line_no = 0;
  Status line_error = Status::OK();
  const auto process_line = [&](std::string_view text) {
    ++line_no;
    if (text.empty() || text[0] == '#') return;
    std::uint64_t raw_a = 0;
    std::uint64_t raw_b = 0;
    if (!ParseEdgeLine(text, &raw_a, &raw_b)) {
      line_error = Status::Corruption(path + ":" + std::to_string(line_no) +
                                      ": malformed edge line");
      return;
    }
    const VertexId a = intern(raw_a);
    const VertexId b = intern(raw_b);
    if (a == b) return;  // SNAP files occasionally contain self-loops.
    if (!seen.insert(EdgeKey(a, b)).second) return;  // both orientations listed
    edges.emplace_back(a, b);
    if (options.progress && options.progress_interval > 0 &&
        edges.size() % options.progress_interval == 0) {
      options.progress(edges.size());
    }
  };
  while (line_error.ok()) {
    in.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    const std::size_t got = static_cast<std::size_t>(in.gcount());
    if (got == 0) break;
    std::string_view chunk(buffer.data(), got);
    std::size_t start = 0;
    while (line_error.ok()) {
      const std::size_t newline = chunk.find('\n', start);
      if (newline == std::string_view::npos) {
        carry.append(chunk.substr(start));
        break;
      }
      if (carry.empty()) {
        process_line(chunk.substr(start, newline - start));
      } else {
        carry.append(chunk.substr(start, newline - start));
        process_line(carry);
        carry.clear();
      }
      start = newline + 1;
    }
  }
  if (line_error.ok() && !carry.empty()) process_line(carry);  // no trailing \n
  if (!line_error.ok()) return line_error;
  if (in.bad()) return Status::IOError("read error on " + path);
  if (remap.empty()) return Status::Corruption(path + ": no edges found");

  std::size_t n = remap.size();

  // Optional restriction to the largest component: build a throwaway
  // structure-only graph, find the component, filter + renumber.
  if (options.restrict_to_largest_component) {
    GraphBuilder probe(n);
    for (const auto& [a, b] : edges) probe.AddEdge(a, b, 0.5, 0.5);
    Result<Graph> structure = std::move(probe).Build();
    if (!structure.ok()) return structure.status();
    const std::vector<VertexId> keep = LargestComponent(*structure);
    std::vector<VertexId> dense(n, kInvalidVertex);
    for (std::size_t i = 0; i < keep.size(); ++i) {
      dense[keep[i]] = static_cast<VertexId>(i);
    }
    std::vector<std::pair<VertexId, VertexId>> filtered;
    filtered.reserve(edges.size());
    for (const auto& [a, b] : edges) {
      if (dense[a] != kInvalidVertex && dense[b] != kInvalidVertex) {
        filtered.emplace_back(dense[a], dense[b]);
      }
    }
    edges.swap(filtered);
    n = keep.size();
  }

  GraphBuilder builder(n);
  Rng rng(options.attribute_seed);
  for (const auto& [a, b] : edges) {
    if (options.assign_attributes) {
      const double p_ab =
          rng.NextDouble(options.weights.min_weight, options.weights.max_weight);
      const double p_ba =
          options.weights.symmetric
              ? p_ab
              : rng.NextDouble(options.weights.min_weight, options.weights.max_weight);
      builder.AddEdge(a, b, p_ab, p_ba);
    } else {
      builder.AddEdge(a, b, 1.0, 1.0);
    }
  }
  if (options.assign_attributes) {
    const KeywordModel& model = options.keywords;
    if (model.keywords_per_vertex > model.domain_size) {
      return Status::InvalidArgument("keywords_per_vertex exceeds domain size");
    }
    std::vector<KeywordId> picked;
    for (VertexId v = 0; v < n; ++v) {
      picked.clear();
      while (picked.size() < model.keywords_per_vertex) {
        const KeywordId w = DrawKeywordFromModel(model, rng);
        if (std::find(picked.begin(), picked.end(), w) == picked.end()) {
          picked.push_back(w);
        }
      }
      for (KeywordId w : picked) builder.AddKeyword(v, w);
    }
  }
  return std::move(builder).Build();
}

Status WriteSnapEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << "# Undirected graph, written by topl\n";
  out << "# Nodes: " << g.NumVertices() << " Edges: " << g.NumEdges() << "\n";
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    out << g.EdgeSource(e) << '\t' << g.EdgeTarget(e) << '\n';
  }
  out.flush();
  if (!out) return Status::IOError("write error on " + path);
  return Status::OK();
}

}  // namespace topl

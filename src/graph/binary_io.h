#ifndef TOPL_GRAPH_BINARY_IO_H_
#define TOPL_GRAPH_BINARY_IO_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "graph/graph.h"

namespace topl {

/// \brief Lossless binary graph codec.
///
/// Layout (all integers little-endian, fixed width):
///   magic "TOPLGRF1" (8 bytes)
///   n: u64, m: u64, total_keywords: u64
///   m × { u: u32, v: u32, p_uv: f32, p_vu: f32 }
///   (n+1) × keyword_offset: u64
///   total_keywords × keyword_id: u32
///
/// The reader re-validates everything through GraphBuilder, so a corrupt or
/// truncated file yields Status::Corruption rather than a malformed Graph.
Status WriteGraphBinary(const Graph& g, const std::string& path);

/// Reads a graph written by WriteGraphBinary.
Result<Graph> ReadGraphBinary(const std::string& path);

/// The size header of a binary graph file.
struct GraphBinaryHeader {
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t total_keywords = 0;
};

/// Reads just the fixed-size header of a graph file — O(1), no graph
/// construction. Used to cross-check a graph file against the graph embedded
/// in a TOPLIDX2 index artifact without paying for a full parse.
Result<GraphBinaryHeader> ReadGraphBinaryHeader(const std::string& path);

}  // namespace topl

#endif  // TOPL_GRAPH_BINARY_IO_H_

#include "graph/connectivity.h"

#include <algorithm>

namespace topl {

ComponentLabels ConnectedComponents(const Graph& g) {
  const std::size_t n = g.NumVertices();
  ComponentLabels out;
  out.label.assign(n, kUnreachedDistance);
  std::vector<VertexId> stack;
  for (VertexId root = 0; root < n; ++root) {
    if (out.label[root] != kUnreachedDistance) continue;
    const auto comp = static_cast<std::uint32_t>(out.num_components++);
    out.label[root] = comp;
    stack.push_back(root);
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      for (const Graph::Arc& arc : g.Neighbors(u)) {
        if (out.label[arc.to] == kUnreachedDistance) {
          out.label[arc.to] = comp;
          stack.push_back(arc.to);
        }
      }
    }
  }
  return out;
}

bool IsConnected(const Graph& g) {
  if (g.NumVertices() == 0) return true;
  return ConnectedComponents(g).num_components == 1;
}

std::vector<VertexId> LargestComponent(const Graph& g) {
  const ComponentLabels labels = ConnectedComponents(g);
  std::vector<std::size_t> sizes(labels.num_components, 0);
  for (std::uint32_t c : labels.label) ++sizes[c];
  const std::size_t best = static_cast<std::size_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
  std::vector<VertexId> out;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (labels.label[v] == best) out.push_back(v);
  }
  return out;
}

}  // namespace topl

#include "graph/delta_io.h"

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

namespace topl {

namespace {

Status ParseError(const std::string& path, std::size_t line_no,
                  const std::string& what) {
  return Status::InvalidArgument(path + ":" + std::to_string(line_no) + ": " +
                                 what);
}

/// Ids parse as uint64 so oversized values are caught here instead of
/// silently wrapping into some other vertex/keyword's 32-bit id.
bool FitsId(std::uint64_t value) {
  return value <= std::numeric_limits<std::uint32_t>::max();
}

}  // namespace

Result<GraphDelta> ReadGraphDeltaText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open delta file: " + path);

  GraphDelta delta;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string op;
    if (!(tokens >> op)) continue;  // blank / comment-only line

    if (op == "e-" || op == "e+") {
      std::uint64_t u = 0;
      std::uint64_t v = 0;
      if (!(tokens >> u >> v)) {
        return ParseError(path, line_no, "'" + op + "' needs two vertex ids");
      }
      if (!FitsId(u) || !FitsId(v)) {
        return ParseError(path, line_no, "vertex id exceeds 32 bits");
      }
      if (op == "e-") {
        delta.DeleteEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
      } else {
        double prob_uv = 0.0;
        if (!(tokens >> prob_uv)) {
          return ParseError(path, line_no, "'e+' needs a probability");
        }
        double prob_vu = prob_uv;
        if (!(tokens >> prob_vu)) {
          // Optional field: fall back to the symmetric probability, but
          // clear the failbit so a non-numeric token is still caught by the
          // trailing-token check below instead of being swallowed.
          prob_vu = prob_uv;
          tokens.clear();
        }
        delta.InsertEdge(static_cast<VertexId>(u), static_cast<VertexId>(v),
                         prob_uv, prob_vu);
      }
    } else if (op == "w-" || op == "w+") {
      std::uint64_t v = 0;
      std::uint64_t w = 0;
      if (!(tokens >> v >> w)) {
        return ParseError(path, line_no,
                          "'" + op + "' needs a vertex id and a keyword id");
      }
      if (!FitsId(v) || !FitsId(w)) {
        return ParseError(path, line_no, "vertex/keyword id exceeds 32 bits");
      }
      if (op == "w-") {
        delta.RemoveKeyword(static_cast<VertexId>(v), static_cast<KeywordId>(w));
      } else {
        delta.AddKeyword(static_cast<VertexId>(v), static_cast<KeywordId>(w));
      }
    } else {
      return ParseError(path, line_no, "unknown operation '" + op +
                                           "' (expected e+, e-, w+ or w-)");
    }
    std::string trailing;
    if (tokens >> trailing) {
      return ParseError(path, line_no, "trailing token '" + trailing + "'");
    }
  }
  return delta;
}

Status WriteGraphDeltaText(const GraphDelta& delta, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot write delta file: " + path);
  for (const GraphDelta::EdgeRef& e : delta.edge_deletes) {
    out << "e- " << e.u << " " << e.v << "\n";
  }
  for (const GraphDelta::EdgeInsert& e : delta.edge_inserts) {
    out << "e+ " << e.u << " " << e.v << " " << e.prob_uv << " " << e.prob_vu
        << "\n";
  }
  for (const GraphDelta::KeywordChange& c : delta.keyword_removes) {
    out << "w- " << c.v << " " << c.w << "\n";
  }
  for (const GraphDelta::KeywordChange& c : delta.keyword_adds) {
    out << "w+ " << c.v << " " << c.w << "\n";
  }
  if (!out.good()) return Status::IOError("short write to delta file: " + path);
  return Status::OK();
}

}  // namespace topl

#include "graph/reorder.h"

#include <algorithm>
#include <cstdint>
#include <deque>

#include "graph/graph_builder.h"

namespace topl {

std::vector<VertexId> ComputeLocalityOrder(const Graph& g) {
  const std::size_t n = g.NumVertices();
  std::vector<VertexId> order;
  order.reserve(n);

  // Hubs first: high-degree vertices are on nearly every ball, so packing
  // them (and each other's neighborhoods) at the front of the id space keeps
  // the hottest CSR rows on a handful of shared pages.
  std::vector<VertexId> seeds(n);
  for (std::size_t v = 0; v < n; ++v) seeds[v] = static_cast<VertexId>(v);
  std::sort(seeds.begin(), seeds.end(), [&g](VertexId a, VertexId b) {
    const std::size_t da = g.Degree(a), db = g.Degree(b);
    if (da != db) return da > db;
    return a < b;
  });

  std::vector<bool> visited(n, false);
  std::deque<VertexId> queue;
  std::vector<VertexId> frontier;
  for (VertexId seed : seeds) {
    if (visited[seed]) continue;
    visited[seed] = true;
    queue.push_back(seed);
    while (!queue.empty()) {
      const VertexId v = queue.front();
      queue.pop_front();
      order.push_back(v);
      frontier.clear();
      for (const Graph::Arc& arc : g.Neighbors(v)) {
        if (!visited[arc.to]) {
          visited[arc.to] = true;
          frontier.push_back(arc.to);
        }
      }
      // Expand high-degree neighbors first so the next BFS ring clusters
      // around them; (degree desc, id asc) keeps the order deterministic.
      std::sort(frontier.begin(), frontier.end(),
                [&g](VertexId a, VertexId b) {
                  const std::size_t da = g.Degree(a), db = g.Degree(b);
                  if (da != db) return da > db;
                  return a < b;
                });
      for (VertexId u : frontier) queue.push_back(u);
    }
  }
  return order;
}

Result<ReorderedGraph> ApplyVertexOrder(const Graph& g,
                                        std::vector<VertexId> new_to_old) {
  const std::size_t n = g.NumVertices();
  if (new_to_old.size() != n) {
    return Status::InvalidArgument(
        "vertex order length does not match the graph");
  }
  std::vector<VertexId> old_to_new(n, kInvalidVertex);
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId old = new_to_old[i];
    if (old >= n || old_to_new[old] != kInvalidVertex) {
      return Status::InvalidArgument("vertex order is not a permutation");
    }
    old_to_new[old] = static_cast<VertexId>(i);
  }

  // Recover both directional probabilities of every undirected edge from the
  // arc array in one pass (arc.prob is p(source → target)).
  const std::size_t m = g.NumEdges();
  std::vector<float> prob_uv(m), prob_vu(m);
  for (std::size_t v = 0; v < n; ++v) {
    for (const Graph::Arc& arc : g.Neighbors(static_cast<VertexId>(v))) {
      if (g.EdgeSource(arc.edge) == static_cast<VertexId>(v)) {
        prob_uv[arc.edge] = arc.prob;  // arc u → v of edge {u, v}
      } else {
        prob_vu[arc.edge] = arc.prob;  // arc v → u
      }
    }
  }

  GraphBuilder builder(n);
  for (std::size_t e = 0; e < m; ++e) {
    const VertexId u = g.EdgeSource(static_cast<EdgeId>(e));
    const VertexId v = g.EdgeTarget(static_cast<EdgeId>(e));
    builder.AddEdge(old_to_new[u], old_to_new[v], prob_uv[e], prob_vu[e]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (KeywordId w : g.Keywords(new_to_old[i])) {
      builder.AddKeyword(static_cast<VertexId>(i), w);
    }
  }
  Result<Graph> rebuilt = std::move(builder).Build();
  if (!rebuilt.ok()) return rebuilt.status();
  return ReorderedGraph{std::move(rebuilt).value(), std::move(new_to_old)};
}

Result<ReorderedGraph> ReorderForLocality(const Graph& g) {
  return ApplyVertexOrder(g, ComputeLocalityOrder(g));
}

}  // namespace topl

#include "graph/bfs.h"

#include <deque>

#include "common/check.h"

namespace topl {

std::vector<std::uint32_t> BfsDistances(const Graph& g, VertexId source,
                                        std::uint32_t max_dist) {
  TOPL_CHECK(source < g.NumVertices(), "BfsDistances: source out of range");
  std::vector<std::uint32_t> dist(g.NumVertices(), kUnreachedDistance);
  std::vector<VertexId> frontier = {source};
  dist[source] = 0;
  std::uint32_t level = 0;
  std::vector<VertexId> next;
  while (!frontier.empty() && level < max_dist) {
    next.clear();
    for (VertexId u : frontier) {
      for (const Graph::Arc& arc : g.Neighbors(u)) {
        if (dist[arc.to] == kUnreachedDistance) {
          dist[arc.to] = level + 1;
          next.push_back(arc.to);
        }
      }
    }
    frontier.swap(next);
    ++level;
  }
  return dist;
}

std::size_t CountWithinRadius(const Graph& g, VertexId source, std::uint32_t radius) {
  const auto dist = BfsDistances(g, source, radius);
  std::size_t count = 0;
  for (std::uint32_t d : dist) {
    if (d != kUnreachedDistance) ++count;
  }
  return count;
}

}  // namespace topl

#ifndef TOPL_GRAPH_GRAPH_H_
#define TOPL_GRAPH_GRAPH_H_

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.h"

namespace topl {

/// \brief Immutable attributed social network in CSR form (Definition 1).
///
/// The structure is undirected: every undirected edge {u, v} appears as two
/// CSR arcs (u→v and v→u) with sorted neighbor lists. Influence propagation
/// is directional, so each arc carries its own activation probability
/// p(u→v) — the probability that u activates v under the MIA model. The two
/// arcs of an undirected edge share one dense EdgeId, which truss algorithms
/// use to address per-edge state (support, trussness).
///
/// Per-vertex keyword sets (v.W in the paper) are stored as a CSR of sorted
/// KeywordIds.
///
/// Instances are created by GraphBuilder (or the I/O readers / generators)
/// and are immutable afterwards, which makes them safe to share across the
/// precompute thread pool without locks.
class Graph {
 public:
  /// An outgoing arc: target vertex, activation probability p(source→target),
  /// and the undirected EdgeId shared with the reverse arc.
  struct Arc {
    VertexId to;
    float prob;
    EdgeId edge;
  };

  Graph() = default;

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  /// Number of vertices n = |V(G)|.
  std::size_t NumVertices() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }

  /// Number of undirected edges m = |E(G)|.
  std::size_t NumEdges() const { return num_edges_; }

  /// Degree of v in the undirected structure.
  std::size_t Degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

  /// Outgoing arcs of v, sorted by target id.
  std::span<const Arc> Neighbors(VertexId v) const {
    return {arcs_.data() + offsets_[v], arcs_.data() + offsets_[v + 1]};
  }

  /// True iff the undirected edge {u, v} exists (binary search, O(log deg)).
  bool HasEdge(VertexId u, VertexId v) const;

  /// EdgeId of {u, v}, or kInvalidEdge if absent.
  EdgeId FindEdge(VertexId u, VertexId v) const;

  /// The two endpoints of undirected edge e (u < v).
  VertexId EdgeSource(EdgeId e) const { return edge_endpoints_[e].first; }
  VertexId EdgeTarget(EdgeId e) const { return edge_endpoints_[e].second; }

  /// Keyword set of v (sorted ascending).
  std::span<const KeywordId> Keywords(VertexId v) const {
    return {keywords_.data() + keyword_offsets_[v],
            keywords_.data() + keyword_offsets_[v + 1]};
  }

  /// True iff keyword w ∈ v.W (binary search).
  bool HasKeyword(VertexId v, KeywordId w) const;

  /// Number of distinct keyword ids referenced by any vertex; equivalently an
  /// exclusive upper bound on stored KeywordIds. 0 for keyword-less graphs.
  KeywordId KeywordDomainBound() const { return keyword_domain_bound_; }

  /// Sum of |v.W| over all vertices.
  std::size_t TotalKeywordCount() const { return keywords_.size(); }

 private:
  friend class GraphBuilder;

  std::vector<std::size_t> offsets_;  // size n+1
  std::vector<Arc> arcs_;             // size 2m, sorted per vertex
  std::vector<std::pair<VertexId, VertexId>> edge_endpoints_;  // size m
  std::size_t num_edges_ = 0;

  std::vector<std::size_t> keyword_offsets_;  // size n+1
  std::vector<KeywordId> keywords_;           // flat sorted-per-vertex sets
  KeywordId keyword_domain_bound_ = 0;
};

}  // namespace topl

#endif  // TOPL_GRAPH_GRAPH_H_

#ifndef TOPL_GRAPH_GRAPH_H_
#define TOPL_GRAPH_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "common/check.h"
#include "graph/types.h"

namespace topl {

class MappedFile;

/// \brief Immutable attributed social network in CSR form (Definition 1).
///
/// The structure is undirected: every undirected edge {u, v} appears as two
/// CSR arcs (u→v and v→u) with sorted neighbor lists. Influence propagation
/// is directional, so each arc carries its own activation probability
/// p(u→v) — the probability that u activates v under the MIA model. The two
/// arcs of an undirected edge share one dense EdgeId, which truss algorithms
/// use to address per-edge state (support, trussness).
///
/// Per-vertex keyword sets (v.W in the paper) are stored as a CSR of sorted
/// KeywordIds.
///
/// All flat arrays are accessed through std::span views. The backing is
/// either owned heap memory (instances assembled by GraphBuilder, the I/O
/// readers or the generators) or a read-only mmap of a TOPLIDX2 artifact
/// (instances opened by ArtifactReader) — query code cannot tell the two
/// apart. Instances are immutable after construction, which makes them safe
/// to share across the precompute thread pool without locks.
class Graph {
 public:
  /// An outgoing arc: target vertex, activation probability p(source→target),
  /// and the undirected EdgeId shared with the reverse arc.
  struct Arc {
    VertexId to;
    float prob;
    EdgeId edge;
  };

  /// The two endpoints of an undirected edge, u < v. POD (rather than
  /// std::pair) so the endpoint array has a guaranteed flat layout and can
  /// be mapped straight off disk.
  struct EdgeEndpoints {
    VertexId u;
    VertexId v;
  };

  Graph() = default;

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  // Moving the owned vectors keeps their heap buffers (and thus the spans
  // into them) valid, so default member-wise moves are correct.
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  /// Number of vertices n = |V(G)|.
  std::size_t NumVertices() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }

  /// Number of undirected edges m = |E(G)|.
  std::size_t NumEdges() const { return edge_endpoints_.size(); }

  /// Degree of v in the undirected structure.
  std::size_t Degree(VertexId v) const {
    TOPL_DCHECK(v < NumVertices(), "Graph::Degree: vertex id out of range");
    return offsets_[v + 1] - offsets_[v];
  }

  /// Outgoing arcs of v, sorted by target id.
  std::span<const Arc> Neighbors(VertexId v) const {
    TOPL_DCHECK(v < NumVertices(), "Graph::Neighbors: vertex id out of range");
    return arcs_.subspan(offsets_[v], offsets_[v + 1] - offsets_[v]);
  }

  /// True iff the undirected edge {u, v} exists (binary search, O(log deg)).
  bool HasEdge(VertexId u, VertexId v) const;

  /// EdgeId of {u, v}, or kInvalidEdge if absent.
  EdgeId FindEdge(VertexId u, VertexId v) const;

  /// The two endpoints of undirected edge e (u < v).
  VertexId EdgeSource(EdgeId e) const { return edge_endpoints_[e].u; }
  VertexId EdgeTarget(EdgeId e) const { return edge_endpoints_[e].v; }

  /// Keyword set of v (sorted ascending).
  std::span<const KeywordId> Keywords(VertexId v) const {
    TOPL_DCHECK(v < NumVertices(), "Graph::Keywords: vertex id out of range");
    return keywords_.subspan(keyword_offsets_[v],
                             keyword_offsets_[v + 1] - keyword_offsets_[v]);
  }

  /// True iff keyword w ∈ v.W (binary search).
  bool HasKeyword(VertexId v, KeywordId w) const;

  /// Number of distinct keyword ids referenced by any vertex; equivalently an
  /// exclusive upper bound on stored KeywordIds. 0 for keyword-less graphs.
  KeywordId KeywordDomainBound() const { return keyword_domain_bound_; }

  /// Sum of |v.W| over all vertices.
  std::size_t TotalKeywordCount() const { return keywords_.size(); }

  /// True when the graph is a zero-copy view of a mapped artifact.
  bool IsMapped() const { return backing_ != nullptr; }

  /// Deep copy into owned heap memory (a mapped instance is materialized).
  /// The copy is bit-identical to the source for every accessor, so indexes
  /// built over either serve byte-identical answers. Explicit — the copy
  /// constructor stays deleted so replication is always a visible decision
  /// (share-nothing shards clone their replica through this).
  Graph Clone() const {
    Graph copy;
    copy.owned_offsets_.assign(offsets_.begin(), offsets_.end());
    copy.owned_arcs_.assign(arcs_.begin(), arcs_.end());
    copy.owned_edge_endpoints_.assign(edge_endpoints_.begin(),
                                      edge_endpoints_.end());
    copy.owned_keyword_offsets_.assign(keyword_offsets_.begin(),
                                       keyword_offsets_.end());
    copy.owned_keywords_.assign(keywords_.begin(), keywords_.end());
    copy.keyword_domain_bound_ = keyword_domain_bound_;
    copy.BindOwned();
    return copy;
  }

 private:
  friend class GraphBuilder;
  friend class ArtifactWriter;
  friend class ArtifactReader;

  /// Points the view spans at the owned vectors (builder path).
  void BindOwned() {
    offsets_ = owned_offsets_;
    arcs_ = owned_arcs_;
    edge_endpoints_ = owned_edge_endpoints_;
    keyword_offsets_ = owned_keyword_offsets_;
    keywords_ = owned_keywords_;
  }

  // Views over the active backing. Always valid; never dangling because the
  // owned vectors move with the object and a mapped backing is refcounted.
  std::span<const std::uint64_t> offsets_;           // size n+1
  std::span<const Arc> arcs_;                        // size 2m, sorted per vertex
  std::span<const EdgeEndpoints> edge_endpoints_;    // size m
  std::span<const std::uint64_t> keyword_offsets_;   // size n+1
  std::span<const KeywordId> keywords_;              // flat sorted-per-vertex sets
  KeywordId keyword_domain_bound_ = 0;

  // Owned backing; empty when the graph is a view over `backing_`.
  std::vector<std::uint64_t> owned_offsets_;
  std::vector<Arc> owned_arcs_;
  std::vector<EdgeEndpoints> owned_edge_endpoints_;
  std::vector<std::uint64_t> owned_keyword_offsets_;
  std::vector<KeywordId> owned_keywords_;

  // Keeps the mmap alive for artifact-backed instances.
  std::shared_ptr<const MappedFile> backing_;
};

// The arc and endpoint arrays are stored verbatim in the TOPLIDX2 artifact.
static_assert(std::is_trivially_copyable_v<Graph::Arc> &&
                  sizeof(Graph::Arc) == 12,
              "Graph::Arc is part of the on-disk artifact format");
static_assert(std::is_trivially_copyable_v<Graph::EdgeEndpoints> &&
                  sizeof(Graph::EdgeEndpoints) == 8,
              "Graph::EdgeEndpoints is part of the on-disk artifact format");

}  // namespace topl

#endif  // TOPL_GRAPH_GRAPH_H_

#ifndef TOPL_GRAPH_CONNECTIVITY_H_
#define TOPL_GRAPH_CONNECTIVITY_H_

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace topl {

/// \brief Component label per vertex (labels are dense in [0, #components)).
struct ComponentLabels {
  std::vector<std::uint32_t> label;  // per vertex
  std::size_t num_components = 0;
};

/// Computes connected components of the undirected structure via BFS.
ComponentLabels ConnectedComponents(const Graph& g);

/// True iff the graph is connected (Definition 1 requires a connected
/// social network; the loaders use this to decide whether to warn / restrict
/// to the largest component).
bool IsConnected(const Graph& g);

/// Vertices of the largest connected component, sorted ascending.
std::vector<VertexId> LargestComponent(const Graph& g);

}  // namespace topl

#endif  // TOPL_GRAPH_CONNECTIVITY_H_

#include "graph/binary_io.h"

#include <cstring>
#include <fstream>
#include <vector>

#include "graph/graph_builder.h"

namespace topl {

namespace {

constexpr char kMagic[8] = {'T', 'O', 'P', 'L', 'G', 'R', 'F', '1'};

// Thin typed wrappers around stream I/O. The library targets little-endian
// hosts (checked nowhere at runtime: both CI and the paper's testbed are
// x86-64); the magic doubles as a byte-order canary since a big-endian
// reader would fail the magic comparison on the sizes that follow.
template <typename T>
void PutRaw(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool GetRaw(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status WriteGraphBinary(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);

  out.write(kMagic, sizeof(kMagic));
  PutRaw<std::uint64_t>(out, g.NumVertices());
  PutRaw<std::uint64_t>(out, g.NumEdges());
  PutRaw<std::uint64_t>(out, g.TotalKeywordCount());

  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const VertexId u = g.EdgeSource(e);
    const VertexId v = g.EdgeTarget(e);
    // Recover the directional probabilities from u's arc list.
    float p_uv = 0.0f;
    float p_vu = 0.0f;
    for (const Graph::Arc& arc : g.Neighbors(u)) {
      if (arc.to == v) {
        p_uv = arc.prob;
        break;
      }
    }
    for (const Graph::Arc& arc : g.Neighbors(v)) {
      if (arc.to == u) {
        p_vu = arc.prob;
        break;
      }
    }
    PutRaw<std::uint32_t>(out, u);
    PutRaw<std::uint32_t>(out, v);
    PutRaw<float>(out, p_uv);
    PutRaw<float>(out, p_vu);
  }

  std::uint64_t offset = 0;
  PutRaw<std::uint64_t>(out, offset);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    offset += g.Keywords(v).size();
    PutRaw<std::uint64_t>(out, offset);
  }
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (KeywordId w : g.Keywords(v)) PutRaw<std::uint32_t>(out, w);
  }

  out.flush();
  if (!out) return Status::IOError("write error on " + path);
  return Status::OK();
}

Result<GraphBinaryHeader> ReadGraphBinaryHeader(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption(path + ": bad magic");
  }
  GraphBinaryHeader header;
  if (!GetRaw(in, &header.num_vertices) || !GetRaw(in, &header.num_edges) ||
      !GetRaw(in, &header.total_keywords)) {
    return Status::Corruption(path + ": truncated header");
  }
  return header;
}

Result<Graph> ReadGraphBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  in.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);

  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption(path + ": bad magic");
  }

  std::uint64_t n = 0;
  std::uint64_t m = 0;
  std::uint64_t total_keywords = 0;
  if (!GetRaw(in, &n) || !GetRaw(in, &m) || !GetRaw(in, &total_keywords)) {
    return Status::Corruption(path + ": truncated header");
  }
  if (n > (1ULL << 32) || m > (1ULL << 32) || total_keywords > (1ULL << 34)) {
    return Status::Corruption(path + ": implausible sizes");
  }
  // Validate the advertised sizes against the actual file length *before*
  // sizing any allocation: a corrupted header must surface as a Status, not
  // as a gigabyte resize.
  const std::uint64_t expected =
      8 + 3 * 8 + m * 16 + (n + 1) * 8 + total_keywords * 4;
  if (file_size != expected) {
    return Status::Corruption(path + ": size mismatch (header advertises " +
                              std::to_string(expected) + " bytes, file has " +
                              std::to_string(file_size) + ")");
  }

  GraphBuilder builder(n);
  for (std::uint64_t e = 0; e < m; ++e) {
    std::uint32_t u = 0;
    std::uint32_t v = 0;
    float p_uv = 0.0f;
    float p_vu = 0.0f;
    if (!GetRaw(in, &u) || !GetRaw(in, &v) || !GetRaw(in, &p_uv) ||
        !GetRaw(in, &p_vu)) {
      return Status::Corruption(path + ": truncated edge section");
    }
    builder.AddEdge(u, v, p_uv, p_vu);
  }

  std::vector<std::uint64_t> offsets(n + 1);
  for (std::uint64_t i = 0; i <= n; ++i) {
    if (!GetRaw(in, &offsets[i])) {
      return Status::Corruption(path + ": truncated keyword offsets");
    }
  }
  if (offsets[0] != 0 || offsets[n] != total_keywords) {
    return Status::Corruption(path + ": inconsistent keyword offsets");
  }
  for (std::uint64_t v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      return Status::Corruption(path + ": non-monotonic keyword offsets");
    }
    for (std::uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      std::uint32_t w = 0;
      if (!GetRaw(in, &w)) {
        return Status::Corruption(path + ": truncated keyword section");
      }
      builder.AddKeyword(static_cast<VertexId>(v), w);
    }
  }
  return std::move(builder).Build();
}

}  // namespace topl

#ifndef TOPL_CACHE_QUERY_CACHE_H_
#define TOPL_CACHE_QUERY_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/community_result.h"
#include "core/dtopl_detector.h"
#include "core/query.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "index/precompute.h"

namespace topl {

/// \brief Canonicalized descriptor of one cacheable query.
///
/// Two queries that must produce byte-identical answers map to the same key:
/// keywords are sorted and deduplicated here (so permuted keyword lists hit
/// the same entry), theta is compared bit-exactly, and every switch that
/// selects a different execution (query kind, DTopL refinement algorithm and
/// pool factor, pruning toggles) is part of the key. Pruning toggles are
/// answer-preserving, but keying on them keeps the cache trivially correct
/// for ablation runs too.
struct CacheKey {
  enum class Kind : std::uint8_t { kTopL = 0, kDTopL = 1 };

  Kind kind = Kind::kTopL;
  /// Sorted ascending, deduplicated — canonical regardless of the order the
  /// caller listed them in.
  std::vector<KeywordId> keywords;
  std::uint32_t k = 0;
  std::uint32_t radius = 0;
  std::uint32_t top_l = 0;
  /// Bit pattern of Query::theta; bit equality keeps operator== consistent
  /// with Hash() (a plain double compare would merge +0.0/-0.0 but hash them
  /// apart).
  std::uint64_t theta_bits = 0;
  /// QueryOptions toggles, packed LSB-first in declaration order.
  std::uint8_t option_bits = 0;
  /// Bit pattern of QueryOptions::initial_threshold. A floor-seeded search
  /// (sharded fan-out) answers a different question than an unseeded one —
  /// it may omit communities below the seed — so the seed is a key
  /// dimension. Bit-exact for the same reason as theta_bits; the −∞ default
  /// gives unseeded queries one canonical pattern.
  std::uint64_t initial_threshold_bits = 0;

  // DTopL-only dimensions; zero for TopL keys.
  std::uint32_t n_factor = 0;
  std::uint8_t algorithm = 0;
  std::uint64_t max_optimal_subsets = 0;

  static CacheKey ForTopL(const Query& query, const QueryOptions& options);
  static CacheKey ForDTopL(const Query& query, const DTopLOptions& options);

  double theta() const;

  bool operator==(const CacheKey& other) const = default;
  std::uint64_t Hash() const;  // FNV-1a over every field
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const {
    return static_cast<std::size_t>(key.Hash());
  }
};

/// \brief Sharded, epoch-aware answer cache for TopL/DTopL results with
/// exact dirty-region invalidation and in-flight query deduplication.
///
/// Values are immutable results behind shared_ptr (hits hand out the pointer;
/// the engine copies into its Result return, so entries are never mutated).
/// Each entry remembers the set of centers its answer *depends on* — the
/// answer communities' centers for TopL, the full top-(nL) candidate-pool
/// centers for DTopL — plus the score floor a newcomer community would have
/// to clear (σ_L, or the pool's weakest σ).
///
/// Invalidation contract (OnUpdate): an entry survives an ApplyUpdate iff
/// the update provably cannot change its answer, i.e.
///   1. no dirty center is in the entry's touched-center set (every touched
///      center keeps byte-identical precompute rows, seed community, and
///      influence by PR 4's dirty-region contract), AND
///   2. no dirty center could *newly* enter the answer: every dirty center
///      fails at least one of the detector's own admission tests against the
///      new snapshot — keyword (ball-signature intersection + center keyword
///      membership), support (ball support ≥ k−2 and center trussness ≥ k),
///      or score (ScoreBound < the entry's floor, mirroring the detector's
///      strict-< pruning; only usable when the answer/pool is full and the
///      query's theta is on the precompute grid).
/// Surviving entries are rebased to the new epoch in place — an epoch bump
/// alone never flushes clean entries. Everything else is erased and counted
/// in `invalidated`.
///
/// Single-flight: concurrent lookups of one key coalesce onto the first
/// caller (the leader). Followers block until the leader publishes; flights
/// are epoch-stamped, so a flight started before an update is never joined
/// afterwards (a fresh leader replaces it; the old leader still wakes its
/// followers, exactly like queries that had already started pre-update).
///
/// Memory is bounded per shard by max_bytes / num_shards with LRU eviction;
/// entry sizes are close approximations (vectors' payloads + struct shells).
///
/// Thread safety: every method is safe to call from any thread. Lock order
/// is one shard mutex at a time, then (optionally) a flight mutex — no
/// nested shard locks, so the cache can never deadlock with itself.
class QueryCache {
 public:
  struct Config {
    std::size_t max_bytes = 64ull << 20;
    std::size_t num_shards = 16;
  };

  /// Cumulative counters, all monotone except entries/bytes (residency).
  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t invalidated = 0;
    std::uint64_t evicted = 0;
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
  };

  /// An immutable cached answer; exactly one pointer is set, matching the
  /// key's kind.
  struct CachedAnswer {
    std::shared_ptr<const TopLResult> topl;
    std::shared_ptr<const DTopLResult> dtopl;
  };

  /// One in-flight execution other callers of the same key can wait on.
  struct Flight {
    std::uint64_t epoch = 0;

    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool ok = false;
    CachedAnswer answer;
    Status status = Status::OK();
  };

  /// Exactly one of the three outcomes:
  ///  - hit: `answer` is set;
  ///  - leader: `flight` set, `leader` true — the caller must execute the
  ///    query and then call Fill* (success) or Abandon (failure);
  ///  - follower: `flight` set, `leader` false — the caller must Await it.
  struct LookupResult {
    bool hit = false;
    bool leader = false;
    CachedAnswer answer;
    std::shared_ptr<Flight> flight;
  };

  explicit QueryCache(const Config& config);

  LookupResult Lookup(const CacheKey& key);

  /// Publishes a successful execution to the flight's followers and, when
  /// `executed_epoch` still matches the cache epoch and the result is exact
  /// (not truncated), inserts it. The touched-center set and newcomer floor
  /// are derived from the result itself (see class comment).
  void FillTopL(const CacheKey& key, const std::shared_ptr<Flight>& flight,
                std::uint64_t executed_epoch,
                std::shared_ptr<const TopLResult> result);
  void FillDTopL(const CacheKey& key, const std::shared_ptr<Flight>& flight,
                 std::uint64_t executed_epoch,
                 std::shared_ptr<const DTopLResult> result);

  /// Publishes a failed execution: followers receive `status`, nothing is
  /// inserted.
  void Abandon(const CacheKey& key, const std::shared_ptr<Flight>& flight,
               Status status);

  /// Blocks until the flight's leader publishes; returns the shared answer
  /// or the leader's failure status.
  Result<CachedAnswer> Await(const std::shared_ptr<Flight>& flight);

  /// Installs `new_epoch` and runs exact invalidation against the new
  /// snapshot's graph/precompute (see class comment). Surviving entries are
  /// additionally rebased onto the new snapshot's edge numbering: edge
  /// mutations compact-renumber EdgeIds graph-wide, so a clean answer's
  /// *edge sets* are unchanged but their ids may shift — `old_graph` (the
  /// snapshot every resident entry was computed on) resolves each stored id
  /// to endpoints, which are then re-looked-up in `graph`. Must be called
  /// after the engine swaps in the new snapshot; concurrent calls must be
  /// externally serialized (the engine's single-writer update lock does).
  void OnUpdate(std::span<const VertexId> dirty_centers,
                const Graph& old_graph, const Graph& graph,
                const PrecomputedData& pre, std::uint64_t new_epoch);

  /// Whether this query's answer may be cached / served from cache at all.
  /// Excluded: theta below the precompute grid (the dirty-center set is
  /// computed at θ_min, so influence changes below it are invisible to
  /// invalidation) and radius beyond r_max (the detector rejects those).
  static bool Cacheable(const Query& query, const PrecomputedData& pre);

  Counters counters() const;
  std::uint64_t current_epoch() const {
    return current_epoch_.load(std::memory_order_acquire);
  }

 private:
  struct Entry {
    CacheKey key;
    CachedAnswer answer;
    /// Sorted centers the answer depends on (answer centers for TopL, the
    /// full candidate-pool centers for DTopL).
    std::vector<VertexId> touched;
    /// Score a newcomer community must reach to change the answer (σ_L /
    /// pool floor); only meaningful when `floor_valid`.
    double floor_score = 0.0;
    /// False when the answer/pool holds fewer than the requested L / nL
    /// communities — any new qualifying community then changes the answer.
    bool floor_valid = false;
    std::size_t bytes = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash> table;
    std::unordered_map<CacheKey, std::shared_ptr<Flight>, CacheKeyHash> flights;
    std::size_t bytes = 0;
  };

  Shard& ShardFor(const CacheKey& key) {
    return shards_[key.Hash() % shards_.size()];
  }

  /// Publishes to the flight and unregisters it from `shard` if it is still
  /// the registered flight for `key`. Caller holds shard.mu.
  void CompleteFlightLocked(Shard& shard, const CacheKey& key,
                            const std::shared_ptr<Flight>& flight, bool ok,
                            CachedAnswer answer, Status status);

  /// Inserts an already-built entry, evicting from the LRU tail while the
  /// shard exceeds its byte budget. Caller holds shard.mu.
  void InsertLocked(Shard& shard, Entry entry);

  void EraseLocked(Shard& shard, std::list<Entry>::iterator it);

  std::vector<Shard> shards_;
  std::size_t per_shard_budget_ = 0;
  std::atomic<std::uint64_t> current_epoch_{0};

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> invalidated_{0};
  std::atomic<std::uint64_t> evicted_{0};
  std::atomic<std::uint64_t> entries_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace topl

#endif  // TOPL_CACHE_QUERY_CACHE_H_

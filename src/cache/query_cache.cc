#include "cache/query_cache.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "graph/local_subgraph.h"
#include "keywords/bit_vector.h"

namespace topl {

namespace {

std::uint64_t Fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (byte * 8)) & 0xff;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t ThetaBits(double theta) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(theta));
  std::memcpy(&bits, &theta, sizeof(bits));
  return bits;
}

std::uint8_t PackOptions(const QueryOptions& options) {
  std::uint8_t bits = 0;
  if (options.use_keyword_pruning) bits |= 1u << 0;
  if (options.use_support_pruning) bits |= 1u << 1;
  if (options.use_score_pruning) bits |= 1u << 2;
  if (options.use_center_truss_bound) bits |= 1u << 3;
  if (options.use_reference_extraction) bits |= 1u << 4;
  return bits;
}

std::vector<KeywordId> Canonicalize(std::vector<KeywordId> keywords) {
  std::sort(keywords.begin(), keywords.end());
  keywords.erase(std::unique(keywords.begin(), keywords.end()), keywords.end());
  return keywords;
}

std::size_t CommunityBytes(const CommunityResult& c) {
  return sizeof(CommunityResult) +
         c.community.vertices.size() * sizeof(VertexId) +
         c.community.edges.size() * sizeof(EdgeId) +
         c.influence.vertices.size() * sizeof(VertexId) +
         c.influence.cpp.size() * sizeof(double);
}

std::size_t ResultBytes(const TopLResult& r) {
  std::size_t bytes = sizeof(TopLResult);
  for (const CommunityResult& c : r.communities) bytes += CommunityBytes(c);
  return bytes;
}

std::size_t ResultBytes(const DTopLResult& r) {
  std::size_t bytes = sizeof(DTopLResult);
  for (const CommunityResult& c : r.communities) bytes += CommunityBytes(c);
  bytes += r.pool_centers.size() * sizeof(VertexId);
  return bytes;
}

/// True iff every EdgeId stored in `communities` still denotes the same
/// endpoints in `now` as it did in `old_g` — i.e. the update's edge
/// renumbering did not move this answer's edges.
bool EdgeIdsStable(const std::vector<CommunityResult>& communities,
                   const Graph& old_g, const Graph& now) {
  for (const CommunityResult& c : communities) {
    for (EdgeId e : c.community.edges) {
      if (e >= now.NumEdges() || now.EdgeSource(e) != old_g.EdgeSource(e) ||
          now.EdgeTarget(e) != old_g.EdgeTarget(e)) {
        return false;
      }
    }
  }
  return true;
}

/// Rewrites every stored EdgeId to its id in `now`, resolving through the
/// old endpoints. Returns false if an edge no longer exists (cannot happen
/// for a provably clean entry; callers invalidate defensively). Surviving
/// base edges keep their relative order under ApplyDelta's compact
/// renumbering, so remapping never reorders an edge list.
bool RemapEdgeIds(const Graph& old_g, const Graph& now,
                  std::vector<CommunityResult>* communities) {
  for (CommunityResult& c : *communities) {
    for (EdgeId& e : c.community.edges) {
      const EdgeId mapped = now.FindEdge(old_g.EdgeSource(e), old_g.EdgeTarget(e));
      if (mapped == kInvalidEdge) return false;
      e = mapped;
    }
  }
  return true;
}

bool SortedIntersect(std::span<const VertexId> a, std::span<const VertexId> b) {
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

CacheKey CacheKey::ForTopL(const Query& query, const QueryOptions& options) {
  CacheKey key;
  key.kind = Kind::kTopL;
  key.keywords = Canonicalize(query.keywords);
  key.k = query.k;
  key.radius = query.radius;
  key.top_l = query.top_l;
  key.theta_bits = ThetaBits(query.theta);
  key.option_bits = PackOptions(options);
  key.initial_threshold_bits = ThetaBits(options.initial_threshold);
  return key;
}

CacheKey CacheKey::ForDTopL(const Query& query, const DTopLOptions& options) {
  CacheKey key;
  key.kind = Kind::kDTopL;
  key.keywords = Canonicalize(query.keywords);
  key.k = query.k;
  key.radius = query.radius;
  key.top_l = query.top_l;
  key.theta_bits = ThetaBits(query.theta);
  key.option_bits = PackOptions(options.topl_options);
  key.initial_threshold_bits = ThetaBits(options.topl_options.initial_threshold);
  key.n_factor = options.n_factor;
  key.algorithm = static_cast<std::uint8_t>(options.algorithm);
  key.max_optimal_subsets = options.max_optimal_subsets;
  return key;
}

double CacheKey::theta() const {
  double theta;
  std::memcpy(&theta, &theta_bits, sizeof(theta));
  return theta;
}

std::uint64_t CacheKey::Hash() const {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV offset basis
  hash = Fnv1a(hash, static_cast<std::uint64_t>(kind));
  hash = Fnv1a(hash, keywords.size());
  for (KeywordId w : keywords) hash = Fnv1a(hash, w);
  hash = Fnv1a(hash, k);
  hash = Fnv1a(hash, radius);
  hash = Fnv1a(hash, top_l);
  hash = Fnv1a(hash, theta_bits);
  hash = Fnv1a(hash, option_bits);
  hash = Fnv1a(hash, initial_threshold_bits);
  hash = Fnv1a(hash, n_factor);
  hash = Fnv1a(hash, algorithm);
  hash = Fnv1a(hash, max_optimal_subsets);
  return hash;
}

QueryCache::QueryCache(const Config& config)
    : shards_(std::max<std::size_t>(1, config.num_shards)) {
  per_shard_budget_ = std::max<std::size_t>(1, config.max_bytes / shards_.size());
}

bool QueryCache::Cacheable(const Query& query, const PrecomputedData& pre) {
  // Influence below the precompute grid's θ_min is outside the dirty-region
  // contract: a clean center's gInf can change through a path whose prefix
  // probability sits under θ_min, which the reverse-Dijkstra dirty expansion
  // never sees. Such queries run uncached.
  if (pre.num_thetas() == 0 || query.theta < pre.thetas().front()) return false;
  // Radius beyond r_max is rejected by the detector; never enters the cache.
  if (query.radius > pre.r_max()) return false;
  return true;
}

QueryCache::LookupResult QueryCache::Lookup(const CacheKey& key) {
  Shard& shard = ShardFor(key);
  LookupResult out;
  std::lock_guard<std::mutex> lock(shard.mu);

  auto found = shard.table.find(key);
  if (found != shard.table.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, found->second);
    out.hit = true;
    out.answer = found->second->answer;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return out;
  }

  const std::uint64_t epoch = current_epoch_.load(std::memory_order_acquire);
  auto flight_it = shard.flights.find(key);
  if (flight_it != shard.flights.end() && flight_it->second->epoch == epoch) {
    out.flight = flight_it->second;
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    return out;
  }

  // No joinable flight (none, or one stranded from a pre-update epoch —
  // its leader still wakes its own followers, but new callers must not
  // share a possibly stale answer). Lead a fresh one.
  auto flight = std::make_shared<Flight>();
  flight->epoch = epoch;
  shard.flights[key] = flight;
  out.flight = std::move(flight);
  out.leader = true;
  misses_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

void QueryCache::CompleteFlightLocked(Shard& shard, const CacheKey& key,
                                      const std::shared_ptr<Flight>& flight,
                                      bool ok, CachedAnswer answer,
                                      Status status) {
  auto it = shard.flights.find(key);
  if (it != shard.flights.end() && it->second == flight) {
    shard.flights.erase(it);
  }
  {
    std::lock_guard<std::mutex> flight_lock(flight->mu);
    flight->done = true;
    flight->ok = ok;
    flight->answer = std::move(answer);
    flight->status = std::move(status);
  }
  flight->cv.notify_all();
}

void QueryCache::EraseLocked(Shard& shard, std::list<Entry>::iterator it) {
  shard.bytes -= it->bytes;
  bytes_.fetch_sub(it->bytes, std::memory_order_relaxed);
  entries_.fetch_sub(1, std::memory_order_relaxed);
  shard.table.erase(it->key);
  shard.lru.erase(it);
}

void QueryCache::InsertLocked(Shard& shard, Entry entry) {
  const std::size_t bytes = entry.bytes;
  shard.lru.push_front(std::move(entry));
  shard.table[shard.lru.front().key] = shard.lru.begin();
  shard.bytes += bytes;
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
  while (shard.bytes > per_shard_budget_ && shard.lru.size() > 1) {
    EraseLocked(shard, std::prev(shard.lru.end()));
    evicted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void QueryCache::FillTopL(const CacheKey& key,
                          const std::shared_ptr<Flight>& flight,
                          std::uint64_t executed_epoch,
                          std::shared_ptr<const TopLResult> result) {
  Entry entry;
  entry.key = key;
  entry.answer.topl = result;
  entry.touched.reserve(result->communities.size());
  for (const CommunityResult& c : result->communities) {
    entry.touched.push_back(c.community.center);
  }
  std::sort(entry.touched.begin(), entry.touched.end());
  entry.floor_valid = result->communities.size() >= key.top_l;
  entry.floor_score =
      entry.floor_valid ? result->communities.back().score() : 0.0;
  entry.bytes = sizeof(Entry) + ResultBytes(*result) +
                key.keywords.size() * sizeof(KeywordId) +
                entry.touched.size() * sizeof(VertexId);

  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  CachedAnswer answer;
  answer.topl = std::move(result);
  const bool exact = !answer.topl->truncated;
  CompleteFlightLocked(shard, key, flight, /*ok=*/true, answer, Status::OK());
  if (exact &&
      executed_epoch == current_epoch_.load(std::memory_order_acquire) &&
      shard.table.find(key) == shard.table.end()) {
    InsertLocked(shard, std::move(entry));
  }
}

void QueryCache::FillDTopL(const CacheKey& key,
                           const std::shared_ptr<Flight>& flight,
                           std::uint64_t executed_epoch,
                           std::shared_ptr<const DTopLResult> result) {
  Entry entry;
  entry.key = key;
  entry.answer.dtopl = result;
  // The diversified answer is a deterministic function of the candidate
  // pool, so the dependence set is the *pool's* centers and the newcomer
  // floor is the pool's weakest σ — not the selected L communities'.
  entry.touched = result->pool_centers;
  std::sort(entry.touched.begin(), entry.touched.end());
  entry.floor_valid = result->pool_full;
  entry.floor_score = result->pool_floor;
  entry.bytes = sizeof(Entry) + ResultBytes(*result) +
                key.keywords.size() * sizeof(KeywordId) +
                entry.touched.size() * sizeof(VertexId);

  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  CachedAnswer answer;
  answer.dtopl = std::move(result);
  const bool exact = !answer.dtopl->truncated;
  CompleteFlightLocked(shard, key, flight, /*ok=*/true, answer, Status::OK());
  if (exact &&
      executed_epoch == current_epoch_.load(std::memory_order_acquire) &&
      shard.table.find(key) == shard.table.end()) {
    InsertLocked(shard, std::move(entry));
  }
}

void QueryCache::Abandon(const CacheKey& key,
                         const std::shared_ptr<Flight>& flight, Status status) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  CompleteFlightLocked(shard, key, flight, /*ok=*/false, CachedAnswer{},
                       std::move(status));
}

Result<QueryCache::CachedAnswer> QueryCache::Await(
    const std::shared_ptr<Flight>& flight) {
  std::unique_lock<std::mutex> lock(flight->mu);
  flight->cv.wait(lock, [&] { return flight->done; });
  if (!flight->ok) return flight->status;
  return flight->answer;
}

void QueryCache::OnUpdate(std::span<const VertexId> dirty_centers,
                          const Graph& old_graph, const Graph& graph,
                          const PrecomputedData& pre,
                          std::uint64_t new_epoch) {
  // Publish the epoch first: fills of results computed on the superseded
  // snapshot race this scan, and the epoch check in Fill* rejects exactly
  // the ones that would otherwise slip in behind it.
  current_epoch_.store(new_epoch, std::memory_order_release);

  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      auto next = std::next(it);
      bool exact = !SortedIntersect(it->touched, dirty_centers);
      if (exact && it->key.radius <= pre.r_max()) {
        // Newcomer check: a dirty center outside the answer can only change
        // it by *entering*, which requires surviving the detector's own
        // admission tests against the new snapshot. Mirror them exactly
        // (including the strict-< score comparison).
        const std::uint32_t r = it->key.radius;
        const std::uint32_t required_support =
            it->key.k >= 2 ? it->key.k - 2 : 0;
        const int z = pre.ThresholdIndex(it->key.theta());
        const BitVector query_bv =
            BitVector::FromKeywords(it->key.keywords, pre.signature_bits());
        for (VertexId d : dirty_centers) {
          if (!pre.SignatureIntersects(d, r, query_bv) ||
              !HopExtractor::HasAnyKeyword(graph, d, it->key.keywords)) {
            continue;  // Lemma 1/5: no qualifying community at d
          }
          if (pre.SupportBound(d, r) < required_support ||
              pre.CenterTrussBound(d) < it->key.k) {
            continue;  // Lemma 2/6: no k-truss seed community at d
          }
          if (it->floor_valid && z >= 0 &&
              pre.ScoreBound(d, r, static_cast<std::uint32_t>(z)) <
                  it->floor_score) {
            continue;  // Lemma 4/7: cannot reach the answer's score floor
          }
          exact = false;  // d may newly enter; the answer could change
          break;
        }
      } else {
        exact = false;
      }
      if (exact) {
        // Surviving entries are provably unchanged *as edge sets*, but edge
        // deltas compact-renumber EdgeIds graph-wide, so the stored ids may
        // now point at different edges. Rebase them onto the new numbering
        // (via the old endpoints); publish the remapped result as a fresh
        // immutable object so hits handed out before the swap stay
        // consistent with the snapshot they were served against.
        if (it->answer.topl != nullptr &&
            !EdgeIdsStable(it->answer.topl->communities, old_graph, graph)) {
          auto remapped = std::make_shared<TopLResult>(*it->answer.topl);
          if (RemapEdgeIds(old_graph, graph, &remapped->communities)) {
            it->answer.topl = std::move(remapped);
          } else {
            exact = false;  // defensive: a clean entry never loses an edge
          }
        } else if (it->answer.dtopl != nullptr &&
                   !EdgeIdsStable(it->answer.dtopl->communities, old_graph,
                                  graph)) {
          auto remapped = std::make_shared<DTopLResult>(*it->answer.dtopl);
          if (RemapEdgeIds(old_graph, graph, &remapped->communities)) {
            it->answer.dtopl = std::move(remapped);
          } else {
            exact = false;
          }
        }
      }
      if (!exact) {
        EraseLocked(shard, it);
        invalidated_.fetch_add(1, std::memory_order_relaxed);
      }
      // Surviving entries are provably unchanged and rebase to the new
      // epoch in place — the bump alone never flushes clean entries.
      it = next;
    }
  }
}

QueryCache::Counters QueryCache::counters() const {
  Counters out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.coalesced = coalesced_.load(std::memory_order_relaxed);
  out.invalidated = invalidated_.load(std::memory_order_relaxed);
  out.evicted = evicted_.load(std::memory_order_relaxed);
  out.entries = entries_.load(std::memory_order_relaxed);
  out.bytes = bytes_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace topl

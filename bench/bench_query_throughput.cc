// Concurrent query throughput (not a paper figure): the online phase is
// read-only over Graph + PrecomputedData + TreeIndex, so a server answers
// TopL-ICDE queries from per-thread detectors with zero synchronization.
// This bench measures aggregate queries/second as worker threads scale,
// with each worker cycling through distinct keyword sets.

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <thread>

#include "bench/bench_common.h"

namespace {

using namespace topl;         // NOLINT(build/namespaces)
using namespace topl::bench;  // NOLINT(build/namespaces)

void BM_ConcurrentQueries(benchmark::State& state) {
  DatasetConfig config;
  config.kind = DatasetKind::kUni;
  config.num_vertices = DefaultVertices();
  const Workload& w = GetWorkload(config);
  const std::size_t num_threads = static_cast<std::size_t>(state.range(0));
  const std::size_t queries_per_round = 32;

  // Distinct query keyword sets, cycled by the workers.
  std::vector<Query> queries;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Query q;
    q.keywords = MakeQueryKeywordsFromGraph(w.graph, 5, seed);
    q.k = 4;
    q.radius = 2;
    q.theta = 0.2;
    q.top_l = 5;
    queries.push_back(std::move(q));
  }

  // One long-lived detector per worker, as a query server would hold them;
  // construction (O(n) scratch) stays out of the timed region.
  std::vector<std::unique_ptr<TopLDetector>> detectors;
  for (std::size_t t = 0; t < num_threads; ++t) {
    detectors.push_back(std::make_unique<TopLDetector>(w.graph, *w.pre, w.tree));
  }

  std::uint64_t answered = 0;
  for (auto _ : state) {
    std::atomic<std::size_t> next{0};
    auto worker = [&](std::size_t worker_id) {
      TopLDetector& detector = *detectors[worker_id];
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= queries_per_round) return;
        Result<TopLResult> result = detector.Search(queries[i % queries.size()]);
        TOPL_CHECK(result.ok(), result.status().ToString().c_str());
        benchmark::DoNotOptimize(result->communities.data());
      }
    };
    std::vector<std::thread> threads;
    for (std::size_t t = 1; t < num_threads; ++t) threads.emplace_back(worker, t);
    worker(0);
    for (auto& t : threads) t.join();
    answered += queries_per_round;
  }
  state.counters["queries_per_s"] = benchmark::Counter(
      static_cast<double>(answered), benchmark::Counter::kIsRate);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Concurrent TopL-ICDE query throughput (read-only shared "
              "index, per-thread detectors) ==\n");
  benchmark::RegisterBenchmark("throughput/threads", BM_ConcurrentQueries)
      ->Arg(1)
      ->Arg(2)
      ->Arg(4)
      ->Arg(8)
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.2)
      ->UseRealTime();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

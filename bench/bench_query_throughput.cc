// End-to-end engine serving throughput (not a paper figure): the same mixed
// keyword workload is pushed through
//   (a) a single TopLDetector in a plain sequential loop — the pre-Engine
//       baseline every caller used to hand-roll, and
//   (b) one shared topl::Engine via SearchBatch at increasing worker counts,
//   (c) the engine's async Submit path (futures drained per round).
// Aggregate queries/second is reported for each, so the engine's batching
// overhead (context leasing, stats accounting, pool fan-out) is directly
// comparable against the raw detector loop on identical queries.

#include <benchmark/benchmark.h>

#include <future>
#include <memory>
#include <vector>

#include "bench/bench_common.h"

namespace {

using namespace topl;         // NOLINT(build/namespaces)
using namespace topl::bench;  // NOLINT(build/namespaces)

constexpr std::size_t kQueriesPerRound = 32;

std::vector<Query> MakeWorkloadQueries(const Workload& w) {
  std::vector<Query> queries;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Query q;
    q.keywords = MakeQueryKeywordsFromGraph(w.graph, 5, seed);
    q.k = 4;
    q.radius = 2;
    q.theta = 0.2;
    q.top_l = 5;
    queries.push_back(std::move(q));
  }
  return queries;
}

// The full round's query list: kQueriesPerRound entries cycling through the
// distinct keyword sets, identical for every contender.
std::vector<Query> MakeRound(const Workload& w) {
  const std::vector<Query> base = MakeWorkloadQueries(w);
  std::vector<Query> round;
  round.reserve(kQueriesPerRound);
  for (std::size_t i = 0; i < kQueriesPerRound; ++i) {
    round.push_back(base[i % base.size()]);
  }
  return round;
}

// One lazily-built engine per (dataset, thread count), shared across
// iterations like a long-running server (per-worker detectors live across
// rounds).
Engine& GetEngine(const DatasetConfig& config, std::size_t num_threads) {
  using EngineKey = std::pair<decltype(config.Key()), std::size_t>;
  static std::map<EngineKey, std::unique_ptr<Engine>>* engines =
      new std::map<EngineKey, std::unique_ptr<Engine>>();
  const EngineKey key{config.Key(), num_threads};
  auto it = engines->find(key);
  if (it != engines->end()) return *it->second;

  const Workload& w = GetWorkload(config);
  auto pre = std::make_unique<PrecomputedData>(*w.pre);
  Result<TreeIndex> tree = TreeIndex::Build(w.graph, *pre);
  TOPL_CHECK(tree.ok(), tree.status().ToString().c_str());
  EngineOptions options;
  options.num_threads = num_threads;
  // Workload graphs are cached for the whole process; the engine needs its
  // own Graph, so rebuild the same deterministic dataset.
  Result<std::unique_ptr<Engine>> engine = Engine::Create(
      BuildGraph(config), std::move(pre), std::move(tree).value(), options);
  TOPL_CHECK(engine.ok(), engine.status().ToString().c_str());
  auto [pos, inserted] = engines->emplace(key, std::move(engine).value());
  return *pos->second;
}

void BM_SingleDetectorLoop(benchmark::State& state, DatasetConfig config) {
  const Workload& w = GetWorkload(config);
  const std::vector<Query> round = MakeRound(w);
  TopLDetector detector(w.graph, *w.pre, w.tree);

  std::uint64_t answered = 0;
  for (auto _ : state) {
    for (const Query& query : round) {
      Result<TopLResult> result = detector.Search(query);
      TOPL_CHECK(result.ok(), result.status().ToString().c_str());
      benchmark::DoNotOptimize(result->communities.data());
    }
    answered += round.size();
  }
  state.counters["queries_per_s"] = benchmark::Counter(
      static_cast<double>(answered), benchmark::Counter::kIsRate);
}

void BM_EngineSearchBatch(benchmark::State& state, DatasetConfig config) {
  const std::size_t num_threads = static_cast<std::size_t>(state.range(0));
  Engine& engine = GetEngine(config, num_threads);
  const std::vector<Query> round = MakeRound(GetWorkload(config));

  std::uint64_t answered = 0;
  for (auto _ : state) {
    std::vector<Result<TopLResult>> results = engine.SearchBatch(round);
    for (const Result<TopLResult>& result : results) {
      TOPL_CHECK(result.ok(), result.status().ToString().c_str());
      benchmark::DoNotOptimize(result->communities.data());
    }
    answered += round.size();
  }
  state.counters["queries_per_s"] = benchmark::Counter(
      static_cast<double>(answered), benchmark::Counter::kIsRate);
}

void BM_EngineSubmitAsync(benchmark::State& state, DatasetConfig config) {
  const std::size_t num_threads = static_cast<std::size_t>(state.range(0));
  Engine& engine = GetEngine(config, num_threads);
  const std::vector<Query> round = MakeRound(GetWorkload(config));

  std::uint64_t answered = 0;
  for (auto _ : state) {
    std::vector<std::future<Result<TopLResult>>> futures;
    futures.reserve(round.size());
    for (const Query& query : round) {
      futures.push_back(engine.Submit(query));
    }
    for (auto& future : futures) {
      Result<TopLResult> result = future.get();
      TOPL_CHECK(result.ok(), result.status().ToString().c_str());
      benchmark::DoNotOptimize(result->communities.data());
    }
    answered += round.size();
  }
  state.counters["queries_per_s"] = benchmark::Counter(
      static_cast<double>(answered), benchmark::Counter::kIsRate);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== TopL-ICDE serving throughput: single detector loop vs "
              "Engine::SearchBatch / Engine::Submit ==\n");
  DatasetConfig config;
  config.kind = DatasetKind::kUni;
  config.num_vertices = DefaultVertices();

  benchmark::RegisterBenchmark(
      "throughput/single_detector_loop",
      [config](benchmark::State& s) { BM_SingleDetectorLoop(s, config); })
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.2)
      ->UseRealTime();
  benchmark::RegisterBenchmark(
      "throughput/engine_batch/threads",
      [config](benchmark::State& s) { BM_EngineSearchBatch(s, config); })
      ->Arg(1)
      ->Arg(2)
      ->Arg(4)
      ->Arg(8)
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.2)
      ->UseRealTime();
  benchmark::RegisterBenchmark(
      "throughput/engine_submit/threads",
      [config](benchmark::State& s) { BM_EngineSubmitAsync(s, config); })
      ->Arg(2)
      ->Arg(4)
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.2)
      ->UseRealTime();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

#ifndef TOPL_BENCH_BENCH_COMMON_H_
#define TOPL_BENCH_BENCH_COMMON_H_

// Shared workload construction for the figure-reproduction benchmarks
// (DESIGN.md §5). Each bench binary builds the graphs + indexes it needs once
// (cached per process) and then times only the online phase, mirroring the
// paper's offline/online split.
//
// Environment knobs:
//   TOPL_BENCH_V     default synthetic vertex count (default 10000)
//   TOPL_BENCH_FULL  =1: paper-scale sizes (minutes to hours of precompute)
//   TOPL_DATA_DIR    directory holding real SNAP files (com-dblp.ungraph.txt,
//                    com-amazon.ungraph.txt); used instead of the stand-ins
//                    when present.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "topl.h"

namespace topl {
namespace bench {

enum class DatasetKind { kUni, kGau, kZipf, kDblp, kAmazon };

inline const char* DatasetName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kUni:
      return "Uni";
    case DatasetKind::kGau:
      return "Gau";
    case DatasetKind::kZipf:
      return "Zipf";
    case DatasetKind::kDblp:
      return "DBLP";
    case DatasetKind::kAmazon:
      return "Amazon";
  }
  return "?";
}

struct DatasetConfig {
  DatasetKind kind = DatasetKind::kUni;
  std::size_t num_vertices = 10000;
  std::uint32_t keywords_per_vertex = 3;  // paper default |v.W| = 3
  std::uint32_t keyword_domain = 50;      // paper default |Σ| = 50
  std::uint64_t seed = 42;

  auto Key() const {
    return std::make_tuple(static_cast<int>(kind), num_vertices,
                           keywords_per_vertex, keyword_domain, seed);
  }
};

struct Workload {
  Graph graph;
  std::unique_ptr<PrecomputedData> pre;
  TreeIndex tree;
  double offline_seconds = 0.0;  // precompute + index build
};

inline std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(raw, nullptr, 10));
}

inline bool FullScale() {
  const char* raw = std::getenv("TOPL_BENCH_FULL");
  return raw != nullptr && raw[0] == '1';
}

/// Default synthetic |V| for benches; the paper default is 250K — we scale
/// down so the whole harness finishes in minutes (DESIGN.md §4).
inline std::size_t DefaultVertices() {
  return EnvSize("TOPL_BENCH_V", FullScale() ? 250000 : 10000);
}

inline Graph BuildGraph(const DatasetConfig& config) {
  KeywordModel keywords;
  keywords.keywords_per_vertex = config.keywords_per_vertex;
  keywords.domain_size = config.keyword_domain;

  switch (config.kind) {
    case DatasetKind::kUni:
    case DatasetKind::kGau:
    case DatasetKind::kZipf: {
      SmallWorldOptions opts;
      opts.num_vertices = config.num_vertices;
      opts.seed = config.seed;
      opts.keywords = keywords;
      opts.keywords.distribution =
          config.kind == DatasetKind::kUni   ? KeywordDistribution::kUniform
          : config.kind == DatasetKind::kGau ? KeywordDistribution::kGaussian
                                             : KeywordDistribution::kZipf;
      Result<Graph> g = MakeSmallWorld(opts);
      TOPL_CHECK(g.ok(), g.status().ToString().c_str());
      return std::move(g).value();
    }
    case DatasetKind::kDblp:
    case DatasetKind::kAmazon: {
      // Real SNAP data when available; powerlaw-cluster stand-in otherwise.
      const char* data_dir = std::getenv("TOPL_DATA_DIR");
      const std::string file = config.kind == DatasetKind::kDblp
                                   ? "com-dblp.ungraph.txt"
                                   : "com-amazon.ungraph.txt";
      if (data_dir != nullptr) {
        const std::filesystem::path path = std::filesystem::path(data_dir) / file;
        if (std::filesystem::exists(path)) {
          EdgeListLoadOptions load;
          load.assign_attributes = true;
          load.keywords = keywords;
          load.attribute_seed = config.seed;
          load.restrict_to_largest_component = true;
          Result<Graph> g = LoadSnapEdgeList(path.string(), load);
          TOPL_CHECK(g.ok(), g.status().ToString().c_str());
          return std::move(g).value();
        }
      }
      PowerlawClusterOptions opts;
      opts.num_vertices = config.num_vertices;
      opts.edges_per_vertex = 3;
      opts.triangle_prob = config.kind == DatasetKind::kDblp ? 0.7 : 0.3;
      opts.seed = config.seed;
      opts.keywords = keywords;
      Result<Graph> g = MakePowerlawCluster(opts);
      TOPL_CHECK(g.ok(), g.status().ToString().c_str());
      return std::move(g).value();
    }
  }
  TOPL_CHECK(false, "unreachable dataset kind");
  std::abort();
}

/// Builds (or returns the cached) workload: graph + offline phase.
inline const Workload& GetWorkload(const DatasetConfig& config) {
  static std::map<decltype(config.Key()), std::unique_ptr<Workload>>* cache =
      new std::map<decltype(config.Key()), std::unique_ptr<Workload>>();
  auto it = cache->find(config.Key());
  if (it != cache->end()) return *it->second;

  auto workload = std::make_unique<Workload>();
  workload->graph = BuildGraph(config);
  Timer offline;
  PrecomputeOptions pre_opts;  // r_max=3, thetas {0.1,0.2,0.3}, all cores
  Result<PrecomputedData> pre = PrecomputedData::Build(workload->graph, pre_opts);
  TOPL_CHECK(pre.ok(), pre.status().ToString().c_str());
  workload->pre = std::make_unique<PrecomputedData>(std::move(pre).value());
  Result<TreeIndex> tree = TreeIndex::Build(workload->graph, *workload->pre);
  TOPL_CHECK(tree.ok(), tree.status().ToString().c_str());
  workload->tree = std::move(tree).value();
  workload->offline_seconds = offline.ElapsedSeconds();

  auto [pos, inserted] = cache->emplace(config.Key(), std::move(workload));
  return *pos->second;
}

/// |Q| random distinct keywords from the domain (paper §VIII-A: "randomly
/// select |Q| keywords from the keyword domain Σ"), deterministic per seed.
inline std::vector<KeywordId> MakeQueryKeywords(std::uint32_t domain,
                                                std::uint32_t count,
                                                std::uint64_t seed = 7) {
  Rng rng(seed);
  std::vector<KeywordId> out;
  while (out.size() < count && out.size() < domain) {
    const KeywordId w = static_cast<KeywordId>(rng.NextBounded(domain));
    if (std::find(out.begin(), out.end(), w) == out.end()) out.push_back(w);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// The paper's default query: θ=0.2, |Q|=5, k=4, r=2, L=5.
inline Query DefaultQuery(std::uint32_t keyword_domain = 50) {
  Query q;
  q.keywords = MakeQueryKeywords(keyword_domain, 5);
  q.k = 4;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 5;
  return q;
}

/// |Q| random distinct keywords drawn from the *population*: pick a random
/// vertex, then one of its keywords. Under skewed assignment models (Gau /
/// Zipf) a uniform draw over Σ mostly selects keywords almost nobody holds
/// and every query comes back empty; frequency-weighted sampling keeps all
/// three synthetic datasets comparable, which is what the paper's figures
/// assume.
inline std::vector<KeywordId> MakeQueryKeywordsFromGraph(const Graph& g,
                                                         std::uint32_t count,
                                                         std::uint64_t seed = 7) {
  Rng rng(seed);
  std::vector<KeywordId> out;
  for (int guard = 0; out.size() < count && guard < 100000; ++guard) {
    const VertexId v = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    const auto kws = g.Keywords(v);
    if (kws.empty()) continue;
    const KeywordId w = kws[rng.NextBounded(kws.size())];
    if (std::find(out.begin(), out.end(), w) == out.end()) out.push_back(w);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Default query with population-weighted keywords from the workload graph.
inline Query DefaultQueryFor(const Workload& w, std::uint32_t q_size = 5) {
  Query q;
  q.keywords = MakeQueryKeywordsFromGraph(w.graph, q_size);
  q.k = 4;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 5;
  return q;
}

/// Prints a Table II-style header for a set of datasets.
inline void PrintDatasetTable(const std::vector<DatasetConfig>& configs) {
  std::printf("%-8s %12s %12s %10s\n", "dataset", "|V(G)|", "|E(G)|",
              "offline(s)");
  for (const DatasetConfig& config : configs) {
    const Workload& w = GetWorkload(config);
    std::printf("%-8s %12zu %12zu %10.2f\n", DatasetName(config.kind),
                w.graph.NumVertices(), w.graph.NumEdges(), w.offline_seconds);
  }
}

}  // namespace bench
}  // namespace topl

#endif  // TOPL_BENCH_BENCH_COMMON_H_

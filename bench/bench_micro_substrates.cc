// Microbenchmarks of the substrates underneath TopL-ICDE: hop extraction,
// support counting, truss decomposition, MIA propagation, seed-community
// extraction, and the offline precompute throughput. Not a paper figure —
// these isolate where the query time of Figs. 2-3 goes, and anchor the
// ablation discussion in EXPERIMENTS.md.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace topl;         // NOLINT(build/namespaces)
using namespace topl::bench;  // NOLINT(build/namespaces)

const Workload& DefaultWorkload() {
  DatasetConfig config;
  config.kind = DatasetKind::kUni;
  config.num_vertices = DefaultVertices();
  return GetWorkload(config);
}

void BM_HopExtraction(benchmark::State& state) {
  const Workload& w = DefaultWorkload();
  HopExtractor extractor(w.graph);
  LocalGraph lg;
  VertexId v = 0;
  const std::uint32_t radius = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    extractor.Extract(v, radius, {}, &lg);
    v = static_cast<VertexId>((v + 7919) % w.graph.NumVertices());
    benchmark::DoNotOptimize(lg.NumEdges());
  }
}
BENCHMARK(BM_HopExtraction)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMicrosecond);

void BM_GlobalSupports(benchmark::State& state) {
  const Workload& w = DefaultWorkload();
  for (auto _ : state) {
    auto sup = ComputeGlobalEdgeSupports(w.graph);
    benchmark::DoNotOptimize(sup.data());
  }
}
BENCHMARK(BM_GlobalSupports)->Unit(benchmark::kMillisecond);

void BM_TrussDecomposition(benchmark::State& state) {
  const Workload& w = DefaultWorkload();
  for (auto _ : state) {
    auto trussness = TrussDecomposition(w.graph);
    benchmark::DoNotOptimize(trussness.data());
  }
}
BENCHMARK(BM_TrussDecomposition)->Unit(benchmark::kMillisecond);

void BM_CoreDecomposition(benchmark::State& state) {
  const Workload& w = DefaultWorkload();
  for (auto _ : state) {
    auto core = CoreDecomposition(w.graph);
    benchmark::DoNotOptimize(core.data());
  }
}
BENCHMARK(BM_CoreDecomposition)->Unit(benchmark::kMillisecond);

void BM_Propagation(benchmark::State& state) {
  const Workload& w = DefaultWorkload();
  PropagationEngine engine(w.graph);
  const double theta = static_cast<double>(state.range(0)) / 100.0;
  VertexId v = 0;
  for (auto _ : state) {
    const VertexId seeds[1] = {v};
    auto result = engine.Compute(seeds, theta);
    benchmark::DoNotOptimize(result.score);
    v = static_cast<VertexId>((v + 7919) % w.graph.NumVertices());
  }
}
BENCHMARK(BM_Propagation)->Arg(10)->Arg(20)->Arg(30)->Unit(benchmark::kMicrosecond);

void BM_SeedExtraction(benchmark::State& state) {
  const Workload& w = DefaultWorkload();
  SeedCommunityExtractor extractor(w.graph);
  const Query query = DefaultQuery();
  SeedCommunity community;
  VertexId v = 0;
  for (auto _ : state) {
    extractor.Extract(v, query, &community);
    benchmark::DoNotOptimize(community.vertices.data());
    v = static_cast<VertexId>((v + 7919) % w.graph.NumVertices());
  }
}
BENCHMARK(BM_SeedExtraction)->Unit(benchmark::kMicrosecond);

void BM_PrecomputeThroughput(benchmark::State& state) {
  // Offline phase over a fresh small graph per iteration (not cached).
  SmallWorldOptions gen;
  gen.num_vertices = 2000;
  Result<Graph> g = MakeSmallWorld(gen);
  TOPL_CHECK(g.ok(), g.status().ToString().c_str());
  PrecomputeOptions opts;
  opts.num_threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Result<PrecomputedData> pre = PrecomputedData::Build(*g, opts);
    TOPL_CHECK(pre.ok(), pre.status().ToString().c_str());
    benchmark::DoNotOptimize(pre->num_vertices());
  }
  state.counters["vertices_per_s"] = benchmark::Counter(
      static_cast<double>(g->NumVertices()) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PrecomputeThroughput)->Arg(1)->Arg(4)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

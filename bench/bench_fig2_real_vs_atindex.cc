// Figure 2: TopL-ICDE vs the ATindex baseline on the five datasets (DBLP,
// Amazon, Uni, Gau, Zipf), all parameters at their Table III defaults.
//
// The paper samples 0.5% of ATindex's centers on DBLP and reports the
// estimated total; with TOPL_BENCH_FULL=1 this harness replicates that
// estimator (counter "estimated_total_ms"), at default scale the baseline is
// run in full.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace topl;         // NOLINT(build/namespaces)
using namespace topl::bench;  // NOLINT(build/namespaces)

std::vector<DatasetConfig> Fig2Datasets() {
  const std::size_t synthetic_v = DefaultVertices();
  // The SNAP graphs are ~13x larger than our scaled-down synthetic default;
  // keep the stand-ins at the same |V| so the comparison highlights method,
  // not size (real files via TOPL_DATA_DIR override num_vertices anyway).
  std::vector<DatasetConfig> configs;
  for (DatasetKind kind : {DatasetKind::kDblp, DatasetKind::kAmazon,
                           DatasetKind::kUni, DatasetKind::kGau,
                           DatasetKind::kZipf}) {
    DatasetConfig config;
    config.kind = kind;
    config.num_vertices = synthetic_v;
    configs.push_back(config);
  }
  return configs;
}

void BM_TopL(benchmark::State& state, DatasetConfig config) {
  const Workload& w = GetWorkload(config);
  TopLDetector detector(w.graph, *w.pre, w.tree);
  const Query query = DefaultQueryFor(w);
  QueryStats last;
  for (auto _ : state) {
    Result<TopLResult> result = detector.Search(query);
    TOPL_CHECK(result.ok(), result.status().ToString().c_str());
    last = result->stats;
    benchmark::DoNotOptimize(result->communities.data());
  }
  state.counters["refined"] = static_cast<double>(last.candidates_refined);
  state.counters["found"] = static_cast<double>(last.communities_found);
  state.counters["pruned"] = static_cast<double>(last.TotalPruned());
  state.counters["offline_s"] = w.offline_seconds;
}

void BM_ATindex(benchmark::State& state, DatasetConfig config) {
  const Workload& w = GetWorkload(config);
  const ATIndex baseline = ATIndex::Build(w.graph);
  const Query query = DefaultQueryFor(w);
  ATIndex::SearchOptions options;
  if (FullScale()) options.center_sample_rate = 0.005;  // paper's estimator
  QueryStats last;
  for (auto _ : state) {
    Result<TopLResult> result = baseline.Search(query, options);
    TOPL_CHECK(result.ok(), result.status().ToString().c_str());
    last = result->stats;
    benchmark::DoNotOptimize(result->communities.data());
  }
  state.counters["refined"] = static_cast<double>(last.candidates_refined);
  state.counters["found"] = static_cast<double>(last.communities_found);
  if (options.center_sample_rate < 1.0) {
    state.counters["estimated_total_ms"] =
        last.elapsed_seconds / options.center_sample_rate * 1e3;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto configs = Fig2Datasets();
  std::printf("== Figure 2: TopL-ICDE vs ATindex (defaults: theta=0.2, |Q|=5, "
              "k=4, r=2, L=5) ==\n");
  std::printf("== Table II: dataset statistics ==\n");
  topl::bench::PrintDatasetTable(configs);
  for (const auto& config : configs) {
    benchmark::RegisterBenchmark(
        (std::string("fig2/TopL-ICDE/") + DatasetName(config.kind)).c_str(),
        [config](benchmark::State& s) { BM_TopL(s, config); })
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.2);
    benchmark::RegisterBenchmark(
        (std::string("fig2/ATindex/") + DatasetName(config.kind)).c_str(),
        [config](benchmark::State& s) { BM_ATindex(s, config); })
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.2);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// bench_recovery — durability-path costs and the recovery exactness witness,
// on one fixed-seed synthetic graph.
//
// Three measured phases:
//   1. journal append throughput: UpdateJournal::Append (checksummed record
//      + fsync per delta) on a standalone journal;
//   2. the live journaled update path: Engine::ApplyUpdate with a journal
//      attached (append + fsync + incremental index maintenance per delta);
//   3. recovery: Engine::Recover over the untouched base artifact + journal,
//      replaying every record.
//
// After recovery the binary answers the same query battery on the recovered
// engine and on the live engine that acknowledged the updates; any
// field-level mismatch (centers, member lists, scores) makes it exit
// non-zero — the benchmark doubles as the divergence witness for the
// journal contract: a crash-recovered engine serves byte-identical answers.
//
//   bench_recovery [--vertices=1000] [--seed=42] [--rmax=2] [--deltas=50]
//                  [--appends=1000] [--ops=4] [--queries=4]
//                  [--json=BENCH_recovery.json]
//
// Emits a human summary on stdout and a machine-readable JSON file
// (journal ops/s, journaled update rate, recovery rate and ms-per-1k-deltas)
// consumed by the CI regression gate.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "topl.h"

namespace {

using namespace topl;  // NOLINT(build/namespaces)

struct Flags {
  std::size_t vertices = 1000;
  std::uint64_t seed = 42;
  std::uint32_t rmax = 2;
  int deltas = 50;
  int appends = 1000;
  int ops = 4;
  int queries = 4;
  std::string json = "BENCH_recovery.json";
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (key == "vertices") {
      flags.vertices = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "seed") {
      flags.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "rmax") {
      flags.rmax =
          static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "deltas") {
      flags.deltas = std::atoi(value.c_str());
    } else if (key == "appends") {
      flags.appends = std::atoi(value.c_str());
    } else if (key == "ops") {
      flags.ops = std::atoi(value.c_str());
    } else if (key == "queries") {
      flags.queries = std::atoi(value.c_str());
    } else if (key == "json") {
      flags.json = value;
    } else {
      std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
      std::exit(2);
    }
  }
  return flags;
}

// Population-weighted query keywords, deterministic per seed.
std::vector<KeywordId> QueryKeywords(const Graph& g, std::uint32_t count,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<KeywordId> out;
  for (int guard = 0; out.size() < count && guard < 100000; ++guard) {
    const VertexId v = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    const auto kws = g.Keywords(v);
    if (kws.empty()) continue;
    const KeywordId w = kws[rng.NextBounded(kws.size())];
    if (std::find(out.begin(), out.end(), w) == out.end()) out.push_back(w);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool SameCommunities(const std::vector<CommunityResult>& a,
                     const std::vector<CommunityResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].community.center != b[i].community.center ||
        a[i].community.vertices != b[i].community.vertices ||
        a[i].community.edges != b[i].community.edges ||
        a[i].score() != b[i].score()) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);

  std::printf("== durability: journal append / journaled updates / recovery "
              "replay ==\n");
  SmallWorldOptions gen;
  gen.num_vertices = flags.vertices;
  gen.seed = flags.seed;
  gen.keywords.domain_size = 50;
  gen.keywords.keywords_per_vertex = 3;
  Result<Graph> built = MakeSmallWorld(gen);
  TOPL_CHECK(built.ok(), built.status().ToString().c_str());
  const Graph& graph = *built;

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("topl_bench_recovery_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string artifact = (dir / "base.idx").string();
  const std::string journal_path = (dir / "wal.jrn").string();

  {
    PrecomputeOptions pre_opts;
    pre_opts.r_max = flags.rmax;
    Result<PrecomputedData> pre = PrecomputedData::Build(graph, pre_opts);
    TOPL_CHECK(pre.ok(), pre.status().ToString().c_str());
    Result<TreeIndex> tree = TreeIndex::Build(graph, *pre);
    TOPL_CHECK(tree.ok(), tree.status().ToString().c_str());
    TOPL_CHECK(ArtifactWriter::Write(graph, *pre, *tree, artifact).ok(),
               "artifact write failed");
  }
  std::printf("graph: %zu vertices, %zu edges; artifact %s\n",
              graph.NumVertices(), graph.NumEdges(), artifact.c_str());

  // Sequentially-valid delta stream (each delta drawn against the graph the
  // previous ones produced).
  std::vector<GraphDelta> deltas;
  {
    RandomDeltaOptions delta_options;
    delta_options.num_ops = flags.ops;
    delta_options.keyword_domain = gen.keywords.domain_size;
    std::unique_ptr<Graph> evolved;
    const Graph* current = &graph;
    Rng rng(flags.seed + 1);
    while (deltas.size() < static_cast<std::size_t>(flags.deltas)) {
      GraphDelta d = MakeRandomDelta(*current, rng, delta_options);
      if (d.empty()) continue;
      Result<Graph> next = ApplyDelta(*current, d);
      TOPL_CHECK(next.ok(), next.status().ToString().c_str());
      evolved = std::make_unique<Graph>(std::move(*next));
      current = evolved.get();
      deltas.push_back(std::move(d));
    }
  }

  // Phase 1: raw journal append throughput (record encode + write + fsync),
  // cycling the delta stream up to `appends` records on a throwaway journal.
  double append_seconds = 0.0;
  std::uint64_t append_bytes = 0;
  {
    const std::string path = (dir / "throughput.jrn").string();
    Result<std::unique_ptr<UpdateJournal>> journal = UpdateJournal::Open(path);
    TOPL_CHECK(journal.ok(), journal.status().ToString().c_str());
    Timer timer;
    for (int i = 0; i < flags.appends; ++i) {
      const Status appended =
          (*journal)->Append(deltas[static_cast<std::size_t>(i) %
                                    deltas.size()]);
      TOPL_CHECK(appended.ok(), appended.ToString().c_str());
    }
    append_seconds = timer.ElapsedSeconds();
    append_bytes = std::filesystem::file_size(path);
  }
  const double appends_per_s =
      append_seconds > 0.0 ? flags.appends / append_seconds : 0.0;
  std::printf("journal append: %d records in %.3fs (%.0f ops/s, %llu bytes)\n",
              flags.appends, append_seconds, appends_per_s,
              static_cast<unsigned long long>(append_bytes));

  // Phase 2: the live journaled update path — what a serving engine pays per
  // acknowledged delta (journal append + fsync + incremental maintenance).
  EngineOptions options;
  options.index_path = artifact;
  options.journal_path = journal_path;
  options.num_threads = 2;
  Result<std::unique_ptr<Engine>> live = Engine::Open(options);
  TOPL_CHECK(live.ok(), live.status().ToString().c_str());
  Timer apply_timer;
  for (const GraphDelta& delta : deltas) {
    Result<RebuildScope> applied = (*live)->ApplyUpdate(delta);
    TOPL_CHECK(applied.ok(), applied.status().ToString().c_str());
  }
  const double apply_seconds = apply_timer.ElapsedSeconds();
  const double apply_per_s =
      apply_seconds > 0.0 ? flags.deltas / apply_seconds : 0.0;
  std::printf("journaled updates: %d deltas in %.3fs (%.1f updates/s)\n",
              flags.deltas, apply_seconds, apply_per_s);

  // Phase 3: crash recovery — a fresh engine over the untouched artifact +
  // journal replays every record.
  RecoveryInfo info;
  Timer recover_timer;
  Result<std::unique_ptr<Engine>> recovered = Engine::Recover(options, &info);
  const double recovery_seconds = recover_timer.ElapsedSeconds();
  TOPL_CHECK(recovered.ok(), recovered.status().ToString().c_str());
  TOPL_CHECK(info.records_replayed == deltas.size(),
             "recovery did not replay every journal record");
  const double recovery_per_s =
      recovery_seconds > 0.0 ? flags.deltas / recovery_seconds : 0.0;
  const double ms_per_1k =
      recovery_seconds * 1000.0 * (1000.0 / flags.deltas);
  std::printf("recovery: %llu records in %.3fs (%.1f updates/s, "
              "%.0f ms per 1k deltas)\n",
              static_cast<unsigned long long>(info.records_replayed),
              recovery_seconds, recovery_per_s, ms_per_1k);

  // Divergence witness: recovered answers vs the live engine that
  // acknowledged the stream, field by field.
  bool exact = true;
  for (int qi = 0; qi < flags.queries; ++qi) {
    Query q;
    q.keywords = QueryKeywords(graph, 5, flags.seed + 100 + qi);
    q.k = 4;
    q.radius = std::min<std::uint32_t>(2, flags.rmax);
    q.theta = 0.2;
    q.top_l = 5;
    Result<TopLResult> got = (*recovered)->Search(q);
    Result<TopLResult> want = (*live)->Search(q);
    TOPL_CHECK(got.ok() && want.ok(), "witness query failed");
    if (!SameCommunities(got->communities, want->communities)) {
      exact = false;
      std::fprintf(stderr,
                   "MISMATCH: query %d diverges between recovered and live "
                   "engines\n",
                   qi);
    }
  }
  std::printf("divergence witness: %d queries, %s\n", flags.queries,
              exact ? "exact" : "MISMATCH");

  std::FILE* json = std::fopen(flags.json.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", flags.json.c_str());
    return 1;
  }
  std::fprintf(
      json,
      "{\n"
      "  \"benchmark\": \"recovery\",\n"
      "  \"vertices\": %zu,\n"
      "  \"seed\": %llu,\n"
      "  \"num_deltas\": %d,\n"
      "  \"ops_per_delta\": %d,\n"
      "  \"exact_match\": %s,\n"
      "  \"journal\": {\"appends\": %d, \"total_seconds\": %.6f,\n"
      "              \"ops_per_s\": %.3f, \"bytes\": %llu},\n"
      "  \"apply\": {\"total_seconds\": %.6f, \"updates_per_s\": %.3f},\n"
      "  \"recovery\": {\"records_replayed\": %llu, \"total_seconds\": %.6f,\n"
      "               \"updates_per_s\": %.3f, \"ms_per_1k_deltas\": %.3f,\n"
      "               \"torn_bytes_discarded\": %llu}\n"
      "}\n",
      flags.vertices, static_cast<unsigned long long>(flags.seed), flags.deltas,
      flags.ops, exact ? "true" : "false", flags.appends, append_seconds,
      appends_per_s, static_cast<unsigned long long>(append_bytes),
      apply_seconds, apply_per_s,
      static_cast<unsigned long long>(info.records_replayed), recovery_seconds,
      recovery_per_s, ms_per_1k,
      static_cast<unsigned long long>(info.torn_bytes_discarded));
  std::fclose(json);
  std::printf("wrote %s\n", flags.json.c_str());

  std::filesystem::remove_all(dir);
  return exact ? 0 : 1;
}

// bench_fig3h_scalability — the paper's Fig. 3(h) scalability curve as a
// CI-gated measurement: offline build time, artifact footprint, and online
// query latency as |V| grows into the millions, on the deterministic Uni
// small-world generator (§VIII-A).
//
// Each size runs the full production pipeline twice — identity labeling and
// locality-reordered labeling (graph/reorder.h) — and persists each build
// both raw and delta+varint compressed, giving four artifacts. Before any
// number is reported the bench proves the four stacks are interchangeable:
//
//   exact:     {in-memory, raw mmap, compressed mmap} of one labeling answer
//              every probe query bit-identically (scores compared as bit
//              patterns, member lists in result order);
//   canonical: identity vs reordered answers match after unmapping internal
//              ids through the stored permutation (equal-score communities
//              may legally reorder, so lists are compared as sorted sets).
//
// Any divergence prints the offending query and exits non-zero — the
// scalability numbers are only meaningful if the cheap configurations are
// still computing the same function.
//
//   bench_fig3h_scalability [--sizes=100000[,250000,...]] [--rmax=2]
//                           [--seed=42] [--repeat=3] [--json=BENCH_scale.json]
//                           [--dir=DIR] [--threads=0]
//
// Default is the 100k point (PR-tier CI). TOPL_BENCH_FULL=1 switches the
// default to 100k/250k/1M (nightly tier); --sizes overrides both.
//
// Per size the JSON reports: V, E, offline_build_s (identity precompute +
// tree build), reorder_s (permutation compute + apply only), artifact_bytes
// (identity raw — permutation-invariant), compressed_bytes (reordered +
// compressed, the deployment configuration), compression_ratio
// (artifact_bytes / compressed_bytes), query_p50_ms (reordered-compressed
// mmap engine, over `repeat` rounds of the probe queries), and rss_mb
// (open + one query in a forked child, so allocator state never leaks
// between sizes).

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "topl.h"

namespace {

using namespace topl;  // NOLINT(build/namespaces)

struct SizeReport {
  std::size_t vertices = 0;
  std::size_t edges = 0;
  double offline_build_s = 0.0;
  double reorder_s = 0.0;
  std::uint64_t artifact_bytes = 0;
  std::uint64_t compressed_bytes = 0;
  double compression_ratio = 0.0;
  double query_p50_ms = 0.0;
  double rss_mb = 0.0;
  bool ok = false;
};

long ReadRssKb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::strtol(line.c_str() + 6, nullptr, 10);
    }
  }
  return 0;
}

std::uint64_t FileBytes(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

/// Probe queries with keywords certain to exist under the default keyword
/// model (domain 50, three uniform draws per vertex): mixed radii, large
/// enough L that the cut line cannot truncate ties differently per build.
std::vector<Query> ProbeQueries(std::uint32_t r_max) {
  std::vector<Query> queries;
  for (std::uint32_t i = 0; i < 3; ++i) {
    Query q;
    q.keywords = {static_cast<KeywordId>(i), static_cast<KeywordId>(i + 3),
                  static_cast<KeywordId>(i + 7)};
    q.k = 3;
    q.radius = std::min<std::uint32_t>(1 + i % 2, r_max);
    q.theta = 0.2;
    q.top_l = 20;
    queries.push_back(std::move(q));
  }
  return queries;
}

/// Bit-exact fingerprint of a result list in result order. Two engines over
/// the *same labeling* must produce identical fingerprints.
using ExactAnswer =
    std::vector<std::tuple<VertexId, std::uint64_t, std::vector<VertexId>>>;

ExactAnswer ExactFingerprint(const std::vector<CommunityResult>& communities) {
  ExactAnswer out;
  out.reserve(communities.size());
  for (const CommunityResult& c : communities) {
    out.emplace_back(c.community.center, std::bit_cast<std::uint64_t>(c.score()),
                     c.community.vertices);
  }
  return out;
}

/// Labeling-invariant fingerprint: (score bits, sorted external members),
/// list sorted — equal-score communities may reorder across labelings.
using CanonicalAnswer =
    std::vector<std::pair<std::uint64_t, std::vector<VertexId>>>;

CanonicalAnswer CanonicalFingerprint(
    const std::vector<CommunityResult>& communities,
    const std::vector<VertexId>& external_ids) {
  CanonicalAnswer out;
  out.reserve(communities.size());
  for (const CommunityResult& c : communities) {
    std::vector<VertexId> members;
    members.reserve(c.community.vertices.size());
    for (VertexId v : c.community.vertices) {
      members.push_back(external_ids.empty() ? v : external_ids[v]);
    }
    std::sort(members.begin(), members.end());
    out.emplace_back(std::bit_cast<std::uint64_t>(c.score()),
                     std::move(members));
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::unique_ptr<Engine>> OpenArtifact(const std::string& path) {
  EngineOptions options;
  options.index_path = path;
  options.build_index_if_missing = false;
  return Engine::Open(options);
}

/// RSS of serving the deployment configuration (reordered + compressed,
/// mmap): open + one query in a forked child, footprint shipped back over a
/// pipe. Mirrors bench_cold_start's isolation rationale.
double MeasureServingRssMb(const std::string& path, const Query& query) {
  int fds[2];
  if (pipe(fds) != 0) return 0.0;
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return 0.0;
  }
  if (pid == 0) {
    close(fds[0]);
    const long before = ReadRssKb();
    long delta_kb = 0;
    Result<std::unique_ptr<Engine>> engine = OpenArtifact(path);
    if (engine.ok() && (*engine)->Search(query).ok()) {
      delta_kb = ReadRssKb() - before;
    }
    ssize_t ignored = write(fds[1], &delta_kb, sizeof(delta_kb));
    (void)ignored;
    close(fds[1]);
    _exit(delta_kb > 0 ? 0 : 1);
  }
  close(fds[1]);
  long delta_kb = 0;
  const ssize_t got = read(fds[0], &delta_kb, sizeof(delta_kb));
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (got != static_cast<ssize_t>(sizeof(delta_kb))) return 0.0;
  return static_cast<double>(delta_kb) / 1024.0;
}

bool ParseFlags(int argc, char** argv,
                std::map<std::string, std::string>* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) return false;
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      (*flags)[arg.substr(2)] = "1";
    } else {
      (*flags)[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return true;
}

std::uint64_t IntFlag(const std::map<std::string, std::string>& flags,
                      const std::string& key, std::uint64_t fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback
                           : std::strtoull(it->second.c_str(), nullptr, 10);
}

std::vector<std::size_t> ParseSizes(const std::string& csv) {
  std::vector<std::size_t> sizes;
  std::size_t start = 0;
  while (start < csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    const std::string token = csv.substr(start, comma - start);
    if (!token.empty()) sizes.push_back(std::strtoull(token.c_str(), nullptr, 10));
    start = comma + 1;
  }
  return sizes;
}

/// Runs the whole pipeline for one size. Returns report.ok == false (after
/// printing why) on any build failure or answer divergence.
SizeReport RunSize(std::size_t vertices, std::uint32_t r_max,
                   std::uint64_t seed, int repeat, std::size_t threads,
                   const std::string& dir) {
  SizeReport report;
  report.vertices = vertices;
  const std::string tag = std::to_string(vertices);
  const std::string identity_raw = dir + "/identity_" + tag + ".idx";
  const std::string identity_packed = dir + "/identity_" + tag + ".cidx";
  const std::string reordered_raw = dir + "/reordered_" + tag + ".idx";
  const std::string reordered_packed = dir + "/reordered_" + tag + ".cidx";

  // ---- Generate + identity offline build (the timed Fig. 3(h) numbers). --
  SmallWorldOptions gen;
  gen.num_vertices = vertices;
  gen.seed = seed;
  Result<Graph> graph = MakeSmallWorld(gen);
  if (!graph.ok()) {
    std::fprintf(stderr, "[%s] generate failed: %s\n", tag.c_str(),
                 graph.status().ToString().c_str());
    return report;
  }
  report.edges = graph->NumEdges();

  PrecomputeOptions pre_options;
  pre_options.r_max = r_max;
  pre_options.num_threads = threads;
  Timer build_timer;
  Result<PrecomputedData> pre_built = PrecomputedData::Build(*graph, pre_options);
  if (!pre_built.ok()) {
    std::fprintf(stderr, "[%s] precompute failed: %s\n", tag.c_str(),
                 pre_built.status().ToString().c_str());
    return report;
  }
  // Heap-allocate before building the tree: TreeIndex keeps a pointer to the
  // PrecomputedData it was built over, and Engine::Create checks identity.
  auto pre = std::make_unique<PrecomputedData>(std::move(*pre_built));
  Result<TreeIndex> tree = TreeIndex::Build(*graph, *pre);
  if (!tree.ok()) {
    std::fprintf(stderr, "[%s] tree build failed: %s\n", tag.c_str(),
                 tree.status().ToString().c_str());
    return report;
  }
  report.offline_build_s = build_timer.ElapsedSeconds();

  // ---- Locality reorder (timed separately) + second offline build. -------
  Timer reorder_timer;
  Result<ReorderedGraph> reordered = ReorderForLocality(*graph);
  if (!reordered.ok()) {
    std::fprintf(stderr, "[%s] reorder failed: %s\n", tag.c_str(),
                 reordered.status().ToString().c_str());
    return report;
  }
  report.reorder_s = reorder_timer.ElapsedSeconds();
  Result<PrecomputedData> pre2_built =
      PrecomputedData::Build(reordered->graph, pre_options);
  if (!pre2_built.ok()) {
    std::fprintf(stderr, "[%s] reordered precompute failed: %s\n", tag.c_str(),
                 pre2_built.status().ToString().c_str());
    return report;
  }
  auto pre2 = std::make_unique<PrecomputedData>(std::move(*pre2_built));
  Result<TreeIndex> tree2 = TreeIndex::Build(reordered->graph, *pre2);
  if (!tree2.ok()) {
    std::fprintf(stderr, "[%s] reordered tree build failed: %s\n", tag.c_str(),
                 tree2.status().ToString().c_str());
    return report;
  }

  // ---- Persist all four artifacts. ---------------------------------------
  {
    ArtifactWriteOptions raw_opts;
    ArtifactWriteOptions packed_opts;
    packed_opts.compress = true;
    Status status =
        ArtifactWriter::Write(*graph, *pre, *tree, identity_raw, raw_opts);
    if (status.ok()) {
      status = ArtifactWriter::Write(*graph, *pre, *tree, identity_packed,
                                     packed_opts);
    }
    ArtifactWriteOptions reorder_raw_opts;
    reorder_raw_opts.external_ids = reordered->external_ids;
    ArtifactWriteOptions reorder_packed_opts = reorder_raw_opts;
    reorder_packed_opts.compress = true;
    if (status.ok()) {
      status = ArtifactWriter::Write(reordered->graph, *pre2, *tree2,
                                     reordered_raw, reorder_raw_opts);
    }
    if (status.ok()) {
      status = ArtifactWriter::Write(reordered->graph, *pre2, *tree2,
                                     reordered_packed, reorder_packed_opts);
    }
    if (!status.ok()) {
      std::fprintf(stderr, "[%s] artifact write failed: %s\n", tag.c_str(),
                   status.ToString().c_str());
      return report;
    }
  }
  report.artifact_bytes = FileBytes(identity_raw);
  report.compressed_bytes = FileBytes(reordered_packed);
  report.compression_ratio =
      report.compressed_bytes > 0
          ? static_cast<double>(report.artifact_bytes) /
                static_cast<double>(report.compressed_bytes)
          : 0.0;

  // ---- Equivalence gate: six engines, three per labeling. ----------------
  const std::vector<VertexId> external_ids = reordered->external_ids;
  Result<std::unique_ptr<Engine>> identity_mem = Engine::Create(
      std::move(*graph), std::move(pre), std::move(*tree));
  Result<std::unique_ptr<Engine>> reordered_mem = Engine::Create(
      std::move(reordered->graph), std::move(pre2), std::move(*tree2));
  Result<std::unique_ptr<Engine>> identity_raw_eng = OpenArtifact(identity_raw);
  Result<std::unique_ptr<Engine>> identity_packed_eng =
      OpenArtifact(identity_packed);
  Result<std::unique_ptr<Engine>> reordered_raw_eng =
      OpenArtifact(reordered_raw);
  Result<std::unique_ptr<Engine>> reordered_packed_eng =
      OpenArtifact(reordered_packed);
  for (const auto* e :
       {&identity_mem, &reordered_mem, &identity_raw_eng, &identity_packed_eng,
        &reordered_raw_eng, &reordered_packed_eng}) {
    if (!e->ok()) {
      std::fprintf(stderr, "[%s] engine open failed: %s\n", tag.c_str(),
                   e->status().ToString().c_str());
      return report;
    }
  }
  struct Stack {
    const char* name;
    Engine* engine;
    const std::vector<VertexId>* external_ids;  // empty = identity labeling
  };
  const std::vector<VertexId> no_ids;
  const Stack identity_stacks[] = {
      {"identity/in-memory", identity_mem->get(), &no_ids},
      {"identity/raw-mmap", identity_raw_eng->get(), &no_ids},
      {"identity/compressed-mmap", identity_packed_eng->get(), &no_ids},
  };
  const Stack reordered_stacks[] = {
      {"reordered/in-memory", reordered_mem->get(), &external_ids},
      {"reordered/raw-mmap", reordered_raw_eng->get(), &external_ids},
      {"reordered/compressed-mmap", reordered_packed_eng->get(), &external_ids},
  };
  const std::vector<Query> queries = ProbeQueries(r_max);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const Query& q = queries[qi];
    CanonicalAnswer canonical[2];
    int group = 0;
    for (const auto* stacks : {identity_stacks, reordered_stacks}) {
      ExactAnswer exact;
      for (int si = 0; si < 3; ++si) {
        const Stack& stack = stacks[si];
        Result<TopLResult> answer = stack.engine->Search(q);
        if (!answer.ok()) {
          std::fprintf(stderr, "[%s] query %zu failed on %s: %s\n", tag.c_str(),
                       qi, stack.name, answer.status().ToString().c_str());
          return report;
        }
        const ExactAnswer fingerprint = ExactFingerprint(answer->communities);
        if (si == 0) {
          exact = fingerprint;
          canonical[group] =
              CanonicalFingerprint(answer->communities, *stack.external_ids);
        } else if (fingerprint != exact) {
          std::fprintf(stderr,
                       "[%s] DIVERGENCE: query %zu answers differ between %s "
                       "and %s (same labeling — must be bit-identical)\n",
                       tag.c_str(), qi, stacks[0].name, stack.name);
          return report;
        }
      }
      ++group;
    }
    if (canonical[0] != canonical[1]) {
      std::fprintf(stderr,
                   "[%s] DIVERGENCE: query %zu identity vs reordered answers "
                   "differ after unmapping the permutation\n",
                   tag.c_str(), qi);
      return report;
    }
  }

  // ---- query_p50_ms on the deployment configuration. ---------------------
  Engine* serving = reordered_packed_eng->get();
  std::vector<double> latencies_ms;
  latencies_ms.reserve(queries.size() * static_cast<std::size_t>(repeat));
  for (int round = 0; round < repeat; ++round) {
    for (const Query& q : queries) {
      Timer timer;
      Result<TopLResult> answer = serving->Search(q);
      if (!answer.ok()) {
        std::fprintf(stderr, "[%s] timing query failed: %s\n", tag.c_str(),
                     answer.status().ToString().c_str());
        return report;
      }
      latencies_ms.push_back(timer.ElapsedSeconds() * 1e3);
    }
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  report.query_p50_ms = latencies_ms[latencies_ms.size() / 2];

  report.rss_mb = MeasureServingRssMb(reordered_packed, queries.front());
  report.ok = true;
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  if (!ParseFlags(argc, argv, &flags)) {
    std::fprintf(stderr,
                 "usage: bench_fig3h_scalability [--sizes=N,N,...] [--rmax=R] "
                 "[--seed=S] [--repeat=K] [--json=FILE] [--dir=DIR] "
                 "[--threads=T]\n");
    return 2;
  }
  const char* full_env = std::getenv("TOPL_BENCH_FULL");
  const bool full = full_env != nullptr && std::strcmp(full_env, "1") == 0;
  std::vector<std::size_t> sizes =
      full ? std::vector<std::size_t>{100000, 250000, 1000000}
           : std::vector<std::size_t>{100000};
  if (flags.count("sizes")) sizes = ParseSizes(flags.at("sizes"));
  if (sizes.empty()) {
    std::fprintf(stderr, "no sizes to run\n");
    return 2;
  }
  const std::uint32_t r_max =
      static_cast<std::uint32_t>(IntFlag(flags, "rmax", 2));
  const std::uint64_t seed = IntFlag(flags, "seed", 42);
  const int repeat = static_cast<int>(IntFlag(flags, "repeat", 3));
  const std::size_t threads = IntFlag(flags, "threads", 0);
  const std::string json_path =
      flags.count("json") ? flags.at("json") : "BENCH_scale.json";
  const std::string dir =
      flags.count("dir")
          ? flags.at("dir")
          : (std::filesystem::temp_directory_path() /
             ("topl_scale_" + std::to_string(::getpid()))).string();
  std::filesystem::create_directories(dir);

  std::vector<SizeReport> reports;
  bool all_ok = true;
  for (std::size_t vertices : sizes) {
    std::printf("== %zu vertices ==\n", vertices);
    std::fflush(stdout);
    const SizeReport report =
        RunSize(vertices, r_max, seed, repeat, threads, dir);
    all_ok = all_ok && report.ok;
    std::printf(
        "  V=%zu E=%zu build=%.2fs reorder=%.3fs raw=%llu B packed=%llu B "
        "(%.2fx) p50=%.3fms rss=%.1fMB %s\n",
        report.vertices, report.edges, report.offline_build_s,
        report.reorder_s, static_cast<unsigned long long>(report.artifact_bytes),
        static_cast<unsigned long long>(report.compressed_bytes),
        report.compression_ratio, report.query_p50_ms, report.rss_mb,
        report.ok ? "ok" : "FAILED");
    std::fflush(stdout);
    reports.push_back(report);
    if (!report.ok) break;  // later sizes only get more expensive
  }

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"benchmark\": \"scale\",\n");
  std::fprintf(json, "  \"r_max\": %u,\n", r_max);
  std::fprintf(json, "  \"sizes\": {\n");
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const SizeReport& r = reports[i];
    std::fprintf(json,
                 "    \"%zu\": {\"V\": %zu, \"E\": %zu, "
                 "\"offline_build_s\": %.3f, \"reorder_s\": %.3f, "
                 "\"artifact_bytes\": %llu, \"compressed_bytes\": %llu, "
                 "\"compression_ratio\": %.4f, \"query_p50_ms\": %.4f, "
                 "\"rss_mb\": %.1f}%s\n",
                 r.vertices, r.vertices, r.edges, r.offline_build_s,
                 r.reorder_s, static_cast<unsigned long long>(r.artifact_bytes),
                 static_cast<unsigned long long>(r.compressed_bytes),
                 r.compression_ratio, r.query_p50_ms, r.rss_mb,
                 i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(json, "  },\n");
  std::fprintf(json, "  \"ok\": %s\n", all_ok ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());

  if (!flags.count("dir")) std::filesystem::remove_all(dir);
  return all_ok ? 0 : 1;
}

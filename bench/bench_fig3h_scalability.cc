// Figure 3(h): TopL-ICDE scalability — wall-clock time vs |V(G)| on the
// three synthetic datasets. The paper sweeps 10K → 1M; default harness scale
// is 1K → 50K (superset sweep with TOPL_BENCH_FULL=1). Offline build time is
// reported as a counter, mirroring the paper's offline/online split.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace topl;         // NOLINT(build/namespaces)
using namespace topl::bench;  // NOLINT(build/namespaces)

std::vector<std::size_t> Sizes() {
  if (FullScale()) {
    return {10000, 25000, 50000, 100000, 250000, 500000, 1000000};
  }
  return {1000, 2500, 5000, 10000, 25000, 50000};
}

void BM_Scalability(benchmark::State& state, DatasetConfig config) {
  const Workload& w = GetWorkload(config);
  TopLDetector detector(w.graph, *w.pre, w.tree);
  const Query query = DefaultQueryFor(w);
  QueryStats last;
  for (auto _ : state) {
    Result<TopLResult> result = detector.Search(query);
    TOPL_CHECK(result.ok(), result.status().ToString().c_str());
    last = result->stats;
    benchmark::DoNotOptimize(result->communities.data());
  }
  state.counters["V"] = static_cast<double>(w.graph.NumVertices());
  state.counters["E"] = static_cast<double>(w.graph.NumEdges());
  state.counters["found"] = static_cast<double>(last.communities_found);
  state.counters["offline_s"] = w.offline_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Figure 3(h): scalability over |V(G)| ==\n");
  for (DatasetKind kind :
       {DatasetKind::kUni, DatasetKind::kGau, DatasetKind::kZipf}) {
    for (std::size_t n : Sizes()) {
      DatasetConfig config;
      config.kind = kind;
      config.num_vertices = n;
      benchmark::RegisterBenchmark(
        (std::string("fig3h/") + DatasetName(kind) + "/V:" + std::to_string(n)).c_str(),
          [config](benchmark::State& s) { BM_Scalability(s, config); })
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

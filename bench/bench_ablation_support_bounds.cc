// Design-choice ablation (DESIGN.md §3): the paper's support pruning rule
// (max edge support within hop(v, r_max), Lemma 2/6) versus the strengthened
// center-trussness bound this library adds on top. Both are safe; the
// question is pruning power — especially on heterogeneous (power-law)
// graphs, where every ball contains some high-support edge and the paper's
// max form rarely fires.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace topl;         // NOLINT(build/namespaces)
using namespace topl::bench;  // NOLINT(build/namespaces)

void BM_SupportVariant(benchmark::State& state, DatasetConfig config,
                       bool center_truss) {
  const Workload& w = GetWorkload(config);
  TopLDetector detector(w.graph, *w.pre, w.tree);
  const Query query = DefaultQueryFor(w);
  QueryOptions options;
  options.use_center_truss_bound = center_truss;
  QueryStats last;
  for (auto _ : state) {
    Result<TopLResult> result = detector.Search(query, options);
    TOPL_CHECK(result.ok(), result.status().ToString().c_str());
    last = result->stats;
    benchmark::DoNotOptimize(result->communities.data());
  }
  state.counters["pruned_support"] = static_cast<double>(last.pruned_support);
  state.counters["refined"] = static_cast<double>(last.candidates_refined);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Ablation: paper support bound (max ball support) vs "
              "+center-trussness ==\n");
  for (DatasetKind kind : {DatasetKind::kDblp, DatasetKind::kAmazon,
                           DatasetKind::kUni, DatasetKind::kGau,
                           DatasetKind::kZipf}) {
    DatasetConfig config;
    config.kind = kind;
    config.num_vertices = DefaultVertices();
    const std::string ds = DatasetName(kind);
    benchmark::RegisterBenchmark(
        ("support_bound/paper/" + ds).c_str(),
        [config](benchmark::State& s) { BM_SupportVariant(s, config, false); })
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.1);
    benchmark::RegisterBenchmark(
        ("support_bound/center_truss/" + ds).c_str(),
        [config](benchmark::State& s) { BM_SupportVariant(s, config, true); })
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Figure 6(d): DTopL-ICDE (Greedy_WP) scalability over |V(G)| on the three
// synthetic datasets. Paper sweep: 10K → 1M; harness default 1K → 50K
// (TOPL_BENCH_FULL=1 for the paper grid).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace topl;         // NOLINT(build/namespaces)
using namespace topl::bench;  // NOLINT(build/namespaces)

std::vector<std::size_t> Sizes() {
  if (FullScale()) {
    return {10000, 25000, 50000, 100000, 250000, 500000, 1000000};
  }
  return {1000, 2500, 5000, 10000, 25000, 50000};
}

void BM_DTopLScalability(benchmark::State& state, DatasetConfig config) {
  const Workload& w = GetWorkload(config);
  DTopLDetector detector(w.graph, *w.pre, w.tree);
  const Query query = DefaultQueryFor(w);
  DTopLResult last;
  for (auto _ : state) {
    Result<DTopLResult> result = detector.Search(query);
    TOPL_CHECK(result.ok(), result.status().ToString().c_str());
    last = std::move(result).value();
    benchmark::DoNotOptimize(last.diversity_score);
  }
  state.counters["V"] = static_cast<double>(w.graph.NumVertices());
  state.counters["diversity"] = last.diversity_score;
  state.counters["offline_s"] = w.offline_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Figure 6(d): DTopL-ICDE scalability over |V(G)| ==\n");
  for (DatasetKind kind :
       {DatasetKind::kUni, DatasetKind::kGau, DatasetKind::kZipf}) {
    for (std::size_t n : Sizes()) {
      DatasetConfig config;
      config.kind = kind;
      config.num_vertices = n;
      benchmark::RegisterBenchmark(
        (std::string("fig6d/") + DatasetName(kind) + "/V:" + std::to_string(n)).c_str(),
          [config](benchmark::State& s) { BM_DTopLScalability(s, config); })
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Figure 6(e): DTopL-ICDE accuracy — the ratio of the greedy pipeline's
// diversity score to the Optimal enumerator's, on small graphs where Optimal
// is tractable (paper setup: |V| = 1K, |v.W| = 3, |Σ| = 20, Uniform /
// Gaussian / Zipf keyword distributions). The paper reports 99.863%–100%.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"

namespace {

using namespace topl;         // NOLINT(build/namespaces)
using namespace topl::bench;  // NOLINT(build/namespaces)

}  // namespace

int main() {
  std::printf("== Figure 6(e): DTopL-ICDE accuracy vs Optimal (|V|=1K, "
              "|v.W|=3, |Sigma|=20) ==\n");
  std::printf("%-6s %10s %14s %14s %10s\n", "data", "pool", "D(greedy)",
              "D(optimal)", "accuracy");
  for (DatasetKind kind :
       {DatasetKind::kUni, DatasetKind::kGau, DatasetKind::kZipf}) {
    DatasetConfig config;
    config.kind = kind;
    config.num_vertices = 1000;
    config.keyword_domain = 20;
    config.keywords_per_vertex = 3;
    const Workload& w = GetWorkload(config);

    Query query = DefaultQueryFor(w);
    query.k = 3;  // denser candidate pool on 1K graphs
    query.top_l = 5;

    // Candidate pool: the same top-(nL) pool both selectors consume.
    TopLDetector topl_detector(w.graph, *w.pre, w.tree);
    Query pool_query = query;
    pool_query.top_l = query.top_l * 5;  // n = 5
    Result<TopLResult> pool = topl_detector.Search(pool_query);
    TOPL_CHECK(pool.ok(), pool.status().ToString().c_str());
    const std::vector<CommunityResult>& candidates = pool->communities;
    if (candidates.size() < query.top_l) {
      std::printf("%-6s insufficient candidates (%zu)\n", DatasetName(kind),
                  candidates.size());
      continue;
    }

    const auto greedy = SelectDiversifiedGreedyWP(candidates, query.top_l,
                                                  /*gain_evaluations=*/nullptr);
    Result<std::vector<std::size_t>> optimal = SelectDiversifiedOptimal(
        candidates, query.top_l, /*max_subsets=*/50'000'000);
    TOPL_CHECK(optimal.ok(), optimal.status().ToString().c_str());

    const double d_greedy = DiversityOfSelection(candidates, greedy);
    const double d_optimal = DiversityOfSelection(candidates, *optimal);
    std::printf("%-6s %10zu %14.4f %14.4f %9.3f%%\n", DatasetName(kind),
                candidates.size(), d_greedy, d_optimal,
                100.0 * d_greedy / d_optimal);
  }
  std::printf("\npaper: accuracy 99.863%% - 100%%\n");
  return 0;
}

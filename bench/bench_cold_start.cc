// bench_cold_start — measures Engine::Open cold-start latency for the two
// persistence paths on the same offline phase:
//
//   copy:  graph file + legacy TOPLIDX1 index, parsed field-by-field into
//          freshly allocated vectors (the pre-TOPLIDX2 behavior);
//   mmap:  one TOPLIDX2 artifact, mapped and served zero-copy (measured with
//          and without the checksum pass).
//
// Each measurement runs in a forked child so RSS and allocator state never
// leak between paths; the page cache is warmed with a throwaway read first
// so the comparison isolates parse+copy cost rather than disk speed.
//
//   bench_cold_start [--vertices=20000] [--rmax=2] [--seed=42] [--repeat=3]
//                    [--json=BENCH_coldstart.json] [--dir=DIR] [--threads=0]
//
// Emits a human summary on stdout and a machine-readable JSON file (open
// latency, first-query latency, RSS delta per path) for CI trend tracking.
// Exits non-zero when any path fails to serve.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "topl.h"

namespace {

using namespace topl;  // NOLINT(build/namespaces)

struct Measurement {
  bool ok = false;
  double open_seconds = 0.0;
  double first_query_seconds = 0.0;
  long rss_delta_kb = 0;
};

long ReadRssKb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::strtol(line.c_str() + 6, nullptr, 10);
    }
  }
  return 0;
}

// Opens an engine with `options`, serves `query` once, reports timings and
// the RSS the open+query added. Runs in the calling process.
Measurement MeasureOnce(const EngineOptions& options, const Query& query) {
  Measurement m;
  const long rss_before = ReadRssKb();
  Timer open_timer;
  Result<std::unique_ptr<Engine>> engine = Engine::Open(options);
  m.open_seconds = open_timer.ElapsedSeconds();
  if (!engine.ok()) {
    std::fprintf(stderr, "open failed: %s\n", engine.status().ToString().c_str());
    return m;
  }
  Timer query_timer;
  Result<TopLResult> answer = (*engine)->Search(query);
  m.first_query_seconds = query_timer.ElapsedSeconds();
  if (!answer.ok()) {
    std::fprintf(stderr, "query failed: %s\n", answer.status().ToString().c_str());
    return m;
  }
  m.rss_delta_kb = ReadRssKb() - rss_before;
  m.ok = true;
  return m;
}

// Forks, measures in the child, and ships the Measurement back over a pipe.
// Isolation matters: the copy path's freed vectors would otherwise sit in
// the allocator and mask the mmap path's RSS footprint.
Measurement MeasureInChild(const EngineOptions& options, const Query& query) {
  int fds[2];
  if (pipe(fds) != 0) return MeasureOnce(options, query);
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return MeasureOnce(options, query);
  }
  if (pid == 0) {
    close(fds[0]);
    const Measurement m = MeasureOnce(options, query);
    ssize_t ignored = write(fds[1], &m, sizeof(m));
    (void)ignored;
    close(fds[1]);
    _exit(m.ok ? 0 : 1);
  }
  close(fds[1]);
  Measurement m;
  const ssize_t got = read(fds[0], &m, sizeof(m));
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (got != static_cast<ssize_t>(sizeof(m))) m.ok = false;
  return m;
}

// Best-of-N: minimum open/query latency, RSS from the fastest-open run.
Measurement MeasureBest(const EngineOptions& options, const Query& query,
                        int repeat) {
  Measurement best;
  for (int i = 0; i < repeat; ++i) {
    const Measurement m = MeasureInChild(options, query);
    if (!m.ok) return m;
    if (!best.ok) {
      best = m;
      continue;
    }
    if (m.open_seconds < best.open_seconds) {
      best.open_seconds = m.open_seconds;
      best.rss_delta_kb = m.rss_delta_kb;
    }
    best.first_query_seconds =
        std::min(best.first_query_seconds, m.first_query_seconds);
  }
  return best;
}

void WarmPageCache(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char buffer[1 << 16];
  while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
    if (in.gcount() == 0) break;
  }
}

std::uint64_t FileBytes(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

void PrintPathJson(std::FILE* out, const char* name, const Measurement& m,
                   bool trailing_comma) {
  std::fprintf(out,
               "    \"%s\": {\"open_seconds\": %.6f, "
               "\"first_query_seconds\": %.6f, \"rss_delta_kb\": %ld}%s\n",
               name, m.open_seconds, m.first_query_seconds, m.rss_delta_kb,
               trailing_comma ? "," : "");
}

bool ParseFlags(int argc, char** argv,
                std::map<std::string, std::string>* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) return false;
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      (*flags)[arg.substr(2)] = "1";
    } else {
      (*flags)[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return true;
}

std::uint64_t IntFlag(const std::map<std::string, std::string>& flags,
                      const std::string& key, std::uint64_t fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback
                           : std::strtoull(it->second.c_str(), nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  if (!ParseFlags(argc, argv, &flags)) {
    std::fprintf(stderr, "usage: bench_cold_start [--vertices=N] [--rmax=R] "
                         "[--seed=S] [--repeat=K] [--json=FILE] [--dir=DIR] "
                         "[--threads=T]\n");
    return 2;
  }
  const std::size_t vertices = IntFlag(flags, "vertices", 20000);
  const std::uint32_t r_max = static_cast<std::uint32_t>(IntFlag(flags, "rmax", 2));
  const std::uint64_t seed = IntFlag(flags, "seed", 42);
  const int repeat = static_cast<int>(IntFlag(flags, "repeat", 3));
  const std::string json_path =
      flags.count("json") ? flags.at("json") : "BENCH_coldstart.json";
  const std::string dir =
      flags.count("dir")
          ? flags.at("dir")
          : (std::filesystem::temp_directory_path() /
             ("topl_coldstart_" + std::to_string(::getpid()))).string();
  std::filesystem::create_directories(dir);
  const std::string graph_path = dir + "/graph.bin";
  const std::string legacy_path = dir + "/index_legacy.bin";
  const std::string artifact_path = dir + "/index.idx";

  // ---- Offline phase: one graph, one index, both persistence formats. ----
  SmallWorldOptions gen;
  gen.num_vertices = vertices;
  gen.seed = seed;
  Result<Graph> graph = MakeSmallWorld(gen);
  if (!graph.ok()) {
    std::fprintf(stderr, "generate failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  Status status = WriteGraphBinary(*graph, graph_path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  PrecomputeOptions pre_options;
  pre_options.r_max = r_max;
  pre_options.num_threads = IntFlag(flags, "threads", 0);
  Timer build_timer;
  Result<PrecomputedData> pre = PrecomputedData::Build(*graph, pre_options);
  if (!pre.ok()) {
    std::fprintf(stderr, "precompute failed: %s\n", pre.status().ToString().c_str());
    return 1;
  }
  Result<TreeIndex> tree = TreeIndex::Build(*graph, *pre);
  if (!tree.ok()) {
    std::fprintf(stderr, "tree build failed: %s\n", tree.status().ToString().c_str());
    return 1;
  }
  const double build_seconds = build_timer.ElapsedSeconds();
  status = IndexCodec::Write(*pre, *tree, legacy_path);
  if (status.ok()) status = ArtifactWriter::Write(*graph, *pre, *tree, artifact_path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  const std::size_t num_edges = graph->NumEdges();

  // A query whose keywords certainly occur: vertex 0's first keywords.
  Query query;
  for (VertexId v = 0; v < graph->NumVertices() && query.keywords.size() < 3; ++v) {
    for (KeywordId w : graph->Keywords(v)) {
      if (query.keywords.size() < 3 &&
          std::find(query.keywords.begin(), query.keywords.end(), w) ==
              query.keywords.end()) {
        query.keywords.push_back(w);
      }
    }
  }
  std::sort(query.keywords.begin(), query.keywords.end());
  query.k = 3;
  query.radius = std::min<std::uint32_t>(2, r_max);
  query.theta = 0.2;
  query.top_l = 5;

  // Everything below measures parse/copy vs map, not disk reads.
  WarmPageCache(graph_path);
  WarmPageCache(legacy_path);
  WarmPageCache(artifact_path);

  EngineOptions copy_options;
  copy_options.graph_path = graph_path;
  copy_options.index_path = legacy_path;
  copy_options.build_index_if_missing = false;

  EngineOptions mmap_options;
  mmap_options.index_path = artifact_path;  // graph embedded in the artifact
  mmap_options.build_index_if_missing = false;

  EngineOptions mmap_unverified = mmap_options;
  mmap_unverified.verify_artifact_checksums = false;

  const Measurement copy = MeasureBest(copy_options, query, repeat);
  const Measurement mmap = MeasureBest(mmap_options, query, repeat);
  const Measurement mmap_raw = MeasureBest(mmap_unverified, query, repeat);
  const bool all_ok = copy.ok && mmap.ok && mmap_raw.ok;

  const double speedup =
      mmap.open_seconds > 0 ? copy.open_seconds / mmap.open_seconds : 0.0;
  std::printf("graph: %zu vertices, %zu edges; offline build %.2fs\n",
              vertices, num_edges, build_seconds);
  std::printf("artifact: %llu bytes (TOPLIDX2), legacy: %llu bytes (TOPLIDX1)\n",
              static_cast<unsigned long long>(FileBytes(artifact_path)),
              static_cast<unsigned long long>(FileBytes(legacy_path)));
  std::printf("%-16s %14s %18s %14s\n", "path", "open", "first query", "rss delta");
  auto print_row = [](const char* name, const Measurement& m) {
    std::printf("%-16s %12.3fms %16.3fms %12ldkB\n", name,
                m.open_seconds * 1e3, m.first_query_seconds * 1e3,
                m.rss_delta_kb);
  };
  print_row("copy (TOPLIDX1)", copy);
  print_row("mmap (TOPLIDX2)", mmap);
  print_row("mmap, no verify", mmap_raw);
  std::printf("open speedup (mmap vs copy): %.1fx\n", speedup);

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"benchmark\": \"cold_start\",\n");
  std::fprintf(json,
               "  \"graph\": {\"vertices\": %zu, \"edges\": %zu},\n",
               vertices, num_edges);
  std::fprintf(json, "  \"r_max\": %u,\n", r_max);
  std::fprintf(json, "  \"offline_build_seconds\": %.3f,\n", build_seconds);
  std::fprintf(json, "  \"artifact_bytes\": %llu,\n",
               static_cast<unsigned long long>(FileBytes(artifact_path)));
  std::fprintf(json, "  \"legacy_bytes\": %llu,\n",
               static_cast<unsigned long long>(FileBytes(legacy_path)));
  std::fprintf(json, "  \"paths\": {\n");
  PrintPathJson(json, "copy", copy, true);
  PrintPathJson(json, "mmap", mmap, true);
  PrintPathJson(json, "mmap_unverified", mmap_raw, false);
  std::fprintf(json, "  },\n");
  std::fprintf(json, "  \"open_speedup_mmap_vs_copy\": %.2f,\n", speedup);
  std::fprintf(json, "  \"ok\": %s\n", all_ok ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());

  if (!flags.count("dir")) std::filesystem::remove_all(dir);
  return all_ok ? 0 : 1;
}

// bench_cache — snapshot-epoch result cache: cached vs uncached serving on
// one fixed-seed synthetic graph, plus the correctness witness for the
// cache's exact dirty-region invalidation.
//
// Phase 1 (enforcement): two engines over identical graphs — one serving
// through the result cache, one cold — answer the same interleaved stream of
// TopL/DTopL queries and ApplyUpdate deltas. Every query is issued on both
// engines after every update, so each cached answer (fresh fill, repeat hit,
// or invalidation survivor) is compared field-by-field against an engine
// that can only ever execute. Any divergence exits non-zero: the cache
// changes wall-clock, never answers.
//
// Phase 2 (throughput): closed-loop repeat_heavy runs (high-zipf repeated
// queries, no updates) through loadgen::LoadInjector against each engine;
// the warmup pass populates the cache so the measured run reflects serving
// steady state. Reports ops_per_s for both, the cached run's hit_rate, and
// the cached/uncached speedup.
//
//   bench_cache [--vertices=2000] [--seed=42] [--rmax=2] [--workers=4]
//               [--engine-threads=2] [--seconds=3] [--warmup-seconds=1]
//               [--verify-rounds=4] [--verify-queries=24]
//               [--cache-max-mb=64] [--json=BENCH_cache.json]
//
// The JSON feeds ci/check_bench_regression.py: `speedup` and
// `cached.hit_rate` carry absolute --require floors, both ops_per_s values
// are gated relative to the committed baseline.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "topl.h"

namespace {

using namespace topl;  // NOLINT(build/namespaces)

struct Flags {
  std::size_t vertices = 2000;
  std::uint64_t seed = 42;
  std::uint32_t rmax = 2;
  std::size_t workers = 4;
  std::size_t engine_threads = 2;
  double seconds = 3.0;
  double warmup_seconds = 1.0;
  int verify_rounds = 4;
  int verify_queries = 24;
  std::size_t cache_max_mb = 64;
  std::string json = "BENCH_cache.json";
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (key == "vertices") {
      flags.vertices = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "seed") {
      flags.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "rmax") {
      flags.rmax = static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "workers") {
      flags.workers = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "engine-threads") {
      flags.engine_threads = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "seconds") {
      flags.seconds = std::strtod(value.c_str(), nullptr);
    } else if (key == "warmup-seconds") {
      flags.warmup_seconds = std::strtod(value.c_str(), nullptr);
    } else if (key == "verify-rounds") {
      flags.verify_rounds = std::atoi(value.c_str());
    } else if (key == "verify-queries") {
      flags.verify_queries = std::atoi(value.c_str());
    } else if (key == "cache-max-mb") {
      flags.cache_max_mb = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "json") {
      flags.json = value;
    } else {
      std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
      std::exit(2);
    }
  }
  return flags;
}

bool SameCommunities(const std::vector<CommunityResult>& a,
                     const std::vector<CommunityResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].community.center != b[i].community.center ||
        a[i].community.vertices != b[i].community.vertices ||
        a[i].community.edges != b[i].community.edges ||
        a[i].influence.vertices != b[i].influence.vertices ||
        a[i].influence.cpp != b[i].influence.cpp ||
        a[i].score() != b[i].score()) {
      return false;
    }
  }
  return true;
}

// Builds one engine over a private copy of the fixed-seed graph (Graph is
// non-copyable, so each engine regenerates + re-precomputes it).
std::unique_ptr<Engine> BuildEngine(const Flags& flags, bool cached) {
  SmallWorldOptions gen;
  gen.num_vertices = flags.vertices;
  gen.seed = flags.seed;
  gen.keywords.domain_size = 50;
  gen.keywords.keywords_per_vertex = 3;
  Result<Graph> graph = MakeSmallWorld(gen);
  TOPL_CHECK(graph.ok(), graph.status().ToString().c_str());

  PrecomputeOptions pre_opts;
  pre_opts.r_max = flags.rmax;
  Result<PrecomputedData> pre_built = PrecomputedData::Build(*graph, pre_opts);
  TOPL_CHECK(pre_built.ok(), pre_built.status().ToString().c_str());
  auto pre = std::make_unique<PrecomputedData>(std::move(pre_built).value());
  Result<TreeIndex> tree = TreeIndex::Build(*graph, *pre);
  TOPL_CHECK(tree.ok(), tree.status().ToString().c_str());

  EngineOptions options;
  options.num_threads = flags.engine_threads;
  options.enable_result_cache = cached;
  options.cache_max_bytes = flags.cache_max_mb << 20;
  Result<std::unique_ptr<Engine>> engine =
      Engine::Create(std::move(graph).value(), std::move(pre),
                     std::move(tree).value(), options);
  TOPL_CHECK(engine.ok(), engine.status().ToString().c_str());
  return std::move(engine).value();
}

loadgen::WorkloadSpec RepeatHeavySpec(const Engine& engine,
                                      std::uint64_t seed) {
  Result<loadgen::WorkloadSpec> spec =
      loadgen::WorkloadSpec::Named("repeat_heavy");
  TOPL_CHECK(spec.ok(), spec.status().ToString().c_str());
  spec->seed = seed;
  // Same band clamping bench_serve applies: radius within r_max, theta on
  // the precompute grid (off-grid thetas below θ_min are uncacheable).
  const PrecomputedData& pre = engine.precomputed();
  std::vector<std::uint32_t> radii;
  for (std::uint32_t r : spec->params.radius_values) {
    if (r >= 1 && r <= pre.r_max()) radii.push_back(r);
  }
  if (radii.empty()) radii.push_back(1);
  spec->params.radius_values = std::move(radii);
  std::vector<double> thetas;
  for (double want : spec->params.theta_values) {
    double best = pre.thetas().front();
    for (double have : pre.thetas()) {
      if (std::abs(have - want) < std::abs(best - want)) best = have;
    }
    if (std::find(thetas.begin(), thetas.end(), best) == thetas.end()) {
      thetas.push_back(best);
    }
  }
  spec->params.theta_values = std::move(thetas);
  return std::move(spec).value();
}

// One verification op: issue on both engines, compare every answer field the
// detectors define (communities, truncation, anytime bound). DTopL
// additionally pins selection order and diversity score.
bool VerifyOne(Engine* cached, Engine* uncached, const Query& query,
               bool diversified) {
  if (diversified) {
    Result<DTopLResult> got = cached->SearchDiversified(query, DTopLOptions());
    Result<DTopLResult> want =
        uncached->SearchDiversified(query, DTopLOptions());
    if (got.ok() != want.ok()) return false;
    if (!got.ok()) return true;  // both rejected: identical behavior
    return SameCommunities(got->communities, want->communities) &&
           got->diversity_score == want->diversity_score &&
           got->truncated == want->truncated &&
           got->score_upper_bound == want->score_upper_bound;
  }
  Result<TopLResult> got = cached->Search(query);
  Result<TopLResult> want = uncached->Search(query);
  if (got.ok() != want.ok()) return false;
  if (!got.ok()) return true;
  return SameCommunities(got->communities, want->communities) &&
         got->truncated == want->truncated &&
         got->score_upper_bound == want->score_upper_bound;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);

  std::printf("== result cache: cached vs uncached serving, invalidation "
              "exactness witness ==\n");
  Timer offline;
  std::unique_ptr<Engine> cached = BuildEngine(flags, /*cached=*/true);
  std::unique_ptr<Engine> uncached = BuildEngine(flags, /*cached=*/false);
  std::printf("graph: %zu vertices, %zu edges; offline x2 %.2fs\n",
              cached->graph().NumVertices(), cached->graph().NumEdges(),
              offline.ElapsedSeconds());

  const loadgen::WorkloadSpec spec = RepeatHeavySpec(*cached, flags.seed);
  Result<loadgen::WorkloadGenerator> generator =
      loadgen::WorkloadGenerator::Create(spec, cached->graph());
  TOPL_CHECK(generator.ok(), generator.status().ToString().c_str());

  // -------------------------------------------------------------------
  // Phase 1: interleaved query/update stream, byte-identical answers.
  // -------------------------------------------------------------------
  std::uint64_t verified_ops = 0;
  std::uint64_t mismatches = 0;
  std::vector<std::pair<Query, bool>> issued;  // (query, diversified)
  Rng delta_rng(flags.seed + 7);
  RandomDeltaOptions delta_options;
  delta_options.keyword_domain = 50;
  std::uint64_t op_index = 0;
  for (int round = 0; round < flags.verify_rounds; ++round) {
    // Fresh queries this round: fills on the cached engine, plus repeat
    // traffic over everything issued so far (cache hits).
    for (int qi = 0; qi < flags.verify_queries; ++qi) {
      loadgen::Operation op = generator->At(op_index++);
      while (op.kind == loadgen::OpKind::kUpdate) {  // repeat_heavy has none
        op = generator->At(op_index++);
      }
      const bool diversified = op.kind == loadgen::OpKind::kDTopL;
      if (!VerifyOne(cached.get(), uncached.get(), op.query, diversified)) {
        ++mismatches;
      }
      ++verified_ops;
      issued.emplace_back(op.query, diversified);
    }

    // One update, applied identically to both engines (the graphs are
    // identical, so one materialized delta is valid for both).
    const GraphDelta delta =
        MakeRandomDelta(*cached->snapshot()->graph, delta_rng, delta_options);
    if (!delta.empty()) {
      Result<RebuildScope> a = cached->ApplyUpdate(delta);
      Result<RebuildScope> b = uncached->ApplyUpdate(delta);
      TOPL_CHECK(a.ok() && b.ok(), "ApplyUpdate failed");
    }

    // Re-issue everything ever cached: survivors of the dirty-region scan
    // must still match a cache-free engine on the new snapshot.
    for (const auto& [query, diversified] : issued) {
      if (!VerifyOne(cached.get(), uncached.get(), query, diversified)) {
        ++mismatches;
      }
      ++verified_ops;
    }
  }
  const EngineStats verify_stats = cached->Stats();
  std::printf("verify: %llu ops across %d update rounds, %llu mismatches "
              "(%llu hits, %llu misses, %llu invalidated)\n",
              static_cast<unsigned long long>(verified_ops),
              flags.verify_rounds,
              static_cast<unsigned long long>(mismatches),
              static_cast<unsigned long long>(verify_stats.cache_hits),
              static_cast<unsigned long long>(verify_stats.cache_misses),
              static_cast<unsigned long long>(verify_stats.cache_invalidated));
  if (mismatches != 0) {
    std::fprintf(stderr, "MISMATCH: cached answers diverge from uncached\n");
    return 1;
  }

  // -------------------------------------------------------------------
  // Phase 2: closed-loop repeat_heavy throughput, cached vs uncached.
  // -------------------------------------------------------------------
  auto run = [&](Engine* engine) -> loadgen::LoadReport {
    loadgen::InjectorOptions inject;
    inject.num_workers = flags.workers;
    inject.duration_seconds = flags.seconds;
    if (flags.warmup_seconds > 0.0) {
      loadgen::InjectorOptions warmup = inject;
      warmup.duration_seconds = flags.warmup_seconds;
      Result<loadgen::LoadReport> ignored =
          loadgen::LoadInjector(engine, *generator, warmup).Run();
      TOPL_CHECK(ignored.ok(), ignored.status().ToString().c_str());
    }
    Result<loadgen::LoadReport> report =
        loadgen::LoadInjector(engine, *generator, inject).Run();
    TOPL_CHECK(report.ok(), report.status().ToString().c_str());
    return std::move(report).value();
  };

  const loadgen::LoadReport base = run(uncached.get());
  const loadgen::LoadReport fast = run(cached.get());
  const double speedup =
      base.ops_per_s > 0.0 ? fast.ops_per_s / base.ops_per_s : 0.0;

  std::printf("uncached: %.1f ops/s (p99 %.3fms)\n", base.ops_per_s,
              base.overall.p99_ms);
  std::printf("cached:   %.1f ops/s (p99 %.3fms, %.1f%% hit rate)\n",
              fast.ops_per_s, fast.overall.p99_ms, 100.0 * fast.hit_rate);
  std::printf("speedup:  %.2fx\n", speedup);

  std::FILE* json = std::fopen(flags.json.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", flags.json.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"benchmark\": \"cache\",\n"
               "  \"verified_ops\": %llu,\n"
               "  \"mismatches\": %llu,\n"
               "  \"uncached\": {\"ops_per_s\": %.3f, \"p99_ms\": %.4f,"
               " \"count\": %llu},\n"
               "  \"cached\": {\"ops_per_s\": %.3f, \"p99_ms\": %.4f,"
               " \"count\": %llu, \"hit_rate\": %.4f},\n"
               "  \"speedup\": %.4f\n"
               "}\n",
               static_cast<unsigned long long>(verified_ops),
               static_cast<unsigned long long>(mismatches), base.ops_per_s,
               base.overall.p99_ms,
               static_cast<unsigned long long>(base.ops_total),
               fast.ops_per_s, fast.overall.p99_ms,
               static_cast<unsigned long long>(fast.ops_total),
               fast.hit_rate, speedup);
  std::fclose(json);
  std::printf("wrote %s\n", flags.json.c_str());
  return 0;
}

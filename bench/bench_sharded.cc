// bench_sharded — share-nothing sharded serving: one engine over the whole
// graph vs a ShardedEngine (one engine per shard, commutative cross-shard
// top-L merge) replaying the same workload, plus the correctness witness
// that sharded answers are byte-identical to the single engine's.
//
// Phase 1 (enforcement): the single engine and the sharded deployment answer
// the same query set before and after interleaved ApplyUpdate deltas; every
// TopL/DTopL answer is compared field-by-field. Any divergence exits
// non-zero: sharding changes wall-clock, never answers. The per-shard
// routed-op counts from this deterministic phase give the reported load
// imbalance (max/mean).
//
// Phase 2 (throughput): closed-loop mixed runs (TopL/DTopL/progressive
// queries + random update deltas) through loadgen::LoadInjector against each
// deployment; reports ops_per_s for both and their ratio as
// `sharded_speedup`. The sharded side wins on the update path — each shard
// recomputes only the *owned, growth-dirty* precompute rows and patches only
// its owned-subset tree, and the per-shard passes run in parallel — while
// queries fan out only to the shards whose tree-root aggregates admit
// candidates.
//
//   bench_sharded [--vertices=100000] [--seed=42] [--rmax=2] [--shards=8]
//                 [--workers=8] [--seconds=4] [--warmup-seconds=0.5]
//                 [--verify-rounds=2] [--verify-queries=12]
//                 [--json=BENCH_sharded.json]
//
// The JSON feeds ci/check_bench_regression.py: `sharded_speedup` carries an
// absolute --require floor (machine-relative ratios are not compared against
// the baseline), both ops_per_s values are gated relative to the committed
// baseline, and any mismatch fails the run itself.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "topl.h"

namespace {

using namespace topl;  // NOLINT(build/namespaces)

struct Flags {
  std::size_t vertices = 100000;
  std::uint64_t seed = 42;
  std::uint32_t rmax = 2;
  std::uint32_t shards = 8;
  std::size_t workers = 8;
  double seconds = 4.0;
  double warmup_seconds = 0.5;
  int verify_rounds = 2;
  int verify_queries = 12;
  std::string json = "BENCH_sharded.json";
  std::string mix = "mixed";
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (key == "vertices") {
      flags.vertices = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "seed") {
      flags.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "rmax") {
      flags.rmax = static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "shards") {
      flags.shards = static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "workers") {
      flags.workers = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "seconds") {
      flags.seconds = std::strtod(value.c_str(), nullptr);
    } else if (key == "warmup-seconds") {
      flags.warmup_seconds = std::strtod(value.c_str(), nullptr);
    } else if (key == "verify-rounds") {
      flags.verify_rounds = std::atoi(value.c_str());
    } else if (key == "verify-queries") {
      flags.verify_queries = std::atoi(value.c_str());
    } else if (key == "json") {
      flags.json = value;
    } else if (key == "mix") {
      flags.mix = value;
    } else {
      std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
      std::exit(2);
    }
  }
  return flags;
}

bool SameCommunities(const std::vector<CommunityResult>& a,
                     const std::vector<CommunityResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].community.center != b[i].community.center ||
        a[i].community.vertices != b[i].community.vertices ||
        a[i].community.edges != b[i].community.edges ||
        a[i].influence.vertices != b[i].influence.vertices ||
        a[i].influence.cpp != b[i].influence.cpp ||
        a[i].score() != b[i].score()) {
      return false;
    }
  }
  return true;
}

Graph MakeBenchGraph(const Flags& flags) {
  SmallWorldOptions gen;
  gen.num_vertices = flags.vertices;
  gen.seed = flags.seed;
  gen.keywords.domain_size = 50;
  gen.keywords.keywords_per_vertex = 3;
  Result<Graph> graph = MakeSmallWorld(gen);
  TOPL_CHECK(graph.ok(), graph.status().ToString().c_str());
  return std::move(graph).value();
}

// The mixed spec, clamped to the engines' precompute band (same clamping
// bench_serve applies: radius within r_max, thetas snapped to the grid).
loadgen::WorkloadSpec MixedSpec(const PrecomputedData& pre,
                                std::uint64_t seed, const std::string& mix) {
  Result<loadgen::WorkloadSpec> spec = loadgen::WorkloadSpec::Named(mix);
  TOPL_CHECK(spec.ok(), spec.status().ToString().c_str());
  spec->seed = seed;
  std::vector<std::uint32_t> radii;
  for (std::uint32_t r : spec->params.radius_values) {
    if (r >= 1 && r <= pre.r_max()) radii.push_back(r);
  }
  if (radii.empty()) radii.push_back(1);
  spec->params.radius_values = std::move(radii);
  std::vector<double> thetas;
  for (double want : spec->params.theta_values) {
    double best = pre.thetas().front();
    for (double have : pre.thetas()) {
      if (std::abs(have - want) < std::abs(best - want)) best = have;
    }
    if (std::find(thetas.begin(), thetas.end(), best) == thetas.end()) {
      thetas.push_back(best);
    }
  }
  spec->params.theta_values = std::move(thetas);
  return std::move(spec).value();
}

// One verification op on both deployments; sharded must match the single
// engine field-by-field.
bool VerifyOne(ShardedEngine* sharded, Engine* single, const Query& query,
               bool diversified) {
  if (diversified) {
    Result<DTopLResult> got = sharded->SearchDiversified(query, DTopLOptions());
    Result<DTopLResult> want = single->SearchDiversified(query, DTopLOptions());
    if (got.ok() != want.ok()) return false;
    if (!got.ok()) return true;  // both rejected: identical behavior
    return SameCommunities(got->communities, want->communities) &&
           got->diversity_score == want->diversity_score &&
           got->truncated == want->truncated &&
           got->score_upper_bound == want->score_upper_bound;
  }
  Result<TopLResult> got = sharded->Search(query);
  Result<TopLResult> want = single->Search(query);
  if (got.ok() != want.ok()) return false;
  if (!got.ok()) return true;
  return SameCommunities(got->communities, want->communities) &&
         got->truncated == want->truncated &&
         got->score_upper_bound == want->score_upper_bound;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);

  std::printf("== sharded serving: 1 engine vs %u shards, divergence "
              "witness + closed-loop mixed throughput ==\n", flags.shards);

  PrecomputeOptions pre_opts;
  pre_opts.r_max = flags.rmax;

  Timer offline;
  Graph base = MakeBenchGraph(flags);
  EngineOptions single_options;
  single_options.precompute = pre_opts;  // num_threads = hardware default
  Result<std::unique_ptr<Engine>> single =
      Engine::FromGraph(base.Clone(), single_options);
  TOPL_CHECK(single.ok(), single.status().ToString().c_str());

  ShardedEngineOptions sharded_options;
  sharded_options.num_shards = flags.shards;
  sharded_options.engine.precompute = pre_opts;
  sharded_options.engine.num_threads = 1;  // shards are the parallelism
  Result<std::unique_ptr<ShardedEngine>> sharded =
      ShardedEngine::FromGraph(std::move(base), sharded_options);
  TOPL_CHECK(sharded.ok(), sharded.status().ToString().c_str());
  std::printf("graph: %zu vertices, %zu edges; offline x2 %.2fs\n",
              (*single)->graph().NumVertices(), (*single)->graph().NumEdges(),
              offline.ElapsedSeconds());

  const loadgen::WorkloadSpec spec =
      MixedSpec((*single)->precomputed(), flags.seed, flags.mix);
  Result<loadgen::WorkloadGenerator> generator =
      loadgen::WorkloadGenerator::Create(spec, (*single)->graph());
  TOPL_CHECK(generator.ok(), generator.status().ToString().c_str());

  // -------------------------------------------------------------------
  // Phase 1: byte-identical answers, before and after update deltas.
  // -------------------------------------------------------------------
  std::uint64_t verified_ops = 0;
  std::uint64_t mismatches = 0;
  std::vector<std::pair<Query, bool>> issued;  // (query, diversified)
  Rng delta_rng(flags.seed + 7);
  RandomDeltaOptions delta_options;
  delta_options.keyword_domain = 50;
  std::uint64_t op_index = 0;
  for (int round = 0; round < flags.verify_rounds; ++round) {
    for (int qi = 0; qi < flags.verify_queries; ++qi) {
      loadgen::Operation op = generator->At(op_index++);
      while (op.kind == loadgen::OpKind::kUpdate) {
        op = generator->At(op_index++);
      }
      const bool diversified = op.kind == loadgen::OpKind::kDTopL;
      if (!VerifyOne(sharded->get(), single->get(), op.query, diversified)) {
        ++mismatches;
      }
      ++verified_ops;
      issued.emplace_back(op.query, diversified);
    }

    // One update, applied identically to both deployments, including the
    // boundary case: random deltas routinely delete and insert edges whose
    // endpoints are owned by different shards.
    const GraphDelta delta = MakeRandomDelta(*(*single)->snapshot()->graph,
                                             delta_rng, delta_options);
    if (!delta.empty()) {
      Result<RebuildScope> a = (*single)->ApplyUpdate(delta);
      Result<RebuildScope> b = (*sharded)->ApplyUpdate(delta);
      TOPL_CHECK(a.ok() && b.ok(), "ApplyUpdate failed");
    }

    // Everything issued so far must still match on the new snapshots.
    for (const auto& [query, diversified] : issued) {
      if (!VerifyOne(sharded->get(), single->get(), query, diversified)) {
        ++mismatches;
      }
      ++verified_ops;
    }
  }

  // Deterministic routing imbalance over the verification stream.
  const std::vector<std::uint64_t> routed = (*sharded)->ShardOps();
  std::uint64_t routed_total = 0;
  std::uint64_t routed_max = 0;
  for (std::uint64_t ops : routed) {
    routed_total += ops;
    routed_max = std::max(routed_max, ops);
  }
  const double imbalance =
      routed_total > 0 && !routed.empty()
          ? static_cast<double>(routed_max) /
                (static_cast<double>(routed_total) /
                 static_cast<double>(routed.size()))
          : 0.0;

  std::printf("verify: %llu ops across %d update rounds, %llu mismatches; "
              "routing imbalance %.3f (max/mean)\n",
              static_cast<unsigned long long>(verified_ops),
              flags.verify_rounds,
              static_cast<unsigned long long>(mismatches), imbalance);
  if (mismatches != 0) {
    std::fprintf(stderr,
                 "MISMATCH: sharded answers diverge from the single engine\n");
    return 1;
  }

  // -------------------------------------------------------------------
  // Phase 2: closed-loop mixed throughput, single vs sharded.
  // -------------------------------------------------------------------
  auto run = [&](loadgen::ServingTarget* target) -> loadgen::LoadReport {
    loadgen::InjectorOptions inject;
    inject.num_workers = flags.workers;
    inject.duration_seconds = flags.seconds;
    if (flags.warmup_seconds > 0.0) {
      loadgen::InjectorOptions warmup = inject;
      warmup.duration_seconds = flags.warmup_seconds;
      Result<loadgen::LoadReport> ignored =
          loadgen::LoadInjector(target, *generator, warmup).Run();
      TOPL_CHECK(ignored.ok(), ignored.status().ToString().c_str());
    }
    Result<loadgen::LoadReport> report =
        loadgen::LoadInjector(target, *generator, inject).Run();
    TOPL_CHECK(report.ok(), report.status().ToString().c_str());
    TOPL_CHECK(report->failed == 0, "operations failed under load");
    return std::move(report).value();
  };

  loadgen::EngineTarget single_target(single->get());
  loadgen::ShardedTarget sharded_target(sharded->get());
  const loadgen::LoadReport base_report = run(&single_target);
  const loadgen::LoadReport sharded_report = run(&sharded_target);
  const double speedup = base_report.ops_per_s > 0.0
                             ? sharded_report.ops_per_s / base_report.ops_per_s
                             : 0.0;

  std::printf("-- single --\n%s", base_report.ToString().c_str());
  std::printf("-- sharded --\n%s", sharded_report.ToString().c_str());
  std::printf("sharded_speedup: %.2fx at %u shards\n", speedup, flags.shards);

  std::FILE* json = std::fopen(flags.json.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", flags.json.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"benchmark\": \"sharded\",\n"
               "  \"shards\": %u,\n"
               "  \"verified_ops\": %llu,\n"
               "  \"mismatches\": %llu,\n"
               "  \"shard_imbalance\": %.4f,\n"
               "  \"single\": {\"ops_per_s\": %.3f, \"p99_ms\": %.4f,"
               " \"count\": %llu},\n"
               "  \"sharded\": {\"ops_per_s\": %.3f, \"p99_ms\": %.4f,"
               " \"count\": %llu},\n"
               "  \"sharded_speedup\": %.4f\n"
               "}\n",
               flags.shards, static_cast<unsigned long long>(verified_ops),
               static_cast<unsigned long long>(mismatches), imbalance,
               base_report.ops_per_s, base_report.overall.p99_ms,
               static_cast<unsigned long long>(base_report.ops_total),
               sharded_report.ops_per_s, sharded_report.overall.p99_ms,
               static_cast<unsigned long long>(sharded_report.ops_total),
               speedup);
  std::fclose(json);
  std::printf("wrote %s\n", flags.json.c_str());
  return 0;
}

// Figure 4: ablation of the pruning rules on the five datasets at default
// parameters. Three cumulative combinations, as in the paper:
//   (1) keyword pruning only,
//   (2) keyword + support pruning,
//   (3) keyword + support + influential-score pruning.
// Fig. 4(a) is the number of pruned candidate communities (counter
// "pruned_candidates", in units of center vertices); Fig. 4(b) is the wall
// clock time (the benchmark's timing column).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace topl;         // NOLINT(build/namespaces)
using namespace topl::bench;  // NOLINT(build/namespaces)

struct Combo {
  const char* name;
  QueryOptions options;
};

std::vector<Combo> Combos() {
  QueryOptions keyword_only;
  keyword_only.use_keyword_pruning = true;
  keyword_only.use_support_pruning = false;
  keyword_only.use_score_pruning = false;
  QueryOptions keyword_support = keyword_only;
  keyword_support.use_support_pruning = true;
  QueryOptions all = keyword_support;
  all.use_score_pruning = true;
  return {{"keyword", keyword_only},
          {"keyword+support", keyword_support},
          {"keyword+support+score", all}};
}

void BM_Ablation(benchmark::State& state, DatasetConfig config,
                 QueryOptions options) {
  const Workload& w = GetWorkload(config);
  TopLDetector detector(w.graph, *w.pre, w.tree);
  const Query query = DefaultQueryFor(w);
  // Counters are merged across iterations with QueryStats::operator+= and
  // reported as per-iteration averages; the query is deterministic, so the
  // averages equal any single iteration's counters.
  QueryStats total;
  for (auto _ : state) {
    Result<TopLResult> result = detector.Search(query, options);
    TOPL_CHECK(result.ok(), result.status().ToString().c_str());
    total += result->stats;
    benchmark::DoNotOptimize(result->communities.data());
  }
  const auto avg = [](std::uint64_t value) {
    return benchmark::Counter(static_cast<double>(value),
                              benchmark::Counter::kAvgIterations);
  };
  state.counters["pruned_candidates"] = avg(total.TotalPruned());
  state.counters["pruned_keyword"] = avg(total.pruned_keyword);
  state.counters["pruned_support"] = avg(total.pruned_support);
  state.counters["pruned_score"] = avg(total.pruned_score + total.pruned_termination);
  state.counters["refined"] = avg(total.candidates_refined);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Figure 4: pruning ablation (a: pruned candidates, b: wall "
              "clock time) ==\n");
  for (DatasetKind kind : {DatasetKind::kDblp, DatasetKind::kAmazon,
                           DatasetKind::kUni, DatasetKind::kGau,
                           DatasetKind::kZipf}) {
    DatasetConfig config;
    config.kind = kind;
    config.num_vertices = DefaultVertices();
    for (const Combo& combo : Combos()) {
      benchmark::RegisterBenchmark(
        (std::string("fig4/") + DatasetName(kind) + "/" + combo.name).c_str(),
          [config, combo](benchmark::State& s) {
            BM_Ablation(s, config, combo.options);
          })
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

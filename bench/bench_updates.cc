// bench_updates — incremental index maintenance (IndexUpdater) vs full
// offline rebuild on a stream of random graph deltas, on one fixed-seed
// synthetic graph.
//
// After every delta both pipelines answer the same TopL and DTopL queries;
// any field-level mismatch (centers, member/edge lists, influenced vertices,
// cpp values, scores) makes the benchmark exit non-zero — like
// bench_parallel_query, it doubles as the enforcement point for the
// update contract: incremental maintenance changes wall-clock, never
// answers.
//
//   bench_updates [--vertices=8000] [--seed=42] [--rmax=2] [--updates=6]
//                 [--ops=4] [--queries=4] [--json=BENCH_updates.json]
//
// Emits a human summary on stdout and a machine-readable JSON file
// (incremental vs rebuild latency, updates/s, speedup, rebuild-avoided
// ratio) consumed by the CI regression gate.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "topl.h"

namespace {

using namespace topl;  // NOLINT(build/namespaces)

struct Flags {
  std::size_t vertices = 8000;
  std::uint64_t seed = 42;
  std::uint32_t rmax = 2;
  int updates = 6;
  int ops = 4;
  int queries = 4;
  std::string json = "BENCH_updates.json";
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (key == "vertices") {
      flags.vertices = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "seed") {
      flags.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "rmax") {
      flags.rmax = static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "updates") {
      flags.updates = std::atoi(value.c_str());
    } else if (key == "ops") {
      flags.ops = std::atoi(value.c_str());
    } else if (key == "queries") {
      flags.queries = std::atoi(value.c_str());
    } else if (key == "json") {
      flags.json = value;
    } else {
      std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
      std::exit(2);
    }
  }
  return flags;
}

// Population-weighted query keywords, deterministic per seed.
std::vector<KeywordId> QueryKeywords(const Graph& g, std::uint32_t count,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<KeywordId> out;
  for (int guard = 0; out.size() < count && guard < 100000; ++guard) {
    const VertexId v = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    const auto kws = g.Keywords(v);
    if (kws.empty()) continue;
    const KeywordId w = kws[rng.NextBounded(kws.size())];
    if (std::find(out.begin(), out.end(), w) == out.end()) out.push_back(w);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool SameCommunities(const std::vector<CommunityResult>& a,
                     const std::vector<CommunityResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].community.center != b[i].community.center ||
        a[i].community.vertices != b[i].community.vertices ||
        a[i].community.edges != b[i].community.edges ||
        a[i].influence.vertices != b[i].influence.vertices ||
        a[i].influence.cpp != b[i].influence.cpp ||
        a[i].score() != b[i].score()) {
      return false;
    }
  }
  return true;
}

struct Offline {
  std::unique_ptr<PrecomputedData> pre;
  TreeIndex tree;
};

Offline BuildOffline(const Graph& g, const PrecomputeOptions& options) {
  Offline out;
  Result<PrecomputedData> pre = PrecomputedData::Build(g, options);
  TOPL_CHECK(pre.ok(), pre.status().ToString().c_str());
  out.pre = std::make_unique<PrecomputedData>(std::move(pre).value());
  Result<TreeIndex> tree = TreeIndex::Build(g, *out.pre);
  TOPL_CHECK(tree.ok(), tree.status().ToString().c_str());
  out.tree = std::move(tree).value();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);

  std::printf("== dynamic updates: incremental maintenance (IndexUpdater) vs "
              "full offline rebuild ==\n");
  SmallWorldOptions gen;
  gen.num_vertices = flags.vertices;
  gen.seed = flags.seed;
  gen.keywords.domain_size = 50;
  gen.keywords.keywords_per_vertex = 3;
  Result<Graph> built = MakeSmallWorld(gen);
  TOPL_CHECK(built.ok(), built.status().ToString().c_str());
  Graph graph = std::move(built).value();

  PrecomputeOptions pre_opts;
  pre_opts.r_max = flags.rmax;

  Timer offline_timer;
  Offline incremental = BuildOffline(graph, pre_opts);
  const double offline_seconds = offline_timer.ElapsedSeconds();
  std::printf("graph: %zu vertices, %zu edges; initial offline phase %.2fs\n",
              graph.NumVertices(), graph.NumEdges(), offline_seconds);

  ThreadPool pool(0);
  Rng rng(flags.seed + 1);
  // The same update distribution the dynamic_update_test sweep enforces.
  RandomDeltaOptions delta_options;
  delta_options.num_ops = flags.ops;
  delta_options.keyword_domain = gen.keywords.domain_size;
  bool all_exact = true;
  double incremental_seconds = 0.0;
  double rebuild_seconds = 0.0;
  std::uint64_t dirty_total = 0;
  std::uint64_t patched_total = 0;

  std::printf("%8s %10s %12s %12s %9s %10s %8s\n", "update", "ops",
              "incr(s)", "rebuild(s)", "speedup", "dirty", "exact");
  for (int u = 0; u < flags.updates; ++u) {
    const GraphDelta delta = MakeRandomDelta(graph, rng, delta_options);

    Timer incr_timer;
    Result<UpdatedIndex> updated = IndexUpdater::Apply(
        graph, *incremental.pre, incremental.tree, delta, &pool);
    const double incr = incr_timer.ElapsedSeconds();
    TOPL_CHECK(updated.ok(), updated.status().ToString().c_str());
    graph = std::move(updated->graph);
    incremental.pre = std::move(updated->pre);
    incremental.tree = std::move(updated->tree);
    dirty_total += updated->scope.dirty_centers;
    patched_total += updated->scope.tree_nodes_patched;

    Timer rebuild_timer;
    Offline rebuilt = BuildOffline(graph, pre_opts);
    const double rebuild = rebuild_timer.ElapsedSeconds();

    // Enforcement: both pipelines must answer identically, TopL and DTopL.
    bool exact = true;
    TopLDetector incr_topl(graph, *incremental.pre, incremental.tree);
    TopLDetector full_topl(graph, *rebuilt.pre, rebuilt.tree);
    DTopLDetector incr_dtopl(graph, *incremental.pre, incremental.tree);
    DTopLDetector full_dtopl(graph, *rebuilt.pre, rebuilt.tree);
    for (int qi = 0; qi < flags.queries; ++qi) {
      Query q;
      q.keywords = QueryKeywords(graph, 5, flags.seed + 100 * u + qi);
      q.k = 4;
      q.radius = std::min<std::uint32_t>(2, flags.rmax);
      q.theta = 0.2;
      q.top_l = 5;
      Result<TopLResult> got = incr_topl.Search(q);
      Result<TopLResult> want = full_topl.Search(q);
      TOPL_CHECK(got.ok() && want.ok(), "query failed");
      if (!SameCommunities(got->communities, want->communities)) exact = false;
      if (qi == 0) {
        Result<DTopLResult> got_d = incr_dtopl.Search(q);
        Result<DTopLResult> want_d = full_dtopl.Search(q);
        TOPL_CHECK(got_d.ok() && want_d.ok(), "dtopl query failed");
        if (!SameCommunities(got_d->communities, want_d->communities) ||
            got_d->diversity_score != want_d->diversity_score) {
          exact = false;
        }
      }
    }
    if (!exact) {
      all_exact = false;
      std::fprintf(stderr,
                   "MISMATCH: update %d answers diverge from full rebuild\n", u);
    }

    incremental_seconds += incr;
    rebuild_seconds += rebuild;
    std::printf("%8d %10zu %12.4f %12.4f %8.2fx %6zu/%zu %8s\n", u,
                delta.NumOps(), incr, rebuild, rebuild / incr,
                updated->scope.dirty_centers, updated->scope.num_vertices,
                exact ? "yes" : "NO");
  }

  const double speedup = incremental_seconds > 0.0
                             ? rebuild_seconds / incremental_seconds
                             : 0.0;
  const double avoided =
      1.0 - static_cast<double>(dirty_total) /
                (static_cast<double>(flags.updates) *
                 static_cast<double>(graph.NumVertices()));
  std::printf("total: incremental %.3fs, rebuild %.3fs, speedup %.2fx, "
              "rebuild avoided %.1f%%\n",
              incremental_seconds, rebuild_seconds, speedup, avoided * 100.0);

  std::FILE* json = std::fopen(flags.json.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", flags.json.c_str());
    return 1;
  }
  std::fprintf(
      json,
      "{\n"
      "  \"benchmark\": \"updates\",\n"
      "  \"vertices\": %zu,\n"
      "  \"seed\": %llu,\n"
      "  \"num_updates\": %d,\n"
      "  \"ops_per_update\": %d,\n"
      "  \"exact_match\": %s,\n"
      "  \"initial_offline_seconds\": %.6f,\n"
      "  \"incremental\": {\"total_seconds\": %.6f, \"updates_per_s\": %.3f,\n"
      "                  \"dirty_centers\": %llu, \"tree_nodes_patched\": %llu},\n"
      "  \"rebuild\": {\"total_seconds\": %.6f, \"updates_per_s\": %.3f},\n"
      "  \"speedup\": %.3f,\n"
      "  \"rebuild_avoided_ratio\": %.4f\n"
      "}\n",
      flags.vertices, static_cast<unsigned long long>(flags.seed),
      flags.updates, flags.ops, all_exact ? "true" : "false", offline_seconds,
      incremental_seconds,
      incremental_seconds > 0.0 ? flags.updates / incremental_seconds : 0.0,
      static_cast<unsigned long long>(dirty_total),
      static_cast<unsigned long long>(patched_total), rebuild_seconds,
      rebuild_seconds > 0.0 ? flags.updates / rebuild_seconds : 0.0, speedup,
      avoided);
  std::fclose(json);
  std::printf("wrote %s\n", flags.json.c_str());
  return all_exact ? 0 : 1;
}

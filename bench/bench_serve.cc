// bench_serve — production workload harness: hammers one live topl::Engine
// with a named mixed workload (TopL / DTopL / progressive / ApplyUpdate) and
// reports load-dependent tail latency.
//
//   bench_serve [--vertices=8000] [--seed=42] [--rmax=2] [--mix=mixed]
//               [--workers=8] [--engine-threads=2] [--qps=0] [--seconds=5]
//               [--ops=0] [--warmup-seconds=0.5] [--popularity=zipf|uniform]
//               [--zipf=0] [--signatures=0] [--deadline-ms=0]
//               [--cache=0|1] [--cache-max-mb=64]
//               [--slo-qps=0] [--slo-p99-ms=0] [--slo-p999-ms=0]
//               [--json=BENCH_serve.json]
//
// --zipf=0 / --signatures=0 keep the named mix's own values (repeat_heavy
// narrows both; the other mixes use the spec defaults 0.99 / 64).
// --cache=1 serves through the snapshot-epoch result cache; the JSON then
// carries the measured-run hit_rate.
//
// --qps=0 runs closed-loop (each of --workers threads fires its next
// operation as soon as the previous completes: the capacity ceiling);
// --qps>0 runs open-loop (arrivals scheduled at the target rate on the
// monotonic clock, latency measured from *intended* arrival so coordinated
// omission cannot hide stalls; the achieved-vs-target gap is reported).
//
// The operation stream is a pure function of (--seed, graph): two runs with
// the same flags execute the identical stream regardless of worker count;
// the JSON carries a stream_digest over the first ops as the witness.
//
// Exits non-zero when any operation failed or any --slo-* threshold (or the
// implicit zero-failures SLO) is breached, so CI can gate sustained
// throughput and tail latency directly on this binary plus
// ci/check_bench_regression.py against the committed baseline.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "topl.h"

namespace {

using namespace topl;  // NOLINT(build/namespaces)

struct Flags {
  std::size_t vertices = 8000;
  std::uint64_t seed = 42;
  std::uint32_t rmax = 2;
  std::string mix = "mixed";
  std::size_t workers = 8;
  std::size_t engine_threads = 2;
  double qps = 0.0;
  double seconds = 5.0;
  std::uint64_t ops = 0;
  double warmup_seconds = 0.5;
  std::string popularity = "zipf";
  double zipf = 0.0;           // 0 = keep the named mix's skew
  std::uint32_t signatures = 0;  // 0 = keep the named mix's pool size
  double deadline_ms = 0.0;
  bool cache = false;
  std::size_t cache_max_mb = 64;
  double slo_qps = 0.0;
  double slo_p99_ms = 0.0;
  double slo_p999_ms = 0.0;
  std::string json = "BENCH_serve.json";
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (key == "vertices") {
      flags.vertices = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "seed") {
      flags.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "rmax") {
      flags.rmax = static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "mix") {
      flags.mix = value;
    } else if (key == "workers") {
      flags.workers = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "engine-threads") {
      flags.engine_threads = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "qps") {
      flags.qps = std::strtod(value.c_str(), nullptr);
    } else if (key == "seconds") {
      flags.seconds = std::strtod(value.c_str(), nullptr);
    } else if (key == "ops") {
      flags.ops = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "warmup-seconds") {
      flags.warmup_seconds = std::strtod(value.c_str(), nullptr);
    } else if (key == "popularity") {
      flags.popularity = value;
    } else if (key == "zipf") {
      flags.zipf = std::strtod(value.c_str(), nullptr);
    } else if (key == "signatures") {
      flags.signatures = static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "deadline-ms") {
      flags.deadline_ms = std::strtod(value.c_str(), nullptr);
    } else if (key == "cache") {
      flags.cache = value != "0" && value != "false";
    } else if (key == "cache-max-mb") {
      flags.cache_max_mb = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "slo-qps") {
      flags.slo_qps = std::strtod(value.c_str(), nullptr);
    } else if (key == "slo-p99-ms") {
      flags.slo_p99_ms = std::strtod(value.c_str(), nullptr);
    } else if (key == "slo-p999-ms") {
      flags.slo_p999_ms = std::strtod(value.c_str(), nullptr);
    } else if (key == "json") {
      flags.json = value;
    } else {
      std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
      std::exit(2);
    }
  }
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);

  std::printf("== serve: %s workload against one live engine ==\n",
              flags.mix.c_str());
  SmallWorldOptions gen;
  gen.num_vertices = flags.vertices;
  gen.seed = flags.seed;
  gen.keywords.domain_size = 50;
  gen.keywords.keywords_per_vertex = 3;
  Result<Graph> graph = MakeSmallWorld(gen);
  TOPL_CHECK(graph.ok(), graph.status().ToString().c_str());

  Timer offline;
  PrecomputeOptions pre_opts;
  pre_opts.r_max = flags.rmax;
  Result<PrecomputedData> pre_built = PrecomputedData::Build(*graph, pre_opts);
  TOPL_CHECK(pre_built.ok(), pre_built.status().ToString().c_str());
  auto pre = std::make_unique<PrecomputedData>(std::move(pre_built).value());
  Result<TreeIndex> tree = TreeIndex::Build(*graph, *pre);
  TOPL_CHECK(tree.ok(), tree.status().ToString().c_str());
  std::printf("graph: %zu vertices, %zu edges; offline %.2fs\n",
              graph->NumVertices(), graph->NumEdges(), offline.ElapsedSeconds());

  EngineOptions engine_opts;
  engine_opts.num_threads = flags.engine_threads;
  engine_opts.enable_result_cache = flags.cache;
  engine_opts.cache_max_bytes = flags.cache_max_mb << 20;
  Result<std::unique_ptr<Engine>> engine =
      Engine::Create(std::move(graph).value(), std::move(pre),
                     std::move(tree).value(), engine_opts);
  TOPL_CHECK(engine.ok(), engine.status().ToString().c_str());

  Result<loadgen::WorkloadSpec> spec = loadgen::WorkloadSpec::Named(flags.mix);
  TOPL_CHECK(spec.ok(), spec.status().ToString().c_str());
  spec->seed = flags.seed;
  if (flags.signatures != 0) spec->num_signatures = flags.signatures;
  if (flags.zipf > 0.0) spec->zipf_skew = flags.zipf;
  spec->popularity = flags.popularity == "uniform"
                         ? loadgen::Popularity::kUniform
                         : loadgen::Popularity::kZipfian;
  // Clamp the parameter bands to what this index can serve, preserving the
  // mix's own band shape (repeat_heavy pins single values so cache keys
  // repeat; overwriting its bands with the full grid would destroy that).
  const PrecomputedData& precomputed = (*engine)->precomputed();
  std::vector<std::uint32_t> radii;
  for (std::uint32_t r : spec->params.radius_values) {
    if (r >= 1 && r <= precomputed.r_max()) radii.push_back(r);
  }
  if (radii.empty()) {
    for (std::uint32_t r = 1; r <= precomputed.r_max() && r <= 2; ++r) {
      radii.push_back(r);
    }
  }
  spec->params.radius_values = std::move(radii);
  // Snap each requested theta to the nearest precomputed threshold (queries
  // off the grid are uncacheable below theta_min and imprecise elsewhere).
  std::vector<double> thetas;
  for (double want : spec->params.theta_values) {
    double best = precomputed.thetas().front();
    for (double have : precomputed.thetas()) {
      if (std::abs(have - want) < std::abs(best - want)) best = have;
    }
    if (std::find(thetas.begin(), thetas.end(), best) == thetas.end()) {
      thetas.push_back(best);
    }
  }
  spec->params.theta_values = std::move(thetas);
  Result<loadgen::WorkloadGenerator> generator =
      loadgen::WorkloadGenerator::Create(*spec, (*engine)->graph());
  TOPL_CHECK(generator.ok(), generator.status().ToString().c_str());

  loadgen::InjectorOptions inject;
  inject.num_workers = flags.workers;
  inject.target_qps = flags.qps;
  inject.duration_seconds = flags.seconds;
  inject.max_ops = flags.ops;
  inject.progressive_deadline_ms = flags.deadline_ms;

  // Warmup (discarded): materializes detector contexts and engine pool
  // threads so the measured run starts from serving steady state.
  if (flags.warmup_seconds > 0.0) {
    loadgen::InjectorOptions warmup = inject;
    warmup.target_qps = 0.0;
    warmup.duration_seconds = flags.warmup_seconds;
    warmup.max_ops = 0;
    Result<loadgen::LoadReport> ignored =
        loadgen::LoadInjector(engine->get(), *generator, warmup).Run();
    TOPL_CHECK(ignored.ok(), ignored.status().ToString().c_str());
  }

  Result<loadgen::LoadReport> report =
      loadgen::LoadInjector(engine->get(), *generator, inject).Run();
  TOPL_CHECK(report.ok(), report.status().ToString().c_str());
  report->stream_digest = generator->StreamDigest(4096);

  std::printf("%s", report->ToString().c_str());
  if (report->open_loop) {
    std::printf("achieved %.1f of %.0f target qps (%.1f%%)\n",
                report->achieved_qps, report->target_qps,
                report->target_qps > 0
                    ? 100.0 * report->achieved_qps / report->target_qps
                    : 0.0);
  }
  std::printf("stream digest: %016llx\n",
              static_cast<unsigned long long>(report->stream_digest));

  loadgen::SloThresholds slo;
  slo.min_ops_per_s = flags.slo_qps;
  slo.max_p99_ms = flags.slo_p99_ms;
  slo.max_p999_ms = flags.slo_p999_ms;
  const std::vector<std::string> violations = report->CheckSlo(slo);
  for (const std::string& violation : violations) {
    std::fprintf(stderr, "SLO BREACH: %s\n", violation.c_str());
  }

  std::FILE* json = std::fopen(flags.json.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", flags.json.c_str());
    return 1;
  }
  const std::string payload = report->ToJson();
  std::fwrite(payload.data(), 1, payload.size(), json);
  std::fclose(json);
  std::printf("wrote %s\n", flags.json.c_str());
  return violations.empty() ? 0 : 1;
}

// Figure 6(a)-(c): DTopL-ICDE performance.
//   (a) Greedy_WP vs Greedy_WoP vs Optimal vs the embedded Top(nL)-ICDE call
//       on the five datasets at defaults (L=5, n=5).
//   (b) Greedy_WP while varying L ∈ {2, 3, 5, 8, 10} on Uni/Gau/Zipf.
//   (c) Greedy_WP while varying n ∈ {2, 3, 5, 8, 10} on Uni/Gau/Zipf.
// Optimal enumerates C(nL, L) subsets and is expected to sit orders of
// magnitude above the greedy variants (the paper reports >= 3 orders).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace topl;         // NOLINT(build/namespaces)
using namespace topl::bench;  // NOLINT(build/namespaces)

void BM_DTopL(benchmark::State& state, DatasetConfig config, DTopLOptions options,
              std::uint32_t top_l) {
  const Workload& w = GetWorkload(config);
  DTopLDetector detector(w.graph, *w.pre, w.tree);
  Query query = DefaultQueryFor(w);
  query.top_l = top_l;
  DTopLResult last;
  for (auto _ : state) {
    Result<DTopLResult> result = detector.Search(query, options);
    TOPL_CHECK(result.ok(), result.status().ToString().c_str());
    last = std::move(result).value();
    benchmark::DoNotOptimize(last.diversity_score);
  }
  state.counters["diversity"] = last.diversity_score;
  state.counters["gain_evals"] = static_cast<double>(last.gain_evaluations);
  state.counters["refine_ms"] = last.refine_seconds * 1e3;
  state.counters["candidate_ms"] = last.candidate_seconds * 1e3;
}

// The Top(nL)-ICDE candidate-generation call alone (the paper plots it as
// its own series in Fig. 6(a)).
void BM_TopNL(benchmark::State& state, DatasetConfig config,
              std::uint32_t n_factor) {
  const Workload& w = GetWorkload(config);
  TopLDetector detector(w.graph, *w.pre, w.tree);
  Query query = DefaultQueryFor(w);
  query.top_l *= n_factor;
  for (auto _ : state) {
    Result<TopLResult> result = detector.Search(query);
    TOPL_CHECK(result.ok(), result.status().ToString().c_str());
    benchmark::DoNotOptimize(result->communities.data());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Figure 6(a)-(c): DTopL-ICDE (defaults L=5, n=5) ==\n");

  // (a) algorithm comparison over the five datasets.
  for (DatasetKind kind : {DatasetKind::kDblp, DatasetKind::kAmazon,
                           DatasetKind::kUni, DatasetKind::kGau,
                           DatasetKind::kZipf}) {
    DatasetConfig config;
    config.kind = kind;
    config.num_vertices = DefaultVertices();
    const std::string ds = DatasetName(kind);

    DTopLOptions wp;
    wp.algorithm = DTopLAlgorithm::kGreedyWithPruning;
    benchmark::RegisterBenchmark(
        ("fig6a/Greedy_WP/" + ds).c_str(),
        [config, wp](benchmark::State& s) { BM_DTopL(s, config, wp, 5); })
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.1);

    DTopLOptions wop = wp;
    wop.algorithm = DTopLAlgorithm::kGreedyWithoutPruning;
    benchmark::RegisterBenchmark(
        ("fig6a/Greedy_WoP/" + ds).c_str(),
        [config, wop](benchmark::State& s) { BM_DTopL(s, config, wop, 5); })
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.1);

    DTopLOptions optimal = wp;
    optimal.algorithm = DTopLAlgorithm::kOptimal;
    benchmark::RegisterBenchmark(
        ("fig6a/Optimal/" + ds).c_str(),
        [config, optimal](benchmark::State& s) {
          BM_DTopL(s, config, optimal, 5);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);  // C(25,5) = 53130 subsets per call

    benchmark::RegisterBenchmark(
        ("fig6a/TopNL-ICDE/" + ds).c_str(),
        [config](benchmark::State& s) { BM_TopNL(s, config, 5); })
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.1);
  }

  // (b) vary L and (c) vary n, Greedy_WP on the synthetic datasets.
  for (DatasetKind kind :
       {DatasetKind::kUni, DatasetKind::kGau, DatasetKind::kZipf}) {
    DatasetConfig config;
    config.kind = kind;
    config.num_vertices = DefaultVertices();
    const std::string ds = DatasetName(kind);
    for (std::uint32_t l : {2u, 3u, 5u, 8u, 10u}) {
      DTopLOptions wp;
      benchmark::RegisterBenchmark(
        ("fig6b/" + ds + "/L:" + std::to_string(l)).c_str(),
          [config, wp, l](benchmark::State& s) { BM_DTopL(s, config, wp, l); })
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.1);
    }
    for (std::uint32_t n : {2u, 3u, 5u, 8u, 10u}) {
      DTopLOptions wp;
      wp.n_factor = n;
      benchmark::RegisterBenchmark(
        ("fig6c/" + ds + "/n:" + std::to_string(n)).c_str(),
          [config, wp](benchmark::State& s) { BM_DTopL(s, config, wp, 5); })
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.1);
    }
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// bench_parallel_query — single-query latency of the staged TopL pipeline:
// the classic sequential detector loop vs intra-query parallel scoring
// (Engine::SearchProgressive) at increasing worker counts, on one fixed-seed
// synthetic graph.
//
// Every parallel run's answers are compared field-by-field (centers, member
// lists, influenced vertices, cpp values, scores) against the sequential
// answers: the pipeline contract is that parallelism changes wall-clock,
// never results, and this benchmark doubles as the enforcement point — it
// exits non-zero on any mismatch.
//
//   bench_parallel_query [--vertices=8000] [--seed=42] [--rmax=2]
//                        [--queries=8] [--repeat=3] [--chunk=8]
//                        [--threads=1,2,4,8] [--json=BENCH_parallel_query.json]
//
// Emits a human summary on stdout and a machine-readable JSON file
// (per-thread-count latency, throughput, speedup, work efficiency, plus
// progressive time-to-first-result) consumed by the CI regression gate.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "topl.h"

namespace {

using namespace topl;  // NOLINT(build/namespaces)

struct Flags {
  std::size_t vertices = 8000;
  std::uint64_t seed = 42;
  std::uint32_t rmax = 2;
  std::size_t num_queries = 8;
  int repeat = 3;
  std::uint32_t chunk = 8;
  std::vector<std::size_t> threads = {1, 2, 4, 8};
  std::string json = "BENCH_parallel_query.json";
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (key == "vertices") {
      flags.vertices = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "seed") {
      flags.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "rmax") {
      flags.rmax = static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "queries") {
      flags.num_queries = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "repeat") {
      flags.repeat = std::atoi(value.c_str());
    } else if (key == "chunk") {
      flags.chunk = static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "json") {
      flags.json = value;
    } else if (key == "threads") {
      flags.threads.clear();
      std::size_t pos = 0;
      while (pos < value.size()) {
        flags.threads.push_back(std::strtoull(value.c_str() + pos, nullptr, 10));
        const std::size_t comma = value.find(',', pos);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else {
      std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
      std::exit(2);
    }
  }
  return flags;
}

// Population-weighted query keywords (uniform domain draws often match
// nobody), deterministic per seed; mirrors bench_common.h.
std::vector<KeywordId> QueryKeywords(const Graph& g, std::uint32_t count,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<KeywordId> out;
  for (int guard = 0; out.size() < count && guard < 100000; ++guard) {
    const VertexId v = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    const auto kws = g.Keywords(v);
    if (kws.empty()) continue;
    const KeywordId w = kws[rng.NextBounded(kws.size())];
    if (std::find(out.begin(), out.end(), w) == out.end()) out.push_back(w);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool SameCommunities(const std::vector<CommunityResult>& a,
                     const std::vector<CommunityResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].community.center != b[i].community.center ||
        a[i].community.vertices != b[i].community.vertices ||
        a[i].influence.vertices != b[i].influence.vertices ||
        a[i].influence.cpp != b[i].influence.cpp ||
        a[i].score() != b[i].score()) {
      return false;
    }
  }
  return true;
}

struct RunResult {
  std::size_t threads = 0;
  double total_seconds = 0.0;  // best-of-repeat sum over the query set
  double queries_per_s = 0.0;
  double speedup = 1.0;
  std::uint64_t candidates_refined = 0;
  bool exact_match = true;
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);

  std::printf("== parallel single-query scoring: sequential detector vs "
              "intra-query chunked refinement ==\n");
  SmallWorldOptions gen;
  gen.num_vertices = flags.vertices;
  gen.seed = flags.seed;
  gen.keywords.domain_size = 50;
  gen.keywords.keywords_per_vertex = 3;
  Result<Graph> graph = MakeSmallWorld(gen);
  TOPL_CHECK(graph.ok(), graph.status().ToString().c_str());

  Timer offline;
  PrecomputeOptions pre_opts;
  pre_opts.r_max = flags.rmax;
  Result<PrecomputedData> pre_built = PrecomputedData::Build(*graph, pre_opts);
  TOPL_CHECK(pre_built.ok(), pre_built.status().ToString().c_str());
  auto pre = std::make_unique<PrecomputedData>(std::move(pre_built).value());
  Result<TreeIndex> tree = TreeIndex::Build(*graph, *pre);
  TOPL_CHECK(tree.ok(), tree.status().ToString().c_str());
  std::printf("graph: %zu vertices, %zu edges; offline %.2fs\n",
              graph->NumVertices(), graph->NumEdges(), offline.ElapsedSeconds());

  std::vector<Query> queries;
  for (std::size_t i = 0; i < flags.num_queries; ++i) {
    Query q;
    q.keywords = QueryKeywords(*graph, 5, flags.seed + i + 1);
    q.k = 4;
    q.radius = std::min<std::uint32_t>(2, flags.rmax);
    q.theta = 0.2;
    q.top_l = 5;
    queries.push_back(std::move(q));
  }

  // Sequential reference: the classic one-candidate-at-a-time loop on a bare
  // detector — the tightest-pruning, zero-overhead baseline.
  TopLDetector reference(*graph, *pre, *tree);
  std::vector<TopLResult> expected(queries.size());
  RunResult sequential;
  sequential.threads = 1;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    double best = 0.0;
    for (int rep = 0; rep < flags.repeat; ++rep) {
      Timer timer;
      Result<TopLResult> result = reference.Search(queries[i]);
      const double elapsed = timer.ElapsedSeconds();
      TOPL_CHECK(result.ok(), result.status().ToString().c_str());
      if (rep == 0 || elapsed < best) best = elapsed;
      if (rep == 0) expected[i] = std::move(result).value();
    }
    sequential.total_seconds += best;
    sequential.candidates_refined += expected[i].stats.candidates_refined;
  }
  sequential.queries_per_s =
      static_cast<double>(queries.size()) / sequential.total_seconds;
  std::printf("%8s %12s %12s %9s %9s %8s\n", "threads", "total(s)", "qps",
              "speedup", "refined", "exact");
  std::printf("%8s %12.4f %12.1f %9s %9llu %8s\n", "seq",
              sequential.total_seconds, sequential.queries_per_s, "1.00x",
              static_cast<unsigned long long>(sequential.candidates_refined),
              "ref");

  // Parallel runs: one engine per thread count, queries served one at a time
  // through the progressive path (intra-query chunk fan-out, no deadline).
  std::vector<RunResult> runs;
  bool all_exact = true;
  double first_update_seconds = -1.0;
  for (std::size_t threads : flags.threads) {
    auto pre_copy = std::make_unique<PrecomputedData>(*pre);
    Result<TreeIndex> tree_copy = TreeIndex::Build(*graph, *pre_copy);
    TOPL_CHECK(tree_copy.ok(), tree_copy.status().ToString().c_str());
    Result<Graph> graph_copy = MakeSmallWorld(gen);
    TOPL_CHECK(graph_copy.ok(), graph_copy.status().ToString().c_str());
    EngineOptions engine_opts;
    engine_opts.num_threads = threads;
    Result<std::unique_ptr<Engine>> engine =
        Engine::Create(std::move(graph_copy).value(), std::move(pre_copy),
                       std::move(tree_copy).value(), engine_opts);
    TOPL_CHECK(engine.ok(), engine.status().ToString().c_str());

    ProgressiveOptions prog;
    prog.parallel = true;
    prog.chunk_size = flags.chunk;

    RunResult run;
    run.threads = threads;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      double best = 0.0;
      for (int rep = 0; rep < flags.repeat; ++rep) {
        Timer timer;
        Result<TopLResult> result = (*engine)->SearchProgressive(queries[i], prog);
        const double elapsed = timer.ElapsedSeconds();
        TOPL_CHECK(result.ok(), result.status().ToString().c_str());
        if (rep == 0 || elapsed < best) best = elapsed;
        if (rep == 0) {
          run.candidates_refined += result->stats.candidates_refined;
          if (!SameCommunities(result->communities, expected[i].communities) ||
              result->truncated) {
            run.exact_match = false;
            all_exact = false;
            std::fprintf(stderr,
                         "MISMATCH: query %zu at %zu threads differs from the "
                         "sequential answer\n",
                         i, threads);
          }
        }
      }
      run.total_seconds += best;
    }
    run.queries_per_s = static_cast<double>(queries.size()) / run.total_seconds;
    run.speedup = sequential.total_seconds / run.total_seconds;
    std::printf("%8zu %12.4f %12.1f %8.2fx %9llu %8s\n", threads,
                run.total_seconds, run.queries_per_s, run.speedup,
                static_cast<unsigned long long>(run.candidates_refined),
                run.exact_match ? "yes" : "NO");
    runs.push_back(run);

    // Anytime responsiveness at the widest configuration: wall-clock until
    // the first progressive update lands vs the full query.
    if (threads == flags.threads.back()) {
      Timer timer;
      double first = -1.0;
      Result<TopLResult> result = (*engine)->SearchProgressive(
          queries.front(), prog, [&](const ProgressiveUpdate&) {
            if (first < 0.0) first = timer.ElapsedSeconds();
            return true;
          });
      TOPL_CHECK(result.ok(), result.status().ToString().c_str());
      first_update_seconds = first;
    }
  }

  std::FILE* json = std::fopen(flags.json.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", flags.json.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"benchmark\": \"parallel_query\",\n"
               "  \"vertices\": %zu,\n"
               "  \"seed\": %llu,\n"
               "  \"num_queries\": %zu,\n"
               "  \"exact_match\": %s,\n"
               "  \"sequential\": {\"total_seconds\": %.6f, \"queries_per_s\": "
               "%.3f, \"candidates_refined\": %llu},\n"
               "  \"first_update_seconds\": %.6f,\n"
               "  \"runs\": [\n",
               flags.vertices, static_cast<unsigned long long>(flags.seed),
               queries.size(), all_exact ? "true" : "false",
               sequential.total_seconds, sequential.queries_per_s,
               static_cast<unsigned long long>(sequential.candidates_refined),
               first_update_seconds);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::fprintf(json,
                 "    {\"threads\": %zu, \"total_seconds\": %.6f, "
                 "\"queries_per_s\": %.3f, \"speedup\": %.3f, "
                 "\"candidates_refined\": %llu, \"exact_match\": %s}%s\n",
                 runs[i].threads, runs[i].total_seconds, runs[i].queries_per_s,
                 runs[i].speedup,
                 static_cast<unsigned long long>(runs[i].candidates_refined),
                 runs[i].exact_match ? "true" : "false",
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote %s\n", flags.json.c_str());
  return all_exact ? 0 : 1;
}

// bench_seed_extraction — candidate verification (the k-truss + connectivity
// + radius fixpoint of SeedCommunityExtractor) on the incremental triangle
// substrate vs the from-scratch reference path, on one fixed-seed synthetic
// graph.
//
// Each sampled (query, center) pair's ball is materialized once (identical
// shared work for both pipelines) and then verified by both; the timed
// sections cover verification alone, which is the work the substrate
// replaces. An end-to-end Extract (materialize + verify) comparison is
// reported alongside for context. Any field-level mismatch (membership,
// edge set) makes the benchmark exit non-zero — like bench_parallel_query
// and bench_updates, it doubles as the enforcement point for the substrate
// contract: incremental support maintenance changes wall-clock, never
// communities.
//
//   bench_seed_extraction [--vertices=8000] [--seed=42] [--centers=800]
//                         [--ring=22] [--query-keywords=18] [--repeat=3]
//                         [--json=BENCH_seed_extraction.json]
//
// Emits a human summary on stdout and a machine-readable JSON file
// (per-path latency, verifications/s, speedup, substrate counters) consumed
// by the CI regression gate.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "topl.h"

namespace {

using namespace topl;  // NOLINT(build/namespaces)

struct Flags {
  std::size_t vertices = 8000;
  std::uint64_t seed = 42;
  std::size_t centers = 800;
  std::uint32_t ring = 22;
  std::uint32_t query_keywords = 18;
  int repeat = 3;
  std::string json = "BENCH_seed_extraction.json";
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (key == "vertices") {
      flags.vertices = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "seed") {
      flags.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "centers") {
      flags.centers = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "ring") {
      flags.ring = static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "query-keywords") {
      flags.query_keywords =
          static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "repeat") {
      flags.repeat = std::atoi(value.c_str());
    } else if (key == "json") {
      flags.json = value;
    } else {
      std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
      std::exit(2);
    }
  }
  return flags;
}

// Population-weighted query keywords, deterministic per seed.
std::vector<KeywordId> QueryKeywords(const Graph& g, std::uint32_t count,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<KeywordId> out;
  for (int guard = 0; out.size() < count && guard < 100000; ++guard) {
    const VertexId v = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    const auto kws = g.Keywords(v);
    if (kws.empty()) continue;
    const KeywordId w = kws[rng.NextBounded(kws.size())];
    if (std::find(out.begin(), out.end(), w) == out.end()) out.push_back(w);
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct Config {
  Query query;
  std::vector<VertexId> centers;
};

struct PathTotals {
  double seconds = 0.0;
  std::uint64_t extractions = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);

  std::printf("== candidate verification: incremental triangle substrate vs "
              "from-scratch reference ==\n");
  // A verification-heavy corner of the workload space: a dense small-world
  // variant (avg degree ~26 — triangle-rich balls) and wide keyword queries,
  // so the keyword-filtered balls are big enough that the truss fixpoint —
  // not the hop BFS — is the cost center, as it is for every candidate that
  // survives index pruning. Sparser defaults still favor the substrate
  // (1.1–1.6x) but measure mostly the shared materialization.
  SmallWorldOptions gen;
  gen.num_vertices = flags.vertices;
  gen.seed = flags.seed;
  gen.ring_neighbors = flags.ring;
  gen.keywords.domain_size = 50;
  gen.keywords.keywords_per_vertex = 3;
  Result<Graph> built = MakeSmallWorld(gen);
  TOPL_CHECK(built.ok(), built.status().ToString().c_str());
  const Graph graph = std::move(built).value();
  std::printf("graph: %zu vertices, %zu edges\n", graph.NumVertices(),
              graph.NumEdges());

  // The paper's query grid corner where verification dominates: k at and
  // above the default (deep peel fixpoints), r at the default and r_max
  // (large balls). Centers are keyword-prefiltered exactly as the detector's
  // plan stage would before refining.
  const struct {
    std::uint32_t k;
    std::uint32_t r;
  } kGrid[] = {{4, 2}, {4, 3}, {5, 3}, {6, 3}};
  std::vector<Config> configs;
  for (std::size_t c = 0; c < std::size(kGrid); ++c) {
    Config config;
    config.query.keywords =
        QueryKeywords(graph, flags.query_keywords, flags.seed + 31 * c);
    config.query.k = kGrid[c].k;
    config.query.radius = kGrid[c].r;
    for (VertexId v = static_cast<VertexId>(c);
         v < graph.NumVertices() && config.centers.size() < flags.centers;
         v += 3) {
      if (HopExtractor::HasAnyKeyword(graph, v, config.query.keywords)) {
        config.centers.push_back(v);
      }
    }
    configs.push_back(std::move(config));
  }

  SeedCommunityExtractor incremental(graph);
  SeedCommunityExtractor reference(graph);
  HopExtractor hop(graph);
  LocalGraph ball;
  SeedCommunity got;
  SeedCommunity want;
  bool all_exact = true;
  PathTotals inc;
  PathTotals ref;
  std::uint64_t communities = 0;
  std::uint64_t triangles = 0;
  std::uint64_t recomputes_avoided = 0;
  double end_to_end_inc = 0.0;
  double end_to_end_ref = 0.0;
  std::uint64_t ball_edges = 0;

  std::printf("%8s %6s %6s %10s %12s %12s %9s\n", "config", "k", "r",
              "balls", "incr(s)", "ref(s)", "speedup");
  for (std::size_t c = 0; c < configs.size(); ++c) {
    const Config& config = configs[c];
    const Query& query = config.query;
    double inc_seconds = 0.0;
    double ref_seconds = 0.0;
    std::size_t balls = 0;
    for (const VertexId v : config.centers) {
      // Shared materialization: both pipelines verify the same ball. Empty
      // balls are skipped — index support pruning removes those candidates
      // before any real query refines them.
      if (!hop.Extract(v, query.radius, query.keywords, &ball)) continue;
      if (ball.NumEdges() == 0) continue;
      ++balls;
      ball_edges += ball.NumEdges();

      // Exactness, field by field.
      const bool got_ok = incremental.Verify(
          ball, query, SeedCommunityExtractor::Mode::kIncremental, &got);
      const bool want_ok = reference.Verify(
          ball, query, SeedCommunityExtractor::Mode::kReference, &want);
      if (got_ok != want_ok ||
          (got_ok && (got.center != want.center || got.vertices != want.vertices ||
                      got.edges != want.edges))) {
        all_exact = false;
        std::fprintf(stderr, "MISMATCH: center %u k=%u r=%u\n", v, query.k,
                     query.radius);
      }

      // Best-of-repeats per ball: the min filters out one-off scheduler and
      // cache-warmup stalls, so the committed speedup floor gates the
      // algorithm, not runner jitter.
      double ref_best = 0.0;
      for (int rep = 0; rep < flags.repeat; ++rep) {
        Timer ref_timer;
        reference.Verify(ball, query, SeedCommunityExtractor::Mode::kReference,
                         &want);
        const double elapsed = ref_timer.ElapsedSeconds();
        if (rep == 0 || elapsed < ref_best) ref_best = elapsed;
      }
      ref_seconds += ref_best;
      ++ref.extractions;

      double inc_best = 0.0;
      for (int rep = 0; rep < flags.repeat; ++rep) {
        Timer inc_timer;
        const bool found = incremental.Verify(
            ball, query, SeedCommunityExtractor::Mode::kIncremental, &got);
        const double elapsed = inc_timer.ElapsedSeconds();
        if (rep == 0 || elapsed < inc_best) inc_best = elapsed;
        if (rep == 0) {
          if (found) ++communities;
          triangles += incremental.last_triangles_inspected();
          recomputes_avoided += incremental.last_support_recomputes_avoided();
        }
      }
      inc_seconds += inc_best;
      ++inc.extractions;
    }
    inc.seconds += inc_seconds;
    ref.seconds += ref_seconds;
    std::printf("%8zu %6u %6u %10zu %12.4f %12.4f %8.2fx\n", c, query.k,
                query.radius, balls, inc_seconds, ref_seconds,
                inc_seconds > 0.0 ? ref_seconds / inc_seconds : 0.0);

    // End-to-end context: one full Extract (materialize + verify) per path.
    Timer e2e_ref;
    for (const VertexId v : config.centers) {
      reference.Extract(v, query, SeedCommunityExtractor::Mode::kReference,
                        &want);
    }
    end_to_end_ref += e2e_ref.ElapsedSeconds();
    Timer e2e_inc;
    for (const VertexId v : config.centers) {
      incremental.Extract(v, query, SeedCommunityExtractor::Mode::kIncremental,
                          &got);
    }
    end_to_end_inc += e2e_inc.ElapsedSeconds();
  }

  const double speedup = inc.seconds > 0.0 ? ref.seconds / inc.seconds : 0.0;
  const double e2e_speedup =
      end_to_end_inc > 0.0 ? end_to_end_ref / end_to_end_inc : 0.0;
  std::printf("total verification: incremental %.3fs, reference %.3fs, "
              "speedup %.2fx (%llu verifications, %llu communities, over "
              "%llu ball edges, %llu triangles inspected, %llu support "
              "recomputes avoided)\n",
              inc.seconds, ref.seconds, speedup,
              static_cast<unsigned long long>(inc.extractions),
              static_cast<unsigned long long>(communities),
              static_cast<unsigned long long>(ball_edges),
              static_cast<unsigned long long>(triangles),
              static_cast<unsigned long long>(recomputes_avoided));
  std::printf("end-to-end extraction (incl. shared hop materialization): "
              "incremental %.3fs, reference %.3fs, speedup %.2fx; exact=%s\n",
              end_to_end_inc, end_to_end_ref, e2e_speedup,
              all_exact ? "yes" : "NO");

  std::FILE* json = std::fopen(flags.json.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", flags.json.c_str());
    return 1;
  }
  std::fprintf(
      json,
      "{\n"
      "  \"benchmark\": \"seed_extraction\",\n"
      "  \"vertices\": %zu,\n"
      "  \"seed\": %llu,\n"
      "  \"repeat\": %d,\n"
      "  \"exact_match\": %s,\n"
      "  \"communities_found\": %llu,\n"
      "  \"incremental\": {\"total_seconds\": %.6f, \"extractions_per_s\": %.3f,\n"
      "                  \"triangles_inspected\": %llu,\n"
      "                  \"support_recomputes_avoided\": %llu},\n"
      "  \"reference\": {\"total_seconds\": %.6f, \"extractions_per_s\": %.3f},\n"
      "  \"speedup\": %.3f,\n"
      "  \"end_to_end\": {\"incremental_seconds\": %.6f,\n"
      "                 \"reference_seconds\": %.6f, \"speedup\": %.3f}\n"
      "}\n",
      flags.vertices, static_cast<unsigned long long>(flags.seed), flags.repeat,
      all_exact ? "true" : "false",
      static_cast<unsigned long long>(communities), inc.seconds,
      inc.seconds > 0.0 ? static_cast<double>(inc.extractions) / inc.seconds : 0.0,
      static_cast<unsigned long long>(triangles),
      static_cast<unsigned long long>(recomputes_avoided), ref.seconds,
      ref.seconds > 0.0 ? static_cast<double>(ref.extractions) / ref.seconds : 0.0,
      speedup, end_to_end_inc, end_to_end_ref, e2e_speedup);
  std::fclose(json);
  std::printf("wrote %s\n", flags.json.c_str());
  return all_exact ? 0 : 1;
}

// Figure 3(a)-(g): TopL-ICDE wall-clock time on Uni/Gau/Zipf while varying
// one parameter at a time over the paper's Table III grid (defaults bold):
//   (a) theta ∈ {0.1, 0.2, 0.3}
//   (b) |Q|   ∈ {2, 3, 5, 8, 10}
//   (c) k     ∈ {3, 4, 5}
//   (d) r     ∈ {1, 2, 3}
//   (e) L     ∈ {2, 3, 5, 8, 10}
//   (f) |v.W| ∈ {1, 2, 3, 4, 5}   (changes the graph)
//   (g) |Σ|   ∈ {10, 20, 50, 80}  (changes the graph)
// Figure 3(h) (scalability over |V|) has its own binary.

#include <benchmark/benchmark.h>

#include <functional>

#include "bench/bench_common.h"

namespace {

using namespace topl;         // NOLINT(build/namespaces)
using namespace topl::bench;  // NOLINT(build/namespaces)

constexpr DatasetKind kSynthetic[] = {DatasetKind::kUni, DatasetKind::kGau,
                                      DatasetKind::kZipf};

DatasetConfig BaseConfig(DatasetKind kind) {
  DatasetConfig config;
  config.kind = kind;
  config.num_vertices = DefaultVertices();
  return config;
}

void RunQuery(benchmark::State& state, const DatasetConfig& config,
              std::uint32_t q_size, const std::function<void(Query&)>& tweak) {
  const Workload& w = GetWorkload(config);
  TopLDetector detector(w.graph, *w.pre, w.tree);
  Query query = DefaultQueryFor(w, q_size);
  if (tweak) tweak(query);
  QueryStats last;
  for (auto _ : state) {
    Result<TopLResult> result = detector.Search(query);
    TOPL_CHECK(result.ok(), result.status().ToString().c_str());
    last = result->stats;
    benchmark::DoNotOptimize(result->communities.data());
  }
  state.counters["refined"] = static_cast<double>(last.candidates_refined);
  state.counters["found"] = static_cast<double>(last.communities_found);
  state.counters["pruned"] = static_cast<double>(last.TotalPruned());
}

void RegisterSweeps() {
  for (DatasetKind kind : kSynthetic) {
    const std::string ds = DatasetName(kind);
    // (a) influence threshold theta.
    for (double theta : {0.1, 0.2, 0.3}) {
      DatasetConfig config = BaseConfig(kind);
      benchmark::RegisterBenchmark(
        ("fig3a/" + ds + "/theta:" + std::to_string(theta).substr(0, 3)).c_str(),
          [config, theta](benchmark::State& s) {
            RunQuery(s, config, 5, [theta](Query& q) { q.theta = theta; });
          })
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.1);
    }
    // (b) query keyword count |Q|.
    for (std::uint32_t qsize : {2u, 3u, 5u, 8u, 10u}) {
      DatasetConfig config = BaseConfig(kind);
      benchmark::RegisterBenchmark(
        ("fig3b/" + ds + "/Q:" + std::to_string(qsize)).c_str(),
          [config, qsize](benchmark::State& s) {
            RunQuery(s, config, qsize, nullptr);
          })
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.1);
    }
    // (c) truss support parameter k.
    for (std::uint32_t k : {3u, 4u, 5u}) {
      DatasetConfig config = BaseConfig(kind);
      benchmark::RegisterBenchmark(
        ("fig3c/" + ds + "/k:" + std::to_string(k)).c_str(),
          [config, k](benchmark::State& s) {
            RunQuery(s, config, 5, [k](Query& q) { q.k = k; });
          })
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.1);
    }
    // (d) radius r.
    for (std::uint32_t r : {1u, 2u, 3u}) {
      DatasetConfig config = BaseConfig(kind);
      benchmark::RegisterBenchmark(
        ("fig3d/" + ds + "/r:" + std::to_string(r)).c_str(),
          [config, r](benchmark::State& s) {
            RunQuery(s, config, 5, [r](Query& q) { q.radius = r; });
          })
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.1);
    }
    // (e) result size L.
    for (std::uint32_t l : {2u, 3u, 5u, 8u, 10u}) {
      DatasetConfig config = BaseConfig(kind);
      benchmark::RegisterBenchmark(
        ("fig3e/" + ds + "/L:" + std::to_string(l)).c_str(),
          [config, l](benchmark::State& s) {
            RunQuery(s, config, 5, [l](Query& q) { q.top_l = l; });
          })
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.1);
    }
    // (f) keywords per vertex |v.W| — re-generates the graph.
    for (std::uint32_t per_vertex : {1u, 2u, 3u, 4u, 5u}) {
      DatasetConfig config = BaseConfig(kind);
      config.keywords_per_vertex = per_vertex;
      benchmark::RegisterBenchmark(
        ("fig3f/" + ds + "/W:" + std::to_string(per_vertex)).c_str(),
          [config](benchmark::State& s) { RunQuery(s, config, 5, nullptr); })
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.1);
    }
    // (g) keyword domain size |Σ| — re-generates the graph.
    for (std::uint32_t domain : {10u, 20u, 50u, 80u}) {
      DatasetConfig config = BaseConfig(kind);
      config.keyword_domain = domain;
      benchmark::RegisterBenchmark(
        ("fig3g/" + ds + "/Sigma:" + std::to_string(domain)).c_str(),
          [config](benchmark::State& s) { RunQuery(s, config, 5, nullptr); })
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Figure 3(a)-(g): TopL-ICDE parameter sweeps over Uni/Gau/Zipf "
              "(|V|=%zu) ==\n", DefaultVertices());
  RegisterSweeps();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

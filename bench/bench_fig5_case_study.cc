// Figure 5 case study: compare the influence of the Top1-ICDE seed community
// against a k-core community around the same center vertex on the
// Amazon(-like) graph, k = 4.
//
// The paper reports: Top1-ICDE community of 4 users ((4,2)-truss) with
// σ(g) = 344.31 and 974 possibly influenced nodes, vs a 4-core community of
// 5 users with σ(g) = 239.81 and 646 influenced nodes — the truss community
// is smaller yet more influential. This harness prints the same comparison
// for our workload; the expected *shape* is σ(truss-pick) > σ(core) around
// the same center with comparable or smaller seed size.
//
// The paper counts "possibly influenced nodes" more inclusively than gInf
// (every node reachable with nonzero MIA probability); we report both that
// count (theta -> 0.01) and |gInf| at the query theta.

#include <cstdio>

#include "bench/bench_common.h"

namespace {

using namespace topl;         // NOLINT(build/namespaces)
using namespace topl::bench;  // NOLINT(build/namespaces)

void Report(const char* label, const Graph& graph,
            const std::vector<VertexId>& seed, double theta) {
  PropagationEngine engine(graph);
  const InfluencedCommunity at_theta = engine.Compute(seed, theta);
  const InfluencedCommunity possibly = engine.Compute(seed, 0.01);
  std::printf("%-12s seed=%5zu  sigma(theta=%.2f)=%10.2f  |gInf|=%6zu  "
              "possibly_influenced=%6zu  sigma/seed=%7.2f\n",
              label, seed.size(), theta, at_theta.score, at_theta.size(),
              possibly.size(), at_theta.score / static_cast<double>(seed.size()));
}

}  // namespace

int main() {
  std::printf("== Figure 5 case study: Top1-ICDE vs %u-core (Amazon-like) ==\n",
              4u);
  DatasetConfig config;
  config.kind = DatasetKind::kAmazon;
  config.num_vertices = DefaultVertices();
  const Workload& w = GetWorkload(config);

  // The paper's case-study community is keyword-homogeneous ("Movies"); with
  // randomly assigned synthetic keywords the equivalent is a keyword set
  // covering the domain, so structure (not keyword luck) decides the result.
  Query query = DefaultQuery(config.keyword_domain);
  query.keywords.clear();
  for (KeywordId kw = 0; kw < config.keyword_domain; ++kw) {
    query.keywords.push_back(kw);
  }
  query.k = 4;
  query.top_l = 1;
  TopLDetector detector(w.graph, *w.pre, w.tree);
  Result<TopLResult> top1 = detector.Search(query);
  TOPL_CHECK(top1.ok(), top1.status().ToString().c_str());
  if (top1->communities.empty()) {
    // Sparse stand-in without a keyword-feasible (4, 2)-truss: fall back to
    // k=3 so the harness still prints a comparison.
    query.k = 3;
    top1 = detector.Search(query);
    TOPL_CHECK(top1.ok(), top1.status().ToString().c_str());
    std::printf("note: no (4, 2)-truss found; falling back to k=3\n");
  }
  if (top1->communities.empty()) {
    std::printf("no truss community found on this workload; rerun with a "
                "larger TOPL_BENCH_V\n");
    return 0;
  }
  const CommunityResult& best = top1->communities.front();
  const VertexId center = best.community.center;

  // The same center vertex (the red star in Fig. 5), k-core comparator. The
  // BA-style stand-in has degeneracy 3 (each arriving vertex brings 3
  // edges), so when no 4-core exists we compare against the deepest core
  // level that does — the comparison "truss pick vs core pick around the
  // same center" is what the figure demonstrates.
  std::uint32_t core_k = query.k;
  std::vector<VertexId> core;
  while (core_k >= 2) {
    core = KCoreCommunity(w.graph, center, core_k, query.radius);
    if (!core.empty()) break;
    --core_k;
  }

  std::printf("center vertex: %u\n", center);
  Report("Top1-ICDE", w.graph, best.community.vertices, query.theta);
  if (core.empty()) {
    std::printf("%-12s (center not in any core within r=%u)\n", "k-core",
                query.radius);
  } else {
    std::printf("(deepest core level containing the center: %u)\n", core_k);
    Report((std::to_string(core_k) + "-core").c_str(), w.graph, core,
           query.theta);
  }

  // Paper-reported reference values, for EXPERIMENTS.md side-by-side.
  std::printf("\npaper (com-Amazon, 334,863 nodes): Top1-ICDE 4 users, "
              "sigma=344.31, 974 influenced; 4-core 5 users, sigma=239.81, "
              "646 influenced\n");
  return 0;
}

// Communities versus free-form influence maximization (the §IX related-work
// contrast): classic IM picks the k individually strongest users anywhere in
// the network; TopL-ICDE insists the seeds form a cohesive k-truss community
// with shared interests. This example quantifies the trade on one network:
// how much raw spread the structural constraints cost, and what cohesion is
// bought — plus an Independent-Cascade Monte-Carlo check of how conservative
// the MIA scores are.
//
//   $ ./example_community_vs_im [num_users]

#include <cstdio>
#include <cstdlib>

#include "topl.h"

namespace {

// Edges among a seed set (cohesion measure: IM seed sets are usually
// scattered, seed communities are dense by construction).
std::size_t InternalEdges(const topl::Graph& g,
                          const std::vector<topl::VertexId>& seeds) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    for (std::size_t j = i + 1; j < seeds.size(); ++j) {
      if (g.HasEdge(seeds[i], seeds[j])) ++count;
    }
  }
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace topl;  // NOLINT(build/namespaces)

  const std::size_t num_users =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10000;

  SmallWorldOptions generator;
  generator.num_vertices = num_users;
  generator.keywords.domain_size = 20;
  generator.seed = 31;
  Result<Graph> graph = MakeSmallWorld(generator);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  Result<PrecomputedData> pre = PrecomputedData::Build(*graph, PrecomputeOptions());
  Result<TreeIndex> tree =
      pre.ok() ? TreeIndex::Build(*graph, *pre) : Result<TreeIndex>(pre.status());
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }

  // -- Top-1 seed community ---------------------------------------------------
  Query query;
  query.keywords = {0, 1, 2, 3, 4};
  query.k = 3;
  query.radius = 2;
  query.theta = 0.2;
  query.top_l = 1;
  TopLDetector detector(*graph, *pre, *tree);
  Result<TopLResult> community_answer = detector.Search(query);
  if (!community_answer.ok() || community_answer->communities.empty()) {
    std::fprintf(stderr, "no seed community found; try a larger network\n");
    return 1;
  }
  const CommunityResult& community = community_answer->communities.front();

  // -- IM with the same seed budget -------------------------------------------
  ImGreedyOptions im_options;
  im_options.budget = static_cast<std::uint32_t>(community.community.size());
  im_options.theta = query.theta;
  Result<ImGreedyResult> im = GreedyInfluenceMaximization(*graph, im_options);
  if (!im.ok()) {
    std::fprintf(stderr, "%s\n", im.status().ToString().c_str());
    return 1;
  }

  // -- Ground-truth IC simulation for both seed sets --------------------------
  // Same σ semantics as the MIA scores: sum activation probabilities over
  // vertices activated with probability ≥ θ. (Unrestricted IC spread
  // percolates to nearly the whole graph at these edge weights.)
  IcSimulator simulator(*graph);
  IcSimulator::Options mc;
  mc.num_rounds = 2000;
  const double community_ic =
      simulator.EstimateSpread(community.community.vertices, mc, query.theta)
          .score;
  const double im_ic = simulator.EstimateSpread(im->seeds, mc, query.theta).score;

  const std::size_t community_edges =
      InternalEdges(*graph, community.community.vertices);
  const std::size_t im_edges = InternalEdges(*graph, im->seeds);

  std::printf("seed budget: %zu users (network: %zu users)\n\n",
              community.community.size(), graph->NumVertices());
  std::printf("%-28s %16s %16s\n", "", "seed community", "IM seed set");
  std::printf("%-28s %16.2f %16.2f\n", "MIA spread (sigma)", community.score(),
              im->spread);
  std::printf("%-28s %16.2f %16.2f\n", "IC simulated spread", community_ic, im_ic);
  std::printf("%-28s %16zu %16zu\n", "edges among seeds", community_edges,
              im_edges);
  std::printf("%-28s %16s %16s\n", "keyword-coherent", "yes (by query)", "no");
  std::printf("\nIM reaches %.1f%% more users, but its seeds share %zu "
              "ties versus the community's %zu — no group-buying structure.\n",
              100.0 * (im->spread - community.score()) / community.score(),
              im_edges, community_edges);
  std::printf("note: with edge weights in [0.5, 0.6) the IC process is "
              "supercritical — any seed set saturates the network, which is "
              "why the paper scores communities under the per-path MIA model "
              "instead.\n");
  return 0;
}

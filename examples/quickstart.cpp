// Quickstart: build the paper's Fig. 1-style toy social network by hand,
// index it, and ask for the single most influential "Movies" community.
//
//   $ ./example_quickstart
//
// Walks the primary public API surface: GraphBuilder -> Engine::FromGraph
// (which runs the offline phase in-process) -> Engine::Search, with a
// KeywordDictionary translating between strings and KeywordIds.

#include <cstdio>

#include "topl.h"

int main() {
  using namespace topl;  // NOLINT(build/namespaces)

  // -- 1. The social network ------------------------------------------------
  // An 11-user network: a tight "movie buffs" clique {0,1,2,3} (every pair
  // friends, every edge in two triangles -> a 4-truss), a looser wellness
  // triangle {4,5,6}, and a chain of casual contacts 3-7-8-9-10 that the
  // clique can influence.
  KeywordDictionary dict;
  const KeywordId movies = dict.Intern("Movies");
  const KeywordId books = dict.Intern("Books");
  const KeywordId health = dict.Intern("Health");

  GraphBuilder builder(11);
  const double strong = 0.8;  // activation probability between close friends
  const double weak = 0.5;
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) builder.AddEdge(u, v, strong);
    builder.AddKeyword(u, movies);
  }
  builder.AddKeyword(0, books);
  builder.AddEdge(4, 5, weak);
  builder.AddEdge(5, 6, weak);
  builder.AddEdge(4, 6, weak);
  for (VertexId v = 4; v < 7; ++v) builder.AddKeyword(v, health);
  builder.AddEdge(0, 4, weak);
  builder.AddEdge(3, 7, strong);
  builder.AddEdge(7, 8, strong);
  builder.AddEdge(8, 9, strong);
  builder.AddEdge(9, 10, strong);
  for (VertexId v = 7; v < 11; ++v) {
    builder.AddKeyword(v, movies);
    builder.AddKeyword(v, books);
  }
  Result<Graph> graph = std::move(builder).Build();
  if (!graph.ok()) {
    std::fprintf(stderr, "graph build failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("network: %zu users, %zu friendships\n", graph->NumVertices(),
              graph->NumEdges());

  // -- 2. Offline phase -----------------------------------------------------
  // Engine::FromGraph runs Algorithm 2 + the tree-index build in-process
  // (EngineOptions::precompute defaults: r_max=3, thetas={0.1,0.2,0.3}) and
  // returns a thread-safe serving facade that owns everything.
  Result<std::unique_ptr<Engine>> engine =
      Engine::FromGraph(std::move(graph).value());
  if (!engine.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  // -- 3. Online TopL-ICDE query --------------------------------------------
  Query query;
  query.keywords = {movies};  // already sorted (single keyword)
  query.k = 4;                // 4-truss: every friendship in >= 2 triangles
  query.radius = 2;
  query.theta = 0.2;
  query.top_l = 1;

  Result<TopLResult> answer = (*engine)->Search(query);
  if (!answer.ok()) {
    std::fprintf(stderr, "query failed: %s\n", answer.status().ToString().c_str());
    return 1;
  }
  if (answer->communities.empty()) {
    std::printf("no qualifying community\n");
    return 0;
  }

  const CommunityResult& top = answer->communities.front();
  std::printf("top-1 seed community (center user %u): {", top.community.center);
  for (std::size_t i = 0; i < top.community.vertices.size(); ++i) {
    std::printf("%s%u", i == 0 ? "" : ", ", top.community.vertices[i]);
  }
  std::printf("}\n");
  std::printf("influential score sigma(g) = %.3f over %zu influenced users:\n",
              top.score(), top.influence.size());
  for (std::size_t i = 0; i < top.influence.size(); ++i) {
    std::printf("  user %-2u cpp = %.3f\n", top.influence.vertices[i],
                top.influence.cpp[i]);
  }
  std::printf("query stats: %s\n", answer->stats.ToString().c_str());
  return 0;
}

// Marketing-campaign scenario (the paper's Example 1): a sales manager wants
// L seed communities of users interested in certain product categories, with
// strong internal ties (group-buying potential) and maximal word-of-mouth
// reach. Runs on a generated small-world social network.
//
//   $ ./example_marketing_campaign [num_users]

#include <cstdio>
#include <cstdlib>

#include "topl.h"

int main(int argc, char** argv) {
  using namespace topl;  // NOLINT(build/namespaces)

  const std::size_t num_users =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;

  // -- 1. A synthetic social network with shopping-interest keywords --------
  KeywordDictionary dict;
  const std::vector<std::string> catalog = {
      "Movies",  "Books",   "Sports",   "Travel",  "Cooking",
      "Gaming",  "Music",   "Fitness",  "Fashion", "Gardening",
      "Crafts",  "Jewelry", "Skincare", "Tech",    "Pets",
      "Outdoor", "Art",     "Finance",  "Food",    "Wellness"};
  for (const std::string& name : catalog) dict.Intern(name);

  SmallWorldOptions generator;
  generator.num_vertices = num_users;
  generator.keywords.domain_size = static_cast<std::uint32_t>(catalog.size());
  generator.keywords.keywords_per_vertex = 3;
  generator.seed = 11;
  Result<Graph> graph = MakeSmallWorld(generator);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("social network: %zu users, %zu ties\n", graph->NumVertices(),
              graph->NumEdges());

  // -- 2. Offline phase (done once, reused for every campaign) --------------
  Timer offline;
  Result<PrecomputedData> pre = PrecomputedData::Build(*graph, PrecomputeOptions());
  if (!pre.ok()) {
    std::fprintf(stderr, "%s\n", pre.status().ToString().c_str());
    return 1;
  }
  Result<TreeIndex> tree = TreeIndex::Build(*graph, *pre);
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  std::printf("offline phase: %.2fs (precompute + tree index, %zu nodes)\n",
              offline.ElapsedSeconds(), tree->NumNodes());

  // -- 3. The campaign query ------------------------------------------------
  // Product categories the new product line belongs to.
  KeywordDictionary lookup = dict;
  Query query;
  query.keywords = lookup.InternAll({"Movies", "Gaming", "Tech"});
  query.k = 3;      // every tie backed by a common friend
  query.radius = 2; // communities of close reach
  query.theta = 0.2;
  query.top_l = 5;

  TopLDetector detector(*graph, *pre, *tree);
  Timer online;
  Result<TopLResult> answer = detector.Search(query);
  if (!answer.ok()) {
    std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
    return 1;
  }
  std::printf("online query: %.4fs  (%s)\n\n", online.ElapsedSeconds(),
              answer->stats.ToString().c_str());

  std::printf("top-%u candidate campaign groups:\n", query.top_l);
  for (std::size_t rank = 0; rank < answer->communities.size(); ++rank) {
    const CommunityResult& c = answer->communities[rank];
    std::printf(
        "  #%zu  center=%-7u members=%-4zu sigma=%-9.2f reaches %zu users\n",
        rank + 1, c.community.center, c.community.size(), c.score(),
        c.influence.size());
    // Show the interests of the first few members.
    std::printf("      sample interests:");
    const std::size_t sample = std::min<std::size_t>(3, c.community.size());
    for (std::size_t i = 0; i < sample; ++i) {
      const VertexId member = c.community.vertices[i];
      std::printf(" u%u{", member);
      const auto kws = graph->Keywords(member);
      for (std::size_t j = 0; j < kws.size(); ++j) {
        std::printf("%s%s", j == 0 ? "" : ",", dict.Name(kws[j]).c_str());
      }
      std::printf("}");
    }
    std::printf("\n");
  }
  return 0;
}

// End-to-end SNAP pipeline: ingest a SNAP-format edge list (the format of
// com-DBLP / com-Amazon), attach synthetic attributes, persist the graph as
// a binary artifact, and serve queries through topl::Engine — the workflow
// for running this library against your own datasets. The first Engine::Open
// builds and persists the index; the second demonstrates a warm start that
// loads it, then answers a single query, a fanned-out batch, and an async
// submission.
//
//   $ ./example_snap_pipeline [edge_list.txt [workdir]]
//
// Without arguments, a demo edge list is generated first so the example is
// self-contained.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "topl.h"

namespace {

// Writes a small powerlaw-cluster graph in SNAP format for the demo path.
std::string WriteDemoEdgeList(const std::filesystem::path& dir) {
  topl::PowerlawClusterOptions options;
  options.num_vertices = 5000;
  options.seed = 5;
  topl::Result<topl::Graph> g = topl::MakePowerlawCluster(options);
  TOPL_CHECK(g.ok(), g.status().ToString().c_str());
  const std::string path = (dir / "demo.ungraph.txt").string();
  const topl::Status status = topl::WriteSnapEdgeList(*g, path);
  TOPL_CHECK(status.ok(), status.ToString().c_str());
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace topl;  // NOLINT(build/namespaces)

  const std::filesystem::path workdir =
      argc > 2 ? argv[2] : std::filesystem::temp_directory_path() / "topl_snap";
  std::filesystem::create_directories(workdir);
  const std::string edge_list =
      argc > 1 ? argv[1] : WriteDemoEdgeList(workdir);
  std::printf("edge list: %s\n", edge_list.c_str());

  // -- 1. Ingest -------------------------------------------------------------
  EdgeListLoadOptions load;
  load.assign_attributes = true;              // SNAP files carry no attributes
  load.keywords.domain_size = 50;             // paper's synthetic protocol
  load.keywords.keywords_per_vertex = 3;
  load.restrict_to_largest_component = true;  // Definition 1: connected G
  Result<Graph> graph = LoadSnapEdgeList(edge_list, load);
  if (!graph.ok()) {
    std::fprintf(stderr, "load failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded: %zu vertices, %zu edges (largest component)\n",
              graph->NumVertices(), graph->NumEdges());

  // -- 2. Persist the attributed graph ---------------------------------------
  const std::string graph_bin = (workdir / "graph.bin").string();
  Status status = WriteGraphBinary(*graph, graph_bin);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  // -- 3. Offline phase (build + persist the index) --------------------------
  // With no index file on disk, Engine::Open runs the offline phase and —
  // because save_built_index defaults to true — persists it to index_path.
  EngineOptions engine_options;
  engine_options.graph_path = graph_bin;
  engine_options.index_path = (workdir / "index.bin").string();
  Timer offline;
  Result<std::unique_ptr<Engine>> cold = Engine::Open(engine_options);
  if (!cold.ok()) {
    std::fprintf(stderr, "%s\n", cold.status().ToString().c_str());
    return 1;
  }
  std::printf("offline phase: %.2fs -> %s\n", offline.ElapsedSeconds(),
              engine_options.index_path.c_str());

  // -- 4. A later session: warm start from the persisted artifacts -----------
  Timer warm_start;
  Result<std::unique_ptr<Engine>> engine = Engine::Open(engine_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("warm start (load graph + index): %.2fs\n",
              warm_start.ElapsedSeconds());

  Query query;
  query.keywords = {1, 8, 21, 30, 44};
  query.k = 3;
  query.radius = 2;
  query.theta = 0.2;
  query.top_l = 3;
  Timer online;
  Result<TopLResult> answer = (*engine)->Search(query);
  if (!answer.ok()) {
    std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
    return 1;
  }
  std::printf("query answered in %.4fs; %zu communities:\n",
              online.ElapsedSeconds(), answer->communities.size());
  for (std::size_t i = 0; i < answer->communities.size(); ++i) {
    const CommunityResult& c = answer->communities[i];
    std::printf("  #%zu center=%u members=%zu sigma=%.2f influenced=%zu\n",
                i + 1, c.community.center, c.community.size(), c.score(),
                c.influence.size());
  }

  // -- 5. Serving: batched and async queries over the same engine ------------
  std::vector<Query> batch(4, query);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].top_l = 1 + static_cast<std::uint32_t>(i);
  }
  std::vector<Result<TopLResult>> batch_answers = (*engine)->SearchBatch(batch);
  std::size_t batch_ok = 0;
  for (const Result<TopLResult>& r : batch_answers) {
    if (r.ok()) ++batch_ok;
  }
  std::future<Result<TopLResult>> async_answer = (*engine)->Submit(query);
  const bool async_ok = async_answer.get().ok();
  std::printf("batch of %zu: %zu ok; async query: %s\n", batch.size(), batch_ok,
              async_ok ? "ok" : "failed");
  std::printf("engine stats: %s\n", (*engine)->Stats().ToString().c_str());
  return 0;
}

// End-to-end SNAP pipeline: ingest a SNAP-format edge list (the format of
// com-DBLP / com-Amazon), attach synthetic attributes, persist the graph and
// its index as binary artifacts, and answer a query — the workflow for
// running this library against your own datasets.
//
//   $ ./example_snap_pipeline [edge_list.txt [workdir]]
//
// Without arguments, a demo edge list is generated first so the example is
// self-contained.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "topl.h"

namespace {

// Writes a small powerlaw-cluster graph in SNAP format for the demo path.
std::string WriteDemoEdgeList(const std::filesystem::path& dir) {
  topl::PowerlawClusterOptions options;
  options.num_vertices = 5000;
  options.seed = 5;
  topl::Result<topl::Graph> g = topl::MakePowerlawCluster(options);
  TOPL_CHECK(g.ok(), g.status().ToString().c_str());
  const std::string path = (dir / "demo.ungraph.txt").string();
  const topl::Status status = topl::WriteSnapEdgeList(*g, path);
  TOPL_CHECK(status.ok(), status.ToString().c_str());
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace topl;  // NOLINT(build/namespaces)

  const std::filesystem::path workdir =
      argc > 2 ? argv[2] : std::filesystem::temp_directory_path() / "topl_snap";
  std::filesystem::create_directories(workdir);
  const std::string edge_list =
      argc > 1 ? argv[1] : WriteDemoEdgeList(workdir);
  std::printf("edge list: %s\n", edge_list.c_str());

  // -- 1. Ingest -------------------------------------------------------------
  EdgeListLoadOptions load;
  load.assign_attributes = true;              // SNAP files carry no attributes
  load.keywords.domain_size = 50;             // paper's synthetic protocol
  load.keywords.keywords_per_vertex = 3;
  load.restrict_to_largest_component = true;  // Definition 1: connected G
  Result<Graph> graph = LoadSnapEdgeList(edge_list, load);
  if (!graph.ok()) {
    std::fprintf(stderr, "load failed: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded: %zu vertices, %zu edges (largest component)\n",
              graph->NumVertices(), graph->NumEdges());

  // -- 2. Persist the attributed graph ---------------------------------------
  const std::string graph_bin = (workdir / "graph.bin").string();
  Status status = WriteGraphBinary(*graph, graph_bin);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  // -- 3. Offline phase + persist the index ----------------------------------
  const std::string index_bin = (workdir / "index.bin").string();
  Timer offline;
  Result<PrecomputedData> pre = PrecomputedData::Build(*graph, PrecomputeOptions());
  if (!pre.ok()) {
    std::fprintf(stderr, "%s\n", pre.status().ToString().c_str());
    return 1;
  }
  Result<TreeIndex> tree = TreeIndex::Build(*graph, *pre);
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  status = IndexCodec::Write(*pre, *tree, index_bin);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("offline phase: %.2fs -> %s\n", offline.ElapsedSeconds(),
              index_bin.c_str());

  // -- 4. A later session: reload everything and query -----------------------
  Result<Graph> graph2 = ReadGraphBinary(graph_bin);
  if (!graph2.ok()) {
    std::fprintf(stderr, "%s\n", graph2.status().ToString().c_str());
    return 1;
  }
  Result<IndexCodec::LoadedIndex> loaded = IndexCodec::Read(index_bin, *graph2);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }

  Query query;
  query.keywords = {1, 8, 21, 30, 44};
  query.k = 3;
  query.radius = 2;
  query.theta = 0.2;
  query.top_l = 3;
  TopLDetector detector(*graph2, *loaded->data, loaded->tree);
  Timer online;
  Result<TopLResult> answer = detector.Search(query);
  if (!answer.ok()) {
    std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
    return 1;
  }
  std::printf("query answered in %.4fs; %zu communities:\n",
              online.ElapsedSeconds(), answer->communities.size());
  for (std::size_t i = 0; i < answer->communities.size(); ++i) {
    const CommunityResult& c = answer->communities[i];
    std::printf("  #%zu center=%u members=%zu sigma=%.2f influenced=%zu\n",
                i + 1, c.community.center, c.community.size(), c.score(),
                c.influence.size());
  }
  return 0;
}

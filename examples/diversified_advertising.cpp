// Diversified advertising (the paper's DTopL-ICDE motivation): plain
// TopL-ICDE may return L communities that influence the *same* users — a
// wasted ad budget, since each user buys once. DTopL-ICDE instead picks the
// set of L communities with the highest *collective* reach (diversity score,
// Eq. (6)). This example runs both on the same network and reports the
// overlap reduction.
//
//   $ ./example_diversified_advertising [num_users]

#include <cstdio>
#include <cstdlib>
#include <set>

#include "topl.h"

namespace {

// Distinct users influenced by a selection, and the summed overlap.
std::pair<std::size_t, std::size_t> CoverageOf(
    const std::vector<topl::CommunityResult>& communities) {
  std::set<topl::VertexId> distinct;
  std::size_t total = 0;
  for (const topl::CommunityResult& c : communities) {
    total += c.influence.size();
    distinct.insert(c.influence.vertices.begin(), c.influence.vertices.end());
  }
  return {distinct.size(), total - distinct.size()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace topl;  // NOLINT(build/namespaces)

  const std::size_t num_users =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;

  SmallWorldOptions generator;
  generator.num_vertices = num_users;
  generator.keywords.domain_size = 20;
  generator.seed = 23;
  Result<Graph> graph = MakeSmallWorld(generator);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  Result<PrecomputedData> pre = PrecomputedData::Build(*graph, PrecomputeOptions());
  Result<TreeIndex> tree =
      pre.ok() ? TreeIndex::Build(*graph, *pre) : Result<TreeIndex>(pre.status());
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }

  Query query;
  query.keywords = {0, 3, 7};
  query.k = 3;
  query.radius = 2;
  query.theta = 0.2;
  query.top_l = 5;

  // -- Plain TopL-ICDE: the L individually strongest communities ------------
  TopLDetector topl_detector(*graph, *pre, *tree);
  Result<TopLResult> topl_answer = topl_detector.Search(query);
  if (!topl_answer.ok()) {
    std::fprintf(stderr, "%s\n", topl_answer.status().ToString().c_str());
    return 1;
  }

  // -- DTopL-ICDE: the collectively strongest set ----------------------------
  DTopLDetector dtopl_detector(*graph, *pre, *tree);
  DTopLOptions options;
  options.n_factor = 5;
  Result<DTopLResult> dtopl_answer = dtopl_detector.Search(query, options);
  if (!dtopl_answer.ok()) {
    std::fprintf(stderr, "%s\n", dtopl_answer.status().ToString().c_str());
    return 1;
  }

  const auto [topl_distinct, topl_overlap] = CoverageOf(topl_answer->communities);
  const auto [dtopl_distinct, dtopl_overlap] =
      CoverageOf(dtopl_answer->communities);

  DiversityOracle oracle;
  for (const CommunityResult& c : topl_answer->communities) oracle.Add(c.influence);

  std::printf("campaign with L=%u seed communities on %zu users\n\n",
              query.top_l, graph->NumVertices());
  std::printf("%-22s %18s %18s\n", "", "TopL-ICDE", "DTopL-ICDE (WP)");
  std::printf("%-22s %18zu %18zu\n", "distinct users reached", topl_distinct,
              dtopl_distinct);
  std::printf("%-22s %18zu %18zu\n", "overlapping reaches", topl_overlap,
              dtopl_overlap);
  std::printf("%-22s %18.2f %18.2f\n", "diversity score D(S)",
              oracle.TotalScore(), dtopl_answer->diversity_score);
  std::printf("%-22s %18s %18llu\n", "gain evaluations", "-",
              static_cast<unsigned long long>(dtopl_answer->gain_evaluations));

  std::printf("\nselected centers:");
  for (const CommunityResult& c : dtopl_answer->communities) {
    std::printf(" %u", c.community.center);
  }
  std::printf("\n");
  std::printf("\nDTopL-ICDE trades a little per-community strength for "
              "%+.1f%% collective reach.\n",
              100.0 * (dtopl_answer->diversity_score - oracle.TotalScore()) /
                  oracle.TotalScore());
  return 0;
}

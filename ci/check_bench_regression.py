#!/usr/bin/env python3
"""Benchmark regression gate.

Compares a freshly produced benchmark JSON against a committed baseline and
fails (exit 1) when any gated metric regressed by more than the allowed
fraction. Two input shapes are understood:

  - bench_parallel_query / bench_cold_start / bench_updates /
    bench_seed_extraction / bench_serve style: a single JSON object; the
    gated metrics are every "queries_per_s" / "updates_per_s" /
    "extractions_per_s" / "ops_per_s" / "achieved_qps" value (higher is
    better) and every "p99_ms" / "p999_ms" value (lower is better) found
    recursively, keyed by the path to it (e.g.
    runs[threads=8].queries_per_s, overall.p99_ms).
  - google-benchmark --benchmark_format=json: gated metrics are each
    benchmark's "queries_per_s" counter keyed by the benchmark name.

Usage:
  check_bench_regression.py --current=NEW.json --baseline=OLD.json
      [--tolerance=0.25]            # max allowed fractional regression
      [--require=PATH:MIN] ...      # absolute floor on a metric, e.g.
                                    #   --require='runs[threads=8].speedup:2.0'
      [--limit=PATH:MAX] ...        # absolute ceiling on a metric, e.g.
                                    #   --limit='overall.p99_ms:250'
Baselines are refreshed by committing a newly generated JSON over the old
one. The gated-metric key sets of the two files must match exactly: a metric
present in the baseline but missing from the current run (or vice versa)
fails the gate with a message naming the drifted keys, because a silently
skipped metric is an ungated metric. Adding or removing benchmark output
therefore requires regenerating the baseline in the same change.
Tail-latency metrics whose enclosing object reports fewer than
MIN_TAIL_SAMPLES samples ("count") are excluded from the relative
comparison — a p99 over a couple dozen samples is one outlier wide — but
remain visible to --require / --limit.

When $GITHUB_STEP_SUMMARY is set (GitHub Actions), a markdown comparison
table is appended to it so the numbers show up on the workflow run page.
"""

import argparse
import json
import os
import sys

# Metrics where bigger numbers are better; a drop beyond tolerance fails.
HIGHER_BETTER = ("queries_per_s", "updates_per_s", "extractions_per_s",
                 "ops_per_s", "achieved_qps", "speedup", "sharded_speedup",
                 "hit_rate", "compression_ratio")
# Metrics where smaller numbers are better; a rise beyond tolerance fails.
LOWER_BETTER = ("p99_ms", "p999_ms", "query_p50_ms", "shard_imbalance")
# A tail percentile over fewer samples than this is dominated by one or two
# outliers; such metrics are excluded from the baseline comparison (but stay
# available to --require / --limit, which encode absolute intent).
MIN_TAIL_SAMPLES = 100


def collect_metrics(node, prefix, out, unstable):
    """Recursively collects gated metrics from a plain benchmark JSON."""
    if isinstance(node, dict):
        count = node.get("count")
        small = isinstance(count, (int, float)) and count < MIN_TAIL_SAMPLES
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            if key in HIGHER_BETTER + LOWER_BETTER and \
                    isinstance(value, (int, float)):
                out[path] = float(value)
                if small and key in LOWER_BETTER:
                    unstable.add(path)
            else:
                collect_metrics(value, path, out, unstable)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            label = f"{prefix}[{i}]"
            if isinstance(value, dict) and "threads" in value:
                label = f"{prefix}[threads={value['threads']}]"
            collect_metrics(value, label, out, unstable)


def collect_google_benchmark(doc, out):
    for bench in doc.get("benchmarks", []):
        name = bench.get("name", "?")
        if "queries_per_s" in bench:
            out[name + ".queries_per_s"] = float(bench["queries_per_s"])


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    metrics = {}
    unstable = set()
    if isinstance(doc, dict) and "benchmarks" in doc and "context" in doc:
        collect_google_benchmark(doc, metrics)
    else:
        collect_metrics(doc, "", metrics, unstable)
    return metrics, unstable


def is_lower_better(path):
    return any(path == key or path.endswith("." + key) for key in LOWER_BETTER)


def is_speedup(path):
    # Machine-relative ratios (including sharded_speedup) are gated by
    # --require floors, not compared against the baseline's machine.
    return any(path == key or path.endswith("." + key)
               for key in ("speedup", "sharded_speedup"))


def write_step_summary(rows):
    """Appends a markdown comparison table to $GITHUB_STEP_SUMMARY, if set."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path or not rows:
        return
    with open(summary_path, "a") as f:
        f.write("### Benchmark gate\n\n")
        f.write("| metric | baseline | current | change | status |\n")
        f.write("|---|---:|---:|---:|---|\n")
        for metric, base, cur, change, status in rows:
            f.write(f"| `{metric}` | {base} | {cur} | {change} | {status} |\n")
        f.write("\n")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--current", required=True)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--tolerance", type=float, default=0.25)
    parser.add_argument("--require", action="append", default=[],
                        help="PATH:MIN absolute floor, checked on --current")
    parser.add_argument("--limit", action="append", default=[],
                        help="PATH:MAX absolute ceiling, checked on --current")
    args = parser.parse_args()

    current, current_unstable = load_metrics(args.current)
    baseline, baseline_unstable = load_metrics(args.baseline)

    failures = []
    summary_rows = []

    # Key drift is fatal in both directions: a baseline metric the current
    # run no longer emits is an ungated regression vector, and a new current
    # metric with no baseline is ungated until the baseline is regenerated.
    missing = sorted(p for p in baseline if p not in current
                     and not is_speedup(p))
    extra = sorted(p for p in current if p not in baseline
                   and not is_speedup(p))
    for path in missing:
        failures.append(
            f"baseline metric {path} missing from current run — if the "
            f"benchmark output changed intentionally, regenerate and commit "
            f"the baseline JSON")
        summary_rows.append((path, f"{baseline[path]:.2f}", "—", "—",
                             "MISSING"))
    for path in extra:
        failures.append(
            f"current metric {path} has no baseline entry — regenerate and "
            f"commit the baseline JSON to gate it")
        summary_rows.append((path, "—", f"{current[path]:.2f}", "—",
                             "NO BASELINE"))

    compared = 0
    for path, base_value in sorted(baseline.items()):
        if is_speedup(path):
            continue  # speedups are gated via --require, not vs baseline
        if path not in current:
            continue  # already reported above as fatal
        if path in current_unstable or path in baseline_unstable:
            print(f"note: {path} has < {MIN_TAIL_SAMPLES} samples (skipped)")
            continue
        cur_value = current[path]
        compared += 1
        if base_value <= 0:
            continue
        change = (cur_value - base_value) / base_value
        status = "ok"
        if is_lower_better(path):
            # Latency-style metric: regression is the value going *up*.
            if change > args.tolerance:
                status = "REGRESSION"
                failures.append(
                    f"{path}: {base_value:.2f} -> {cur_value:.2f} "
                    f"({change * 100:+.1f}% > +{args.tolerance * 100:.0f}%)")
        elif change < -args.tolerance:
            status = "REGRESSION"
            failures.append(
                f"{path}: {base_value:.2f} -> {cur_value:.2f} "
                f"({change * 100:+.1f}% < -{args.tolerance * 100:.0f}%)")
        print(f"{status:>10}  {path}: {base_value:.2f} -> {cur_value:.2f} "
              f"({change * 100:+.1f}%)")
        summary_rows.append((path, f"{base_value:.2f}", f"{cur_value:.2f}",
                             f"{change * 100:+.1f}%", status))

    for requirement in args.require:
        path, _, minimum = requirement.rpartition(":")
        minimum = float(minimum)
        if path not in current:
            failures.append(f"required metric {path} missing from current run")
            continue
        value = current[path]
        ok = value >= minimum
        print(f"{'ok' if ok else 'BELOW FLOOR':>10}  {path}: {value:.2f} "
              f"(floor {minimum:.2f})")
        summary_rows.append((path, f"floor {minimum:.2f}", f"{value:.2f}",
                             "—", "ok" if ok else "BELOW FLOOR"))
        if not ok:
            failures.append(f"{path}: {value:.2f} below required {minimum:.2f}")

    for limit in args.limit:
        path, _, maximum = limit.rpartition(":")
        maximum = float(maximum)
        if path not in current:
            failures.append(f"limited metric {path} missing from current run")
            continue
        value = current[path]
        ok = value <= maximum
        print(f"{'ok' if ok else 'OVER LIMIT':>10}  {path}: {value:.2f} "
              f"(limit {maximum:.2f})")
        summary_rows.append((path, f"limit {maximum:.2f}", f"{value:.2f}",
                             "—", "ok" if ok else "OVER LIMIT"))
        if not ok:
            failures.append(f"{path}: {value:.2f} above limit {maximum:.2f}")

    write_step_summary(summary_rows)
    if compared == 0 and not args.require and not args.limit:
        print("error: no shared metrics between current and baseline")
        return 1
    if failures:
        print("\nbenchmark gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nbenchmark gate passed ({compared} metrics compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

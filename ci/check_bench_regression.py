#!/usr/bin/env python3
"""Benchmark regression gate.

Compares a freshly produced benchmark JSON against a committed baseline and
fails (exit 1) when any gated throughput metric regressed by more than the
allowed fraction. Two input shapes are understood:

  - bench_parallel_query / bench_cold_start / bench_updates /
    bench_seed_extraction style: a single JSON object; the gated metrics are
    every "queries_per_s" / "updates_per_s" / "extractions_per_s" value found
    recursively, keyed by the path to it (e.g.
    runs[threads=8].queries_per_s, incremental.extractions_per_s).
  - google-benchmark --benchmark_format=json: gated metrics are each
    benchmark's "queries_per_s" counter keyed by the benchmark name.

Usage:
  check_bench_regression.py --current=NEW.json --baseline=OLD.json
      [--tolerance=0.25]            # max allowed fractional regression
      [--require=PATH:MIN] ...      # absolute floor on a metric, e.g.
                                    #   --require='runs[threads=8].speedup:2.0'
Baselines are refreshed by committing a newly generated JSON over the old
one; the gate compares whatever metrics the two files share (a metric
missing from either side is reported but not fatal, so adding benchmarks
does not require lockstep baseline updates).
"""

import argparse
import json
import sys


def collect_metrics(node, prefix, out):
    """Recursively collects gated metrics from a plain benchmark JSON."""
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            if key in ("queries_per_s", "updates_per_s", "extractions_per_s",
                       "speedup") and \
                    isinstance(value, (int, float)):
                out[path] = float(value)
            else:
                collect_metrics(value, path, out)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            label = f"{prefix}[{i}]"
            if isinstance(value, dict) and "threads" in value:
                label = f"{prefix}[threads={value['threads']}]"
            collect_metrics(value, label, out)


def collect_google_benchmark(doc, out):
    for bench in doc.get("benchmarks", []):
        name = bench.get("name", "?")
        if "queries_per_s" in bench:
            out[name + ".queries_per_s"] = float(bench["queries_per_s"])


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    metrics = {}
    if isinstance(doc, dict) and "benchmarks" in doc and "context" in doc:
        collect_google_benchmark(doc, metrics)
    else:
        collect_metrics(doc, "", metrics)
    return metrics


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--current", required=True)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--tolerance", type=float, default=0.25)
    parser.add_argument("--require", action="append", default=[],
                        help="PATH:MIN absolute floor, checked on --current")
    args = parser.parse_args()

    current = load_metrics(args.current)
    baseline = load_metrics(args.baseline)

    failures = []
    compared = 0
    for path, base_value in sorted(baseline.items()):
        if path == "speedup" or path.endswith(".speedup"):
            continue  # speedups are gated via --require, not vs baseline
        if path not in current:
            print(f"note: {path} missing from current run (skipped)")
            continue
        cur_value = current[path]
        compared += 1
        if base_value <= 0:
            continue
        change = (cur_value - base_value) / base_value
        status = "ok"
        if change < -args.tolerance:
            status = "REGRESSION"
            failures.append(
                f"{path}: {base_value:.2f} -> {cur_value:.2f} "
                f"({change * 100:+.1f}% < -{args.tolerance * 100:.0f}%)")
        print(f"{status:>10}  {path}: {base_value:.2f} -> {cur_value:.2f} "
              f"({change * 100:+.1f}%)")

    for requirement in args.require:
        path, _, minimum = requirement.rpartition(":")
        minimum = float(minimum)
        if path not in current:
            failures.append(f"required metric {path} missing from current run")
            continue
        value = current[path]
        ok = value >= minimum
        print(f"{'ok' if ok else 'BELOW FLOOR':>10}  {path}: {value:.2f} "
              f"(floor {minimum:.2f})")
        if not ok:
            failures.append(f"{path}: {value:.2f} below required {minimum:.2f}")

    if compared == 0 and not args.require:
        print("error: no shared metrics between current and baseline")
        return 1
    if failures:
        print("\nbenchmark gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nbenchmark gate passed ({compared} metrics compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// topl_cli — command-line front end for the library's full pipeline.
//
// Offline phase (artifact construction):
//   topl_cli generate --kind=uni --vertices=10000 --out=graph.bin
//   topl_cli convert  --in=com-dblp.ungraph.txt --out=graph.bin
//   topl_cli index build   --graph=graph.bin --out=index.idx
//                          [--rmax=3 --threads=0 --format=v2|legacy
//                           --reorder=0 --compress=0 --shards=0]
//   topl_cli index inspect --artifact=index.idx
//   topl_cli index migrate --in=old.bin --graph=graph.bin --out=index.idx
//                          [--compress=0]
//   topl_cli update   --index=index.idx --delta=delta.txt --out=patched.idx
//                     [--journal=wal.jrn]
//   topl_cli recover  --index=index.idx --journal=wal.jrn
//                     [--out=patched.idx --shards=N --truncate-journal]
//   topl_cli stats    --graph=graph.bin
//
// `index build` writes the mmap-able TOPLIDX2 artifact (graph + precompute +
// tree in one file) unless --format=legacy asks for the old TOPLIDX1 stream.
// --reorder=1 permutes vertices into a locality-preserving order
// (graph/reorder.h) before CSR packing and records the internal→external
// permutation in the artifact's g.extids section, so every id the online
// commands print is still the original graph's id; --compress=1 stores the
// large array sections delta+varint-encoded (artifact v2). `index inspect`
// dumps an artifact's section table, per-section encoding and checksums;
// `index migrate` rewrites a TOPLIDX1 file — or re-encodes an existing
// TOPLIDX2 artifact — as TOPLIDX2, honoring --compress. Bare
// `topl_cli index --graph=... --out=...` remains an alias for `index build`.
//
// `convert` streams the edge list (bounded memory for the line buffer; the
// edge set itself is what's retained) and reports progress every million
// edges read.
//
// `update` applies a GraphDelta (text format of graph/delta_io.h: one
// "e+ u v p [p]", "e- u v", "w+ v kw" or "w- v kw" per line) to a TOPLIDX2
// artifact with incremental maintenance — only the update's dirty region is
// re-precomputed — and writes the patched artifact (--out may equal --index;
// the input is read before the output is written). Serving answers from the
// patched artifact is byte-identical to rebuilding the index from scratch on
// the mutated graph. The rewrite is atomic (temp file + fsync + rename), so
// a crash mid-update leaves the previous artifact intact. With
// --journal=PATH the delta is additionally fsync'd into a write-ahead
// journal *before* any rewrite work and the journal is truncated only after
// the rewritten artifact is durable — a crash anywhere in between leaves the
// old artifact plus a replayable journal record for `recover`. (The one
// window left open: a crash after the rename but before the truncate leaves
// a record whose delta the artifact already contains; replaying it then
// fails with a typed error instead of silently double-applying.)
//
// `recover` replays a write-ahead journal (EngineOptions::journal_path /
// `update --journal`) on top of an artifact — or, with --shards=N, a
// coordinator journal on top of the `<index>.s0..s{N-1}` artifact family —
// healing any torn trailing record, and prints the recovery report (records
// replayed, torn bytes discarded). The recovered engine is byte-identical to
// one that applied the same acknowledged deltas live. --out additionally
// writes the recovered state as a fresh artifact (unsharded only), and
// --truncate-journal (requires --out) empties the journal once that artifact
// is durable.
//
// Online phase (all served through topl::Engine::Open; a missing index file
// is built in-process, and persisted back when --save-index=1):
//   topl_cli query    --graph=graph.bin --index=index.bin
//                     --keywords=1,8,21 --k=4 --r=2 --theta=0.2 --L=5
//                     [--deadline-ms=0 --progressive --chunk=8]
//                     [--mmap-populate=0 --mmap-hugepages=0
//                      --reorder=0 --compress=0]
//   topl_cli dtopl    ... same flags ... [--n=5 --algorithm=wp|wop|optimal]
//   topl_cli batch    --graph=graph.bin --index=index.bin --queries=queries.txt
//                     [--threads=0 --repeat=1 --quiet=0]
//   topl_cli serve-bench --graph=graph.bin --index=index.bin
//                     [--mix=mixed --workers=8 --qps=0 --seconds=5
//                      --warmup-seconds=0.5 --seed=42 --popularity=zipf
//                      --zipf=0 --signatures=0 --deadline-ms=0
//                      --slo-qps=0 --slo-p99-ms=0 --slo-p999-ms=0 --json=]
//
// All online subcommands also accept --shards=N to serve through a
// share-nothing ShardedEngine: N independent engines over the
// `<index>.s0..s{N-1}` artifact family written by `index build --shards=N`
// (built in-process from --graph when the family is missing), with queries
// routed by shard-root admission and merged in the canonical order — answers
// are byte-identical to unsharded serving. `--shards` composes with --cache
// (per-shard result caches with shard-local invalidation); it rejects
// --reorder, since sharded artifacts keep identity external ids. query/dtopl
// print the per-shard routed-op fan-out, and serve-bench's report/JSON gains
// per-shard routed-op counts plus the max/mean load-imbalance ratio.
//
// All online subcommands accept --cache=1 [--cache-max-mb=64] to serve
// repeated queries from the snapshot-epoch result cache (exact dirty-region
// invalidation on update; answers stay byte-identical to uncached serving),
// --mmap-populate=1 / --mmap-hugepages=1 to prefault / THP-back the mmap'd
// artifact, and --reorder=1 / --compress=1 to apply locality reordering /
// section compression when the index is built in-process. When the served
// artifact carries a vertex permutation, printed community centers are
// always the original (external) ids.
//
// `serve-bench` replays a deterministic mixed workload (TopL / DTopL /
// progressive / live graph updates; named mixes read_heavy, update_heavy,
// progressive_scan, repeat_heavy, mixed; --zipf=0/--signatures=0 keep the
// mix's own values) against the opened engine — closed-loop when
// --qps=0 (capacity ceiling) or open-loop at the target rate, with latency
// measured from each operation's *intended* arrival so a stalled engine
// cannot hide its backlog (no coordinated omission). Prints the per-kind
// latency table, optionally writes the JSON report, and exits non-zero on
// any failed operation or breached --slo-* threshold.
//
// --deadline-ms gives the query a wall-clock budget: on expiry it returns
// its best-so-far communities marked "truncated" plus the remaining score
// upper bound (the anytime gap). --progressive streams every intermediate
// top-L improvement as the search converges; both flags route the query
// through the engine's progressive path, which also scores candidate waves
// in parallel chunks over the engine's worker pool (--threads).
//
// The batch query file holds one query per line:
//   <keywords-csv> [k] [r] [theta] [L] [dtopl]
// e.g. "1,8,21 4 2 0.2 5" or "3,14 4 2 0.2 5 dtopl"; omitted fields fall
// back to the command-line flag defaults, '#' starts a comment. The batch is
// fanned out across the engine's worker pool, and cumulative EngineStats
// (throughput, p50/p99 latency, prune counters) are printed at the end.
//
// All subcommands exit non-zero with a Status message on failure.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "topl.h"

namespace {

using namespace topl;  // NOLINT(build/namespaces)

// --key=value flags into a map; returns false on malformed arguments.
bool ParseFlags(int argc, char** argv, int first,
                std::map<std::string, std::string>* flags) {
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) return false;
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      (*flags)[arg.substr(2)] = "1";
    } else {
      (*flags)[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return true;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

std::uint64_t IntFlag(const std::map<std::string, std::string>& flags,
                      const std::string& key, std::uint64_t fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : std::strtoull(it->second.c_str(), nullptr, 10);
}

double DoubleFlag(const std::map<std::string, std::string>& flags,
                  const std::string& key, double fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

std::vector<KeywordId> ParseKeywordList(const std::string& csv) {
  std::vector<KeywordId> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string token = csv.substr(pos, comma - pos);
    if (!token.empty()) {
      out.push_back(static_cast<KeywordId>(std::strtoul(token.c_str(), nullptr, 10)));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: topl_cli <generate|convert|index|update|recover|stats|"
               "query|dtopl|batch|serve-bench> [--flag=value ...]\n"
               "       topl_cli index <build|inspect|migrate> [--flag=value ...]\n"
               "see the header comment of tools/topl_cli.cc for flags\n");
  return 2;
}

int CmdGenerate(const std::map<std::string, std::string>& flags) {
  const std::string kind = FlagOr(flags, "kind", "uni");
  const std::string out = FlagOr(flags, "out", "graph.bin");
  KeywordModel keywords;
  keywords.keywords_per_vertex =
      static_cast<std::uint32_t>(IntFlag(flags, "keywords-per-vertex", 3));
  keywords.domain_size = static_cast<std::uint32_t>(IntFlag(flags, "domain", 50));
  const std::size_t n = IntFlag(flags, "vertices", 10000);
  const std::uint64_t seed = IntFlag(flags, "seed", 42);

  Result<Graph> graph = Status::InvalidArgument("unknown kind: " + kind);
  if (kind == "uni" || kind == "gau" || kind == "zipf") {
    SmallWorldOptions options;
    options.num_vertices = n;
    options.seed = seed;
    options.keywords = keywords;
    options.keywords.distribution = kind == "uni" ? KeywordDistribution::kUniform
                                    : kind == "gau"
                                        ? KeywordDistribution::kGaussian
                                        : KeywordDistribution::kZipf;
    graph = MakeSmallWorld(options);
  } else if (kind == "dblp") {
    graph = MakeDblpLike(n, seed);
  } else if (kind == "amazon") {
    graph = MakeAmazonLike(n, seed);
  }
  if (!graph.ok()) return Fail(graph.status());
  const Status status = WriteGraphBinary(*graph, out);
  if (!status.ok()) return Fail(status);
  std::printf("wrote %s: %zu vertices, %zu edges\n", out.c_str(),
              graph->NumVertices(), graph->NumEdges());
  return 0;
}

int CmdConvert(const std::map<std::string, std::string>& flags) {
  const std::string in = FlagOr(flags, "in", "");
  const std::string out = FlagOr(flags, "out", "graph.bin");
  if (in.empty()) return Usage();
  EdgeListLoadOptions load;
  load.assign_attributes = true;
  load.keywords.domain_size = static_cast<std::uint32_t>(IntFlag(flags, "domain", 50));
  load.keywords.keywords_per_vertex =
      static_cast<std::uint32_t>(IntFlag(flags, "keywords-per-vertex", 3));
  load.attribute_seed = IntFlag(flags, "seed", 42);
  load.restrict_to_largest_component = FlagOr(flags, "largest-cc", "1") == "1";
  load.progress = [](std::size_t edges) {
    std::fprintf(stderr, "  ... %zuM edges read\n", edges / 1000000);
  };
  Result<Graph> graph = LoadSnapEdgeList(in, load);
  if (!graph.ok()) return Fail(graph.status());
  const Status status = WriteGraphBinary(*graph, out);
  if (!status.ok()) return Fail(status);
  std::printf("converted %s -> %s (%zu vertices, %zu edges)\n", in.c_str(),
              out.c_str(), graph->NumVertices(), graph->NumEdges());
  return 0;
}

int CmdIndexBuild(const std::map<std::string, std::string>& flags) {
  const std::string graph_path = FlagOr(flags, "graph", "graph.bin");
  const std::string out = FlagOr(flags, "out", "index.bin");
  const std::string format = FlagOr(flags, "format", "v2");
  if (format != "v2" && format != "legacy") {
    return Fail(Status::InvalidArgument("unknown --format: " + format +
                                        " (expected v2 or legacy)"));
  }
  const bool reorder = FlagOr(flags, "reorder", "0") == "1";
  const bool compress = FlagOr(flags, "compress", "0") == "1";
  if (format == "legacy" && (reorder || compress)) {
    return Fail(Status::InvalidArgument(
        "--format=legacy cannot store a vertex permutation or encoded "
        "sections; drop --reorder/--compress or use --format=v2"));
  }
  const std::uint32_t shards =
      static_cast<std::uint32_t>(IntFlag(flags, "shards", 0));
  if (shards > 0) {
    // Sharded build: one offline phase, one artifact per shard at
    // <out>.s<k>. Sharded artifacts keep identity external ids — the
    // partition already follows the locality order, so a vertex permutation
    // on top would only re-split the shards' contiguous runs.
    if (format == "legacy") {
      return Fail(Status::InvalidArgument(
          "--shards requires --format=v2 (TOPLIDX1 has no shard manifest)"));
    }
    if (reorder) {
      return Fail(Status::InvalidArgument(
          "--shards and --reorder are mutually exclusive: sharded artifacts "
          "keep identity external ids"));
    }
    Result<Graph> graph = ReadGraphBinary(graph_path);
    if (!graph.ok()) return Fail(graph.status());
    Timer timer;
    ShardedEngineOptions options;
    options.num_shards = shards;
    options.engine.precompute.r_max =
        static_cast<std::uint32_t>(IntFlag(flags, "rmax", 3));
    options.engine.precompute.num_threads = IntFlag(flags, "threads", 0);
    const Status status =
        ShardedEngine::BuildArtifacts(*graph, options, out, compress);
    if (!status.ok()) return Fail(status);
    std::printf("indexed %s in %.2fs -> %s.s0..s%u (TOPLIDX2 sharded%s)\n",
                graph_path.c_str(), timer.ElapsedSeconds(), out.c_str(),
                shards - 1, compress ? ", compressed" : "");
    return 0;
  }
  Result<Graph> graph = ReadGraphBinary(graph_path);
  if (!graph.ok()) return Fail(graph.status());
  Timer timer;
  std::vector<VertexId> external_ids;
  if (reorder) {
    Result<ReorderedGraph> reordered = ReorderForLocality(*graph);
    if (!reordered.ok()) return Fail(reordered.status());
    *graph = std::move(reordered->graph);
    external_ids = std::move(reordered->external_ids);
  }
  PrecomputeOptions options;
  options.r_max = static_cast<std::uint32_t>(IntFlag(flags, "rmax", 3));
  options.num_threads = IntFlag(flags, "threads", 0);
  Result<PrecomputedData> pre = PrecomputedData::Build(*graph, options);
  if (!pre.ok()) return Fail(pre.status());
  Result<TreeIndex> tree = TreeIndex::Build(*graph, *pre);
  if (!tree.ok()) return Fail(tree.status());
  ArtifactWriteOptions write_options;
  write_options.compress = compress;
  write_options.external_ids = external_ids;
  const Status status =
      format == "legacy"
          ? IndexCodec::Write(*pre, *tree, out)
          : ArtifactWriter::Write(*graph, *pre, *tree, out, write_options);
  if (!status.ok()) return Fail(status);
  std::printf("indexed %s in %.2fs -> %s (%s%s%s, %zu tree nodes, height %u)\n",
              graph_path.c_str(), timer.ElapsedSeconds(), out.c_str(),
              format == "legacy" ? "TOPLIDX1" : "TOPLIDX2",
              reorder ? ", reordered" : "", compress ? ", compressed" : "",
              tree->NumNodes(), tree->height());
  return 0;
}

int CmdIndexInspect(const std::map<std::string, std::string>& flags) {
  const std::string path =
      FlagOr(flags, "artifact", FlagOr(flags, "in", "index.bin"));
  Result<ArtifactInfo> info = ArtifactReader::Inspect(path);
  if (!info.ok()) {
    // A bad magic usually means a legacy TOPLIDX1 file; an unreadable file
    // keeps its IO error.
    if (info.status().IsCorruption()) {
      std::fprintf(stderr,
                   "hint: convert legacy TOPLIDX1 indexes with "
                   "`topl_cli index migrate`\n");
    }
    return Fail(info.status());
  }
  std::printf("%s: TOPLIDX2 v%u, %llu bytes, checksums %s\n", path.c_str(),
              info->version, static_cast<unsigned long long>(info->file_size),
              info->checksums_ok ? "OK" : "MISMATCH");
  std::printf("graph: %llu vertices, %llu edges, %llu keyword entries\n",
              static_cast<unsigned long long>(info->num_vertices),
              static_cast<unsigned long long>(info->num_edges),
              static_cast<unsigned long long>(info->total_keywords));
  std::printf("index: r_max=%u, %u thetas, %u signature bits, "
              "%llu tree nodes, height %u\n",
              info->r_max, info->num_thetas, info->signature_bits,
              static_cast<unsigned long long>(info->tree_num_nodes),
              info->tree_height);
  std::printf("external-id permutation: %s\n",
              info->has_external_ids ? "yes (reordered build)" : "identity");
  std::printf("%-14s %12s %14s %6s %6s  %s\n", "section", "offset", "bytes",
              "elem", "enc", "xxh64");
  for (const ArtifactSectionInfo& s : info->sections) {
    std::printf("%-14s %12llu %14llu %6u %6s  %016llx\n", s.name.c_str(),
                static_cast<unsigned long long>(s.offset),
                static_cast<unsigned long long>(s.size), s.elem_size,
                s.encoding == 0 ? "raw" : "dv",
                static_cast<unsigned long long>(s.checksum));
  }
  return info->checksums_ok ? 0 : 1;
}

int CmdIndexMigrate(const std::map<std::string, std::string>& flags) {
  const std::string in = FlagOr(flags, "in", "");
  const std::string graph_path = FlagOr(flags, "graph", "graph.bin");
  const std::string out = FlagOr(flags, "out", "");
  if (in.empty() || out.empty()) {
    return Fail(Status::InvalidArgument(
        "index migrate needs --in=OLD_INDEX and --out=NEW_ARTIFACT"));
  }
  ArtifactWriteOptions write_options;
  write_options.compress = FlagOr(flags, "compress", "0") == "1";

  // A TOPLIDX2 input is re-encoded in place (raw <-> compressed), keeping
  // its embedded graph and external-id permutation; no --graph needed.
  if (ArtifactReader::IsArtifact(in)) {
    Result<MappedIndex> mapped = ArtifactReader::Open(in);
    if (!mapped.ok()) return Fail(mapped.status());
    write_options.external_ids = mapped->external_ids;
    const Status status = ArtifactWriter::Write(mapped->graph, *mapped->pre,
                                                mapped->tree, out, write_options);
    if (!status.ok()) return Fail(status);
    std::printf("migrated %s -> %s (TOPLIDX2%s, %zu tree nodes)\n", in.c_str(),
                out.c_str(), write_options.compress ? ", compressed" : "",
                mapped->tree.NumNodes());
    return 0;
  }

  Result<Graph> graph = ReadGraphBinary(graph_path);
  if (!graph.ok()) return Fail(graph.status());
  Result<IndexCodec::LoadedIndex> loaded = IndexCodec::Read(in, *graph);
  if (!loaded.ok()) return Fail(loaded.status());
  const Status status = ArtifactWriter::Write(*graph, *loaded->data,
                                              loaded->tree, out, write_options);
  if (!status.ok()) return Fail(status);
  std::printf("migrated %s -> %s (TOPLIDX2%s, %zu tree nodes)\n", in.c_str(),
              out.c_str(), write_options.compress ? ", compressed" : "",
              loaded->tree.NumNodes());
  return 0;
}

int CmdUpdate(const std::map<std::string, std::string>& flags) {
  const std::string index_path = FlagOr(flags, "index", "");
  const std::string delta_path = FlagOr(flags, "delta", "");
  const std::string out = FlagOr(flags, "out", index_path);
  if (index_path.empty() || delta_path.empty()) {
    return Fail(Status::InvalidArgument(
        "update needs --index=ARTIFACT and --delta=FILE (and optionally "
        "--out=ARTIFACT, default --index)"));
  }
  if (!ArtifactReader::IsArtifact(index_path)) {
    return Fail(Status::InvalidArgument(
        index_path + " is not a TOPLIDX2 artifact (run `topl_cli index "
        "migrate` on legacy indexes first)"));
  }
  Result<GraphDelta> delta = ReadGraphDeltaText(delta_path);
  if (!delta.ok()) return Fail(delta.status());
  Result<MappedIndex> mapped = ArtifactReader::Open(index_path);
  if (!mapped.ok()) return Fail(mapped.status());

  // A reordered artifact stores vertices in internal (locality) order; the
  // delta file speaks the original id space, so translate its vertex ids
  // through the inverse of the stored permutation before applying.
  if (!mapped->external_ids.empty()) {
    std::vector<VertexId> to_internal(mapped->external_ids.size());
    for (VertexId v = 0; v < mapped->external_ids.size(); ++v) {
      to_internal[mapped->external_ids[v]] = v;
    }
    const auto remap = [&](VertexId* v) -> Status {
      if (*v >= to_internal.size()) {
        return Status::InvalidArgument(
            "delta names vertex " + std::to_string(*v) +
            " outside the graph's id space");
      }
      *v = to_internal[*v];
      return Status::OK();
    };
    Status remapped = Status::OK();
    for (auto& op : delta->edge_deletes) {
      if (remapped.ok()) remapped = remap(&op.u);
      if (remapped.ok()) remapped = remap(&op.v);
    }
    for (auto& op : delta->edge_inserts) {
      if (remapped.ok()) remapped = remap(&op.u);
      if (remapped.ok()) remapped = remap(&op.v);
    }
    for (auto& op : delta->keyword_adds) {
      if (remapped.ok()) remapped = remap(&op.v);
    }
    for (auto& op : delta->keyword_removes) {
      if (remapped.ok()) remapped = remap(&op.v);
    }
    if (!remapped.ok()) return Fail(remapped);
  }

  // Open (or create) the write-ahead journal up front so an unreadable
  // journal fails before any maintenance work; the delta is appended only
  // after it has validated + applied in memory, mirroring the engine's own
  // ordering (never journal a delta that can't apply).
  const std::string journal_path = FlagOr(flags, "journal", "");
  std::unique_ptr<UpdateJournal> journal;
  if (!journal_path.empty()) {
    UpdateJournal::OpenInfo open_info;
    Result<std::unique_ptr<UpdateJournal>> opened =
        UpdateJournal::Open(journal_path, &open_info);
    if (!opened.ok()) return Fail(opened.status());
    journal = std::move(*opened);
    if (open_info.torn_bytes_discarded > 0) {
      std::printf("journal %s: healed %llu torn trailing bytes\n",
                  journal_path.c_str(),
                  static_cast<unsigned long long>(open_info.torn_bytes_discarded));
    }
  }

  ThreadPool pool(IntFlag(flags, "threads", 0));
  Timer timer;
  Result<UpdatedIndex> updated = IndexUpdater::Apply(
      mapped->graph, *mapped->pre, mapped->tree, *delta, &pool);
  if (!updated.ok()) return Fail(updated.status());

  if (journal != nullptr) {
    // Durability first: the (internal-id-space) delta hits a fsync'd journal
    // record before the artifact rewrite starts, so a crash below leaves the
    // old artifact plus a replayable record for `recover`.
    const Status appended = journal->Append(*delta);
    if (!appended.ok()) return Fail(appended);
    std::printf("journaled %zu delta ops -> %s (record %llu)\n",
                delta->NumOps(), journal_path.c_str(),
                static_cast<unsigned long long>(journal->num_records()));
  }
  const double maintain_seconds = timer.ElapsedSeconds();
  // The patched artifact keeps the input's permutation and encoding, so a
  // reordered/compressed index stays reordered/compressed across updates.
  ArtifactWriteOptions write_options;
  write_options.compress = mapped->compressed;
  write_options.external_ids = mapped->external_ids;
  const Status status = ArtifactWriter::Write(updated->graph, *updated->pre,
                                              updated->tree, out, write_options);
  if (!status.ok()) return Fail(status);
  if (journal != nullptr) {
    // The rewritten artifact is durable (atomic rename + fsync), so its
    // journal record is now redundant; drop it so a later `recover` does not
    // re-apply a delta the artifact already contains.
    const Status truncated = journal->Truncate();
    if (!truncated.ok()) return Fail(truncated);
    std::printf("journal %s truncated (delta folded into %s)\n",
                journal_path.c_str(), out.c_str());
  }
  std::printf("applied %zu delta ops in %.3fs -> %s (%zu vertices, %zu edges)\n",
              delta->NumOps(), maintain_seconds, out.c_str(),
              updated->graph.NumVertices(), updated->graph.NumEdges());
  std::printf("rebuild scope: %s\n", updated->scope.ToString().c_str());
  return 0;
}

int CmdRecover(const std::map<std::string, std::string>& flags) {
  const std::string index_path = FlagOr(flags, "index", "");
  const std::string journal_path = FlagOr(flags, "journal", "");
  if (index_path.empty() || journal_path.empty()) {
    return Fail(Status::InvalidArgument(
        "recover needs --index=ARTIFACT (or a --shards family prefix) and "
        "--journal=FILE"));
  }
  const std::string out = FlagOr(flags, "out", "");
  const bool truncate_journal = FlagOr(flags, "truncate-journal", "0") == "1";
  if (truncate_journal && out.empty()) {
    return Fail(Status::InvalidArgument(
        "--truncate-journal without --out would discard the journaled deltas "
        "without persisting them anywhere; add --out=ARTIFACT"));
  }
  const std::uint32_t shards =
      static_cast<std::uint32_t>(IntFlag(flags, "shards", 0));

  Timer timer;
  RecoveryInfo info;
  std::unique_ptr<Engine> engine;
  if (shards > 0) {
    if (!out.empty()) {
      return Fail(Status::InvalidArgument(
          "--out is unsharded-only: a recovered fleet re-persists via "
          "`index build --shards` from the recovered graph"));
    }
    ShardedEngineOptions options;
    options.num_shards = shards;
    options.journal_path = journal_path;
    options.engine.num_threads = IntFlag(flags, "threads", 0);
    Result<std::unique_ptr<ShardedEngine>> recovered =
        ShardedEngine::Recover(index_path, options, &info);
    if (!recovered.ok()) return Fail(recovered.status());
    const EngineStats stats = (*recovered)->Stats();
    std::printf("recovered %s.s0..s%u + %s in %.3fs\n", index_path.c_str(),
                shards - 1, journal_path.c_str(), timer.ElapsedSeconds());
    std::printf("recovery report: %llu records replayed, %llu torn bytes "
                "discarded, journal %s\n",
                static_cast<unsigned long long>(info.records_replayed),
                static_cast<unsigned long long>(info.torn_bytes_discarded),
                info.journal_created ? "created empty" : "existing");
    std::printf("serving epoch %llu (%zu vertices, %zu edges per replica)\n",
                static_cast<unsigned long long>(stats.snapshot_epoch),
                (*recovered)->shard(0).graph().NumVertices(),
                (*recovered)->shard(0).graph().NumEdges());
    return 0;
  }

  EngineOptions options;
  options.index_path = index_path;
  options.journal_path = journal_path;
  options.num_threads = IntFlag(flags, "threads", 0);
  Result<std::unique_ptr<Engine>> recovered = Engine::Recover(options, &info);
  if (!recovered.ok()) return Fail(recovered.status());
  engine = std::move(*recovered);
  std::printf("recovered %s + %s in %.3fs\n", index_path.c_str(),
              journal_path.c_str(), timer.ElapsedSeconds());
  std::printf("recovery report: %llu records replayed, %llu torn bytes "
              "discarded, journal %s\n",
              static_cast<unsigned long long>(info.records_replayed),
              static_cast<unsigned long long>(info.torn_bytes_discarded),
              info.journal_created ? "created empty" : "existing");
  std::printf("serving epoch %llu (%zu vertices, %zu edges)\n",
              static_cast<unsigned long long>(engine->Stats().snapshot_epoch),
              engine->graph().NumVertices(), engine->graph().NumEdges());

  if (!out.empty()) {
    // Persist the recovered state, preserving the source artifact's
    // permutation and encoding; the write is atomic, so --out may equal
    // --index.
    ArtifactWriteOptions write_options;
    write_options.compress = engine->artifact_compressed();
    write_options.external_ids = engine->ExternalIds();
    const std::shared_ptr<const EngineSnapshot> snap = engine->snapshot();
    const Status written = ArtifactWriter::Write(
        *snap->graph, *snap->pre, *snap->tree, out, write_options);
    if (!written.ok()) return Fail(written);
    std::printf("wrote recovered artifact -> %s\n", out.c_str());
    if (truncate_journal) {
      Result<std::unique_ptr<UpdateJournal>> journal =
          UpdateJournal::Open(journal_path);
      if (!journal.ok()) return Fail(journal.status());
      const Status truncated = (*journal)->Truncate();
      if (!truncated.ok()) return Fail(truncated);
      std::printf("journal %s truncated (records folded into %s)\n",
                  journal_path.c_str(), out.c_str());
    }
  }
  return 0;
}

int CmdStats(const std::map<std::string, std::string>& flags) {
  const std::string graph_path = FlagOr(flags, "graph", "graph.bin");
  Result<Graph> graph = ReadGraphBinary(graph_path);
  if (!graph.ok()) return Fail(graph.status());
  std::printf("vertices: %zu\nedges: %zu\n", graph->NumVertices(),
              graph->NumEdges());
  std::printf("connected: %s\n", IsConnected(*graph) ? "yes" : "no");
  std::size_t max_degree = 0;
  for (VertexId v = 0; v < graph->NumVertices(); ++v) {
    max_degree = std::max(max_degree, graph->Degree(v));
  }
  std::printf("avg degree: %.2f\nmax degree: %zu\n",
              graph->NumVertices() == 0
                  ? 0.0
                  : 2.0 * graph->NumEdges() / graph->NumVertices(),
              max_degree);
  const auto trussness = TrussDecomposition(*graph);
  std::uint32_t max_truss = 2;
  for (std::uint32_t t : trussness) max_truss = std::max(max_truss, t);
  const auto cores = CoreDecomposition(*graph);
  std::uint32_t max_core = 0;
  for (std::uint32_t c : cores) max_core = std::max(max_core, c);
  std::printf("max trussness: %u\nmax core: %u\n", max_truss, max_core);
  std::printf("keyword domain bound: %u\n", graph->KeywordDomainBound());
  return 0;
}

Result<Query> BuildQuery(const std::map<std::string, std::string>& flags) {
  Query query;
  query.keywords = ParseKeywordList(FlagOr(flags, "keywords", ""));
  query.k = static_cast<std::uint32_t>(IntFlag(flags, "k", 4));
  query.radius = static_cast<std::uint32_t>(IntFlag(flags, "r", 2));
  query.theta = DoubleFlag(flags, "theta", 0.2);
  query.top_l = static_cast<std::uint32_t>(IntFlag(flags, "L", 5));
  TOPL_RETURN_IF_ERROR(query.Validate());
  return query;
}

// Centers are printed in the original graph's id space: a reordered build
// relabels vertices internally, and Engine::ExternalId undoes that.
void PrintCommunities(const Engine& engine,
                      const std::vector<CommunityResult>& communities) {
  for (std::size_t i = 0; i < communities.size(); ++i) {
    const CommunityResult& c = communities[i];
    std::printf("#%zu center=%u members=%zu sigma=%.3f influenced=%zu\n", i + 1,
                engine.ExternalId(c.community.center), c.community.size(),
                c.score(), c.influence.size());
  }
}

// Shared Engine::Open wiring for the online subcommands.
Result<std::unique_ptr<Engine>> OpenEngine(
    const std::map<std::string, std::string>& flags) {
  EngineOptions options;
  options.graph_path = FlagOr(flags, "graph", "");
  if (options.graph_path.empty() && std::filesystem::exists("graph.bin")) {
    // Keep the historical graph.bin default, but only when the file exists:
    // TOPLIDX2 artifacts embed the graph, so an artifact-only invocation
    // must not demand a graph file it never needs.
    options.graph_path = "graph.bin";
  }
  options.index_path = FlagOr(flags, "index", "index.bin");
  options.save_built_index = FlagOr(flags, "save-index", "0") == "1";
  options.precompute.r_max = static_cast<std::uint32_t>(IntFlag(flags, "rmax", 3));
  options.num_threads = IntFlag(flags, "threads", 0);
  options.enable_result_cache = FlagOr(flags, "cache", "0") == "1";
  options.cache_max_bytes = IntFlag(flags, "cache-max-mb", 64) << 20;
  options.mmap_populate = FlagOr(flags, "mmap-populate", "0") == "1";
  options.mmap_huge_pages = FlagOr(flags, "mmap-hugepages", "0") == "1";
  options.reorder_vertices = FlagOr(flags, "reorder", "0") == "1";
  options.compress_artifact = FlagOr(flags, "compress", "0") == "1";
  return Engine::Open(options);
}

// Sharded deployments: opens the artifact family `<index>.s0..s{N-1}` when
// present, otherwise builds the shards in-process from --graph (like
// Engine::Open's missing-index path, but nothing is persisted — use
// `index build --shards` to write the family). Path fields of EngineOptions
// are ignored by the coordinator; the remaining online flags apply per shard.
Result<std::unique_ptr<ShardedEngine>> OpenShardedEngine(
    const std::map<std::string, std::string>& flags, std::uint32_t num_shards) {
  ShardedEngineOptions options;
  options.num_shards = num_shards;
  options.engine.precompute.r_max =
      static_cast<std::uint32_t>(IntFlag(flags, "rmax", 3));
  options.engine.num_threads = IntFlag(flags, "threads", 0);
  options.engine.enable_result_cache = FlagOr(flags, "cache", "0") == "1";
  options.engine.cache_max_bytes = IntFlag(flags, "cache-max-mb", 64) << 20;
  options.engine.mmap_populate = FlagOr(flags, "mmap-populate", "0") == "1";
  options.engine.mmap_huge_pages = FlagOr(flags, "mmap-hugepages", "0") == "1";
  const std::string prefix = FlagOr(flags, "index", "index.bin");
  if (std::filesystem::exists(ShardedEngine::ShardArtifactPath(prefix, 0))) {
    return ShardedEngine::Open(prefix, options);
  }
  const std::string graph_path = FlagOr(flags, "graph", "graph.bin");
  Result<Graph> graph = ReadGraphBinary(graph_path);
  if (!graph.ok()) return graph.status();
  return ShardedEngine::FromGraph(std::move(*graph), options);
}

// Sharded artifacts keep identity external ids (Open enforces it), so the
// centers a sharded deployment returns are already in the original id space.
void PrintCommunitiesRaw(const std::vector<CommunityResult>& communities) {
  for (std::size_t i = 0; i < communities.size(); ++i) {
    const CommunityResult& c = communities[i];
    std::printf("#%zu center=%u members=%zu sigma=%.3f influenced=%zu\n", i + 1,
                c.community.center, c.community.size(), c.score(),
                c.influence.size());
  }
}

Result<DTopLOptions> BuildDTopLOptions(
    const std::map<std::string, std::string>& flags) {
  DTopLOptions options;
  options.n_factor = static_cast<std::uint32_t>(IntFlag(flags, "n", 5));
  const std::string algorithm = FlagOr(flags, "algorithm", "wp");
  if (algorithm == "wp") {
    options.algorithm = DTopLAlgorithm::kGreedyWithPruning;
  } else if (algorithm == "wop") {
    options.algorithm = DTopLAlgorithm::kGreedyWithoutPruning;
  } else if (algorithm == "optimal") {
    options.algorithm = DTopLAlgorithm::kOptimal;
  } else {
    return Status::InvalidArgument("unknown algorithm: " + algorithm);
  }
  return options;
}

void PrintTruncation(bool truncated, double upper_bound) {
  if (!truncated) return;
  std::printf("truncated: best-so-far answer (deadline/cancel); "
              "remaining score upper bound %.3f\n", upper_bound);
}

// query/dtopl against a sharded deployment: route → per-shard search →
// commutative merge; answers are byte-identical to a single engine over the
// same graph, so the printed output only differs by the routing line.
int CmdQuerySharded(const std::map<std::string, std::string>& flags,
                    bool diversified, std::uint32_t shards) {
  Result<std::unique_ptr<ShardedEngine>> engine =
      OpenShardedEngine(flags, shards);
  if (!engine.ok()) return Fail(engine.status());
  Result<Query> query = BuildQuery(flags);
  if (!query.ok()) return Fail(query.status());

  const double deadline_ms = DoubleFlag(flags, "deadline-ms", 0.0);
  const bool progressive = FlagOr(flags, "progressive", "0") == "1";
  const bool controlled = progressive || deadline_ms > 0.0;

  if (!diversified) {
    Result<TopLResult> answer(TopLResult{});
    if (controlled) {
      ProgressiveOptions prog;
      prog.deadline_seconds = deadline_ms / 1000.0;
      prog.chunk_size = static_cast<std::uint32_t>(IntFlag(flags, "chunk", 8));
      answer = (*engine)->SearchProgressive(*query, prog);
    } else {
      answer = (*engine)->Search(*query);
    }
    if (!answer.ok()) return Fail(answer.status());
    PrintCommunitiesRaw(answer->communities);
    PrintTruncation(answer->truncated, answer->score_upper_bound);
  } else {
    if (controlled) {
      return Fail(Status::InvalidArgument(
          "--progressive/--deadline-ms are not supported for dtopl with "
          "--shards; drop the budget flags or serve unsharded"));
    }
    Result<DTopLOptions> options = BuildDTopLOptions(flags);
    if (!options.ok()) return Fail(options.status());
    Result<DTopLResult> answer = (*engine)->SearchDiversified(*query, *options);
    if (!answer.ok()) return Fail(answer.status());
    PrintCommunitiesRaw(answer->communities);
    PrintTruncation(answer->truncated, answer->score_upper_bound);
    std::printf("diversity score D(S) = %.3f\n", answer->diversity_score);
  }

  const std::vector<std::uint64_t> routed = (*engine)->ShardOps();
  std::printf("routed to %zu/%u shards [",
              static_cast<std::size_t>(
                  std::count_if(routed.begin(), routed.end(),
                                [](std::uint64_t ops) { return ops > 0; })),
              (*engine)->num_shards());
  for (std::size_t s = 0; s < routed.size(); ++s) {
    std::printf("%s%llu", s == 0 ? "" : ", ",
                static_cast<unsigned long long>(routed[s]));
  }
  std::printf("]\n");
  return 0;
}

int CmdQuery(const std::map<std::string, std::string>& flags, bool diversified) {
  const std::uint32_t shards =
      static_cast<std::uint32_t>(IntFlag(flags, "shards", 0));
  if (shards > 0) return CmdQuerySharded(flags, diversified, shards);
  Result<std::unique_ptr<Engine>> engine = OpenEngine(flags);
  if (!engine.ok()) return Fail(engine.status());
  Result<Query> query = BuildQuery(flags);
  if (!query.ok()) return Fail(query.status());

  const double deadline_ms = DoubleFlag(flags, "deadline-ms", 0.0);
  const bool progressive = FlagOr(flags, "progressive", "0") == "1";
  const bool controlled = progressive || deadline_ms > 0.0;
  ProgressiveOptions prog;
  prog.deadline_seconds = deadline_ms / 1000.0;
  prog.chunk_size = static_cast<std::uint32_t>(IntFlag(flags, "chunk", 8));
  // Streams each improving wave: rank-1 score, the threshold σ_L, and the
  // frontier upper bound — the gap σ_L vs bound is the anytime progress bar.
  ProgressiveCallback on_update;
  if (progressive) {
    on_update = [](const ProgressiveUpdate& update) {
      const double best =
          update.communities.empty() ? 0.0 : update.communities.front().score();
      const double worst =
          update.communities.empty() ? 0.0 : update.communities.back().score();
      std::printf("wave %llu: %zu communities, best sigma=%.3f, sigma_L=%.3f, "
                  "upper bound=%.3f (%llu refined)\n",
                  static_cast<unsigned long long>(update.wave),
                  update.communities.size(), best, worst, update.upper_bound,
                  static_cast<unsigned long long>(update.candidates_refined));
      return true;
    };
  }

  if (!diversified) {
    Result<TopLResult> answer =
        controlled ? (*engine)->SearchProgressive(*query, prog, on_update)
                   : (*engine)->Search(*query);
    if (!answer.ok()) return Fail(answer.status());
    PrintCommunities(**engine, answer->communities);
    PrintTruncation(answer->truncated, answer->score_upper_bound);
    std::printf("stats: %s\n", answer->stats.ToString().c_str());
    return 0;
  }

  Result<DTopLOptions> options = BuildDTopLOptions(flags);
  if (!options.ok()) return Fail(options.status());
  Result<DTopLResult> answer =
      controlled
          ? (*engine)->SearchDiversifiedProgressive(*query, *options, prog,
                                                    on_update)
          : (*engine)->SearchDiversified(*query, *options);
  if (!answer.ok()) return Fail(answer.status());
  PrintCommunities(**engine, answer->communities);
  PrintTruncation(answer->truncated, answer->score_upper_bound);
  std::printf("diversity score D(S) = %.3f (candidates %.3fs, refine %.3fs, "
              "%llu gain evaluations)\n",
              answer->diversity_score, answer->candidate_seconds,
              answer->refine_seconds,
              static_cast<unsigned long long>(answer->gain_evaluations));
  return 0;
}

// One parsed line of a batch query file.
struct BatchEntry {
  Query query;
  bool diversified = false;
};

Result<std::vector<BatchEntry>> ParseQueryFile(
    const std::string& path, const Query& defaults) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open query file: " + path);
  std::vector<BatchEntry> entries;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string keywords;
    if (!(tokens >> keywords)) continue;  // blank / comment-only line

    BatchEntry entry;
    entry.query = defaults;
    entry.query.keywords = ParseKeywordList(keywords);
    std::string token;
    int field = 0;
    std::string bad;
    const auto parse_u32 = [&](std::uint32_t* out) {
      char* end = nullptr;
      const unsigned long value = std::strtoul(token.c_str(), &end, 10);
      if (end == token.c_str() || *end != '\0') bad = "malformed integer: " + token;
      *out = static_cast<std::uint32_t>(value);
    };
    while (bad.empty() && tokens >> token) {
      if (token == "dtopl") {
        entry.diversified = true;
        continue;
      }
      switch (field++) {
        case 0: parse_u32(&entry.query.k); break;
        case 1: parse_u32(&entry.query.radius); break;
        case 2: {
          char* end = nullptr;
          entry.query.theta = std::strtod(token.c_str(), &end);
          if (end == token.c_str() || *end != '\0') bad = "malformed number: " + token;
          break;
        }
        case 3: parse_u32(&entry.query.top_l); break;
        default: bad = "too many fields"; break;
      }
    }
    if (!bad.empty()) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": " + bad);
    }
    const Status status = entry.query.Validate();
    if (!status.ok()) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) + ": " +
                                     status.message());
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

int CmdBatch(const std::map<std::string, std::string>& flags) {
  const std::string queries_path = FlagOr(flags, "queries", "");
  if (queries_path.empty()) {
    return Fail(Status::InvalidArgument("batch needs --queries=FILE"));
  }
  // Per-line defaults reuse the query flags; keywords are always per line,
  // so each parsed line (not the defaults) is what gets validated.
  Query defaults;
  defaults.k = static_cast<std::uint32_t>(IntFlag(flags, "k", 4));
  defaults.radius = static_cast<std::uint32_t>(IntFlag(flags, "r", 2));
  defaults.theta = DoubleFlag(flags, "theta", 0.2);
  defaults.top_l = static_cast<std::uint32_t>(IntFlag(flags, "L", 5));
  Result<std::vector<BatchEntry>> entries =
      ParseQueryFile(queries_path, defaults);
  if (!entries.ok()) return Fail(entries.status());
  if (entries->empty()) {
    return Fail(Status::InvalidArgument("query file has no queries: " + queries_path));
  }

  Result<std::unique_ptr<Engine>> engine = OpenEngine(flags);
  if (!engine.ok()) return Fail(engine.status());
  Result<DTopLOptions> dtopl_options = BuildDTopLOptions(flags);
  if (!dtopl_options.ok()) return Fail(dtopl_options.status());
  const std::uint64_t repeat = IntFlag(flags, "repeat", 1);
  const bool quiet = FlagOr(flags, "quiet", "0") == "1";

  // TopL lines go through SearchBatch (one engine fan-out per repeat);
  // DTopL lines are submitted async and collected afterwards.
  std::vector<Query> topl_queries;
  std::vector<std::size_t> topl_lines;
  std::vector<std::pair<std::size_t, const Query*>> dtopl_queries;
  for (std::size_t i = 0; i < entries->size(); ++i) {
    if ((*entries)[i].diversified) {
      dtopl_queries.emplace_back(i, &(*entries)[i].query);
    } else {
      topl_queries.push_back((*entries)[i].query);
      topl_lines.push_back(i);
    }
  }

  Timer wall;
  for (std::uint64_t round = 0; round < repeat; ++round) {
    const bool report = !quiet && round == 0;
    std::vector<std::future<Result<DTopLResult>>> dtopl_futures;
    dtopl_futures.reserve(dtopl_queries.size());
    for (const auto& [line, query] : dtopl_queries) {
      dtopl_futures.push_back(
          (*engine)->SubmitDiversified(*query, *dtopl_options));
    }
    std::vector<Result<TopLResult>> answers =
        (*engine)->SearchBatch(topl_queries);
    for (std::size_t i = 0; i < answers.size(); ++i) {
      if (!answers[i].ok()) {
        std::fprintf(stderr, "query %zu failed: %s\n", topl_lines[i] + 1,
                     answers[i].status().ToString().c_str());
        continue;
      }
      if (report) {
        std::printf("query %zu: %zu communities, best sigma=%.3f\n",
                    topl_lines[i] + 1, answers[i]->communities.size(),
                    answers[i]->communities.empty()
                        ? 0.0
                        : answers[i]->communities.front().score());
      }
    }
    for (std::size_t i = 0; i < dtopl_futures.size(); ++i) {
      Result<DTopLResult> answer = dtopl_futures[i].get();
      if (!answer.ok()) {
        std::fprintf(stderr, "query %zu failed: %s\n",
                     dtopl_queries[i].first + 1,
                     answer.status().ToString().c_str());
        continue;
      }
      if (report) {
        std::printf("query %zu (dtopl): %zu communities, D(S)=%.3f\n",
                    dtopl_queries[i].first + 1, answer->communities.size(),
                    answer->diversity_score);
      }
    }
  }
  const double elapsed = wall.ElapsedSeconds();

  const EngineStats stats = (*engine)->Stats();
  std::printf("served %llu queries in %.3fs (%.1f queries/s, %zu workers, "
              "%zu detector contexts)\n",
              static_cast<unsigned long long>(stats.queries_total), elapsed,
              elapsed > 0 ? static_cast<double>(stats.queries_total) / elapsed : 0.0,
              (*engine)->num_threads(), (*engine)->pooled_contexts());
  std::printf("engine stats: %s\n", stats.ToString().c_str());
  return 0;
}

int CmdServeBench(const std::map<std::string, std::string>& flags) {
  // --shards=N swaps the served deployment: the workload, injection, and
  // report are identical, shard(0)'s full replica stands in for the single
  // engine's graph/precompute when deriving the stream, and the report grows
  // the per-shard routed-op counts + imbalance.
  const std::uint32_t shards =
      static_cast<std::uint32_t>(IntFlag(flags, "shards", 0));
  std::unique_ptr<Engine> engine;
  std::unique_ptr<ShardedEngine> sharded;
  std::unique_ptr<loadgen::ServingTarget> target;
  const Engine* probe = nullptr;
  if (shards > 0) {
    Result<std::unique_ptr<ShardedEngine>> opened =
        OpenShardedEngine(flags, shards);
    if (!opened.ok()) return Fail(opened.status());
    sharded = std::move(*opened);
    target = std::make_unique<loadgen::ShardedTarget>(sharded.get());
    probe = &sharded->shard(0);
  } else {
    Result<std::unique_ptr<Engine>> opened = OpenEngine(flags);
    if (!opened.ok()) return Fail(opened.status());
    engine = std::move(*opened);
    target = std::make_unique<loadgen::EngineTarget>(engine.get());
    probe = engine.get();
  }

  Result<loadgen::WorkloadSpec> spec =
      loadgen::WorkloadSpec::Named(FlagOr(flags, "mix", "mixed"));
  if (!spec.ok()) return Fail(spec.status());
  spec->seed = IntFlag(flags, "seed", 42);
  // 0 keeps the named mix's own pool size / skew (repeat_heavy narrows both).
  const std::uint64_t signatures = IntFlag(flags, "signatures", 0);
  if (signatures != 0) {
    spec->num_signatures = static_cast<std::uint32_t>(signatures);
  }
  const double zipf = DoubleFlag(flags, "zipf", 0.0);
  if (zipf > 0.0) spec->zipf_skew = zipf;
  const std::string popularity = FlagOr(flags, "popularity", "zipf");
  if (popularity == "uniform") {
    spec->popularity = loadgen::Popularity::kUniform;
  } else if (popularity == "zipf") {
    spec->popularity = loadgen::Popularity::kZipfian;
  } else {
    return Fail(Status::InvalidArgument("unknown popularity: " + popularity));
  }
  // The workload can only ask what this index can serve: clamp the radius
  // band to r_max and snap thetas to the precompute grid, preserving the
  // mix's own band shape (repeat_heavy pins single values so cache keys
  // repeat; overwriting its bands with the full grid would destroy that).
  const PrecomputedData& pre = probe->precomputed();
  std::vector<std::uint32_t> radii;
  for (std::uint32_t r : spec->params.radius_values) {
    if (r >= 1 && r <= pre.r_max()) radii.push_back(r);
  }
  if (radii.empty()) {
    for (std::uint32_t r = 1; r <= pre.r_max() && r <= 2; ++r) {
      radii.push_back(r);
    }
  }
  spec->params.radius_values = std::move(radii);
  std::vector<double> thetas;
  for (double want : spec->params.theta_values) {
    double best = pre.thetas().front();
    for (double have : pre.thetas()) {
      if (std::abs(have - want) < std::abs(best - want)) best = have;
    }
    if (std::find(thetas.begin(), thetas.end(), best) == thetas.end()) {
      thetas.push_back(best);
    }
  }
  spec->params.theta_values = std::move(thetas);
  Result<loadgen::WorkloadGenerator> generator =
      loadgen::WorkloadGenerator::Create(*spec, probe->graph());
  if (!generator.ok()) return Fail(generator.status());

  loadgen::InjectorOptions inject;
  inject.num_workers = IntFlag(flags, "workers", 8);
  inject.target_qps = DoubleFlag(flags, "qps", 0.0);
  inject.duration_seconds = DoubleFlag(flags, "seconds", 5.0);
  inject.max_ops = IntFlag(flags, "ops", 0);
  inject.progressive_deadline_ms = DoubleFlag(flags, "deadline-ms", 0.0);

  const double warmup_seconds = DoubleFlag(flags, "warmup-seconds", 0.5);
  if (warmup_seconds > 0.0) {
    loadgen::InjectorOptions warmup = inject;
    warmup.target_qps = 0.0;
    warmup.duration_seconds = warmup_seconds;
    warmup.max_ops = 0;
    Result<loadgen::LoadReport> ignored =
        loadgen::LoadInjector(target.get(), *generator, warmup).Run();
    if (!ignored.ok()) return Fail(ignored.status());
  }

  Result<loadgen::LoadReport> report =
      loadgen::LoadInjector(target.get(), *generator, inject).Run();
  if (!report.ok()) return Fail(report.status());
  report->stream_digest = generator->StreamDigest(4096);
  std::printf("%s", report->ToString().c_str());

  loadgen::SloThresholds slo;
  slo.min_ops_per_s = DoubleFlag(flags, "slo-qps", 0.0);
  slo.max_p99_ms = DoubleFlag(flags, "slo-p99-ms", 0.0);
  slo.max_p999_ms = DoubleFlag(flags, "slo-p999-ms", 0.0);
  const std::vector<std::string> violations = report->CheckSlo(slo);
  for (const std::string& violation : violations) {
    std::fprintf(stderr, "SLO BREACH: %s\n", violation.c_str());
  }

  const std::string json_path = FlagOr(flags, "json", "");
  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      return Fail(Status::IOError("cannot write " + json_path));
    }
    const std::string payload = report->ToJson();
    std::fwrite(payload.data(), 1, payload.size(), out);
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return violations.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  // `index` takes an optional subcommand; a bare flag list keeps the
  // historical behavior (build).
  if (command == "index") {
    std::string sub = "build";
    int first_flag = 2;
    if (argc >= 3 && std::string(argv[2]).rfind("--", 0) != 0) {
      sub = argv[2];
      first_flag = 3;
    }
    std::map<std::string, std::string> flags;
    if (!ParseFlags(argc, argv, first_flag, &flags)) return Usage();
    if (sub == "build") return CmdIndexBuild(flags);
    if (sub == "inspect") return CmdIndexInspect(flags);
    if (sub == "migrate") return CmdIndexMigrate(flags);
    return Usage();
  }
  std::map<std::string, std::string> flags;
  if (!ParseFlags(argc, argv, 2, &flags)) return Usage();
  if (command == "generate") return CmdGenerate(flags);
  if (command == "convert") return CmdConvert(flags);
  if (command == "update") return CmdUpdate(flags);
  if (command == "recover") return CmdRecover(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "query") return CmdQuery(flags, /*diversified=*/false);
  if (command == "dtopl") return CmdQuery(flags, /*diversified=*/true);
  if (command == "batch") return CmdBatch(flags);
  if (command == "serve-bench") return CmdServeBench(flags);
  return Usage();
}

// The fault-tolerance layer's serving-side contracts: bounded admission
// (shed with a typed retryable status, or degrade to an anytime answer when
// the caller brought a deadline), defined post-shutdown behavior on every
// entry point, journal-backed recovery that is byte-identical to live
// serving, and clean errors — not SIGBUS — when the artifact shrinks under
// an open mmap.

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/engine.h"
#include "graph/generators.h"
#include "graph/graph_delta.h"
#include "gtest/gtest.h"
#include "shard/sharded_engine.h"
#include "storage/artifact.h"
#include "storage/update_journal.h"
#include "tests/test_util.h"

namespace topl {
namespace {

class EngineRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("topl_robust_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  static Graph MakeTestGraph(std::size_t n = 150, std::uint64_t seed = 17) {
    SmallWorldOptions gen;
    gen.num_vertices = n;
    gen.seed = seed;
    gen.keywords.domain_size = 10;
    Result<Graph> g = MakeSmallWorld(gen);
    EXPECT_TRUE(g.ok()) << g.status().ToString();
    return std::move(g).value();
  }

  static std::vector<Query> QueryBattery() {
    std::vector<Query> queries;
    for (std::uint32_t i = 0; i < 5; ++i) {
      Query q;
      q.keywords = {static_cast<KeywordId>(i % 10),
                    static_cast<KeywordId>((i + 3) % 10),
                    static_cast<KeywordId>((i + 6) % 10)};
      std::sort(q.keywords.begin(), q.keywords.end());
      q.k = 3;
      q.radius = 1 + i % 2;
      q.theta = 0.2;
      q.top_l = 4;
      queries.push_back(std::move(q));
    }
    return queries;
  }

  static void ExpectSameAnswers(Engine& actual, Engine& expected) {
    for (const Query& q : QueryBattery()) {
      Result<TopLResult> a = actual.Search(q);
      Result<TopLResult> e = expected.Search(q);
      ASSERT_EQ(a.ok(), e.ok()) << a.status().ToString();
      if (!a.ok()) continue;
      ASSERT_EQ(a->communities.size(), e->communities.size());
      for (std::size_t i = 0; i < a->communities.size(); ++i) {
        EXPECT_EQ(a->communities[i].community.center,
                  e->communities[i].community.center);
        EXPECT_EQ(a->communities[i].community.vertices,
                  e->communities[i].community.vertices);
        EXPECT_EQ(a->communities[i].score(), e->communities[i].score());
      }
    }
  }

  std::filesystem::path dir_;
};

/// Deterministic, sequentially-valid deltas for `g`'s lineage (each delta is
/// drawn against — and validated on — the graph the previous ones produced).
std::vector<GraphDelta> MakeDeltaStream(const Graph& g, std::size_t count) {
  std::vector<GraphDelta> deltas;
  std::unique_ptr<Graph> evolved;  // owns the post-delta graphs; g is the base
  const Graph* current = &g;
  Rng rng(4242);
  while (deltas.size() < count) {
    GraphDelta d = MakeRandomDelta(*current, rng);
    if (d.empty()) continue;
    Result<Graph> next = ApplyDelta(*current, d);
    EXPECT_TRUE(next.ok()) << next.status().ToString();
    if (!next.ok()) break;
    evolved = std::make_unique<Graph>(std::move(*next));
    current = evolved.get();
    deltas.push_back(std::move(d));
  }
  return deltas;
}

// ---------------------------------------------------------------------------
// Overload-graceful serving
// ---------------------------------------------------------------------------

TEST_F(EngineRobustnessTest, FullEngineShedsWithRetryableStatus) {
  EngineOptions options;
  options.num_threads = 2;
  options.max_in_flight_queries = 1;
  Result<std::unique_ptr<Engine>> engine =
      Engine::FromGraph(MakeTestGraph(), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const Query query = QueryBattery()[0];

  // Occupy the single admission slot with a progressive query whose callback
  // blocks until this test has probed the overload behavior.
  std::mutex mu;
  std::condition_variable cv;
  bool in_flight = false;
  bool release = false;
  std::thread holder([&] {
    ProgressiveOptions prog;
    prog.chunk_size = 1;  // callback fires per wave, early and often
    Result<TopLResult> r = (*engine)->SearchProgressive(
        query, prog, [&](const ProgressiveUpdate&) {
          std::unique_lock<std::mutex> lock(mu);
          in_flight = true;
          cv.notify_all();
          cv.wait(lock, [&] { return release; });
          return true;
        });
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return in_flight; });
  }

  // Deadline-less entry points shed with the typed retryable status.
  Result<TopLResult> shed = (*engine)->Search(query);
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsUnavailable()) << shed.status().ToString();
  Result<DTopLResult> shed_dtopl =
      (*engine)->SearchDiversified(query, DTopLOptions());
  ASSERT_FALSE(shed_dtopl.ok());
  EXPECT_TRUE(shed_dtopl.status().IsUnavailable());

  // A whole batch is rejected as one unit, every slot typed.
  const std::vector<Query> batch_queries = {query, query};
  std::vector<Result<TopLResult>> batch =
      (*engine)->SearchBatch(batch_queries);
  ASSERT_EQ(batch.size(), 2u);
  for (const Result<TopLResult>& r : batch) {
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsUnavailable());
  }

  // A deadline-bearing progressive query degrades instead: a valid anytime
  // answer flagged `degraded`, never a rejection.
  ProgressiveOptions with_deadline;
  with_deadline.deadline_seconds = 5.0;
  Result<TopLResult> degraded =
      (*engine)->SearchProgressive(query, with_deadline);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->degraded);

  // Release the slot; the engine serves normally again.
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  holder.join();
  Result<TopLResult> after = (*engine)->Search(query);
  EXPECT_TRUE(after.ok()) << after.status().ToString();

  const EngineStats stats = (*engine)->Stats();
  // search + dtopl + batch (one admission decision per batch, however many
  // slots it rejects).
  EXPECT_GE(stats.queries_shed, 3u);
  EXPECT_GE(stats.queries_degraded, 1u);
  // Shed queries are rejections, not served queries.
  EXPECT_GE(stats.queries_total, 1u);
}

TEST_F(EngineRobustnessTest, DegradedAnswerSatisfiesUpperBoundContract) {
  EngineOptions options;
  options.num_threads = 2;
  options.max_in_flight_queries = 1;
  Result<std::unique_ptr<Engine>> engine =
      Engine::FromGraph(MakeTestGraph(), options);
  ASSERT_TRUE(engine.ok());

  for (const Query& query : QueryBattery()) {
    // Full answer for reference (engine is idle here, so it admits).
    Result<TopLResult> full = (*engine)->Search(query);
    ASSERT_TRUE(full.ok()) << full.status().ToString();

    // Saturate, then issue the degradable query.
    std::mutex mu;
    std::condition_variable cv;
    bool in_flight = false;
    bool release = false;
    std::thread holder([&] {
      ProgressiveOptions prog;
      prog.chunk_size = 1;
      (void)(*engine)->SearchProgressive(
          query, prog, [&](const ProgressiveUpdate&) {
            std::unique_lock<std::mutex> lock(mu);
            in_flight = true;
            cv.notify_all();
            cv.wait(lock, [&] { return release; });
            return true;
          });
    });
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return in_flight; });
    }
    ProgressiveOptions with_deadline;
    with_deadline.deadline_seconds = 5.0;
    Result<TopLResult> degraded =
        (*engine)->SearchProgressive(query, with_deadline);
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
    holder.join();

    ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
    EXPECT_TRUE(degraded->degraded);
    ASSERT_LE(degraded->communities.size(), query.top_l);
    // Truncated-result contract: every community the degraded answer did
    // return is genuine (it appears in the full answer with the same score),
    // and everything it left out scores at or below the reported bound.
    const double bound = degraded->score_upper_bound + 1e-9;
    for (std::size_t i = 0; i < full->communities.size(); ++i) {
      const double score = full->communities[i].score();
      if (i < degraded->communities.size()) {
        EXPECT_EQ(score, degraded->communities[i].score()) << i;
      } else if (degraded->truncated) {
        EXPECT_LE(score, bound) << i;
      }
    }
  }
}

TEST_F(EngineRobustnessTest, AdmissionQueueWaitAdmitsWhenSlotFrees) {
  EngineOptions options;
  options.num_threads = 2;
  options.max_in_flight_queries = 1;
  options.admission_queue_wait_seconds = 30.0;  // generous; released in ~ms
  Result<std::unique_ptr<Engine>> engine =
      Engine::FromGraph(MakeTestGraph(), options);
  ASSERT_TRUE(engine.ok());
  const Query query = QueryBattery()[0];

  std::mutex mu;
  std::condition_variable cv;
  bool in_flight = false;
  bool release = false;
  std::thread holder([&] {
    ProgressiveOptions prog;
    prog.chunk_size = 1;
    (void)(*engine)->SearchProgressive(
        query, prog, [&](const ProgressiveUpdate&) {
          std::unique_lock<std::mutex> lock(mu);
          if (!in_flight) {
            in_flight = true;
            cv.notify_all();
          }
          cv.wait(lock, [&] { return release; });
          return true;
        });
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return in_flight; });
  }
  // Release the slot shortly after the waiter parks on the gate.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
  });
  Result<TopLResult> waited = (*engine)->Search(query);
  EXPECT_TRUE(waited.ok()) << waited.status().ToString();
  releaser.join();
  holder.join();
  EXPECT_EQ((*engine)->Stats().queries_shed, 0u);
}

// ---------------------------------------------------------------------------
// Defined post-shutdown behavior
// ---------------------------------------------------------------------------

TEST_F(EngineRobustnessTest, ShutdownGivesTypedErrorsOnEveryEntryPoint) {
  Result<std::unique_ptr<Engine>> engine =
      Engine::FromGraph(MakeTestGraph(), EngineOptions());
  ASSERT_TRUE(engine.ok());
  const Query query = QueryBattery()[0];
  ASSERT_TRUE((*engine)->Search(query).ok());

  (*engine)->Shutdown();
  EXPECT_TRUE((*engine)->is_shutdown());
  (*engine)->Shutdown();  // idempotent

  Result<TopLResult> search = (*engine)->Search(query);
  ASSERT_FALSE(search.ok());
  EXPECT_TRUE(search.status().IsUnavailable());
  EXPECT_TRUE((*engine)->SearchDiversified(query, DTopLOptions())
                  .status()
                  .IsUnavailable());
  EXPECT_TRUE((*engine)->SearchProgressive(query).status().IsUnavailable());
  GraphDelta delta;
  delta.AddKeyword(0, 9);
  EXPECT_TRUE((*engine)->ApplyUpdate(delta).status().IsUnavailable());

  const std::vector<Query> one_query = {query};
  std::vector<Result<TopLResult>> batch = (*engine)->SearchBatch(one_query);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_TRUE(batch[0].status().IsUnavailable());

  // Async submission resolves (never hangs, never aborts) to the same typed
  // status.
  std::future<Result<TopLResult>> future = (*engine)->Submit(query);
  Result<TopLResult> resolved = future.get();
  ASSERT_FALSE(resolved.ok());
  EXPECT_TRUE(resolved.status().IsUnavailable());
}

// ---------------------------------------------------------------------------
// Journal-backed recovery
// ---------------------------------------------------------------------------

TEST_F(EngineRobustnessTest, RecoverReplaysJournalByteIdentically) {
  const Graph graph = MakeTestGraph();
  testing::BuiltIndex built = testing::BuildIndexFor(graph);
  const std::string artifact = Path("index.idx");
  ASSERT_TRUE(ArtifactWriter::Write(graph, built.pre(), built.tree, artifact).ok());

  const std::vector<GraphDelta> deltas = MakeDeltaStream(graph, 3);
  ASSERT_EQ(deltas.size(), 3u);

  // Live engine: journal attached, updates acknowledged.
  EngineOptions options;
  options.index_path = artifact;
  options.journal_path = Path("wal.jrn");
  options.num_threads = 2;
  Result<std::unique_ptr<Engine>> live = Engine::Open(options);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  EXPECT_TRUE((*live)->recovery_info().journal_created);
  for (const GraphDelta& delta : deltas) {
    Result<RebuildScope> applied = (*live)->ApplyUpdate(delta);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  }

  // Crash-and-recover: a fresh engine over the unchanged artifact + journal.
  RecoveryInfo info;
  Result<std::unique_ptr<Engine>> recovered = Engine::Recover(options, &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(info.records_replayed, deltas.size());
  EXPECT_EQ(info.torn_bytes_discarded, 0u);
  EXPECT_FALSE(info.journal_created);
  EXPECT_EQ((*recovered)->Stats().snapshot_epoch, deltas.size());

  ExpectSameAnswers(**recovered, **live);
}

TEST_F(EngineRobustnessTest, RecoverRequiresJournalPath) {
  EngineOptions options;
  options.index_path = Path("whatever.idx");
  Result<std::unique_ptr<Engine>> recovered = Engine::Recover(options);
  ASSERT_FALSE(recovered.ok());
  EXPECT_TRUE(recovered.status().IsInvalidArgument())
      << recovered.status().ToString();
}

TEST_F(EngineRobustnessTest, MismatchedJournalRejectedAtOpen) {
  // Journal records deltas against graph A; opening artifact B with that
  // journal must fail with a typed error, not serve a diverged state.
  const Graph graph_a = MakeTestGraph(150, 17);
  const Graph graph_b = MakeTestGraph(80, 99);
  testing::BuiltIndex built_b = testing::BuildIndexFor(graph_b);
  const std::string artifact_b = Path("b.idx");
  ASSERT_TRUE(
      ArtifactWriter::Write(graph_b, built_b.pre(), built_b.tree, artifact_b).ok());

  const std::string journal_path = Path("a.jrn");
  {
    Result<std::unique_ptr<UpdateJournal>> journal =
        UpdateJournal::Open(journal_path);
    ASSERT_TRUE(journal.ok());
    GraphDelta delta;
    // Vertex id far outside graph B's id space.
    delta.AddKeyword(140, 3);
    ASSERT_TRUE((*journal)->Append(delta).ok());
  }

  EngineOptions options;
  options.index_path = artifact_b;
  options.journal_path = journal_path;
  Result<std::unique_ptr<Engine>> opened = Engine::Open(options);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsCorruption()) << opened.status().ToString();
}

TEST_F(EngineRobustnessTest, ShardedRecoverReplaysCoordinatorJournal) {
  const Graph graph = MakeTestGraph(120, 5);
  ShardedEngineOptions options;
  options.num_shards = 3;
  options.engine.num_threads = 1;
  const std::string prefix = Path("fleet.idx");
  ASSERT_TRUE(ShardedEngine::BuildArtifacts(graph, options, prefix,
                                            /*compress=*/false)
                  .ok());

  options.journal_path = Path("fleet.jrn");
  Result<std::unique_ptr<ShardedEngine>> live =
      ShardedEngine::Open(prefix, options);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  const std::vector<GraphDelta> deltas = MakeDeltaStream(graph, 2);
  ASSERT_EQ(deltas.size(), 2u);
  for (const GraphDelta& delta : deltas) {
    Result<RebuildScope> applied = (*live)->ApplyUpdate(delta);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  }

  RecoveryInfo info;
  Result<std::unique_ptr<ShardedEngine>> recovered =
      ShardedEngine::Recover(prefix, options, &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(info.records_replayed, deltas.size());

  for (const Query& q : QueryBattery()) {
    Result<TopLResult> a = (*recovered)->Search(q);
    Result<TopLResult> e = (*live)->Search(q);
    ASSERT_EQ(a.ok(), e.ok()) << a.status().ToString();
    if (!a.ok()) continue;
    ASSERT_EQ(a->communities.size(), e->communities.size());
    for (std::size_t i = 0; i < a->communities.size(); ++i) {
      EXPECT_EQ(a->communities[i].community.center,
                e->communities[i].community.center);
      EXPECT_EQ(a->communities[i].score(), e->communities[i].score());
    }
  }
}

// ---------------------------------------------------------------------------
// mmap truncation safety
// ---------------------------------------------------------------------------

TEST_F(EngineRobustnessTest, TruncatedArtifactFailsCleanlyNotSigbus) {
  const Graph graph = MakeTestGraph(100, 23);
  testing::BuiltIndex built = testing::BuildIndexFor(graph);
  const std::string artifact = Path("trunc.idx");
  ASSERT_TRUE(ArtifactWriter::Write(graph, built.pre(), built.tree, artifact).ok());
  const std::uintmax_t full = std::filesystem::file_size(artifact);

  // Open first, truncate after: the backing map was sized at open time, so
  // pages past the new EOF would SIGBUS on first touch. Revalidate is the
  // guard readers run before trusting a long-lived mapping.
  Result<MappedIndex> mapped = ArtifactReader::Open(artifact);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_NE(mapped->backing, nullptr);
  EXPECT_TRUE(mapped->backing->Revalidate().ok());

  std::filesystem::resize_file(artifact, full / 2);
  const Status shrunk = mapped->backing->Revalidate();
  ASSERT_FALSE(shrunk.ok());
  EXPECT_TRUE(shrunk.IsCorruption()) << shrunk.ToString();

  // A fresh open of the truncated file is a typed error, not a crash.
  Result<MappedIndex> reopened = ArtifactReader::Open(artifact);
  ASSERT_FALSE(reopened.ok());

  // Growth (e.g. a concurrent append by a buggy writer) is fine for the
  // existing mapping — only shrinkage invalidates mapped pages.
  std::filesystem::resize_file(artifact, full * 2);
  Result<MappedIndex> grown_open = ArtifactReader::Open(artifact);
  (void)grown_open;  // may or may not parse; must not crash
}

}  // namespace
}  // namespace topl

// Robustness fuzzing of the binary codecs: a reader fed truncated or
// bit-flipped files must return a clean Status (never crash, never hand back
// a structurally invalid object). Complements the targeted corruption cases
// in io_test / index_io_test with a sweep over corruption positions.

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "common/rng.h"
#include "graph/binary_io.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "index/index_io.h"
#include "storage/artifact.h"
#include "tests/test_util.h"

namespace topl {
namespace {

using testing::BuildIndexFor;
using testing::BuiltIndex;

class SerializationFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("topl_fuzz_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  static std::vector<char> ReadAll(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
  }

  void WriteAll(const std::string& path, const std::vector<char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::filesystem::path dir_;
};

TEST_F(SerializationFuzzTest, GraphTruncationSweepNeverCrashes) {
  SmallWorldOptions gen;
  gen.num_vertices = 60;
  gen.seed = 17;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  const std::string path = Path("g.bin");
  ASSERT_TRUE(WriteGraphBinary(*g, path).ok());
  const std::vector<char> bytes = ReadAll(path);

  // Every truncation length across the file (stride keeps runtime sane).
  for (std::size_t len = 0; len < bytes.size(); len += 7) {
    WriteAll(path, std::vector<char>(bytes.begin(), bytes.begin() + len));
    Result<Graph> loaded = ReadGraphBinary(path);
    EXPECT_FALSE(loaded.ok()) << "truncation at " << len << " parsed";
  }
  // The untouched file still round-trips.
  WriteAll(path, bytes);
  EXPECT_TRUE(ReadGraphBinary(path).ok());
}

TEST_F(SerializationFuzzTest, GraphBitFlipsNeverYieldInvalidGraph) {
  SmallWorldOptions gen;
  gen.num_vertices = 50;
  gen.seed = 18;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  const std::string path = Path("g.bin");
  ASSERT_TRUE(WriteGraphBinary(*g, path).ok());
  const std::vector<char> original = ReadAll(path);

  Rng rng(19);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<char> mutated = original;
    const std::size_t pos = rng.NextBounded(mutated.size());
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << rng.NextBounded(8)));
    WriteAll(path, mutated);
    Result<Graph> loaded = ReadGraphBinary(path);
    if (!loaded.ok()) continue;  // rejected: fine
    // Accepted mutants must still be structurally sound: arcs in range,
    // neighbor lists sorted, edge ids consistent.
    const Graph& m = *loaded;
    for (VertexId v = 0; v < m.NumVertices(); ++v) {
      VertexId prev = kInvalidVertex;
      for (const Graph::Arc& arc : m.Neighbors(v)) {
        ASSERT_LT(arc.to, m.NumVertices());
        ASSERT_LT(arc.edge, m.NumEdges());
        if (prev != kInvalidVertex) {
          ASSERT_GT(arc.to, prev);
        }
        prev = arc.to;
      }
    }
  }
}

TEST_F(SerializationFuzzTest, IndexTruncationSweepNeverCrashes) {
  SmallWorldOptions gen;
  gen.num_vertices = 60;
  gen.seed = 20;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  const BuiltIndex built = BuildIndexFor(*g);
  const std::string path = Path("i.bin");
  ASSERT_TRUE(IndexCodec::Write(built.pre(), built.tree, path).ok());
  const std::vector<char> bytes = ReadAll(path);

  for (std::size_t len = 0; len < bytes.size(); len += 97) {
    WriteAll(path, std::vector<char>(bytes.begin(), bytes.begin() + len));
    Result<IndexCodec::LoadedIndex> loaded = IndexCodec::Read(path, *g);
    EXPECT_FALSE(loaded.ok()) << "truncation at " << len << " parsed";
  }
  WriteAll(path, bytes);
  EXPECT_TRUE(IndexCodec::Read(path, *g).ok());
}

TEST_F(SerializationFuzzTest, IndexBitFlipsSurfaceAsStatusOrSaneIndex) {
  SmallWorldOptions gen;
  gen.num_vertices = 50;
  gen.seed = 21;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  const BuiltIndex built = BuildIndexFor(*g);
  const std::string path = Path("i.bin");
  ASSERT_TRUE(IndexCodec::Write(built.pre(), built.tree, path).ok());
  const std::vector<char> original = ReadAll(path);

  Rng rng(22);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<char> mutated = original;
    const std::size_t pos = rng.NextBounded(mutated.size());
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << rng.NextBounded(8)));
    WriteAll(path, mutated);
    Result<IndexCodec::LoadedIndex> loaded = IndexCodec::Read(path, *g);
    if (!loaded.ok()) continue;
    // Accepted mutants must keep the structural invariants the detector
    // relies on (bounds may be wrong — that only costs pruning safety for a
    // corrupt file — but traversal must not go out of bounds).
    const TreeIndex& tree = loaded->tree;
    ASSERT_LT(tree.root(), tree.NumNodes());
    for (std::uint32_t id = 0; id < tree.NumNodes(); ++id) {
      const TreeIndex::Node& node = tree.node(id);
      if (node.is_leaf) {
        ASSERT_LE(node.begin, node.end);
        ASSERT_LE(node.end, g->NumVertices());
      } else {
        ASSERT_LE(node.first_child + node.num_children, tree.NumNodes());
      }
    }
  }
}

TEST_F(SerializationFuzzTest, ArtifactTruncationSweepNeverCrashes) {
  SmallWorldOptions gen;
  gen.num_vertices = 60;
  gen.seed = 23;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  const BuiltIndex built = BuildIndexFor(*g);
  const std::string path = Path("a.idx");
  ASSERT_TRUE(ArtifactWriter::Write(*g, built.pre(), built.tree, path).ok());
  const std::vector<char> bytes = ReadAll(path);

  for (std::size_t len = 0; len < bytes.size(); len += 101) {
    WriteAll(path, std::vector<char>(bytes.begin(), bytes.begin() + len));
    Result<MappedIndex> loaded = ArtifactReader::Open(path);
    EXPECT_FALSE(loaded.ok()) << "truncation at " << len << " parsed";
  }
  WriteAll(path, bytes);
  EXPECT_TRUE(ArtifactReader::Open(path).ok());
}

TEST_F(SerializationFuzzTest, ArtifactBitFlipsAreRejectedOrHarmless) {
  SmallWorldOptions gen;
  gen.num_vertices = 50;
  gen.seed = 24;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  const BuiltIndex built = BuildIndexFor(*g);
  const std::string path = Path("a.idx");
  ASSERT_TRUE(ArtifactWriter::Write(*g, built.pre(), built.tree, path).ok());
  const std::vector<char> original = ReadAll(path);

  // Reference answer from the pristine artifact.
  Query q;
  q.keywords = {0, 1, 2, 3, 4};
  q.k = 3;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 5;
  std::vector<double> reference;
  {
    Result<MappedIndex> pristine = ArtifactReader::Open(path);
    ASSERT_TRUE(pristine.ok());
    TopLDetector detector(pristine->graph, *pristine->pre, pristine->tree);
    Result<TopLResult> answer = detector.Search(q);
    ASSERT_TRUE(answer.ok());
    reference = testing::Scores(answer->communities);
  }

  // Header, table and every section payload are checksummed, so the only
  // acceptable mutants are flips in dead bytes (header reserved area,
  // inter-section padding) — and those must serve the exact same answers.
  Rng rng(25);
  int accepted = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<char> mutated = original;
    const std::size_t pos = rng.NextBounded(mutated.size());
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << rng.NextBounded(8)));
    WriteAll(path, mutated);
    Result<MappedIndex> loaded = ArtifactReader::Open(path);
    if (!loaded.ok()) {
      EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status().ToString();
      continue;
    }
    ++accepted;
    TopLDetector detector(loaded->graph, *loaded->pre, loaded->tree);
    Result<TopLResult> answer = detector.Search(q);
    ASSERT_TRUE(answer.ok());
    EXPECT_EQ(testing::Scores(answer->communities), reference)
        << "flip at " << pos << " changed query results";
  }
  // The dead-byte fraction of an artifact is small; the vast majority of
  // flips must have been rejected.
  EXPECT_LT(accepted, 60);
}

}  // namespace
}  // namespace topl

// Robustness fuzzing of the binary codecs: a reader fed truncated or
// bit-flipped files must return a clean Status (never crash, never hand back
// a structurally invalid object). Complements the targeted corruption cases
// in io_test / index_io_test with a sweep over corruption positions.

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "common/rng.h"
#include "graph/binary_io.h"
#include "graph/delta_io.h"
#include "graph/generators.h"
#include "graph/graph_delta.h"
#include "gtest/gtest.h"
#include "index/index_io.h"
#include "storage/artifact.h"
#include "storage/update_journal.h"
#include "tests/test_util.h"

namespace topl {
namespace {

using testing::BuildIndexFor;
using testing::BuiltIndex;

class SerializationFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("topl_fuzz_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  static std::vector<char> ReadAll(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
  }

  void WriteAll(const std::string& path, const std::vector<char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::filesystem::path dir_;
};

TEST_F(SerializationFuzzTest, GraphTruncationSweepNeverCrashes) {
  SmallWorldOptions gen;
  gen.num_vertices = 60;
  gen.seed = 17;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  const std::string path = Path("g.bin");
  ASSERT_TRUE(WriteGraphBinary(*g, path).ok());
  const std::vector<char> bytes = ReadAll(path);

  // Every truncation length across the file (stride keeps runtime sane).
  for (std::size_t len = 0; len < bytes.size(); len += 7) {
    WriteAll(path, std::vector<char>(bytes.begin(), bytes.begin() + len));
    Result<Graph> loaded = ReadGraphBinary(path);
    EXPECT_FALSE(loaded.ok()) << "truncation at " << len << " parsed";
  }
  // The untouched file still round-trips.
  WriteAll(path, bytes);
  EXPECT_TRUE(ReadGraphBinary(path).ok());
}

TEST_F(SerializationFuzzTest, GraphBitFlipsNeverYieldInvalidGraph) {
  SmallWorldOptions gen;
  gen.num_vertices = 50;
  gen.seed = 18;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  const std::string path = Path("g.bin");
  ASSERT_TRUE(WriteGraphBinary(*g, path).ok());
  const std::vector<char> original = ReadAll(path);

  Rng rng(19);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<char> mutated = original;
    const std::size_t pos = rng.NextBounded(mutated.size());
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << rng.NextBounded(8)));
    WriteAll(path, mutated);
    Result<Graph> loaded = ReadGraphBinary(path);
    if (!loaded.ok()) continue;  // rejected: fine
    // Accepted mutants must still be structurally sound: arcs in range,
    // neighbor lists sorted, edge ids consistent.
    const Graph& m = *loaded;
    for (VertexId v = 0; v < m.NumVertices(); ++v) {
      VertexId prev = kInvalidVertex;
      for (const Graph::Arc& arc : m.Neighbors(v)) {
        ASSERT_LT(arc.to, m.NumVertices());
        ASSERT_LT(arc.edge, m.NumEdges());
        if (prev != kInvalidVertex) {
          ASSERT_GT(arc.to, prev);
        }
        prev = arc.to;
      }
    }
  }
}

TEST_F(SerializationFuzzTest, IndexTruncationSweepNeverCrashes) {
  SmallWorldOptions gen;
  gen.num_vertices = 60;
  gen.seed = 20;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  const BuiltIndex built = BuildIndexFor(*g);
  const std::string path = Path("i.bin");
  ASSERT_TRUE(IndexCodec::Write(built.pre(), built.tree, path).ok());
  const std::vector<char> bytes = ReadAll(path);

  for (std::size_t len = 0; len < bytes.size(); len += 97) {
    WriteAll(path, std::vector<char>(bytes.begin(), bytes.begin() + len));
    Result<IndexCodec::LoadedIndex> loaded = IndexCodec::Read(path, *g);
    EXPECT_FALSE(loaded.ok()) << "truncation at " << len << " parsed";
  }
  WriteAll(path, bytes);
  EXPECT_TRUE(IndexCodec::Read(path, *g).ok());
}

TEST_F(SerializationFuzzTest, IndexBitFlipsSurfaceAsStatusOrSaneIndex) {
  SmallWorldOptions gen;
  gen.num_vertices = 50;
  gen.seed = 21;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  const BuiltIndex built = BuildIndexFor(*g);
  const std::string path = Path("i.bin");
  ASSERT_TRUE(IndexCodec::Write(built.pre(), built.tree, path).ok());
  const std::vector<char> original = ReadAll(path);

  Rng rng(22);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<char> mutated = original;
    const std::size_t pos = rng.NextBounded(mutated.size());
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << rng.NextBounded(8)));
    WriteAll(path, mutated);
    Result<IndexCodec::LoadedIndex> loaded = IndexCodec::Read(path, *g);
    if (!loaded.ok()) continue;
    // Accepted mutants must keep the structural invariants the detector
    // relies on (bounds may be wrong — that only costs pruning safety for a
    // corrupt file — but traversal must not go out of bounds).
    const TreeIndex& tree = loaded->tree;
    ASSERT_LT(tree.root(), tree.NumNodes());
    for (std::uint32_t id = 0; id < tree.NumNodes(); ++id) {
      const TreeIndex::Node& node = tree.node(id);
      if (node.is_leaf) {
        ASSERT_LE(node.begin, node.end);
        ASSERT_LE(node.end, g->NumVertices());
      } else {
        ASSERT_LE(node.first_child + node.num_children, tree.NumNodes());
      }
    }
  }
}

TEST_F(SerializationFuzzTest, ArtifactTruncationSweepNeverCrashes) {
  SmallWorldOptions gen;
  gen.num_vertices = 60;
  gen.seed = 23;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  const BuiltIndex built = BuildIndexFor(*g);
  const std::string path = Path("a.idx");
  ASSERT_TRUE(ArtifactWriter::Write(*g, built.pre(), built.tree, path).ok());
  const std::vector<char> bytes = ReadAll(path);

  for (std::size_t len = 0; len < bytes.size(); len += 101) {
    WriteAll(path, std::vector<char>(bytes.begin(), bytes.begin() + len));
    Result<MappedIndex> loaded = ArtifactReader::Open(path);
    EXPECT_FALSE(loaded.ok()) << "truncation at " << len << " parsed";
  }
  WriteAll(path, bytes);
  EXPECT_TRUE(ArtifactReader::Open(path).ok());
}

TEST_F(SerializationFuzzTest, ArtifactBitFlipsAreRejectedOrHarmless) {
  SmallWorldOptions gen;
  gen.num_vertices = 50;
  gen.seed = 24;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  const BuiltIndex built = BuildIndexFor(*g);
  const std::string path = Path("a.idx");
  ASSERT_TRUE(ArtifactWriter::Write(*g, built.pre(), built.tree, path).ok());
  const std::vector<char> original = ReadAll(path);

  // Reference answer from the pristine artifact.
  Query q;
  q.keywords = {0, 1, 2, 3, 4};
  q.k = 3;
  q.radius = 2;
  q.theta = 0.2;
  q.top_l = 5;
  std::vector<double> reference;
  {
    Result<MappedIndex> pristine = ArtifactReader::Open(path);
    ASSERT_TRUE(pristine.ok());
    TopLDetector detector(pristine->graph, *pristine->pre, pristine->tree);
    Result<TopLResult> answer = detector.Search(q);
    ASSERT_TRUE(answer.ok());
    reference = testing::Scores(answer->communities);
  }

  // Header, table and every section payload are checksummed, so the only
  // acceptable mutants are flips in dead bytes (header reserved area,
  // inter-section padding) — and those must serve the exact same answers.
  Rng rng(25);
  int accepted = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<char> mutated = original;
    const std::size_t pos = rng.NextBounded(mutated.size());
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << rng.NextBounded(8)));
    WriteAll(path, mutated);
    Result<MappedIndex> loaded = ArtifactReader::Open(path);
    if (!loaded.ok()) {
      EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status().ToString();
      continue;
    }
    ++accepted;
    TopLDetector detector(loaded->graph, *loaded->pre, loaded->tree);
    Result<TopLResult> answer = detector.Search(q);
    ASSERT_TRUE(answer.ok());
    EXPECT_EQ(testing::Scores(answer->communities), reference)
        << "flip at " << pos << " changed query results";
  }
  // The dead-byte fraction of an artifact is small; the vast majority of
  // flips must have been rejected.
  EXPECT_LT(accepted, 60);
}

// ---------------------------------------------------------------------------
// Update journal + delta codecs (storage/update_journal.h, graph/delta_io.h)
// ---------------------------------------------------------------------------

/// A few deterministic, sequentially-valid deltas for `g`.
std::vector<GraphDelta> FuzzDeltas(const Graph& g, std::size_t count,
                                   std::uint64_t seed) {
  std::vector<GraphDelta> deltas;
  std::unique_ptr<Graph> evolved;
  const Graph* current = &g;
  Rng rng(seed);
  while (deltas.size() < count) {
    GraphDelta d = MakeRandomDelta(*current, rng);
    if (d.empty()) continue;
    Result<Graph> next = ApplyDelta(*current, d);
    EXPECT_TRUE(next.ok());
    if (!next.ok()) break;
    evolved = std::make_unique<Graph>(std::move(*next));
    current = evolved.get();
    deltas.push_back(std::move(d));
  }
  return deltas;
}

bool SameDelta(const GraphDelta& a, const GraphDelta& b) {
  return UpdateJournal::EncodeDelta(a) == UpdateJournal::EncodeDelta(b);
}

TEST_F(SerializationFuzzTest, JournalTruncationSweepYieldsDurablePrefix) {
  SmallWorldOptions gen;
  gen.num_vertices = 60;
  gen.seed = 26;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  const std::vector<GraphDelta> deltas = FuzzDeltas(*g, 6, 27);
  ASSERT_EQ(deltas.size(), 6u);

  const std::string path = Path("j.jrn");
  {
    Result<std::unique_ptr<UpdateJournal>> journal = UpdateJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    for (const GraphDelta& d : deltas) ASSERT_TRUE((*journal)->Append(d).ok());
  }
  const std::vector<char> bytes = ReadAll(path);

  // A journal cut anywhere — torn header, torn record, clean record
  // boundary — replays exactly the committed prefix, never garbage.
  for (std::size_t len = 0; len <= bytes.size(); len += 3) {
    WriteAll(path, std::vector<char>(bytes.begin(), bytes.begin() + len));
    Result<std::vector<GraphDelta>> replayed = UpdateJournal::Replay(path);
    if (!replayed.ok()) continue;  // torn header: typed rejection is fine
    ASSERT_LE(replayed->size(), deltas.size()) << "truncation at " << len;
    for (std::size_t i = 0; i < replayed->size(); ++i) {
      EXPECT_TRUE(SameDelta((*replayed)[i], deltas[i]))
          << "truncation at " << len << " diverged at record " << i;
    }
  }
  WriteAll(path, bytes);
  Result<std::vector<GraphDelta>> full = UpdateJournal::Replay(path);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->size(), deltas.size());
}

TEST_F(SerializationFuzzTest, JournalBitFlipsNeverFabricateRecords) {
  SmallWorldOptions gen;
  gen.num_vertices = 60;
  gen.seed = 28;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  const std::vector<GraphDelta> deltas = FuzzDeltas(*g, 5, 29);
  ASSERT_EQ(deltas.size(), 5u);

  const std::string path = Path("jf.jrn");
  {
    Result<std::unique_ptr<UpdateJournal>> journal = UpdateJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    for (const GraphDelta& d : deltas) ASSERT_TRUE((*journal)->Append(d).ok());
  }
  const std::vector<char> original = ReadAll(path);

  // Every record payload is XXH64-checksummed: a flip either rejects (typed
  // status) or cuts the chain at the damaged record — the surviving replay
  // is always a prefix of what was written, bit-identical.
  Rng rng(30);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<char> mutated = original;
    const std::size_t pos = rng.NextBounded(mutated.size());
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << rng.NextBounded(8)));
    WriteAll(path, mutated);
    Result<std::vector<GraphDelta>> replayed = UpdateJournal::Replay(path);
    if (!replayed.ok()) continue;
    ASSERT_LE(replayed->size(), deltas.size()) << "flip at " << pos;
    for (std::size_t i = 0; i < replayed->size(); ++i) {
      EXPECT_TRUE(SameDelta((*replayed)[i], deltas[i]))
          << "flip at " << pos << " fabricated record " << i;
    }
  }
}

TEST_F(SerializationFuzzTest, DecodeDeltaRejectsGarbageAndTruncations) {
  SmallWorldOptions gen;
  gen.num_vertices = 50;
  gen.seed = 31;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  const std::vector<GraphDelta> deltas = FuzzDeltas(*g, 3, 32);
  ASSERT_EQ(deltas.size(), 3u);

  for (const GraphDelta& d : deltas) {
    const std::vector<std::uint8_t> encoded = UpdateJournal::EncodeDelta(d);
    // Round trip.
    Result<GraphDelta> decoded =
        UpdateJournal::DecodeDelta(encoded.data(), encoded.size());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(SameDelta(*decoded, d));
    // The payload is exact-fit: every proper prefix and every extension must
    // be rejected, not padded or silently ignored.
    for (std::size_t len = 0; len < encoded.size(); ++len) {
      EXPECT_FALSE(UpdateJournal::DecodeDelta(encoded.data(), len).ok())
          << "prefix of " << len << " parsed";
    }
    std::vector<std::uint8_t> extended = encoded;
    extended.push_back(0);
    EXPECT_FALSE(
        UpdateJournal::DecodeDelta(extended.data(), extended.size()).ok());
  }

  // Random buffers: decode must bound-check counts before trusting them.
  Rng rng(33);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> garbage(rng.NextBounded(200));
    for (std::uint8_t& b : garbage) {
      b = static_cast<std::uint8_t>(rng.NextBounded(256));
    }
    Result<GraphDelta> decoded =
        UpdateJournal::DecodeDelta(garbage.data(), garbage.size());
    (void)decoded;  // error or a (vacuously) valid delta — just never a crash
  }
}

TEST_F(SerializationFuzzTest, DeltaTextGarbageNeverCrashes) {
  SmallWorldOptions gen;
  gen.num_vertices = 50;
  gen.seed = 34;
  Result<Graph> g = MakeSmallWorld(gen);
  ASSERT_TRUE(g.ok());
  const std::vector<GraphDelta> deltas = FuzzDeltas(*g, 1, 35);
  ASSERT_EQ(deltas.size(), 1u);
  const std::string path = Path("d.txt");
  ASSERT_TRUE(WriteGraphDeltaText(deltas[0], path).ok());
  const std::vector<char> original = ReadAll(path);
  ASSERT_TRUE(ReadGraphDeltaText(path).ok());

  Rng rng(36);
  // Mutated valid files: swap random characters for random printable bytes.
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<char> mutated = original;
    const std::size_t pos = rng.NextBounded(mutated.size());
    mutated[pos] = static_cast<char>(' ' + rng.NextBounded(95));
    WriteAll(path, mutated);
    Result<GraphDelta> parsed = ReadGraphDeltaText(path);
    (void)parsed;  // typed error or a still-valid delta; never a crash
  }
  // Pure garbage lines.
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<char> garbage(rng.NextBounded(400));
    for (char& c : garbage) {
      c = static_cast<char>(rng.NextBounded(127) + 1);  // no NULs
    }
    WriteAll(path, garbage);
    Result<GraphDelta> parsed = ReadGraphDeltaText(path);
    (void)parsed;
  }
}

}  // namespace
}  // namespace topl

#include "common/rng.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"

namespace topl {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ZeroSeedIsUsable) {
  Rng rng(0);
  // splitmix seeding must not leave the all-zero xoshiro state.
  bool any_nonzero = false;
  for (int i = 0; i < 8; ++i) any_nonzero |= rng.NextUint64() != 0;
  EXPECT_TRUE(any_nonzero);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble(0.5, 0.6);
    EXPECT_GE(d, 0.5);
    EXPECT_LT(d, 0.6);
  }
}

TEST(RngTest, NextBoundedCoversRangeUniformly) {
  Rng rng(11);
  const std::uint64_t bound = 10;
  std::vector<int> hist(bound, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++hist[rng.NextBounded(bound)];
  for (std::uint64_t k = 0; k < bound; ++k) {
    // Each bucket expects 10000; allow generous slack.
    EXPECT_GT(hist[k], 9000) << "bucket " << k;
    EXPECT_LT(hist[k], 11000) << "bucket " << k;
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  const int draws = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < draws; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / draws;
  const double var = sum_sq / draws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, ZipfInRangeAndSkewed) {
  Rng rng(17);
  const std::uint64_t n = 50;
  std::vector<int> hist(n, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t k = rng.NextZipf(n, 1.5);
    ASSERT_LT(k, n);
    ++hist[k];
  }
  // Rank 0 must dominate and the histogram must be (mostly) decreasing.
  EXPECT_GT(hist[0], hist[1]);
  EXPECT_GT(hist[0], draws / 4);
  EXPECT_GT(hist[1], hist[10]);
}

TEST(RngTest, ZipfSingleElementDomain) {
  Rng rng(19);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextZipf(1, 1.2), 0u);
}

TEST(RngTest, ZipfExponentOneSupported) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.NextZipf(20, 1.0), 20u);
}

}  // namespace
}  // namespace topl
